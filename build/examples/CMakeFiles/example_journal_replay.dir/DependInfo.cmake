
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/journal_replay.cpp" "examples/CMakeFiles/example_journal_replay.dir/journal_replay.cpp.o" "gcc" "examples/CMakeFiles/example_journal_replay.dir/journal_replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fol/CMakeFiles/folvec_fol.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/folvec_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/sorting/CMakeFiles/folvec_sorting.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/folvec_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/queens/CMakeFiles/folvec_queens.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/folvec_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/folvec_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/folvec_support.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/folvec_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
