# Empty dependencies file for folvec_tree.
# This may be replaced when dependencies are built.
