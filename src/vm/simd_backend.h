// SimdBackend: the third vm::Backend — single-threaded like SerialBackend,
// but every primitive runs through a runtime-dispatched SimdKernels table
// (simd_kernels.h) so the lane loops execute real AVX2/AVX-512/NEON
// instructions where the host has them and the level has a lowering.
//
// Dispatch model: the binary carries one kernel table per ISA level it was
// compiled for (scalar always; AVX2/AVX-512 on x86-64, NEON on aarch64).
// At Machine construction, simd_resolve_level() picks the best table the CPU
// supports — or honors FOLVEC_SIMD_LEVEL forcing, downgrading with a
// one-time notice when the forced level is unavailable. Null table entries
// (a level with no profitable lowering for an op) fall back to the same
// scalar loops SerialBackend runs, so sparse tables stay bit-identical by
// construction.
//
// Scatter at AVX-512 uses VPSCATTERQQ's architecturally ordered overlap
// resolution for kForward/kReverse; kExplicit traversals (shuffled lane
// orders) and levels without hardware scatter use the serialized reference
// loop — ELS semantics are preserved either way.
#pragma once

#include <cstddef>

#include "vm/backend.h"
#include "vm/simd_kernels.h"

namespace folvec::vm {

/// Best kernel level the running CPU supports among those compiled into this
/// binary. Never returns kAuto; returns kScalar when no vector TU is present
/// or no CPUID/auxv feature bit matches.
SimdLevel simd_host_level();

/// True when `level`'s kernel table is compiled in AND the host CPU can
/// execute it. kScalar is always supported; kAuto is never (resolve first).
bool simd_level_supported(SimdLevel level);

/// Resolves a requested level (typically MachineConfig::simd_level) to a
/// runnable one: kAuto becomes simd_host_level(); an unsupported forced
/// level degrades to the best supported level of lower rank, with a one-time
/// stderr notice. The result always satisfies simd_level_supported().
SimdLevel simd_resolve_level(SimdLevel requested);

/// Kernel table for a resolved level. `level` must satisfy
/// simd_level_supported(); anything else gets the scalar table.
const SimdKernels& simd_kernels_for(SimdLevel level);

/// Telemetry/env spelling: "scalar", "neon", "avx2", "avx512", "auto".
const char* simd_level_name(SimdLevel level);

/// Parses a FOLVEC_SIMD_LEVEL spelling ("auto", "scalar", "neon", "avx2",
/// "avx512"). Unknown spellings return kAuto after a one-time warning.
SimdLevel simd_parse_level(const char* spelling);

/// Single-threaded backend executing through a SimdKernels table. The table
/// must outlive the backend (tables are function-local statics, so any table
/// from simd_kernels_for qualifies).
class SimdBackend final : public Backend {
 public:
  explicit SimdBackend(const SimdKernels& kernels) : k_(&kernels) {}

  const char* name() const override { return "simd"; }
  std::size_t workers() const override { return 1; }

  /// The table this backend executes through (for telemetry).
  const SimdKernels& kernels() const { return *k_; }

  void for_lanes(std::size_t n, RangeFn fn) override;
  Word reduce_sum(std::span<const Word> v) override;
  Word reduce_min(std::span<const Word> v) override;
  Word reduce_max(std::span<const Word> v) override;
  std::size_t count_true(std::span<const std::uint8_t> m) override;
  WordVec compress(std::span<const Word> v,
                   std::span<const std::uint8_t> m) override;
  void compress_into(std::span<const Word> v, std::span<const std::uint8_t> m,
                     std::span<Word> out) override;
  std::size_t first_oob(std::span<const Word> idx, std::size_t table_size,
                        const std::uint8_t* mask) override;
  void scatter(std::span<Word> table, std::span<const Word> idx,
               std::span<const Word> vals, const std::uint8_t* mask,
               ScatterTraversal traversal,
               std::span<const std::size_t> order) override;
  std::size_t scatter_gather_eq(std::span<Word> table,
                                std::span<const Word> idx,
                                std::span<const Word> vals,
                                const std::uint8_t* mask,
                                ScatterTraversal traversal,
                                std::span<const std::size_t> order,
                                std::span<std::uint8_t> out_match,
                                void (*between_passes)(void*),
                                void* hook_ctx) override;
  void partition(std::span<const Word> v, std::span<const std::uint8_t> m,
                 std::span<Word> kept, std::span<Word> rejected) override;

 private:
  const SimdKernels* k_;
};

}  // namespace folvec::vm
