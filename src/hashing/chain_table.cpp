#include "hashing/chain_table.h"

#include "fol/fol1.h"
#include "hashing/hash_fn.h"
#include "support/require.h"

namespace folvec::hashing {

using vm::Mask;
using vm::VectorMachine;
using vm::Word;
using vm::WordVec;

ChainTable::ChainTable(std::size_t table_size, std::size_t capacity,
                       vm::CostAccumulator* cost)
    : head_(table_size, kNil),
      node_key_(capacity, 0),
      node_next_(capacity, kNil),
      cost_(cost) {
  FOLVEC_REQUIRE(table_size > 0, "table size must be positive");
}

void ChainTable::insert_scalar(Word key) {
  FOLVEC_REQUIRE(alloc_ < node_key_.size(), "chain table pool exhausted");
  const auto h = static_cast<std::size_t>(
      mod_hash(key, static_cast<Word>(head_.size())));
  cost_.div(1);  // hash: one integer modulus
  cost_.alu(1);
  const auto node = static_cast<Word>(alloc_++);
  node_key_[static_cast<std::size_t>(node)] = key;
  node_next_[static_cast<std::size_t>(node)] = head_[h];
  head_[h] = node;
  cost_.mem(4);  // read head, write key/next/head
  cost_.branch(1);
}

std::size_t ChainTable::count(Word key) const {
  const auto h = static_cast<std::size_t>(
      mod_hash(key, static_cast<Word>(head_.size())));
  std::size_t n = 0;
  for (Word node = head_[h]; node != kNil;
       node = node_next_[static_cast<std::size_t>(node)]) {
    if (node_key_[static_cast<std::size_t>(node)] == key) ++n;
  }
  return n;
}

std::vector<Word> ChainTable::chain(std::size_t h) const {
  FOLVEC_REQUIRE(h < head_.size(), "table entry out of range");
  std::vector<Word> keys;
  for (Word node = head_[h]; node != kNil;
       node = node_next_[static_cast<std::size_t>(node)]) {
    keys.push_back(node_key_[static_cast<std::size_t>(node)]);
  }
  return keys;
}

vm::WordVec ChainTable::multi_count(VectorMachine& m,
                                    std::span<const Word> keys) const {
  WordVec counts = m.splat(keys.size(), 0);
  if (keys.empty()) return counts;
  const WordVec key_vec = m.copy(keys);
  const WordVec hashed =
      m.mod_scalar(key_vec, static_cast<Word>(head_.size()));
  WordVec cursor = m.gather(head_, hashed);
  vm::Mask live = m.ne_scalar(cursor, kNil);
  while (m.count_true(live) > 0) {
    const WordVec node_keys_here = m.gather_masked(node_key_, cursor, live, 0);
    const vm::Mask match = m.mask_and(m.eq(node_keys_here, key_vec), live);
    counts = m.add(counts, m.from_mask(match));
    cursor = m.select(live, m.gather_masked(node_next_, cursor, live, kNil),
                      cursor);
    live = m.mask_and(live, m.ne_scalar(cursor, kNil));
  }
  return counts;
}

void multi_hash_chain_insert(VectorMachine& m, ChainTable& t,
                             std::span<const Word> keys) {
  if (keys.empty()) return;
  FOLVEC_REQUIRE(t.alloc_ + keys.size() <= t.node_key_.size(),
                 "chain table pool exhausted");
  const auto size = static_cast<Word>(t.head_.size());

  // FOL processes 1-2 (Figure 7): decompose the hashed index vector into
  // conflict-free sets. The label work area is a dedicated word per table
  // entry, as in the figure's "work areas for labels".
  const WordVec key_vec = m.copy(keys);
  const WordVec hashed = m.mod_scalar(key_vec, size);
  WordVec work(t.head_.size(), 0);
  const fol::Decomposition dec = fol::fol1_decompose(m, hashed, work);

  // Main processing, one parallel-processable set at a time: allocate the
  // set's nodes contiguously, link them in front of their chains.
  for (const auto& set : dec.sets) {
    const std::size_t k = set.size();
    // Pack this set's keys and table entries (compress under the set mask
    // costs the same as building the mask + compressing; we charge the two
    // compressions the sets were produced from in fol1 already, plus the
    // per-set gathers/scatters below).
    WordVec set_keys(k);
    WordVec set_entries(k);
    for (std::size_t i = 0; i < k; ++i) {
      set_keys[i] = key_vec[set[i]];
      set_entries[i] = hashed[set[i]];
    }
    // New node indices: pool watermark upward.
    const WordVec nodes = m.iota(k, static_cast<Word>(t.alloc_));
    // node.key := key
    m.store(t.node_key_, t.alloc_, set_keys);
    // node.next := head[h]   (list-vector load of the current heads)
    const WordVec old_heads = m.gather(t.head_, set_entries);
    m.store(t.node_next_, t.alloc_, old_heads);
    // head[h] := node        (conflict-free within the set by Lemma 2)
    m.scatter(t.head_, set_entries, nodes);
    t.alloc_ += k;
  }
  m.retire_work(work);
}

}  // namespace folvec::hashing
