// Example: running the paper's own Figure 8 listing, as text, on the
// simulated vector machine.
//
// The interpreter in src/lang executes the Fortran-90-style array
// pseudo-language the paper's algorithms are written in, issuing every
// array operation to a VectorMachine. This program feeds it the Figure 8
// multiple-hashing listing (near-verbatim), checks the table contents, and
// prints the instruction-cost breakdown of the *listing itself* — the
// closest thing to profiling the paper.
#include <algorithm>
#include <iostream>

#include "hashing/open_table.h"
#include "lang/interp.h"
#include "support/prng.h"
#include "vm/machine.h"

namespace {

constexpr const char* kFigure8 = R"(
/* Figure 8: vectorized algorithm for entering data into a hash table. */
hashedValue[1 : n] := key[1 : n] mod size(table);
where table[hashedValue[1 : n]] = unentered do
  table[hashedValue[1 : n]] := key[1 : n];
end where;

for it in 1 .. size(table) loop
  entered[1 : n] := key[1 : n] = table[hashedValue[1 : n]];
  nrest := countTrue(not entered[1 : n]);
  hashedValue[1 : nrest] := hashedValue[1 : n] where not entered[1 : n];
  key[1 : nrest] := key[1 : n] where not entered[1 : n];
  if nrest = 0 then exit loop; end if;
  n := nrest;
  hashedValue[1 : n] :=
      (hashedValue[1 : n] + (key[1 : n] & 31) + 1) mod size(table);
  where table[hashedValue[1 : n]] = unentered do
    table[hashedValue[1 : n]] := key[1 : n];
  end where;
end loop;
)";

}  // namespace

int main() {
  using namespace folvec;
  using vm::Word;
  using vm::WordVec;

  constexpr std::size_t kTableSize = 521;
  constexpr std::size_t kKeys = 260;  // load factor 0.5, the paper's peak
  const WordVec keys = random_unique_keys(kKeys, 1 << 30, 91);

  vm::VectorMachine m;
  lang::Interpreter interp(m);
  interp.set_scalar("unentered", hashing::kUnentered);
  interp.set_scalar("n", static_cast<Word>(kKeys));
  interp.set_array("table", WordVec(kTableSize, hashing::kUnentered), 0);
  interp.set_array("key", keys);
  interp.set_array("hashedValue", WordVec(kKeys, 0));
  interp.set_array("entered", WordVec(kKeys, 0));

  interp.run(kFigure8);

  // Verify every key landed.
  WordVec entered;
  for (Word v : interp.array("table").data) {
    if (v != hashing::kUnentered) entered.push_back(v);
  }
  WordVec sorted_keys = keys;
  std::sort(sorted_keys.begin(), sorted_keys.end());
  std::sort(entered.begin(), entered.end());
  if (entered != sorted_keys) {
    std::cout << "listing lost keys!\n";
    return 1;
  }
  std::cout << "Figure 8 listing entered all " << kKeys
            << " keys into the " << kTableSize << "-slot table.\n\n";

  const vm::CostParams params = vm::CostParams::s810_like();
  std::cout << "instruction-cost breakdown of the listing:\n"
            << m.cost().breakdown(params) << "\nmodeled time: "
            << m.cost().microseconds(params) << " us on the simulated S-810\n";
  return 0;
}
