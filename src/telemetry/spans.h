// Span tracing with Chrome trace-event export.
//
// A SpanTracer collects a timeline of nested spans — algorithm phases like
// `fol1.decompose > round[3] > v.scatter` — each carrying measured host
// wall time and, when the opener supplies them, chime deltas (modeled
// instruction/element counts). The timeline serializes as Chrome
// trace-event JSON, so a run opens directly in chrome://tracing or
// https://ui.perfetto.dev.
//
// Like TraceSink and the metrics registry, the tracer is a process-wide
// borrowed pointer, nullptr by default: every probe is one relaxed atomic
// load when tracing is off. Set FOLVEC_TRACE_JSON=<path> to have
// telemetry::EnvSession (used by every bench binary) install a tracer and
// write the file at exit.
//
// Recording is multi-track: each recording thread gets its own event
// buffer and open-span stack (a "track"), registered on first use and
// written only by its owning thread, so concurrent recording needs no
// per-event locking. Tracks export with the thread's real OS tid plus a
// Chrome "thread_name" metadata event — "main" for the constructing
// thread, "worker-<i>" for pool workers (named via set_thread_name).
// Deterministic spans and op events are still issued from the machine's
// issuing thread; worker activity appears as per-chunk "chunk" slices
// linked to the issuing batch flush by flow events, and as counter tracks.
//
// Export (write_chrome_trace / size / dropped) takes a registry lock but
// reads the per-thread buffers unlocked: callers must ensure recording
// threads are quiescent first. The thread pool's job barrier provides the
// needed happens-before — every worker write precedes run_job's return —
// so exporting between jobs or after pool shutdown is race-free.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace folvec::telemetry {

class SpanTracer {
 public:
  using Clock = std::chrono::steady_clock;

  /// `capacity` bounds the stored event count per track (long bench runs
  /// would otherwise grow without limit); events past the cap are counted
  /// in dropped() but not stored. Open-span stack depth is unaffected.
  explicit SpanTracer(std::size_t capacity = kDefaultCapacity);
  ~SpanTracer();

  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  /// Opens a nested span on the calling thread's track.
  /// `chime_instructions`/`chime_elements` are the opener's running totals
  /// (0 when unknown); the matching end() computes the deltas attributed
  /// to the span.
  void begin(std::string name, std::uint64_t chime_instructions = 0,
             std::uint64_t chime_elements = 0);

  /// Closes the calling thread's innermost open span. Unbalanced end() is
  /// ignored.
  void end(std::uint64_t chime_instructions = 0,
           std::uint64_t chime_elements = 0);

  /// Records one leaf event for a machine instruction: `static_name` must
  /// point at storage that outlives the tracer (op-class mnemonics do).
  void op(const char* static_name, std::size_t elements, Clock::time_point start,
          Clock::time_point end);

  /// Names the calling thread's track ("worker-3"); first call wins, later
  /// calls are no-ops. The constructing thread's track is named "main".
  void set_thread_name(std::string_view name);

  /// Allocates a fresh nonzero flow id (process-order, not deterministic).
  std::uint64_t next_flow_id();

  /// Emits a flow-start ("ph":"s") event at now on the calling thread.
  /// Chrome binds it to the enclosing slice, drawing an arrow to every
  /// chunk() recorded with the same id.
  void flow_begin(const char* static_name, std::uint64_t flow_id);

  /// Records one per-worker chunk execution slice (cat "chunk", lanes
  /// [lo, hi)) plus, when `flow_id` is nonzero, the bound flow-finish
  /// ("ph":"f") connecting it back to the issuing flow_begin.
  void chunk(const char* static_name, std::size_t lo, std::size_t hi,
             std::uint64_t flow_id, Clock::time_point start,
             Clock::time_point end);

  /// Emits a Chrome counter ("ph":"C") sample at now. Counters sharing a
  /// `static_name` form one counter track regardless of emitting thread.
  void counter(const char* static_name, double value);

  /// Stored events across all tracks (requires recording quiescence).
  std::size_t size() const;
  /// Events discarded because a track's capacity was reached.
  std::size_t dropped() const;
  /// Depth of the calling thread's currently open spans.
  std::size_t open_depth() const;
  /// Number of registered per-thread tracks.
  std::size_t track_count() const;

  /// Writes the collected timeline as a Chrome trace-event JSON object:
  /// {"traceEvents": [...], "displayTimeUnit": "ms", "otherData": {...}}.
  /// Tracks export in registration order (main first) with thread_name /
  /// thread_sort_index metadata and the real OS tid on every event. Open
  /// spans are closed as-of-now in the output (the tracer's own state is
  /// not modified). Requires recording quiescence (see file comment).
  void write_chrome_trace(std::ostream& os) const;

  /// Convenience: write_chrome_trace to `path`; returns false on I/O error.
  bool write_chrome_trace_file(const std::string& path) const;

 private:
  enum class EventKind : std::uint8_t {
    kSpan,
    kOp,
    kChunk,
    kFlowStart,
    kFlowEnd,
    kCounter,
  };
  struct Event {
    EventKind kind = EventKind::kSpan;
    const char* static_name = nullptr;  // non-null for all kinds but kSpan
    std::string name;                   // kSpan only
    double ts_us = 0.0;
    double dur_us = 0.0;                    // "X" kinds only
    std::uint64_t elements = 0;             // kOp lanes; kChunk hi - lo
    std::uint64_t chime_instructions = 0;   // kSpan only
    std::uint64_t chime_elements = 0;       // kSpan only
    std::uint64_t lo = 0;                   // kChunk first lane
    std::uint64_t flow_id = 0;              // kChunk / kFlowStart / kFlowEnd
    double value = 0.0;                     // kCounter only
  };
  struct Open {
    std::string name;
    Clock::time_point start;
    std::uint64_t chime_instructions;
    std::uint64_t chime_elements;
  };
  struct Track {
    std::uint64_t tid = 0;    // real OS tid (or a hash fallback)
    std::string name;         // "" until set_thread_name / "main"
    std::vector<Event> events;
    std::vector<Open> stack;
    std::size_t dropped = 0;
  };

  double to_us(Clock::time_point t) const {
    return std::chrono::duration<double, std::micro>(t - epoch_).count();
  }
  /// The calling thread's track, registering (under registry_mu_) on first
  /// use. Subsequent calls from the same thread are lock-free.
  Track& track();
  void push(Track& t, Event e);
  void append_event_json(std::ostream& os, const Event& e, std::uint64_t tid,
                         bool& first) const;

  Clock::time_point epoch_;
  std::size_t capacity_;
  std::uint64_t serial_;  // process-unique, keys the thread-local cache
  std::atomic<std::uint64_t> flow_ids_{0};
  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<Track>> tracks_;  // vector guarded by registry_mu_
};

/// The installed tracer, or nullptr (borrowed, same contract as metrics()).
SpanTracer* tracer();
void install_tracer(SpanTracer* t);

/// True when a tracer is installed — use to guard expensive name building.
inline bool tracing() { return tracer() != nullptr; }

/// RAII span against the installed tracer; a no-op when tracing is off.
/// Chime-carrying spans are opened through vm::AlgoSpan (vm/machine.h),
/// which reads the machine's cost accumulator on both edges.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : active_(tracing()) {
    if (active_) tracer()->begin(name);
  }
  /// Builds "prefix[index]" only when tracing is on.
  ScopedSpan(const char* prefix, std::size_t index) : active_(tracing()) {
    if (active_) {
      tracer()->begin(std::string(prefix) + '[' + std::to_string(index) + ']');
    }
  }
  ~ScopedSpan() {
    if (active_) tracer()->end();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_;
};

/// RAII install/uninstall of a tracer (tests, bench mains).
class ScopedTracer {
 public:
  explicit ScopedTracer(SpanTracer& t);
  ~ScopedTracer();
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

 private:
  SpanTracer* previous_;
};

}  // namespace folvec::telemetry
