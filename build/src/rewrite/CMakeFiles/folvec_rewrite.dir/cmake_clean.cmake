file(REMOVE_RECURSE
  "CMakeFiles/folvec_rewrite.dir/assoc_rewrite.cpp.o"
  "CMakeFiles/folvec_rewrite.dir/assoc_rewrite.cpp.o.d"
  "CMakeFiles/folvec_rewrite.dir/distribute.cpp.o"
  "CMakeFiles/folvec_rewrite.dir/distribute.cpp.o.d"
  "CMakeFiles/folvec_rewrite.dir/term.cpp.o"
  "CMakeFiles/folvec_rewrite.dir/term.cpp.o.d"
  "libfolvec_rewrite.a"
  "libfolvec_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/folvec_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
