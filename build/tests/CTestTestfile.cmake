# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/vm_machine_test[1]_include.cmake")
include("/root/repo/build/tests/fol1_test[1]_include.cmake")
include("/root/repo/build/tests/fol_star_test[1]_include.cmake")
include("/root/repo/build/tests/hashing_test[1]_include.cmake")
include("/root/repo/build/tests/sorting_test[1]_include.cmake")
include("/root/repo/build/tests/tree_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite_test[1]_include.cmake")
include("/root/repo/build/tests/experiments_test[1]_include.cmake")
include("/root/repo/build/tests/list_test[1]_include.cmake")
include("/root/repo/build/tests/gc_test[1]_include.cmake")
include("/root/repo/build/tests/routing_test[1]_include.cmake")
include("/root/repo/build/tests/ordered_fol_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/invariants_test[1]_include.cmake")
include("/root/repo/build/tests/tree_rebalance_test[1]_include.cmake")
include("/root/repo/build/tests/hash_lookup_test[1]_include.cmake")
include("/root/repo/build/tests/queens_test[1]_include.cmake")
include("/root/repo/build/tests/radix_test[1]_include.cmake")
include("/root/repo/build/tests/hash_map_test[1]_include.cmake")
include("/root/repo/build/tests/distribute_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/lang_test[1]_include.cmake")
include("/root/repo/build/tests/lang_figures_test[1]_include.cmake")
