file(REMOVE_RECURSE
  "libfolvec_queens.a"
)
