// Integration tests: every experiment runner in the bench harness executes
// end to end (including its internal scalar/vector cross-checks) and
// produces cost-model results with the qualitative shape the paper reports.
#include "bench_harness/experiments.h"

#include <gtest/gtest.h>

namespace folvec::bench {
namespace {

using hashing::ProbeVariant;
using vm::CostParams;

const CostParams kParams = CostParams::s810_like();

TEST(ExperimentsTest, MultiHashRunsAndAccelerates) {
  const RunResult r =
      run_multi_hash(521, 0.5, ProbeVariant::kKeyDependent, 1, kParams);
  EXPECT_GT(r.scalar_us, 0.0);
  EXPECT_GT(r.vector_us, 0.0);
  EXPECT_GT(r.acceleration(), 1.0)
      << "vectorized multiple hashing should beat scalar at load 0.5";
  EXPECT_GE(r.iterations, 1u);
}

TEST(ExperimentsTest, MultiHashLargerTableAcceleratesMore) {
  // Figure 10's headline shape: N=4099 peaks higher than N=521.
  const RunResult small =
      run_multi_hash(521, 0.5, ProbeVariant::kKeyDependent, 2, kParams);
  const RunResult large =
      run_multi_hash(4099, 0.5, ProbeVariant::kKeyDependent, 2, kParams);
  EXPECT_GT(large.acceleration(), small.acceleration());
}

TEST(ExperimentsTest, MultiHashZeroLoadIsDegenerate) {
  const RunResult r =
      run_multi_hash(521, 0.0, ProbeVariant::kKeyDependent, 3, kParams);
  EXPECT_EQ(r.scalar_us, 0.0);
  EXPECT_EQ(r.vector_us, 0.0);
}

TEST(ExperimentsTest, AddressCalcSortAcceleratesAndGrowsWithN) {
  const RunResult small = run_address_calc_sort(1 << 6, 1 << 20, 4, kParams);
  const RunResult large = run_address_calc_sort(1 << 10, 1 << 20, 4, kParams);
  EXPECT_GT(small.scalar_us, 0.0);
  EXPECT_GT(large.acceleration(), small.acceleration())
      << "Table 1 shape: acceleration grows with N";
}

TEST(ExperimentsTest, DistCountSortAccelerates) {
  const RunResult r = run_dist_count_sort(1 << 10, 1 << 16, 5, kParams);
  EXPECT_GT(r.acceleration(), 1.0);
  EXPECT_GE(r.iterations, 1u);
}

TEST(ExperimentsTest, BstInsertRunsAndIsCorrect) {
  const RunResult r = run_bst_insert(512, 200, 6, kParams);
  EXPECT_GT(r.scalar_us, 0.0);
  EXPECT_GT(r.vector_us, 0.0);
  EXPECT_GE(r.iterations, 1u);
}

TEST(ExperimentsTest, AssocRewriteRunsOnBothShapes) {
  const RunResult comb = run_assoc_rewrite(64, true, 7, kParams);
  const RunResult random_shape = run_assoc_rewrite(64, false, 7, kParams);
  EXPECT_GT(comb.scalar_us, 0.0);
  EXPECT_GT(random_shape.scalar_us, 0.0);
}

TEST(ExperimentsTest, Fol1DecomposeRunsAndReportsRounds) {
  const RunResult unique = run_fol1_decompose(1000, 1000, 8, kParams);
  EXPECT_EQ(unique.iterations, 1u);  // Theorem 3: no duplicates => M = 1
  const RunResult dup = run_fol1_decompose(1000, 100, 8, kParams);
  EXPECT_GE(dup.iterations, 10u);  // ceil(1000/100) duplicates per area
}

TEST(ExperimentsTest, GcRunsAndAcceleratesOnLargeHeaps) {
  const RunResult r = run_gc(20000, 0.5, 11, kParams);
  EXPECT_GT(r.acceleration(), 1.0);
  EXPECT_GE(r.iterations, 1u);
}

TEST(ExperimentsTest, MazeRunsAndAcceleratesOnLargeGrids) {
  const RunResult r = run_maze(96, 10, 12, kParams);
  EXPECT_GT(r.acceleration(), 1.0);
  EXPECT_GE(r.iterations, 1u);
}

TEST(ExperimentsTest, ZeroStartupParamsChangeThePicture) {
  // Under zero vector startup the short-vector penalty vanishes, so small
  // workloads accelerate at least as well as under the S-810 params.
  const RunResult base =
      run_multi_hash(521, 0.1, ProbeVariant::kKeyDependent, 9, kParams);
  const RunResult nostartup = run_multi_hash(
      521, 0.1, ProbeVariant::kKeyDependent, 9, CostParams::zero_startup());
  EXPECT_GE(nostartup.acceleration(), base.acceleration());
}

}  // namespace
}  // namespace folvec::bench
