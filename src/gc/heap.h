// Cons-cell heap with scalar and vectorized semispace (copying) garbage
// collection.
//
// Appel & Bendiksen's vectorized garbage collector (J. Supercomputing,
// 1989) is cited by the paper (Section 5) as implicitly containing "a very
// specialized version of FOL": during the Cheney scan, several live slots
// can point at the *same* from-space cell, and all of them race to claim
// its to-space copy. The resolution is exactly one overwrite-and-check
// round — scatter claim labels into the forwarding words, read back, let
// the winners evacuate, and let the losers re-read the winner's forwarding
// pointer. Only the first parallel-processable set S1 is ever needed,
// because losers don't retry the *claim*; they just follow the forwarding
// pointer, which is why the paper calls it a specialization.
//
// Word tagging: a heap value is either an immediate (odd: 2x+1, holding
// integer x) or a pointer (even: 2i, referring to cell i), with kNilValue
// representing the empty list. This keeps car/cdr in plain Word arrays so
// the vector collector can gather/scatter them directly.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "vm/cost_model.h"
#include "vm/machine.h"

namespace folvec::gc {

/// Dedicated nil encoding (an immediate the tagging scheme cannot produce).
inline constexpr vm::Word kNilValue = std::numeric_limits<vm::Word>::min();

constexpr vm::Word make_immediate(vm::Word x) { return 2 * x + 1; }
constexpr vm::Word make_pointer(vm::Word cell) { return 2 * cell; }
constexpr bool is_nil(vm::Word v) { return v == kNilValue; }
constexpr bool is_immediate(vm::Word v) { return !is_nil(v) && (v & 1) != 0; }
constexpr bool is_pointer(vm::Word v) { return !is_nil(v) && (v & 1) == 0; }
constexpr vm::Word immediate_value(vm::Word v) { return (v - 1) / 2; }
constexpr vm::Word pointer_cell(vm::Word v) { return v / 2; }

struct GcStats {
  std::size_t live_cells = 0;   ///< cells evacuated
  std::size_t scan_passes = 0;  ///< Cheney scan steps (vector collector)
  std::size_t claim_conflicts = 0;  ///< lanes that lost an evacuation claim
};

/// A semispace cons heap. Allocation bump-pointers through the active
/// space; collect() evacuates the cells reachable from the root set.
class ConsHeap {
 public:
  /// `semispace_cells` is the capacity of EACH semispace.
  explicit ConsHeap(std::size_t semispace_cells);

  /// Allocates a cons cell; car/cdr are tagged values. Throws when the
  /// active semispace is full (callers collect and retry).
  vm::Word alloc(vm::Word car, vm::Word cdr);

  vm::Word car(vm::Word cell) const { return car_[check(cell)]; }
  vm::Word cdr(vm::Word cell) const { return cdr_[check(cell)]; }
  void set_car(vm::Word cell, vm::Word v) { car_[check(cell)] = v; }
  void set_cdr(vm::Word cell, vm::Word v) { cdr_[check(cell)] = v; }

  std::size_t allocated() const { return alloc_; }
  std::size_t capacity() const { return semispace_; }

  /// Sequential Cheney collection. Roots are tagged values and are updated
  /// in place to point into the new space.
  GcStats collect_scalar(std::span<vm::Word> roots,
                         vm::CostAccumulator* cost = nullptr);

  /// Vectorized Cheney collection: breadth-first scan where each pass
  /// evacuates all pending pointers with gathers/scatters, resolving
  /// duplicate claims with one overwrite-and-check round.
  GcStats collect_vector(vm::VectorMachine& m, std::span<vm::Word> roots);

  /// Deep structural equality of two tagged values (possibly across two
  /// heaps); shared subtrees are compared structurally. For tests.
  static bool deep_equal(const ConsHeap& a, vm::Word va, const ConsHeap& b,
                         vm::Word vb);

 private:
  std::size_t check(vm::Word cell) const;
  void flip();

  std::size_t semispace_;
  std::size_t alloc_ = 0;  ///< bump pointer within the active space
  std::vector<vm::Word> car_;
  std::vector<vm::Word> cdr_;
  // The inactive space, used as the target during collection.
  std::vector<vm::Word> to_car_;
  std::vector<vm::Word> to_cdr_;
  // Forwarding words, one per from-space cell (kUnforwarded when unclaimed).
  std::vector<vm::Word> forward_;
};

}  // namespace folvec::gc
