// Tests for the maze router: BFS distance correctness, obstacle handling,
// path reconstruction, and scalar/vector field equality on random mazes.
#include "routing/maze.h"

#include <gtest/gtest.h>

#include <tuple>

#include "support/prng.h"

namespace folvec::routing {
namespace {

using vm::MachineConfig;
using vm::ScatterOrder;
using vm::VectorMachine;
using vm::Word;
using vm::WordVec;

TEST(GridTest, IndexingAndObstacles) {
  Grid g(4, 3);
  EXPECT_EQ(g.cells(), 12u);
  EXPECT_EQ(g.index(3, 2), 11);
  g.set_obstacle(1, 1);
  EXPECT_TRUE(g.is_obstacle(1, 1));
  EXPECT_FALSE(g.is_obstacle(0, 0));
  EXPECT_THROW(g.index(4, 0), PreconditionError);
}

TEST(RouteScalarTest, OpenGridDistancesAreManhattan) {
  Grid g(5, 5);
  const auto dist = g.route_scalar(g.index(0, 0));
  for (std::size_t y = 0; y < 5; ++y) {
    for (std::size_t x = 0; x < 5; ++x) {
      EXPECT_EQ(dist[static_cast<std::size_t>(g.index(x, y))],
                static_cast<Word>(x + y));
    }
  }
}

TEST(RouteScalarTest, WallForcesDetour) {
  // A vertical wall with one gap at the bottom.
  Grid g(5, 3);
  g.set_obstacle(2, 0);
  g.set_obstacle(2, 1);
  const auto dist = g.route_scalar(g.index(0, 0));
  // Straight-line distance to (4,0) would be 4; the detour through (2,2)
  // costs 8.
  EXPECT_EQ(dist[static_cast<std::size_t>(g.index(4, 0))], 8);
  EXPECT_EQ(dist[static_cast<std::size_t>(g.index(2, 0))], kObstacle);
}

TEST(RouteScalarTest, UnreachableCellsStayUnreached) {
  Grid g(3, 3);
  // Wall off the right column completely.
  g.set_obstacle(1, 0);
  g.set_obstacle(1, 1);
  g.set_obstacle(1, 2);
  const auto dist = g.route_scalar(g.index(0, 0));
  EXPECT_EQ(dist[static_cast<std::size_t>(g.index(2, 1))], kUnreached);
}

TEST(RouteVectorTest, MatchesScalarOnKnownMaze) {
  Grid g(8, 6);
  g.set_obstacle(3, 0);
  g.set_obstacle(3, 1);
  g.set_obstacle(3, 2);
  g.set_obstacle(3, 4);
  g.set_obstacle(5, 5);
  VectorMachine m;
  RouteStats stats;
  const auto vec = g.route_vector(m, g.index(0, 0), &stats);
  const auto scalar = g.route_scalar(g.index(0, 0));
  EXPECT_EQ(vec, scalar);
  EXPECT_GT(stats.wavefronts, 0u);
}

TEST(RouteVectorTest, FrontierDedupActuallyFires) {
  // On an open grid the wavefront reconverges constantly: without the
  // overwrite-and-check dedup the frontier would blow up exponentially.
  Grid g(16, 16);
  VectorMachine m;
  RouteStats stats;
  g.route_vector(m, g.index(8, 8), &stats);
  EXPECT_GT(stats.dedup_dropped, 0u);
}

TEST(RouteVectorTest, SourceIsObstacleRejected) {
  Grid g(3, 3);
  g.set_obstacle(1, 1);
  VectorMachine m;
  EXPECT_THROW(g.route_vector(m, g.index(1, 1)), PreconditionError);
}

TEST(BacktraceTest, PathIsShortestAndConnected) {
  Grid g(6, 6);
  g.set_obstacle(2, 1);
  g.set_obstacle(2, 2);
  g.set_obstacle(2, 3);
  const Word source = g.index(0, 2);
  const Word target = g.index(5, 2);
  const auto dist = g.route_scalar(source);
  const auto path = g.backtrace(dist, source, target);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), source);
  EXPECT_EQ(path.back(), target);
  EXPECT_EQ(static_cast<Word>(path.size() - 1),
            dist[static_cast<std::size_t>(target)]);
  // Consecutive path cells are grid neighbours.
  for (std::size_t i = 1; i < path.size(); ++i) {
    const Word diff = path[i] - path[i - 1];
    EXPECT_TRUE(diff == 1 || diff == -1 || diff == 6 || diff == -6)
        << "step " << i;
  }
}

TEST(BacktraceTest, UnreachableTargetYieldsEmptyPath) {
  Grid g(3, 3);
  g.set_obstacle(1, 0);
  g.set_obstacle(1, 1);
  g.set_obstacle(1, 2);
  const auto dist = g.route_scalar(g.index(0, 0));
  EXPECT_TRUE(g.backtrace(dist, g.index(0, 0), g.index(2, 2)).empty());
}

TEST(MultiSourceTest, NearestSourceWins) {
  Grid g(9, 1);
  const WordVec sources{g.index(0, 0), g.index(8, 0)};
  const auto dist = g.route_scalar_multi(sources);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[8], 0);
  EXPECT_EQ(dist[4], 4);  // equidistant midpoint
  EXPECT_EQ(dist[6], 2);  // nearer to the right source
}

TEST(MultiSourceTest, VectorMatchesScalarWithDuplicateSources) {
  Grid g(12, 7);
  g.set_obstacle(5, 3);
  g.set_obstacle(5, 4);
  const WordVec sources{g.index(0, 0), g.index(11, 6), g.index(0, 0)};
  VectorMachine m;
  RouteStats stats;
  const auto vec = g.route_vector_multi(m, sources, &stats);
  const auto scalar = g.route_scalar_multi(sources);
  EXPECT_EQ(vec, scalar);
  EXPECT_GT(stats.wavefronts, 0u);
}

TEST(MultiSourceTest, SingleSourceVariantUnchanged) {
  Grid g(5, 5);
  const WordVec one{g.index(2, 2)};
  EXPECT_EQ(g.route_scalar_multi(one), g.route_scalar(g.index(2, 2)));
}

// (width, height, obstacle density %, scatter order, seed)
using MazeSweep =
    std::tuple<std::size_t, std::size_t, int, ScatterOrder, int>;

class MazePropertyTest : public ::testing::TestWithParam<MazeSweep> {};

TEST_P(MazePropertyTest, VectorFieldEqualsScalarField) {
  const auto [w, h, density, order, seed] = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 131 + w * 7 + h);
  Grid g(w, h);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      if ((x != 0 || y != 0) &&
          rng.unit() < static_cast<double>(density) / 100.0) {
        g.set_obstacle(x, y);
      }
    }
  }
  const Word source = g.index(0, 0);
  MachineConfig cfg;
  cfg.scatter_order = order;
  VectorMachine m(cfg);
  const auto vec = g.route_vector(m, source);
  const auto scalar = g.route_scalar(source);
  EXPECT_EQ(vec, scalar);
}

INSTANTIATE_TEST_SUITE_P(
    RandomMazes, MazePropertyTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 7, 24),
                       ::testing::Values<std::size_t>(1, 9, 24),
                       ::testing::Values(0, 20, 45),
                       ::testing::Values(ScatterOrder::kForward,
                                         ScatterOrder::kShuffled),
                       ::testing::Values(1, 2)));

}  // namespace
}  // namespace folvec::routing
