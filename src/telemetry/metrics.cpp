#include "telemetry/metrics.h"

#include <atomic>
#include <bit>
#include <sstream>

#include "support/json.h"

namespace folvec::telemetry {

namespace {

std::atomic<MetricsRegistry*> g_metrics{nullptr};

/// Namespaces that describe the host-execution machinery (thread pool,
/// backend identity, fault injection) rather than the modeled computation;
/// excluded from the deterministic view because they legitimately vary with
/// worker count ("fault.": the worker-fault site is only checked by the
/// parallel backend, so serial and parallel runs under one plan see
/// different check counts).
bool is_host_namespace(std::string_view name) {
  return name.rfind("pool.", 0) == 0 || name.rfind("backend.", 0) == 0 ||
         name.rfind("fault.", 0) == 0;
}

}  // namespace

// ---- HistogramData ----------------------------------------------------------

std::size_t histogram_bucket(std::uint64_t value) {
  return static_cast<std::size_t>(std::bit_width(value));
}

std::pair<std::uint64_t, std::uint64_t> histogram_bucket_range(std::size_t b) {
  if (b == 0) return {0, 0};
  const std::uint64_t lo = std::uint64_t{1} << (b - 1);
  const std::uint64_t hi =
      b == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << b) - 1;
  return {lo, hi};
}

void HistogramData::record(std::uint64_t value, std::uint64_t weight) {
  if (weight == 0) return;
  buckets[histogram_bucket(value)] += weight;
  if (count == 0 || value < min) min = value;
  if (value > max) max = value;
  count += weight;
  sum += value * weight;
}

void HistogramData::merge(const HistogramData& other) {
  if (other.count == 0) return;
  for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
  if (count == 0 || other.min < min) min = other.min;
  if (other.max > max) max = other.max;
  count += other.count;
  sum += other.sum;
}

// ---- MetricsSnapshot --------------------------------------------------------

MetricsSnapshot MetricsSnapshot::deterministic() const {
  MetricsSnapshot out;
  for (const auto& [k, v] : counters) {
    if (!is_host_namespace(k)) out.counters.emplace(k, v);
  }
  for (const auto& [k, v] : gauges) {
    if (!is_host_namespace(k)) out.gauges.emplace(k, v);
  }
  for (const auto& [k, v] : histograms) {
    if (!is_host_namespace(k)) out.histograms.emplace(k, v);
  }
  return out;
}

MetricsSnapshot MetricsSnapshot::diff(const MetricsSnapshot& after,
                                      const MetricsSnapshot& before) {
  MetricsSnapshot out = after;
  for (auto& [k, v] : out.counters) {
    const auto it = before.counters.find(k);
    if (it != before.counters.end()) v -= it->second;
  }
  for (auto& [k, h] : out.histograms) {
    const auto it = before.histograms.find(k);
    if (it == before.histograms.end()) continue;
    const HistogramData& b = it->second;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      h.buckets[i] -= b.buckets[i];
    }
    h.count -= b.count;
    h.sum -= b.sum;
    // min/max cannot be un-merged; keep the after-side extremes.
  }
  for (auto& [k, t] : out.timings) {
    const auto it = before.timings.find(k);
    if (it != before.timings.end()) t -= it->second;
  }
  return out;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [k, v] : other.counters) counters[k] += v;
  for (const auto& [k, v] : other.gauges) {
    const auto [it, fresh] = gauges.emplace(k, v);
    if (!fresh && v > it->second) it->second = v;
  }
  for (const auto& [k, h] : other.histograms) histograms[k].merge(h);
  for (const auto& [k, t] : other.timings) timings[k] += t;
  for (const auto& [k, s] : other.labels) labels[k] = s;
}

std::string MetricsSnapshot::to_text() const {
  std::ostringstream os;
  for (const auto& [k, v] : counters) {
    os << "counter   " << k << " = " << v << '\n';
  }
  for (const auto& [k, v] : gauges) {
    os << "gauge     " << k << " = " << v << '\n';
  }
  for (const auto& [k, h] : histograms) {
    os << "histogram " << k << ": count=" << h.count << " sum=" << h.sum
       << " min=" << h.min << " max=" << h.max << '\n';
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      const auto [lo, hi] = histogram_bucket_range(b);
      os << "            [" << lo << ".." << hi << "] " << h.buckets[b]
         << '\n';
    }
  }
  for (const auto& [k, t] : timings) {
    os << "timing    " << k << " = " << t << " s\n";
  }
  for (const auto& [k, s] : labels) {
    os << "label     " << k << " = " << s << '\n';
  }
  return os.str();
}

std::string MetricsSnapshot::to_json(int indent) const {
  JsonObject counters_json;
  for (const auto& [k, v] : counters) counters_json.emplace_back(k, v);
  JsonObject gauges_json;
  for (const auto& [k, v] : gauges) gauges_json.emplace_back(k, v);
  JsonObject hists_json;
  for (const auto& [k, h] : histograms) {
    JsonArray buckets;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      const auto [lo, hi] = histogram_bucket_range(b);
      buckets.push_back(JsonObject{
          {"lo", lo}, {"hi", hi}, {"count", h.buckets[b]}});
    }
    hists_json.emplace_back(
        k, JsonObject{{"count", h.count},
                      {"sum", h.sum},
                      {"min", h.min},
                      {"max", h.max},
                      {"buckets", std::move(buckets)}});
  }
  JsonObject timings_json;
  for (const auto& [k, t] : timings) timings_json.emplace_back(k, t);
  JsonObject labels_json;
  for (const auto& [k, s] : labels) labels_json.emplace_back(k, s);
  const JsonValue doc(JsonObject{{"counters", std::move(counters_json)},
                                 {"gauges", std::move(gauges_json)},
                                 {"histograms", std::move(hists_json)},
                                 {"timings", std::move(timings_json)},
                                 {"labels", std::move(labels_json)}});
  return doc.dump(indent);
}

// ---- MetricsRegistry --------------------------------------------------------

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  const std::lock_guard<std::mutex> lk(mu_);
  data_.counters[std::string(name)] += delta;
}

void MetricsRegistry::gauge_set(std::string_view name, std::int64_t value) {
  const std::lock_guard<std::mutex> lk(mu_);
  data_.gauges[std::string(name)] = value;
}

void MetricsRegistry::gauge_max(std::string_view name, std::int64_t value) {
  const std::lock_guard<std::mutex> lk(mu_);
  const auto [it, fresh] = data_.gauges.emplace(std::string(name), value);
  if (!fresh && value > it->second) it->second = value;
}

void MetricsRegistry::observe(std::string_view name, std::uint64_t value,
                              std::uint64_t weight) {
  const std::lock_guard<std::mutex> lk(mu_);
  data_.histograms[std::string(name)].record(value, weight);
}

void MetricsRegistry::time_add(std::string_view name, double seconds) {
  const std::lock_guard<std::mutex> lk(mu_);
  data_.timings[std::string(name)] += seconds;
}

void MetricsRegistry::label(std::string_view name, std::string value) {
  const std::lock_guard<std::mutex> lk(mu_);
  data_.labels[std::string(name)] = std::move(value);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return data_;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lk(mu_);
  data_ = MetricsSnapshot{};
}

// ---- global install ---------------------------------------------------------

MetricsRegistry* metrics() {
  return g_metrics.load(std::memory_order_relaxed);
}

void install_metrics(MetricsRegistry* registry) {
  g_metrics.store(registry, std::memory_order_release);
}

ScopedMetrics::ScopedMetrics(MetricsRegistry& registry)
    : previous_(metrics()) {
  install_metrics(&registry);
}

ScopedMetrics::~ScopedMetrics() { install_metrics(previous_); }

}  // namespace folvec::telemetry
