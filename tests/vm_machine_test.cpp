// Unit tests for the vector machine substrate: functional semantics of every
// primitive, the three scatter-order modes, the ELS failure injection, and
// bounds checking.
#include "vm/machine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <string>

#include "support/prng.h"

namespace folvec::vm {
namespace {

using ::testing::Test;

class MachineTest : public Test {
 protected:
  VectorMachine m_;
};

TEST_F(MachineTest, IotaProducesArithmeticSequence) {
  EXPECT_EQ(m_.iota(5), (WordVec{0, 1, 2, 3, 4}));
  EXPECT_EQ(m_.iota(4, 10), (WordVec{10, 11, 12, 13}));
  EXPECT_EQ(m_.iota(3, 1, -2), (WordVec{1, -1, -3}));
  EXPECT_TRUE(m_.iota(0).empty());
}

TEST_F(MachineTest, SplatReplicates) {
  EXPECT_EQ(m_.splat(3, 7), (WordVec{7, 7, 7}));
}

TEST_F(MachineTest, CopyIsIdentity) {
  const WordVec v{3, 1, 4, 1, 5};
  EXPECT_EQ(m_.copy(v), v);
}

TEST_F(MachineTest, ElementwiseArithmetic) {
  const WordVec a{1, 2, 3};
  const WordVec b{10, 20, 30};
  EXPECT_EQ(m_.add(a, b), (WordVec{11, 22, 33}));
  EXPECT_EQ(m_.sub(b, a), (WordVec{9, 18, 27}));
  EXPECT_EQ(m_.add_scalar(a, 5), (WordVec{6, 7, 8}));
  EXPECT_EQ(m_.mul_scalar(a, 3), (WordVec{3, 6, 9}));
  EXPECT_EQ(m_.negate(a), (WordVec{-1, -2, -3}));
  EXPECT_EQ(m_.and_scalar(WordVec{5, 6, 7}, 3), (WordVec{1, 2, 3}));
}

TEST_F(MachineTest, DivScalarIsFloorDivision) {
  EXPECT_EQ(m_.div_scalar(WordVec{7, -7, 6, -6}, 3), (WordVec{2, -3, 2, -2}));
}

TEST_F(MachineTest, ModScalarIsEuclidean) {
  EXPECT_EQ(m_.mod_scalar(WordVec{7, -7, 6, 0}, 3), (WordVec{1, 2, 0, 0}));
}

TEST_F(MachineTest, MismatchedLengthsThrow) {
  EXPECT_THROW(m_.add(WordVec{1}, WordVec{1, 2}), PreconditionError);
  EXPECT_THROW(m_.eq(WordVec{1}, WordVec{1, 2}), PreconditionError);
}

TEST_F(MachineTest, ComparesProduceMasks) {
  const WordVec a{1, 5, 3};
  const WordVec b{1, 2, 9};
  EXPECT_EQ(m_.eq(a, b), (Mask{1, 0, 0}));
  EXPECT_EQ(m_.ne(a, b), (Mask{0, 1, 1}));
  EXPECT_EQ(m_.le(a, b), (Mask{1, 0, 1}));
  EXPECT_EQ(m_.lt(a, b), (Mask{0, 0, 1}));
  EXPECT_EQ(m_.eq_scalar(a, 5), (Mask{0, 1, 0}));
  EXPECT_EQ(m_.ne_scalar(a, 5), (Mask{1, 0, 1}));
  EXPECT_EQ(m_.le_scalar(a, 3), (Mask{1, 0, 1}));
  EXPECT_EQ(m_.lt_scalar(a, 3), (Mask{1, 0, 0}));
  EXPECT_EQ(m_.ge_scalar(a, 3), (Mask{0, 1, 1}));
}

TEST_F(MachineTest, MaskAlgebra) {
  const Mask a{1, 1, 0, 0};
  const Mask b{1, 0, 1, 0};
  EXPECT_EQ(m_.mask_and(a, b), (Mask{1, 0, 0, 0}));
  EXPECT_EQ(m_.mask_or(a, b), (Mask{1, 1, 1, 0}));
  EXPECT_EQ(m_.mask_not(a), (Mask{0, 0, 1, 1}));
  EXPECT_EQ(m_.count_true(a), 2u);
  EXPECT_EQ(m_.count_true(Mask{}), 0u);
}

TEST_F(MachineTest, CompressPacksTrueLanes) {
  EXPECT_EQ(m_.compress(WordVec{1, 2, 3}, Mask{1, 0, 1}), (WordVec{1, 3}));
  EXPECT_TRUE(m_.compress(WordVec{1, 2}, Mask{0, 0}).empty());
}

TEST_F(MachineTest, SelectMergesByMask) {
  EXPECT_EQ(m_.select(Mask{1, 0, 1}, WordVec{1, 2, 3}, WordVec{7, 8, 9}),
            (WordVec{1, 8, 3}));
}

TEST_F(MachineTest, FromMaskYieldsZeroOne) {
  EXPECT_EQ(m_.from_mask(Mask{1, 0, 1}), (WordVec{1, 0, 1}));
}

TEST_F(MachineTest, ContiguousLoadStoreFill) {
  WordVec table(6, 0);
  m_.store(table, 2, WordVec{7, 8});
  EXPECT_EQ(table, (WordVec{0, 0, 7, 8, 0, 0}));
  EXPECT_EQ(m_.load(table, 1, 3), (WordVec{0, 7, 8}));
  m_.fill(table, 9);
  EXPECT_EQ(table, WordVec(6, 9));
  EXPECT_THROW(m_.store(table, 5, WordVec{1, 2}), PreconditionError);
  EXPECT_THROW(m_.load(table, 5, 2), PreconditionError);
}

TEST_F(MachineTest, StridedLoadStore) {
  WordVec table{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(m_.load_strided(table, 1, 3, 3), (WordVec{1, 4, 7}));
  m_.store_strided(table, 0, 4, WordVec{100, 200});
  EXPECT_EQ(table[0], 100);
  EXPECT_EQ(table[4], 200);
  EXPECT_THROW(m_.load_strided(table, 2, 3, 3), PreconditionError);
}

TEST_F(MachineTest, GatherReadsThroughIndices) {
  const WordVec table{10, 20, 30, 40};
  EXPECT_EQ(m_.gather(table, WordVec{3, 0, 3}), (WordVec{40, 10, 40}));
  EXPECT_THROW(m_.gather(table, WordVec{4}), PreconditionError);
  EXPECT_THROW(m_.gather(table, WordVec{-1}), PreconditionError);
}

TEST_F(MachineTest, GatherMaskedSkipsInactiveLanes) {
  const WordVec table{10, 20};
  // Inactive lanes may carry wild indices (e.g. null links).
  EXPECT_EQ(m_.gather_masked(table, WordVec{-1, 1, 99}, Mask{0, 1, 0}, -7),
            (WordVec{-7, 20, -7}));
  EXPECT_THROW(m_.gather_masked(table, WordVec{9}, Mask{1}, 0),
               PreconditionError);
}

TEST_F(MachineTest, ScatterWithoutDuplicatesIsOrderIndependent) {
  for (const auto order : {ScatterOrder::kForward, ScatterOrder::kReverse,
                           ScatterOrder::kShuffled}) {
    MachineConfig cfg;
    cfg.scatter_order = order;
    VectorMachine m(cfg);
    WordVec table(4, 0);
    m.scatter(table, WordVec{2, 0, 3}, WordVec{7, 8, 9});
    EXPECT_EQ(table, (WordVec{8, 0, 7, 9}));
  }
}

TEST_F(MachineTest, ScatterDuplicateSurvivorDependsOnOrder) {
  // These scatters probe machine-dependent duplicate behaviour on purpose,
  // so they opt out of the hazard audit.
  {
    MachineConfig cfg;
    cfg.audit = false;
    cfg.scatter_order = ScatterOrder::kForward;
    VectorMachine m(cfg);
    WordVec table(1, 0);
    m.scatter(table, WordVec{0, 0, 0}, WordVec{1, 2, 3});
    EXPECT_EQ(table[0], 3);  // last lane wins
  }
  {
    MachineConfig cfg;
    cfg.audit = false;
    cfg.scatter_order = ScatterOrder::kReverse;
    VectorMachine m(cfg);
    WordVec table(1, 0);
    m.scatter(table, WordVec{0, 0, 0}, WordVec{1, 2, 3});
    EXPECT_EQ(table[0], 1);  // first lane wins
  }
}

TEST_F(MachineTest, ShuffledScatterSatisfiesEls) {
  MachineConfig cfg;
  cfg.audit = false;  // intentional duplicate scatters
  cfg.scatter_order = ScatterOrder::kShuffled;
  VectorMachine m(cfg);
  // Whatever the interleaving, the survivor must be one of the written
  // values (the ELS condition) — across many repetitions.
  for (int rep = 0; rep < 100; ++rep) {
    WordVec table(2, -1);
    m.scatter(table, WordVec{0, 0, 1, 0}, WordVec{10, 20, 99, 30});
    EXPECT_TRUE(table[0] == 10 || table[0] == 20 || table[0] == 30);
    EXPECT_EQ(table[1], 99);  // singleton writes always land intact
  }
}

TEST_F(MachineTest, ShuffledScatterEventuallyVariesSurvivor) {
  MachineConfig cfg;
  cfg.audit = false;  // intentional duplicate scatters
  cfg.scatter_order = ScatterOrder::kShuffled;
  VectorMachine m(cfg);
  bool saw_different = false;
  Word first = 0;
  for (int rep = 0; rep < 64 && !saw_different; ++rep) {
    WordVec table(1, -1);
    m.scatter(table, WordVec{0, 0, 0, 0}, WordVec{1, 2, 3, 4});
    if (rep == 0) {
      first = table[0];
    } else if (table[0] != first) {
      saw_different = true;
    }
  }
  EXPECT_TRUE(saw_different)
      << "64 shuffled scatters never changed the duplicate survivor";
}

TEST_F(MachineTest, ElsViolationInjectionProducesAmalgam) {
  MachineConfig cfg;
  cfg.audit = false;  // the injected amalgam is the point, not a hazard
  cfg.inject_els_violation = true;
  VectorMachine m(cfg);
  WordVec table(2, 0);
  m.scatter(table, WordVec{0, 0, 1}, WordVec{5, 9, 42});
  // Colliding lanes: an amalgam of both values that equals neither.
  EXPECT_NE(table[0], 5);
  EXPECT_NE(table[0], 9);
  EXPECT_EQ(table[0], (5 + 1) ^ (9 + 1));
  // Singleton lanes stay intact.
  EXPECT_EQ(table[1], 42);
}

TEST_F(MachineTest, ScatterMaskedOnlyWritesActiveLanes) {
  WordVec table(3, 0);
  m_.scatter_masked(table, WordVec{0, 1, 2}, WordVec{7, 8, 9}, Mask{1, 0, 1});
  EXPECT_EQ(table, (WordVec{7, 0, 9}));
}

TEST_F(MachineTest, ScatterOrderedLastLaneWinsEvenOnReverseMachine) {
  MachineConfig cfg;
  cfg.scatter_order = ScatterOrder::kReverse;
  VectorMachine m(cfg);
  WordVec table(1, 0);
  m.scatter_ordered(table, WordVec{0, 0}, WordVec{1, 2});
  EXPECT_EQ(table[0], 2);
}

TEST_F(MachineTest, BitwiseAndShiftOps) {
  EXPECT_EQ(m_.or_scalar(WordVec{1, 4, 0}, 2), (WordVec{3, 6, 2}));
  EXPECT_EQ(m_.shl_scalar(WordVec{1, 3}, 4), (WordVec{16, 48}));
  EXPECT_EQ(m_.shr_scalar(WordVec{16, 48, -8}, 3), (WordVec{2, 6, -1}));
  EXPECT_THROW(m_.shl_scalar(WordVec{-1}, 1), PreconditionError);
  EXPECT_THROW(m_.shr_scalar(WordVec{1}, 64), PreconditionError);
}

TEST_F(MachineTest, ReverseFlipsElementOrder) {
  EXPECT_EQ(m_.reverse(WordVec{1, 2, 3}), (WordVec{3, 2, 1}));
  EXPECT_TRUE(m_.reverse(WordVec{}).empty());
  EXPECT_EQ(m_.reverse(WordVec{7}), (WordVec{7}));
}

TEST_F(MachineTest, Reductions) {
  const WordVec v{3, -1, 4, 1, 5};
  EXPECT_EQ(m_.reduce_sum(v), 12);
  EXPECT_EQ(m_.reduce_min(v), -1);
  EXPECT_EQ(m_.reduce_max(v), 5);
  EXPECT_EQ(m_.reduce_sum(WordVec{}), 0);
  EXPECT_THROW(m_.reduce_min(WordVec{}), PreconditionError);
  EXPECT_THROW(m_.reduce_max(WordVec{}), PreconditionError);
}

TEST_F(MachineTest, MaskedScatterSkipsBoundsCheckOnInactiveLanes) {
  // Inactive lanes may carry wild indices, mirroring gather_masked.
  WordVec table(2, 0);
  m_.scatter_masked(table, WordVec{-5, 1, 99}, WordVec{7, 8, 9},
                    Mask{0, 1, 0});
  EXPECT_EQ(table, (WordVec{0, 8}));
  EXPECT_THROW(
      m_.scatter_masked(table, WordVec{99}, WordVec{1}, Mask{1}),
      PreconditionError);
}

TEST_F(MachineTest, ContiguousBoundsChecksSurviveOffsetOverflow) {
  // Regression: the old checks computed `offset + v.size()` /
  // `offset + n`, which wraps for offsets near SIZE_MAX and used to let a
  // huge offset slip past the guard. Subtraction-form checks must throw.
  WordVec table(8, 0);
  const WordVec vals{1, 2, 3, 4};
  EXPECT_THROW(m_.load(table, SIZE_MAX - 1, 4), PreconditionError);
  EXPECT_THROW(m_.load(table, SIZE_MAX, 1), PreconditionError);
  EXPECT_THROW(m_.store(table, SIZE_MAX - 2, vals), PreconditionError);
  EXPECT_THROW(m_.load(table, 9, 0), PreconditionError);
  // In-range operations still work, including the exact-fit edge.
  m_.store(table, 4, vals);
  EXPECT_EQ(m_.load(table, 4, 4), vals);
  EXPECT_TRUE(m_.load(table, 8, 0).empty());
}

TEST_F(MachineTest, StridedBoundsChecksSurviveOverflow) {
  // Regression: `offset + (n-1)*stride` overflows for huge strides; the
  // rewritten check divides instead of multiplying.
  WordVec table(8, 0);
  EXPECT_THROW(m_.load_strided(table, 0, SIZE_MAX / 2 + 1, 3),
               PreconditionError);
  EXPECT_THROW(m_.load_strided(table, 2, SIZE_MAX - 1, 2), PreconditionError);
  EXPECT_THROW(m_.store_strided(table, 2, SIZE_MAX - 1, WordVec{1, 2}),
               PreconditionError);
  EXPECT_THROW(m_.load_strided(table, 8, 1, 1), PreconditionError);
  // n == 0 touches nothing, so even absurd offsets/strides are legal.
  EXPECT_TRUE(m_.load_strided(table, SIZE_MAX, SIZE_MAX, 0).empty());
  m_.store_strided(table, SIZE_MAX, SIZE_MAX, WordVec{});
  // Exact-fit edges still pass: last element lands on table.back().
  table = {0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(m_.load_strided(table, 1, 3, 3), (WordVec{1, 4, 7}));
  m_.store_strided(table, 1, 3, WordVec{-1, -4, -7});
  EXPECT_EQ(table, (WordVec{0, -1, 2, 3, -4, 5, 6, -7}));
}

TEST_F(MachineTest, ElsViolationInjectionMatchesQuadraticReference) {
  // Regression for the O(n^2) -> O(n) rewrite of the injection path: the
  // amalgam written to each contested address must stay byte-identical to
  // the brute-force definition (XOR of val+1 over every colliding lane;
  // uncontested lanes store their value unchanged).
  MachineConfig cfg;
  cfg.inject_els_violation = true;
  cfg.audit = false;
  VectorMachine m(cfg);
  Xoshiro256 rng(0x1badb002);
  for (int round = 0; round < 20; ++round) {
    const auto n = static_cast<std::size_t>(rng.in_range(1, 400));
    const auto areas = static_cast<std::size_t>(
        rng.in_range(1, static_cast<Word>(n)));
    WordVec idx(n);
    WordVec vals(n);
    for (auto& x : idx) x = rng.in_range(0, static_cast<Word>(areas) - 1);
    for (auto& x : vals) x = rng.in_range(-1000, 1000);
    WordVec got(areas, -1);
    m.scatter(got, idx, vals);
    WordVec want(areas, -1);
    for (std::size_t a = 0; a < areas; ++a) {
      std::size_t collisions = 0;
      Word amalgam = 0;
      for (std::size_t lane = 0; lane < n; ++lane) {
        if (idx[lane] == static_cast<Word>(a)) {
          ++collisions;
          amalgam ^= vals[lane] + 1;
          if (collisions == 1) want[a] = vals[lane];
        }
      }
      if (collisions > 1) want[a] = amalgam;
    }
    ASSERT_EQ(got, want) << "injection amalgam diverged at round " << round;
  }
}

/// Saves one environment variable on construction, restores it on
/// destruction, so default-parsing tests cannot leak into other tests (or
/// be confused by CI jobs that export FOLVEC_AUDIT=1).
class ScopedEnv {
 public:
  explicit ScopedEnv(const char* name) : name_(name) {
    const char* cur = std::getenv(name);
    if (cur != nullptr) saved_ = cur;
    had_ = cur != nullptr;
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

  void set(const char* value) { ::setenv(name_, value, 1); }
  void unset() { ::unsetenv(name_); }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST_F(MachineTest, AuditDefaultParsesOffSpellingsCaseInsensitively) {
  // Regression: only the literal "0" used to turn the auditor off, so
  // FOLVEC_AUDIT=off counter-intuitively *enabled* it.
  const ScopedEnv env("FOLVEC_AUDIT");
  for (const char* off : {"0", "00", "false", "OFF", "No", " off "}) {
    ::setenv("FOLVEC_AUDIT", off, 1);
    EXPECT_FALSE(MachineConfig::audit_default()) << '"' << off << '"';
  }
  for (const char* on : {"1", "true", "ON", "Yes"}) {
    ::setenv("FOLVEC_AUDIT", on, 1);
    EXPECT_TRUE(MachineConfig::audit_default()) << '"' << on << '"';
  }
}

TEST_F(MachineTest, BackendDefaultParsesNamesAndBooleanSpellings) {
  const ScopedEnv env("FOLVEC_BACKEND");
  for (const char* serial : {"serial", "SERIAL", " Serial ", "0", "off",
                             "false", "No"}) {
    ::setenv("FOLVEC_BACKEND", serial, 1);
    EXPECT_EQ(MachineConfig::backend_default(), BackendKind::kSerial)
        << '"' << serial << '"';
  }
  for (const char* parallel : {"parallel", "Parallel", "1", "on", "true",
                               "Yes"}) {
    ::setenv("FOLVEC_BACKEND", parallel, 1);
    EXPECT_EQ(MachineConfig::backend_default(), BackendKind::kParallel)
        << '"' << parallel << '"';
  }
}

TEST_F(MachineTest, BackendIntrospection) {
  // Explicit configs on both machines: the suite must pass regardless of
  // what FOLVEC_BACKEND the environment exports.
  MachineConfig cfg;
  cfg.backend = BackendKind::kSerial;
  const VectorMachine s(cfg);
  EXPECT_STREQ(s.backend_name(), "serial");
  EXPECT_EQ(s.backend_workers(), 1u);
  cfg.backend = BackendKind::kParallel;
  cfg.backend_threads = 3;
  cfg.audit = false;
  const VectorMachine p(cfg);
  EXPECT_STREQ(p.backend_name(), "parallel");
  EXPECT_EQ(p.backend_workers(), 3u);
}

TEST_F(MachineTest, CostAccumulatorCountsInstructionsAndElements) {
  VectorMachine m;
  m.iota(10);
  m.iota(20);
  EXPECT_EQ(m.cost().instructions(OpClass::kVectorArith), 2u);
  EXPECT_EQ(m.cost().elements(OpClass::kVectorArith), 30u);
  m.scalar_mem(3);
  EXPECT_EQ(m.cost().elements(OpClass::kScalarMem), 3u);
  m.cost().reset();
  EXPECT_EQ(m.cost().total_instructions(), 0u);
}

}  // namespace
}  // namespace folvec::vm
