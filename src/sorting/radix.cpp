#include "sorting/radix.h"

#include <vector>

#include "fol/ordered.h"
#include "sorting/scan.h"
#include "support/require.h"
#include "telemetry/metrics.h"

namespace folvec::sorting {

using vm::Mask;
using vm::VectorMachine;
using vm::Word;
using vm::WordVec;

namespace {

void check_input(std::span<const Word> data, int bits_per_digit) {
  FOLVEC_REQUIRE(bits_per_digit >= 1 && bits_per_digit <= 16,
                 "bits_per_digit must be in [1, 16]");
  for (Word x : data) {
    FOLVEC_REQUIRE(x >= 0, "radix sort needs non-negative data");
  }
}

int passes_needed(std::span<const Word> data, int bits_per_digit) {
  Word max_val = 0;
  for (Word x : data) max_val = std::max(max_val, x);
  int bits = 0;
  while ((max_val >> bits) != 0) ++bits;
  return (bits + bits_per_digit - 1) / bits_per_digit;
}

}  // namespace

void radix_sort_scalar(std::span<Word> data, int bits_per_digit,
                       vm::CostAccumulator* cost) {
  check_input(data, bits_per_digit);
  if (data.size() < 2) return;
  vm::ScalarCost sc(cost);
  const auto radix = std::size_t{1} << bits_per_digit;
  const auto mask = static_cast<Word>(radix - 1);
  const int passes = passes_needed(data, bits_per_digit);

  std::vector<Word> out(data.size());
  std::vector<Word> count(radix);
  for (int p = 0; p < passes; ++p) {
    const int shift = p * bits_per_digit;
    std::fill(count.begin(), count.end(), 0);
    sc.mem(radix);
    sc.branch(radix);
    for (Word x : data) {
      ++count[static_cast<std::size_t>((x >> shift) & mask)];
      sc.alu(3);
      sc.mem(3);
      sc.branch(1);
    }
    inclusive_scan_scalar(count, cost);
    for (std::size_t j = data.size(); j-- > 0;) {
      const auto d = static_cast<std::size_t>((data[j] >> shift) & mask);
      out[static_cast<std::size_t>(--count[d])] = data[j];
      sc.alu(4);
      sc.mem(4);
      sc.branch(1);
    }
    for (std::size_t j = 0; j < data.size(); ++j) {
      data[j] = out[j];
      sc.mem(2);
      sc.branch(1);
    }
  }
}

RadixStats radix_sort_vector(VectorMachine& m, std::span<Word> data,
                             int bits_per_digit) {
  RadixStats stats;
  check_input(data, bits_per_digit);
  if (data.size() < 2) return stats;
  const auto radix = std::size_t{1} << bits_per_digit;
  const auto mask = static_cast<Word>(radix - 1);
  const int passes = passes_needed(data, bits_per_digit);
  const vm::AlgoSpan span(m, "sorting.radix");
  telemetry::count("sorting.radix.calls");

  std::vector<Word> count(radix);
  std::vector<Word> base(radix);
  std::vector<Word> work(radix, 0);
  std::vector<Word> out(data.size());
  WordVec vals = m.copy(data);
  WordVec shifted;
  WordVec digits;

  for (int p = 0; p < passes; ++p) {
    const vm::AlgoSpan pass_span(m, "digit_pass",
                                 static_cast<std::size_t>(p));
    ++stats.digit_passes;
    const int shift = p * bits_per_digit;
    // Digit extraction is a two-op elementwise chain; queue both under one
    // OpBatch, composed through named buffers per the batch lifetime rule.
    {
      const vm::VectorMachine::OpBatch batch(m);
      m.shr_scalar_into(shifted, vals, shift);
      m.and_scalar_into(digits, shifted, mask);
    }

    // Stable decomposition: occurrence j of every digit lands in set j.
    const fol::Decomposition dec = fol::fol1_decompose_ordered(m, digits, work);
    stats.fol_rounds += dec.rounds();

    // Histogram per set (conflict-free within a set), then base[d] =
    // number of elements with a smaller digit (exclusive scan).
    m.fill(count, 0);
    std::vector<WordVec> set_digits(dec.rounds());
    std::vector<WordVec> set_vals(dec.rounds());
    for (std::size_t j = 0; j < dec.rounds(); ++j) {
      set_digits[j].reserve(dec.sets[j].size());
      set_vals[j].reserve(dec.sets[j].size());
      for (std::size_t lane : dec.sets[j]) {
        set_digits[j].push_back(digits[lane]);
        set_vals[j].push_back(vals[lane]);
      }
      const WordVec c = m.gather(count, set_digits[j]);
      m.scatter(count, set_digits[j], m.add_scalar(c, 1));
    }
    m.store(base, 0, m.load(count, 0, radix));
    inclusive_scan_vector(m, base);
    const WordVec base_v = m.sub(m.load(base, 0, radix), m.load(count, 0, radix));
    m.store(base, 0, base_v);

    // Stable placement: set j's lane with digit d goes to base[d] + j.
    for (std::size_t j = 0; j < dec.rounds(); ++j) {
      const WordVec pos = m.add_scalar(m.gather(base, set_digits[j]),
                                       static_cast<Word>(j));
      m.scatter(out, pos, set_vals[j]);
    }
    vals = m.load(out, 0, out.size());
  }
  m.retire_work(work);
  m.store(data, 0, vals);
  telemetry::count("sorting.radix.fol_rounds", stats.fol_rounds);
  telemetry::count("sorting.radix.digit_passes", stats.digit_passes);
  return stats;
}

}  // namespace folvec::sorting
