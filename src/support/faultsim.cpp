#include "support/faultsim.h"

#include <cstdlib>

#include "support/env.h"
#include "support/require.h"

namespace folvec {

namespace {

std::atomic<FaultPlan*> g_faults{nullptr};

/// splitmix64 finalizer: a full-avalanche mix of (seed, site, check index),
/// so per-site rate draws are independent streams that replay exactly.
std::uint64_t mix(std::uint64_t seed, std::uint64_t site,
                  std::uint64_t index) {
  std::uint64_t z = seed + site * 0x9E3779B97F4A7C15ULL + index + 1;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kPoolAlloc:
      return "pool_alloc";
    case FaultSite::kElsViolation:
      return "els";
    case FaultSite::kProbeSaturation:
      return "probe";
    case FaultSite::kWorkerFault:
      return "worker";
  }
  return "unknown";
}

InjectedFault::InjectedFault(FaultSite fault_site)
    : std::runtime_error(std::string("injected fault: ") +
                         fault_site_name(fault_site)),
      site(fault_site) {}

FaultPlan::FaultPlan(std::uint64_t seed, std::string_view spec)
    : seed_(seed), spec_(spec) {
  // Clause grammar: site=RATE | site@K | site%K, separated by commas and/or
  // whitespace. Parsing is strict — a typo'd fault spec that silently
  // injected nothing would defeat the whole point of the harness.
  std::size_t at = 0;
  const auto is_sep = [](char c) {
    return c == ',' || c == ' ' || c == '\t' || c == '\n';
  };
  while (at < spec.size()) {
    while (at < spec.size() && is_sep(spec[at])) ++at;
    if (at == spec.size()) break;
    std::size_t end = at;
    while (end < spec.size() && !is_sep(spec[end])) ++end;
    const std::string_view clause = spec.substr(at, end - at);
    at = end;

    const std::size_t op = clause.find_first_of("=@%");
    FOLVEC_REQUIRE(op != std::string_view::npos && op > 0 &&
                       op + 1 < clause.size(),
                   "fault spec clause must be site=RATE, site@K or site%K");
    const std::string_view name = clause.substr(0, op);
    const std::string value(clause.substr(op + 1));

    int site = -1;
    for (std::size_t s = 0; s < kFaultSiteCount; ++s) {
      if (name == fault_site_name(static_cast<FaultSite>(s))) {
        site = static_cast<int>(s);
        break;
      }
    }
    FOLVEC_REQUIRE(site >= 0,
                   "unknown fault site (expected pool_alloc, els, probe or "
                   "worker)");

    SiteRule& rule = rules_[static_cast<std::size_t>(site)];
    char* parse_end = nullptr;
    if (clause[op] == '=') {
      const double rate = std::strtod(value.c_str(), &parse_end);
      FOLVEC_REQUIRE(parse_end != nullptr && *parse_end == '\0' &&
                         rate >= 0.0 && rate <= 1.0,
                     "fault rate must be a number in [0, 1]");
      rule.mode = SiteRule::Mode::kRate;
      rule.rate = rate;
    } else {
      const unsigned long long k = std::strtoull(value.c_str(), &parse_end, 10);
      FOLVEC_REQUIRE(parse_end != nullptr && *parse_end == '\0' && k >= 1,
                     "fault clause count must be a positive integer");
      rule.mode = clause[op] == '@' ? SiteRule::Mode::kOnce
                                    : SiteRule::Mode::kEvery;
      rule.k = k;
    }
  }
}

bool FaultPlan::fires(FaultSite site) {
  const auto s = static_cast<std::size_t>(site);
  const SiteRule& rule = rules_[s];
  if (rule.mode == SiteRule::Mode::kOff) return false;
  const std::uint64_t i = checks_[s].fetch_add(1, std::memory_order_relaxed);
  bool hit = false;
  switch (rule.mode) {
    case SiteRule::Mode::kOff:
      break;
    case SiteRule::Mode::kOnce:
      hit = (i + 1 == rule.k);
      break;
    case SiteRule::Mode::kEvery:
      hit = ((i + 1) % rule.k == 0);
      break;
    case SiteRule::Mode::kRate: {
      // 53 bits of the mix as a uniform double in [0, 1).
      const double u =
          static_cast<double>(mix(seed_, s, i) >> 11) * 0x1.0p-53;
      hit = u < rule.rate;
      break;
    }
  }
  if (hit) fired_[s].fetch_add(1, std::memory_order_relaxed);
  return hit;
}

std::uint64_t FaultPlan::checks(FaultSite site) const {
  return checks_[static_cast<std::size_t>(site)].load(
      std::memory_order_relaxed);
}

std::uint64_t FaultPlan::fired(FaultSite site) const {
  return fired_[static_cast<std::size_t>(site)].load(
      std::memory_order_relaxed);
}

std::uint64_t FaultPlan::total_fired() const {
  std::uint64_t n = 0;
  for (std::size_t s = 0; s < kFaultSiteCount; ++s) {
    n += fired_[s].load(std::memory_order_relaxed);
  }
  return n;
}

void FaultPlan::reset() {
  for (std::size_t s = 0; s < kFaultSiteCount; ++s) {
    checks_[s].store(0, std::memory_order_relaxed);
    fired_[s].store(0, std::memory_order_relaxed);
  }
}

std::unique_ptr<FaultPlan> FaultPlan::from_env() {
  const auto spec = env_value("FOLVEC_FAULT_SPEC");
  if (!spec) return nullptr;
  std::uint64_t seed = 0;
  if (const auto seed_env = env_value("FOLVEC_FAULT_SEED")) {
    seed = std::strtoull(seed_env->c_str(), nullptr, 10);
  }
  return std::make_unique<FaultPlan>(seed, *spec);
}

FaultPlan* faults() { return g_faults.load(std::memory_order_acquire); }

FaultPlan* install_faults(FaultPlan* plan) {
  return g_faults.exchange(plan, std::memory_order_acq_rel);
}

}  // namespace folvec
