// Fixed-width table and CSV output used by the benchmark harnesses.
//
// Every bench binary reproduces a table or figure from the paper; the
// TablePrinter gives them a consistent, diffable plain-text format plus an
// optional CSV sink for plotting.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace folvec {

/// One table cell: text, an integer, or a floating value with precision.
class Cell {
 public:
  Cell(std::string text) : value_(std::move(text)) {}        // NOLINT
  Cell(const char* text) : value_(std::string(text)) {}      // NOLINT
  Cell(long long v) : value_(v) {}                           // NOLINT
  Cell(unsigned long long v) : value_(static_cast<long long>(v)) {}  // NOLINT
  Cell(int v) : value_(static_cast<long long>(v)) {}         // NOLINT
  Cell(std::size_t v) : value_(static_cast<long long>(v)) {} // NOLINT
  Cell(double v, int precision = 2)                          // NOLINT
      : value_(v), precision_(precision) {}

  std::string render() const;

 private:
  std::variant<std::string, long long, double> value_;
  int precision_ = 2;
};

/// Collects rows and prints them as an aligned text table and/or CSV.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<Cell> cells);

  /// Renders an aligned, pipe-separated table.
  std::string to_text() const;

  /// Renders RFC-4180-ish CSV (no quoting needed for our numeric content).
  std::string to_csv() const;

  /// Prints the text table to `os`, preceded by `title` if non-empty.
  void print(std::ostream& os, const std::string& title = "") const;

  std::size_t row_count() const { return rows_.size(); }

  /// Raw access for the bench reporter's JSON twins: the header names and
  /// the rendered (string-form) rows, in insertion order.
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace folvec
