// Ablation: FOL1 cost versus duplicate multiplicity (Theorems 4 and 6).
//
// With N lanes spread over D distinct storage areas, the maximum
// multiplicity is ceil(N/D) and FOL1 needs exactly that many rounds
// (Lemma 3 / Theorem 5). Theorem 4 says the run time is O(N) while sharing
// is rare; Theorem 6 says it degrades to O(N^2) when every lane hits one
// area. This bench sweeps D from N down to 1 and reports modeled time and
// rounds, demonstrating the transition, plus the N-scaling at fixed
// duplication to exhibit O(N) behaviour.
#include <iostream>

#include "bench_harness/experiments.h"
#include "bench_harness/report.h"
#include "support/require.h"
#include "support/table_printer.h"

int main() {
  using namespace folvec;
  bench::BenchReport report("ablation_duplicates");
  report.config("n", 4096);
  report.config("scaling_duplication_percent", 1);
  const vm::CostParams params = vm::CostParams::s810_like();

  {
    const std::size_t n = 4096;
    TablePrinter table(
        {"distinct", "max_mult", "rounds", "vector_us", "scalar_us"});
    double time_unique = 0;
    double time_all_same = 0;
    for (std::size_t d : {n, n / 2, n / 8, n / 64, n / 512, std::size_t{2},
                          std::size_t{1}}) {
      // adaptive=false: this sweep *measures* the pure Theorem 5/6 round
      // structure; the adaptive drain (measured in the next block) exists
      // precisely to cut the quadratic tail this table demonstrates.
      const bench::RunResult r =
          bench::run_fol1_decompose(n, d, 42, params, /*adaptive=*/false);
      const std::size_t max_mult = (n + d - 1) / d;
      FOLVEC_CHECK(r.iterations == max_mult,
                   "rounds must equal the maximum multiplicity (Theorem 5)");
      table.add_row({Cell(static_cast<long long>(d)),
                     Cell(static_cast<long long>(max_mult)),
                     Cell(r.iterations), Cell(r.vector_us, 1),
                     Cell(r.scalar_us, 1)});
      if (d == n) time_unique = r.vector_us;
      if (d == 1) time_all_same = r.vector_us;
    }
    table.print(std::cout,
                "Ablation: FOL1 rounds and cost vs duplication (N=4096)");
    report.add_table("Ablation: FOL1 rounds and cost vs duplication (N=4096)",
                     table);
    report.note("worst_best_time_ratio", time_all_same / time_unique);
    std::cout << "\nworst/best time ratio: " << time_all_same / time_unique
              << "x (Theorem 6: all-duplicates costs O(N^2))\n\n";
    FOLVEC_CHECK(time_all_same > 50.0 * time_unique,
                 "all-duplicate input must be drastically slower");

    // Graceful degradation: the same pathological inputs with the adaptive
    // drain on (the production default). The collapse detector hands the
    // high-multiplicity tail to the scalar unit in one O(k) pass, so the
    // worst case lands within a small constant of the duplicate-free run
    // instead of the ~N/2-fold Theorem 6 blowup above.
    TablePrinter adaptive_table(
        {"distinct", "rounds", "pure_us", "adaptive_us", "speedup"});
    double adaptive_all_same = 0;
    for (std::size_t d : {std::size_t{2}, std::size_t{1}}) {
      const bench::RunResult pure =
          bench::run_fol1_decompose(n, d, 42, params, /*adaptive=*/false);
      const bench::RunResult drained =
          bench::run_fol1_decompose(n, d, 42, params, /*adaptive=*/true);
      FOLVEC_CHECK(drained.iterations == pure.iterations,
                   "the drain must preserve Theorem 5 round counts");
      adaptive_table.add_row(
          {Cell(static_cast<long long>(d)), Cell(drained.iterations),
           Cell(pure.vector_us, 1), Cell(drained.vector_us, 1),
           Cell(pure.vector_us / drained.vector_us, 1)});
      if (d == 1) adaptive_all_same = drained.vector_us;
    }
    adaptive_table.print(
        std::cout, "Ablation: adaptive drain on the Theorem 6 worst case");
    report.add_table("Ablation: adaptive drain on the Theorem 6 worst case",
                     adaptive_table);
    const double adaptive_ratio = adaptive_all_same / time_unique;
    report.note("adaptive_worst_best_time_ratio", adaptive_ratio);
    std::cout << "\nadaptive worst/best time ratio: " << adaptive_ratio
              << "x (drain bounds the Theorem 6 quadratic)\n\n";
    FOLVEC_CHECK(adaptive_ratio < 10.0,
                 "adaptive drain must keep the worst case within 10x of the "
                 "duplicate-free run");
  }

  {
    TablePrinter table({"N", "vector_us", "us_per_lane"});
    double prev_per_lane = 0;
    bool first = true;
    for (std::size_t n : {512u, 1024u, 2048u, 4096u, 8192u, 16384u}) {
      // Fixed 1% duplication: the Theorem 4 regime.
      const bench::RunResult r =
          bench::run_fol1_decompose(n, n - n / 100, 7, params);
      const double per_lane = r.vector_us / static_cast<double>(n);
      table.add_row({Cell(static_cast<long long>(n)), Cell(r.vector_us, 1),
                     Cell(per_lane, 4)});
      if (!first) {
        FOLVEC_CHECK(per_lane < prev_per_lane * 1.25,
                     "per-lane cost must stay ~flat with rare sharing "
                     "(Theorem 4: O(N))");
      }
      prev_per_lane = per_lane;
      first = false;
    }
    table.print(std::cout,
                "Ablation: FOL1 scaling with 1% duplication (Theorem 4)");
    report.add_table("Ablation: FOL1 scaling with 1% duplication (Theorem 4)",
                     table);
    std::cout << "\nper-lane cost is flat: FOL1 is O(N) when sharing is "
                 "rare\n";
  }
  return 0;
}
