// Environment-driven telemetry session.
//
// EnvSession is the one object a binary needs to construct to honor the
// telemetry environment variables:
//
//   FOLVEC_TRACE_JSON=<path>  install a SpanTracer, write a Chrome
//                             trace-event file to <path> at destruction
//   FOLVEC_METRICS=<path>     write the final metrics snapshot as JSON to
//                             <path> at destruction ("-" = stderr; boolean
//                             spellings like "1" also mean stderr)
//   FOLVEC_FAULT_SPEC=<spec>  install a deterministic FaultPlan for the
//                             session (see support/faultsim.h for the
//                             clause grammar), seeded by FOLVEC_FAULT_SEED
//                             (default 0)
//
// A MetricsRegistry and a calibration Profiler are installed
// unconditionally: both are cheap, and the bench reporter reads the
// snapshot and the per-op-class fits whether or not FOLVEC_METRICS asked
// for a copy on disk. Binaries that want the zero-overhead path
// (micro_vm's guard) simply don't construct a session.
//
// The session installs on construction and uninstalls + flushes on
// destruction, so a bench main's natural scoping produces complete files.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "support/faultsim.h"
#include "telemetry/metrics.h"
#include "telemetry/profile.h"
#include "telemetry/spans.h"

namespace folvec::telemetry {

class EnvSession {
 public:
  EnvSession();
  ~EnvSession();
  EnvSession(const EnvSession&) = delete;
  EnvSession& operator=(const EnvSession&) = delete;

  MetricsRegistry& registry() { return registry_; }
  /// The session's calibration profiler (installed for the whole session).
  Profiler& session_profiler() { return profiler_; }
  /// Non-null when FOLVEC_TRACE_JSON requested a trace.
  SpanTracer* span_tracer() { return tracer_.get(); }
  const std::optional<std::string>& trace_path() const { return trace_path_; }
  /// Non-null when FOLVEC_FAULT_SPEC installed a fault plan.
  FaultPlan* fault_plan() { return fault_plan_.get(); }

  /// Writes pending outputs (trace file, FOLVEC_METRICS dump) now instead of
  /// at destruction; safe to call more than once.
  void flush();

 private:
  MetricsRegistry registry_;
  Profiler profiler_;
  std::unique_ptr<SpanTracer> tracer_;
  std::unique_ptr<FaultPlan> fault_plan_;
  std::optional<std::string> trace_path_;
  std::optional<std::string> metrics_path_;
  MetricsRegistry* previous_metrics_;
  Profiler* previous_profiler_;
  SpanTracer* previous_tracer_ = nullptr;
  FaultPlan* previous_faults_ = nullptr;
  bool flushed_ = false;
};

}  // namespace folvec::telemetry
