file(REMOVE_RECURSE
  "CMakeFiles/ablation_duplicates.dir/ablation_duplicates.cpp.o"
  "CMakeFiles/ablation_duplicates.dir/ablation_duplicates.cpp.o.d"
  "ablation_duplicates"
  "ablation_duplicates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_duplicates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
