# Empty compiler generated dependencies file for folvec_rewrite.
# This may be replaced when dependencies are built.
