// Benchmarks for the extension features beyond the paper's evaluation:
//   * N-queens (Kanada's earlier SIVP showcase, reference [7]) — pure
//     index-vector breadth-first search, no FOL needed;
//   * the O(n) sort family shootout — address calculation vs distribution
//     counting vs the new stable LSD radix sort (ordered-FOL counting
//     passes), showing where each algorithm's fixed costs pay off;
//   * VectorHashMap batch upserts (the adoptable facade, with growth).
#include <algorithm>
#include <iostream>

#include "bench_harness/experiments.h"
#include "bench_harness/report.h"
#include "hashing/hash_map.h"
#include "queens/queens.h"
#include "sorting/address_calc.h"
#include "sorting/dist_count.h"
#include "sorting/radix.h"
#include "support/prng.h"
#include "support/require.h"
#include "support/table_printer.h"

int main() {
  using namespace folvec;
  using vm::Word;
  using vm::WordVec;
  const vm::CostParams params = vm::CostParams::s810_like();
  bench::BenchReport report("extensions");
  report.config("queens_n", JsonArray{6, 7, 8, 9, 10, 11});
  report.config("sort_sizes", JsonArray{256, 4096, 65536});
  report.config("upsert_batches", JsonArray{100, 1000, 10000});

  {
    TablePrinter table({"N", "solutions", "scalar_us", "vector_us", "accel",
                        "max_frontier"});
    double best = 0;
    for (std::size_t n = 6; n <= 11; ++n) {
      vm::CostAccumulator scalar_acc;
      const queens::QueensStats s = queens::count_scalar(n, &scalar_acc);
      vm::VectorMachine m;
      const queens::QueensStats v = queens::count_vector(m, n);
      FOLVEC_CHECK(s.solutions == v.solutions, "queens counts disagree");
      const double scalar_us = scalar_acc.microseconds(params);
      const double vector_us = m.cost().microseconds(params);
      best = std::max(best, scalar_us / vector_us);
      table.add_row({Cell(static_cast<long long>(n)), Cell(v.solutions),
                     Cell(scalar_us, 1), Cell(vector_us, 1),
                     Cell(scalar_us / vector_us, 2), Cell(v.max_frontier)});
    }
    table.print(std::cout,
                "Extension: N-queens, scalar backtracking vs SIVP "
                "breadth-first (modeled S-810)");
    report.add_table(
        "Extension: N-queens, scalar backtracking vs SIVP breadth-first "
        "(modeled S-810)",
        table);
    report.note("queens_best_accel", best);
    FOLVEC_CHECK(best > 1.0, "SIVP queens must beat scalar at larger N");
    std::cout << '\n';
  }

  {
    TablePrinter table({"n", "addr-calc_us", "dist-count_us", "radix8_us",
                        "winner"});
    for (std::size_t n : {256u, 4096u, 65536u}) {
      const Word bound = 1 << 16;
      const auto data = random_keys(n, bound, n);
      auto expected = data;
      std::sort(expected.begin(), expected.end());

      auto d1 = data;
      vm::VectorMachine m1;
      sorting::address_calc_sort_vector(m1, d1, bound);
      auto d2 = data;
      vm::VectorMachine m2;
      sorting::dist_count_sort_vector(m2, d2, bound);
      auto d3 = data;
      vm::VectorMachine m3;
      sorting::radix_sort_vector(m3, d3, 8);
      FOLVEC_CHECK(d1 == expected && d2 == expected && d3 == expected,
                   "a vectorized sort produced a wrong order");
      const double t1 = m1.cost().microseconds(params);
      const double t2 = m2.cost().microseconds(params);
      const double t3 = m3.cost().microseconds(params);
      const char* winner = t1 <= t2 && t1 <= t3   ? "addr-calc"
                           : t2 <= t1 && t2 <= t3 ? "dist-count"
                                                  : "radix";
      table.add_row({Cell(static_cast<long long>(n)), Cell(t1, 1),
                     Cell(t2, 1), Cell(t3, 1), winner});
    }
    table.print(std::cout,
                "Extension: vectorized O(n) sort family, 16-bit keys "
                "(modeled S-810)");
    report.add_table(
        "Extension: vectorized O(n) sort family, 16-bit keys (modeled "
        "S-810)",
        table);
    std::cout << "\nnote the radix blow-up at large n: a digit's expected "
                 "multiplicity is n/256, and the ordered-FOL counting pass "
                 "pays one round per duplicate (Theorem 6's regime) — "
                 "per-duplicate serialization is the wrong tool once "
                 "multiplicities are large, exactly as the paper's O(N^2) "
                 "bound warns\n\n";
  }

  {
    TablePrinter table(
        {"batches", "batch_size", "final_size", "rehashes", "vector_us",
         "us_per_op"});
    for (std::size_t batch : {100u, 1000u, 10000u}) {
      vm::VectorMachine m;
      hashing::VectorHashMap map;
      Xoshiro256 rng(batch);
      const std::size_t n_batches = 8;
      for (std::size_t b = 0; b < n_batches; ++b) {
        WordVec keys(batch);
        WordVec values(batch);
        for (std::size_t i = 0; i < batch; ++i) {
          keys[i] = rng.in_range(0, 1 << 24);
          values[i] = static_cast<Word>(i);
        }
        map.upsert_batch(m, keys, values);
      }
      const double us = m.cost().microseconds(params);
      const double ops = static_cast<double>(n_batches * batch);
      table.add_row({Cell(static_cast<long long>(n_batches)),
                     Cell(static_cast<long long>(batch)), Cell(map.size()),
                     Cell(map.rehash_count()), Cell(us, 1),
                     Cell(us / ops, 3)});
    }
    table.print(std::cout,
                "Extension: VectorHashMap batch upserts with vectorized "
                "growth (modeled S-810)");
    report.add_table(
        "Extension: VectorHashMap batch upserts with vectorized growth "
        "(modeled S-810)",
        table);
    std::cout << "\nper-op cost falls as batches grow: vector startup "
                 "amortizes across the batch\n";
  }
  return 0;
}
