// Minimal JSON value model, writer, and recursive-descent parser.
//
// The telemetry layer renders metric snapshots and Chrome trace events as
// JSON, the bench reporter writes BENCH_<name>.json files, and the CI schema
// checker (tools/bench_schema_check) reads them back. One shared value model
// keeps writer and reader agreeing on the dialect: UTF-8 passthrough
// strings, doubles rendered with enough digits to round-trip, no comments,
// no trailing commas. This is not a general-purpose JSON library — it
// supports exactly what the repo's own files need, which is also why it can
// stay ~200 lines and dependency-free.
#pragma once

#include <concepts>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace folvec {

class JsonValue;

/// Object members keep insertion order (benches want stable, diffable
/// files), so the storage is a vector of pairs, not a map.
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;
using JsonArray = std::vector<JsonValue>;

class JsonValue {
 public:
  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}          // NOLINT
  JsonValue(bool b) : value_(b) {}                        // NOLINT
  JsonValue(double d) : value_(d) {}                      // NOLINT
  template <typename I>
    requires(std::integral<I> && !std::same_as<I, bool>)
  JsonValue(I i) : value_(static_cast<double>(i)) {}      // NOLINT
  JsonValue(std::string s) : value_(std::move(s)) {}      // NOLINT
  JsonValue(const char* s) : value_(std::string(s)) {}    // NOLINT
  JsonValue(JsonArray a)                                  // NOLINT
      : value_(std::make_shared<JsonArray>(std::move(a))) {}
  JsonValue(JsonObject o)                                 // NOLINT
      : value_(std::make_shared<JsonObject>(std::move(o))) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const {
    return std::holds_alternative<std::shared_ptr<JsonArray>>(value_);
  }
  bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(value_);
  }

  bool as_bool() const { return std::get<bool>(value_); }
  double as_number() const { return std::get<double>(value_); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const JsonArray& as_array() const {
    return *std::get<std::shared_ptr<JsonArray>>(value_);
  }
  const JsonObject& as_object() const {
    return *std::get<std::shared_ptr<JsonObject>>(value_);
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Serializes compactly (`indent < 0`) or pretty-printed with `indent`
  /// spaces per level.
  std::string dump(int indent = -1) const;

  /// Parses a complete JSON document. Throws folvec::PreconditionError with
  /// a byte offset on malformed input; trailing garbage is an error.
  static JsonValue parse(std::string_view text);

  /// Escapes and quotes one string for direct streaming into JSON output.
  static std::string quote(std::string_view s);

 private:
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      value_;
};

}  // namespace folvec
