file(REMOVE_RECURSE
  "CMakeFiles/example_paper_listing.dir/paper_listing.cpp.o"
  "CMakeFiles/example_paper_listing.dir/paper_listing.cpp.o.d"
  "paper_listing"
  "paper_listing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_paper_listing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
