# Empty compiler generated dependencies file for example_sort_pipeline.
# This may be replaced when dependencies are built.
