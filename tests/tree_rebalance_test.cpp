// Tests for BST rebalancing (the paper's future-work item): minimum height,
// unchanged contents, idempotence, and interplay with bulk insertion.
#include <gtest/gtest.h>

#include <cmath>

#include "support/prng.h"
#include "tree/bst.h"
#include "vm/machine.h"

namespace folvec::tree {
namespace {

using vm::VectorMachine;
using vm::Word;
using vm::WordVec;

std::size_t min_height(std::size_t n) {
  std::size_t h = 0;
  while ((std::size_t{1} << h) - 1 < n) ++h;
  return h;
}

TEST(RebalanceTest, ChainBecomesMinimumHeight) {
  VectorMachine m;
  Bst t(64);
  for (Word k = 0; k < 31; ++k) t.insert_scalar(k);  // right chain, height 31
  ASSERT_EQ(t.height(), 31u);
  const auto before = t.inorder();
  t.rebalance(m);
  EXPECT_EQ(t.height(), 5u);  // 31 nodes fit a perfect tree of height 5
  EXPECT_EQ(t.inorder(), before);
  EXPECT_TRUE(t.check_invariant());
}

TEST(RebalanceTest, EmptyAndSingleton) {
  VectorMachine m;
  Bst empty(4);
  empty.rebalance(m);
  EXPECT_EQ(empty.height(), 0u);
  Bst one(4);
  one.insert_scalar(42);
  one.rebalance(m);
  EXPECT_EQ(one.height(), 1u);
  EXPECT_TRUE(one.contains(42));
}

TEST(RebalanceTest, DuplicatesSurvive) {
  VectorMachine m;
  Bst t(16);
  for (Word k : {Word{5}, Word{5}, Word{5}, Word{2}, Word{9}, Word{5}}) {
    t.insert_scalar(k);
  }
  const auto before = t.inorder();
  t.rebalance(m);
  EXPECT_EQ(t.inorder(), before);
  EXPECT_TRUE(t.contains(5));
  EXPECT_TRUE(t.contains(2));
  EXPECT_TRUE(t.contains(9));
  EXPECT_FALSE(t.contains(3));
}

TEST(RebalanceTest, Idempotent) {
  VectorMachine m;
  Bst t(128);
  for (Word k : random_keys(100, 1 << 20, 3)) t.insert_scalar(k);
  t.rebalance(m);
  const std::size_t h1 = t.height();
  const auto seq = t.inorder();
  t.rebalance(m);
  EXPECT_EQ(t.height(), h1);
  EXPECT_EQ(t.inorder(), seq);
}

TEST(RebalanceTest, BulkInsertAfterRebalanceStillWorks) {
  VectorMachine m;
  Bst t(256);
  for (Word k : random_keys(100, 1000, 5)) t.insert_scalar(k);
  t.rebalance(m);
  t.insert_bulk(m, random_keys(100, 1000, 6));
  EXPECT_EQ(t.size(), 200u);
  EXPECT_TRUE(t.check_invariant());
}

class RebalanceHeightTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RebalanceHeightTest, AlwaysReachesMinimumHeight) {
  const std::size_t n = GetParam();
  VectorMachine m;
  Bst t(n + 1);
  for (Word k : random_keys(n, 1 << 30, n)) t.insert_scalar(k);
  t.rebalance(m);
  EXPECT_EQ(t.height(), min_height(n));
  EXPECT_TRUE(t.check_invariant());
}

INSTANTIATE_TEST_SUITE_P(Sizes, RebalanceHeightTest,
                         ::testing::Values(1, 2, 3, 7, 8, 100, 1000, 1023,
                                           1024));

}  // namespace
}  // namespace folvec::tree
