#include "telemetry/spans.h"

#include <atomic>
#include <fstream>
#include <ostream>

#include "support/json.h"

namespace folvec::telemetry {

namespace {

std::atomic<SpanTracer*> g_tracer{nullptr};

}  // namespace

SpanTracer::SpanTracer(std::size_t capacity)
    : epoch_(Clock::now()), capacity_(capacity) {
  events_.reserve(capacity < 4096 ? capacity : 4096);
}

void SpanTracer::push(Event e) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(e));
}

void SpanTracer::begin(std::string name, std::uint64_t chime_instructions,
                       std::uint64_t chime_elements) {
  stack_.push_back(
      Open{std::move(name), Clock::now(), chime_instructions, chime_elements});
}

void SpanTracer::end(std::uint64_t chime_instructions,
                     std::uint64_t chime_elements) {
  if (stack_.empty()) return;
  Open open = std::move(stack_.back());
  stack_.pop_back();
  const double ts = to_us(open.start);
  const double dur = to_us(Clock::now()) - ts;
  push(Event{/*static_name=*/nullptr, std::move(open.name), ts, dur,
             /*elements=*/0,
             chime_instructions >= open.chime_instructions
                 ? chime_instructions - open.chime_instructions
                 : 0,
             chime_elements >= open.chime_elements
                 ? chime_elements - open.chime_elements
                 : 0,
             /*is_op=*/false});
}

void SpanTracer::op(const char* static_name, std::size_t elements,
                    Clock::time_point start, Clock::time_point end) {
  const double ts = to_us(start);
  push(Event{static_name, std::string(), ts, to_us(end) - ts,
             static_cast<std::uint64_t>(elements), 0, 0, /*is_op=*/true});
}

void SpanTracer::append_event_json(std::ostream& os, const Event& e,
                                   bool& first) const {
  if (!first) os << ",\n";
  first = false;
  const std::string_view name =
      e.static_name != nullptr ? std::string_view(e.static_name)
                               : std::string_view(e.name);
  os << "    {\"name\": " << JsonValue::quote(name)
     << ", \"cat\": " << (e.is_op ? "\"op\"" : "\"span\"")
     << ", \"ph\": \"X\", \"pid\": 1, \"tid\": 1"
     << ", \"ts\": " << JsonValue(e.ts_us).dump()
     << ", \"dur\": " << JsonValue(e.dur_us).dump();
  if (e.is_op) {
    os << ", \"args\": {\"elements\": " << e.elements << "}";
  } else {
    os << ", \"args\": {\"chime_instructions\": " << e.chime_instructions
       << ", \"chime_elements\": " << e.chime_elements << "}";
  }
  os << "}";
}

void SpanTracer::write_chrome_trace(std::ostream& os) const {
  os << "{\n  \"traceEvents\": [\n";
  bool first = true;
  for (const Event& e : events_) append_event_json(os, e, first);
  // Spans still open at write time are emitted as-of-now so a trace
  // captured mid-run (e.g. from an atexit hook) is still well formed.
  const double now_us = to_us(Clock::now());
  for (const Open& open : stack_) {
    const double ts = to_us(open.start);
    append_event_json(
        os,
        Event{nullptr, open.name, ts, now_us - ts, 0, 0, 0, /*is_op=*/false},
        first);
  }
  os << "\n  ],\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {"
     << "\"dropped_events\": " << dropped_ << "}\n}\n";
}

bool SpanTracer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os);
  return os.good();
}

SpanTracer* tracer() { return g_tracer.load(std::memory_order_relaxed); }

void install_tracer(SpanTracer* t) {
  g_tracer.store(t, std::memory_order_release);
}

ScopedTracer::ScopedTracer(SpanTracer& t) : previous_(tracer()) {
  install_tracer(&t);
}

ScopedTracer::~ScopedTracer() { install_tracer(previous_); }

}  // namespace folvec::telemetry
