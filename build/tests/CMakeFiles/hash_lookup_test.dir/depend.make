# Empty dependencies file for hash_lookup_test.
# This may be replaced when dependencies are built.
