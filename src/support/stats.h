// Small descriptive-statistics helpers for benchmark reporting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "support/require.h"

namespace folvec {

struct Summary {
  double min = 0;
  double max = 0;
  double mean = 0;
  double median = 0;
  double stddev = 0;
};

/// Computes min/max/mean/median/population-stddev of `xs` (must be nonempty).
inline Summary summarize(std::vector<double> xs) {
  FOLVEC_REQUIRE(!xs.empty(), "summarize() needs at least one sample");
  Summary s;
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  const std::size_t n = xs.size();
  s.median = (n % 2 == 1) ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
  double sum = 0;
  for (double x : xs) sum += x;
  s.mean = sum / static_cast<double>(n);
  double ss = 0;
  for (double x : xs) ss += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(ss / static_cast<double>(n));
  return s;
}

/// Geometric mean of strictly positive samples.
inline double geomean(const std::vector<double>& xs) {
  FOLVEC_REQUIRE(!xs.empty(), "geomean() needs at least one sample");
  double logsum = 0;
  for (double x : xs) {
    FOLVEC_REQUIRE(x > 0, "geomean() needs positive samples");
    logsum += std::log(x);
  }
  return std::exp(logsum / static_cast<double>(xs.size()));
}

}  // namespace folvec
