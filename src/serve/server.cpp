#include "serve/server.h"

#include <chrono>

#include "support/require.h"
#include "telemetry/spans.h"

namespace folvec::serve {

using vm::Word;
using vm::WordVec;

const char* op_kind_name(OpKind op) {
  switch (op) {
    case OpKind::kUpsert:
      return "upsert";
    case OpKind::kLookup:
      return "lookup";
    case OpKind::kErase:
      return "erase";
  }
  return "unknown";
}

BatchServer::BatchServer(const BatchServerConfig& config)
    : coalescer_(queue_, config.coalesce), map_(config.map) {}

BatchServer::~BatchServer() {
  if (running_) stop();
  queue_.close();
}

std::uint64_t BatchServer::submit(OpKind op, Word key, Word value) {
  FOLVEC_REQUIRE(op != OpKind::kUpsert || value != kAbsent,
                 "upsert value collides with the kAbsent lookup sentinel");
  return queue_.push(op, key, value);
}

std::size_t BatchServer::pump() {
  const std::vector<Request> batch = coalescer_.poll_batch();
  if (batch.empty()) return 0;
  execute(batch);
  return batch.size();
}

std::size_t BatchServer::pump_all() {
  std::size_t total = 0;
  for (std::size_t n = pump(); n != 0; n = pump()) total += n;
  return total;
}

void BatchServer::start() {
  FOLVEC_REQUIRE(!running_, "BatchServer already started");
  running_ = true;
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

void BatchServer::stop() {
  if (!running_) return;
  queue_.close();  // dispatch_loop drains the queue, then exits
  dispatcher_.join();
  running_ = false;
}

void BatchServer::dispatch_loop() {
  while (true) {
    const std::vector<Request> batch = coalescer_.next_batch();
    if (batch.empty()) break;  // closed and drained
    execute(batch);
  }
}

std::vector<Response> BatchServer::take_responses() {
  std::vector<Response> out;
  std::lock_guard<std::mutex> lock(response_mu_);
  out.swap(responses_);
  return out;
}

void BatchServer::execute(const std::vector<Request>& batch) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<Response> replies;
  replies.reserve(batch.size());

  // Maximal same-op runs in arrival order: the cheapest split that keeps
  // an interleaved stream sequentially consistent while still handing the
  // vector layer the widest batches the stream allows.
  std::size_t i = 0;
  while (i < batch.size()) {
    std::size_t j = i;
    while (j < batch.size() && batch[j].op == batch[i].op) ++j;
    const std::size_t n = j - i;
    WordVec keys(n);
    for (std::size_t k = 0; k < n; ++k) keys[k] = batch[i + k].key;

    switch (batch[i].op) {
      case OpKind::kUpsert: {
        WordVec vals(n);
        for (std::size_t k = 0; k < n; ++k) vals[k] = batch[i + k].value;
        map_.upsert_batch(keys, vals);
        for (std::size_t k = 0; k < n; ++k) {
          replies.push_back(Response{batch[i + k].id, OpKind::kUpsert,
                                     ResponseStatus::kOk, 0});
        }
        break;
      }
      case OpKind::kLookup: {
        const WordVec found = map_.lookup_batch(keys, kAbsent);
        for (std::size_t k = 0; k < n; ++k) {
          const bool hit = found[k] != kAbsent;
          replies.push_back(Response{batch[i + k].id, OpKind::kLookup,
                                     hit ? ResponseStatus::kOk
                                         : ResponseStatus::kMissing,
                                     hit ? found[k] : 0});
        }
        break;
      }
      case OpKind::kErase: {
        map_.erase_batch(keys);
        // Batch-level removal counts live in serve.erased; per-key
        // presence would cost an extra probe pass, so erase replies are
        // uniformly kOk (erase of an absent key is a no-op, not an error).
        for (std::size_t k = 0; k < n; ++k) {
          replies.push_back(Response{batch[i + k].id, OpKind::kErase,
                                     ResponseStatus::kOk, 0});
        }
        break;
      }
    }
    i = j;
  }

  const auto end = std::chrono::steady_clock::now();
  for (const Request& r : batch) {
    const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
        end - r.enqueued_at);
    latency_us_[static_cast<std::size_t>(r.op)].record(
        waited.count() < 0 ? 0u : static_cast<std::uint64_t>(waited.count()));
  }
  served_ += batch.size();
  telemetry::count("serve.responses", replies.size());
  telemetry::time_add("serve.batch_wall_seconds",
                      std::chrono::duration<double>(end - start).count());
  if (telemetry::tracing()) {
    telemetry::tracer()->op("serve.batch", batch.size(), start, end);
  }

  std::lock_guard<std::mutex> lock(response_mu_);
  responses_.insert(responses_.end(), replies.begin(), replies.end());
}

}  // namespace folvec::serve
