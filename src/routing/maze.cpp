#include "routing/maze.h"

#include <algorithm>

#include "support/require.h"
#include "vm/checker.h"

namespace folvec::routing {

using vm::Mask;
using vm::VectorMachine;
using vm::Word;
using vm::WordVec;

Grid::Grid(std::size_t width, std::size_t height)
    : width_(width), height_(height), obstacle_(width * height, 0) {
  FOLVEC_REQUIRE(width > 0 && height > 0, "grid must be non-degenerate");
}

void Grid::set_obstacle(std::size_t x, std::size_t y) {
  obstacle_[static_cast<std::size_t>(index(x, y))] = 1;
}

bool Grid::is_obstacle(std::size_t x, std::size_t y) const {
  return obstacle_[static_cast<std::size_t>(index(x, y))] != 0;
}

Word Grid::index(std::size_t x, std::size_t y) const {
  FOLVEC_REQUIRE(x < width_ && y < height_, "grid coordinate out of range");
  return static_cast<Word>(y * width_ + x);
}

std::vector<Word> Grid::blank_distance_field() const {
  std::vector<Word> dist(cells(), kUnreached);
  for (std::size_t i = 0; i < cells(); ++i) {
    if (obstacle_[i]) dist[i] = kObstacle;
  }
  return dist;
}

std::vector<Word> Grid::route_scalar(Word source, vm::CostAccumulator* cost,
                                     RouteStats* stats) const {
  return route_scalar_multi(std::span<const Word>(&source, 1), cost, stats);
}

std::vector<Word> Grid::route_scalar_multi(std::span<const Word> sources,
                                           vm::CostAccumulator* cost,
                                           RouteStats* stats) const {
  vm::ScalarCost sc(cost);
  std::vector<Word> dist = blank_distance_field();
  sc.mem(cells());
  std::vector<Word> queue;
  for (const Word source : sources) {
    FOLVEC_REQUIRE(dist[static_cast<std::size_t>(source)] != kObstacle,
                   "source must not be an obstacle");
    if (dist[static_cast<std::size_t>(source)] != 0) {
      dist[static_cast<std::size_t>(source)] = 0;
      queue.push_back(source);
    }
    sc.mem(2);
    sc.branch(1);
  }
  std::size_t head = 0;
  const auto w = static_cast<Word>(width_);
  Word current_level = 0;
  while (head < queue.size()) {
    const Word cell = queue[head++];
    const Word d = dist[static_cast<std::size_t>(cell)];
    if (stats != nullptr && d == current_level) {
      ++stats->wavefronts;
      ++current_level;
    }
    const Word x = cell % w;
    sc.div(1);
    sc.mem(2);
    sc.branch(1);
    const Word neighbours[4] = {
        x + 1 < w ? cell + 1 : Word{-1},
        x > 0 ? cell - 1 : Word{-1},
        cell + w < static_cast<Word>(cells()) ? cell + w : Word{-1},
        cell - w >= 0 ? cell - w : Word{-1},
    };
    for (const Word n : neighbours) {
      sc.alu(2);
      sc.branch(2);
      if (n < 0) continue;
      sc.mem(1);
      if (dist[static_cast<std::size_t>(n)] != kUnreached) continue;
      dist[static_cast<std::size_t>(n)] = d + 1;
      queue.push_back(n);
      sc.mem(2);
    }
  }
  return dist;
}

std::vector<Word> Grid::route_vector(VectorMachine& m, Word source,
                                     RouteStats* stats) const {
  return route_vector_multi(m, std::span<const Word>(&source, 1), stats);
}

std::vector<Word> Grid::route_vector_multi(VectorMachine& m,
                                           std::span<const Word> sources,
                                           RouteStats* stats) const {
  // Initialize the field with vector operations: one fill plus a scatter
  // of the (precomputed) obstacle index vector.
  std::vector<Word> dist(cells());
  m.fill(dist, kUnreached);
  WordVec obstacle_idx;
  for (std::size_t i = 0; i < cells(); ++i) {
    if (obstacle_[i]) obstacle_idx.push_back(static_cast<Word>(i));
  }
  if (!obstacle_idx.empty()) {
    m.scatter(dist, obstacle_idx,
              m.splat(obstacle_idx.size(), kObstacle));
  }
  WordVec frontier;
  for (const Word source : sources) {
    FOLVEC_REQUIRE(dist[static_cast<std::size_t>(source)] != kObstacle,
                   "source must not be an obstacle");
    if (dist[static_cast<std::size_t>(source)] != 0) {
      dist[static_cast<std::size_t>(source)] = 0;
      frontier.push_back(source);
    }
    m.scalar_mem(2);
    m.scalar_branch(1);
  }

  const auto w = static_cast<Word>(width_);
  const auto total = static_cast<Word>(cells());
  std::vector<Word> claim(cells(), 0);

  Word d = 0;
  while (!frontier.empty()) {
    if (stats != nullptr) ++stats->wavefronts;

    // Candidate neighbours in the four directions, with border masks
    // derived from one vector division per wavefront.
    const WordVec xs = m.mod_scalar(frontier, w);
    WordVec cand;
    auto push_direction = [&](const WordVec& neighbour, const Mask& valid) {
      const WordVec packed = m.compress(neighbour, valid);
      cand.insert(cand.end(), packed.begin(), packed.end());
    };
    push_direction(m.add_scalar(frontier, 1), m.lt_scalar(xs, w - 1));
    push_direction(m.add_scalar(frontier, -1), m.ge_scalar(xs, 1));
    push_direction(m.add_scalar(frontier, w),
                   m.lt_scalar(m.add_scalar(frontier, w), total));
    push_direction(m.add_scalar(frontier, -w),
                   m.ge_scalar(m.add_scalar(frontier, -w), 0));

    if (cand.empty()) break;

    // Open cells only (not obstacles, not already numbered).
    const Mask open = m.eq_scalar(m.gather(dist, cand), kUnreached);
    const WordVec open_cells = m.compress(cand, open);
    if (open_cells.empty()) break;

    // Number them. Several lanes may hit one cell; they all write the same
    // d+1, so the ELS condition alone guarantees the right value lands.
    m.scatter(dist, open_cells, m.splat(open_cells.size(), d + 1));

    // Dedupe the next frontier with one overwrite-and-check round: lane
    // labels race into the claim word, the surviving lane carries the cell
    // forward (the "implicit S1" of the related-work algorithms).
    const WordVec labels = m.iota(open_cells.size());
    Mask winner;
    {
      const vm::ConflictWindow window(m, claim, vm::WindowKind::kLabelRound,
                                      "frontier dedup claim");
      winner = m.scatter_gather_eq(claim, open_cells, labels);
    }
    const std::size_t n_win = m.count_true(winner);
    if (stats != nullptr) {
      stats->dedup_dropped += open_cells.size() - n_win;
    }
    frontier = m.compress(open_cells, winner);
    ++d;
  }
  m.retire_work(claim);
  return dist;
}

std::vector<Word> Grid::backtrace(std::span<const Word> dist, Word source,
                                  Word target) const {
  FOLVEC_REQUIRE(dist.size() == cells(), "distance field size mismatch");
  if (dist[static_cast<std::size_t>(target)] < 0) return {};
  const auto w = static_cast<Word>(width_);
  std::vector<Word> path{target};
  Word cell = target;
  while (cell != source) {
    const Word d = dist[static_cast<std::size_t>(cell)];
    const Word x = cell % w;
    const Word neighbours[4] = {
        x + 1 < w ? cell + 1 : Word{-1},
        x > 0 ? cell - 1 : Word{-1},
        cell + w < static_cast<Word>(cells()) ? cell + w : Word{-1},
        cell - w >= 0 ? cell - w : Word{-1},
    };
    Word next = -1;
    for (const Word n : neighbours) {
      if (n >= 0 && dist[static_cast<std::size_t>(n)] == d - 1) {
        next = n;
        break;
      }
    }
    FOLVEC_CHECK(next >= 0, "distance field is not a valid BFS labelling");
    path.push_back(next);
    cell = next;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace folvec::routing
