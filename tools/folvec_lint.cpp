// folvec_lint: static hazard verification for array-language programs.
//
// Runs each program through the lang interpreter on an analyzing
// VectorMachine in "dry" mode: audit on but non-throwing, the op-graph
// recorder on, and veto on — memory ops whose bounds verdict is
// kProvenHazard are skipped instead of executed, so analysis continues past
// the first defect. Every proven hazard is printed as a clang-style
// diagnostic (`file:line: error: ...`); afterwards the recorded graph is
// round-tripped through JSON and replayed by the offline verifier, and any
// divergence between replayed and recorded verdicts is reported as an
// internal error (it means an analyzer/verifier bug, not a program bug).
//
// Exit status: 0 when every program is hazard-free and replays cleanly,
// 1 otherwise.
//
// Usage: folvec_lint [--json-graph <path>] [--no-veto] <program.fv>...
//   --json-graph <path>  also dump the last program's op graph as
//                        "folvec-opgraph-v1" JSON ("-" = stdout)
//   --no-veto            execute proven-hazard ops instead of skipping them
//                        (the run then stops at the first PreconditionError)
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/opgraph.h"
#include "analysis/verdict.h"
#include "analysis/verifier.h"
#include "fol/fol1.h"
#include "lang/interp.h"
#include "support/require.h"
#include "vm/machine.h"

namespace {

using folvec::analysis::Diagnostic;
using folvec::lang::ArrayValue;
using folvec::lang::Value;
using folvec::vm::Word;
using folvec::vm::WordVec;

/// fol1Labels(indexArray, workSize): runs one FOL1 decomposition of the
/// index array over a fresh work array and returns that work array — stale
/// labels included. The canonical producer of clobbered work for the lint
/// examples (reading the result outside a window is the kClobber hazard).
Value fol1_labels(folvec::vm::VectorMachine& m, std::span<const Value> args) {
  const ArrayValue* idx =
      args.size() == 2 ? std::get_if<ArrayValue>(&args[0]) : nullptr;
  const Word* n = args.size() == 2 ? std::get_if<Word>(&args[1]) : nullptr;
  if (idx == nullptr || n == nullptr || *n < 0) {
    throw folvec::PreconditionError(
        "fol1Labels needs (indexArray, workSize) arguments");
  }
  WordVec work(static_cast<std::size_t>(*n), 0);
  folvec::fol::fol1_decompose(m, idx->data, work);
  return ArrayValue{0, std::move(work)};
}

int usage() {
  std::cerr << "usage: folvec_lint [--json-graph <path>] [--no-veto] "
               "<program.fv>...\n";
  return 2;
}

std::string read_file(const std::string& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *ok = false;
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *ok = true;
  return buf.str();
}

void print_diag(const std::string& file, const Diagnostic& d) {
  std::cout << file << ':';
  if (d.line != 0) std::cout << d.line << ':';
  std::cout << " error: " << d.message << " ["
            << folvec::analysis::hazard_class_name(d.cls) << "]\n";
}

/// Lints one program. Returns true when it is hazard-free and the offline
/// replay agrees with the online analysis.
bool lint_file(const std::string& file, bool veto, const std::string& json_out) {
  bool ok = false;
  const std::string source = read_file(file, &ok);
  if (!ok) {
    std::cout << file << ": error: cannot read file\n";
    return false;
  }

  folvec::vm::MachineConfig cfg;
  cfg.audit = true;
  cfg.audit_throw = false;  // accumulate audit hazards, keep executing
  cfg.analysis = true;
  cfg.audit_elide = false;  // lint wants the full per-lane audit as backstop
  folvec::vm::VectorMachine m(cfg);
  folvec::analysis::Analyzer* an = m.analyzer();
  an->set_record_graph(true);
  an->set_veto(veto);

  bool clean = true;
  folvec::lang::Interpreter interp(m);
  interp.register_builtin("fol1Labels", [&m](std::span<const Value> args) {
    return fol1_labels(m, args);
  });
  try {
    interp.run(source);
  } catch (const std::exception& e) {
    // Parse errors and hard runtime preconditions carry their own
    // "line N" context in the message.
    std::cout << file << ": error: " << e.what() << "\n";
    clean = false;
  }

  for (const Diagnostic& d : an->diagnostics()) {
    print_diag(file, d);
    clean = false;
  }

  // Offline replay over the JSON round-trip: the verifier re-judges every
  // memory op from the recorded facts and must agree with the online run.
  const std::string json = an->graph().to_json();
  folvec::analysis::ReplayResult replay;
  try {
    replay = folvec::analysis::verify(
        folvec::analysis::OpGraph::from_json(json));
  } catch (const std::exception& e) {
    std::cout << file << ": internal error: graph round-trip failed: "
              << e.what() << "\n";
    return false;
  }
  for (const std::string& mm : replay.mismatches) {
    std::cout << file << ": internal error: replay mismatch: " << mm << "\n";
    clean = false;
  }

  const auto& st = an->stats();
  std::cout << file << ": " << st.mem_ops << " memory ops analyzed: "
            << st.mem_safe << " proven safe, " << st.mem_unknown
            << " unknown, " << st.mem_hazard << " proven hazard";
  if (st.vetoed != 0) std::cout << " (" << st.vetoed << " vetoed)";
  std::cout << "\n";

  if (!json_out.empty()) {
    if (json_out == "-") {
      std::cout << json << "\n";
    } else {
      std::ofstream out(json_out, std::ios::binary);
      out << json << "\n";
      if (!out) {
        std::cout << file << ": error: cannot write " << json_out << "\n";
        clean = false;
      }
    }
  }
  return clean;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::string json_out;
  bool veto = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json-graph") {
      if (i + 1 >= argc) return usage();
      json_out = argv[++i];
    } else if (arg == "--no-veto") {
      veto = false;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage();

  bool all_clean = true;
  for (std::size_t i = 0; i < files.size(); ++i) {
    // --json-graph applies to the last file so a single-program invocation
    // behaves the obvious way.
    const bool last = i + 1 == files.size();
    if (!lint_file(files[i], veto, last ? json_out : std::string())) {
      all_clean = false;
    }
  }
  return all_clean ? 0 : 1;
}
