// Unit and regression tests for the parallel backend internals: the chunk
// planner (overflow + zero-lane-chunk clipping), the early-cut first_oob
// scan, both lane-exact scatter merges, worker chunk affinity, and the
// multi-op batched dispatch (VectorMachine::OpBatch).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fol/fol_star.h"
#include "sorting/address_calc.h"
#include "sorting/radix.h"
#include "support/prng.h"
#include "support/require.h"
#include "telemetry/metrics.h"
#include "vm/backend.h"
#include "vm/machine.h"
#include "vm/parallel_backend.h"
#include "vm/thread_pool.h"

namespace folvec::vm {
namespace {

// ---- chunk planner ---------------------------------------------------------

TEST(ChunkPlanTest, EvenAndRaggedPlansCoverEveryLaneOnce) {
  for (const std::size_t n : {0u, 1u, 5u, 6u, 7u, 8u, 63u, 64u, 65u, 1000u}) {
    for (const std::size_t chunks : {1u, 2u, 3u, 4u, 7u, 8u, 16u}) {
      const detail::ChunkPlan p = detail::plan(n, chunks);
      const std::size_t count = p.count();
      ASSERT_LE(count, chunks) << "n=" << n << " chunks=" << chunks;
      std::size_t covered = 0;
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(p.lo(i), covered);
        ASSERT_LT(p.lo(i), p.hi(i))
            << "zero-lane chunk planned: n=" << n << " chunks=" << chunks
            << " i=" << i;
        covered = p.hi(i);
      }
      ASSERT_EQ(covered, n);
    }
  }
}

TEST(ChunkPlanTest, CeilDivisionDoesNotWrapNearSizeMax) {
  // Regression: the textbook (n + chunks - 1) / chunks overflows for n near
  // SIZE_MAX, planning step 0 and an infinite chunk walk.
  const std::size_t n = std::numeric_limits<std::size_t>::max() - 5;
  for (const std::size_t chunks : {1u, 2u, 7u, 8u}) {
    const detail::ChunkPlan p = detail::plan(n, chunks);
    ASSERT_GT(p.step, 0u);
    ASSERT_GE(p.step, n / chunks);
    const std::size_t count = p.count();
    ASSERT_GE(count, 1u);
    ASSERT_LE(count, chunks);
    // The last chunk is non-empty and ends exactly at n.
    ASSERT_LT(p.lo(count - 1), p.hi(count - 1));
    ASSERT_EQ(p.hi(count - 1), n);
  }
}

TEST(ChunkPlanTest, TinyVectorsClipEmptyTailChunks) {
  // workers=4 over 6 lanes plans step 2 -> 3 chunks, not 4: the zero-lane
  // tail chunk must be clipped before dispatch (the pooled reduce seeds
  // each chunk's partial with v[lo], which reads out of bounds on an empty
  // chunk).
  EXPECT_EQ(detail::plan(6, 4).count(), 3u);
  EXPECT_EQ(detail::plan(5, 4).count(), 3u);
  EXPECT_EQ(detail::plan(1, 8).count(), 1u);
  EXPECT_EQ(detail::plan(8, 8).count(), 8u);
  EXPECT_EQ(detail::plan(9, 8).count(), 5u);
}

// Machine-level regression for the empty-tail-chunk OOB read: tiny vectors
// on a wide machine with grain 1 must reduce exactly like serial.
TEST(ChunkPlanTest, TinyVectorReductionsMatchSerialAtGrainOne) {
  MachineConfig serial_cfg;
  serial_cfg.backend = BackendKind::kSerial;
  MachineConfig par_cfg;
  par_cfg.backend = BackendKind::kParallel;
  par_cfg.backend_threads = 4;
  par_cfg.backend_grain = 1;
  VectorMachine serial(serial_cfg);
  VectorMachine parallel(par_cfg);
  for (const std::size_t n : {1u, 2u, 3u, 5u, 6u, 7u, 9u, 13u}) {
    Xoshiro256 rng(0x1234 + n);
    WordVec v(n);
    for (auto& x : v) x = rng.in_range(-1000, 1000);
    EXPECT_EQ(serial.reduce_sum(v), parallel.reduce_sum(v)) << "n=" << n;
    EXPECT_EQ(serial.reduce_min(v), parallel.reduce_min(v)) << "n=" << n;
    EXPECT_EQ(serial.reduce_max(v), parallel.reduce_max(v)) << "n=" << n;
  }
}

// ---- first_oob early cut ---------------------------------------------------

TEST(FirstOobTest, GloballyFirstHitAtEveryWorkerCount) {
  SerialBackend serial;
  Xoshiro256 rng(0xf00b);
  for (int round = 0; round < 60; ++round) {
    const auto n = static_cast<std::size_t>(rng.in_range(1, 5000));
    const std::size_t table_size = 128;
    WordVec idx(n);
    for (auto& x : idx) x = rng.in_range(0, 127);
    // 0-3 out-of-bounds lanes at random positions (negative and too-large).
    const int oob_lanes = static_cast<int>(rng.below(4));
    for (int k = 0; k < oob_lanes; ++k) {
      const auto pos = static_cast<std::size_t>(
          rng.below(static_cast<std::uint64_t>(n)));
      idx[pos] = (k % 2 == 0) ? 128 + rng.in_range(0, 100) : -1;
    }
    const std::size_t want = serial.first_oob(idx, table_size, nullptr);
    for (const std::size_t workers : {1u, 2u, 3u, 4u, 8u}) {
      ParallelBackend parallel(workers, /*grain=*/1);
      EXPECT_EQ(parallel.first_oob(idx, table_size, nullptr), want)
          << "n=" << n << " workers=" << workers;
    }
  }
}

TEST(FirstOobTest, EarlyCutNeverSkipsAnEarlierHitInAnotherChunk) {
  // A late chunk holds an immediate OOB lane; an early chunk holds one deep
  // inside. The late chunk's fast hit may cut other chunks' scans, but the
  // early chunk can never be cut before its own (globally first) hit.
  const std::size_t n = 50000;
  WordVec idx(n, 0);
  idx[1200] = -7;      // global first, early chunk, past the poll stride
  idx[n - 1] = 99999;  // instant hit for the last chunk
  SerialBackend serial;
  ASSERT_EQ(serial.first_oob(idx, 10, nullptr), 1200u);
  for (const std::size_t workers : {2u, 4u, 8u}) {
    ParallelBackend parallel(workers, /*grain=*/1);
    EXPECT_EQ(parallel.first_oob(idx, 10, nullptr), 1200u)
        << "workers=" << workers;
  }
}

TEST(FirstOobTest, MaskedLanesAreExemptAtEveryWorkerCount) {
  const std::size_t n = 4096;
  WordVec idx(n, 1);
  std::vector<std::uint8_t> mask(n, 1);
  idx[100] = 500;  // masked off: not a hit
  mask[100] = 0;
  idx[3000] = 600;  // active: the hit
  SerialBackend serial;
  ASSERT_EQ(serial.first_oob(idx, 256, mask.data()), 3000u);
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    ParallelBackend parallel(workers, /*grain=*/1);
    EXPECT_EQ(parallel.first_oob(idx, 256, mask.data()), 3000u);
  }
}

// ---- scatter merge strategies ----------------------------------------------

/// Serial-reference scatter for one traversal over possibly-masked lanes.
void reference_scatter(WordVec& table, const WordVec& idx, const WordVec& vals,
                       const std::vector<std::uint8_t>* mask,
                       ScatterTraversal traversal,
                       const std::vector<std::size_t>& order) {
  SerialBackend serial;
  serial.scatter(table, idx, vals, mask != nullptr ? mask->data() : nullptr,
                 traversal, order);
}

TEST(ScatterMergeTest, BothMergesMatchSerialForEveryTraversalAndWorkerCount) {
  Xoshiro256 rng(0x5ca77e2);
  for (int round = 0; round < 50; ++round) {
    const auto n = static_cast<std::size_t>(rng.in_range(1, 1200));
    const auto table_size =
        static_cast<std::size_t>(rng.in_range(1, static_cast<Word>(n)));
    WordVec idx(n);
    WordVec vals(n);
    for (auto& x : idx) {
      x = rng.in_range(0, static_cast<Word>(table_size) - 1);
    }
    for (auto& x : vals) x = rng.in_range(-100000, 100000);
    std::vector<std::uint8_t> mask(n);
    for (auto& b : mask) b = static_cast<std::uint8_t>(rng.below(4) != 0);
    const bool use_mask = round % 2 == 0;
    std::vector<std::size_t> order;
    for (const ScatterTraversal traversal :
         {ScatterTraversal::kForward, ScatterTraversal::kReverse,
          ScatterTraversal::kExplicit}) {
      if (traversal == ScatterTraversal::kExplicit) {
        order.resize(n);
        for (std::size_t i = 0; i < n; ++i) order[i] = i;
        shuffle(order, rng);
      } else {
        order.clear();
      }
      WordVec want(table_size, -1);
      reference_scatter(want, idx, vals, use_mask ? &mask : nullptr,
                        traversal, order);
      for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
        for (const MergeStrategy merge :
             {MergeStrategy::kAuto, MergeStrategy::kSinglePass,
              MergeStrategy::kTwoPass}) {
          ParallelBackend parallel(workers, /*grain=*/1, merge);
          WordVec got(table_size, -1);
          parallel.scatter(got, idx, vals,
                           use_mask ? mask.data() : nullptr, traversal,
                           order);
          ASSERT_EQ(want, got)
              << "n=" << n << " areas=" << table_size
              << " workers=" << workers << " traversal="
              << static_cast<int>(traversal)
              << " merge=" << static_cast<int>(merge);
        }
      }
    }
  }
}

TEST(ScatterMergeTest, AutoSelectsSinglePassForStreamingTraversals) {
  telemetry::MetricsRegistry registry;
  const telemetry::ScopedMetrics scoped(registry);
  const std::size_t n = 4096;
  WordVec idx(n);
  WordVec vals(n);
  for (std::size_t i = 0; i < n; ++i) {
    idx[i] = static_cast<Word>(i % 64);
    vals[i] = static_cast<Word>(i);
  }
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = n - 1 - i;
  {
    ParallelBackend parallel(4, /*grain=*/1);
    WordVec table(64, 0);
    parallel.scatter(table, idx, vals, nullptr, ScatterTraversal::kForward,
                     {});
    parallel.scatter(table, idx, vals, nullptr, ScatterTraversal::kReverse,
                     {});
    parallel.scatter(table, idx, vals, nullptr, ScatterTraversal::kExplicit,
                     order);
  }
  const telemetry::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("pool.merge.single_pass"), 2u);
  EXPECT_EQ(snap.counters.at("pool.merge.two_pass"), 1u);
}

// Explicit traversals cut over by length: short scatters (the serving
// layer's shard-local sub-batches) stay on the single pass — two-pass
// bucket setup costs more than the whole scatter there — while long ones
// take the route+replay merge. Crossover measured at ~160-192 lanes on
// 2/4/8 workers.
TEST(ScatterMergeTest, AutoCutsOverByLengthForExplicitTraversals) {
  telemetry::MetricsRegistry registry;
  const telemetry::ScopedMetrics scoped(registry);
  const auto run_explicit = [](std::size_t n) {
    WordVec idx(n);
    WordVec vals(n);
    for (std::size_t i = 0; i < n; ++i) {
      idx[i] = static_cast<Word>(i % 63);
      vals[i] = static_cast<Word>(i);
    }
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = n - 1 - i;
    ParallelBackend parallel(4, /*grain=*/1);
    WordVec table(63, 0);
    parallel.scatter(table, idx, vals, nullptr, ScatterTraversal::kExplicit,
                     order);
  };
  run_explicit(64);    // serve-shard sized: single pass
  run_explicit(160);   // boundary, inclusive: single pass
  run_explicit(161);   // first length past the cutover: two-pass
  run_explicit(4096);  // bulk: two-pass
  const telemetry::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("pool.merge.single_pass"), 2u);
  EXPECT_EQ(snap.counters.at("pool.merge.two_pass"), 2u);
}

// ---- machine-level merge strategy differential -----------------------------

TEST(MergeStrategyMachineTest, ForcedStrategiesBitIdenticalToSerial) {
  for (const ScatterOrder order :
       {ScatterOrder::kForward, ScatterOrder::kReverse,
        ScatterOrder::kShuffled}) {
    MachineConfig serial_cfg;
    serial_cfg.backend = BackendKind::kSerial;
    serial_cfg.scatter_order = order;
    serial_cfg.shuffle_seed = 77;
    serial_cfg.audit = false;
    VectorMachine serial(serial_cfg);
    const std::size_t n = 3000;
    Xoshiro256 rng(0xabc + static_cast<std::uint64_t>(order));
    WordVec idx(n);
    WordVec vals(n);
    for (auto& x : idx) x = rng.in_range(0, 99);
    for (auto& x : vals) x = rng.in_range(-5000, 5000);
    WordVec want(100, 0);
    serial.scatter(want, idx, vals);
    for (const MergeStrategy merge :
         {MergeStrategy::kAuto, MergeStrategy::kSinglePass,
          MergeStrategy::kTwoPass}) {
      MachineConfig cfg = serial_cfg;
      cfg.backend = BackendKind::kParallel;
      cfg.backend_threads = 4;
      cfg.backend_grain = 8;
      cfg.merge_strategy = merge;
      VectorMachine parallel(cfg);
      WordVec got(100, 0);
      parallel.scatter(got, idx, vals);
      ASSERT_EQ(want, got) << "order=" << static_cast<int>(order)
                           << " merge=" << static_cast<int>(merge);
    }
  }
}

// ---- run_affine ------------------------------------------------------------

TEST(RunAffineTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  for (const std::size_t tasks : {1u, 2u, 3u, 4u}) {
    std::vector<int> hits(tasks, 0);
    pool.run_affine(tasks, [&](std::size_t i) { hits[i] += 1; });
    for (const int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(RunAffineTest, RequiresOneWorkerPerTask) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run_affine(3, [](std::size_t) {}), PreconditionError);
}

TEST(RunAffineTest, SameTaskCountPinsTasksToTheSameThreads) {
  // The affinity property: the task -> worker map is a pure function of the
  // task index, so consecutive same-shape jobs land each task on the same
  // thread (and the last task on the caller).
  ThreadPool pool(4);
  const std::size_t tasks = 4;
  std::vector<std::thread::id> first(tasks);
  pool.run_affine(tasks,
                  [&](std::size_t i) { first[i] = std::this_thread::get_id(); });
  EXPECT_EQ(first[tasks - 1], std::this_thread::get_id());
  for (int round = 0; round < 20; ++round) {
    std::vector<std::thread::id> again(tasks);
    pool.run_affine(tasks, [&](std::size_t i) {
      again[i] = std::this_thread::get_id();
    });
    ASSERT_EQ(first, again) << "affinity broke on round " << round;
  }
}

TEST(RunAffineTest, RethrowsLowestTaskException) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    try {
      pool.run_affine(4, [&](std::size_t i) {
        if (i >= 1) throw std::runtime_error("task " + std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 1");
    }
  }
}

// ---- multi-op batched dispatch (OpBatch) -----------------------------------

VectorMachine batch_machine(BackendKind kind, std::size_t threads) {
  MachineConfig cfg;
  cfg.audit = false;
  cfg.backend = kind;
  cfg.backend_threads = threads;
  cfg.backend_grain = 8;
  return VectorMachine(cfg);
}

/// An elementwise round composed through named pre-declared buffers — the
/// documented OpBatch pattern. `batched` toggles the OpBatch scope; results
/// must be bit-identical either way.
WordVec batch_script(VectorMachine& m, const WordVec& a, const WordVec& b,
                     bool batched) {
  WordVec r1;
  WordVec r2;
  WordVec sel;
  Mask lt(0);
  WordVec digest;
  // Declared BEFORE the batch scope: a buffer declared inside it would be
  // destroyed before the OpBatch flushes (the documented lifetime rule).
  const WordVec head(a.begin(),
                     a.begin() + static_cast<std::ptrdiff_t>(a.size() / 2));
  {
    std::optional<VectorMachine::OpBatch> batch;
    if (batched) batch.emplace(m);
    m.add_into(r1, a, b);
    m.add_scalar_into(r2, r1, 5);
    lt = m.lt(r2, b);
    sel = m.select(lt, r1, r2);
    m.mod_scalar_into(r1, sel, 97);
    // Lane-count change mid-batch: flushes the queue, then re-batches.
    m.add_scalar_into(r2, head, 3);
  }
  digest.insert(digest.end(), r1.begin(), r1.end());
  digest.insert(digest.end(), r2.begin(), r2.end());
  digest.insert(digest.end(), sel.begin(), sel.end());
  for (const auto bit : lt) digest.push_back(bit);
  return digest;
}

TEST(OpBatchTest, BatchedResultsAndChimesIdenticalToUnbatched) {
  Xoshiro256 rng(0xba7c4);
  for (const BackendKind kind : {BackendKind::kSerial, BackendKind::kParallel}) {
    for (const std::size_t n : {2u, 64u, 1000u, 4099u}) {
      WordVec a(n);
      WordVec b(n);
      for (auto& x : a) x = rng.in_range(-100000, 100000);
      for (auto& x : b) x = rng.in_range(-100000, 100000);
      VectorMachine plain = batch_machine(kind, 4);
      VectorMachine batched = batch_machine(kind, 4);
      const WordVec want = batch_script(plain, a, b, /*batched=*/false);
      const WordVec got = batch_script(batched, a, b, /*batched=*/true);
      ASSERT_EQ(want, got) << "n=" << n;
      for (std::size_t i = 0; i < kOpClassCount; ++i) {
        const auto c = static_cast<OpClass>(i);
        EXPECT_EQ(plain.cost().instructions(c),
                  batched.cost().instructions(c))
            << op_class_name(c);
        EXPECT_EQ(plain.cost().elements(c), batched.cost().elements(c))
            << op_class_name(c);
      }
    }
  }
}

TEST(OpBatchTest, EagerOpMidBatchObservesAllQueuedResults) {
  VectorMachine m = batch_machine(BackendKind::kParallel, 4);
  const WordVec a = m.iota(1000, 0, 1);
  WordVec r1;
  Word sum = 0;
  {
    const VectorMachine::OpBatch batch(m);
    m.add_scalar_into(r1, a, 1);
    // reduce_sum is not batchable: it must flush the queue first and see
    // the materialized r1.
    sum = m.reduce_sum(r1);
  }
  EXPECT_EQ(sum, static_cast<Word>(1000) * 999 / 2 + 1000);
}

TEST(OpBatchTest, NestedBatchesFlushOnlyAtOutermostClose) {
  telemetry::MetricsRegistry registry;
  const telemetry::ScopedMetrics scoped(registry);
  {
    VectorMachine m = batch_machine(BackendKind::kParallel, 4);
    const WordVec a = m.iota(512, 0, 1);
    WordVec r1;
    WordVec r2;
    WordVec r3;
    {
      const VectorMachine::OpBatch outer(m);
      m.add_scalar_into(r1, a, 1);
      {
        const VectorMachine::OpBatch inner(m);
        m.add_scalar_into(r2, r1, 1);
      }
      // The inner close must NOT have flushed: all entries flush together.
      m.add_into(r3, r1, r2);
    }
    EXPECT_EQ(r2[511], 513);
    EXPECT_EQ(r3[511], 1025);
  }
  const telemetry::MetricsSnapshot snap = registry.snapshot();
  ASSERT_TRUE(snap.counters.contains("pool.dispatch.batched"));
  EXPECT_EQ(snap.counters.at("pool.dispatch.batched"), 1u);
  EXPECT_EQ(snap.counters.at("pool.dispatch.batched_ops"), 3u);
}

// ---- widened batch call sites (digest equivalence) -------------------------
//
// The sorting and FOL* call sites compose multi-op elementwise chains under
// OpBatch (spreading-function hash, probe bump+select, identifier
// generation, shift-mask pair, radix digit extraction, tuple-survival
// predicate). An audit machine disables batching entirely, so running each
// algorithm under audit yields the unbatched reference; every batched
// backend must reproduce its digest bit-for-bit, and the batched backends
// must agree with serial on the chime (per-class instruction/element
// counts).

WordVec address_calc_algo(VectorMachine& m) {
  Xoshiro256 rng(0xadca1c);
  const Word vmax = Word{1} << 20;
  WordVec data(777);
  for (auto& x : data) x = rng.in_range(0, vmax - 1);
  sorting::address_calc_sort_vector(m, data, vmax);
  return data;
}

WordVec radix_algo(VectorMachine& m) {
  Xoshiro256 rng(0x2ad1);
  WordVec data(1000);
  for (auto& x : data) x = rng.in_range(0, Word{1} << 18);
  sorting::radix_sort_vector(m, data, /*bits_per_digit=*/6);
  return data;
}

WordVec fol_star_algo(VectorMachine& m) {
  Xoshiro256 rng(0x57a9);
  const std::size_t n = 600;
  std::vector<WordVec> lanes(2, WordVec(n));
  for (auto& lane : lanes) {
    for (auto& x : lane) x = rng.in_range(0, 149);
  }
  WordVec work(160, 0);
  const fol::StarDecomposition dec = fol::fol_star_decompose(m, lanes, work);
  WordVec digest{static_cast<Word>(dec.sets.size()),
                 static_cast<Word>(dec.scalar_rescues),
                 static_cast<Word>(dec.forced_singletons)};
  for (const auto& set : dec.sets) {
    digest.push_back(static_cast<Word>(set.size()));
    for (const std::size_t p : set) digest.push_back(static_cast<Word>(p));
  }
  digest.insert(digest.end(), work.begin(), work.end());
  return digest;
}

void expect_same_chime(const VectorMachine& a, const VectorMachine& b) {
  for (std::size_t i = 0; i < kOpClassCount; ++i) {
    const auto c = static_cast<OpClass>(i);
    EXPECT_EQ(a.cost().instructions(c), b.cost().instructions(c))
        << op_class_name(c);
    EXPECT_EQ(a.cost().elements(c), b.cost().elements(c)) << op_class_name(c);
  }
}

TEST(OpBatchTest, WidenedCallSitesMatchUnbatchedAuditDigest) {
  const struct {
    const char* name;
    WordVec (*fn)(VectorMachine&);
  } algos[] = {
      {"address_calc", address_calc_algo},
      {"radix", radix_algo},
      {"fol_star", fol_star_algo},
  };
  for (const auto& algo : algos) {
    // Unbatched reference: audit gates batching off (and cross-checks every
    // scatter along the way).
    MachineConfig audit_cfg;
    audit_cfg.audit = true;
    VectorMachine audit_m(audit_cfg);
    const WordVec want = algo.fn(audit_m);

    VectorMachine serial = batch_machine(BackendKind::kSerial, 1);
    const WordVec serial_got = algo.fn(serial);
    EXPECT_EQ(want, serial_got) << algo.name;

    for (const BackendKind kind : {BackendKind::kParallel, BackendKind::kSimd,
                                   BackendKind::kParallelSimd}) {
      VectorMachine m = batch_machine(kind, 4);
      const WordVec got = algo.fn(m);
      EXPECT_EQ(serial_got, got)
          << algo.name << " kind=" << static_cast<int>(kind);
      expect_same_chime(serial, m);
    }
  }
}

TEST(OpBatchTest, BatchingDisabledUnderAudit) {
  // Audit machines interleave checker probes with ops, so batching is
  // gated off: results must still be correct and the batched-dispatch
  // counter untouched.
  telemetry::MetricsRegistry registry;
  const telemetry::ScopedMetrics scoped(registry);
  {
    MachineConfig cfg;
    cfg.audit = true;
    VectorMachine m(cfg);
    const WordVec a = m.iota(256, 0, 1);
    WordVec r1;
    {
      const VectorMachine::OpBatch batch(m);
      m.add_scalar_into(r1, a, 10);
    }
    EXPECT_EQ(r1[255], 265);
  }
  const telemetry::MetricsSnapshot snap = registry.snapshot();
  EXPECT_FALSE(snap.counters.contains("pool.dispatch.batched"));
}

}  // namespace
}  // namespace folvec::vm
