// Per-shard Bloom filter: the cross-shard negative-lookup front-end.
//
// A ShardedMap lookup first asks the target shard's filter; a
// definitely-absent answer short-circuits to "missing" without issuing a
// single vector op, so negative traffic — the dominant kind under skewed
// key distributions — never pays the probe-chain cost. The design follows
// the flat single-level case of Bloofi (arXiv:1501.01941): one filter per
// shard, consulted by the router before the shard's lane group is touched.
//
// Contract: FALSE POSITIVES ONLY. may_contain() must return true for every
// key currently live in the backing map. The ShardedMap maintains that by
// inserting into the filter only after a successful upsert (inserts are
// idempotent, so a retried batch cannot corrupt it — see docs/serving.md)
// and by rebuilding from the map's live keys after erases; erases never
// clear individual bits (bits are shared between keys).
//
// The filter is host-side scalar state, like the hash map's duplicate
// bookkeeping: its job is precisely to AVOID vector work, so it does not
// issue VM ops or carry chime costs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "vm/machine.h"

namespace folvec::serve {

class BloomFilter {
 public:
  /// Sizes for `expected_keys` at `bits_per_key` (>= 1 of each; ~10 bits
  /// per key gives ~1% false positives at capacity). The hash count is
  /// bits_per_key * ln 2, clamped to [1, 8].
  explicit BloomFilter(std::size_t expected_keys = 64,
                       std::size_t bits_per_key = 10);

  void insert(vm::Word key);
  void insert_all(std::span<const vm::Word> keys);

  /// False means definitely absent; true means "ask the map".
  bool may_contain(vm::Word key) const;

  /// Drops every bit and re-sizes for `expected_keys`; the caller re-seeds
  /// from the live key set (the erase-rebuild path).
  void reset(std::size_t expected_keys);

  std::size_t bit_count() const { return bit_count_; }
  std::size_t hash_count() const { return hashes_; }
  std::size_t capacity_keys() const { return capacity_keys_; }
  /// Fraction of set bits — the observable proxy for the FP rate.
  double fill_ratio() const;

 private:
  std::size_t capacity_keys_;
  std::size_t bits_per_key_;
  std::size_t bit_count_;
  std::size_t hashes_;
  std::vector<std::uint64_t> words_;
};

}  // namespace folvec::serve
