file(REMOVE_RECURSE
  "libfolvec_bench_harness.a"
)
