# Empty compiler generated dependencies file for folvec_support.
# This may be replaced when dependencies are built.
