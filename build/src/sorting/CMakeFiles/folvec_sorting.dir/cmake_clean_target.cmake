file(REMOVE_RECURSE
  "libfolvec_sorting.a"
)
