// Hash functions used by the multiple-hashing algorithms.
//
// The paper uses plain division hashing, `hash(x) = x mod size(table)`
// (Figure 8's comment), with prime table sizes (521, 4099). We keep exactly
// that for the reproduction benches and additionally provide a Fibonacci
// multiplicative hash for library users with adversarial key sets.
#pragma once

#include "support/require.h"
#include "vm/machine.h"

namespace folvec::hashing {

/// Division hashing: key mod table_size, Euclidean (result in [0, size)).
inline vm::Word mod_hash(vm::Word key, vm::Word table_size) {
  vm::Word r = key % table_size;
  if (r < 0) r += table_size;
  return r;
}

/// Fibonacci multiplicative hashing into [0, table_size).
inline vm::Word fib_hash(vm::Word key, vm::Word table_size) {
  const auto x = static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
  return static_cast<vm::Word>(x % static_cast<std::uint64_t>(table_size));
}

/// Vectorized division hashing on the machine (one mod-by-scalar op).
inline vm::WordVec mod_hash_vec(vm::VectorMachine& m,
                                std::span<const vm::Word> keys,
                                vm::Word table_size) {
  FOLVEC_REQUIRE(table_size > 0, "table size must be positive");
  return m.mod_scalar(keys, table_size);
}

}  // namespace folvec::hashing
