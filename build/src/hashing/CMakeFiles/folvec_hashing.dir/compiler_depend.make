# Empty compiler generated dependencies file for folvec_hashing.
# This may be replaced when dependencies are built.
