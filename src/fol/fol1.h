// FOL1: the filtering-overwritten-label method for a single rewritten datum
// per unit process (paper Section 3.2).
//
// Given an index vector V whose elements address storage areas (several
// elements may address the *same* area), FOL1 splits the element positions
// into the minimum number of "parallel-processable" sets S1..SM: within a
// set, all addressed areas are distinct, so the unit processes of that set
// can run under a single vector instruction stream; distinct sets must run
// one after another. The split itself uses only data-parallel primitives:
//
//   1. scatter each element's unique label through V into a work word
//      attached to the addressed area;
//   2. gather the labels back through the same V and compare with the
//      originals — a mismatch means someone else overwrote the area's label,
//      i.e. the area is contested this round;
//   3. the lanes whose label survived form the next set; the rest loop.
//
// The only hardware requirement is the ELS condition: a contested work word
// holds exactly one of the written labels (any one), never a mixture.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "support/status.h"
#include "vm/machine.h"

namespace folvec::fol {

/// Result of a FOL decomposition: `sets[j]` holds the lane positions
/// (0-based indices into the original index vector) of parallel-processable
/// set S_{j+1}. Theorems 1-5 of the paper guarantee the sets are disjoint,
/// cover every lane, are minimal in number, and have non-increasing sizes
/// (the latter for FOL1 only).
struct Decomposition {
  std::vector<std::vector<std::size_t>> sets;

  /// Lanes assigned by the adaptive scalar drain rather than by vector
  /// rounds (see MachineConfig::adaptive). 0 when the decomposition ran
  /// entirely on the vector unit. The drained assignment satisfies exactly
  /// the same theorems; this field only reports how it was computed.
  std::size_t drained_lanes = 0;

  std::size_t rounds() const { return sets.size(); }

  /// Total lanes across all sets.
  std::size_t total_lanes() const {
    std::size_t n = 0;
    for (const auto& s : sets) n += s.size();
    return n;
  }
};

/// Decomposes `index_vector` (elements are indices into `work`, one work
/// Word per addressable storage area) into parallel-processable sets.
///
/// `work` contents are clobbered: FOL1 deliberately shares the work area
/// with the main processing's target storage (paper, Section 3.2), because
/// the main processing overwrites it afterwards anyway.
///
/// Throws folvec::InternalError if the machine's scatter violates the ELS
/// condition (no lane's label survives a round — impossible on conforming
/// hardware by Theorem 1).
Decomposition fol1_decompose(vm::VectorMachine& m,
                             std::span<const vm::Word> index_vector,
                             std::span<vm::Word> work);

/// Status-returning form of fol1_decompose: recoverable exhaustion (a
/// capped buffer pool running dry, an injected fault the machine could not
/// absorb) comes back as a non-ok Status with `out` untouched, instead of
/// unwinding through the caller's batch. Precondition and internal errors
/// still throw — they mean "bug", not "data".
Status fol1_try_decompose(vm::VectorMachine& m,
                          std::span<const vm::Word> index_vector,
                          std::span<vm::Word> work, Decomposition& out);

/// Convenience wrapper: decomposes a plain index vector with no caller-
/// provided machine or work area. Allocates a work array of max(index)+1
/// words and runs on a default (forward-order) machine.
Decomposition fol1_decompose_plain(std::span<const vm::Word> index_vector);

/// Applies FOL1 and returns, for every lane, the round (0-based set number)
/// it was assigned to. Handy for callers that iterate sets themselves.
std::vector<std::size_t> fol1_round_of_lane(
    vm::VectorMachine& m, std::span<const vm::Word> index_vector,
    std::span<vm::Word> work);

}  // namespace folvec::fol
