// Distribution counting sort (Knuth, TAOCP vol. 3, 5.2), paper Section 4.2.
//
// Keys are small integers in [0, range); the sort histograms them, prefix-
// sums the histogram, and places each key at its group's next free slot.
// Both the histogram increment and the placement hit the classic shared-
// update hazard — equal keys update the same counter / adjacent output
// slots — which the paper vectorizes with the overwrite-and-check
// technique. (The paper omits its listing; this implementation decomposes
// the key vector once with FOL1 — the key values themselves are the
// addressed "storage areas" — and reuses the conflict-free sets for both
// the increments and the placements.)
//
// The paper's Table 1 uses range = 2^16, which makes the histogram
// initialization and prefix sum dominate at small n: exactly the regime
// where the vector unit's advantage is largest.
#pragma once

#include <cstddef>
#include <span>

#include "vm/cost_model.h"
#include "vm/machine.h"

namespace folvec::sorting {

struct DistCountStats {
  std::size_t fol_rounds = 0;  ///< parallel-processable sets (max multiplicity)
};

/// Sequential distribution counting sort of `data` (values in [0, range)).
void dist_count_sort_scalar(std::span<vm::Word> data, vm::Word range,
                            vm::CostAccumulator* cost = nullptr);

/// Vectorized distribution counting sort on the machine.
DistCountStats dist_count_sort_vector(vm::VectorMachine& m,
                                      std::span<vm::Word> data,
                                      vm::Word range);

}  // namespace folvec::sorting
