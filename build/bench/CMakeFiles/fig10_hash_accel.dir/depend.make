# Empty dependencies file for fig10_hash_accel.
# This may be replaced when dependencies are built.
