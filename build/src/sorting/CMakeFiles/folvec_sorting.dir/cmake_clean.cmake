file(REMOVE_RECURSE
  "CMakeFiles/folvec_sorting.dir/address_calc.cpp.o"
  "CMakeFiles/folvec_sorting.dir/address_calc.cpp.o.d"
  "CMakeFiles/folvec_sorting.dir/dist_count.cpp.o"
  "CMakeFiles/folvec_sorting.dir/dist_count.cpp.o.d"
  "CMakeFiles/folvec_sorting.dir/radix.cpp.o"
  "CMakeFiles/folvec_sorting.dir/radix.cpp.o.d"
  "CMakeFiles/folvec_sorting.dir/scan.cpp.o"
  "CMakeFiles/folvec_sorting.dir/scan.cpp.o.d"
  "libfolvec_sorting.a"
  "libfolvec_sorting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/folvec_sorting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
