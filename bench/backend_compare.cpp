// Serial vs parallel vs SIMD execution backend on the paper's core
// workloads: FOL1 decomposition (dense and rare sharing), FOL*
// decomposition, multiple hashing (Figure 8), and address-calculation
// sorting (Figure 12), at N up to 2^20.
//
// Since PR 4 every workload runs a fused serial, a fused parallel, and an
// unfused serial (MachineConfig::fuse = false) configuration; PR 9 adds the
// fused simd and fused parallel+simd backends to the same table. Inputs are
// generated ONCE per (workload, N) cell and shared by every backend column,
// so all five configurations consume bit-identical buffers — no column
// re-draws from its own PRNG. The table reports, side by side:
//
//   * the fused and unfused chime-model times (modeled S-810 microseconds)
//     and the fused-over-unfused chime cut — the headline number of the
//     fused-kernel work: the FOL1 hot round drops from four memory passes
//     to one, which the chime model prices at a >= 25% reduction (asserted
//     for the FOL1 workloads at N=2^20);
//   * measured host wall-clock per backend plus the unfused serial wall,
//     the parallel-over-serial and simd-over-serial wall accelerations.
//     Wall ratios are reported, never asserted: host timing is too noisy
//     to gate on.
//
// Every run is also differentially checked: the parallel, simd, and
// parallel+simd digests (outputs + final memory images) must be
// bit-identical to the serial one, their chime streams identical, and the
// unfused digest bit-identical to the fused one — the bench doubles as a
// million-element backend-equivalence test.
//
// A second table compares audit modes on the proven-safe fol1_distinct
// workload: audit off, full per-lane ScatterCheck, and the static-analysis
// elided auditor (MachineConfig::analysis + audit_elide). Asserted: >= 80%
// of scatter-class ops proven safe, identical outputs and chime streams
// across modes, and the elided wall beating the full audit at N=2^20.
//
// A third table is the scaling curve (PR 7): every workload rerun at 1, 2,
// 4, and 8 workers at N=2^17 (plus a 4-worker point at N=2^20 when that
// size is in the run), with the parallel-over-serial wall acceleration per
// worker count, and since PR 9 the parallel+simd wall beside the plain
// parallel one — all worker counts and both parallel flavors reuse the one
// input generated for the cell. On hosts with >= 4 hardware threads the
// 4-worker points are asserted > 1.0 and emitted as notes so
// bench/goldens/backend_scaling.json can hold ratio-based floors for the CI
// scaling leg. On smaller hosts the assertions are skipped (the curve
// honestly degrades toward 1) and the gate is reported via the
// wall_accel_gate_active note.
//
// The fourth table is the hardware-vs-FOL1 ablation (fol1_hw_conflict), the
// result the SIMD backend exists for. The paper's FOL1 method decomposes a
// shared index vector into parallel-processable sets with O(rounds) passes
// of software scatter/gather/compare, because the S-810 had no
// conflict-detection hardware. AVX-512 CD (vpconflictd, lowered as the
// conflict_rank kernel) answers the same question in one pass: every lane
// gets its occurrence number among earlier lanes addressing the same area,
// and rank class r IS minimal parallel set S_{r+1}. The table times both on
// the same dense-sharing input as the fol1 rows, cross-checks the hardware
// ranks against the scalar reference AND against the FOL1 decomposition
// (same number of sets, same set sizes — both are minimal by Theorem 5),
// and asserts the one-pass hardware rank beats the multi-round software
// protocol's wall clock. On hosts without the AVX-512 CD kernel the scalar
// single-pass rank stands in (reported via the hw_conflict_native config),
// so the ablation still runs on the scalar-forced CI leg.
//
// Worker count defaults to 8 (override with FOLVEC_BENCH_THREADS); the size
// list defaults to {14, 17, 20} (override with FOLVEC_BENCH_SIZES_LOG2, a
// comma-separated log2 list — the CI scaling leg passes "17"). The SIMD
// columns honor FOLVEC_SIMD_LEVEL forcing like any other machine.
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/analyzer.h"
#include "bench_harness/report.h"
#include "fol/fol1.h"
#include "fol/fol_star.h"
#include "hashing/open_table.h"
#include "sorting/address_calc.h"
#include "support/env.h"
#include "support/prng.h"
#include "support/require.h"
#include "support/table_printer.h"
#include "vm/machine.h"
#include "vm/simd_backend.h"

namespace {

using folvec::vm::BackendKind;
using folvec::vm::MachineConfig;
using folvec::vm::SimdKernels;
using folvec::vm::SimdLevel;
using folvec::vm::VectorMachine;
using folvec::vm::Word;
using folvec::vm::WordVec;

struct Sample {
  double chime_us = 0;
  double wall_s = 0;
  WordVec digest;
};

/// One audit-mode run of the proven-safe FOL1 workload, with the analyzer's
/// elision metrics when static analysis was attached.
struct AuditSample {
  double chime_us = 0;
  double wall_s = 0;
  WordVec digest;
  std::uint64_t scatter_ops = 0;
  std::uint64_t scatter_safe = 0;
  std::uint64_t elided = 0;
  std::uint64_t checked = 0;
};

enum class AuditMode { kOff, kFull, kElide };

std::size_t bench_threads() {
  if (const auto env = folvec::env_value("FOLVEC_BENCH_THREADS")) {
    const long v = std::strtol(env->c_str(), nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 8;
}

/// Lane counts to run, as log2 sizes. FOLVEC_BENCH_SIZES_LOG2 overrides the
/// default {14, 17, 20} with a comma-separated list (the CI scaling leg
/// passes "17" to keep the runner under budget); out-of-range tokens are
/// ignored, and an all-invalid override falls back to the default.
std::vector<int> bench_sizes() {
  std::vector<int> sizes;
  if (const auto env = folvec::env_value("FOLVEC_BENCH_SIZES_LOG2")) {
    std::stringstream ss(*env);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      const long v = std::strtol(tok.c_str(), nullptr, 10);
      if (v >= 1 && v <= 30) sizes.push_back(static_cast<int>(v));
    }
  }
  if (sizes.empty()) sizes = {14, 17, 20};
  return sizes;
}

/// Pre-generated input for one (workload, N) cell, built once and consumed
/// by every backend column of that cell. Bodies copy the mutable pieces
/// (`work`, the sort data) before running, so the shared buffers stay
/// pristine across columns and reps.
struct WorkloadInput {
  WordVec idx;                 // index / key / unsorted-data vector
  WordVec work;                // work-area or hash-table image
  std::vector<WordVec> lanes;  // FOL* index vectors
  Word vmax = 0;               // sorting value bound
};

template <typename Body>
Sample run_backend(BackendKind kind, std::size_t threads, bool fuse,
                   const folvec::vm::CostParams& params, const Body& body) {
  MachineConfig cfg;
  cfg.audit = false;  // the auditor would pin the thread pool to one worker
  cfg.backend = kind;
  cfg.backend_threads = threads;
  cfg.fuse = fuse;
  // cfg.simd_level stays at its default (kAuto unless FOLVEC_SIMD_LEVEL
  // forces a level), so the simd columns report whatever the dispatcher
  // actually picked for this host.
  VectorMachine m(cfg);
  Sample s;
  s.digest = body(m);
  s.chime_us = m.cost().microseconds(params);
  s.wall_s = m.cost().total_wall_seconds();
  return s;
}

void emit(WordVec& digest, const WordVec& v) {
  digest.insert(digest.end(), v.begin(), v.end());
}

WorkloadInput fol1_make_sized(std::size_t n, std::size_t distinct,
                              std::uint64_t seed) {
  WorkloadInput in;
  in.idx = folvec::random_keys(n, static_cast<Word>(distinct), seed);
  in.work.assign(distinct, 0);
  return in;
}

WorkloadInput fol1_make(std::size_t n) {
  // Dense sharing: each storage area is hit by ~4 lanes, so the
  // decomposition takes several rounds.
  return fol1_make_sized(n, std::max<std::size_t>(1, n / 4), 0xf011 + n);
}

WorkloadInput fol1_rare_make(std::size_t n) {
  // Rare sharing (Theorem 4's O(N) regime): 4N areas, so most lanes are
  // uncontested and the run is one or two rounds of full vector length —
  // the regime where the fused one-pass round shows its full cut.
  return fol1_make_sized(n, 4 * n, 0xfa2e + n);
}

WorkloadInput fol1_distinct_make(std::size_t n) {
  // All-distinct addressing (N areas, multiplicity 1, a shuffled
  // permutation): one full-length round, the baseline the adaptive
  // degradation bound below is measured against.
  WorkloadInput in;
  in.idx.resize(n);
  for (std::size_t i = 0; i < n; ++i) in.idx[i] = static_cast<Word>(i);
  folvec::Xoshiro256 rng(0xd157 + n);
  folvec::shuffle(in.idx, rng);
  in.work.assign(n, 0);
  return in;
}

WorkloadInput fol1_heavy_make(std::size_t n) {
  // Theorem 6's pathological-sharing worst case: every lane addresses the
  // same area (multiplicity N), which the pure decomposition serves in N
  // rounds of shrinking scatters — O(N^2) lane work. The adaptive drain
  // detects the surviving-fraction collapse after round one and finishes in
  // a single O(N) scalar pass; main() asserts the modeled cost stays within
  // 2x the all-distinct baseline at N=2^20.
  WorkloadInput in;
  in.idx.assign(n, 0);
  in.work.assign(1, 0);
  return in;
}

WorkloadInput fol_star_make(std::size_t n) {
  const std::size_t areas = 8 * n;
  WorkloadInput in;
  in.lanes.resize(2);
  for (std::size_t k = 0; k < in.lanes.size(); ++k) {
    in.lanes[k] =
        folvec::random_keys(n, static_cast<Word>(areas), 0x57a2 + n + k);
  }
  in.work.assign(areas, 0);
  return in;
}

WorkloadInput hashing_make(std::size_t n) {
  WorkloadInput in;
  in.idx = folvec::random_unique_keys(n, static_cast<Word>(8 * n), 0x4a54 + n);
  in.work.assign(2 * n + 1, folvec::hashing::kUnentered);
  return in;
}

WorkloadInput sorting_make(std::size_t n) {
  WorkloadInput in;
  in.vmax = static_cast<Word>(4 * n);
  in.idx = folvec::random_keys(n, in.vmax, 0x5057 + n);
  return in;
}

WordVec fol1_body(VectorMachine& m, const WorkloadInput& in) {
  WordVec work = in.work;
  const folvec::fol::Decomposition d =
      folvec::fol::fol1_decompose(m, in.idx, work);
  WordVec digest;
  for (const auto& set : d.sets) {
    digest.push_back(static_cast<Word>(set.size()));
    for (std::size_t lane : set) digest.push_back(static_cast<Word>(lane));
  }
  emit(digest, work);
  return digest;
}

WordVec fol1_drained_body(VectorMachine& m, const WorkloadInput& in) {
  // Same protocol, but the digest leads with the adaptive drain's lane
  // count — the distinct/heavy workloads exist to pin that behavior.
  WordVec work = in.work;
  const folvec::fol::Decomposition d =
      folvec::fol::fol1_decompose(m, in.idx, work);
  WordVec digest{static_cast<Word>(d.drained_lanes)};
  for (const auto& set : d.sets) {
    digest.push_back(static_cast<Word>(set.size()));
    for (std::size_t lane : set) digest.push_back(static_cast<Word>(lane));
  }
  emit(digest, work);
  return digest;
}

WordVec fol_star_body(VectorMachine& m, const WorkloadInput& in) {
  WordVec work = in.work;
  const folvec::fol::StarDecomposition d =
      folvec::fol::fol_star_decompose(m, in.lanes, work);
  WordVec digest{static_cast<Word>(d.scalar_rescues),
                 static_cast<Word>(d.forced_singletons)};
  for (const auto& set : d.sets) {
    digest.push_back(static_cast<Word>(set.size()));
    for (std::size_t lane : set) digest.push_back(static_cast<Word>(lane));
  }
  return digest;
}

WordVec hashing_body(VectorMachine& m, const WorkloadInput& in) {
  WordVec table = in.work;
  const folvec::hashing::MultiHashStats st =
      folvec::hashing::multi_hash_open_insert(
          m, table, in.idx, folvec::hashing::ProbeVariant::kKeyDependent);
  WordVec digest{static_cast<Word>(st.iterations),
                 static_cast<Word>(st.max_vector_len)};
  emit(digest, table);
  return digest;
}

WordVec sorting_body(VectorMachine& m, const WorkloadInput& in) {
  WordVec data = in.idx;
  folvec::sorting::address_calc_sort_vector(m, data, in.vmax);
  return data;
}

}  // namespace

int main() {
  using folvec::Cell;
  using folvec::JsonArray;
  const folvec::vm::CostParams params = folvec::vm::CostParams::s810_like();
  const std::size_t threads = bench_threads();
  const std::vector<int> sizes = bench_sizes();
  const bool has_n17 =
      std::find(sizes.begin(), sizes.end(), 17) != sizes.end();
  const bool has_n20 =
      std::find(sizes.begin(), sizes.end(), 20) != sizes.end();
  const unsigned hw_threads = std::thread::hardware_concurrency();
  // The 4-worker win is only assertable when the host can actually run 4
  // workers in parallel; on smaller hosts the curve is reported, not gated.
  const bool accel_gate = hw_threads >= 4;
  // The SIMD level every simd column below runs at: the dispatcher's pick
  // for this host, after FOLVEC_SIMD_LEVEL forcing and graceful downgrade.
  const SimdLevel simd_level =
      folvec::vm::simd_resolve_level(MachineConfig::simd_level_default());
  folvec::bench::BenchReport report("backend_compare");
  report.config("threads", threads);
  {
    JsonArray sizes_json;
    for (const int lg : sizes) sizes_json.emplace_back(lg);
    report.config("sizes_log2", std::move(sizes_json));
  }
  report.config("hardware_concurrency", static_cast<double>(hw_threads));
  report.config("simd_level", folvec::vm::simd_level_name(simd_level));

  struct Workload {
    const char* name;
    WorkloadInput (*make)(std::size_t);
    WordVec (*body)(VectorMachine&, const WorkloadInput&);
    bool assert_cut;  // fused chime cut >= 25% at N=2^20 (the FOL1 rounds)
  };
  const Workload workloads[] = {
      {"fol1", fol1_make, fol1_body, true},
      {"fol1_rare", fol1_rare_make, fol1_body, true},
      {"fol1_distinct", fol1_distinct_make, fol1_drained_body, false},
      {"fol1_heavy", fol1_heavy_make, fol1_drained_body, false},
      {"fol_star", fol_star_make, fol_star_body, false},
      {"multi_hash", hashing_make, hashing_body, false},
      {"addr_calc_sort", sorting_make, sorting_body, false},
  };

  // Chime times captured at N=2^20 for the adaptive-degradation bound.
  double distinct_chime_n20 = 0;
  double heavy_chime_n20 = 0;
  // Worst simd-over-serial wall ratio across workloads, per size gate.
  double min_simd_accel_n20 = 0;

  folvec::TablePrinter table({"workload", "N", "fused_chime_us",
                              "unfused_chime_us", "chime_cut", "serial_wall_ms",
                              "parallel_wall_ms", "simd_wall_ms",
                              "par_simd_wall_ms", "unfused_wall_ms",
                              "wall_accel", "simd_accel"});
  for (const Workload& w : workloads) {
    for (const int lg : sizes) {
      const auto n = static_cast<std::size_t>(1) << lg;
      // One input per cell: serial, parallel, simd, parallel+simd, and
      // unfused all consume these exact buffers.
      const WorkloadInput input = w.make(n);
      const auto body = [&w, &input](VectorMachine& m) {
        return w.body(m, input);
      };
      // One untimed warmup so the first measured run is not the one paying
      // to page in the key material and working set, then min-of-k
      // interleaved reps: ambient host load drifts all five configurations
      // alike instead of landing on whichever ran when the spike hit.
      run_backend(BackendKind::kSerial, threads, /*fuse=*/true, params, body);
      constexpr int kReps = 3;
      Sample serial;
      Sample parallel;
      Sample simd;
      Sample par_simd;
      Sample unfused;
      for (int rep = 0; rep < kReps; ++rep) {
        const Sample s = run_backend(BackendKind::kSerial, threads,
                                     /*fuse=*/true, params, body);
        const Sample p = run_backend(BackendKind::kParallel, threads,
                                     /*fuse=*/true, params, body);
        const Sample v = run_backend(BackendKind::kSimd, threads,
                                     /*fuse=*/true, params, body);
        const Sample pv = run_backend(BackendKind::kParallelSimd, threads,
                                      /*fuse=*/true, params, body);
        const Sample u = run_backend(BackendKind::kSerial, threads,
                                     /*fuse=*/false, params, body);
        if (rep == 0) {
          serial = s;
          parallel = p;
          simd = v;
          par_simd = pv;
          unfused = u;
        } else {
          FOLVEC_CHECK(s.digest == serial.digest && p.digest == parallel.digest &&
                           v.digest == simd.digest &&
                           pv.digest == par_simd.digest &&
                           u.digest == unfused.digest,
                       "workload must be deterministic across reps");
          serial.wall_s = std::min(serial.wall_s, s.wall_s);
          parallel.wall_s = std::min(parallel.wall_s, p.wall_s);
          simd.wall_s = std::min(simd.wall_s, v.wall_s);
          par_simd.wall_s = std::min(par_simd.wall_s, pv.wall_s);
          unfused.wall_s = std::min(unfused.wall_s, u.wall_s);
        }
      }
      FOLVEC_CHECK(serial.digest == parallel.digest,
                   "parallel backend diverged from serial reference");
      FOLVEC_CHECK(serial.digest == simd.digest,
                   "simd backend diverged from serial reference");
      FOLVEC_CHECK(serial.digest == par_simd.digest,
                   "parallel+simd backend diverged from serial reference");
      FOLVEC_CHECK(serial.digest == unfused.digest,
                   "fused kernels diverged from the unfused composition");
      FOLVEC_CHECK(serial.chime_us == parallel.chime_us &&
                       serial.chime_us == simd.chime_us &&
                       serial.chime_us == par_simd.chime_us,
                   "backends must issue identical instruction streams");
      FOLVEC_CHECK(serial.chime_us <= unfused.chime_us,
                   "fused kernels must never cost more chimes than the chain");
      const double cut =
          unfused.chime_us > 0 ? 1.0 - serial.chime_us / unfused.chime_us : 0;
      if (w.assert_cut && lg == 20) {
        FOLVEC_CHECK(cut >= 0.25,
                     "fused FOL1 round must cut >= 25% of the chained chime "
                     "cost at N=2^20");
        report.note(std::string(w.name) + "_chime_cut_n20", cut);
        report.note(std::string(w.name) + "_wall_fused_over_unfused_n20",
                    unfused.wall_s > 0 ? serial.wall_s / unfused.wall_s : 0);
      }
      if (lg == 20 && std::string(w.name) == "fol1_distinct") {
        distinct_chime_n20 = serial.chime_us;
      }
      if (lg == 20 && std::string(w.name) == "fol1_heavy") {
        heavy_chime_n20 = serial.chime_us;
      }
      const double accel =
          parallel.wall_s > 0 ? serial.wall_s / parallel.wall_s : 0;
      const double simd_accel =
          simd.wall_s > 0 ? serial.wall_s / simd.wall_s : 0;
      if (lg == 20) {
        min_simd_accel_n20 = min_simd_accel_n20 == 0
                                 ? simd_accel
                                 : std::min(min_simd_accel_n20, simd_accel);
      }
      table.add_row({w.name, Cell(static_cast<long long>(n)),
                     Cell(serial.chime_us, 0), Cell(unfused.chime_us, 0),
                     Cell(cut, 3), Cell(serial.wall_s * 1e3, 2),
                     Cell(parallel.wall_s * 1e3, 2),
                     Cell(simd.wall_s * 1e3, 2),
                     Cell(par_simd.wall_s * 1e3, 2),
                     Cell(unfused.wall_s * 1e3, 2), Cell(accel, 2),
                     Cell(simd_accel, 2)});
    }
  }
  if (has_n20) report.note("simd_wall_accel_min_n20", min_simd_accel_n20);
  // Graceful-degradation acceptance bound: with the adaptive drain on
  // (the default), maximal sharing (every lane one area, multiplicity N)
  // must model within 2x of the all-distinct run of the same length —
  // instead of the ~N/2-fold blowup of the pure Theorem 6 decomposition.
  // Only checkable when the run includes N=2^20.
  if (has_n20) {
    FOLVEC_CHECK(distinct_chime_n20 > 0 && heavy_chime_n20 > 0,
                 "fol1_distinct / fol1_heavy N=2^20 samples missing");
    const double heavy_ratio = heavy_chime_n20 / distinct_chime_n20;
    FOLVEC_CHECK(heavy_ratio <= 2.0,
                 "adaptive drain failed to bound pathological sharing within "
                 "2x of the all-distinct chime cost at N=2^20");
    report.note("fol1_heavy_over_distinct_chime_n20", heavy_ratio);
  }

  // ---- worker scaling curve -----------------------------------------------
  // Every workload at 1/2/4/8 workers at N=2^17, plus the 4-worker point at
  // N=2^20: the evidence the parallel backend wins rather than merely
  // matching, with the parallel+simd wall beside it. Each point is
  // digest-checked against the serial reference, so the curve doubles as a
  // bit-identity sweep across worker counts, and every column of a cell
  // reuses the one input generated for that (workload, N).
  folvec::TablePrinter scaling_table({"workload", "N", "workers",
                                      "serial_wall_ms", "parallel_wall_ms",
                                      "par_simd_wall_ms", "wall_accel",
                                      "par_simd_accel"});
  double min_accel_n17_w4 = 0;
  double min_accel_n20_w4 = 0;
  const auto scaling_points = [&](const Workload& w, int lg,
                                  const std::vector<std::size_t>& counts) {
    const auto n = static_cast<std::size_t>(1) << lg;
    const WorkloadInput input = w.make(n);
    const auto body = [&w, &input](VectorMachine& m) {
      return w.body(m, input);
    };
    constexpr int kReps = 3;
    run_backend(BackendKind::kSerial, threads, /*fuse=*/true, params, body);
    Sample serial;
    for (int rep = 0; rep < kReps; ++rep) {
      const Sample s = run_backend(BackendKind::kSerial, threads,
                                   /*fuse=*/true, params, body);
      if (rep == 0) {
        serial = s;
      } else {
        serial.wall_s = std::min(serial.wall_s, s.wall_s);
      }
    }
    for (const std::size_t workers : counts) {
      Sample parallel;
      Sample par_simd;
      for (int rep = 0; rep < kReps; ++rep) {
        const Sample p = run_backend(BackendKind::kParallel, workers,
                                     /*fuse=*/true, params, body);
        const Sample pv = run_backend(BackendKind::kParallelSimd, workers,
                                      /*fuse=*/true, params, body);
        FOLVEC_CHECK(p.digest == serial.digest,
                     "parallel backend diverged from serial on the scaling "
                     "curve");
        FOLVEC_CHECK(pv.digest == serial.digest,
                     "parallel+simd backend diverged from serial on the "
                     "scaling curve");
        if (rep == 0) {
          parallel = p;
          par_simd = pv;
        } else {
          parallel.wall_s = std::min(parallel.wall_s, p.wall_s);
          par_simd.wall_s = std::min(par_simd.wall_s, pv.wall_s);
        }
      }
      const double accel =
          parallel.wall_s > 0 ? serial.wall_s / parallel.wall_s : 0;
      const double simd_accel =
          par_simd.wall_s > 0 ? serial.wall_s / par_simd.wall_s : 0;
      scaling_table.add_row({w.name, Cell(static_cast<long long>(n)),
                             Cell(static_cast<long long>(workers)),
                             Cell(serial.wall_s * 1e3, 2),
                             Cell(parallel.wall_s * 1e3, 2),
                             Cell(par_simd.wall_s * 1e3, 2), Cell(accel, 2),
                             Cell(simd_accel, 2)});
      if (workers == 4) {
        const std::string note_key = std::string("scaling_wall_accel_") +
                                     w.name + "_n" + std::to_string(lg) +
                                     "_w4";
        report.note(note_key, accel);
        double& min_accel = lg == 17 ? min_accel_n17_w4 : min_accel_n20_w4;
        min_accel = min_accel == 0 ? accel : std::min(min_accel, accel);
        if (accel_gate) {
          FOLVEC_CHECK(accel > 1.0,
                       "parallel backend must beat serial wall clock with 4 "
                       "workers on every workload");
        }
      }
    }
  };
  for (const Workload& w : workloads) {
    if (has_n17) scaling_points(w, 17, {1, 2, 4, 8});
    if (has_n20) scaling_points(w, 20, {4});
  }
  report.note("wall_accel_gate_active", accel_gate ? 1.0 : 0.0);
  if (has_n17) report.note("scaling_wall_accel_min_n17_w4", min_accel_n17_w4);
  if (has_n20) report.note("scaling_wall_accel_min_n20_w4", min_accel_n20_w4);

  // ---- hardware conflict detection vs FOL1 software decomposition ---------
  // The headline ablation: the same dense-sharing index vector as the fol1
  // rows, decomposed once by the paper's multi-round software protocol
  // (timed via the machine's wall accounting) and once by a single
  // conflict_rank pass (timed directly — it is one kernel call, not an
  // instruction stream). rank[i] is lane i's occurrence number among
  // earlier lanes with the same address, so rank class r is parallel set
  // S_{r+1}: a valid minimal decomposition by construction. Cross-checked
  // against the scalar reference kernel bit for bit, and against FOL1's own
  // decomposition (set count and set sizes match whenever the adaptive
  // drain stayed out — both partitions are minimal, Theorem 5).
  const SimdKernels& level_table = folvec::vm::simd_kernels_for(simd_level);
  const bool hw_native = level_table.conflict_rank != nullptr;
  const SimdKernels& rank_table =
      hw_native ? level_table : folvec::vm::simd_kernels_scalar();
  report.config("hw_conflict_native", hw_native ? 1.0 : 0.0);
  folvec::TablePrinter hw_table({"workload", "N", "areas", "fol1_rounds",
                                 "fol1_wall_ms", "hw_rank_wall_ms",
                                 "hw_speedup"});
  for (const int lg : sizes) {
    const auto n = static_cast<std::size_t>(1) << lg;
    const WorkloadInput input = fol1_make(n);
    const std::size_t areas = input.work.size();
    constexpr int kReps = 3;
    // Software half: FOL1 end to end, warmup then min-of-k machine wall.
    folvec::fol::Decomposition dec;
    double fol1_wall = 0;
    for (int rep = -1; rep < kReps; ++rep) {
      MachineConfig cfg;
      cfg.audit = false;
      cfg.backend = BackendKind::kSerial;
      VectorMachine m(cfg);
      WordVec work = input.work;
      folvec::fol::Decomposition d =
          folvec::fol::fol1_decompose(m, input.idx, work);
      const double wall = m.cost().total_wall_seconds();
      if (rep < 0) continue;  // warmup
      if (rep == 0) {
        dec = std::move(d);
        fol1_wall = wall;
      } else {
        fol1_wall = std::min(fol1_wall, wall);
      }
    }
    // Hardware half: zero the occupancy counts (the method's work area,
    // timed like FOL1's work-array scatters are) and rank every lane in one
    // pass.
    WordVec rank(n, -1);
    WordVec counts(areas, 0);
    double hw_wall = 0;
    for (int rep = -1; rep < kReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      std::fill(counts.begin(), counts.end(), 0);
      rank_table.conflict_rank(rank.data(), input.idx.data(), n,
                               counts.data());
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (rep < 0) continue;
      hw_wall = rep == 0 ? wall : std::min(hw_wall, wall);
    }
    // Bit-exact check against the scalar reference kernel.
    if (&rank_table != &folvec::vm::simd_kernels_scalar()) {
      WordVec ref_rank(n, -1);
      WordVec ref_counts(areas, 0);
      folvec::vm::simd_kernels_scalar().conflict_rank(
          ref_rank.data(), input.idx.data(), n, ref_counts.data());
      FOLVEC_CHECK(rank == ref_rank && counts == ref_counts,
                   "hardware conflict ranks diverged from the scalar "
                   "reference");
    }
    // The counts are the per-area multiplicities; they must cover all lanes.
    Word covered = 0;
    for (const Word c : counts) covered += c;
    FOLVEC_CHECK(covered == static_cast<Word>(n),
                 "conflict_rank counts must cover every lane");
    // Minimality cross-check against FOL1 itself: same set count, same set
    // sizes (valid when the decomposition ran purely on the vector unit —
    // the adaptive drain reassigns lanes and may split sets differently).
    Word max_rank = -1;
    for (const Word r : rank) max_rank = std::max(max_rank, r);
    std::vector<std::size_t> class_size(
        static_cast<std::size_t>(max_rank + 1), 0);
    for (const Word r : rank) ++class_size[static_cast<std::size_t>(r)];
    if (dec.drained_lanes == 0) {
      FOLVEC_CHECK(class_size.size() == dec.rounds(),
                   "hardware rank classes and FOL1 rounds must agree on the "
                   "minimal set count");
      for (std::size_t r = 0; r < class_size.size(); ++r) {
        FOLVEC_CHECK(class_size[r] == dec.sets[r].size(),
                     "hardware rank class sizes must match FOL1 set sizes");
      }
    }
    const double speedup = hw_wall > 0 ? fol1_wall / hw_wall : 0;
    // This gate is the point of the backend: one conflict-detection pass
    // (even the scalar fallback's) must beat the multi-round software
    // protocol it replaces.
    FOLVEC_CHECK(speedup > 1.0,
                 "one-pass conflict ranking must beat the multi-round FOL1 "
                 "software decomposition wall clock");
    hw_table.add_row({"fol1_hw_conflict", Cell(static_cast<long long>(n)),
                      Cell(static_cast<long long>(areas)),
                      Cell(static_cast<long long>(dec.rounds())),
                      Cell(fol1_wall * 1e3, 3), Cell(hw_wall * 1e3, 3),
                      Cell(speedup, 1)});
    // "wall" in the key keeps bench_trend from drift-gating a host-timing
    // ratio (only chime-modeled notes must reproduce bit-for-bit).
    report.note("fol1_hw_conflict_wall_speedup_n" + std::to_string(lg),
                speedup);
    if (lg == 20) {
      report.note("fol1_hw_conflict_fol1_wall_ms_n20", fol1_wall * 1e3);
      report.note("fol1_hw_conflict_hw_wall_ms_n20", hw_wall * 1e3);
    }
  }

  // ---- audit-mode comparison ----------------------------------------------
  // The static verifier's elision claim, measured on the all-distinct FOL1
  // workload (every scatter-class op proven safe): audit off is the floor,
  // full per-lane ScatterCheck the ceiling, and the analysis-elided auditor
  // keeps the guarantees (the elided round's write footprint is booked as
  // one clobber interval) while skipping the per-lane pass.
  const auto run_audit = [&params](AuditMode mode, const WorkloadInput& in) {
    MachineConfig cfg;
    cfg.backend = BackendKind::kSerial;  // audit pins serial; compare alike
    cfg.audit = mode != AuditMode::kOff;
    cfg.analysis = mode == AuditMode::kElide;
    cfg.audit_elide = mode == AuditMode::kElide;
    VectorMachine m(cfg);
    AuditSample s;
    s.digest = fol1_drained_body(m, in);
    s.chime_us = m.cost().microseconds(params);
    s.wall_s = m.cost().total_wall_seconds();
    if (auto* a = m.analyzer()) {
      s.scatter_ops = a->stats().scatter_ops;
      s.scatter_safe = a->stats().scatter_safe;
      s.elided = a->stats().elided_instructions;
      s.checked = a->stats().checked_instructions;
    }
    return s;
  };
  folvec::TablePrinter audit_table({"audit", "N", "chime_us", "wall_ms",
                                    "audit_overhead", "scatter_proven_safe",
                                    "elided_fraction"});
  double full_wall_n20 = 0;
  double elide_wall_n20 = 0;
  for (const int lg : sizes) {
    const auto n = static_cast<std::size_t>(1) << lg;
    const WorkloadInput input = fol1_distinct_make(n);
    run_audit(AuditMode::kElide, input);  // warmup (pages in the key material)
    AuditSample off;
    AuditSample full;
    AuditSample elide;
    constexpr int kReps = 3;
    for (int rep = 0; rep < kReps; ++rep) {
      const AuditSample o = run_audit(AuditMode::kOff, input);
      const AuditSample f = run_audit(AuditMode::kFull, input);
      const AuditSample e = run_audit(AuditMode::kElide, input);
      if (rep == 0) {
        off = o;
        full = f;
        elide = e;
      } else {
        off.wall_s = std::min(off.wall_s, o.wall_s);
        full.wall_s = std::min(full.wall_s, f.wall_s);
        elide.wall_s = std::min(elide.wall_s, e.wall_s);
      }
    }
    FOLVEC_CHECK(off.digest == full.digest && off.digest == elide.digest,
                 "audit modes must not change workload outputs");
    FOLVEC_CHECK(off.chime_us == full.chime_us &&
                     off.chime_us == elide.chime_us,
                 "auditing is host bookkeeping: the modeled chime stream "
                 "must be identical across audit modes");
    FOLVEC_CHECK(elide.scatter_ops > 0, "analysis saw no scatter-class ops");
    const double safe_frac = static_cast<double>(elide.scatter_safe) /
                             static_cast<double>(elide.scatter_ops);
    const std::uint64_t audited = elide.elided + elide.checked;
    const double elided_frac =
        audited > 0 ? static_cast<double>(elide.elided) /
                          static_cast<double>(audited)
                    : 0;
    FOLVEC_CHECK(safe_frac >= 0.8,
                 "the distinct-key FOL1 workload must prove >= 80% of its "
                 "scatter-class ops safe");
    const auto row = [&](const char* name, const AuditSample& s, bool stats) {
      audit_table.add_row(
          {name, Cell(static_cast<long long>(n)), Cell(s.chime_us, 0),
           Cell(s.wall_s * 1e3, 2),
           Cell(off.wall_s > 0 ? s.wall_s / off.wall_s : 0, 2),
           stats ? Cell(safe_frac, 3) : Cell(""),
           stats ? Cell(elided_frac, 3) : Cell("")});
    };
    row("off", off, false);
    row("full", full, false);
    row("elide", elide, true);
    if (lg == 20) {
      full_wall_n20 = full.wall_s;
      elide_wall_n20 = elide.wall_s;
      report.note("fol1_distinct_audit_full_wall_ms_n20", full.wall_s * 1e3);
      report.note("fol1_distinct_audit_elide_wall_ms_n20",
                  elide.wall_s * 1e3);
      report.note("fol1_distinct_scatter_proven_safe_n20", safe_frac);
      report.note("fol1_distinct_elided_fraction_n20", elided_frac);
    }
  }
  // The elision acceptance bound: proving the ops safe must actually buy
  // back the auditor's per-lane wall cost on the workload it targets.
  if (has_n20) {
    FOLVEC_CHECK(elide_wall_n20 < full_wall_n20,
                 "analysis-elided auditing must beat the full per-lane "
                 "ScatterCheck wall time at N=2^20");
  }

  table.print(std::cout,
              "Backend comparison: fused vs unfused chimes; serial, "
              "parallel, simd, parallel+simd wall clock (" +
                  std::to_string(threads) + " workers requested, simd=" +
                  folvec::vm::simd_level_name(simd_level) + ")");
  scaling_table.print(std::cout,
                      "Worker scaling curve: parallel and parallel+simd "
                      "wall clock vs the serial reference per worker count");
  hw_table.print(std::cout,
                 std::string("fol1_hw_conflict ablation: one-pass ") +
                     (hw_native ? "hardware" : "scalar-fallback") +
                     " conflict ranking (" +
                     folvec::vm::simd_level_name(rank_table.level) +
                     ") vs the FOL1 software decomposition");
  audit_table.print(std::cout,
                    "Audit modes on the proven-safe fol1_distinct workload: "
                    "off vs full ScatterCheck vs analysis-elided");
  report.add_table("Audit modes on the proven-safe fol1_distinct workload: "
                       "off vs full ScatterCheck vs analysis-elided",
                   audit_table);
  report.add_table("Backend comparison: fused vs unfused chimes; serial, "
                       "parallel, simd, parallel+simd wall clock (" +
                       std::to_string(threads) + " workers requested)",
                   table);
  report.add_table("Worker scaling curve: parallel and parallel+simd wall "
                       "clock vs the serial reference per worker count",
                   scaling_table);
  report.add_table("fol1_hw_conflict ablation: one-pass conflict ranking vs "
                       "the FOL1 software decomposition",
                   hw_table);
  std::cout << "\nchime times are backend-invariant (asserted); chime_cut is "
               "1 - fused/unfused, asserted >= 0.25 for the FOL1 workloads "
               "at N=2^20;\nwall acceleration depends on host core count; "
               "the 4-worker scaling points are asserted > 1.0 "
            << (accel_gate ? "(gate active: " : "(gate skipped: ")
            << hw_threads << " hardware threads);\nfol1_hw_conflict asserts "
               "the one-pass conflict ranking beats the multi-round FOL1 "
               "software wall clock\n";
  return 0;
}
