#include "vm/parallel_backend.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "support/require.h"
#include "telemetry/metrics.h"
#include "vm/simd_kernels.h"

namespace folvec::vm {

namespace {

std::size_t hardware_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// Lanes between early-cut polls in the first_oob scan: cheap enough to be
/// invisible next to the compare, frequent enough that a chunk bails within
/// microseconds of a lower chunk's hit.
constexpr std::size_t kEarlyCutStride = 1024;

}  // namespace

ParallelBackend::ParallelBackend(std::size_t workers, std::size_t grain,
                                 MergeStrategy merge,
                                 const SimdKernels* kernels)
    : workers_(workers == 0 ? hardware_workers() : workers),
      grain_(std::max<std::size_t>(1, grain)),
      merge_(merge),
      kernels_(kernels) {}

ParallelBackend::~ParallelBackend() = default;

std::size_t ParallelBackend::chunks_for(std::size_t n) const {
  if (workers_ == 1 || n < 2 * grain_) return 1;
  return std::min(workers_, n / grain_);
}

detail::ChunkPlan ParallelBackend::checked_plan(std::size_t n, std::size_t c) {
  const detail::ChunkPlan p = detail::plan(n, c);
  const std::size_t k = p.count();
  // Dispatching exactly count() tasks keeps every pooled chunk non-empty:
  // the last one must still own at least one lane.
  FOLVEC_CHECK(k >= 1 && p.lo(k - 1) < p.hi(k - 1),
               "chunk plan produced a zero-lane pooled chunk");
  return p;
}

ThreadPool& ParallelBackend::pool() {
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(workers_);
  return *pool_;
}

void ParallelBackend::for_lanes(std::size_t n, RangeFn fn) {
  const std::size_t c = chunks_for(n);
  if (c <= 1) {
    fn(0, n);
    return;
  }
  const detail::ChunkPlan p = checked_plan(n, c);
  pool().run_affine(p.count(),
                    [&](std::size_t i) { fn(p.lo(i), p.hi(i)); });
}

Word ParallelBackend::reduce(std::span<const Word> v, Word (*fold)(Word, Word),
                             Word (*span_kernel)(const Word*, std::size_t)) {
  const auto fold_range = [&](std::size_t lo, std::size_t hi) {
    if (span_kernel != nullptr) return span_kernel(v.data() + lo, hi - lo);
    Word acc = v[lo];
    for (std::size_t j = lo + 1; j < hi; ++j) acc = fold(acc, v[j]);
    return acc;
  };
  const std::size_t c = chunks_for(v.size());
  // Chunks are non-empty by construction, so the seeding read is in bounds
  // (the old chunks-sized dispatch read v[lo] of empty tails).
  if (c <= 1) return fold_range(0, v.size());
  const detail::ChunkPlan p = checked_plan(v.size(), c);
  const std::size_t k = p.count();
  std::vector<Word> partials(k);
  pool().run_affine(k, [&](std::size_t i) {
    partials[i] = fold_range(p.lo(i), p.hi(i));
  });
  // Combine in ascending chunk order: for the associative folds used here
  // this equals the serial left fold bit-for-bit.
  Word acc = partials[0];
  for (std::size_t i = 1; i < k; ++i) acc = fold(acc, partials[i]);
  return acc;
}

Word ParallelBackend::reduce_sum(std::span<const Word> v) {
  if (v.empty()) return 0;
  return reduce(
      v,
      [](Word a, Word b) {
        return static_cast<Word>(static_cast<std::uint64_t>(a) +
                                 static_cast<std::uint64_t>(b));
      },
      kernels_ != nullptr ? kernels_->reduce_sum : nullptr);
}

Word ParallelBackend::reduce_min(std::span<const Word> v) {
  return reduce(v, [](Word a, Word b) { return std::min(a, b); },
                kernels_ != nullptr ? kernels_->reduce_min : nullptr);
}

Word ParallelBackend::reduce_max(std::span<const Word> v) {
  return reduce(v, [](Word a, Word b) { return std::max(a, b); },
                kernels_ != nullptr ? kernels_->reduce_max : nullptr);
}

std::size_t ParallelBackend::count_true(std::span<const std::uint8_t> m) {
  const auto count_range = [&](std::size_t lo, std::size_t hi) {
    if (kernels_ != nullptr && kernels_->count_true != nullptr) {
      return kernels_->count_true(m.data() + lo, hi - lo);
    }
    std::size_t n = 0;
    for (std::size_t j = lo; j < hi; ++j) n += m[j];
    return n;
  };
  const std::size_t c = chunks_for(m.size());
  if (c <= 1) return count_range(0, m.size());
  const detail::ChunkPlan p = checked_plan(m.size(), c);
  const std::size_t k = p.count();
  std::vector<std::size_t> partials(k, 0);
  pool().run_affine(k, [&](std::size_t i) {
    partials[i] = count_range(p.lo(i), p.hi(i));
  });
  std::size_t total = 0;
  for (std::size_t n : partials) total += n;
  return total;
}

WordVec ParallelBackend::compress(std::span<const Word> v,
                                  std::span<const std::uint8_t> m) {
  const std::size_t c = chunks_for(v.size());
  if (c <= 1) {
    WordVec out;
    out.reserve(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (m[i] != 0) out.push_back(v[i]);
    }
    return out;
  }
  const detail::ChunkPlan p = checked_plan(v.size(), c);
  const std::size_t k = p.count();
  std::vector<std::size_t> counts(k, 0);
  pool().run_affine(k, [&](std::size_t i) {
    std::size_t n = 0;
    for (std::size_t j = p.lo(i); j < p.hi(i); ++j) n += m[j];
    counts[i] = n;
  });
  std::vector<std::size_t> offsets(k, 0);
  std::size_t total = 0;
  for (std::size_t i = 0; i < k; ++i) {
    offsets[i] = total;
    total += counts[i];
  }
  WordVec out(total);
  Word* dst = out.data();
  pool().run_affine(k, [&](std::size_t i) {
    std::size_t at = offsets[i];
    for (std::size_t j = p.lo(i); j < p.hi(i); ++j) {
      if (m[j] != 0) dst[at++] = v[j];
    }
  });
  return out;
}

std::size_t ParallelBackend::first_oob(std::span<const Word> idx,
                                       std::size_t table_size,
                                       const std::uint8_t* mask) {
  const auto oob = [&](std::size_t i) {
    if (mask != nullptr && mask[i] == 0) return false;
    return idx[i] < 0 || static_cast<std::size_t>(idx[i]) >= table_size;
  };
  const std::size_t c = chunks_for(idx.size());
  if (c <= 1) {
    for (std::size_t i = 0; i < idx.size(); ++i) {
      if (oob(i)) return i;
    }
    return npos;
  }
  const detail::ChunkPlan p = checked_plan(idx.size(), c);
  // Early-cut scan: `best` holds the lowest offending lane found so far.
  // A chunk bails only when best < its lo — i.e. a STRICTLY earlier chunk
  // already hit — so the chunk containing the globally-first violation can
  // never bail (that would contradict globality) and its first local hit IS
  // the global first. Every store is raced only through the CAS-min loop,
  // and the pool join orders the final relaxed load after all of them.
  std::atomic<std::size_t> best{npos};
  pool().run_affine(p.count(), [&](std::size_t i) {
    const std::size_t lo = p.lo(i);
    const std::size_t hi = p.hi(i);
    for (std::size_t j = lo; j < hi; ++j) {
      if ((j - lo) % kEarlyCutStride == 0 &&
          best.load(std::memory_order_relaxed) < lo) {
        return;
      }
      if (!oob(j)) continue;
      std::size_t cur = best.load(std::memory_order_relaxed);
      while (j < cur && !best.compare_exchange_weak(
                            cur, j, std::memory_order_relaxed)) {
      }
      return;  // later lanes of this chunk cannot beat its first hit
    }
  });
  return best.load(std::memory_order_relaxed);
}

void ParallelBackend::scatter(std::span<Word> table, std::span<const Word> idx,
                              std::span<const Word> vals,
                              const std::uint8_t* mask,
                              ScatterTraversal traversal,
                              std::span<const std::size_t> order) {
  const std::size_t c = chunks_for(idx.size());
  if (c <= 1 || table.empty()) {
    telemetry::count("pool.scatter.inline");
    apply_scatter_reference(table, idx, vals, mask, traversal, order);
    return;
  }
  telemetry::count("pool.scatter.parallel");
  // kAuto selection. Forward/reverse traversals always take the single
  // pass: position order is computable per worker, so one dispatch wins
  // outright. Explicit traversals pay an order[] indirection in every
  // worker's full-length scan, so the two-pass route+replay wins once the
  // scatter is long enough to amortize its bucket setup — but short
  // explicit scatters (the serving layer's shard-local sub-batches) sit
  // below that: measured on 2/4/8 workers the crossover is ~160-192
  // lanes, with single-pass ahead by up to 30% at 64 lanes and two-pass
  // ahead by 2-4x from 1k lanes up (floors encoded in
  // bench/goldens/backend_scaling.json via the serve_load bench).
  constexpr std::size_t kExplicitSinglePassMaxLanes = 160;
  const bool single =
      merge_ == MergeStrategy::kSinglePass ||
      (merge_ == MergeStrategy::kAuto &&
       (traversal != ScatterTraversal::kExplicit ||
        idx.size() <= kExplicitSinglePassMaxLanes));
  if (single) {
    telemetry::count("pool.merge.single_pass");
    scatter_single_pass(table, idx, vals, mask, traversal, order);
  } else {
    telemetry::count("pool.merge.two_pass");
    scatter_two_pass(table, idx, vals, mask, traversal, order, c);
  }
}

void ParallelBackend::scatter_single_pass(std::span<Word> table,
                                          std::span<const Word> idx,
                                          std::span<const Word> vals,
                                          const std::uint8_t* mask,
                                          ScatterTraversal traversal,
                                          std::span<const std::size_t> order) {
  const std::size_t n = idx.size();
  // The serial survivor of an address is its write with the highest
  // traversal position. Scanning positions n-1 down to 0, the FIRST write
  // each interval owner meets for an address is that survivor; the claim
  // stamp then retires the address for the rest of the scan.
  const auto lane_at = [&](std::size_t pos) {
    switch (traversal) {
      case ScatterTraversal::kReverse:
        return n - 1 - pos;
      case ScatterTraversal::kExplicit:
        return order[pos];
      case ScatterTraversal::kForward:
        break;
    }
    return pos;
  };
  if (claim_.size() < table.size()) claim_.resize(table.size(), 0);
  ++claim_epoch_;
  const std::uint64_t epoch = claim_epoch_;
  std::uint64_t* claim = claim_.data();
  const std::size_t ranges = std::min(workers_, table.size());
  const std::size_t range_words =
      table.size() / ranges + (table.size() % ranges != 0 ? 1 : 0);
  pool().run_affine(ranges, [&](std::size_t r) {
    const std::size_t a_lo = r * range_words;
    const std::size_t a_hi = std::min(table.size(), a_lo + range_words);
    if (a_lo >= a_hi) return;
    for (std::size_t pos = n; pos-- > 0;) {
      const std::size_t lane = lane_at(pos);
      if (mask != nullptr && mask[lane] == 0) continue;
      const auto addr = static_cast<std::size_t>(idx[lane]);
      if (addr < a_lo || addr >= a_hi) continue;
      if (claim[addr] == epoch) continue;
      claim[addr] = epoch;
      table[addr] = vals[lane];
    }
  });
}

void ParallelBackend::scatter_two_pass(std::span<Word> table,
                                       std::span<const Word> idx,
                                       std::span<const Word> vals,
                                       const std::uint8_t* mask,
                                       ScatterTraversal traversal,
                                       std::span<const std::size_t> order,
                                       std::size_t c) {
  const std::size_t n = idx.size();
  // Lane visited at traversal position `pos`; positions ascend 0..n-1.
  const auto lane_at = [&](std::size_t pos) {
    switch (traversal) {
      case ScatterTraversal::kReverse:
        return n - 1 - pos;
      case ScatterTraversal::kExplicit:
        return order[pos];
      case ScatterTraversal::kForward:
        break;
    }
    return pos;
  };
  const std::size_t ranges = c;
  const std::size_t range_words =
      table.size() / ranges + (table.size() % ranges != 0 ? 1 : 0);
  buckets_.resize(c * ranges);
  for (auto& b : buckets_) b.clear();

  // Pass 1: route each active write to its owning address range, keeping
  // position order within every (slice, range) bucket.
  const auto t0 = std::chrono::steady_clock::now();
  const detail::ChunkPlan p = checked_plan(n, c);
  pool().run_affine(p.count(), [&](std::size_t slice) {
    std::vector<Route>* row = &buckets_[slice * ranges];
    for (std::size_t pos = p.lo(slice); pos < p.hi(slice); ++pos) {
      const std::size_t lane = lane_at(pos);
      if (mask != nullptr && mask[lane] == 0) continue;
      const Word addr = idx[lane];
      row[static_cast<std::size_t>(addr) / range_words].push_back(
          Route{addr, vals[lane]});
    }
  });
  const auto t1 = std::chrono::steady_clock::now();

  // Pass 2: each worker owns one address range and replays its buckets in
  // ascending (slice, position) order — exactly the serial traversal order
  // restricted to that range. Ranges are disjoint, so no write races.
  pool().run_affine(ranges, [&](std::size_t r) {
    for (std::size_t slice = 0; slice < c; ++slice) {
      for (const Route& w : buckets_[slice * ranges + r]) {
        table[static_cast<std::size_t>(w.addr)] = w.val;
      }
    }
  });

  if (telemetry::MetricsRegistry* reg = telemetry::metrics()) {
    const auto t2 = std::chrono::steady_clock::now();
    using Sec = std::chrono::duration<double>;
    reg->time_add("pool.scatter.route_seconds", Sec(t1 - t0).count());
    reg->time_add("pool.scatter.replay_seconds", Sec(t2 - t1).count());
    // Replay-phase balance: writes owned by the busiest range vs the total.
    std::uint64_t total = 0;
    std::uint64_t busiest = 0;
    for (std::size_t r = 0; r < ranges; ++r) {
      std::uint64_t range_total = 0;
      for (std::size_t slice = 0; slice < c; ++slice) {
        range_total += buckets_[slice * ranges + r].size();
      }
      total += range_total;
      busiest = std::max(busiest, range_total);
    }
    reg->add("pool.scatter.routed_writes", total);
    reg->observe("pool.scatter.busiest_range_writes", busiest);
  }
}

void ParallelBackend::compress_into(std::span<const Word> v,
                                    std::span<const std::uint8_t> m,
                                    std::span<Word> out) {
  const std::size_t c = chunks_for(v.size());
  if (c <= 1) {
    std::size_t at = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (m[i] != 0) out[at++] = v[i];
    }
    return;
  }
  const detail::ChunkPlan p = checked_plan(v.size(), c);
  const std::size_t k = p.count();
  std::vector<std::size_t> counts(k, 0);
  pool().run_affine(k, [&](std::size_t i) {
    std::size_t n = 0;
    for (std::size_t j = p.lo(i); j < p.hi(i); ++j) n += m[j];
    counts[i] = n;
  });
  std::vector<std::size_t> offsets(k, 0);
  std::size_t total = 0;
  for (std::size_t i = 0; i < k; ++i) {
    offsets[i] = total;
    total += counts[i];
  }
  Word* dst = out.data();
  pool().run_affine(k, [&](std::size_t i) {
    std::size_t at = offsets[i];
    for (std::size_t j = p.lo(i); j < p.hi(i); ++j) {
      if (m[j] != 0) dst[at++] = v[j];
    }
  });
}

std::size_t ParallelBackend::scatter_gather_eq(
    std::span<Word> table, std::span<const Word> idx,
    std::span<const Word> vals, const std::uint8_t* mask,
    ScatterTraversal traversal, std::span<const std::size_t> order,
    std::span<std::uint8_t> out_match, void (*between_passes)(void*),
    void* hook_ctx) {
  // The scatter pass is exactly the plain scatter (inline, single-pass, or
  // two-pass merge); the pool join inside it is the barrier that makes every
  // write visible to the readback pass below.
  scatter(table, idx, vals, mask, traversal, order);
  if (between_passes != nullptr) between_passes(hook_ctx);

  const std::size_t n = idx.size();
  const Word* table_p = table.data();
  const auto compare = [&](std::size_t lo, std::size_t hi) {
    std::size_t hits = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      const bool active = mask == nullptr || mask[i] != 0;
      const std::uint8_t hit =
          active && table_p[static_cast<std::size_t>(idx[i])] == vals[i] ? 1
                                                                         : 0;
      out_match[i] = hit;
      hits += hit;
    }
    return hits;
  };
  const std::size_t c = chunks_for(n);
  if (c <= 1) return compare(0, n);
  const detail::ChunkPlan p = checked_plan(n, c);
  const std::size_t k = p.count();
  std::vector<std::size_t> partials(k, 0);
  pool().run_affine(
      k, [&](std::size_t i) { partials[i] = compare(p.lo(i), p.hi(i)); });
  std::size_t survivors = 0;
  for (std::size_t h : partials) survivors += h;
  return survivors;
}

void ParallelBackend::partition(std::span<const Word> v,
                                std::span<const std::uint8_t> m,
                                std::span<Word> kept,
                                std::span<Word> rejected) {
  const std::size_t c = chunks_for(v.size());
  if (c <= 1) {
    std::size_t k = 0;
    std::size_t r = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (m[i] != 0) {
        kept[k++] = v[i];
      } else {
        rejected[r++] = v[i];
      }
    }
    return;
  }
  const detail::ChunkPlan p = checked_plan(v.size(), c);
  const std::size_t nk = p.count();
  std::vector<std::size_t> counts(nk, 0);
  pool().run_affine(nk, [&](std::size_t i) {
    std::size_t n = 0;
    for (std::size_t j = p.lo(i); j < p.hi(i); ++j) n += m[j];
    counts[i] = n;
  });
  // Chunk i's kept lanes start at the sum of earlier chunks' true counts;
  // its rejected lanes at the sum of earlier chunks' false counts.
  std::vector<std::size_t> kept_off(nk, 0);
  std::vector<std::size_t> rej_off(nk, 0);
  std::size_t kept_total = 0;
  std::size_t rej_total = 0;
  for (std::size_t i = 0; i < nk; ++i) {
    kept_off[i] = kept_total;
    rej_off[i] = rej_total;
    kept_total += counts[i];
    rej_total += (p.hi(i) - p.lo(i)) - counts[i];
  }
  Word* kept_p = kept.data();
  Word* rej_p = rejected.data();
  pool().run_affine(nk, [&](std::size_t i) {
    std::size_t k = kept_off[i];
    std::size_t r = rej_off[i];
    for (std::size_t j = p.lo(i); j < p.hi(i); ++j) {
      if (m[j] != 0) {
        kept_p[k++] = v[j];
      } else {
        rej_p[r++] = v[j];
      }
    }
  });
}

}  // namespace folvec::vm
