file(REMOVE_RECURSE
  "CMakeFiles/folvec_fol.dir/fol1.cpp.o"
  "CMakeFiles/folvec_fol.dir/fol1.cpp.o.d"
  "CMakeFiles/folvec_fol.dir/fol_star.cpp.o"
  "CMakeFiles/folvec_fol.dir/fol_star.cpp.o.d"
  "CMakeFiles/folvec_fol.dir/invariants.cpp.o"
  "CMakeFiles/folvec_fol.dir/invariants.cpp.o.d"
  "CMakeFiles/folvec_fol.dir/ordered.cpp.o"
  "CMakeFiles/folvec_fol.dir/ordered.cpp.o.d"
  "libfolvec_fol.a"
  "libfolvec_fol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/folvec_fol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
