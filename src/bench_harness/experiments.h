// Shared experiment runners for the reproduction benches.
//
// Each runner executes a scalar baseline and its vectorized counterpart on
// identical workloads, verifies the two agree (the benches double as
// integration tests), and prices both runs under a chime CostParams table.
// All reported "CPU times" are model estimates for the simulated machine,
// not host wall-clock — see DESIGN.md, Substitutions.
#pragma once

#include <cstddef>
#include <cstdint>

#include "hashing/open_table.h"
#include "vm/cost_model.h"
#include "vm/machine.h"

namespace folvec::bench {

/// Scalar-vs-vector outcome of one experiment under a cost model.
struct RunResult {
  double scalar_us = 0;  ///< modeled scalar CPU time, microseconds
  double vector_us = 0;  ///< modeled vector CPU time, microseconds
  double acceleration() const {
    return vector_us > 0 ? scalar_us / vector_us : 0;
  }
  std::size_t iterations = 0;  ///< algorithm-specific pass/round count
};

/// Figures 9/10: enter floor(load_factor * table_size) distinct random keys
/// into an empty open-addressing table, scalar vs Figure-8 vectorized.
RunResult run_multi_hash(std::size_t table_size, double load_factor,
                         hashing::ProbeVariant variant, std::uint64_t seed,
                         const vm::CostParams& params);

/// Table 1, upper half: address-calculation sort of n random keys.
RunResult run_address_calc_sort(std::size_t n, vm::Word vmax,
                                std::uint64_t seed,
                                const vm::CostParams& params);

/// Table 1, lower half: distribution counting sort of n random keys drawn
/// from [0, range).
RunResult run_dist_count_sort(std::size_t n, vm::Word range,
                              std::uint64_t seed,
                              const vm::CostParams& params);

/// Figure 14: bulk-insert `inserted` random keys into a BST pre-populated
/// with `initial_size` random keys (the paper's Ni).
RunResult run_bst_insert(std::size_t initial_size, std::size_t inserted,
                         std::uint64_t seed, const vm::CostParams& params);

/// FOL* application: rewrite a term over `leaves` leaf symbols to left-deep
/// normal form. `right_comb` picks the fully right-leaning worst case;
/// otherwise a random tree shape is used.
RunResult run_assoc_rewrite(std::size_t leaves, bool right_comb,
                            std::uint64_t seed, const vm::CostParams& params);

/// FOL1 in isolation: decompose an index vector of `n` lanes over
/// `distinct` storage areas (distinct == n means duplicate-free).
/// `adaptive` toggles MachineConfig::adaptive for the vector run — theorem
/// sweeps that measure the pure O(N * max multiplicity) round cost pass
/// false, production-shaped comparisons leave the drain on.
RunResult run_fol1_decompose(std::size_t n, std::size_t distinct,
                             std::uint64_t seed, const vm::CostParams& params,
                             bool adaptive = true);

/// Section 5 substrate: semispace GC over a random heap of `cells` cons
/// cells with `live_fraction` of them reachable, scalar vs vectorized
/// Cheney; the duplicate-evacuation claims are the implicit FOL.
RunResult run_gc(std::size_t cells, double live_fraction, std::uint64_t seed,
                 const vm::CostParams& params);

/// Section 5 substrate: Lee maze routing on a `side` x `side` grid with
/// `obstacle_pct` percent blocked cells, scalar BFS vs vectorized
/// wavefront expansion.
RunResult run_maze(std::size_t side, int obstacle_pct, std::uint64_t seed,
                   const vm::CostParams& params);

}  // namespace folvec::bench
