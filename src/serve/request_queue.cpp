#include "serve/request_queue.h"

#include <algorithm>

namespace folvec::serve {

std::uint64_t RequestQueue::push(OpKind op, vm::Word key, vm::Word value) {
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return 0;
    id = next_id_++;
    queue_.push_back(Request{id, op, key, value, std::chrono::steady_clock::now()});
  }
  cv_.notify_one();
  return id;
}

std::vector<Request> RequestQueue::drain(std::size_t max_n) {
  std::vector<Request> out;
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = std::min(max_n, queue_.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(queue_.front());
    queue_.pop_front();
  }
  return out;
}

std::vector<Request> RequestQueue::wait_batch(
    std::size_t max_batch, std::chrono::microseconds max_wait) {
  std::vector<Request> out;
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return out;  // woken by close() with nothing pending
  const auto deadline = std::chrono::steady_clock::now() + max_wait;
  out.reserve(std::min(max_batch, queue_.size()));
  while (out.size() < max_batch) {
    while (!queue_.empty() && out.size() < max_batch) {
      out.push_back(queue_.front());
      queue_.pop_front();
    }
    if (out.size() >= max_batch || closed_) break;
    // Linger for stragglers: a partially filled batch waits out the
    // remainder of the window in case more requests land.
    if (cv_.wait_until(lock, deadline, [&] {
          return closed_ || !queue_.empty();
        })) {
      if (queue_.empty()) break;
      continue;
    }
    break;  // window expired
  }
  return out;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t RequestQueue::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::uint64_t RequestQueue::accepted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_id_ - 1;
}

}  // namespace folvec::serve
