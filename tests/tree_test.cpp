// Tests for the BST substrate: scalar insertion, the FOL-filtered bulk
// inserter (Section 4.3), and equivalence sweeps between the two.
#include "tree/bst.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "support/prng.h"

namespace folvec::tree {
namespace {

using vm::MachineConfig;
using vm::ScatterOrder;
using vm::VectorMachine;
using vm::Word;
using vm::WordVec;

TEST(BstScalarTest, InsertContainsInorder) {
  Bst t(16);
  for (Word k : {Word{5}, Word{2}, Word{8}, Word{1}, Word{9}}) {
    t.insert_scalar(k);
  }
  EXPECT_EQ(t.size(), 5u);
  EXPECT_TRUE(t.contains(5));
  EXPECT_TRUE(t.contains(1));
  EXPECT_FALSE(t.contains(7));
  EXPECT_EQ(t.inorder(), (std::vector<Word>{1, 2, 5, 8, 9}));
  EXPECT_TRUE(t.check_invariant());
}

TEST(BstScalarTest, DuplicatesDescendRight) {
  Bst t(8);
  t.insert_scalar(5);
  t.insert_scalar(5);
  t.insert_scalar(5);
  EXPECT_EQ(t.inorder(), (std::vector<Word>{5, 5, 5}));
  EXPECT_TRUE(t.check_invariant());
  EXPECT_EQ(t.height(), 3u);  // right chain
}

TEST(BstScalarTest, HeightOfChainAndEmptiness) {
  Bst t(8);
  EXPECT_EQ(t.height(), 0u);
  EXPECT_TRUE(t.inorder().empty());
  for (Word k = 0; k < 5; ++k) t.insert_scalar(k);
  EXPECT_EQ(t.height(), 5u);  // ascending keys chain right
}

TEST(BstScalarTest, PoolExhaustionThrows) {
  Bst t(2);
  t.insert_scalar(1);
  t.insert_scalar(2);
  EXPECT_THROW(t.insert_scalar(3), PreconditionError);
}

TEST(BstBulkTest, IntoEmptyTree) {
  // Every key contends for the root slot on pass one — the maximal-conflict
  // case the paper deliberately avoids benchmarking but we must handle.
  VectorMachine m;
  Bst t(64);
  const WordVec keys{5, 3, 9, 1, 4, 8, 11, 2};
  const BulkInsertStats stats = t.insert_bulk(m, keys);
  EXPECT_EQ(t.size(), keys.size());
  auto expected = std::vector<Word>(keys.begin(), keys.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(t.inorder(), expected);
  EXPECT_TRUE(t.check_invariant());
  EXPECT_GT(stats.conflict_lanes, 0u);
}

TEST(BstBulkTest, MatchesScalarMultiset) {
  const auto initial = random_keys(50, 1000, 1);
  const auto batch = random_keys(40, 1000, 2);
  Bst scalar_t(128);
  for (Word k : initial) scalar_t.insert_scalar(k);
  for (Word k : batch) scalar_t.insert_scalar(k);

  VectorMachine m;
  Bst vec_t(128);
  for (Word k : initial) vec_t.insert_scalar(k);
  vec_t.insert_bulk(m, batch);

  EXPECT_EQ(vec_t.inorder(), scalar_t.inorder());
  EXPECT_TRUE(vec_t.check_invariant());
}

TEST(BstBulkTest, DuplicateKeysInBatch) {
  VectorMachine m;
  Bst t(32);
  const WordVec keys{7, 7, 7, 7, 3, 3};
  t.insert_bulk(m, keys);
  EXPECT_EQ(t.inorder(), (std::vector<Word>{3, 3, 7, 7, 7, 7}));
  EXPECT_TRUE(t.check_invariant());
}

TEST(BstBulkTest, SingleKey) {
  VectorMachine m;
  Bst t(4);
  const BulkInsertStats stats = t.insert_bulk(m, WordVec{42});
  EXPECT_EQ(stats.passes, 1u);
  EXPECT_EQ(stats.conflict_lanes, 0u);
  EXPECT_TRUE(t.contains(42));
}

TEST(BstBulkTest, EmptyBatchIsNoop) {
  VectorMachine m;
  Bst t(4);
  const BulkInsertStats stats = t.insert_bulk(m, WordVec{});
  EXPECT_EQ(stats.passes, 0u);
  EXPECT_EQ(t.size(), 0u);
}

TEST(BstBulkTest, PoolExhaustionThrows) {
  VectorMachine m;
  Bst t(2);
  EXPECT_THROW(t.insert_bulk(m, WordVec{1, 2, 3}), PreconditionError);
}

TEST(BstBulkTest, SequentialBatchesCompose) {
  VectorMachine m;
  Bst t(64);
  t.insert_bulk(m, WordVec{10, 20, 30});
  t.insert_bulk(m, WordVec{5, 15, 25, 35});
  EXPECT_EQ(t.inorder(), (std::vector<Word>{5, 10, 15, 20, 25, 30, 35}));
  EXPECT_TRUE(t.check_invariant());
}

// ---- property sweep ----------------------------------------------------------

// (initial size, batch size, key range, scatter order)
using BulkSweep = std::tuple<std::size_t, std::size_t, Word, ScatterOrder>;

class BstBulkPropertyTest : public ::testing::TestWithParam<BulkSweep> {};

TEST_P(BstBulkPropertyTest, BulkEqualsScalarMultisetAndInvariant) {
  const auto [initial_n, batch_n, range, order] = GetParam();
  const auto initial =
      random_keys(initial_n, range, initial_n * 7 + batch_n);
  const auto batch = random_keys(batch_n, range, batch_n * 13 + 1);

  Bst scalar_t(initial_n + batch_n + 1);
  for (Word k : initial) scalar_t.insert_scalar(k);
  for (Word k : batch) scalar_t.insert_scalar(k);

  MachineConfig cfg;
  cfg.scatter_order = order;
  VectorMachine m(cfg);
  Bst vec_t(initial_n + batch_n + 1);
  for (Word k : initial) vec_t.insert_scalar(k);
  vec_t.insert_bulk(m, batch);

  ASSERT_TRUE(vec_t.check_invariant());
  EXPECT_EQ(vec_t.inorder(), scalar_t.inorder());
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, BstBulkPropertyTest,
    ::testing::Combine(::testing::Values<std::size_t>(0, 8, 128),
                       ::testing::Values<std::size_t>(1, 16, 200),
                       ::testing::Values<Word>(4, 1000, 1 << 30),
                       ::testing::Values(ScatterOrder::kForward,
                                         ScatterOrder::kReverse,
                                         ScatterOrder::kShuffled)));

}  // namespace
}  // namespace folvec::tree
