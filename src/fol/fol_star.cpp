#include "fol/fol_star.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "support/require.h"
#include "telemetry/metrics.h"
#include "vm/buffer_pool.h"
#include "vm/checker.h"

namespace folvec::fol {

using vm::Mask;
using vm::VectorMachine;
using vm::Word;
using vm::WordVec;

namespace {

/// Whether the last remaining tuple shares a storage address with any other
/// remaining tuple this round — i.e. whether its survival depended on the
/// deadlock-avoidance scalar re-store rather than on being conflict-free.
/// Host-side accounting only: issues no machine instructions, so the chime
/// cost of the decomposition is unchanged.
bool last_tuple_contested(const std::vector<vm::PooledVec>& remaining,
                          std::size_t n) {
  if (n < 2) return false;
  std::unordered_set<Word> last_addrs;
  for (const auto& lane : remaining) last_addrs.insert((*lane)[n - 1]);
  for (const auto& lane : remaining) {
    for (std::size_t p = 0; p + 1 < n; ++p) {
      if (last_addrs.count((*lane)[p]) != 0) return true;
    }
  }
  return false;
}

}  // namespace

StarDecomposition fol_star_decompose(VectorMachine& m,
                                     std::span<const WordVec> index_vectors,
                                     std::span<Word> work,
                                     std::size_t max_rounds) {
  StarDecomposition out;
  const std::size_t num_lanes = index_vectors.size();
  FOLVEC_REQUIRE(num_lanes > 0, "FOL* needs at least one index vector");
  const std::size_t n0 = index_vectors[0].size();
  for (const auto& v : index_vectors) {
    FOLVEC_REQUIRE(v.size() == n0, "all index vectors must have equal length");
  }
  if (n0 == 0) return out;

  const vm::AlgoSpan span(m, "fol_star.decompose");
  telemetry::count("fol_star.calls");
  telemetry::count("fol_star.tuples", n0);

  // Tight interval facts for every index vector: each lane's scatters and
  // readbacks inherit the proven bounds through copy_into / partition_into.
  for (const auto& v : index_vectors) m.observe_range(v);

  // The whole tuple-labelling loop is one sanctioned conflict window: every
  // round deliberately scatters colliding labels into `work`.
  const vm::ConflictWindow window(m, work, vm::WindowKind::kLabelRound,
                                  "FOL* label round");

  // Step 0: globally-unique labels. Tuple position p, lane k gets label
  // k*n0 + p; positions are carried through the rounds unchanged so labels
  // stay unique and sets report original tuple numbers. All per-lane and
  // per-round working vectors are pooled and refilled with the *_into
  // primitives, so steady-state rounds allocate nothing.
  vm::BufferPool& pool = m.pool();
  std::vector<vm::PooledVec> remaining;
  std::vector<vm::PooledVec> next_remaining;
  std::vector<vm::PooledVec> labels;
  remaining.reserve(num_lanes);
  next_remaining.reserve(num_lanes);
  labels.reserve(num_lanes);
  for (std::size_t k = 0; k < num_lanes; ++k) {
    remaining.emplace_back(pool, n0);
    next_remaining.emplace_back(pool, n0);
    labels.emplace_back(pool, n0);
    m.copy_into(*remaining[k], index_vectors[k]);
  }
  vm::PooledVec positions(pool, n0);
  vm::PooledVec next_positions(pool, n0);
  vm::PooledVec readback(pool, n0);
  vm::PooledVec winners(pool, n0);
  vm::PooledVec assigned(pool, n0);  // kept half of the lane splits; unused
  m.iota_into(*positions, n0);

  const auto lane_label = [n0](std::size_t k, Word pos) {
    return static_cast<Word>(k) * static_cast<Word>(n0) + pos;
  };

  // The subset collection grows by one push_back per round; reserve a
  // round-count guess up front to skip the early reallocation ladder.
  out.sets.reserve(max_rounds != 0 ? max_rounds
                                   : std::min<std::size_t>(n0, 32));

  while (!positions->empty()) {
    if (max_rounds != 0 && out.sets.size() == max_rounds) {
      out.unassigned = positions->size();
      break;
    }
    const vm::AlgoSpan round_span(m, "round", out.sets.size());
    const std::size_t n = positions->size();

    // Step 1: compute every lane's labels (one batched dispatch — each
    // add_scalar_into reads only `positions`, so the per-lane chain has no
    // cross-dependency), then scatter them, then re-write the last tuple's
    // labels with scalar stores, in lane order, so the last tuple survives
    // any cross-tuple conflict. (The scalar re-stores sit between the
    // scatters and the readbacks, so the fused scatter_gather_eq kernel
    // does not apply to this algorithm.)
    {
      const vm::VectorMachine::OpBatch batch(m);
      for (std::size_t k = 0; k < num_lanes; ++k) {
        m.add_scalar_into(*labels[k], *positions,
                          static_cast<Word>(k) * static_cast<Word>(n0));
      }
    }
    for (std::size_t k = 0; k < num_lanes; ++k) {
      m.scatter(work, *remaining[k], *labels[k]);
    }
    for (std::size_t k = 0; k < num_lanes; ++k) {
      const auto target = static_cast<std::size_t>((*remaining[k])[n - 1]);
      m.scalar_store(work, target, lane_label(k, (*positions)[n - 1]));
    }

    // Step 2: a tuple survives only if every lane's label survived. Each
    // lane's predicate pair — the label compare and its fold into the
    // running conjunction — queues as one batched dispatch (the gather
    // between lanes is memory class and flushes eagerly), composed through
    // named masks per the batch lifetime rule.
    Mask tuple_ok;
    Mask lane_ok;
    Mask tuple_next;
    for (std::size_t k = 0; k < num_lanes; ++k) {
      m.gather_into(*readback, work, *remaining[k]);
      if (k == 0) {
        m.eq_into(tuple_ok, *readback, *labels[k]);
      } else {
        {
          const vm::VectorMachine::OpBatch batch(m);
          m.eq_into(lane_ok, *readback, *labels[k]);
          m.mask_and_into(tuple_next, tuple_ok, lane_ok);
        }
        std::swap(tuple_ok, tuple_next);
      }
    }

    std::size_t n_ok = m.count_true(tuple_ok);
    const bool rescued_by_scalar = tuple_ok.test(n - 1) != 0;
    if (n_ok == 0) {
      // The last tuple self-conflicts; force it out as a singleton.
      tuple_ok[n - 1] = 1;
      tuple_ok.set_popcount(1);
      n_ok = 1;
      ++out.forced_singletons;
    } else if (rescued_by_scalar && last_tuple_contested(remaining, n)) {
      // A rescue counts whenever the scalar re-store decided a contested
      // address in the last tuple's favour — regardless of how many other
      // tuples survived alongside it. (The old `n_ok == 1` gate missed every
      // rescue that coexisted with surviving tuples, and charged a rescue
      // when an uncontested last tuple happened to be the sole survivor.)
      ++out.scalar_rescues;
    }

    telemetry::observe("fol_star.set_size", n_ok);
    telemetry::count("fol_star.contested_tuples", n - n_ok);

    // Step 3: one partition per control vector splits winners from the
    // still-contested tuples (replacing compress + mask_not + compress).
    m.partition_into(*winners, *next_positions, *positions, tuple_ok);

    std::vector<std::size_t> set;
    set.reserve(winners->size());
    for (Word w : *winners) set.push_back(static_cast<std::size_t>(w));
    if (m.audit_enabled() && set.size() > 1) {
      // Forced singletons are trivially conflict-free; every multi-tuple set
      // must be pairwise address-disjoint across all index vectors.
      m.checker()->audit_tuple_set(set, index_vectors);
    }
    out.sets.push_back(std::move(set));

    for (std::size_t k = 0; k < num_lanes; ++k) {
      m.partition_into(*assigned, *next_remaining[k], *remaining[k], tuple_ok);
      std::swap(*remaining[k], *next_remaining[k]);
    }
    std::swap(*positions, *next_positions);

    // Adaptive degradation: a collapsing surviving fraction on a large
    // remainder signals the pairwise-conflict chain worst case (O(N) rounds
    // of O(N·L)-lane scatters). Drain the tail greedily on the scalar unit:
    // each tuple joins the earliest set in which none of its addresses has
    // been used yet, self-conflicting tuples are forced out as trailing
    // singletons (any multi-tuple set containing one would address an area
    // twice), and bounded decompositions (max_rounds != 0) never drain —
    // their round/unassigned contract needs real rounds.
    const vm::MachineConfig& cfg = m.config();
    if (cfg.adaptive && max_rounds == 0 &&
        positions->size() >= cfg.adaptive_min_remaining &&
        n_ok * cfg.adaptive_collapse_den < n) {
      const std::size_t base = out.sets.size();
      const std::size_t n_rest = positions->size();
      std::unordered_map<Word, std::size_t> next_free;
      next_free.reserve(n_rest * num_lanes);
      std::vector<std::size_t> self_conflicting;
      for (std::size_t p = 0; p < n_rest; ++p) {
        bool self_conflict = false;
        for (std::size_t a = 0; a < num_lanes && !self_conflict; ++a) {
          for (std::size_t b = a + 1; b < num_lanes; ++b) {
            if ((*remaining[a])[p] == (*remaining[b])[p]) {
              self_conflict = true;
              break;
            }
          }
        }
        if (self_conflict) {
          self_conflicting.push_back(p);
          continue;
        }
        std::size_t j = 0;
        for (std::size_t k = 0; k < num_lanes; ++k) {
          const auto it = next_free.find((*remaining[k])[p]);
          if (it != next_free.end()) j = std::max(j, it->second);
        }
        // j is at most one past the deepest set assigned so far, so this
        // creates at most one new (immediately non-empty) set.
        while (base + j >= out.sets.size()) out.sets.emplace_back();
        out.sets[base + j].push_back(static_cast<std::size_t>((*positions)[p]));
        for (std::size_t k = 0; k < num_lanes; ++k) {
          next_free[(*remaining[k])[p]] = j + 1;
        }
      }
      if (m.audit_enabled()) {
        for (std::size_t j = base; j < out.sets.size(); ++j) {
          if (out.sets[j].size() > 1) {
            m.checker()->audit_tuple_set(out.sets[j], index_vectors);
          }
        }
      }
      for (std::size_t p : self_conflicting) {
        out.sets.push_back({static_cast<std::size_t>((*positions)[p])});
        ++out.forced_singletons;
      }
      out.drained_tuples = n_rest;
      m.scalar_alu(n_rest * num_lanes);
      m.scalar_mem(2 * next_free.size());
      m.scalar_branch(1);
      telemetry::count("fol_star.adaptive_drains");
      telemetry::count("fol_star.adaptive_drained_tuples", n_rest);
      break;
    }
  }
  telemetry::count("fol_star.rounds", out.sets.size());
  telemetry::observe("fol_star.rounds_per_call", out.sets.size());
  telemetry::count("fol_star.scalar_rescues", out.scalar_rescues);
  telemetry::count("fol_star.forced_singletons", out.forced_singletons);
  telemetry::count("fol_star.unassigned", out.unassigned);
  return out;
}

}  // namespace folvec::fol
