file(REMOVE_RECURSE
  "libfolvec_tree.a"
)
