// Checkable statements of the paper's Theorems 1-6 and Lemmas 1-3.
//
// These helpers let tests and debug builds verify, for any concrete run,
// exactly the properties the paper proves: disjoint decomposition (Lemma 1),
// conflict-freedom within each set (Lemma 2 / Theorem 2), non-increasing set
// sizes (Theorem 3), and minimality — the number of sets equals the maximum
// address multiplicity (Lemma 3 / Theorem 5).
#pragma once

#include <cstddef>
#include <span>

#include "fol/fol1.h"
#include "vm/machine.h"

namespace folvec::fol {

/// Lemma 1: sets partition {0..n-1} — every lane exactly once.
bool is_disjoint_cover(const Decomposition& d, std::size_t n);

/// Lemma 2: within each set, all addressed storage areas are distinct.
bool sets_are_conflict_free(const Decomposition& d,
                            std::span<const vm::Word> index_vector);

/// Theorem 3: |S1| >= |S2| >= ... >= |SM|.
bool sizes_non_increasing(const Decomposition& d);

/// Maximum multiplicity of any address in the index vector (the paper's M'
/// of Lemma 3). Zero for an empty vector.
std::size_t max_multiplicity(std::span<const vm::Word> index_vector);

/// Theorem 5 / Lemma 3: number of sets equals the maximum multiplicity.
bool is_minimal(const Decomposition& d,
                std::span<const vm::Word> index_vector);

/// All of the above at once; returns false on the first failure.
bool satisfies_all_theorems(const Decomposition& d,
                            std::span<const vm::Word> index_vector);

}  // namespace folvec::fol
