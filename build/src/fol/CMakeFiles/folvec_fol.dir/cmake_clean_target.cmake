file(REMOVE_RECURSE
  "libfolvec_fol.a"
)
