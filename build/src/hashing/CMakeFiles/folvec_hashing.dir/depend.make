# Empty dependencies file for folvec_hashing.
# This may be replaced when dependencies are built.
