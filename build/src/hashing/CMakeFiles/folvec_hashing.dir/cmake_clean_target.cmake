file(REMOVE_RECURSE
  "libfolvec_hashing.a"
)
