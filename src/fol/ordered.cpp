#include "fol/ordered.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "support/require.h"
#include "telemetry/metrics.h"
#include "vm/buffer_pool.h"
#include "vm/checker.h"

namespace folvec::fol {

using vm::Mask;
using vm::VectorMachine;
using vm::Word;
using vm::WordVec;

Decomposition fol1_decompose_ordered(VectorMachine& m,
                                     std::span<const Word> index_vector,
                                     std::span<Word> work) {
  Decomposition out;
  if (index_vector.empty()) return out;

  const vm::AlgoSpan span(m, "fol1_ordered.decompose");
  telemetry::count("fol1_ordered.calls");
  telemetry::count("fol1_ordered.lanes", index_vector.size());

  // Tight interval fact for the analyzer; reverse_into and partition_into
  // both preserve it, so every round's scatter bounds stay proven.
  m.observe_range(index_vector);

  // Ordered scatters define their survivor, but the labels left in `work`
  // are still transient: the window marks them for use-after-round checks.
  const vm::ConflictWindow window(m, work, vm::WindowKind::kLabelRound,
                                  "ordered FOL1 label round");

  // Round-loop working vectors come from the machine's buffer pool and are
  // reused via the *_into primitives: steady-state rounds allocate nothing.
  // (Fused scatter_gather_eq does not apply here — the ordered VSTX scatter
  // has its own survivor rule — but the partition split does.)
  vm::BufferPool& pool = m.pool();
  const std::size_t n0 = index_vector.size();
  vm::PooledVec remaining_idx(pool, n0);
  vm::PooledVec remaining_pos(pool, n0);
  vm::PooledVec next_idx(pool, n0);
  vm::PooledVec next_pos(pool, n0);
  vm::PooledVec rev_idx(pool, n0);
  vm::PooledVec rev_labels(pool, n0);
  vm::PooledVec readback(pool, n0);
  vm::PooledVec winners(pool, n0);
  vm::PooledVec assigned_idx(pool, n0);  // kept half of the idx split; unused
  m.copy_into(*remaining_idx, index_vector);
  m.iota_into(*remaining_pos, index_vector.size());

  // The subset collection grows by one push_back per round; reserve a
  // round-count guess up front to skip the early reallocation ladder.
  out.sets.reserve(std::min<std::size_t>(index_vector.size(), 32));

  const std::size_t max_rounds = index_vector.size();
  while (!remaining_idx->empty()) {
    FOLVEC_CHECK(out.sets.size() < max_rounds,
                 "ordered FOL1 failed to terminate within N rounds");
    const vm::AlgoSpan round_span(m, "round", out.sets.size());
    const std::size_t n_remaining = remaining_idx->size();

    // Ordered (VSTX) scatter of the labels in reverse lane order: the last
    // store wins deterministically, so each contested work word ends up
    // holding its earliest remaining occurrence's label.
    m.reverse_into(*rev_idx, *remaining_idx);
    m.reverse_into(*rev_labels, *remaining_pos);
    m.scatter_ordered(work, *rev_idx, *rev_labels);

    m.gather_into(*readback, work, *remaining_idx);
    const Mask survived = m.eq(*readback, *remaining_pos);
    const std::size_t n_survived = m.count_true(survived);
    FOLVEC_CHECK(n_survived > 0,
                 "ordered FOL1 round produced an empty set");
    telemetry::observe("fol1_ordered.set_size", n_survived);

    // One partition per control vector replaces the old compress / mask_not
    // / compress / compress chain; the kept half of the position split is
    // this round's output set.
    m.partition_into(*winners, *next_pos, *remaining_pos, survived);
    m.partition_into(*assigned_idx, *next_idx, *remaining_idx, survived);

    std::vector<std::size_t> set;
    set.reserve(winners->size());
    for (Word w : *winners) set.push_back(static_cast<std::size_t>(w));
    out.sets.push_back(std::move(set));

    std::swap(*remaining_idx, *next_idx);
    std::swap(*remaining_pos, *next_pos);

    // Adaptive degradation. The ordered survivor rule makes the drain an
    // exact replay of what the remaining vector rounds would compute: each
    // round keeps precisely the earliest remaining occurrence of every
    // address, i.e. the j-th remaining occurrence (in lane order) joins set
    // base+j — which is the drain's assignment, lane for lane. So ordered
    // FOL1 with the drain returns the bit-identical decomposition, just in
    // O(k) scalar work instead of O(k * max multiplicity) vector work.
    const vm::MachineConfig& cfg = m.config();
    if (cfg.adaptive && remaining_idx->size() >= cfg.adaptive_min_remaining &&
        n_survived * cfg.adaptive_collapse_den < n_remaining) {
      const std::size_t base = out.sets.size();
      const WordVec& idx = *remaining_idx;
      const WordVec& pos = *remaining_pos;
      std::unordered_map<Word, std::size_t> occurrence;
      occurrence.reserve(idx.size());
      for (std::size_t i = 0; i < idx.size(); ++i) {
        const std::size_t j = occurrence[idx[i]]++;
        if (base + j == out.sets.size()) out.sets.emplace_back();
        out.sets[base + j].push_back(static_cast<std::size_t>(pos[i]));
      }
      out.drained_lanes = idx.size();
      m.scalar_alu(idx.size());
      m.scalar_mem(2 * occurrence.size());
      m.scalar_branch(1);
      telemetry::count("fol1_ordered.adaptive_drains");
      telemetry::count("fol1_ordered.adaptive_drained_lanes", idx.size());
      break;
    }
  }
  telemetry::count("fol1_ordered.rounds", out.sets.size());
  telemetry::observe("fol1_ordered.rounds_per_call", out.sets.size());
  return out;
}

std::size_t replay_journal(VectorMachine& m, std::span<const Word> targets,
                           std::span<const Word> values,
                           std::span<Word> work, std::span<Word> table) {
  FOLVEC_REQUIRE(targets.size() == values.size(),
                 "journal targets/values must have equal length");
  const vm::AlgoSpan span(m, "replay_journal");
  const Decomposition dec = fol1_decompose_ordered(m, targets, work);
  // One pooled pair of staging vectors serves every set; the per-set resize
  // never reallocates once the largest set has been seen.
  vm::PooledVec idx(m.pool(), targets.size());
  vm::PooledVec val(m.pool(), targets.size());
  for (const auto& set : dec.sets) {
    idx->resize(set.size());
    val->resize(set.size());
    for (std::size_t i = 0; i < set.size(); ++i) {
      (*idx)[i] = targets[set[i]];
      (*val)[i] = values[set[i]];
    }
    // Conflict-free within the set (Lemma 2), so the plain ELS scatter is
    // safe here; ordering across sets is what preserves replay order.
    m.scatter(table, *idx, *val);
  }
  return dec.rounds();
}

}  // namespace folvec::fol
