#include "vm/hazard.h"

#include <sstream>

namespace folvec::vm {

const char* hazard_kind_name(HazardKind kind) {
  switch (kind) {
    case HazardKind::kOutOfBounds:
      return "out-of-bounds";
    case HazardKind::kLengthMismatch:
      return "length-mismatch";
    case HazardKind::kUnsanctionedDuplicate:
      return "unsanctioned-duplicate";
    case HazardKind::kElsViolation:
      return "els-violation";
    case HazardKind::kClobberedWorkRead:
      return "clobbered-work-read";
    case HazardKind::kTupleConflict:
      return "tuple-conflict";
    case HazardKind::kTheoremViolation:
      return "theorem-violation";
  }
  return "unknown";
}

std::string Hazard::to_string() const {
  std::ostringstream os;
  os << '[' << hazard_kind_name(kind) << "] " << message;
  return os.str();
}

std::size_t HazardReport::count(HazardKind kind) const {
  std::size_t n = 0;
  for (const Hazard& h : hazards_) {
    if (h.kind == kind) ++n;
  }
  return n;
}

const Hazard* HazardReport::first(HazardKind kind) const {
  for (const Hazard& h : hazards_) {
    if (h.kind == kind) return &h;
  }
  return nullptr;
}

std::string HazardReport::to_string() const {
  if (hazards_.empty()) return "no hazards\n";
  std::ostringstream os;
  os << hazards_.size() << (hazards_.size() == 1 ? " hazard:\n" : " hazards:\n");
  for (const Hazard& h : hazards_) {
    os << "  " << h.to_string() << '\n';
  }
  return os.str();
}

}  // namespace folvec::vm
