file(REMOVE_RECURSE
  "CMakeFiles/ablation_probe.dir/ablation_probe.cpp.o"
  "CMakeFiles/ablation_probe.dir/ablation_probe.cpp.o.d"
  "ablation_probe"
  "ablation_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
