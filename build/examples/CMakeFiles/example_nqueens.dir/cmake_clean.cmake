file(REMOVE_RECURSE
  "CMakeFiles/example_nqueens.dir/nqueens.cpp.o"
  "CMakeFiles/example_nqueens.dir/nqueens.cpp.o.d"
  "nqueens"
  "nqueens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_nqueens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
