// Boolean mask vector with a cached population count.
//
// Masks are produced by every vector compare and consumed by compress /
// partition / count_true / the audit paths — several of which need the
// number of true lanes. As a plain std::vector<std::uint8_t> the mask was
// scanned up to three times per FOL round for the same count. Mask keeps
// the count alongside the bytes:
//
//   * constructors with knowable contents ((n), (n, v)) record it up front;
//   * trusted producers (count_true, the fused scatter_gather_eq, which
//     deliver the count as a by-product of their single pass) publish it
//     via set_popcount();
//   * popcount() lazily computes-and-caches otherwise, so any mask is
//     scanned at most once no matter how many consumers ask;
//   * every non-const access (data(), operator[], begin(), resize to a
//     shorter length) conservatively invalidates the cache — correctness
//     never depends on callers remembering to invalidate.
//
// The cache is a host-side bookkeeping detail: reading it issues no machine
// instructions and never changes the modeled chime stream (count_true still
// charges its kVectorReduce cost whether or not the scan is skipped).
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

namespace folvec::vm {

class Mask {
 public:
  using value_type = std::uint8_t;
  using size_type = std::size_t;
  using iterator = std::vector<std::uint8_t>::iterator;
  using const_iterator = std::vector<std::uint8_t>::const_iterator;

  /// Sentinel: the cached count is unknown and must be recomputed.
  static constexpr std::size_t kUnknownPopcount =
      static_cast<std::size_t>(-1);

  Mask() = default;
  /// n lanes, all false (count known: 0).
  explicit Mask(std::size_t n) : bits_(n), popcount_(0) {}
  /// n lanes, all `value` (count known).
  Mask(std::size_t n, std::uint8_t value)
      : bits_(n, value), popcount_(value != 0 ? n : 0) {}
  Mask(std::initializer_list<std::uint8_t> init) : bits_(init) {
    popcount_ = scan();
  }

  std::size_t size() const { return bits_.size(); }
  bool empty() const { return bits_.empty(); }

  // ---- const access (cache-preserving) ------------------------------------

  const std::uint8_t* data() const { return bits_.data(); }
  std::uint8_t operator[](std::size_t i) const { return bits_[i]; }
  /// Const element read usable on a non-const mask without touching the
  /// cache (a non-const operator[] must assume a write).
  std::uint8_t test(std::size_t i) const { return bits_[i]; }
  const_iterator begin() const { return bits_.begin(); }
  const_iterator end() const { return bits_.end(); }
  const_iterator cbegin() const { return bits_.cbegin(); }
  const_iterator cend() const { return bits_.cend(); }

  operator std::span<const std::uint8_t>() const { return bits_; }

  /// The bytes as a read-only span. Named form of the conversion above for
  /// non-const masks, where span's range constructor would otherwise win
  /// overload resolution and invalidate the cache via non-const begin().
  std::span<const std::uint8_t> bytes() const { return bits_; }

  // ---- mutating access (cache-invalidating) -------------------------------

  std::uint8_t* data() {
    popcount_ = kUnknownPopcount;
    return bits_.data();
  }
  std::uint8_t& operator[](std::size_t i) {
    popcount_ = kUnknownPopcount;
    return bits_[i];
  }
  iterator begin() {
    popcount_ = kUnknownPopcount;
    return bits_.begin();
  }
  iterator end() {
    popcount_ = kUnknownPopcount;
    return bits_.end();
  }

  /// Grows keep the count (new lanes are false); shrinks drop unknown bits.
  void resize(std::size_t n) {
    if (n < bits_.size()) popcount_ = kUnknownPopcount;
    bits_.resize(n);
  }

  void clear() {
    bits_.clear();
    popcount_ = 0;
  }

  // ---- population count ---------------------------------------------------

  bool has_popcount() const { return popcount_ != kUnknownPopcount; }

  /// Number of true lanes; computed at most once and cached.
  std::size_t popcount() const {
    if (popcount_ == kUnknownPopcount) popcount_ = scan();
    return popcount_;
  }

  /// Publishes a count computed as a by-product of writing the mask (e.g.
  /// by the fused scatter_gather_eq kernel). The caller vouches that `n`
  /// equals the actual number of true lanes.
  void set_popcount(std::size_t n) const { popcount_ = n; }

  friend bool operator==(const Mask& a, const Mask& b) {
    return a.bits_ == b.bits_;
  }

 private:
  std::size_t scan() const {
    std::size_t c = 0;
    for (const std::uint8_t b : bits_) c += b;
    return c;
  }

  std::vector<std::uint8_t> bits_;
  /// Cached number of true lanes; mutable so lazily computing it and
  /// publishing a producer-known count work through const references.
  mutable std::size_t popcount_ = 0;
};

}  // namespace folvec::vm
