// Recoverable errors, deterministic fault injection, and graceful
// degradation. Three contracts under test:
//
//   1. Taxonomy — data-dependent exhaustion (TableFull,
//      ProbeCycleSaturated, PoolExhausted) surfaces as Status /
//      RecoverableError, distinct from the logic_error bug classes.
//   2. Injection — every FaultSite (pool_alloc, els, probe, worker) can be
//      fired deterministically from a seeded FaultPlan, every site recovers
//      without process-level unwinding, and recovery is bit-identical
//      across the serial and parallel backends.
//   3. Degradation — pathological sharing (Theorem 6's heavy-duplication
//      worst case) drains through the adaptive scalar path in O(k) instead
//      of O(N^2) vector work, preserving every decomposition theorem.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "fol/fol1.h"
#include "fol/fol_star.h"
#include "fol/invariants.h"
#include "fol/ordered.h"
#include "hashing/hash_map.h"
#include "hashing/open_table.h"
#include "support/faultsim.h"
#include "support/prng.h"
#include "support/require.h"
#include "support/status.h"
#include "telemetry/metrics.h"
#include "vm/buffer_pool.h"
#include "vm/machine.h"
#include "vm/thread_pool.h"

namespace folvec {
namespace {

using vm::Mask;
using vm::VectorMachine;
using vm::Word;
using vm::WordVec;

std::uint64_t counter(const telemetry::MetricsRegistry& reg,
                      const std::string& name) {
  const auto snap = reg.snapshot();
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

vm::MachineConfig quiet_config() {
  vm::MachineConfig cfg;
  cfg.audit = false;  // injection deliberately violates audit contracts
  return cfg;
}

vm::MachineConfig parallel_config(std::size_t threads, std::size_t grain = 8) {
  vm::MachineConfig cfg = quiet_config();
  cfg.backend = vm::BackendKind::kParallel;
  cfg.backend_threads = threads;
  cfg.backend_grain = grain;
  return cfg;
}

/// A duplicate-heavy FOL1 workload small enough to stay on the vector path.
WordVec mixed_targets(std::size_t n, std::size_t distinct,
                      std::uint64_t seed) {
  WordVec targets(n);
  for (std::size_t i = 0; i < n; ++i) {
    targets[i] = static_cast<Word>(i % distinct);
  }
  Xoshiro256 rng(seed);
  shuffle(targets, rng);
  return targets;
}

// ---- 1. taxonomy ------------------------------------------------------------

TEST(StatusTaxonomy, CodesNamesAndEquality) {
  EXPECT_TRUE(Status::ok().is_ok());
  EXPECT_EQ(Status::ok().to_string(), "Ok");
  const Status full(StatusCode::kTableFull, "67 slots");
  EXPECT_FALSE(full.is_ok());
  EXPECT_EQ(full.to_string(), "TableFull: 67 slots");
  EXPECT_EQ(full, Status(StatusCode::kTableFull, "different message"));
  EXPECT_FALSE(full == Status(StatusCode::kProbeCycleSaturated, ""));
  EXPECT_STREQ(status_code_name(StatusCode::kPoolExhausted), "PoolExhausted");
}

TEST(StatusTaxonomy, RecoverableErrorIsNotALogicError) {
  const RecoverableError e(StatusCode::kProbeCycleSaturated, "cycle of 5");
  EXPECT_EQ(e.code(), StatusCode::kProbeCycleSaturated);
  EXPECT_EQ(e.status().message(), "cycle of 5");
  EXPECT_STREQ(e.what(), "ProbeCycleSaturated: cycle of 5");
  // Recovery loops must be able to catch exhaustion without swallowing
  // bugs: RecoverableError is a runtime_error, never a logic_error.
  static_assert(std::is_base_of_v<std::runtime_error, RecoverableError>);
  static_assert(!std::is_base_of_v<std::logic_error, RecoverableError>);
}

// ---- 1a. gcd probe-cycle hazard (satellite: misclassified saturation) -------

// Table size 40 (composite, > 32): keys 7, 39, 71, ... all have
// key & 31 == 7, so step 8 and gcd(8, 40) = 8 — each key's probe cycle
// visits only the 5 slots {7, 15, 23, 31, 39}. The 6th such key saturates
// its cycle while 35 slots sit free: kProbeCycleSaturated, NOT kTableFull,
// and not an InternalError ("probe sequence failed") as it was classified
// before.
TEST(GcdProbeCycle, SaturationOnCompositeSizeIsRecoverable) {
  hashing::ScalarOpenTable t(40, hashing::ProbeVariant::kKeyDependent);
  for (int i = 0; i < 5; ++i) t.insert(7 + 32 * i);
  EXPECT_EQ(t.entered(), 5u);
  const Status st = t.try_insert(7 + 32 * 5);
  EXPECT_EQ(st.code(), StatusCode::kProbeCycleSaturated);
  EXPECT_EQ(t.entered(), 5u) << "a failed insert must not modify the table";
  try {
    t.insert(7 + 32 * 5);
    FAIL() << "saturated cycle should throw";
  } catch (const RecoverableError& e) {
    EXPECT_EQ(e.code(), StatusCode::kProbeCycleSaturated);
  }
}

TEST(GcdProbeCycle, InsertOrGrowRecoversToPrimeSize) {
  hashing::ScalarOpenTable t(40, hashing::ProbeVariant::kKeyDependent);
  for (int i = 0; i < 5; ++i) t.insert(7 + 32 * i);
  const std::size_t probes = t.insert_or_grow(7 + 32 * 5);
  EXPECT_GE(probes, 1u);
  EXPECT_EQ(t.grow_count(), 1u);
  EXPECT_EQ(t.entered(), 6u);
  // Prime growth: next prime above 80.
  EXPECT_EQ(t.table_size(), 83u);
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(t.contains(7 + 32 * i));
}

TEST(GcdProbeCycle, FullTableReportsTableFull) {
  // Size 33 linear probing fills completely; the 34th key sees kTableFull.
  hashing::ScalarOpenTable t(33, hashing::ProbeVariant::kLinear);
  for (Word k = 0; k < 33; ++k) t.insert(k * 100 + 1);
  EXPECT_EQ(t.try_insert(9999).code(), StatusCode::kTableFull);
  EXPECT_GE(t.insert_or_grow(9999), 1u);
  EXPECT_EQ(t.entered(), 34u);
}

TEST(GcdProbeCycle, VectorBatchSaturationIsRecoverable) {
  // The same 5-slot cycle, via the Figure 8 vector inserter: 6 keys with
  // step 8 into size 40 cannot converge although 40 - 6 slots are free.
  VectorMachine m(quiet_config());
  std::vector<Word> table(40, hashing::kUnentered);
  WordVec keys;
  for (int i = 0; i < 6; ++i) keys.push_back(7 + 32 * i);
  hashing::MultiHashStats stats;
  const Status st = hashing::try_multi_hash_open_insert(
      m, table, keys, hashing::ProbeVariant::kKeyDependent, &stats);
  EXPECT_EQ(st.code(), StatusCode::kProbeCycleSaturated);
  EXPECT_GE(stats.iterations, 1u);
  // The keys that did land are still in the table (partial progress is
  // recoverable state, not corruption).
  std::size_t landed = 0;
  for (Word v : table) landed += (v != hashing::kUnentered) ? 1u : 0u;
  EXPECT_EQ(landed, 5u);
}

// ---- 1b. lookup sweep exhaustion (satellite) --------------------------------

TEST(LookupSweep, ExhaustedLanesAreCountedAndReported) {
  telemetry::MetricsRegistry reg;
  const telemetry::ScopedMetrics scoped(reg);
  VectorMachine m(quiet_config());
  std::vector<Word> table(40, hashing::kUnentered);
  // Saturate the step-8 cycle {7,15,23,31,39}, then query an absent key on
  // the same cycle: its lockstep probe never meets an empty slot.
  for (std::size_t i = 0; i < 5; ++i) {
    table[7 + 8 * i] = static_cast<Word>(7 + 32 * i);
  }
  const WordVec queries{7 + 32 * 7};
  hashing::MultiHashLookupStats stats;
  const Mask found = hashing::multi_hash_open_contains(
      m, table, queries, hashing::ProbeVariant::kKeyDependent, &stats);
  EXPECT_EQ(found[0], 0) << "absent key must be reported absent";
  EXPECT_EQ(stats.sweep_exhausted_lanes, 1u);
  EXPECT_EQ(counter(reg, "hashing.lookup_sweep_exhausted"), 1u);
}

TEST(LookupSweep, CleanLookupReportsZeroExhausted) {
  telemetry::MetricsRegistry reg;
  const telemetry::ScopedMetrics scoped(reg);
  VectorMachine m(quiet_config());
  std::vector<Word> table(67, hashing::kUnentered);
  const WordVec keys{5, 40, 72};
  hashing::multi_hash_open_insert(m, table, keys,
                                  hashing::ProbeVariant::kKeyDependent);
  hashing::MultiHashLookupStats stats;
  stats.sweep_exhausted_lanes = 99;  // must be reset by the call
  const Mask found = hashing::multi_hash_open_contains(
      m, table, WordVec{5, 40, 72, 1000},
      hashing::ProbeVariant::kKeyDependent, &stats);
  EXPECT_EQ(found.popcount(), 3u);
  EXPECT_EQ(stats.sweep_exhausted_lanes, 0u);
  EXPECT_EQ(counter(reg, "hashing.lookup_sweep_exhausted"), 0u);
}

// ---- 2. fault plan determinism ----------------------------------------------

TEST(FaultPlanTest, SpecGrammar) {
  FaultPlan once(1, "els@3");
  EXPECT_FALSE(once.fires(FaultSite::kElsViolation));
  EXPECT_FALSE(once.fires(FaultSite::kElsViolation));
  EXPECT_TRUE(once.fires(FaultSite::kElsViolation));
  EXPECT_FALSE(once.fires(FaultSite::kElsViolation));
  EXPECT_EQ(once.checks(FaultSite::kElsViolation), 4u);
  EXPECT_EQ(once.fired(FaultSite::kElsViolation), 1u);
  EXPECT_EQ(once.checks(FaultSite::kPoolAlloc), 0u);

  FaultPlan every(1, "pool_alloc%2");
  int fired = 0;
  for (int i = 0; i < 10; ++i) fired += every.fires(FaultSite::kPoolAlloc);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(every.total_fired(), 5u);

  FaultPlan never(1, "probe=0.0");
  FaultPlan always(1, "probe=1.0");
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(never.fires(FaultSite::kProbeSaturation));
    EXPECT_TRUE(always.fires(FaultSite::kProbeSaturation));
  }
}

TEST(FaultPlanTest, RateDrawsAreSeedDeterministic) {
  const auto draw_pattern = [](std::uint64_t seed) {
    FaultPlan plan(seed, "worker=0.5");
    std::string bits;
    for (int i = 0; i < 64; ++i) {
      bits += plan.fires(FaultSite::kWorkerFault) ? '1' : '0';
    }
    return bits;
  };
  EXPECT_EQ(draw_pattern(42), draw_pattern(42));
  EXPECT_NE(draw_pattern(42), draw_pattern(43));

  // reset() replays the identical sequence.
  FaultPlan plan(7, "els=0.3");
  std::string first, second;
  for (int i = 0; i < 32; ++i) {
    first += plan.fires(FaultSite::kElsViolation) ? '1' : '0';
  }
  plan.reset();
  for (int i = 0; i < 32; ++i) {
    second += plan.fires(FaultSite::kElsViolation) ? '1' : '0';
  }
  EXPECT_EQ(first, second);
}

TEST(FaultPlanTest, SitesDrawIndependentStreams) {
  // Checking one site must not shift another site's decisions: the worker
  // site is only checked under the parallel backend, and serial/parallel
  // recovery would diverge if site streams were entangled.
  FaultPlan lone(9, "els=0.5");
  FaultPlan mixed(9, "els=0.5,worker=0.5,pool_alloc%3");
  for (int i = 0; i < 64; ++i) {
    if (i % 3 == 0) mixed.fires(FaultSite::kWorkerFault);
    if (i % 2 == 0) mixed.fires(FaultSite::kPoolAlloc);
    EXPECT_EQ(lone.fires(FaultSite::kElsViolation),
              mixed.fires(FaultSite::kElsViolation))
        << "at els check " << i;
  }
}

TEST(FaultPlanTest, MalformedSpecsAreRejected) {
  EXPECT_THROW(FaultPlan(1, "nosuchsite=0.5"), PreconditionError);
  EXPECT_THROW(FaultPlan(1, "els"), PreconditionError);
  EXPECT_THROW(FaultPlan(1, "els=1.5"), PreconditionError);
  EXPECT_THROW(FaultPlan(1, "els=-0.1"), PreconditionError);
  EXPECT_THROW(FaultPlan(1, "els@0"), PreconditionError);
  EXPECT_THROW(FaultPlan(1, "els%0"), PreconditionError);
  EXPECT_THROW(FaultPlan(1, "els@abc"), PreconditionError);
  EXPECT_NO_THROW(FaultPlan(1, ""));
  EXPECT_NO_THROW(FaultPlan(1, "els@1, probe%2\npool_alloc=0.25"));
}

// ---- 2a. pool_alloc site ----------------------------------------------------

TEST(PoolAllocFault, AcquireDegradesAndResultIsUnchanged) {
  const WordVec targets = mixed_targets(512, 64, 11);
  std::vector<Word> work(64, 0);
  VectorMachine clean(quiet_config());
  const fol::Decomposition expected = fol::fol1_decompose(clean, targets, work);

  telemetry::MetricsRegistry reg;
  const telemetry::ScopedMetrics scoped(reg);
  FaultPlan plan(3, "pool_alloc%3");
  const ScopedFaultPlan install(&plan);
  std::fill(work.begin(), work.end(), 0);
  VectorMachine m(quiet_config());
  const fol::Decomposition dec = fol::fol1_decompose(m, targets, work);

  EXPECT_EQ(dec.sets, expected.sets)
      << "pool faults are allocator pressure, never semantics";
  EXPECT_GT(plan.fired(FaultSite::kPoolAlloc), 0u);
  EXPECT_GT(counter(reg, "fault.injected.pool_alloc"), 0u);
  EXPECT_EQ(counter(reg, "fault.injected.pool_alloc"),
            counter(reg, "fault.recovered.pool_alloc"));
  EXPECT_EQ(m.pool().stats().fault_drops, plan.fired(FaultSite::kPoolAlloc));
}

TEST(PoolExhausted, CappedPoolSurfacesStatusAndRecoversWhenRaised) {
  const WordVec targets = mixed_targets(256, 32, 5);
  std::vector<Word> work(32, 0);
  VectorMachine m(quiet_config());
  m.pool().set_limit_words(64);  // far below the six n-sized working vectors
  fol::Decomposition dec;
  const Status st = fol::fol1_try_decompose(m, targets, work, dec);
  EXPECT_EQ(st.code(), StatusCode::kPoolExhausted);
  EXPECT_EQ(dec.rounds(), 0u) << "failed decompose must not touch out";

  // Graceful degradation: raise the cap and the same machine succeeds.
  m.pool().set_limit_words(0);
  std::fill(work.begin(), work.end(), 0);
  EXPECT_TRUE(fol::fol1_try_decompose(m, targets, work, dec).is_ok());
  EXPECT_TRUE(fol::satisfies_all_theorems(dec, targets));
}

// ---- 2b. els site -----------------------------------------------------------

TEST(ElsFault, SingleViolationYieldsValidDecomposition) {
  telemetry::MetricsRegistry reg;
  const telemetry::ScopedMetrics scoped(reg);
  const WordVec targets = mixed_targets(256, 32, 7);
  std::vector<Word> work(32, 0);
  FaultPlan plan(1, "els@1");
  const ScopedFaultPlan install(&plan);
  VectorMachine m(quiet_config());
  const fol::Decomposition dec = fol::fol1_decompose(m, targets, work);
  // The amalgam round loses its contested lanes but every singleton
  // survives, and at most one colliding lane can XOR-coincide with the
  // amalgam; FOL1 simply re-queues the losers, so the result is still a
  // valid (disjoint, conflict-free) decomposition — possibly one round
  // longer than minimal, so Theorem 5 minimality is NOT asserted here.
  EXPECT_EQ(dec.total_lanes(), targets.size());
  EXPECT_TRUE(fol::is_disjoint_cover(dec, targets.size()));
  EXPECT_TRUE(fol::sets_are_conflict_free(dec, targets));
  EXPECT_EQ(counter(reg, "fault.injected.els"), 1u);
}

TEST(ElsFault, EmptyRoundIsRetriedOnce) {
  telemetry::MetricsRegistry reg;
  const telemetry::ScopedMetrics scoped(reg);
  // Two lanes, one address, position labels 0 and 1: the injected amalgam
  // is (0+1)^(1+1) = 3, equal to no label — the round comes back empty and
  // must be retried, not fatal.
  const WordVec targets{5, 5};
  std::vector<Word> work(6, 0);
  FaultPlan plan(1, "els@1");
  const ScopedFaultPlan install(&plan);
  VectorMachine m(quiet_config());
  const fol::Decomposition dec = fol::fol1_decompose(m, targets, work);
  EXPECT_EQ(dec.rounds(), 2u);
  EXPECT_TRUE(fol::satisfies_all_theorems(dec, targets));
  EXPECT_EQ(counter(reg, "fault.injected.els"), 1u);
  EXPECT_EQ(counter(reg, "fol1.els_round_retries"), 1u);
  EXPECT_EQ(counter(reg, "fault.recovered.els"), 1u);
}

TEST(ElsFault, PersistentViolationIsStillFatal) {
  // A substrate that NEVER honors ELS is a broken machine, not recoverable
  // data: after the bounded retries the InternalError propagates.
  const WordVec targets{5, 5};
  std::vector<Word> work(6, 0);
  FaultPlan plan(1, "els=1.0");
  const ScopedFaultPlan install(&plan);
  VectorMachine m(quiet_config());
  EXPECT_THROW(fol::fol1_decompose(m, targets, work), InternalError);
}

TEST(ElsFault, FusedAndUnfusedConsumeIdenticalDrawStreams) {
  const WordVec targets = mixed_targets(256, 16, 13);
  const auto run = [&](bool fuse) {
    std::vector<Word> work(16, 0);
    FaultPlan plan(21, "els%2");
    const ScopedFaultPlan install(&plan);
    vm::MachineConfig cfg = quiet_config();
    cfg.fuse = fuse;
    VectorMachine m(cfg);
    const fol::Decomposition dec = fol::fol1_decompose(m, targets, work);
    return std::make_pair(dec.sets, plan.checks(FaultSite::kElsViolation));
  };
  const auto fused = run(true);
  const auto unfused = run(false);
  EXPECT_EQ(fused.first, unfused.first)
      << "one els draw per scatter-class instruction, fused or not";
  EXPECT_EQ(fused.second, unfused.second);
}

// ---- 2c. probe site ---------------------------------------------------------

TEST(ProbeFault, UpsertBatchRecoversByRehash) {
  telemetry::MetricsRegistry reg;
  const telemetry::ScopedMetrics scoped(reg);
  FaultPlan plan(2, "probe@1");
  const ScopedFaultPlan install(&plan);
  VectorMachine m(quiet_config());
  hashing::VectorHashMap map;
  WordVec keys, values;
  for (Word k = 0; k < 40; ++k) {
    keys.push_back(k * 7 + 1);
    values.push_back(k * 100);
  }
  map.upsert_batch(m, keys, values);  // first insert attempt is injected
  EXPECT_EQ(map.size(), 40u);
  const WordVec got = map.lookup_batch(m, keys, -1);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(got[i], values[i]) << "key " << keys[i];
  }
  EXPECT_EQ(counter(reg, "fault.injected.probe"), 1u);
  EXPECT_EQ(counter(reg, "fault.recovered.probe"), 1u);
  EXPECT_GE(counter(reg, "hashing.upsert_recoveries"), 1u);
}

TEST(ProbeFault, ScalarInsertOrGrowAbsorbsInjection) {
  telemetry::MetricsRegistry reg;
  const telemetry::ScopedMetrics scoped(reg);
  FaultPlan plan(2, "probe@1");
  const ScopedFaultPlan install(&plan);
  hashing::ScalarOpenTable t(67, hashing::ProbeVariant::kKeyDependent);
  EXPECT_GE(t.insert_or_grow(1234), 1u);
  EXPECT_TRUE(t.contains(1234));
  EXPECT_EQ(counter(reg, "fault.injected.probe"), 1u);
  EXPECT_EQ(counter(reg, "fault.recovered.probe"), 1u);
}

// ---- 2d. worker site --------------------------------------------------------

TEST(WorkerFault, ParallelScatterRecoversBitIdentically) {
  telemetry::MetricsRegistry reg;
  const telemetry::ScopedMetrics scoped(reg);
  const WordVec targets = mixed_targets(2048, 256, 17);
  std::vector<Word> clean_work(256, 0);
  VectorMachine serial(quiet_config());
  const fol::Decomposition expected =
      fol::fol1_decompose(serial, targets, clean_work);

  FaultPlan plan(4, "worker%2");
  const ScopedFaultPlan install(&plan);
  std::vector<Word> work(256, 0);
  VectorMachine m(parallel_config(4));
  const fol::Decomposition dec = fol::fol1_decompose(m, targets, work);
  EXPECT_EQ(dec.sets, expected.sets);
  EXPECT_GT(plan.fired(FaultSite::kWorkerFault), 0u);
  EXPECT_EQ(counter(reg, "fault.injected.worker"),
            counter(reg, "fault.recovered.worker"));
  EXPECT_GT(counter(reg, "fault.injected.worker"), 0u);
}

TEST(WorkerFault, RealTaskErrorsStillWinOverInjection) {
  vm::ThreadPool pool(4);
  FaultPlan plan(1, "worker=1.0");
  const ScopedFaultPlan install(&plan);
  // Task 3 genuinely throws; the injected death of task 0 must not mask it.
  EXPECT_THROW(pool.run(8,
                        [](std::size_t i) {
                          if (i == 3) throw std::runtime_error("real failure");
                        }),
               std::runtime_error);
  // And with no real error, every injected death recovers.
  std::vector<int> ran(8, 0);
  pool.run(8, [&](std::size_t i) { ran[i] += 1; });
  EXPECT_EQ(std::accumulate(ran.begin(), ran.end(), 0), 8);
  EXPECT_EQ(*std::max_element(ran.begin(), ran.end()), 1)
      << "re-dispatch must execute the sacrificed task exactly once";
}

// ---- 2e. cross-backend bit-identity under one plan --------------------------

TEST(FaultRecovery, SerialAndParallelBackendsStayBitIdentical) {
  const WordVec targets = mixed_targets(4096, 128, 23);
  const auto run = [&](const vm::MachineConfig& cfg) {
    std::vector<Word> work(128, 0);
    FaultPlan plan(31, "pool_alloc%4,els%3,worker%2");
    const ScopedFaultPlan install(&plan);
    VectorMachine m(cfg);
    const fol::Decomposition dec = fol::fol1_decompose(m, targets, work);
    return std::make_pair(dec.sets, std::vector<Word>(work.begin(),
                                                      work.end()));
  };
  const auto serial = run(quiet_config());
  const auto parallel2 = run(parallel_config(2));
  const auto parallel8 = run(parallel_config(8, 64));
  EXPECT_EQ(serial.first, parallel2.first);
  EXPECT_EQ(serial.first, parallel8.first);
  EXPECT_EQ(serial.second, parallel2.second)
      << "memory images must match lane for lane";
  EXPECT_EQ(serial.second, parallel8.second);
}

TEST(FaultRecovery, EnvSeededSmoke) {
  // CI drives this whole binary under FOLVEC_FAULT_SPEC; this test runs a
  // composite workload under whatever plan the environment installed (or a
  // representative local one when run standalone) and asserts end-to-end
  // correctness, not specific counters.
  std::unique_ptr<FaultPlan> local;
  if (faults() == nullptr) {
    local = std::make_unique<FaultPlan>(123,
                                        "pool_alloc%5,els%7,probe@2,worker%3");
  }
  const ScopedFaultPlan install(local != nullptr ? local.get() : faults());

  const WordVec targets = mixed_targets(1024, 64, 29);
  std::vector<Word> work(64, 0);
  VectorMachine m(parallel_config(4, 64));
  const fol::Decomposition dec = fol::fol1_decompose(m, targets, work);
  EXPECT_TRUE(fol::is_disjoint_cover(dec, targets.size()));
  EXPECT_TRUE(fol::sets_are_conflict_free(dec, targets));
  EXPECT_EQ(dec.total_lanes(), targets.size());

  hashing::VectorHashMap map;
  WordVec keys, values;
  for (Word k = 0; k < 200; ++k) {
    keys.push_back(k * 13 + 5);
    values.push_back(k);
  }
  map.upsert_batch(m, keys, values);
  const WordVec got = map.lookup_batch(m, keys, -1);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(got[i], values[i]) << "key " << keys[i];
  }
}

// ---- 3. adaptive degradation ------------------------------------------------

TEST(AdaptiveFallback, HeavyDuplicationDrainsInOnePass) {
  telemetry::MetricsRegistry reg;
  const telemetry::ScopedMetrics scoped(reg);
  const std::size_t n = 4096;
  const WordVec targets(n, 7);  // every lane addresses one area
  std::vector<Word> work(8, 0);

  vm::MachineConfig cfg = quiet_config();
  VectorMachine m(cfg);
  const fol::Decomposition dec = fol::fol1_decompose(m, targets, work);
  EXPECT_EQ(dec.rounds(), n) << "Theorem 5: rounds == max multiplicity";
  EXPECT_TRUE(fol::satisfies_all_theorems(dec, targets));
  EXPECT_EQ(dec.drained_lanes, n - 1)
      << "round 1 assigns the survivor, the drain takes the rest";
  EXPECT_EQ(counter(reg, "fol1.adaptive_drains"), 1u);

  // The drain must collapse the Theorem 6 quadratic: the pure vector path
  // issues ~n scatter rounds over the remainder, the adaptive one charges a
  // single O(n) scalar pass on top of one vector round.
  cfg.adaptive = false;
  VectorMachine pure(cfg);
  std::fill(work.begin(), work.end(), 0);
  const fol::Decomposition pure_dec = fol::fol1_decompose(pure, targets, work);
  EXPECT_EQ(pure_dec.drained_lanes, 0u);
  const auto params = vm::CostParams::s810_like();
  const double adaptive_us = m.cost().microseconds(params);
  const double pure_us = pure.cost().microseconds(params);
  EXPECT_LT(adaptive_us, 0.1 * pure_us)
      << "adaptive " << adaptive_us << "us vs pure " << pure_us << "us";
  // Same sets either way: all-same input makes the assignment unique up to
  // which lane survives round 1, and ELS forward order keeps that stable.
  EXPECT_EQ(dec.sets.size(), pure_dec.sets.size());
}

TEST(AdaptiveFallback, BelowThresholdsStaysOnVectorPath) {
  telemetry::MetricsRegistry reg;
  const telemetry::ScopedMetrics scoped(reg);
  const WordVec targets(512, 3);  // heavy sharing but under min_remaining
  std::vector<Word> work(4, 0);
  VectorMachine m(quiet_config());
  const fol::Decomposition dec = fol::fol1_decompose(m, targets, work);
  EXPECT_EQ(dec.rounds(), 512u);
  EXPECT_EQ(dec.drained_lanes, 0u);
  EXPECT_EQ(counter(reg, "fol1.adaptive_drains"), 0u);
}

TEST(AdaptiveFallback, ConfigKnobsDisableTheDrain) {
  const WordVec targets(4096, 1);
  std::vector<Word> work(2, 0);
  vm::MachineConfig cfg = quiet_config();
  cfg.adaptive = false;
  VectorMachine m(cfg);
  const fol::Decomposition dec = fol::fol1_decompose(m, targets, work);
  EXPECT_EQ(dec.drained_lanes, 0u);
  EXPECT_EQ(dec.rounds(), 4096u);
}

TEST(AdaptiveFallback, OrderedDrainMatchesPureOrderedExactly) {
  // The ordered survivor rule (earliest remaining occurrence wins) makes
  // the drained decomposition provably identical to the pure one — compare
  // them set for set on a mixed workload.
  const std::size_t n = 4096;
  WordVec targets(n);
  Xoshiro256 rng(41);
  for (std::size_t i = 0; i < n; ++i) {
    targets[i] = static_cast<Word>(rng.in_range(0, 15));  // multiplicity ~256
  }
  std::vector<Word> work(16, 0);

  vm::MachineConfig cfg = quiet_config();
  VectorMachine adaptive(cfg);
  const fol::Decomposition drained =
      fol::fol1_decompose_ordered(adaptive, targets, work);
  EXPECT_GT(drained.drained_lanes, 0u);

  cfg.adaptive = false;
  VectorMachine pure(cfg);
  std::fill(work.begin(), work.end(), 0);
  const fol::Decomposition exact =
      fol::fol1_decompose_ordered(pure, targets, work);
  EXPECT_EQ(exact.drained_lanes, 0u);
  EXPECT_EQ(drained.sets, exact.sets);
}

TEST(AdaptiveFallback, FolStarDrainsPathologicalTuples) {
  // All tuples address the same pair of areas: every round assigns exactly
  // one tuple (via the scalar rescue), the canonical FOL* worst case.
  const std::size_t n = 4096;
  std::vector<WordVec> lanes(2);
  lanes[0].assign(n, 0);
  lanes[1].assign(n, 1);
  std::vector<Word> work(2, 0);
  VectorMachine m(quiet_config());
  const fol::StarDecomposition dec =
      fol::fol_star_decompose(m, lanes, work, /*max_rounds=*/0);
  EXPECT_GT(dec.drained_tuples, 0u);
  EXPECT_EQ(dec.rounds(), n) << "conflicting tuples still serialize";
  EXPECT_EQ(dec.unassigned, 0u);
  std::size_t total = 0;
  for (const auto& s : dec.sets) {
    EXPECT_EQ(s.size(), 1u);
    total += s.size();
  }
  EXPECT_EQ(total, n);

  // Bounded decompositions never drain.
  std::fill(work.begin(), work.end(), 0);
  VectorMachine bounded_m(quiet_config());
  const fol::StarDecomposition bounded =
      fol::fol_star_decompose(bounded_m, lanes, work, /*max_rounds=*/3);
  EXPECT_EQ(bounded.drained_tuples, 0u);
  EXPECT_EQ(bounded.rounds(), 3u);
  EXPECT_EQ(bounded.unassigned, n - 3);
}

}  // namespace
}  // namespace folvec
