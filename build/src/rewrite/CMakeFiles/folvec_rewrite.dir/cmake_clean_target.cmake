file(REMOVE_RECURSE
  "libfolvec_rewrite.a"
)
