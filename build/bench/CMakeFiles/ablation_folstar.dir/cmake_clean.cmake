file(REMOVE_RECURSE
  "CMakeFiles/ablation_folstar.dir/ablation_folstar.cpp.o"
  "CMakeFiles/ablation_folstar.dir/ablation_folstar.cpp.o.d"
  "ablation_folstar"
  "ablation_folstar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_folstar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
