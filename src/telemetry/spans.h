// Span tracing with Chrome trace-event export.
//
// A SpanTracer collects a timeline of nested spans — algorithm phases like
// `fol1.decompose > round[3] > v.scatter` — each carrying measured host
// wall time and, when the opener supplies them, chime deltas (modeled
// instruction/element counts). The timeline serializes as Chrome
// trace-event JSON ("X" complete events), so a run opens directly in
// chrome://tracing or https://ui.perfetto.dev.
//
// Like TraceSink and the metrics registry, the tracer is a process-wide
// borrowed pointer, nullptr by default: every probe is one relaxed atomic
// load when tracing is off. Set FOLVEC_TRACE_JSON=<path> to have
// telemetry::EnvSession (used by every bench binary) install a tracer and
// write the file at exit.
//
// Spans are single-threaded by design: algorithms issue instructions from
// the machine's issuing thread, and worker-thread activity shows up in the
// "pool." metrics instead. The tracer therefore keeps one open-span stack.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace folvec::telemetry {

class SpanTracer {
 public:
  using Clock = std::chrono::steady_clock;

  /// `capacity` bounds the stored event count (long bench runs would
  /// otherwise grow without limit); events past the cap are counted in
  /// dropped() but not stored. Open-span stack depth is unaffected.
  explicit SpanTracer(std::size_t capacity = kDefaultCapacity);

  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  /// Opens a nested span. `chime_instructions`/`chime_elements` are the
  /// opener's running totals (0 when unknown); the matching end() computes
  /// the deltas attributed to the span.
  void begin(std::string name, std::uint64_t chime_instructions = 0,
             std::uint64_t chime_elements = 0);

  /// Closes the innermost open span. Unbalanced end() is ignored.
  void end(std::uint64_t chime_instructions = 0,
           std::uint64_t chime_elements = 0);

  /// Records one leaf event for a machine instruction: `static_name` must
  /// point at storage that outlives the tracer (op-class mnemonics do).
  void op(const char* static_name, std::size_t elements, Clock::time_point start,
          Clock::time_point end);

  /// Stored events (ops + closed spans).
  std::size_t size() const { return events_.size(); }
  /// Events discarded because the capacity was reached.
  std::size_t dropped() const { return dropped_; }
  /// Depth of currently open spans.
  std::size_t open_depth() const { return stack_.size(); }

  /// Writes the collected timeline as a Chrome trace-event JSON object:
  /// {"traceEvents": [...], "displayTimeUnit": "ms", "otherData": {...}}.
  /// Open spans are closed as-of-now in the output (the tracer's own state
  /// is not modified).
  void write_chrome_trace(std::ostream& os) const;

  /// Convenience: write_chrome_trace to `path`; returns false on I/O error.
  bool write_chrome_trace_file(const std::string& path) const;

 private:
  struct Event {
    const char* static_name;  // non-null for op events
    std::string name;         // used when static_name is null
    double ts_us;
    double dur_us;
    std::uint64_t elements;
    std::uint64_t chime_instructions;
    std::uint64_t chime_elements;
    bool is_op;
  };
  struct Open {
    std::string name;
    Clock::time_point start;
    std::uint64_t chime_instructions;
    std::uint64_t chime_elements;
  };

  double to_us(Clock::time_point t) const {
    return std::chrono::duration<double, std::micro>(t - epoch_).count();
  }
  void push(Event e);
  void append_event_json(std::ostream& os, const Event& e, bool& first) const;

  Clock::time_point epoch_;
  std::size_t capacity_;
  std::vector<Event> events_;
  std::vector<Open> stack_;
  std::size_t dropped_ = 0;
};

/// The installed tracer, or nullptr (borrowed, same contract as metrics()).
SpanTracer* tracer();
void install_tracer(SpanTracer* t);

/// True when a tracer is installed — use to guard expensive name building.
inline bool tracing() { return tracer() != nullptr; }

/// RAII span against the installed tracer; a no-op when tracing is off.
/// Chime-carrying spans are opened through vm::AlgoSpan (vm/machine.h),
/// which reads the machine's cost accumulator on both edges.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : active_(tracing()) {
    if (active_) tracer()->begin(name);
  }
  /// Builds "prefix[index]" only when tracing is on.
  ScopedSpan(const char* prefix, std::size_t index) : active_(tracing()) {
    if (active_) {
      tracer()->begin(std::string(prefix) + '[' + std::to_string(index) + ']');
    }
  }
  ~ScopedSpan() {
    if (active_) tracer()->end();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_;
};

/// RAII install/uninstall of a tracer (tests, bench mains).
class ScopedTracer {
 public:
  explicit ScopedTracer(SpanTracer& t);
  ~ScopedTracer();
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

 private:
  SpanTracer* previous_;
};

}  // namespace folvec::telemetry
