// BatchServer: ties the serving layer together — queue in front,
// coalescing policy in the middle, ShardedMap behind.
//
// Two operating modes share the same execution path:
//
//   * pump mode (deterministic) — the caller submits requests and then
//     calls pump() from its own thread; each pump takes one coalesced
//     batch and executes it. Request order is whatever the caller
//     produced, so every serve.* counter and every response is
//     bit-reproducible. The differential tests and the load bench's
//     correctness passes run this way.
//   * threaded mode — start() launches a dispatch thread that blocks on
//     the Coalescer and executes batches as they fill; stop() closes the
//     queue, drains what is left, and joins. Throughput numbers come from
//     here.
//
// Either way exactly one thread touches the ShardedMap at a time; the
// parallelism that matters is inside the shard machines (their backend
// worker pools), not across them.
//
// Execution preserves sequential semantics: a batch is split into maximal
// same-op runs in arrival order, so an upsert/lookup/erase interleaving
// observes exactly the state a one-at-a-time server would have produced.
// Within an upsert run, VectorHashMap's last-lane-wins rule covers
// duplicate keys.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/coalescer.h"
#include "serve/request.h"
#include "serve/request_queue.h"
#include "serve/sharded_map.h"
#include "telemetry/metrics.h"

namespace folvec::serve {

struct BatchServerConfig {
  ShardedMapConfig map;
  CoalescerConfig coalesce;
};

class BatchServer {
 public:
  explicit BatchServer(const BatchServerConfig& config = {});
  ~BatchServer();

  BatchServer(const BatchServer&) = delete;
  BatchServer& operator=(const BatchServer&) = delete;

  /// Enqueue one request; returns its id (0 once the queue is closed).
  /// Upsert values must not equal kAbsent — that sentinel is reserved for
  /// "missing" in lookup responses.
  std::uint64_t submit(OpKind op, vm::Word key, vm::Word value = 0);

  /// Pump mode: execute one coalesced batch on the calling thread.
  /// Returns the number of requests served (0 = queue empty).
  std::size_t pump();
  /// Pump until the queue is empty.
  std::size_t pump_all();

  /// Threaded mode: launch / tear down the dispatch loop. stop() closes
  /// the queue, drains remaining requests, and joins.
  void start();
  void stop();

  /// Move out all responses accumulated since the last take (thread-safe).
  std::vector<Response> take_responses();

  ShardedMap& map() { return map_; }
  RequestQueue& queue() { return queue_; }
  const Coalescer& coalescer() const { return coalescer_; }

  /// End-to-end latency (enqueue -> response), microseconds, per op kind.
  const telemetry::PercentileSketch& latency_us(OpKind op) const {
    return latency_us_[static_cast<std::size_t>(op)];
  }
  std::uint64_t served() const { return served_; }

 private:
  /// Execute one batch: split into maximal same-op runs, dispatch each to
  /// the ShardedMap, append responses, record latency.
  void execute(const std::vector<Request>& batch);

  void dispatch_loop();

  RequestQueue queue_;
  Coalescer coalescer_;
  ShardedMap map_;

  std::thread dispatcher_;
  bool running_ = false;

  std::mutex response_mu_;
  std::vector<Response> responses_;

  std::array<telemetry::PercentileSketch, kOpKindCount> latency_us_;
  std::uint64_t served_ = 0;
};

}  // namespace folvec::serve
