file(REMOVE_RECURSE
  "libfolvec_lang.a"
)
