// Open-addressing hash tables: the scalar baseline and the vectorized
// multiple-hash of paper Figure 8.
//
// Only keys are stored (as in the paper); an unused slot holds kUnentered.
// Two probe-sequence variants are provided:
//   * kLinear       — advance by +1 on collision; this is the original
//                     "overwrite-and-check" probing of Kanada's PARBASE-90
//                     paper, kept for the ablation bench;
//   * kKeyDependent — advance by (key & 31) + 1; the optimization this
//                     paper introduces so that colliding keys separate
//                     instead of re-colliding forever.
// The paper asserts size(table) > 32 for the key-dependent variant; the
// reproduction uses the paper's prime sizes 521 and 4099.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "vm/cost_model.h"
#include "vm/machine.h"

namespace folvec::hashing {

enum class ProbeVariant : std::uint8_t {
  kLinear,        ///< +1 (original PARBASE-90 probing)
  kKeyDependent,  ///< +(key & 31) + 1 (this paper's optimization)
};

/// Sentinel marking an unused slot. Keys must be non-negative.
inline constexpr vm::Word kUnentered = -1;

/// Scalar open-addressing table, the sequential baseline of Figures 9/10.
class ScalarOpenTable {
 public:
  /// `cost`, when non-null, receives scalar-unit cost ticks so the chime
  /// model can price the baseline.
  ScalarOpenTable(std::size_t table_size, ProbeVariant variant,
                  vm::CostAccumulator* cost = nullptr);

  /// Inserts a key (non-negative, not already present — the Figure 8
  /// algorithm requires distinct keys). Returns the probe count used.
  /// Throws PreconditionError if the table is full.
  std::size_t insert(vm::Word key);

  /// True if `key` is in the table (follows the same probe sequence).
  bool contains(vm::Word key) const;

  std::size_t entered() const { return entered_; }
  std::size_t table_size() const { return slots_.size(); }
  double load_factor() const {
    return static_cast<double>(entered_) / static_cast<double>(slots_.size());
  }
  std::span<const vm::Word> slots() const { return slots_; }

 private:
  vm::Word probe_step(vm::Word key) const;

  std::vector<vm::Word> slots_;
  ProbeVariant variant_;
  mutable vm::ScalarCost cost_;
  std::size_t entered_ = 0;
};

/// Statistics returned by the vectorized multiple hash.
struct MultiHashStats {
  std::size_t iterations = 0;      ///< passes of the Figure 8 outer loop
  std::size_t max_vector_len = 0;  ///< length of the first (longest) pass
};

/// Figure 8: enters `keys` (distinct, non-negative) into the open-addressing
/// table `table` (every slot kUnentered or a previously entered key) using
/// the overwrite-and-check specialization of FOL — the keys themselves act
/// as labels. Entirely vector operations on `m`.
MultiHashStats multi_hash_open_insert(vm::VectorMachine& m,
                                      std::span<vm::Word> table,
                                      std::span<const vm::Word> keys,
                                      ProbeVariant variant);

/// Vectorized membership query: probes all keys in lockstep and returns one
/// mask lane per key. Read-only, so index-vector duplicates are harmless
/// (the paper's Figure 2b case) — no FOL pass is needed, and duplicate
/// query keys are allowed.
vm::Mask multi_hash_open_contains(vm::VectorMachine& m,
                                  std::span<const vm::Word> table,
                                  std::span<const vm::Word> keys,
                                  ProbeVariant variant);

}  // namespace folvec::hashing
