#include "vm/buffer_pool.h"

#include <algorithm>
#include <bit>
#include <string>
#include <utility>

#include "analysis/analyzer.h"
#include "support/faultsim.h"
#include "support/status.h"
#include "telemetry/metrics.h"
#include "telemetry/spans.h"

namespace folvec::vm {

void BufferPool::note_outstanding() const {
  if (telemetry::SpanTracer* t = telemetry::tracer()) {
    t->counter("pool.buffer.words_in_use",
               static_cast<double>(stats_.outstanding_words));
  }
}

std::size_t BufferPool::floor_log2(std::size_t v) {
  return static_cast<std::size_t>(std::bit_width(v)) - 1;
}

std::size_t BufferPool::bucket_of(std::size_t capacity) {
  return floor_log2(capacity == 0 ? 1 : capacity);
}

BufferPool::WordVec BufferPool::acquire(std::size_t n) {
  ++stats_.acquires;
  if (limit_words_ != 0 && stats_.outstanding_words + n > limit_words_) {
    telemetry::count("pool.buffer.exhausted");
    throw RecoverableError(
        StatusCode::kPoolExhausted,
        "buffer pool word limit exceeded (outstanding " +
            std::to_string(stats_.outstanding_words) + " + " +
            std::to_string(n) + " > limit " +
            std::to_string(limit_words_) + ")");
  }
  if (FaultPlan* plan = faults();
      plan != nullptr && plan->fires(FaultSite::kPoolAlloc)) {
    // Injected allocation failure of the pooled fast path. Degrade the way
    // a pressured allocator would: drop every free list and serve the
    // request with a fresh allocation — slower, never wrong, and invisible
    // to the modeled chime stream (pool reuse is host bookkeeping).
    telemetry::count("fault.injected.pool_alloc");
    trim();
    ++stats_.fault_drops;
    ++stats_.misses;
    WordVec fresh;
    fresh.resize(n);
    stats_.outstanding_words += fresh.capacity();
    note_outstanding();
    telemetry::count("fault.recovered.pool_alloc");
    if (analyzer_ != nullptr) {
      analyzer_->on_buffer_acquire(fresh.data(), fresh.capacity());
    }
    return fresh;
  }
  // Bucket b holds capacities in [2^b, 2^(b+1)). The search starts in the
  // bucket containing `want` itself — whose members fit only if their
  // individual capacity reaches want — and walks two buckets higher, where
  // every member fits. Larger buckets are deliberately not scanned: burning
  // a huge buffer on a tiny ask would evict it from the size class that
  // actually needs it.
  const std::size_t want = n == 0 ? 1 : n;
  const std::size_t lo = floor_log2(want);
  for (std::size_t b = lo; b < kBuckets && b <= lo + 2; ++b) {
    std::vector<WordVec>& bucket = buckets_[b];
    for (std::size_t i = bucket.size(); i-- > 0;) {
      if (bucket[i].capacity() < want) continue;
      WordVec v = std::move(bucket[i]);
      bucket.erase(bucket.begin() + static_cast<std::ptrdiff_t>(i));
      stats_.held_words -= v.capacity();
      ++stats_.hits;
      v.resize(n);
      stats_.outstanding_words += v.capacity();
      note_outstanding();
      if (analyzer_ != nullptr) {
        analyzer_->on_buffer_acquire(v.data(), v.capacity());
      }
      return v;
    }
  }
  ++stats_.misses;
  WordVec v;
  v.resize(n);
  stats_.outstanding_words += v.capacity();
  note_outstanding();
  if (analyzer_ != nullptr) {
    analyzer_->on_buffer_acquire(v.data(), v.capacity());
  }
  return v;
}

void BufferPool::release(WordVec&& v) {
  WordVec dead = std::move(v);
  const auto cap = static_cast<std::uint64_t>(dead.capacity());
  // Saturating: an algorithm may std::swap a larger externally-allocated
  // vector into a pooled slot and release that instead.
  stats_.outstanding_words -= std::min(stats_.outstanding_words, cap);
  note_outstanding();
  if (dead.capacity() == 0) {
    ++stats_.discards;
    return;
  }
  const std::size_t b = bucket_of(dead.capacity());
  std::vector<WordVec>& bucket = buckets_[b];
  if (bucket.size() >= kMaxPerBucket) {
    ++stats_.discards;
    if (analyzer_ != nullptr) {
      // Freed to the heap: the range may be recycled into unrelated storage,
      // so the analyzer only invalidates it (no use-after-release poison).
      analyzer_->on_buffer_freed(dead.data(), dead.capacity());
    }
    return;
  }
  ++stats_.releases;
  if (analyzer_ != nullptr) {
    analyzer_->on_buffer_release(dead.data(), dead.capacity());
  }
  stats_.held_words += dead.capacity();
  if (stats_.held_words > stats_.peak_held_words) {
    stats_.peak_held_words = stats_.held_words;
  }
  dead.clear();
  bucket.push_back(std::move(dead));
}

void BufferPool::trim() {
  for (auto& bucket : buckets_) {
    if (analyzer_ != nullptr) {
      for (const WordVec& v : bucket) {
        analyzer_->on_buffer_freed(v.data(), v.capacity());
      }
    }
    bucket.clear();
  }
  stats_.held_words = 0;
}

}  // namespace folvec::vm
