# Empty compiler generated dependencies file for example_journal_replay.
# This may be replaced when dependencies are built.
