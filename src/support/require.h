// Runtime checking utilities shared across the folvec library.
//
// The library validates its preconditions with FOLVEC_REQUIRE, which throws
// folvec::PreconditionError (so tests can assert on misuse), and internal
// invariants with FOLVEC_CHECK, which throws folvec::InternalError. Both are
// always on: the algorithms in this library are memory-bound, and the checks
// sit outside inner vector loops, so the cost is negligible.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace folvec {

/// Thrown when a caller violates a documented precondition of a public API.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an internal invariant fails; indicates a bug in folvec itself
/// or a substrate that violates a hardware contract (e.g. the ELS condition).
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  throw PreconditionError(std::string(file) + ":" + std::to_string(line) +
                          ": requirement `" + expr + "` failed: " + msg);
}

[[noreturn]] inline void throw_internal(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  throw InternalError(std::string(file) + ":" + std::to_string(line) +
                      ": invariant `" + expr + "` failed: " + msg);
}

}  // namespace detail

#define FOLVEC_REQUIRE(expr, msg)                                         \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::folvec::detail::throw_precondition(#expr, __FILE__, __LINE__,     \
                                           (msg));                        \
    }                                                                     \
  } while (false)

#define FOLVEC_CHECK(expr, msg)                                           \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::folvec::detail::throw_internal(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                     \
  } while (false)

/// Narrowing cast that checks the value survives the round trip.
template <typename To, typename From>
To checked_narrow(From value) {
  const To narrowed = static_cast<To>(value);
  if (static_cast<From>(narrowed) != value ||
      ((narrowed < To{}) != (value < From{}))) {
    throw PreconditionError("checked_narrow: value does not fit target type");
  }
  return narrowed;
}

}  // namespace folvec
