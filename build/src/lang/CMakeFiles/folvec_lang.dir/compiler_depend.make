# Empty compiler generated dependencies file for folvec_lang.
# This may be replaced when dependencies are built.
