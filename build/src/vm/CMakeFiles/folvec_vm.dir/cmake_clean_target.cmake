file(REMOVE_RECURSE
  "libfolvec_vm.a"
)
