// Ablation: how much of the paper's load-factor hump is a machine artefact?
//
// The same instruction streams are re-priced under three parameter sets:
//   * s810_like    — the calibrated reproduction machine;
//   * zero_startup — vector instructions issue for free: the left flank of
//                    the Figure 10 hump (short vectors are slow) should
//                    flatten, while the right flank (sequential retries)
//                    remains;
//   * cheap_gather — list-vector memory at linear-load speed: lifts every
//                    curve, showing how gather/scatter-bound these symbolic
//                    kernels are.
#include <iostream>

#include "bench_harness/experiments.h"
#include "bench_harness/report.h"
#include "support/require.h"
#include "support/table_printer.h"

int main() {
  using namespace folvec;
  bench::BenchReport report("ablation_cost_model");
  report.config("table_size", 4099);
  report.config("models",
                JsonArray{"s810_like", "zero_startup", "cheap_gather"});
  report.config("seed", 42);
  struct Named {
    const char* name;
    vm::CostParams params;
  };
  const Named models[] = {
      {"s810_like", vm::CostParams::s810_like()},
      {"zero_startup", vm::CostParams::zero_startup()},
      {"cheap_gather", vm::CostParams::cheap_gather()},
  };
  const double loads[] = {0.05, 0.2, 0.5, 0.9};

  TablePrinter table({"model", "accel@0.05", "accel@0.2", "accel@0.5",
                      "accel@0.9"});
  double base_small_load = 0;
  double nostartup_small_load = 0;
  for (const auto& [name, params] : models) {
    std::vector<Cell> cells;
    cells.reserve(1 + std::size(loads));
    cells.emplace_back(std::string(name));
    for (double lf : loads) {
      const bench::RunResult r = bench::run_multi_hash(
          4099, lf, hashing::ProbeVariant::kKeyDependent, 42, params);
      cells.push_back(Cell(r.acceleration(), 2));
      if (lf == 0.05) {
        if (std::string(name) == "s810_like") base_small_load = r.acceleration();
        if (std::string(name) == "zero_startup") {
          nostartup_small_load = r.acceleration();
        }
      }
    }
    table.add_row(std::move(cells));
  }
  table.print(std::cout,
              "Ablation: multiple hashing (N=4099) re-priced under variant "
              "machine models");
  report.add_table(
      "Ablation: multiple hashing (N=4099) re-priced under variant machine "
      "models",
      table);
  report.note("accel_low_load_s810", base_small_load);
  report.note("accel_low_load_zero_startup", nostartup_small_load);
  std::cout << "\nzero_startup lifts the short-vector (low load) regime the "
               "most: the hump's left flank is a startup artefact\n";
  FOLVEC_CHECK(nostartup_small_load > base_small_load,
               "removing startup must help short vectors most");
  return 0;
}
