// Machine-readable bench reports.
//
// Every binary in bench/ owns one BenchReport for the duration of main().
// On construction it starts a telemetry::EnvSession (installing a metrics
// registry process-wide and honoring FOLVEC_TRACE_JSON / FOLVEC_METRICS);
// on destruction it writes BENCH_<name>.json — the JSON twin of the bench's
// printed tables plus the full metric snapshot — so CI and plotting scripts
// consume the same run the human-readable output describes.
//
// Report schema ("folvec-bench-report-v2"; see docs/observability.md):
//   schema       the literal schema id
//   bench        the bench name
//   config       bench-declared parameters (config())
//   backend      effective execution backend of a default-config machine:
//                name, workers, requested, pinned, pin_reason
//   chime        modeled totals summed from the vm.op.* counters:
//                instructions, elements
//   wall         host seconds between report construction and write
//   calibration  model-fidelity section from the session profiler: per
//                op class the least-squares wall_ns ~ a_ns + b_ns *
//                elements fit (with R² and RMS residual), wall_ns
//                p50/p90/p99 percentiles, and the chime model's constants;
//                plus the worst-residual op-class names
//   tables       JSON twins of every TablePrinter handed to add_table()
//   notes        free-form result values (note())
//   metrics      the full MetricsSnapshot (counters/gauges/histograms/
//                timings/labels)
//
// The file lands in FOLVEC_BENCH_JSON_DIR (created by the caller) or the
// current directory.
#pragma once

#include <chrono>
#include <string>
#include <string_view>

#include "support/json.h"
#include "support/table_printer.h"
#include "telemetry/session.h"

namespace folvec::bench {

class BenchReport {
 public:
  explicit BenchReport(std::string name);
  /// Writes the report if write() has not run yet.
  ~BenchReport();
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  /// Declares one input parameter of the run (table size, seed count, ...).
  void config(std::string_view key, JsonValue value);

  /// Records one result value (peaks, measured ratios, pass/fail flags).
  void note(std::string_view key, JsonValue value);

  /// Captures a printed table as its JSON twin (headers + rendered rows).
  void add_table(std::string_view title, const TablePrinter& table);

  /// The session's registry, for benches that want explicit snapshots.
  telemetry::MetricsRegistry& registry() { return session_.registry(); }

  /// Writes BENCH_<name>.json (and flushes the telemetry session, so the
  /// FOLVEC_TRACE_JSON file is complete first). Returns false on I/O error;
  /// safe to call once, after which the destructor does nothing.
  bool write();

  /// Destination path of the report file.
  std::string path() const;

 private:
  telemetry::EnvSession session_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  JsonObject config_;
  JsonObject notes_;
  JsonArray tables_;
  bool written_ = false;
};

}  // namespace folvec::bench
