// Per-op hazard verdicts and the judge functions that produce them.
//
// For every list-vector memory op (gather / scatter / scatter_ordered /
// scatter_gather_eq) the verifier rules on four hazard classes, mirroring
// the runtime ScatterCheck taxonomy (vm/hazard.h):
//
//   kBounds   — an index lane outside [0, table_size)     (kOutOfBounds)
//   kOverlap  — colliding scatter lanes with differing values and no
//               sanction or defined survivor              (kUnsanctionedDuplicate,
//                                                          and the ELS self-overlap
//                                                          that kElsViolation audits)
//   kClobber  — reading an address still holding stale labels from a closed
//               label round                               (kClobberedWorkRead)
//   kLifetime — an operand whose PooledVec storage was released back to the
//               buffer pool (no runtime analogue: the auditor cannot see
//               host allocator reuse, the analyzer can)
//
// Verdict semantics (the soundness contract, see docs/analysis.md):
//
//   kProvenSafe   — on a substrate honouring the ELS condition, the runtime
//                   check for this class can never fire. This is the license
//                   for audit elision.
//   kProvenHazard — the facts EXHIBIT a violating lane (tight endpoints,
//                   pigeonhole duplicates). Static analysis may prove
//                   hazards the runtime auditor never fires on (e.g. a
//                   provably lossy scatter inside a sanctioning data-race
//                   window); the reverse — a ProvenSafe op tripping a
//                   runtime check — is a verifier bug, enforced by the
//                   differential fuzz in tests/analysis_test.cpp.
//   kUnknown      — neither proof exists; runtime checks run in full.
//
// The judges are pure functions of LaneFacts plus the window/clobber context
// so the online analyzer and the offline graph replay (verifier.cpp) cannot
// drift apart.
#pragma once

#include <cstddef>
#include <cstdint>

#include "analysis/facts.h"

namespace folvec::analysis {

enum class Verdict : std::uint8_t { kUnknown = 0, kProvenSafe, kProvenHazard };

enum class HazardClass : std::uint8_t {
  kBounds = 0,
  kOverlap,
  kClobber,
  kLifetime,
};
inline constexpr std::size_t kHazardClassCount = 4;

const char* verdict_name(Verdict v);
const char* hazard_class_name(HazardClass c);

/// One verdict per hazard class. Classes that cannot apply to an op (e.g.
/// kClobber for a pure scatter) stay vacuously kProvenSafe.
struct OpVerdicts {
  Verdict v[kHazardClassCount] = {Verdict::kProvenSafe, Verdict::kProvenSafe,
                                  Verdict::kProvenSafe, Verdict::kProvenSafe};

  Verdict& operator[](HazardClass c) { return v[static_cast<std::size_t>(c)]; }
  Verdict operator[](HazardClass c) const {
    return v[static_cast<std::size_t>(c)];
  }

  bool all_safe() const {
    for (const Verdict x : v) {
      if (x != Verdict::kProvenSafe) return false;
    }
    return true;
  }

  bool any_hazard() const {
    for (const Verdict x : v) {
      if (x == Verdict::kProvenHazard) return true;
    }
    return false;
  }

  /// hazard if any class is a proven hazard, safe if all are proven safe,
  /// unknown otherwise.
  Verdict overall() const {
    if (any_hazard()) return Verdict::kProvenHazard;
    return all_safe() ? Verdict::kProvenSafe : Verdict::kUnknown;
  }

  friend bool operator==(const OpVerdicts& a, const OpVerdicts& b) {
    for (std::size_t i = 0; i < kHazardClassCount; ++i) {
      if (a.v[i] != b.v[i]) return false;
    }
    return true;
  }
};

/// The ConflictWindow context a memory op executes under (innermost window
/// covering the table, if any) — mirrors vm::WindowKind.
enum class WindowCtx : std::uint8_t { kNone = 0, kLabelRound, kDataRace };

/// Bounds class. `masked` ops can never be ProvenHazard (the offending
/// endpoint lane may be inactive, and inactive lanes do not access memory);
/// a proven in-bounds interval is safe for any mask.
Verdict judge_bounds(const LaneFacts& idx, std::size_t table_size, bool masked);

/// Overlap class for one scatter-class op. Mirrors ScatterCheck's sanction
/// rules: ordered scatters define their survivor; label-round windows
/// sanction colliding labels (the readback audits survivorship); proven
/// distinct indices or provably-equal values make collisions benign. A
/// pigeonhole-proven duplicate pair with pairwise-distinct values is a
/// proven lossy scatter — flagged even inside a data-race window, where the
/// runtime auditor stays silent by design (static-stronger).
Verdict judge_scatter_overlap(const LaneFacts& idx, const LaneFacts& vals,
                              WindowCtx window, bool masked, bool ordered);

/// What the clobber tracker knows about one read's footprint vs. the
/// stale-label spans left by closed (possibly elided) label rounds.
struct ClobberOverlap {
  bool any = false;     ///< the footprint intersects some clobbered span
  bool lo_hit = false;  ///< idx.lo falls inside an exactly-covered span
  bool hi_hit = false;  ///< idx.hi falls inside an exactly-covered span
};

/// Clobbered-work-read class for one gather / readback. Reads inside any
/// window are exempt (mirroring the runtime checker); a tight endpoint
/// landing in an exactly-covered clobber span exhibits the hazard.
Verdict judge_read_clobber(const LaneFacts& idx, bool in_window,
                           const ClobberOverlap& overlap);

}  // namespace folvec::analysis
