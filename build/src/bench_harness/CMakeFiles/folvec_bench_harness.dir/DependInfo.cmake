
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bench_harness/experiments.cpp" "src/bench_harness/CMakeFiles/folvec_bench_harness.dir/experiments.cpp.o" "gcc" "src/bench_harness/CMakeFiles/folvec_bench_harness.dir/experiments.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/folvec_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/fol/CMakeFiles/folvec_fol.dir/DependInfo.cmake"
  "/root/repo/build/src/list/CMakeFiles/folvec_list.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/folvec_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/folvec_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/queens/CMakeFiles/folvec_queens.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/folvec_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/sorting/CMakeFiles/folvec_sorting.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/folvec_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/folvec_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/folvec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
