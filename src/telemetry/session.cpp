#include "telemetry/session.h"

#include <cstdio>
#include <fstream>

#include "support/env.h"

namespace folvec::telemetry {

EnvSession::EnvSession()
    : previous_metrics_(metrics()), previous_profiler_(profiler()) {
  install_metrics(&registry_);
  install_profiler(&profiler_);
  trace_path_ = env_value("FOLVEC_TRACE_JSON");
  if (trace_path_) {
    tracer_ = std::make_unique<SpanTracer>();
    previous_tracer_ = tracer();
    install_tracer(tracer_.get());
  }
  metrics_path_ = env_value("FOLVEC_METRICS");
  fault_plan_ = FaultPlan::from_env();
  if (fault_plan_) {
    previous_faults_ = install_faults(fault_plan_.get());
    registry_.label("fault.spec", fault_plan_->spec());
    registry_.gauge_max("fault.seed",
                        static_cast<std::int64_t>(fault_plan_->seed()));
  }
}

void EnvSession::flush() {
  if (flushed_) return;
  flushed_ = true;
  if (tracer_ && trace_path_) {
    if (!tracer_->write_chrome_trace_file(*trace_path_)) {
      std::fprintf(stderr, "folvec: failed to write FOLVEC_TRACE_JSON=%s\n",
                   trace_path_->c_str());
    }
  }
  if (metrics_path_) {
    const std::string text = registry_.snapshot().to_json();
    // "-" and boolean spellings mean stderr; anything else is a file path.
    const std::string norm = env_normalize(*metrics_path_);
    const bool to_stderr = norm == "-" || norm == "1" || norm == "true" ||
                           norm == "on" || norm == "yes" || norm == "stderr";
    if (to_stderr) {
      std::fprintf(stderr, "%s\n", text.c_str());
    } else {
      std::ofstream os(*metrics_path_);
      if (os) {
        os << text << '\n';
      } else {
        std::fprintf(stderr, "folvec: failed to write FOLVEC_METRICS=%s\n",
                     metrics_path_->c_str());
      }
    }
  }
}

EnvSession::~EnvSession() {
  flush();
  if (fault_plan_) install_faults(previous_faults_);
  if (tracer_) install_tracer(previous_tracer_);
  install_profiler(previous_profiler_);
  install_metrics(previous_metrics_);
}

}  // namespace folvec::telemetry
