// The online analyzer: abstract interpretation of the live instruction
// stream, op-graph recording, and the audit-elision oracle.
//
// VectorMachine owns one Analyzer when MachineConfig::analysis is set and
// calls exactly three kinds of hooks:
//
//   * rec_*   — after a primitive executed: transfer the operand facts
//               through the matching facts.h function, remember the result
//               facts keyed by the output's storage, and (when graph
//               recording is on) append an OpNode with def/use edges.
//   * classify_* — before a list-vector memory op executes: judge the four
//               hazard classes (verdict.h) from the operand facts plus the
//               window / clobber / lifetime state. The machine uses the
//               verdicts to elide ScatterCheck work (all-safe ops) or to
//               veto execution (proven out-of-bounds ops in lint dry mode).
//   * on_*    — environment events: ConflictWindow open/close, BufferPool
//               acquire/release/free, retire_work. These drive the clobber
//               and lifetime state machines.
//
// Facts are keyed by storage address (base pointer + length). That is sound
// for everything the machine itself produces — every mutation flows through
// a hook that invalidates overlapping entries — but it makes one assumption
// about the HOST program: storage of a machine-produced vector must not be
// recycled into a different machine-visible vector behind the analyzer's
// back (see "machine-visible dataflow" in docs/analysis.md). PooledVec
// buffers, the one systematic recycler, are covered exactly via the
// BufferPool hooks, which double as the use-after-release lifetime check.
//
// The analyzer depends on no vm/ header (vm links against analysis, not the
// reverse); operands arrive as raw spans.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "analysis/facts.h"
#include "analysis/opgraph.h"
#include "analysis/verdict.h"

namespace folvec::analysis {

/// One reportable finding: a proven hazard (lint errors) with its source
/// location and a human-readable message.
struct Diagnostic {
  HazardClass cls = HazardClass::kBounds;
  Verdict verdict = Verdict::kProvenHazard;
  std::uint32_t node = kNoNode;  ///< graph node id (kNoNode when not recording)
  std::size_t line = 0;          ///< lang source line; 0 = unknown
  std::string message;
};

class Analyzer {
 public:
  struct Options {
    /// Append every op to the OpGraph (lint / tooling). Off by default so
    /// steady-state audit-elision runs hold no growing state.
    bool record_graph = false;
    /// Lint dry mode: the machine skips executing memory ops whose bounds
    /// verdict is kProvenHazard (so analysis can continue past them).
    bool veto = false;
  };

  struct Stats {
    std::uint64_t mem_ops = 0;  ///< classified list-vector ops
    std::uint64_t mem_safe = 0;
    std::uint64_t mem_unknown = 0;
    std::uint64_t mem_hazard = 0;
    std::uint64_t scatter_ops = 0;  ///< scatter-class subset
    std::uint64_t scatter_safe = 0;
    std::uint64_t elided_instructions = 0;
    std::uint64_t elided_lanes = 0;
    std::uint64_t checked_instructions = 0;
    std::uint64_t checked_lanes = 0;
    std::uint64_t vetoed = 0;
    /// Per hazard class, per verdict (indexed by Verdict) over classified ops.
    std::uint64_t class_verdicts[kHazardClassCount][3] = {};
  };

  Analyzer() = default;
  explicit Analyzer(const Options& opts) : opts_(opts) {}

  bool veto() const { return opts_.veto; }
  void set_veto(bool v) { opts_.veto = v; }
  bool recording_graph() const { return opts_.record_graph; }
  void set_record_graph(bool v) { opts_.record_graph = v; }

  /// Source location for subsequent ops (lang interpreter sets this).
  void set_line(std::size_t line) { line_ = line; }
  std::size_t line() const { return line_; }

  const OpGraph& graph() const { return graph_; }
  const Stats& stats() const { return stats_; }
  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  /// Measured-range annotation: scans v once (host-side, no machine cost)
  /// and records a tight interval fact for it. FOL drivers call this on
  /// their index vectors so every round's scatter bounds are proven.
  void observe_range(std::span<const Word> v);

  // ---- recording hooks (non-memory primitives) ----------------------------

  void rec_gen(Opcode op, std::span<const Word> out, Word s0, Word s1);
  void rec_unary(Opcode op, std::span<const Word> out, std::span<const Word> in,
                 Word s0 = 0);
  void rec_binary(Opcode op, std::span<const Word> out, std::span<const Word> a,
                  std::span<const Word> b);
  void rec_cmp(Opcode op, std::span<const std::uint8_t> out,
               std::span<const Word> a, std::span<const Word> b, Word s0);
  void rec_mask2(Opcode op, std::span<const std::uint8_t> out,
                 std::span<const std::uint8_t> a,
                 std::span<const std::uint8_t> b);
  void rec_reduce(Opcode op, std::span<const Word> in);
  void rec_count_true(std::span<const std::uint8_t> m);
  void rec_compress(std::span<const Word> out, std::span<const Word> in,
                    std::span<const std::uint8_t> m);
  void rec_partition(std::span<const Word> kept, std::span<const Word> rejected,
                     std::span<const Word> in, std::span<const std::uint8_t> m);
  void rec_select(std::span<const Word> out, std::span<const std::uint8_t> m,
                  std::span<const Word> a, std::span<const Word> b);
  void rec_from_mask(std::span<const Word> out,
                     std::span<const std::uint8_t> m);

  // ---- contiguous memory ---------------------------------------------------

  void rec_load(Opcode op, std::span<const Word> out,
                std::span<const Word> table);
  /// store / store_strided / fill: `dst` is the first written address,
  /// `n` the element count, `stride` the element stride (1 for fill/store).
  void rec_store(Opcode op, std::span<const Word> table, const Word* dst,
                 std::size_t n, std::size_t stride);
  void rec_scalar_store(std::span<const Word> table, std::size_t pos);

  // ---- list-vector memory: classify before, record after -------------------

  OpVerdicts classify_gather(std::span<const Word> table,
                             std::span<const Word> idx, bool masked);
  OpVerdicts classify_scatter(std::span<const Word> table,
                              std::span<const Word> idx,
                              std::span<const Word> vals, bool masked,
                              bool ordered);
  /// The fused scatter + readback: scatter judges plus the readback's
  /// all-lanes bounds (its gather checks every lane even under a mask).
  OpVerdicts classify_sge(std::span<const Word> table,
                          std::span<const Word> idx, std::span<const Word> vals,
                          bool masked);

  void rec_gather(std::span<const Word> out, std::span<const Word> table,
                  std::span<const Word> idx, std::span<const std::uint8_t> mask,
                  const OpVerdicts& v, bool elided);
  /// `executed` is false for vetoed ops (recorded in the graph, but the
  /// write never happened so no table effects are applied).
  void rec_scatter(std::span<const Word> table, std::span<const Word> idx,
                   std::span<const Word> vals,
                   std::span<const std::uint8_t> mask, bool ordered,
                   const OpVerdicts& v, bool elided, bool executed = true);
  void rec_sge(std::span<const std::uint8_t> out, std::span<const Word> table,
               std::span<const Word> idx, std::span<const Word> vals,
               std::span<const std::uint8_t> mask, const OpVerdicts& v,
               bool elided, bool executed = true);

  /// The interval the idx facts prove all lanes confined to. True (filling
  /// lo/hi, clamped to the table) only when the range is proven in bounds;
  /// `exact` reports whether the lanes provably cover every address in it.
  bool proven_index_range(std::span<const Word> idx, std::size_t table_size,
                          Word* lo, Word* hi, bool* exact) const;

  // ---- environment events --------------------------------------------------

  void on_window_open(std::span<const Word> table, WindowCtx kind,
                      const char* label);
  void on_window_close();
  void on_buffer_release(const Word* base, std::size_t words);
  void on_buffer_acquire(const Word* base, std::size_t words);
  void on_buffer_freed(const Word* base, std::size_t words);
  void on_retire_work(std::span<const Word> region);

  // ---- elision accounting (the machine reports its decision) ---------------

  void note_elided(std::size_t lanes) {
    ++stats_.elided_instructions;
    stats_.elided_lanes += lanes;
  }
  void note_checked(std::size_t lanes) {
    ++stats_.checked_instructions;
    stats_.checked_lanes += lanes;
  }
  void note_vetoed() { ++stats_.vetoed; }

 private:
  struct ValueEntry {
    std::size_t len = 0;
    LaneFacts facts;
    std::uint32_t node = kNoNode;
  };
  struct MaskEntry {
    std::size_t len = 0;
    std::uint32_t node = kNoNode;
  };
  /// A maybe-stale-labels address span [lo, hi); `exact` means every
  /// address in it was provably written by the clobbering round.
  struct ClobSpan {
    const Word* lo = nullptr;
    const Word* hi = nullptr;
    bool exact = false;
  };
  struct Win {
    const Word* begin = nullptr;
    const Word* end = nullptr;
    WindowCtx kind = WindowCtx::kNone;
    std::vector<ClobSpan> writes;
  };
  struct Released {
    const Word* begin = nullptr;
    const Word* end = nullptr;
  };

  // facts bookkeeping
  LaneFacts lookup(std::span<const Word> v) const;
  void remember(std::span<const Word> out, const LaneFacts& f,
                std::uint32_t node);
  void invalidate(const Word* begin, const Word* end);
  std::uint32_t value_node(std::span<const Word> v);
  std::uint32_t mask_node(std::span<const std::uint8_t> m);
  void remember_mask(std::span<const std::uint8_t> out, std::uint32_t node);

  // graph bookkeeping
  std::uint32_t record(OpNode n);
  std::uint32_t region_of(std::span<const Word> table);

  // clobber / window state
  const Win* covering_window(std::span<const Word> table) const;
  Win* covering_window(std::span<const Word> table);
  ClobberOverlap clobber_overlap(std::span<const Word> table,
                                 const LaneFacts& idx) const;
  void clear_clobber(const Word* begin, const Word* end, bool full_cover);
  void book_window_write(std::span<const Word> table, const LaneFacts& idx,
                         bool masked);

  // lifetime state
  Verdict judge_lifetime(std::span<const Word> s) const;
  Verdict combine_lifetime(std::initializer_list<std::span<const Word>> spans,
                           std::size_t line_hint);

  void count_mem(const OpVerdicts& v, bool scatter_class);
  void diagnose(HazardClass cls, std::uint32_t node, const std::string& msg);
  void report_hazards(const char* what, const OpVerdicts& v,
                      const LaneFacts& idxf, std::size_t table_size,
                      std::uint32_t node);

  Options opts_;
  std::size_t line_ = 0;
  std::map<const Word*, ValueEntry> values_;
  std::map<const std::uint8_t*, MaskEntry> masks_;
  std::vector<Win> windows_;
  std::vector<ClobSpan> clobbered_;
  std::vector<Released> released_;
  std::map<const Word*, std::uint32_t> regions_;
  OpGraph graph_;
  Stats stats_;
  std::vector<Diagnostic> diags_;
};

}  // namespace folvec::analysis
