# Empty compiler generated dependencies file for fol1_test.
# This may be replaced when dependencies are built.
