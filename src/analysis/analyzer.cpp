#include "analysis/analyzer.h"

#include <algorithm>
#include <utility>

namespace folvec::analysis {

namespace {

constexpr std::size_t kMaxDiagnostics = 1024;
constexpr std::size_t kMaxReleasedRanges = 1024;
constexpr std::size_t kMaxClobberSpans = 128;
constexpr std::size_t kMaxWindowWrites = 64;

Verdict worst(Verdict a, Verdict b) {
  if (a == Verdict::kProvenHazard || b == Verdict::kProvenHazard) {
    return Verdict::kProvenHazard;
  }
  if (a == Verdict::kUnknown || b == Verdict::kUnknown) {
    return Verdict::kUnknown;
  }
  return Verdict::kProvenSafe;
}

struct Footprint {
  const Word* b = nullptr;
  const Word* e = nullptr;
};

/// The address range a memory op with index facts `idx` can touch inside
/// `table`, clamped to the table (out-of-range lanes would throw before
/// touching memory; for clobber state we only care about table addresses).
Footprint footprint(std::span<const Word> table, const LaneFacts& idx) {
  const Word* tb = table.data();
  if (!idx.has_range) return {tb, tb + table.size()};
  if (idx.lanes == 0 || table.empty()) return {tb, tb};
  const Word lo = std::max<Word>(idx.lo, 0);
  const Word max_index = static_cast<Word>(table.size()) - 1;
  const Word hi = std::min<Word>(idx.hi, max_index);
  if (lo > hi) return {tb, tb};
  return {tb + lo, tb + hi + 1};
}

}  // namespace

// ---- facts bookkeeping ------------------------------------------------------

LaneFacts Analyzer::lookup(std::span<const Word> v) const {
  LaneFacts f = LaneFacts::unknown(v.size());
  if (v.empty()) {
    f.distinct = true;
    f.sorted = true;
    return f;
  }
  auto it = values_.upper_bound(v.data());
  if (it == values_.begin()) return f;
  --it;
  const ValueEntry& ent = it->second;
  if (v.data() + v.size() > it->first + ent.len) return f;
  // v is a contained subspan: interval, distinctness and sortedness all
  // restrict to subsets; tightness only survives an exact match (the lanes
  // attaining the endpoints may lie outside the subspan).
  LaneFacts g = ent.facts;
  g.lanes = v.size();
  if (it->first == v.data() && ent.len == v.size()) return g;
  g.tight = false;
  return g;
}

void Analyzer::remember(std::span<const Word> out, const LaneFacts& f,
                        std::uint32_t node) {
  if (out.empty()) return;
  invalidate(out.data(), out.data() + out.size());
  values_.emplace(out.data(), ValueEntry{out.size(), f, node});
}

void Analyzer::invalidate(const Word* begin, const Word* end) {
  if (begin >= end || values_.empty()) return;
  auto it = values_.lower_bound(begin);
  if (it != values_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.len > begin) it = prev;
  }
  while (it != values_.end() && it->first < end) {
    if (it->first + it->second.len > begin) {
      it = values_.erase(it);
    } else {
      ++it;
    }
  }
}

std::uint32_t Analyzer::value_node(std::span<const Word> v) {
  if (!opts_.record_graph) return kNoNode;
  auto it = values_.find(v.data());
  if (it != values_.end() && it->second.len == v.size()) {
    if (it->second.node == kNoNode) {
      OpNode src;
      src.op = Opcode::kSource;
      src.lanes = v.size();
      src.facts = it->second.facts;
      it->second.node = graph_.add(std::move(src));
    }
    return it->second.node;
  }
  OpNode src;
  src.op = Opcode::kSource;
  src.lanes = v.size();
  src.facts = lookup(v);
  return graph_.add(std::move(src));
}

std::uint32_t Analyzer::mask_node(std::span<const std::uint8_t> m) {
  if (!opts_.record_graph) return kNoNode;
  auto it = masks_.find(m.data());
  if (it != masks_.end() && it->second.len == m.size()) {
    if (it->second.node == kNoNode) {
      OpNode src;
      src.op = Opcode::kSource;
      src.lanes = m.size();
      it->second.node = graph_.add(std::move(src));
    }
    return it->second.node;
  }
  OpNode src;
  src.op = Opcode::kSource;
  src.lanes = m.size();
  return graph_.add(std::move(src));
}

void Analyzer::remember_mask(std::span<const std::uint8_t> out,
                             std::uint32_t node) {
  if (out.empty()) return;
  const std::uint8_t* b = out.data();
  const std::uint8_t* e = b + out.size();
  auto it = masks_.lower_bound(b);
  if (it != masks_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.len > b) it = prev;
  }
  while (it != masks_.end() && it->first < e) {
    if (it->first + it->second.len > b) {
      it = masks_.erase(it);
    } else {
      ++it;
    }
  }
  masks_.emplace(b, MaskEntry{out.size(), node});
}

// ---- graph bookkeeping ------------------------------------------------------

std::uint32_t Analyzer::record(OpNode n) {
  if (!opts_.record_graph) return kNoNode;
  if (n.line == 0) n.line = line_;
  return graph_.add(std::move(n));
}

std::uint32_t Analyzer::region_of(std::span<const Word> table) {
  auto [it, fresh] = regions_.try_emplace(
      table.data(), static_cast<std::uint32_t>(graph_.region_sizes.size()));
  if (fresh) {
    graph_.region_sizes.push_back(table.size());
  } else if (graph_.region_sizes[it->second] < table.size()) {
    graph_.region_sizes[it->second] = table.size();
  }
  return it->second;
}

// ---- clobber / window state -------------------------------------------------

const Analyzer::Win* Analyzer::covering_window(
    std::span<const Word> table) const {
  for (auto it = windows_.rbegin(); it != windows_.rend(); ++it) {
    if (table.data() >= it->begin && table.data() + table.size() <= it->end) {
      return &*it;
    }
  }
  return nullptr;
}

Analyzer::Win* Analyzer::covering_window(std::span<const Word> table) {
  return const_cast<Win*>(
      static_cast<const Analyzer*>(this)->covering_window(table));
}

ClobberOverlap Analyzer::clobber_overlap(std::span<const Word> table,
                                         const LaneFacts& idx) const {
  ClobberOverlap co;
  if (clobbered_.empty()) return co;
  const Footprint fp = footprint(table, idx);
  for (const ClobSpan& s : clobbered_) {
    if (s.lo < fp.e && s.hi > fp.b) co.any = true;
  }
  if (idx.has_range && idx.lanes > 0) {
    const auto edge_hit = [&](Word i) {
      if (i < 0 || static_cast<std::uint64_t>(i) >= table.size()) return false;
      const Word* p = table.data() + i;
      for (const ClobSpan& s : clobbered_) {
        if (s.exact && p >= s.lo && p < s.hi) return true;
      }
      return false;
    };
    co.lo_hit = edge_hit(idx.lo);
    co.hi_hit = edge_hit(idx.hi);
  }
  return co;
}

/// Subtracts (full_cover) or weakens (otherwise) [begin, end) from the
/// clobber list. Mirrors the runtime checker, which erases per-address marks
/// on overwrite and in-window rewrite: removal is only sound when every
/// address in the range was provably written (full_cover); a partial write
/// just demotes a span to inexact, killing future hazard *proofs* while
/// keeping the conservative overlap that blocks false safe proofs.
void Analyzer::clear_clobber(const Word* begin, const Word* end,
                             bool full_cover) {
  if (begin >= end || clobbered_.empty()) return;
  std::vector<ClobSpan> out;
  out.reserve(clobbered_.size());
  for (const ClobSpan& s : clobbered_) {
    if (s.hi <= begin || s.lo >= end) {
      out.push_back(s);
      continue;
    }
    if (!full_cover) {
      ClobSpan weak = s;
      weak.exact = false;
      out.push_back(weak);
      continue;
    }
    if (s.lo < begin) out.push_back({s.lo, begin, s.exact});
    if (s.hi > end) out.push_back({end, s.hi, s.exact});
  }
  clobbered_ = std::move(out);
}

void Analyzer::book_window_write(std::span<const Word> table,
                                 const LaneFacts& idx, bool masked) {
  Win* w = covering_window(table);
  if (w == nullptr || w->kind != WindowCtx::kLabelRound) return;
  const Footprint fp = footprint(table, idx);
  if (fp.b == fp.e) return;
  w->writes.push_back({fp.b, fp.e, !masked && idx.covers_range()});
  if (w->writes.size() > kMaxWindowWrites) {
    // Coalesce into one conservative hull span.
    const Word* lo = w->writes.front().lo;
    const Word* hi = w->writes.front().hi;
    for (const ClobSpan& s : w->writes) {
      lo = std::min(lo, s.lo);
      hi = std::max(hi, s.hi);
    }
    w->writes.assign(1, ClobSpan{lo, hi, false});
  }
}

// ---- lifetime state ---------------------------------------------------------

Verdict Analyzer::judge_lifetime(std::span<const Word> s) const {
  if (s.empty()) return Verdict::kProvenSafe;
  const Word* b = s.data();
  const Word* e = b + s.size();
  Verdict v = Verdict::kProvenSafe;
  for (const Released& r : released_) {
    if (e <= r.begin || b >= r.end) continue;
    if (b >= r.begin && e <= r.end) return Verdict::kProvenHazard;
    v = Verdict::kUnknown;
  }
  return v;
}

Verdict Analyzer::combine_lifetime(
    std::initializer_list<std::span<const Word>> spans,
    std::size_t line_hint) {
  (void)line_hint;
  Verdict v = Verdict::kProvenSafe;
  for (const std::span<const Word> s : spans) v = worst(v, judge_lifetime(s));
  return v;
}

// ---- accounting -------------------------------------------------------------

void Analyzer::count_mem(const OpVerdicts& v, bool scatter_class) {
  ++stats_.mem_ops;
  switch (v.overall()) {
    case Verdict::kProvenSafe:
      ++stats_.mem_safe;
      break;
    case Verdict::kProvenHazard:
      ++stats_.mem_hazard;
      break;
    case Verdict::kUnknown:
      ++stats_.mem_unknown;
      break;
  }
  if (scatter_class) {
    ++stats_.scatter_ops;
    if (v.all_safe()) ++stats_.scatter_safe;
  }
  for (std::size_t c = 0; c < kHazardClassCount; ++c) {
    ++stats_.class_verdicts[c][static_cast<std::size_t>(v.v[c])];
  }
}

void Analyzer::diagnose(HazardClass cls, std::uint32_t node,
                        const std::string& msg) {
  if (diags_.size() >= kMaxDiagnostics) return;
  Diagnostic d;
  d.cls = cls;
  d.verdict = Verdict::kProvenHazard;
  d.node = node;
  d.line = line_;
  d.message = msg;
  diags_.push_back(std::move(d));
}

void Analyzer::report_hazards(const char* what, const OpVerdicts& v,
                              const LaneFacts& idxf, std::size_t table_size,
                              std::uint32_t node) {
  if (v[HazardClass::kBounds] == Verdict::kProvenHazard) {
    diagnose(HazardClass::kBounds, node,
             std::string(what) + ": index range [" + std::to_string(idxf.lo) +
                 ", " + std::to_string(idxf.hi) + "] exceeds table of " +
                 std::to_string(table_size) + " elements");
  }
  if (v[HazardClass::kOverlap] == Verdict::kProvenHazard) {
    diagnose(HazardClass::kOverlap, node,
             std::string(what) + ": " + std::to_string(idxf.lanes) +
                 " lanes collide in at most " + std::to_string(idxf.width()) +
                 " addresses while carrying pairwise-distinct values "
                 "(collisions lose data)");
  }
  if (v[HazardClass::kClobber] == Verdict::kProvenHazard) {
    diagnose(HazardClass::kClobber, node,
             std::string(what) +
                 ": reads addresses still holding stale labels from a closed "
                 "label round");
  }
  if (v[HazardClass::kLifetime] == Verdict::kProvenHazard) {
    diagnose(HazardClass::kLifetime, node,
             std::string(what) +
                 ": operand storage was released to the buffer pool "
                 "(use after release)");
  }
}

// ---- annotations ------------------------------------------------------------

void Analyzer::observe_range(std::span<const Word> v) {
  LaneFacts f;
  if (v.empty()) {
    f = LaneFacts::unknown(0);
    f.distinct = true;
    f.sorted = true;
  } else {
    Word lo = v[0];
    Word hi = v[0];
    bool sorted = true;
    bool strict = true;
    for (std::size_t i = 0; i < v.size(); ++i) {
      const Word x = v[i];
      lo = std::min(lo, x);
      hi = std::max(hi, x);
      if (i > 0) {
        if (x < v[i - 1]) sorted = false;
        if (x <= v[i - 1]) strict = false;
      }
    }
    // Merge with what is already proven: the measurement adds a tight
    // interval plus whatever structure the single pass can certify
    // (non-decreasing lanes, and strictly-increasing implies distinct);
    // previously-proven structural claims survive either way.
    const LaneFacts prior = lookup(v);
    f = facts_observed(v.size(), lo, hi);
    f.distinct = prior.distinct || strict;
    f.sorted = prior.sorted || sorted;
  }
  OpNode n;
  n.op = Opcode::kObserveRange;
  n.lanes = v.size();
  n.s0 = f.has_range ? f.lo : 0;
  n.s1 = f.has_range ? f.hi : 0;
  if (opts_.record_graph && !v.empty()) n.aux.push_back(value_node(v));
  n.facts = f;
  const std::uint32_t id = record(std::move(n));
  remember(v, f, id);
}

// ---- recording hooks (non-memory) -------------------------------------------

void Analyzer::rec_gen(Opcode op, std::span<const Word> out, Word s0, Word s1) {
  LaneFacts f = op == Opcode::kIota ? facts_iota(out.size(), s0, s1)
                                    : facts_splat(out.size(), s0);
  OpNode n;
  n.op = op;
  n.lanes = out.size();
  n.s0 = s0;
  n.s1 = s1;
  n.facts = f;
  remember(out, f, record(std::move(n)));
}

void Analyzer::rec_unary(Opcode op, std::span<const Word> out,
                         std::span<const Word> in, Word s0) {
  const LaneFacts vf = lookup(in);
  LaneFacts f = LaneFacts::unknown(out.size());
  switch (op) {
    case Opcode::kCopy:
      f = facts_copy(vf);
      break;
    case Opcode::kReverse:
      f = facts_reverse(vf);
      break;
    case Opcode::kAddScalar:
      f = facts_add_scalar(vf, s0);
      break;
    case Opcode::kMulScalar:
      f = facts_mul_scalar(vf, s0);
      break;
    case Opcode::kDivScalar:
      f = facts_div_scalar(vf, s0);
      break;
    case Opcode::kModScalar:
      f = facts_mod_scalar(vf, s0);
      break;
    case Opcode::kAndScalar:
      f = facts_and_scalar(vf, s0);
      break;
    case Opcode::kOrScalar:
      f = facts_or_scalar(vf, s0);
      break;
    case Opcode::kShlScalar:
      f = facts_shl_scalar(vf, s0);
      break;
    case Opcode::kShrScalar:
      f = facts_shr_scalar(vf, s0);
      break;
    case Opcode::kNegate:
      f = facts_negate(vf);
      break;
    default:
      break;
  }
  OpNode n;
  n.op = op;
  if (opts_.record_graph) n.inputs.push_back(value_node(in));
  n.lanes = out.size();
  n.s0 = s0;
  n.facts = f;
  remember(out, f, record(std::move(n)));
}

void Analyzer::rec_binary(Opcode op, std::span<const Word> out,
                          std::span<const Word> a, std::span<const Word> b) {
  const LaneFacts af = lookup(a);
  const LaneFacts bf = lookup(b);
  LaneFacts f = LaneFacts::unknown(out.size());
  switch (op) {
    case Opcode::kAdd:
      f = facts_add(af, bf);
      break;
    case Opcode::kSub:
      f = facts_sub(af, bf);
      break;
    case Opcode::kMul:
      f = facts_mul(af, bf);
      break;
    default:
      break;
  }
  OpNode n;
  n.op = op;
  if (opts_.record_graph) {
    n.inputs.push_back(value_node(a));
    n.inputs.push_back(value_node(b));
  }
  n.lanes = out.size();
  n.facts = f;
  remember(out, f, record(std::move(n)));
}

void Analyzer::rec_cmp(Opcode op, std::span<const std::uint8_t> out,
                       std::span<const Word> a, std::span<const Word> b,
                       Word s0) {
  std::uint32_t id = kNoNode;
  if (opts_.record_graph) {
    OpNode n;
    n.op = op;
    n.inputs.push_back(value_node(a));
    if (!b.empty()) n.inputs.push_back(value_node(b));
    n.lanes = out.size();
    n.s0 = s0;
    id = record(std::move(n));
  }
  remember_mask(out, id);
}

void Analyzer::rec_mask2(Opcode op, std::span<const std::uint8_t> out,
                         std::span<const std::uint8_t> a,
                         std::span<const std::uint8_t> b) {
  std::uint32_t id = kNoNode;
  if (opts_.record_graph) {
    OpNode n;
    n.op = op;
    n.inputs.push_back(mask_node(a));
    if (!b.empty()) n.inputs.push_back(mask_node(b));
    n.lanes = out.size();
    id = record(std::move(n));
  }
  remember_mask(out, id);
}

void Analyzer::rec_reduce(Opcode op, std::span<const Word> in) {
  if (!opts_.record_graph) return;
  OpNode n;
  n.op = op;
  n.inputs.push_back(value_node(in));
  n.lanes = in.size();
  record(std::move(n));
}

void Analyzer::rec_count_true(std::span<const std::uint8_t> m) {
  if (!opts_.record_graph) return;
  OpNode n;
  n.op = Opcode::kCountTrue;
  n.inputs.push_back(mask_node(m));
  n.lanes = m.size();
  record(std::move(n));
}

void Analyzer::rec_compress(std::span<const Word> out, std::span<const Word> in,
                            std::span<const std::uint8_t> m) {
  const LaneFacts f = facts_subset(lookup(in), out.size());
  OpNode n;
  n.op = Opcode::kCompress;
  if (opts_.record_graph) {
    n.inputs.push_back(value_node(in));
    n.inputs.push_back(mask_node(m));
  }
  n.lanes = out.size();
  n.facts = f;
  remember(out, f, record(std::move(n)));
}

void Analyzer::rec_partition(std::span<const Word> kept,
                             std::span<const Word> rejected,
                             std::span<const Word> in,
                             std::span<const std::uint8_t> m) {
  const LaneFacts inf = lookup(in);
  std::uint32_t in_node = kNoNode;
  std::uint32_t m_node = kNoNode;
  if (opts_.record_graph) {
    in_node = value_node(in);
    m_node = mask_node(m);
  }
  const LaneFacts kf = facts_subset(inf, kept.size());
  OpNode kn;
  kn.op = Opcode::kPartitionKept;
  if (opts_.record_graph) kn.inputs = {in_node, m_node};
  kn.lanes = kept.size();
  kn.facts = kf;
  remember(kept, kf, record(std::move(kn)));

  const LaneFacts rf = facts_subset(inf, rejected.size());
  OpNode rn;
  rn.op = Opcode::kPartitionRejected;
  if (opts_.record_graph) rn.inputs = {in_node, m_node};
  rn.lanes = rejected.size();
  rn.facts = rf;
  remember(rejected, rf, record(std::move(rn)));
}

void Analyzer::rec_select(std::span<const Word> out,
                          std::span<const std::uint8_t> m,
                          std::span<const Word> a, std::span<const Word> b) {
  const LaneFacts f = facts_select(lookup(a), lookup(b), out.size());
  OpNode n;
  n.op = Opcode::kSelect;
  if (opts_.record_graph) {
    n.inputs.push_back(value_node(a));
    n.inputs.push_back(value_node(b));
    n.inputs.push_back(mask_node(m));
  }
  n.lanes = out.size();
  n.facts = f;
  remember(out, f, record(std::move(n)));
}

void Analyzer::rec_from_mask(std::span<const Word> out,
                             std::span<const std::uint8_t> m) {
  const LaneFacts f = facts_from_mask(out.size());
  OpNode n;
  n.op = Opcode::kFromMask;
  if (opts_.record_graph) n.inputs.push_back(mask_node(m));
  n.lanes = out.size();
  n.facts = f;
  remember(out, f, record(std::move(n)));
}

// ---- contiguous memory ------------------------------------------------------

void Analyzer::rec_load(Opcode op, std::span<const Word> out,
                        std::span<const Word> table) {
  const LaneFacts f = LaneFacts::unknown(out.size());
  OpNode n;
  n.op = op;
  n.lanes = out.size();
  n.region = region_of(table);
  n.table_size = table.size();
  n.facts = f;
  remember(out, f, record(std::move(n)));
}

void Analyzer::rec_store(Opcode op, std::span<const Word> table,
                         const Word* dst, std::size_t n, std::size_t stride) {
  if (n > 0 && stride > 0) {
    const Word* end = dst + (n - 1) * stride + 1;
    // The runtime erases its per-address clobber and window-write marks on
    // overwrite; a unit-stride store provably covers the whole range.
    const bool full = stride == 1;
    clear_clobber(dst, end, full);
    for (Win& w : windows_) {
      std::vector<ClobSpan> out;
      out.reserve(w.writes.size());
      for (const ClobSpan& s : w.writes) {
        if (s.hi <= dst || s.lo >= end) {
          out.push_back(s);
          continue;
        }
        if (!full) {
          ClobSpan weak = s;
          weak.exact = false;
          out.push_back(weak);
          continue;
        }
        if (s.lo < dst) out.push_back({s.lo, dst, s.exact});
        if (s.hi > end) out.push_back({end, s.hi, s.exact});
      }
      w.writes = std::move(out);
    }
    invalidate(dst, end);
  }
  OpNode node;
  node.op = op;
  node.lanes = n;
  node.s0 = static_cast<Word>(dst - table.data());
  node.s1 = static_cast<Word>(stride);
  node.region = region_of(table);
  node.table_size = table.size();
  const Win* w = covering_window(table);
  node.window = w != nullptr ? w->kind : WindowCtx::kNone;
  record(std::move(node));
}

void Analyzer::rec_scalar_store(std::span<const Word> table, std::size_t pos) {
  if (pos < table.size()) {
    const Word* p = table.data() + pos;
    // A single-address overwrite: weaken (never remove — exactness of the
    // remaining addresses is unaffected but we track spans, not addresses).
    clear_clobber(p, p + 1, false);
    invalidate(p, p + 1);
  }
  OpNode n;
  n.op = Opcode::kScalarStore;
  n.lanes = 1;
  n.s0 = static_cast<Word>(pos);
  n.region = region_of(table);
  n.table_size = table.size();
  record(std::move(n));
}

// ---- list-vector memory -----------------------------------------------------

OpVerdicts Analyzer::classify_gather(std::span<const Word> table,
                                     std::span<const Word> idx, bool masked) {
  OpVerdicts v;
  const LaneFacts idxf = lookup(idx);
  v[HazardClass::kBounds] = judge_bounds(idxf, table.size(), masked);
  const Win* w = covering_window(table);
  v[HazardClass::kClobber] =
      judge_read_clobber(idxf, w != nullptr, clobber_overlap(table, idxf));
  v[HazardClass::kLifetime] = combine_lifetime({table, idx}, line_);
  count_mem(v, false);
  return v;
}

OpVerdicts Analyzer::classify_scatter(std::span<const Word> table,
                                      std::span<const Word> idx,
                                      std::span<const Word> vals, bool masked,
                                      bool ordered) {
  OpVerdicts v;
  const LaneFacts idxf = lookup(idx);
  const LaneFacts valsf = lookup(vals);
  v[HazardClass::kBounds] = judge_bounds(idxf, table.size(), masked);
  const Win* w = covering_window(table);
  v[HazardClass::kOverlap] = judge_scatter_overlap(
      idxf, valsf, w != nullptr ? w->kind : WindowCtx::kNone, masked, ordered);
  v[HazardClass::kLifetime] = combine_lifetime({table, idx, vals}, line_);
  count_mem(v, true);
  return v;
}

OpVerdicts Analyzer::classify_sge(std::span<const Word> table,
                                  std::span<const Word> idx,
                                  std::span<const Word> vals, bool masked) {
  OpVerdicts v;
  const LaneFacts idxf = lookup(idx);
  const LaneFacts valsf = lookup(vals);
  // The readback pass checks EVERY lane's index regardless of the mask, so
  // bounds are judged unmasked: a tight out-of-range endpoint will throw.
  v[HazardClass::kBounds] = judge_bounds(idxf, table.size(), false);
  const Win* w = covering_window(table);
  v[HazardClass::kOverlap] = judge_scatter_overlap(
      idxf, valsf, w != nullptr ? w->kind : WindowCtx::kNone, masked, false);
  if (masked) {
    // Inactive readback lanes touch addresses the scatter did not just
    // write, so the clobber scan applies to them (when outside a window).
    v[HazardClass::kClobber] =
        judge_read_clobber(idxf, w != nullptr, clobber_overlap(table, idxf));
  }
  v[HazardClass::kLifetime] = combine_lifetime({table, idx, vals}, line_);
  count_mem(v, true);
  return v;
}

void Analyzer::rec_gather(std::span<const Word> out, std::span<const Word> table,
                          std::span<const Word> idx,
                          std::span<const std::uint8_t> mask,
                          const OpVerdicts& v, bool elided) {
  const LaneFacts idxf = lookup(idx);
  const LaneFacts f = LaneFacts::unknown(out.size());
  OpNode n;
  n.op = Opcode::kGather;
  if (opts_.record_graph) {
    n.inputs.push_back(value_node(idx));
    if (!mask.empty()) n.inputs.push_back(mask_node(mask));
  }
  n.lanes = idx.size();
  n.region = region_of(table);
  n.table_size = table.size();
  n.masked = !mask.empty();
  n.elided = elided;
  const Win* w = covering_window(table);
  n.window = w != nullptr ? w->kind : WindowCtx::kNone;
  n.facts = f;
  n.verdicts = v;
  const std::uint32_t id = record(std::move(n));
  report_hazards("gather", v, idxf, table.size(), id);
  remember(out, f, id);
}

void Analyzer::rec_scatter(std::span<const Word> table,
                           std::span<const Word> idx,
                           std::span<const Word> vals,
                           std::span<const std::uint8_t> mask, bool ordered,
                           const OpVerdicts& v, bool elided, bool executed) {
  const LaneFacts idxf = lookup(idx);
  OpNode n;
  n.op = ordered ? Opcode::kScatterOrdered : Opcode::kScatter;
  if (opts_.record_graph) {
    n.inputs.push_back(value_node(idx));
    n.inputs.push_back(value_node(vals));
    if (!mask.empty()) n.inputs.push_back(mask_node(mask));
  }
  n.lanes = idx.size();
  n.region = region_of(table);
  n.table_size = table.size();
  n.masked = !mask.empty();
  n.ordered = ordered;
  n.elided = elided;
  const Win* w = covering_window(table);
  n.window = w != nullptr ? w->kind : WindowCtx::kNone;
  n.verdicts = v;
  const std::uint32_t id = record(std::move(n));
  report_hazards(ordered ? "scatter_ordered" : "scatter", v, idxf, table.size(),
                 id);
  if (!executed) return;
  const Footprint fp = footprint(table, idxf);
  // The runtime erases stale clobber marks at rewritten addresses whether or
  // not a window is open; mirror it so proofs never outlive the marks.
  clear_clobber(fp.b, fp.e, mask.empty() && idxf.covers_range());
  book_window_write(table, idxf, !mask.empty());
  invalidate(fp.b, fp.e);
}

void Analyzer::rec_sge(std::span<const std::uint8_t> out,
                       std::span<const Word> table, std::span<const Word> idx,
                       std::span<const Word> vals,
                       std::span<const std::uint8_t> mask, const OpVerdicts& v,
                       bool elided, bool executed) {
  const LaneFacts idxf = lookup(idx);
  OpNode n;
  n.op = Opcode::kScatterGatherEq;
  if (opts_.record_graph) {
    n.inputs.push_back(value_node(idx));
    n.inputs.push_back(value_node(vals));
    if (!mask.empty()) n.inputs.push_back(mask_node(mask));
  }
  n.lanes = idx.size();
  n.region = region_of(table);
  n.table_size = table.size();
  n.masked = !mask.empty();
  n.elided = elided;
  const Win* w = covering_window(table);
  n.window = w != nullptr ? w->kind : WindowCtx::kNone;
  n.verdicts = v;
  const std::uint32_t id = record(std::move(n));
  report_hazards("scatter_gather_eq", v, idxf, table.size(), id);
  remember_mask(out, id);
  if (!executed) return;
  const Footprint fp = footprint(table, idxf);
  clear_clobber(fp.b, fp.e, mask.empty() && idxf.covers_range());
  book_window_write(table, idxf, !mask.empty());
  invalidate(fp.b, fp.e);
}

bool Analyzer::proven_index_range(std::span<const Word> idx,
                                  std::size_t table_size, Word* lo, Word* hi,
                                  bool* exact) const {
  const LaneFacts f = lookup(idx);
  if (f.lanes == 0) {
    *lo = 0;
    *hi = -1;
    *exact = false;
    return true;
  }
  if (!f.has_range || f.lo < 0 ||
      static_cast<std::uint64_t>(f.hi) >= table_size) {
    return false;
  }
  *lo = f.lo;
  *hi = f.hi;
  *exact = f.covers_range();
  return true;
}

// ---- environment events -----------------------------------------------------

void Analyzer::on_window_open(std::span<const Word> table, WindowCtx kind,
                              const char* label) {
  (void)label;
  windows_.push_back(Win{table.data(), table.data() + table.size(), kind, {}});
  OpNode n;
  n.op = Opcode::kWindowOpen;
  n.region = region_of(table);
  n.table_size = table.size();
  n.window = kind;
  record(std::move(n));
}

void Analyzer::on_window_close() {
  if (windows_.empty()) return;
  Win w = std::move(windows_.back());
  windows_.pop_back();
  if (w.kind == WindowCtx::kLabelRound) {
    // Closing a label round marks its writes as stale-label clobber spans.
    for (const ClobSpan& s : w.writes) clobbered_.push_back(s);
    if (clobbered_.size() > kMaxClobberSpans) {
      const Word* lo = clobbered_.front().lo;
      const Word* hi = clobbered_.front().hi;
      for (const ClobSpan& s : clobbered_) {
        lo = std::min(lo, s.lo);
        hi = std::max(hi, s.hi);
      }
      clobbered_.assign(1, ClobSpan{lo, hi, false});
    }
  }
  OpNode n;
  n.op = Opcode::kWindowClose;
  n.window = w.kind;
  record(std::move(n));
}

void Analyzer::on_buffer_release(const Word* base, std::size_t words) {
  if (base == nullptr || words == 0) return;
  const Word* end = base + words;
  OpNode n;
  n.op = Opcode::kBufferRelease;
  n.lanes = words;
  if (opts_.record_graph) {
    // Name the values whose storage dies: fully contained ones in `inputs`,
    // partially overlapping ones in `aux`.
    for (const auto& [vb, ent] : values_) {
      const Word* ve = vb + ent.len;
      if (ve <= base || vb >= end) continue;
      if (ent.node != kNoNode) {
        if (vb >= base && ve <= end) {
          n.inputs.push_back(ent.node);
        } else {
          n.aux.push_back(ent.node);
        }
      }
    }
  }
  record(std::move(n));
  invalidate(base, end);
  released_.push_back(Released{base, end});
  if (released_.size() > kMaxReleasedRanges) {
    released_.erase(released_.begin(),
                    released_.begin() +
                        static_cast<std::ptrdiff_t>(kMaxReleasedRanges / 2));
  }
}

void Analyzer::on_buffer_acquire(const Word* base, std::size_t words) {
  if (base == nullptr || words == 0) return;
  const Word* end = base + words;
  released_.erase(std::remove_if(released_.begin(), released_.end(),
                                 [&](const Released& r) {
                                   return r.begin < end && r.end > base;
                                 }),
                  released_.end());
  invalidate(base, end);
}

void Analyzer::on_buffer_freed(const Word* base, std::size_t words) {
  on_buffer_acquire(base, words);
}

void Analyzer::on_retire_work(std::span<const Word> region) {
  clear_clobber(region.data(), region.data() + region.size(), true);
  OpNode n;
  n.op = Opcode::kRetireWork;
  n.region = region_of(region);
  n.table_size = region.size();
  record(std::move(n));
}

}  // namespace folvec::analysis
