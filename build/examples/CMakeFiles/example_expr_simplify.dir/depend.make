# Empty dependencies file for example_expr_simplify.
# This may be replaced when dependencies are built.
