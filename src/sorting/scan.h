// Vectorized inclusive prefix sum, used by the distribution counting sort.
//
// Pipelined vector machines have no scan instruction, so the classic
// two-level blocking scheme is used: view the buffer as B contiguous blocks
// of length L, run all B block-local scans simultaneously with B-wide
// strided vector operations (one row of every block per step), scan the B
// block totals on the scalar unit, then add each block's offset back with
// another sweep of B-wide vector adds. Total vector work is ~6R elements
// and 3L+O(1) instruction startups; the scalar residue is O(B + R mod B).
#pragma once

#include <span>

#include "vm/machine.h"

namespace folvec::sorting {

/// In-place inclusive prefix sum of `buf` on the machine.
void inclusive_scan_vector(vm::VectorMachine& m, std::span<vm::Word> buf);

/// In-place inclusive prefix sum on the scalar unit (baseline).
void inclusive_scan_scalar(std::span<vm::Word> buf,
                           vm::CostAccumulator* cost = nullptr);

}  // namespace folvec::sorting
