// bench_trend: renders the BENCH_*.json trajectory and gates drift.
//
// The repo has accumulated schema-versioned bench reports since PR 3, but
// nothing consumed them across PRs — a perf regression only failed CI if a
// hand-written golden happened to cover it. This tool reads a *history
// directory* of committed reports (bench/trend_history/, one file per
// bench per recorded run, ordered by filename) plus the current run's
// reports, renders a per-bench trend table of the deterministic note
// values and the chime/wall totals, and — with --check — fails when a
// numeric note drifts from the most recent history entry by more than a
// configurable threshold.
//
// What gets gated: numeric notes whose key does not contain "wall" or
// "seconds". Those are the modeled, deterministic values (chime totals,
// chime ratios, modeled accelerations) that must reproduce bit-for-bit on
// any host, so the default --max-drift is tight. Wall-flavored notes and
// the report's wall.seconds are rendered in the table but gated only when
// --max-wall-drift is given (host timing is too noisy for a default gate).
// The report-level chime totals are rendered but not gated: benchmark
// harnesses (google-benchmark) choose iteration counts adaptively, so
// machine-op totals vary run to run even though each note is stable.
//
// History layout: any *.json files under --history (searched recursively);
// each must be a folvec-bench-report document with "bench" and "notes".
// Files sort lexicographically, so a `0001-BENCH_x.json`, `0002-...`
// naming convention gives chronological order. Append the current run's
// reports (CI does this into its artifact copy) and commit deliberately to
// advance the baseline.
//
// Usage:
//   bench_trend [--check] [--history DIR] [--max-drift F]
//               [--max-wall-drift F] BENCH_report.json...
//
// Exits 0 when every gated note is within threshold (or --check is off),
// 1 on drift violations, 2 on usage/IO errors.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "support/json.h"

namespace {

using folvec::JsonValue;

struct HistoryEntry {
  std::string path;
  JsonValue report;
};

std::optional<JsonValue> load_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_trend: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  try {
    return JsonValue::parse(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_trend: %s: invalid JSON: %s\n", path.c_str(),
                 e.what());
    return std::nullopt;
  }
}

std::string bench_name(const JsonValue& report) {
  const JsonValue* bench = report.find("bench");
  return bench != nullptr && bench->is_string() ? bench->as_string()
                                                : std::string();
}

/// A note key is wall-flavored when it names measured host time; those are
/// only gated under the (off-by-default) --max-wall-drift threshold.
bool is_wall_key(const std::string& key) {
  return key.find("wall") != std::string::npos ||
         key.find("seconds") != std::string::npos;
}

std::optional<double> find_number(const JsonValue& report,
                                  const char* section, const char* key) {
  const JsonValue* s = report.find(section);
  if (s == nullptr) return std::nullopt;
  const JsonValue* v = s->find(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  return v->as_number();
}

std::map<std::string, double> numeric_notes(const JsonValue& report) {
  std::map<std::string, double> out;
  const JsonValue* notes = report.find("notes");
  if (notes == nullptr || !notes->is_object()) return out;
  for (const auto& [key, value] : notes->as_object()) {
    if (value.is_number()) out.emplace(key, value.as_number());
  }
  return out;
}

std::string format_value(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// " 123 -> 124 -> 125" over the last `limit` history points + current.
std::string render_series(const std::vector<double>& history, double current,
                          std::size_t limit) {
  std::string out;
  const std::size_t start = history.size() > limit ? history.size() - limit : 0;
  for (std::size_t i = start; i < history.size(); ++i) {
    out += format_value(history[i]);
    out += " -> ";
  }
  out += format_value(current);
  return out;
}

struct Options {
  bool check = false;
  std::string history_dir;
  double max_drift = 0.02;
  double max_wall_drift = -1.0;  // < 0: wall notes not gated
  std::vector<std::string> reports;
};

/// Relative drift of `cur` against `prev`, symmetric-free (plain relative
/// change against the baseline magnitude, with an epsilon for zero).
double rel_drift(double prev, double cur) {
  const double base = std::fabs(prev);
  return std::fabs(cur - prev) / (base > 1e-12 ? base : 1e-12);
}

int run(const Options& opt) {
  // Load history, grouped by bench name, in filename order.
  std::map<std::string, std::vector<HistoryEntry>> history;
  if (!opt.history_dir.empty()) {
    std::error_code ec;
    std::vector<std::string> paths;
    for (std::filesystem::recursive_directory_iterator
             it(opt.history_dir, ec),
         end;
         it != end && !ec; it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      if (it->path().extension() != ".json") continue;
      paths.push_back(it->path().string());
    }
    if (ec) {
      std::fprintf(stderr, "bench_trend: cannot read history dir %s: %s\n",
                   opt.history_dir.c_str(), ec.message().c_str());
      return 2;
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string& p : paths) {
      std::optional<JsonValue> doc = load_json(p);
      if (!doc) return 2;
      const std::string name = bench_name(*doc);
      if (name.empty()) {
        std::fprintf(stderr, "bench_trend: %s has no bench name\n", p.c_str());
        return 2;
      }
      history[name].push_back(HistoryEntry{p, std::move(*doc)});
    }
  }

  int violations = 0;
  for (const std::string& path : opt.reports) {
    std::optional<JsonValue> doc = load_json(path);
    if (!doc) return 2;
    const std::string name = bench_name(*doc);
    if (name.empty()) {
      std::fprintf(stderr, "bench_trend: %s has no bench name\n",
                   path.c_str());
      return 2;
    }
    const auto hist_it = history.find(name);
    if (hist_it == history.end()) {
      std::printf("new     %s: no history for bench \"%s\" (baseline "
                  "candidate)\n",
                  path.c_str(), name.c_str());
      continue;
    }
    const std::vector<HistoryEntry>& entries = hist_it->second;
    std::printf("bench   %s  (%zu history point%s, baseline %s)\n",
                name.c_str(), entries.size(),
                entries.size() == 1 ? "" : "s",
                entries.back().path.c_str());

    // Headline rows: chime totals + wall seconds (informational only).
    for (const auto& [section, key] :
         std::initializer_list<std::pair<const char*, const char*>>{
             {"chime", "instructions"},
             {"chime", "elements"},
             {"wall", "seconds"}}) {
      const std::optional<double> cur = find_number(*doc, section, key);
      if (!cur) continue;
      std::vector<double> series;
      for (const HistoryEntry& e : entries) {
        if (const std::optional<double> v = find_number(e.report, section, key)) {
          series.push_back(*v);
        }
      }
      std::printf("  info  %s.%s: %s\n", section, key,
                  render_series(series, *cur, 5).c_str());
    }

    // Note rows: gated when numeric, shared with the baseline, and within
    // the deterministic (non-wall) family — or wall with an explicit gate.
    const std::map<std::string, double> cur_notes = numeric_notes(*doc);
    const std::map<std::string, double> base_notes =
        numeric_notes(entries.back().report);
    for (const auto& [key, cur] : cur_notes) {
      std::vector<double> series;
      for (const HistoryEntry& e : entries) {
        const std::map<std::string, double> notes = numeric_notes(e.report);
        const auto it = notes.find(key);
        if (it != notes.end()) series.push_back(it->second);
      }
      const auto base = base_notes.find(key);
      if (base == base_notes.end()) {
        std::printf("  new   %s: %s\n", key.c_str(),
                    format_value(cur).c_str());
        continue;
      }
      const bool wall = is_wall_key(key);
      const double threshold = wall ? opt.max_wall_drift : opt.max_drift;
      const double drift = rel_drift(base->second, cur);
      const bool gated = opt.check && threshold >= 0.0;
      const bool bad = gated && drift > threshold;
      std::printf("  %s %s: %s  (drift %+.2f%%%s)\n",
                  bad      ? "FAIL "
                  : gated  ? "ok   "
                             : "info ",
                  key.c_str(), render_series(series, cur, 5).c_str(),
                  (cur >= base->second ? 1.0 : -1.0) * drift * 100.0,
                  gated ? "" : wall ? ", wall: not gated" : "");
      if (bad) ++violations;
    }
  }
  if (violations > 0) {
    std::printf("%d trend drift violation(s) — regenerate the history "
                "baseline deliberately if the change is intended\n",
                violations);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      opt.check = true;
    } else if (arg == "--history" && i + 1 < argc) {
      opt.history_dir = argv[++i];
    } else if (arg == "--max-drift" && i + 1 < argc) {
      opt.max_drift = std::atof(argv[++i]);
    } else if (arg == "--max-wall-drift" && i + 1 < argc) {
      opt.max_wall_drift = std::atof(argv[++i]);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bench_trend: unknown option %s\n", arg.c_str());
      return 2;
    } else {
      break;
    }
  }
  for (; i < argc; ++i) opt.reports.push_back(argv[i]);
  if (opt.reports.empty()) {
    std::fprintf(
        stderr,
        "usage: %s [--check] [--history DIR] [--max-drift F]\n"
        "       [--max-wall-drift F] BENCH_report.json...\n"
        "renders bench-report trend tables against a history directory;\n"
        "--check fails on deterministic-note drift beyond --max-drift\n"
        "(default 0.02); wall-flavored notes are gated only when\n"
        "--max-wall-drift is given\n",
        argv[0]);
    return 2;
  }
  return run(opt);
}
