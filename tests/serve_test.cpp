// Differential tests for the serving layer (src/serve/).
//
// The pivotal claim: a ShardedMap — any shard count, any backend, any
// worker count — is observationally identical to one reference
// VectorHashMap driven serially. Sharding, Bloom short-circuits, and the
// batch server's run splitting are all pure execution strategy; the
// key-value semantics (including last-lane-wins on duplicates) must not
// move by a bit.
#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "hashing/hash_map.h"
#include "serve/bloom.h"
#include "serve/coalescer.h"
#include "serve/request_queue.h"
#include "serve/server.h"
#include "serve/sharded_map.h"
#include "support/prng.h"
#include "vm/machine.h"

namespace folvec::serve {
namespace {

using vm::BackendKind;
using vm::MachineConfig;
using vm::Word;
using vm::WordVec;

MachineConfig backend_config(BackendKind kind, std::size_t workers) {
  MachineConfig cfg;
  cfg.backend = kind;
  cfg.backend_threads = workers;
  // Serve batches shard into short sub-batches; drop the grain so the
  // parallel backends actually split them instead of degenerating to the
  // serial path.
  cfg.backend_grain = 8;
  cfg.audit = false;  // audit pins parallel to serial; we want the real path
  return cfg;
}

/// One deterministic mixed workload: phases of upserts (with duplicate
/// keys), lookups (hit + miss mix), erases, and re-upserts of erased keys.
struct WorkloadOp {
  OpKind op;
  Word key;
  Word value;
};

std::vector<WorkloadOp> make_workload(std::uint64_t seed, std::size_t n) {
  Xoshiro256 rng(seed);
  std::vector<WorkloadOp> ops;
  ops.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double roll = rng.unit();
    // Small key range on purpose: duplicates within a batch and
    // upsert-after-erase churn are the interesting cases.
    const Word key = static_cast<Word>(rng.below(400));
    if (roll < 0.5) {
      ops.push_back({OpKind::kUpsert, key, static_cast<Word>(rng.below(1u << 20))});
    } else if (roll < 0.85) {
      // Half the probes target a disjoint range: guaranteed misses, the
      // Bloom filter's bread and butter.
      const Word probe = rng.unit() < 0.5 ? key : key + 100000;
      ops.push_back({OpKind::kLookup, probe, 0});
    } else {
      ops.push_back({OpKind::kErase, key, 0});
    }
  }
  return ops;
}

/// Applies the workload to a single serial VectorHashMap, batch by batch
/// with the same same-op run splitting the server uses — the semantic
/// reference every configuration must match.
class ReferenceMap {
 public:
  ReferenceMap() : machine_(backend_config(BackendKind::kSerial, 1)), map_(64) {}

  void upsert(std::span<const Word> keys, std::span<const Word> values) {
    map_.upsert_batch(machine_, keys, values);
  }
  WordVec lookup(std::span<const Word> keys) {
    return map_.lookup_batch(machine_, keys, kAbsent);
  }
  std::size_t erase(std::span<const Word> keys) {
    return map_.erase_batch(machine_, keys);
  }
  std::size_t size() const { return map_.size(); }
  WordVec live_keys() { return map_.live_keys(machine_); }

 private:
  vm::VectorMachine machine_;
  hashing::VectorHashMap map_;
};

/// Drives `sharded` and the reference through the workload in identical
/// batches of `batch_size` and asserts every observable matches.
void run_differential(ShardedMap& sharded, std::uint64_t seed,
                      std::size_t n_ops, std::size_t batch_size) {
  ReferenceMap reference;
  const std::vector<WorkloadOp> ops = make_workload(seed, n_ops);

  for (std::size_t base = 0; base < ops.size(); base += batch_size) {
    const std::size_t end = std::min(ops.size(), base + batch_size);
    std::size_t i = base;
    while (i < end) {
      std::size_t j = i;
      while (j < end && ops[j].op == ops[i].op) ++j;
      WordVec keys;
      keys.reserve(j - i);
      for (std::size_t k = i; k < j; ++k) keys.push_back(ops[k].key);
      switch (ops[i].op) {
        case OpKind::kUpsert: {
          WordVec vals;
          vals.reserve(j - i);
          for (std::size_t k = i; k < j; ++k) vals.push_back(ops[k].value);
          sharded.upsert_batch(keys, vals);
          reference.upsert(keys, vals);
          break;
        }
        case OpKind::kLookup: {
          const WordVec got = sharded.lookup_batch(keys, kAbsent);
          const WordVec want = reference.lookup(keys);
          ASSERT_EQ(got, want) << "lookup batch at op " << i;
          break;
        }
        case OpKind::kErase: {
          const std::size_t got = sharded.erase_batch(keys);
          const std::size_t want = reference.erase(keys);
          ASSERT_EQ(got, want) << "erase batch at op " << i;
          break;
        }
      }
      i = j;
    }
    ASSERT_EQ(sharded.size(), reference.size()) << "size after op " << end;
  }

  // Final digest: every key either map might know about, compared lanewise.
  WordVec all_keys;
  for (Word k = 0; k < 400; ++k) all_keys.push_back(k);
  for (Word k = 100000; k < 100400; ++k) all_keys.push_back(k);
  EXPECT_EQ(sharded.lookup_batch(all_keys, kAbsent), reference.lookup(all_keys));
}

// ---- ShardedMap vs reference, across the full backend matrix ---------------

struct DiffParam {
  BackendKind backend;
  std::size_t workers;
  std::size_t shards;
};

std::string param_name(const testing::TestParamInfo<DiffParam>& info) {
  const char* backend = nullptr;
  switch (info.param.backend) {
    case BackendKind::kSerial: backend = "serial"; break;
    case BackendKind::kParallel: backend = "parallel"; break;
    case BackendKind::kSimd: backend = "simd"; break;
    case BackendKind::kParallelSimd: backend = "parallel_simd"; break;
  }
  return std::string(backend) + "_w" + std::to_string(info.param.workers) +
         "_s" + std::to_string(info.param.shards);
}

class ShardedDiffTest : public testing::TestWithParam<DiffParam> {};

TEST_P(ShardedDiffTest, MatchesReferenceMap) {
  ShardedMapConfig cfg;
  cfg.shards = GetParam().shards;
  cfg.machine = backend_config(GetParam().backend, GetParam().workers);
  ShardedMap sharded(cfg);
  run_differential(sharded, /*seed=*/41, /*n_ops=*/3000, /*batch_size=*/64);
}

TEST_P(ShardedDiffTest, MatchesReferenceWithBloomDisabled) {
  ShardedMapConfig cfg;
  cfg.shards = GetParam().shards;
  cfg.bloom = false;
  cfg.machine = backend_config(GetParam().backend, GetParam().workers);
  ShardedMap sharded(cfg);
  run_differential(sharded, /*seed=*/43, /*n_ops=*/1500, /*batch_size=*/48);
  EXPECT_EQ(sharded.bloom_skips(), 0u);
}

std::vector<DiffParam> diff_params() {
  std::vector<DiffParam> params;
  for (const BackendKind backend :
       {BackendKind::kSerial, BackendKind::kParallel, BackendKind::kSimd,
        BackendKind::kParallelSimd}) {
    const bool pooled = backend == BackendKind::kParallel ||
                        backend == BackendKind::kParallelSimd;
    for (const std::size_t workers :
         pooled ? std::vector<std::size_t>{1, 2, 8}
                : std::vector<std::size_t>{1}) {
      for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                       std::size_t{8}}) {
        params.push_back({backend, workers, shards});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ShardedDiffTest,
                         testing::ValuesIn(diff_params()), param_name);

// ---- Bloom filter semantics ------------------------------------------------

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bloom(256, 10);
  Xoshiro256 rng(7);
  std::vector<Word> keys;
  for (int i = 0; i < 256; ++i) keys.push_back(static_cast<Word>(rng.next() >> 1));
  bloom.insert_all(keys);
  for (const Word k : keys) EXPECT_TRUE(bloom.may_contain(k));
}

TEST(BloomFilterTest, FalsePositiveRateIsSmallAtCapacity) {
  BloomFilter bloom(1000, 10);
  for (Word k = 0; k < 1000; ++k) bloom.insert(k);
  std::size_t positives = 0;
  const std::size_t probes = 20000;
  for (std::size_t i = 0; i < probes; ++i) {
    if (bloom.may_contain(static_cast<Word>(1'000'000 + i))) ++positives;
  }
  // Theory says ~1% at 10 bits/key; leave generous slack for hash luck.
  EXPECT_LT(static_cast<double>(positives) / static_cast<double>(probes), 0.05);
}

TEST(BloomFilterTest, ResetDropsAllBits) {
  BloomFilter bloom(64, 10);
  for (Word k = 0; k < 64; ++k) bloom.insert(k);
  EXPECT_GT(bloom.fill_ratio(), 0.0);
  bloom.reset(128);
  EXPECT_EQ(bloom.fill_ratio(), 0.0);
  EXPECT_GE(bloom.capacity_keys(), 128u);
}

// The FALSE-POSITIVES-ONLY contract under churn: after erase-triggered
// rebuilds and upsert retries, every live key must still pass the filter.
TEST(ShardedMapBloomTest, FalsePositiveOnlyInvariantAfterEraseRebuilds) {
  ShardedMapConfig cfg;
  cfg.shards = 4;
  ShardedMap sharded(cfg);
  Xoshiro256 rng(11);

  for (int round = 0; round < 20; ++round) {
    WordVec keys, vals;
    for (int i = 0; i < 64; ++i) {
      keys.push_back(static_cast<Word>(rng.below(500)));
      vals.push_back(static_cast<Word>(rng.below(1000)));
    }
    sharded.upsert_batch(keys, vals);
    WordVec dead;
    for (int i = 0; i < 24; ++i) {
      dead.push_back(static_cast<Word>(rng.below(500)));
    }
    sharded.erase_batch(dead);

    // Invariant check against each shard's own live set.
    for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
      const BloomFilter* bloom = sharded.shard_bloom(s);
      ASSERT_NE(bloom, nullptr);
      const WordVec live =
          sharded.shard_map(s).live_keys(sharded.shard_machine(s));
      for (const Word k : live) {
        EXPECT_TRUE(bloom->may_contain(k))
            << "false negative for live key " << k << " in shard " << s;
      }
    }
  }
  EXPECT_GT(sharded.bloom_rebuilds(), 0u);
  EXPECT_GT(sharded.bloom_skips(), 0u);  // misses actually short-circuited
}

TEST(ShardedMapBloomTest, NegativeLookupsSkipTheShardMachine) {
  ShardedMapConfig cfg;
  cfg.shards = 2;
  ShardedMap sharded(cfg);
  WordVec keys{1, 2, 3, 4};
  WordVec vals{10, 20, 30, 40};
  sharded.upsert_batch(keys, vals);

  // Probing far-away keys: all absent, so (modulo Bloom false positives,
  // impossible here with 4 keys in a 640-bit filter... but allow them) the
  // skips counter moves and the answers are all-missing.
  WordVec absent;
  for (Word k = 1000; k < 1100; ++k) absent.push_back(k);
  const WordVec got = sharded.lookup_batch(absent, kAbsent);
  for (const Word v : got) EXPECT_EQ(v, kAbsent);
  EXPECT_GT(sharded.bloom_skips(), 0u);
}

// ---- Routing ---------------------------------------------------------------

TEST(ShardedMapRouteTest, RoutingIsDeterministicAndCoversShards) {
  ShardedMapConfig cfg;
  cfg.shards = 8;
  ShardedMap a(cfg), b(cfg);
  WordVec keys;
  for (Word k = 0; k < 4096; ++k) keys.push_back(k);
  const WordVec ra = a.route(keys);
  const WordVec rb = b.route(keys);
  EXPECT_EQ(ra, rb);
  std::set<Word> seen(ra.begin(), ra.end());
  EXPECT_EQ(seen.size(), 8u) << "dense key range should cover all shards";
  for (const Word s : ra) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 8);
  }
  // Spread check: the multiplicative hash should not leave any shard
  // starved on a dense range (perfect would be 512 per shard).
  std::vector<std::size_t> counts(8, 0);
  for (const Word s : ra) ++counts[static_cast<std::size_t>(s)];
  for (const std::size_t c : counts) EXPECT_GT(c, 256u);
}

// ---- RequestQueue / Coalescer ----------------------------------------------

TEST(RequestQueueTest, AssignsMonotonicIdsAndPreservesFifo) {
  RequestQueue queue;
  EXPECT_EQ(queue.push(OpKind::kUpsert, 7, 70), 1u);
  EXPECT_EQ(queue.push(OpKind::kLookup, 7, 0), 2u);
  EXPECT_EQ(queue.push(OpKind::kErase, 7, 0), 3u);
  EXPECT_EQ(queue.pending(), 3u);
  const std::vector<Request> got = queue.drain(10);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].id, 1u);
  EXPECT_EQ(got[0].op, OpKind::kUpsert);
  EXPECT_EQ(got[0].value, 70);
  EXPECT_EQ(got[2].op, OpKind::kErase);
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(RequestQueueTest, CloseRejectsPushesAndWakesWaiters) {
  RequestQueue queue;
  queue.push(OpKind::kLookup, 1, 0);
  queue.close();
  EXPECT_EQ(queue.push(OpKind::kLookup, 2, 0), 0u);
  // Pending requests still drain after close.
  const std::vector<Request> got =
      queue.wait_batch(8, std::chrono::microseconds(1000));
  ASSERT_EQ(got.size(), 1u);
  // And a closed empty queue returns immediately with nothing.
  EXPECT_TRUE(queue.wait_batch(8, std::chrono::microseconds(1000)).empty());
}

TEST(CoalescerTest, PollRespectsMaxBatch) {
  RequestQueue queue;
  for (int i = 0; i < 10; ++i) queue.push(OpKind::kLookup, i, 0);
  Coalescer coalescer(queue, {.max_batch = 4});
  EXPECT_EQ(coalescer.poll_batch().size(), 4u);
  EXPECT_EQ(coalescer.poll_batch().size(), 4u);
  EXPECT_EQ(coalescer.poll_batch().size(), 2u);
  EXPECT_TRUE(coalescer.poll_batch().empty());
  EXPECT_EQ(coalescer.batches(), 3u);
  EXPECT_EQ(coalescer.coalesced_requests(), 10u);
}

// ---- BatchServer -----------------------------------------------------------

TEST(BatchServerTest, PumpModeMatchesReference) {
  BatchServerConfig cfg;
  cfg.map.shards = 4;
  BatchServer server(cfg);
  ReferenceMap reference;

  const std::vector<WorkloadOp> ops = make_workload(17, 600);
  std::vector<std::uint64_t> lookup_ids;
  std::vector<Word> lookup_keys;
  for (const WorkloadOp& op : ops) {
    const std::uint64_t id = server.submit(op.op, op.key, op.value);
    ASSERT_NE(id, 0u);
    if (op.op == OpKind::kLookup) {
      lookup_ids.push_back(id);
      lookup_keys.push_back(op.key);
    }
  }
  server.pump_all();

  // Mirror through the reference with the same run splitting.
  std::size_t i = 0;
  while (i < ops.size()) {
    std::size_t j = i;
    while (j < ops.size() && ops[j].op == ops[i].op) ++j;
    WordVec keys;
    for (std::size_t k = i; k < j; ++k) keys.push_back(ops[k].key);
    if (ops[i].op == OpKind::kUpsert) {
      WordVec vals;
      for (std::size_t k = i; k < j; ++k) vals.push_back(ops[k].value);
      reference.upsert(keys, vals);
    } else if (ops[i].op == OpKind::kErase) {
      reference.erase(keys);
    }
    i = j;
  }

  const std::vector<Response> responses = server.take_responses();
  ASSERT_EQ(responses.size(), ops.size());
  EXPECT_EQ(server.served(), ops.size());
  EXPECT_EQ(server.map().size(), reference.size());

  // Every lookup response must agree with replaying that lookup against
  // the final reference state... which only holds for lookups of keys not
  // mutated afterwards. Instead assert the response stream is internally
  // consistent: ids unique, statuses legal, and a full post-hoc lookup
  // sweep matches the reference exactly.
  std::set<std::uint64_t> ids;
  for (const Response& r : responses) {
    EXPECT_TRUE(ids.insert(r.id).second) << "duplicate response id " << r.id;
    if (r.op != OpKind::kLookup) {
      EXPECT_EQ(r.status, ResponseStatus::kOk);
    }
  }
  WordVec sweep;
  for (Word k = 0; k < 400; ++k) sweep.push_back(k);
  EXPECT_EQ(server.map().lookup_batch(sweep, kAbsent), reference.lookup(sweep));

  // Latency sketches saw every request of their kind.
  std::uint64_t sketched = 0;
  for (std::size_t op = 0; op < kOpKindCount; ++op) {
    sketched += server.latency_us(static_cast<OpKind>(op)).count();
  }
  EXPECT_EQ(sketched, ops.size());
}

TEST(BatchServerTest, LookupResponsesCarryValuesAndMissing) {
  BatchServer server;
  server.submit(OpKind::kUpsert, 5, 555);
  server.submit(OpKind::kLookup, 5, 0);
  server.submit(OpKind::kLookup, 6, 0);
  server.submit(OpKind::kErase, 5, 0);
  server.submit(OpKind::kLookup, 5, 0);
  server.pump_all();
  const std::vector<Response> rs = server.take_responses();
  ASSERT_EQ(rs.size(), 5u);
  EXPECT_EQ(rs[1].status, ResponseStatus::kOk);
  EXPECT_EQ(rs[1].value, 555);
  EXPECT_EQ(rs[2].status, ResponseStatus::kMissing);
  EXPECT_EQ(rs[4].status, ResponseStatus::kMissing);
}

TEST(BatchServerTest, ThreadedModeServesEverything) {
  BatchServerConfig cfg;
  cfg.map.shards = 2;
  cfg.coalesce.max_batch = 32;
  cfg.coalesce.max_wait = std::chrono::microseconds(100);
  BatchServer server(cfg);
  server.start();
  const std::size_t n = 500;
  for (std::size_t i = 0; i < n; ++i) {
    server.submit(OpKind::kUpsert, static_cast<Word>(i % 100),
                  static_cast<Word>(i));
  }
  for (std::size_t i = 0; i < 100; ++i) {
    server.submit(OpKind::kLookup, static_cast<Word>(i), 0);
  }
  server.stop();
  EXPECT_EQ(server.served(), n + 100);
  EXPECT_EQ(server.take_responses().size(), n + 100);
  EXPECT_EQ(server.map().size(), 100u);
}

TEST(BatchServerTest, RejectsUpsertOfTheAbsentSentinel) {
  BatchServer server;
  EXPECT_THROW(server.submit(OpKind::kUpsert, 1, kAbsent), std::exception);
}

}  // namespace
}  // namespace folvec::serve
