file(REMOVE_RECURSE
  "CMakeFiles/folvec_hashing.dir/chain_table.cpp.o"
  "CMakeFiles/folvec_hashing.dir/chain_table.cpp.o.d"
  "CMakeFiles/folvec_hashing.dir/hash_map.cpp.o"
  "CMakeFiles/folvec_hashing.dir/hash_map.cpp.o.d"
  "CMakeFiles/folvec_hashing.dir/open_table.cpp.o"
  "CMakeFiles/folvec_hashing.dir/open_table.cpp.o.d"
  "libfolvec_hashing.a"
  "libfolvec_hashing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/folvec_hashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
