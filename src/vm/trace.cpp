#include "vm/trace.h"

#include <sstream>

namespace folvec::vm {

std::size_t TraceSink::count(OpClass c) const {
  std::size_t n = 0;
  for (const auto& e : entries_) n += (e.op == c) ? 1u : 0u;
  return n;
}

std::size_t TraceSink::max_length(OpClass c) const {
  std::size_t best = 0;
  for (const auto& e : entries_) {
    if (e.op == c && e.elements > best) best = e.elements;
  }
  return best;
}

std::string TraceSink::to_string(std::size_t max_entries) const {
  std::ostringstream os;
  std::size_t shown = 0;
  for (const auto& e : entries_) {
    if (shown == max_entries) {
      os << "... (+" << entries_.size() - shown << " more)";
      break;
    }
    if (shown != 0) os << ' ';
    os << op_class_name(e.op) << '[' << e.elements << ']';
    ++shown;
  }
  return os.str();
}

}  // namespace folvec::vm
