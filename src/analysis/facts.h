// Abstract lane domains for the static hazard verifier.
//
// LaneFacts is what the analyzer knows about every lane of one vector value
// without looking at the lanes: a value interval [lo, hi] (optionally
// "tight", meaning both endpoints are attained by some lane), pairwise
// distinctness, and sortedness (non-decreasing lane order). distinct+sorted
// together mean strictly increasing, which is why no separate monotonicity
// flag is tracked: every transfer function that preserves the pair preserves
// strict monotonicity for free.
//
// The transfer functions below mirror the VectorMachine primitives exactly
// (iota/splat/copy/arith/compress/partition/select/...). Each one must be
// SOUND: every claim in the returned facts must hold for the concrete lanes
// the machine actually produces, for all inputs satisfying the input facts.
// When a claim cannot be guaranteed — e.g. the interval arithmetic could
// overflow the 64-bit machine word — the function drops to unknown() rather
// than guess. Soundness here is what makes audit elision safe: a ProvenSafe
// verdict derived from these facts licenses skipping ScatterCheck's per-lane
// work (see docs/analysis.md for the full contract).
//
// The same functions serve the online analyzer (facts attached to live
// machine values) and the offline replay verifier (facts recomputed from a
// recorded op graph), so the two can never disagree about the domain.
#pragma once

#include <cstddef>
#include <cstdint>

namespace folvec::analysis {

/// The machine word (mirrors vm::Word; analysis/ depends on no vm header).
using Word = std::int64_t;

struct LaneFacts {
  /// Number of lanes in the described vector. Always known.
  std::size_t lanes = 0;

  /// When true, every lane value v satisfies lo <= v <= hi.
  bool has_range = false;
  Word lo = 0;
  Word hi = 0;
  /// When true (requires has_range), some lane attains lo and some lane
  /// attains hi. Needed to *prove* a hazard: an untight interval crossing a
  /// table edge only says a violation is possible, a tight one exhibits an
  /// offending lane.
  bool tight = false;

  /// When true, lane values are pairwise distinct.
  bool distinct = false;
  /// When true, lane values are non-decreasing in lane order.
  bool sorted = false;

  /// Nothing known beyond the lane count.
  static LaneFacts unknown(std::size_t n) {
    LaneFacts f;
    f.lanes = n;
    return f;
  }

  /// Interval width as hi - lo + 1, saturating at 2^64-1 (width of the full
  /// Word range). Only meaningful with has_range.
  std::uint64_t width() const {
    const std::uint64_t d =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
    return d == ~std::uint64_t{0} ? d : d + 1;
  }

  /// All lane values provably equal (a splat, whatever its producer).
  bool constant() const { return has_range && lo == hi; }

  /// Pigeonhole: more lanes than interval values forces a duplicate pair.
  bool proven_duplicates() const {
    return lanes > 1 && has_range && static_cast<std::uint64_t>(lanes) > width();
  }

  /// Every value in [lo, hi] provably attained: distinct lanes exactly
  /// filling the interval (a permutation of it, in some order).
  bool covers_range() const {
    return has_range && distinct && lanes > 0 &&
           static_cast<std::uint64_t>(lanes) == width();
  }

  friend bool operator==(const LaneFacts& a, const LaneFacts& b) {
    return a.lanes == b.lanes && a.has_range == b.has_range && a.lo == b.lo &&
           a.hi == b.hi && a.tight == b.tight && a.distinct == b.distinct &&
           a.sorted == b.sorted;
  }
};

// ---- transfer functions (one per VectorMachine primitive family) -----------

LaneFacts facts_iota(std::size_t n, Word start, Word step);
LaneFacts facts_splat(std::size_t n, Word value);
LaneFacts facts_copy(const LaneFacts& v);
LaneFacts facts_reverse(const LaneFacts& v);

LaneFacts facts_add_scalar(const LaneFacts& v, Word s);
LaneFacts facts_mul_scalar(const LaneFacts& v, Word s);
/// Floor division by a positive scalar.
LaneFacts facts_div_scalar(const LaneFacts& v, Word s);
/// Euclidean remainder by a positive scalar (result in [0, s)).
LaneFacts facts_mod_scalar(const LaneFacts& v, Word s);
LaneFacts facts_and_scalar(const LaneFacts& v, Word s);
LaneFacts facts_or_scalar(const LaneFacts& v, Word s);
/// Logical left shift (elements non-negative, k in [0, 63]).
LaneFacts facts_shl_scalar(const LaneFacts& v, Word k);
/// Arithmetic right shift (k in [0, 63]).
LaneFacts facts_shr_scalar(const LaneFacts& v, Word k);
LaneFacts facts_negate(const LaneFacts& v);

LaneFacts facts_add(const LaneFacts& a, const LaneFacts& b);
LaneFacts facts_sub(const LaneFacts& a, const LaneFacts& b);
LaneFacts facts_mul(const LaneFacts& a, const LaneFacts& b);

/// Order-preserving subset (compress / either partition half): interval and
/// the distinct/sorted pair survive, tightness does not (the endpoint lanes
/// may be dropped).
LaneFacts facts_subset(const LaneFacts& v, std::size_t out_lanes);

/// Elementwise select: hull of the two operand intervals, no lane-order or
/// distinctness claims survive.
LaneFacts facts_select(const LaneFacts& a, const LaneFacts& b, std::size_t n);

/// Mask converted to 0/1 words.
LaneFacts facts_from_mask(std::size_t n);

/// A measured range: the analyzer scanned the concrete lanes and saw min
/// `lo`, max `hi` (so the interval is tight). Distinctness is NOT claimed —
/// the scan does not dedup.
LaneFacts facts_observed(std::size_t n, Word lo, Word hi);

}  // namespace folvec::analysis
