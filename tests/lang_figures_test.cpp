// Executable paper listings: the Figure 8 multiple-hashing program is fed
// to the pseudo-language interpreter (near-verbatim) and cross-checked
// against the native hand-written implementation — same results, same
// machine, comparable instruction mix. A transcription of the Figure 7
// chaining flow (the FOL1 label-write/read/compare round) is checked
// against fol1_decompose as well.
#include <gtest/gtest.h>

#include <algorithm>

#include "fol/fol1.h"
#include "hashing/open_table.h"
#include "lang/interp.h"
#include "support/prng.h"
#include "vm/machine.h"

namespace folvec::lang {
namespace {

using vm::VectorMachine;
using vm::Word;
using vm::WordVec;

/// Figure 8 of the paper, transcribed. Differences from the printed
/// listing, all syntactic: the one-line `if ... then exit loop;` gains an
/// `end if;`, `hash(...)` is spelled out as `mod size(table)` (the
/// listing's own comment defines it that way), and the loop variable of
/// the outer for-loop is `it` (unused, exactly as in the listing).
constexpr const char* kFigure8 = R"(
/* Computing hashed values and entering data into the table */
hashedValue[1 : n] := key[1 : n] mod size(table);
where table[hashedValue[1 : n]] = unentered do
  table[hashedValue[1 : n]] := key[1 : n];
end where;

for it in 1 .. size(table) loop
  /* Checking unentered elements and collecting them */
  entered[1 : n] := key[1 : n] = table[hashedValue[1 : n]];
  nrest := countTrue(not entered[1 : n]);
  hashedValue[1 : nrest] := hashedValue[1 : n] where not entered[1 : n];
  key[1 : nrest] := key[1 : n] where not entered[1 : n];

  /* Testing whether data entry is finished */
  if nrest = 0 then exit loop; end if;
  n := nrest;

  /* Computing the subscripts for the next step and entering data */
  hashedValue[1 : n] :=
      (hashedValue[1 : n] + (key[1 : n] & 31) + 1) mod size(table);
  where table[hashedValue[1 : n]] = unentered do
    table[hashedValue[1 : n]] := key[1 : n];
  end where;
end loop;
)";

class Figure8Test : public ::testing::TestWithParam<double> {};

TEST_P(Figure8Test, ListingMatchesNativeImplementation) {
  const double load = GetParam();
  const std::size_t table_size = 521;
  const auto n_keys = static_cast<std::size_t>(load * table_size);
  const WordVec keys = random_unique_keys(n_keys, 1 << 30, 77);

  // Run the paper's listing in the interpreter.
  VectorMachine m_listing;
  Interpreter interp(m_listing);
  interp.set_scalar("unentered", hashing::kUnentered);
  interp.set_scalar("n", static_cast<Word>(n_keys));
  interp.set_array("table", WordVec(table_size, hashing::kUnentered), 0);
  interp.set_array("key", keys);
  interp.set_array("hashedValue", WordVec(n_keys, 0));
  interp.set_array("entered", WordVec(n_keys, 0));
  interp.run(kFigure8);

  // Run the native implementation on an identical machine.
  VectorMachine m_native;
  std::vector<Word> native_table(table_size, hashing::kUnentered);
  hashing::multi_hash_open_insert(m_native, native_table, keys,
                                  hashing::ProbeVariant::kKeyDependent);

  // Same key multiset in the table...
  WordVec listing_entries;
  for (Word v : interp.array("table").data) {
    if (v != hashing::kUnentered) listing_entries.push_back(v);
  }
  WordVec native_entries;
  for (Word v : native_table) {
    if (v != hashing::kUnentered) native_entries.push_back(v);
  }
  std::sort(listing_entries.begin(), listing_entries.end());
  std::sort(native_entries.begin(), native_entries.end());
  ASSERT_EQ(listing_entries, native_entries);
  ASSERT_EQ(listing_entries.size(), n_keys);

  // ... and identical slots: both follow the same probe sequences on the
  // same deterministic machine.
  EXPECT_EQ(interp.array("table").data,
            WordVec(native_table.begin(), native_table.end()));

  // The instruction mix must be in the same ballpark (the listing issues a
  // few extra loads/packs because `n := nrest` renames via slices).
  const double listing_cycles =
      m_listing.cost().cycles(vm::CostParams::s810_like());
  const double native_cycles =
      m_native.cost().cycles(vm::CostParams::s810_like());
  EXPECT_LT(listing_cycles, native_cycles * 3.0);
  EXPECT_GT(listing_cycles, native_cycles * 0.5);
}

INSTANTIATE_TEST_SUITE_P(Loads, Figure8Test,
                         ::testing::Values(0.1, 0.5, 0.9));

/// Figure 12 of the paper (vectorized address-calculation sorting),
/// transcribed. Syntactic deviations only: the spreading function uses the
/// worked example's factor 2n (the listing's 2*size(C) would index out of
/// range — see EXPERIMENTS.md finding 1), `-ι` is written `0 - iota(...)`,
/// and local arrays are declared up front.
constexpr const char* kFigure12 = R"(
local C[0 : 3*n - 1];
local work[1 : n];
local index[1 : n];
local next[1 : n];
n0 := n;

C[0 : 3*n - 1] := unentered;   /* initialize C (unentered = Vmax) */

/* A. Computing "hashed" values. */
hashedValue[1 : n] := (2 * n * A[1 : n]) / Vmax;
nrest := n;

repeat
  /* B. Finding table entries to insert data. */
  repeat
    uninsertable[1 : nrest] := C[hashedValue[1 : nrest]] <= A[1 : nrest];
    Nuninsertable := countTrue(uninsertable[1 : nrest]);
    where uninsertable[1 : nrest] do
      hashedValue[1 : nrest] := hashedValue[1 : nrest] + 1;
    end where;
  until Nuninsertable = 0;

  /* C. Inserting the data. */
  work[1 : nrest] := C[hashedValue[1 : nrest]];
  C[hashedValue[1 : nrest]] := 0 - iota(nrest);
  entered[1 : nrest] := C[hashedValue[1 : nrest]] = 0 - iota(nrest);
  where entered[1 : nrest] do
    C[hashedValue[1 : nrest]] := A[1 : nrest];
  end where;

  /* D. Shifting the work array elements. */
  toShift[1 : nrest] := entered[1 : nrest] and (work[1 : nrest] /= unentered);
  NtoShift := countTrue(toShift[1 : nrest]);
  work[1 : NtoShift] := work[1 : nrest] where toShift[1 : nrest];
  index[1 : NtoShift] := (hashedValue[1 : nrest] + 1) where toShift[1 : nrest];
  while NtoShift > 0 do
    next[1 : NtoShift] := C[index[1 : NtoShift]];
    C[index[1 : NtoShift]] := work[1 : NtoShift];
    nonempty[1 : NtoShift] := next[1 : NtoShift] /= unentered;
    cnt := countTrue(nonempty[1 : NtoShift]);
    work[1 : cnt] := next[1 : NtoShift] where nonempty[1 : NtoShift];
    index[1 : cnt] := (index[1 : NtoShift] + 1) where nonempty[1 : NtoShift];
    NtoShift := cnt;
  end while;

  /* E. Collecting not yet inserted data for the next iteration. */
  irest := countTrue(not entered[1 : nrest]);
  hashedValue[1 : irest] := hashedValue[1 : nrest] where not entered[1 : nrest];
  A[1 : irest] := A[1 : nrest] where not entered[1 : nrest];
  nrest := irest;
until nrest = 0;   /* until all the data are inserted */

/* F. Packing the sorted data into A. */
A[1 : n0] := C[0 : 3*n0 - 1] where C[0 : 3*n0 - 1] /= unentered;
)";

class Figure12Test : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Figure12Test, ListingSortsExactlyLikeStdSort) {
  const std::size_t n = GetParam();
  constexpr Word kVmax = 1 << 16;
  const WordVec data = random_keys(n, kVmax, n * 13 + 5);
  WordVec expected = data;
  std::sort(expected.begin(), expected.end());

  VectorMachine m;
  Interpreter interp(m);
  interp.set_scalar("n", static_cast<Word>(n));
  interp.set_scalar("Vmax", kVmax);
  interp.set_scalar("unentered", kVmax);
  interp.set_array("A", data);
  interp.set_array("hashedValue", WordVec(n, 0));
  interp.set_array("uninsertable", WordVec(n, 0));
  interp.set_array("entered", WordVec(n, 0));
  interp.set_array("toShift", WordVec(n, 0));
  interp.set_array("nonempty", WordVec(n, 0));
  interp.run(kFigure12);

  EXPECT_EQ(interp.array("A").data, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Figure12Test,
                         ::testing::Values(1, 2, 16, 100, 333));

TEST(Figure13Test, WorkedExampleFromThePaper) {
  // Figure 13: A = {38, 11, 42, 39}, keys in [0, 100), hash(x) = (8/100)x.
  VectorMachine m;
  Interpreter interp(m);
  interp.set_scalar("n", 4);
  interp.set_scalar("Vmax", 100);
  interp.set_scalar("unentered", 100);
  interp.set_array("A", WordVec{38, 11, 42, 39});
  for (const char* name : {"hashedValue", "uninsertable", "entered",
                           "toShift", "nonempty"}) {
    interp.set_array(name, WordVec(4, 0));
  }
  interp.run(kFigure12);
  EXPECT_EQ(interp.array("A").data, (WordVec{11, 38, 39, 42}));
}

/// Figure 11 (the *sequential* address-calculation sort): the language
/// handles scalar control flow too, so the paper's baseline listing runs
/// as well. Deviations: the spreading factor follows Figure 13 (see
/// Figure 12's note) and the `while C[hv] <= A[i]` probe is spelled with
/// the same inclusive semantics.
constexpr const char* kFigure11 = R"(
local C[0 : 3*n - 1];
for i in 0 .. 3*n - 1 loop C[i] := unentered; end loop;

/* Scatter the data into C: */
for i in 1 .. n loop
  /* A. Computing a "hashed" value of A[i]. */
  hv := (2 * n * A[i]) / Vmax;

  /* B. Finding the table entry to insert new data A[i]: */
  while C[hv] <= A[i] do
    hv := hv + 1;
  end while;

  /* C&D. Inserting new data and shifting the data in C: */
  w := C[hv];
  C[hv] := A[i];
  while w /= unentered do
    hv := hv + 1;
    x := C[hv];
    C[hv] := w;
    w := x;
  end while;
end loop;

/* F. Packing the sorted data into A. */
count := 0;
for i in 0 .. 3*n - 1 loop
  if C[i] /= unentered then
    count := count + 1;
    A[count] := C[i];
  end if;
end loop;
)";

TEST(Figure11Test, SequentialListingSorts) {
  constexpr Word kVmax = 1 << 10;
  const WordVec data = random_keys(80, kVmax, 9);
  WordVec expected = data;
  std::sort(expected.begin(), expected.end());

  VectorMachine m;
  Interpreter interp(m);
  interp.set_scalar("n", static_cast<Word>(data.size()));
  interp.set_scalar("Vmax", kVmax);
  interp.set_scalar("unentered", kVmax);
  interp.set_array("A", data);
  interp.run(kFigure11);
  EXPECT_EQ(interp.array("A").data, expected);
  // A scalar listing must issue (almost) no vector instructions — scalar
  // element accesses only.
  EXPECT_EQ(m.cost().instructions(vm::OpClass::kVectorGather), 0u);
  EXPECT_GT(m.cost().elements(vm::OpClass::kScalarMem), 0u);
}

TEST(Figure7FlowTest, LabelRoundMatchesFol1FirstSet) {
  // The FOL detection round of Figure 7, as a program: write labels
  // (subscripts) through the hashed-value index vector, read them back,
  // compare. The winners must be exactly FOL1's first set.
  constexpr const char* kLabelRound = R"(
    labels := iota(n, 0);
    work[hv[1 : n]] := labels;
    readback := work[hv[1 : n]];
    ok := readback = labels;
    winners := labels where ok;
  )";
  const WordVec hv{5, 3, 5, 0, 3, 5};

  VectorMachine m;
  Interpreter interp(m);
  interp.set_scalar("n", static_cast<Word>(hv.size()));
  interp.set_array("hv", hv);
  interp.set_array("work", WordVec(8, 0), 0);
  interp.run(kLabelRound);

  VectorMachine m2;
  WordVec work(8, 0);
  const fol::Decomposition dec = fol::fol1_decompose(m2, hv, work);
  WordVec expected;
  for (std::size_t lane : dec.sets[0]) {
    expected.push_back(static_cast<Word>(lane));
  }
  EXPECT_EQ(interp.array("winners").data, expected);
}

}  // namespace
}  // namespace folvec::lang
