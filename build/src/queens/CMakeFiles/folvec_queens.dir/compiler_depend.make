# Empty compiler generated dependencies file for folvec_queens.
# This may be replaced when dependencies are built.
