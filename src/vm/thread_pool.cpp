#include "vm/thread_pool.h"

#include "support/require.h"

namespace folvec::vm {

ThreadPool::ThreadPool(std::size_t workers) {
  FOLVEC_REQUIRE(workers >= 1, "thread pool needs at least one worker");
  threads_.reserve(workers - 1);
  for (std::size_t i = 0; i + 1 < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::claim(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.tasks) return;
    try {
      (*job.fn)(i);
    } catch (...) {
      job.errors[i] = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    claim(*job);
    {
      const std::lock_guard<std::mutex> lk(mu_);
      ++checked_in_;
      if (checked_in_ == threads_.size()) done_cv_.notify_one();
    }
  }
}

void ThreadPool::run(std::size_t tasks,
                     const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) return;
  if (threads_.empty() || tasks == 1) {
    // Inline execution: first exception propagates naturally, which matches
    // the lowest-task-index rule because tasks run in order.
    for (std::size_t i = 0; i < tasks; ++i) fn(i);
    return;
  }
  Job job;
  job.fn = &fn;
  job.tasks = tasks;
  job.errors.resize(tasks);
  {
    const std::lock_guard<std::mutex> lk(mu_);
    job_ = &job;
    checked_in_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();
  claim(job);
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return checked_in_ == threads_.size(); });
    job_ = nullptr;
  }
  for (auto& e : job.errors) {
    if (e != nullptr) std::rethrow_exception(e);
  }
}

}  // namespace folvec::vm
