# Empty compiler generated dependencies file for folvec_sorting.
# This may be replaced when dependencies are built.
