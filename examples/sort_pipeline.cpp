// Example: an O(n) sorting pipeline for database keys.
//
// The paper positions address-calculation sorting and distribution counting
// sort as database primitives (the IDP lineage). This example sorts a batch
// of synthetic record keys with both vectorized sorts, verifies them
// against std::sort, and prints the modeled S-810 cost of each stage —
// showing where each algorithm's sweet spot lies (distribution counting
// amortizes a large fixed histogram; address calculation scales with n
// only).
#include <algorithm>
#include <iostream>
#include <vector>

#include "sorting/address_calc.h"
#include "sorting/dist_count.h"
#include "support/prng.h"
#include "support/table_printer.h"
#include "vm/machine.h"

int main() {
  using namespace folvec;
  using vm::Word;

  const vm::CostParams params = vm::CostParams::s810_like();
  constexpr Word kKeyRange = 1 << 16;  // 16-bit record keys

  TablePrinter report({"n", "addr-calc_us", "dist-count_us", "better"});
  for (std::size_t n : {100u, 1000u, 10000u, 60000u}) {
    std::vector<Word> keys = random_keys(n, kKeyRange, n);
    const std::vector<Word> original = keys;
    std::vector<Word> expected = keys;
    std::sort(expected.begin(), expected.end());

    // Stage 1: address-calculation (linear probing) sort.
    vm::VectorMachine m_acs;
    sorting::address_calc_sort_vector(m_acs, keys, kKeyRange);
    if (keys != expected) {
      std::cout << "address-calc sort FAILED\n";
      return 1;
    }
    const double acs_us = m_acs.cost().microseconds(params);

    // Stage 2: distribution counting sort on a fresh copy.
    std::vector<Word> keys2 = original;
    vm::VectorMachine m_dcs;
    sorting::dist_count_sort_vector(m_dcs, keys2, kKeyRange);
    if (keys2 != expected) {
      std::cout << "distribution counting sort FAILED\n";
      return 1;
    }
    const double dcs_us = m_dcs.cost().microseconds(params);

    report.add_row({Cell(static_cast<long long>(n)), Cell(acs_us, 1),
                    Cell(dcs_us, 1),
                    acs_us < dcs_us ? "addr-calc" : "dist-count"});
  }
  report.print(std::cout,
               "modeled cost of the two vectorized O(n) sorts "
               "(key range 2^16)");
  std::cout
      << "\ncrossover logic: distribution counting pays a fixed 2^16-slot\n"
         "histogram init+scan regardless of n, so address calculation wins\n"
         "small batches and distribution counting wins once n approaches\n"
         "the key range.\n";
  return 0;
}
