// A set of half-open address intervals with merge-on-insert semantics.
//
// ScatterCheck tracks clobbered label addresses exactly (one hash-set entry
// per written address). Audit elision skips the per-lane pass that would
// enumerate those addresses, but the *range* the elided scatter may have
// written is statically known — that is what licensed the elision. The
// checker therefore books elided label-round writes here, at interval
// granularity, so clobbered-work detection survives elision (conservatively:
// the interval covers every address the scatter could have touched).
//
// Keyed on const T* into the audited tables; intervals are [begin, end).
// Insertion merges overlapping/adjacent intervals; erasure splits. All
// operations are O(log n) plus the number of intervals touched, and n stays
// tiny in practice (one interval per elided round, erased on overwrite or
// retire).
#pragma once

#include <cstddef>
#include <map>

namespace folvec::analysis {

template <typename T>
class IntervalSet {
 public:
  bool empty() const { return ivals_.empty(); }
  std::size_t size() const { return ivals_.size(); }
  void clear() { ivals_.clear(); }

  /// Visits each interval as f(begin, end), in address order.
  template <typename F>
  void for_each(F&& f) const {
    for (const auto& [b, e] : ivals_) f(b, e);
  }

  /// Inserts [b, e), merging with any overlapping or adjacent intervals.
  void add(const T* b, const T* e) {
    if (b >= e) return;
    // Absorb every interval that overlaps or touches [b, e).
    auto it = ivals_.upper_bound(b);
    if (it != ivals_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= b) it = prev;
    }
    while (it != ivals_.end() && it->first <= e) {
      if (it->first < b) b = it->first;
      if (it->second > e) e = it->second;
      it = ivals_.erase(it);
    }
    ivals_.emplace(b, e);
  }

  /// Removes [b, e) from the set, splitting intervals that straddle it.
  void erase(const T* b, const T* e) {
    if (b >= e || ivals_.empty()) return;
    auto it = ivals_.upper_bound(b);
    if (it != ivals_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > b) it = prev;
    }
    while (it != ivals_.end() && it->first < e) {
      const T* ib = it->first;
      const T* ie = it->second;
      it = ivals_.erase(it);
      if (ib < b) ivals_.emplace(ib, b);
      if (ie > e) {
        ivals_.emplace(e, ie);
        break;
      }
    }
  }

  bool contains(const T* p) const {
    if (ivals_.empty()) return false;
    auto it = ivals_.upper_bound(p);
    if (it == ivals_.begin()) return false;
    --it;
    return p < it->second;
  }

  /// True when [b, e) intersects any interval.
  bool overlaps(const T* b, const T* e) const {
    if (b >= e || ivals_.empty()) return false;
    auto it = ivals_.upper_bound(b);
    if (it != ivals_.end() && it->first < e) return true;
    if (it == ivals_.begin()) return false;
    --it;
    return it->second > b;
  }

 private:
  std::map<const T*, const T*> ivals_;  // begin -> end, disjoint, sorted
};

}  // namespace folvec::analysis
