// Differential fuzz of the execution backends: ParallelBackend must be
// bit-identical to SerialBackend for every primitive, under every
// ScatterOrder, at every worker count — same outputs, same memory images,
// same chime costs, same exceptions. The parallel machines run with a tiny
// backend_grain so even short vectors actually cross the thread pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "fol/fol1.h"
#include "hashing/open_table.h"
#include "support/json.h"
#include "support/prng.h"
#include "telemetry/metrics.h"
#include "telemetry/spans.h"
#include "vm/buffer_pool.h"
#include "vm/checker.h"
#include "vm/machine.h"
#include "vm/simd_backend.h"
#include "vm/thread_pool.h"

namespace folvec::vm {
namespace {

MachineConfig diff_config(ScatterOrder order, std::uint64_t seed) {
  MachineConfig cfg;
  cfg.scatter_order = order;
  cfg.shuffle_seed = seed;
  // The fuzz scatters duplicate addresses outside ConflictWindows on
  // purpose; opt out of auditing regardless of the FOLVEC_AUDIT env (audit
  // would also pin the parallel machine to the serial path).
  cfg.audit = false;
  return cfg;
}

VectorMachine make_serial(ScatterOrder order, std::uint64_t seed) {
  MachineConfig cfg = diff_config(order, seed);
  cfg.backend = BackendKind::kSerial;
  return VectorMachine(cfg);
}

VectorMachine make_parallel(ScatterOrder order, std::uint64_t seed,
                            std::size_t threads, std::size_t grain = 8,
                            MergeStrategy merge = MergeStrategy::kAuto) {
  MachineConfig cfg = diff_config(order, seed);
  cfg.backend = BackendKind::kParallel;
  cfg.backend_threads = threads;
  cfg.backend_grain = grain;
  cfg.merge_strategy = merge;
  return VectorMachine(cfg);
}

VectorMachine make_simd(ScatterOrder order, std::uint64_t seed,
                        SimdLevel level) {
  MachineConfig cfg = diff_config(order, seed);
  cfg.backend = BackendKind::kSimd;
  cfg.simd_level = level;
  return VectorMachine(cfg);
}

VectorMachine make_parallel_simd(ScatterOrder order, std::uint64_t seed,
                                 std::size_t threads, SimdLevel level,
                                 std::size_t grain = 8) {
  MachineConfig cfg = diff_config(order, seed);
  cfg.backend = BackendKind::kParallelSimd;
  cfg.backend_threads = threads;
  cfg.backend_grain = grain;
  cfg.simd_level = level;
  return VectorMachine(cfg);
}

void expect_same_costs(const CostAccumulator& serial,
                       const CostAccumulator& parallel) {
  for (std::size_t i = 0; i < kOpClassCount; ++i) {
    const auto c = static_cast<OpClass>(i);
    EXPECT_EQ(serial.instructions(c), parallel.instructions(c))
        << "instruction count diverged for " << op_class_name(c);
    EXPECT_EQ(serial.elements(c), parallel.elements(c))
        << "element count diverged for " << op_class_name(c);
  }
}

/// Shared random operands for one script run at size n.
struct Inputs {
  WordVec a, b, table, idx, vals;
  Mask mask;

  Inputs(std::size_t n, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    const std::size_t table_size = std::max<std::size_t>(1, n / 2);
    a.resize(n);
    b.resize(n);
    idx.resize(n);
    vals.resize(n);
    mask.resize(n);
    table.resize(table_size);
    for (auto& x : a) x = rng.in_range(-1000000, 1000000);
    for (auto& x : b) x = rng.in_range(-1000000, 1000000);
    for (auto& x : table) x = rng.in_range(-1000000, 1000000);
    // Heavy collisions: ~n lanes over n/2 addresses.
    for (auto& x : idx) {
      x = rng.in_range(0, static_cast<Word>(table_size) - 1);
    }
    for (auto& x : vals) x = rng.in_range(-1000000, 1000000);
    for (auto& x : mask) x = static_cast<std::uint8_t>(rng.below(3) != 0);
  }
};

/// Runs every primitive once on `m` and returns a flat digest of all
/// results plus the final memory image.
WordVec run_script(VectorMachine& m, const Inputs& in) {
  const std::size_t n = in.a.size();
  WordVec digest;
  const auto emit = [&digest](const WordVec& v) {
    digest.insert(digest.end(), v.begin(), v.end());
  };
  const auto emit_mask = [&digest](const Mask& v) {
    for (auto b : v) digest.push_back(b);
  };

  emit(m.iota(n, -5, 3));
  emit(m.splat(n, 42));
  emit(m.copy(in.a));
  emit(m.reverse(in.a));
  emit(m.add(in.a, in.b));
  emit(m.sub(in.a, in.b));
  emit(m.mul(in.a, in.b));
  emit(m.add_scalar(in.a, 17));
  emit(m.mul_scalar(in.a, -3));
  emit(m.div_scalar(in.a, 7));
  emit(m.mod_scalar(in.a, 7));
  emit(m.and_scalar(in.a, 0xff));
  emit(m.or_scalar(in.a, 0x10));
  emit(m.shr_scalar(in.a, 2));
  emit(m.negate(in.a));
  emit_mask(m.eq(in.a, in.b));
  emit_mask(m.ne(in.a, in.b));
  emit_mask(m.le(in.a, in.b));
  emit_mask(m.lt(in.a, in.b));
  emit_mask(m.eq_scalar(in.a, 0));
  emit_mask(m.ne_scalar(in.a, 0));
  emit_mask(m.le_scalar(in.a, 100));
  emit_mask(m.lt_scalar(in.a, 100));
  emit_mask(m.ge_scalar(in.a, 100));
  const Mask lt_mask = m.lt(in.a, in.b);
  emit_mask(m.mask_and(lt_mask, in.mask));
  emit_mask(m.mask_or(lt_mask, in.mask));
  emit_mask(m.mask_not(in.mask));
  digest.push_back(static_cast<Word>(m.count_true(in.mask)));
  digest.push_back(m.reduce_sum(in.a));
  if (n > 0) {
    digest.push_back(m.reduce_min(in.a));
    digest.push_back(m.reduce_max(in.a));
  }
  emit(m.compress(in.a, in.mask));
  emit(m.select(in.mask, in.a, in.b));
  emit(m.from_mask(in.mask));

  WordVec mem(in.table.begin(), in.table.end());
  const std::size_t head = std::min(mem.size(), in.vals.size());
  m.store(mem, 0,
          WordVec(in.vals.begin(),
                  in.vals.begin() + static_cast<std::ptrdiff_t>(head)));
  emit(m.load(mem, 0, mem.size()));
  if (!mem.empty()) {
    const std::size_t strided_n = (mem.size() + 1) / 2;
    emit(m.load_strided(mem, 0, 2, strided_n));
    m.store_strided(mem, 0, 2, in.a.empty()
                                   ? WordVec{}
                                   : WordVec(in.a.begin(),
                                             in.a.begin() +
                                                 static_cast<std::ptrdiff_t>(
                                                     strided_n)));
  }
  m.fill(mem, -7);
  emit(mem);

  emit(m.gather(in.table, in.idx));
  emit(m.gather_masked(in.table, in.idx, in.mask, -99));

  // Three consecutive ELS scatters: under kShuffled each draws a fresh
  // permutation from the machine RNG, so this also checks that the RNG
  // stream is consumed identically on both backends.
  WordVec target(in.table.begin(), in.table.end());
  m.scatter(target, in.idx, in.vals);
  emit(target);
  m.scatter(target, in.idx, in.a);
  emit(target);
  m.scatter_masked(target, in.idx, in.vals, in.mask);
  emit(target);
  m.scatter_ordered(target, in.idx, in.b);
  emit(target);
  return digest;
}

class BackendDiffTest
    : public ::testing::TestWithParam<std::tuple<ScatterOrder, std::size_t>> {
 protected:
  ScatterOrder order() const { return std::get<0>(GetParam()); }
  std::size_t threads() const { return std::get<1>(GetParam()); }
};

TEST_P(BackendDiffTest, EveryPrimitiveBitIdenticalWithIdenticalChimes) {
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{64},
        std::size_t{257}, std::size_t{1000}, std::size_t{4099}}) {
    const Inputs in(n, 0xfeed0000 + n);
    VectorMachine serial = make_serial(order(), 99);
    VectorMachine parallel = make_parallel(order(), 99, threads());
    ASSERT_STREQ(parallel.backend_name(), "parallel");
    EXPECT_EQ(parallel.backend_workers(), threads());
    const WordVec want = run_script(serial, in);
    const WordVec got = run_script(parallel, in);
    ASSERT_EQ(want, got) << "digest diverged at n=" << n;
    expect_same_costs(serial.cost(), parallel.cost());
  }
}

TEST_P(BackendDiffTest, ScatterMergeLaneExactUnderHeavyCollisions) {
  Xoshiro256 rng(0xc0113c7);
  for (int round = 0; round < 40; ++round) {
    const auto n = static_cast<std::size_t>(rng.in_range(1, 600));
    // Between 1 and n distinct addresses: the low end makes nearly every
    // lane collide, the merge's worst case.
    const auto table_size = static_cast<std::size_t>(
        rng.in_range(1, static_cast<Word>(n)));
    WordVec table_s(table_size, 0);
    WordVec idx(n);
    WordVec vals(n);
    for (auto& x : idx) {
      x = rng.in_range(0, static_cast<Word>(table_size) - 1);
    }
    for (auto& x : vals) x = rng.in_range(-1 << 20, 1 << 20);
    WordVec table_p = table_s;
    const auto seed = static_cast<std::uint64_t>(round) * 7919 + 1;
    VectorMachine serial = make_serial(order(), seed);
    VectorMachine parallel = make_parallel(order(), seed, threads(),
                                           /*grain=*/1);
    serial.scatter(table_s, idx, vals);
    parallel.scatter(table_p, idx, vals);
    ASSERT_EQ(table_s, table_p)
        << "scatter survivor diverged: n=" << n << " areas=" << table_size;
  }
}

TEST_P(BackendDiffTest, ExceptionParityAcrossWorkerThreads) {
  VectorMachine serial = make_serial(order(), 5);
  VectorMachine parallel = make_parallel(order(), 5, threads());
  // A negative element deep inside one chunk: the worker's exception must
  // surface on the issuing thread with the serial exception type.
  WordVec v(300, 1);
  v[257] = -4;
  EXPECT_THROW(serial.shl_scalar(v, 1), PreconditionError);
  EXPECT_THROW(parallel.shl_scalar(v, 1), PreconditionError);
  // Out-of-bounds lane in the middle of a gather/scatter.
  WordVec table(16, 0);
  WordVec idx(300, 3);
  idx[170] = 99;
  EXPECT_THROW(serial.gather(table, idx), PreconditionError);
  EXPECT_THROW(parallel.gather(table, idx), PreconditionError);
  const WordVec vals(300, 1);
  EXPECT_THROW(serial.scatter(table, idx, vals), PreconditionError);
  EXPECT_THROW(parallel.scatter(table, idx, vals), PreconditionError);
  // Inactive out-of-bounds lanes are legal on both.
  Mask mask(300, 1);
  mask[170] = 0;
  WordVec table_s = table;
  WordVec table_p = table;
  serial.scatter_masked(table_s, idx, vals, mask);
  parallel.scatter_masked(table_p, idx, vals, mask);
  EXPECT_EQ(table_s, table_p);
}

std::string diff_param_name(
    const ::testing::TestParamInfo<std::tuple<ScatterOrder, std::size_t>>&
        info) {
  static constexpr const char* kOrderNames[] = {"Forward", "Reverse",
                                                "Shuffled"};
  return std::string(
             kOrderNames[static_cast<std::size_t>(std::get<0>(info.param))]) +
         "x" + std::to_string(std::get<1>(info.param)) + "threads";
}

INSTANTIATE_TEST_SUITE_P(
    AllOrdersAllThreadCounts, BackendDiffTest,
    ::testing::Combine(::testing::Values(ScatterOrder::kForward,
                                         ScatterOrder::kReverse,
                                         ScatterOrder::kShuffled),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4}, std::size_t{8})),
    diff_param_name);

TEST(BackendDiffLargeTest, LargeVectorsWithDefaultGrain) {
  const std::size_t n = 200000;
  const Inputs in(n, 0xabcde);
  VectorMachine serial = make_serial(ScatterOrder::kShuffled, 7);
  VectorMachine parallel =
      make_parallel(ScatterOrder::kShuffled, 7, 4, /*grain=*/4096);
  const WordVec want = run_script(serial, in);
  const WordVec got = run_script(parallel, in);
  ASSERT_EQ(want, got);
  expect_same_costs(serial.cost(), parallel.cost());
}

TEST(BackendDiffLargeTest, AuditModePinsParallelConfigToSerialPath) {
  MachineConfig cfg;
  cfg.backend = BackendKind::kParallel;
  cfg.backend_threads = 4;
  cfg.audit = true;
  const VectorMachine m(cfg);
  EXPECT_STREQ(m.backend_name(), "serial");
  EXPECT_EQ(m.backend_workers(), 1u);
}

// ---- telemetry determinism across backends ---------------------------------
//
// The metrics contract (telemetry/metrics.h): everything outside the "pool."
// and "backend." namespaces carries modeled quantities and must be
// bit-identical for the same program on any backend at any worker count.
// The span timeline likewise: the same spans, in the same order, with the
// same chime deltas — only the wall timestamps differ.

VectorMachine make_telemetry_machine(BackendKind kind, std::size_t threads) {
  MachineConfig cfg;
  cfg.audit = false;  // audit would pin the parallel machine to serial
  cfg.backend = kind;
  cfg.backend_threads = threads;
  cfg.backend_grain = 8;  // force short vectors across the pool
  return VectorMachine(cfg);
}

/// A workload touching every instrumented layer: raw machine ops, FOL1
/// rounds with duplicates, and multiple hashing with retries.
void telemetry_workload(VectorMachine& m) {
  const WordVec targets = random_keys(1000, 100, 0x7e1e);
  WordVec work(100, 0);
  fol::fol1_decompose(m, targets, work);

  const WordVec keys = random_unique_keys(500, 1 << 20, 0x7e1f);
  WordVec table(1031, hashing::kUnentered);
  hashing::multi_hash_open_insert(m, table, keys,
                                  hashing::ProbeVariant::kKeyDependent);

  const WordVec a = m.iota(4096);
  m.reduce_sum(m.mul_scalar(a, 3));
}

telemetry::MetricsSnapshot run_with_metrics(BackendKind kind,
                                            std::size_t threads) {
  telemetry::MetricsRegistry registry;
  const telemetry::ScopedMetrics scoped(registry);
  {
    // The machine flushes its per-op-class totals on destruction, so the
    // snapshot is taken after this scope closes.
    VectorMachine m = make_telemetry_machine(kind, threads);
    telemetry_workload(m);
  }
  return registry.snapshot();
}

/// The backend-invariant part of a trace: span and op event names,
/// categories, and chime payloads, in emission order — everything but the
/// wall clock. Host-side decoration (thread metadata, per-worker "chunk"
/// slices, "flow" arrows, "counter" samples) is excluded by construction:
/// those describe how the host scheduled the work, not what the program
/// computed, and legitimately differ across backends and worker counts.
std::string span_tree_signature(BackendKind kind, std::size_t threads) {
  telemetry::SpanTracer tracer;
  {
    const telemetry::ScopedTracer scoped(tracer);
    VectorMachine m = make_telemetry_machine(kind, threads);
    telemetry_workload(m);
  }
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const JsonValue doc = JsonValue::parse(os.str());
  std::string sig;
  for (const JsonValue& ev : doc.find("traceEvents")->as_array()) {
    const JsonValue* cat = ev.find("cat");
    if (cat == nullptr ||
        (cat->as_string() != "span" && cat->as_string() != "op")) {
      continue;
    }
    sig += ev.find("name")->as_string();
    sig += '|';
    sig += cat->as_string();
    if (const JsonValue* args = ev.find("args")) {
      for (const char* key :
           {"elements", "chime_instructions", "chime_elements"}) {
        if (const JsonValue* v = args->find(key)) {
          sig += '|';
          sig += std::to_string(static_cast<std::uint64_t>(v->as_number()));
        }
      }
    }
    sig += '\n';
  }
  return sig;
}

TEST(TelemetryDeterminismTest, MetricsIdenticalAcrossBackendsAndWorkers) {
  const telemetry::MetricsSnapshot serial =
      run_with_metrics(BackendKind::kSerial, 1).deterministic();
  ASSERT_FALSE(serial.counters.empty());
  ASSERT_FALSE(serial.histograms.empty());
  EXPECT_TRUE(serial.counters.contains("fol1.rounds"));
  EXPECT_TRUE(serial.counters.contains("hashing.retry_rounds"));
  for (const std::size_t workers : {1u, 2u, 8u}) {
    const telemetry::MetricsSnapshot parallel =
        run_with_metrics(BackendKind::kParallel, workers).deterministic();
    EXPECT_EQ(serial.to_text(), parallel.to_text())
        << "deterministic metrics diverged at " << workers << " workers";
    EXPECT_TRUE(serial == parallel);
  }
}

TEST(TelemetryDeterminismTest, FullSnapshotSeparatesHostOnlyNamespaces) {
  // The raw (non-deterministic view) parallel snapshot is allowed to differ
  // from serial ONLY via timings, labels, and the pool./backend. namespaces.
  const telemetry::MetricsSnapshot serial =
      run_with_metrics(BackendKind::kSerial, 1);
  const telemetry::MetricsSnapshot parallel =
      run_with_metrics(BackendKind::kParallel, 4);
  EXPECT_EQ(parallel.labels.at("backend.name"), "parallel");
  EXPECT_EQ(serial.labels.at("backend.name"), "serial");
  for (const auto& [name, value] : parallel.counters) {
    if (name.starts_with("pool.") || name.starts_with("backend.")) continue;
    ASSERT_TRUE(serial.counters.contains(name)) << name;
    EXPECT_EQ(serial.counters.at(name), value) << name;
  }
}

TEST(TelemetryDeterminismTest, SpanTreesIdenticalAcrossBackendsAndWorkers) {
  const std::string serial = span_tree_signature(BackendKind::kSerial, 1);
  ASSERT_FALSE(serial.empty());
  EXPECT_NE(serial.find("fol1.decompose|span"), std::string::npos);
  EXPECT_NE(serial.find("hashing.multi_insert|span"), std::string::npos);
  for (const std::size_t workers : {1u, 2u, 8u}) {
    const std::string parallel =
        span_tree_signature(BackendKind::kParallel, workers);
    EXPECT_EQ(serial, parallel)
        << "span tree diverged at " << workers << " workers";
  }
}

TEST(TelemetryDeterminismTest, ParallelTraceHasWorkerTracksFlowsAndCounters) {
  telemetry::SpanTracer tracer;
  {
    const telemetry::ScopedTracer scoped(tracer);
    VectorMachine m = make_telemetry_machine(BackendKind::kParallel, 8);
    telemetry_workload(m);
    // The machine (and its pool) is destroyed before export: the joins
    // provide the quiescence the tracer's export contract requires.
  }
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const JsonValue doc = JsonValue::parse(os.str());

  std::set<std::string> thread_names;
  std::set<double> named_tids;
  std::set<double> flow_start_ids;
  std::set<double> flow_end_ids;
  std::set<std::string> counter_names;
  std::set<double> span_tids;
  std::set<double> chunk_tids;
  for (const JsonValue& ev : doc.find("traceEvents")->as_array()) {
    const std::string ph = ev.find("ph")->as_string();
    ASSERT_NE(ev.find("name"), nullptr);
    ASSERT_NE(ev.find("tid"), nullptr);
    EXPECT_EQ(ev.find("pid")->as_number(), 1.0);
    if (ph == "M") {
      if (ev.find("name")->as_string() == "thread_name") {
        thread_names.insert(ev.find("args")->find("name")->as_string());
        named_tids.insert(ev.find("tid")->as_number());
      }
      continue;
    }
    // Every non-metadata event is timestamped and categorized.
    ASSERT_NE(ev.find("ts"), nullptr);
    const std::string cat = ev.find("cat")->as_string();
    if (ph == "s") {
      EXPECT_EQ(cat, "flow");
      flow_start_ids.insert(ev.find("id")->as_number());
    } else if (ph == "f") {
      EXPECT_EQ(cat, "flow");
      EXPECT_EQ(ev.find("bp")->as_string(), "e");
      flow_end_ids.insert(ev.find("id")->as_number());
    } else if (ph == "C") {
      EXPECT_EQ(cat, "counter");
      ASSERT_NE(ev.find("args")->find("value"), nullptr);
      counter_names.insert(ev.find("name")->as_string());
    } else {
      ASSERT_EQ(ph, "X");
      ASSERT_NE(ev.find("dur"), nullptr);
      EXPECT_TRUE(cat == "span" || cat == "op" || cat == "chunk") << cat;
      if (cat == "span" || cat == "op") {
        span_tids.insert(ev.find("tid")->as_number());
      } else {
        chunk_tids.insert(ev.find("tid")->as_number());
      }
    }
  }

  // Acceptance: distinct named tracks for main plus the pool workers.
  EXPECT_TRUE(thread_names.contains("main"));
  std::size_t worker_tracks = 0;
  for (const std::string& n : thread_names) {
    if (n.rfind("worker-", 0) == 0) ++worker_tracks;
  }
  EXPECT_GE(worker_tracks, 4u);
  EXPECT_GE(named_tids.size(), 5u);
  EXPECT_GE(tracer.track_count(), 5u);

  // Deterministic span/op events all ride the issuing ("main") thread;
  // chunk slices fan out across the worker tracks.
  ASSERT_EQ(span_tids.size(), 1u);
  EXPECT_FALSE(chunk_tids.empty());
  EXPECT_GT(chunk_tids.size(), 1u);

  // Flow arrows: every finish id was started, and at least one flush
  // produced arrows at all.
  EXPECT_FALSE(flow_start_ids.empty());
  EXPECT_FALSE(flow_end_ids.empty());
  for (const double id : flow_end_ids) {
    EXPECT_TRUE(flow_start_ids.contains(id)) << "unmatched flow id " << id;
  }

  // Counter tracks: batch occupancy and pool occupancy at minimum.
  EXPECT_GE(counter_names.size(), 2u);
  EXPECT_TRUE(counter_names.contains("pool.occupancy"));
}

// ---- fused vs unfused differential fuzz ------------------------------------
//
// The fused scatter_gather_eq / partition kernels are an optimization, not a
// semantics change: for every ScatterOrder, every backend, every worker
// count, and audit on or off, a machine with config.fuse=true must produce
// bit-identical outputs and memory images to the same machine running the
// unfused reference composition (FOLVEC_FUSE=0). Chimes are NOT compared
// across fuse modes — charging fused ops less is the point — but they must
// be identical across backends and audit settings for a fixed fuse mode.

/// Machine whose fuse flag is forced rather than inherited from the env.
VectorMachine make_fused_machine(ScatterOrder order, std::size_t threads,
                                 bool audit, bool fuse) {
  MachineConfig cfg;
  cfg.scatter_order = order;
  cfg.shuffle_seed = 4242;
  cfg.audit = audit;
  cfg.fuse = fuse;
  if (threads == 0) {
    cfg.backend = BackendKind::kSerial;
  } else {
    cfg.backend = BackendKind::kParallel;
    cfg.backend_threads = threads;
    cfg.backend_grain = 8;
  }
  return VectorMachine(cfg);
}

/// Exercises the fused entry points plus their pooled *_into variants and
/// one full FOL1 decomposition; returns a flat digest of every result and
/// final memory image. Scatters sit inside ConflictWindows so the script is
/// audit-clean.
WordVec run_fused_script(VectorMachine& m, const Inputs& in) {
  const std::size_t n = in.a.size();
  WordVec digest;
  const auto emit = [&digest](const WordVec& v) {
    digest.insert(digest.end(), v.begin(), v.end());
  };
  const auto emit_mask = [&digest](const Mask& v) {
    for (auto b : v) digest.push_back(b);
  };

  // Distinct per-lane values, so a lane's readback matches only its own
  // write (the overwrite-and-check precondition).
  const WordVec labels = m.iota(n, 1, 3);

  WordVec table(in.table.begin(), in.table.end());
  {
    const ConflictWindow window(m, table, WindowKind::kDataRace,
                                "fused fuzz sge");
    const Mask survived = m.scatter_gather_eq(table, in.idx, labels);
    digest.push_back(static_cast<Word>(m.count_true(survived)));
    emit_mask(survived);
  }
  emit(table);

  WordVec table_masked(in.table.begin(), in.table.end());
  {
    const ConflictWindow window(m, table_masked, WindowKind::kDataRace,
                                "fused fuzz sge_masked");
    const Mask survived =
        m.scatter_gather_eq_masked(table_masked, in.idx, labels, in.mask);
    digest.push_back(static_cast<Word>(m.count_true(survived)));
    emit_mask(survived);
  }
  emit(table_masked);

  const auto [kept, rejected] = m.partition(in.a, in.mask);
  emit(kept);
  emit(rejected);

  WordVec kept2;
  WordVec rejected2;
  digest.push_back(
      static_cast<Word>(m.partition_into(kept2, rejected2, in.b, in.mask)));
  emit(kept2);
  emit(rejected2);

  // Pooled destination-passing round trip.
  PooledVec buf(m.pool(), 0);
  PooledVec buf2(m.pool(), 0);
  m.gather_into(*buf, in.table, in.idx);
  emit(*buf);
  m.add_scalar_into(*buf2, *buf, 11);
  emit(*buf2);
  m.compress_into(*buf, in.a, in.mask);
  emit(*buf);

  // Algorithm level: a duplicate-heavy FOL1 decomposition runs the fused
  // round loop end to end (or its unfused reference under fuse=false).
  if (n > 0) {
    WordVec work(in.table.size(), 0);
    WordVec fol_idx(in.idx.begin(), in.idx.end());
    const fol::Decomposition dec = fol::fol1_decompose(m, fol_idx, work);
    m.retire_work(work);
    digest.push_back(static_cast<Word>(dec.rounds()));
    for (const auto& set : dec.sets) {
      for (const std::size_t lane : set) {
        digest.push_back(static_cast<Word>(lane));
      }
    }
  }
  return digest;
}

class FusedDiffTest
    : public ::testing::TestWithParam<
          std::tuple<ScatterOrder, std::size_t, bool>> {
 protected:
  ScatterOrder order() const { return std::get<0>(GetParam()); }
  /// 0 = serial backend; otherwise parallel with this worker count.
  std::size_t threads() const { return std::get<1>(GetParam()); }
  bool audit() const { return std::get<2>(GetParam()); }
};

TEST_P(FusedDiffTest, FusedBitIdenticalToUnfusedComposition) {
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{64},
        std::size_t{257}, std::size_t{1000}}) {
    const Inputs in(n, 0xf05ed000 + n);
    VectorMachine fused = make_fused_machine(order(), threads(), audit(),
                                             /*fuse=*/true);
    VectorMachine unfused = make_fused_machine(order(), threads(), audit(),
                                               /*fuse=*/false);
    const WordVec want = run_fused_script(unfused, in);
    const WordVec got = run_fused_script(fused, in);
    ASSERT_EQ(want, got) << "fused digest diverged at n=" << n;
  }
}

TEST_P(FusedDiffTest, ChimesInvariantAcrossBackendAndAudit) {
  // For a fixed fuse mode the chime stream is part of the deterministic
  // contract: serial, parallel at any width, audit on or off — identical.
  for (const bool fuse : {true, false}) {
    const Inputs in(513, 0xc41135);
    VectorMachine base = make_fused_machine(order(), 0, false, fuse);
    const WordVec base_digest = run_fused_script(base, in);
    VectorMachine other =
        make_fused_machine(order(), threads(), audit(), fuse);
    const WordVec other_digest = run_fused_script(other, in);
    ASSERT_EQ(base_digest, other_digest);
    expect_same_costs(base.cost(), other.cost());
  }
}

using FusedDiffParam = std::tuple<ScatterOrder, std::size_t, bool>;

std::string fused_param_name(
    const ::testing::TestParamInfo<FusedDiffParam>& info) {
  static constexpr const char* kFusedOrderNames[] = {"Forward", "Reverse",
                                                     "Shuffled"};
  const std::size_t workers = std::get<1>(info.param);
  return std::string(kFusedOrderNames[static_cast<std::size_t>(
             std::get<0>(info.param))]) +
         (workers == 0 ? std::string("xSerial")
                       : "xParallel" + std::to_string(workers)) +
         (std::get<2>(info.param) ? "xAudit" : "xNoAudit");
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, FusedDiffTest,
    ::testing::Combine(::testing::Values(ScatterOrder::kForward,
                                         ScatterOrder::kReverse,
                                         ScatterOrder::kShuffled),
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{2}, std::size_t{4},
                                         std::size_t{8}),
                       ::testing::Bool()),
    fused_param_name);

// ---- SIMD backend differential fuzz ----------------------------------------
//
// The SIMD backend lowers the same primitives to real vector instructions
// (AVX2 / AVX-512 / NEON, per-level kernel tables): it must be bit-identical
// to SerialBackend for every primitive, every ScatterOrder, every forced ISA
// level, fuse on or off, audit on or off — same outputs, same memory images,
// same chime costs, same exceptions. Unsupported levels are skipped (the
// graceful-downgrade path is covered by simd_dispatch_test).

using SimdDiffParam = std::tuple<ScatterOrder, SimdLevel>;

std::string simd_param_name(
    const ::testing::TestParamInfo<SimdDiffParam>& info) {
  static constexpr const char* kOrderNames[] = {"Forward", "Reverse",
                                                "Shuffled"};
  std::string level = simd_level_name(std::get<1>(info.param));
  level[0] = static_cast<char>(std::toupper(level[0]));
  return std::string(
             kOrderNames[static_cast<std::size_t>(std::get<0>(info.param))]) +
         "x" + level;
}

class SimdDiffTest : public ::testing::TestWithParam<SimdDiffParam> {
 protected:
  void SetUp() override {
    if (!simd_level_supported(level())) {
      GTEST_SKIP() << simd_level_name(level())
                   << " is not available on this host/build";
    }
  }
  ScatterOrder order() const { return std::get<0>(GetParam()); }
  SimdLevel level() const { return std::get<1>(GetParam()); }
};

TEST_P(SimdDiffTest, EveryPrimitiveBitIdenticalWithIdenticalChimes) {
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{64},
        std::size_t{257}, std::size_t{1000}, std::size_t{4099}}) {
    const Inputs in(n, 0xfeed0000 + n);
    VectorMachine serial = make_serial(order(), 99);
    VectorMachine simd = make_simd(order(), 99, level());
    ASSERT_STREQ(simd.backend_name(), "simd");
    ASSERT_EQ(simd.active_simd_level(), level());
    const WordVec want = run_script(serial, in);
    const WordVec got = run_script(simd, in);
    ASSERT_EQ(want, got) << "digest diverged at n=" << n;
    expect_same_costs(serial.cost(), simd.cost());
    // Vector instructions actually dispatched through the kernel table.
    EXPECT_GT(simd.simd_dispatches(), 0u);
    EXPECT_EQ(serial.simd_dispatches(), 0u);
  }
}

TEST_P(SimdDiffTest, FusedBitIdenticalAcrossFuseAndAudit) {
  for (const bool audit : {false, true}) {
    for (const bool fuse : {true, false}) {
      const Inputs in(513, 0x51a3d000u + (audit ? 2u : 0u) + (fuse ? 1u : 0u));
      MachineConfig serial_cfg;
      serial_cfg.scatter_order = order();
      serial_cfg.shuffle_seed = 4242;
      serial_cfg.audit = audit;
      serial_cfg.fuse = fuse;
      serial_cfg.backend = BackendKind::kSerial;
      MachineConfig simd_cfg = serial_cfg;
      simd_cfg.backend = BackendKind::kSimd;
      simd_cfg.simd_level = level();
      VectorMachine serial(serial_cfg);
      VectorMachine simd(simd_cfg);
      // Audit must NOT pin the SIMD backend to serial: the kernels run on
      // the issuing thread, so the audited machine stays vectorized.
      ASSERT_STREQ(simd.backend_name(), "simd");
      const WordVec want = run_fused_script(serial, in);
      const WordVec got = run_fused_script(simd, in);
      ASSERT_EQ(want, got) << "audit=" << audit << " fuse=" << fuse;
      expect_same_costs(serial.cost(), simd.cost());
    }
  }
}

TEST_P(SimdDiffTest, ScatterSurvivorLaneExactUnderHeavyCollisions) {
  // Heavy duplicate addresses: the AVX-512 hardware scatter's overlapping-
  // store order (and every fallback) must reproduce the serial ELS survivor.
  Xoshiro256 rng(0x51a3dc7);
  for (int round = 0; round < 40; ++round) {
    const auto n = static_cast<std::size_t>(rng.in_range(1, 600));
    const auto table_size =
        static_cast<std::size_t>(rng.in_range(1, static_cast<Word>(n)));
    WordVec table_s(table_size, 0);
    WordVec idx(n);
    WordVec vals(n);
    for (auto& x : idx) {
      x = rng.in_range(0, static_cast<Word>(table_size) - 1);
    }
    for (auto& x : vals) x = rng.in_range(-1 << 20, 1 << 20);
    WordVec table_v = table_s;
    const auto seed = static_cast<std::uint64_t>(round) * 7919 + 1;
    VectorMachine serial = make_serial(order(), seed);
    VectorMachine simd = make_simd(order(), seed, level());
    serial.scatter(table_s, idx, vals);
    simd.scatter(table_v, idx, vals);
    ASSERT_EQ(table_s, table_v)
        << "scatter survivor diverged: n=" << n << " areas=" << table_size;
  }
}

TEST_P(SimdDiffTest, ExceptionParityWithSerial) {
  VectorMachine serial = make_serial(order(), 5);
  VectorMachine simd = make_simd(order(), 5, level());
  WordVec v(300, 1);
  v[257] = -4;
  EXPECT_THROW(serial.shl_scalar(v, 1), PreconditionError);
  EXPECT_THROW(simd.shl_scalar(v, 1), PreconditionError);
  WordVec table(16, 0);
  WordVec idx(300, 3);
  idx[170] = 99;
  EXPECT_THROW(serial.gather(table, idx), PreconditionError);
  EXPECT_THROW(simd.gather(table, idx), PreconditionError);
  const WordVec vals(300, 1);
  EXPECT_THROW(serial.scatter(table, idx, vals), PreconditionError);
  EXPECT_THROW(simd.scatter(table, idx, vals), PreconditionError);
  // Inactive out-of-bounds lanes are legal on both (the masked gather
  // kernel must not touch memory for inactive lanes).
  Mask mask(300, 1);
  mask[170] = 0;
  EXPECT_EQ(serial.gather_masked(table, idx, mask, -1),
            simd.gather_masked(table, idx, mask, -1));
  WordVec table_s = table;
  WordVec table_v = table;
  serial.scatter_masked(table_s, idx, vals, mask);
  simd.scatter_masked(table_v, idx, vals, mask);
  EXPECT_EQ(table_s, table_v);
}

TEST_P(SimdDiffTest, DivModScalarAdversarialValues) {
  // The div_s/mod_s kernels replace the hardware-less 64-bit divide with a
  // magic multiply; the magic pair and the floor/Euclid fixups must hold at
  // the extremes, for power-of-two divisors, and for the composite table
  // sizes the hashing probe recalc actually feeds them.
  WordVec values{0,
                 1,
                 -1,
                 2,
                 -2,
                 66,
                 -66,
                 67,
                 -67,
                 135,
                 -135,
                 (Word{1} << 62) - 1,
                 -((Word{1} << 62) - 1),
                 std::numeric_limits<Word>::max(),
                 std::numeric_limits<Word>::min(),
                 std::numeric_limits<Word>::min() + 1};
  Xoshiro256 rng(0xd1f0d1f0);
  while (values.size() < 300) {
    values.push_back(static_cast<Word>(rng.next()));
  }
  for (const Word d :
       {Word{1}, Word{2}, Word{3}, Word{7}, Word{31}, Word{64}, Word{67},
        Word{135}, Word{4096}, Word{999983}, (Word{1} << 62) + 1}) {
    VectorMachine serial = make_serial(order(), 7);
    VectorMachine simd = make_simd(order(), 7, level());
    const WordVec q_want = serial.div_scalar(values, d);
    const WordVec q_got = simd.div_scalar(values, d);
    const WordVec r_want = serial.mod_scalar(values, d);
    const WordVec r_got = simd.mod_scalar(values, d);
    for (std::size_t i = 0; i < values.size(); ++i) {
      ASSERT_EQ(q_want[i], q_got[i]) << "div " << values[i] << " / " << d;
      ASSERT_EQ(r_want[i], r_got[i]) << "mod " << values[i] << " % " << d;
      // Floor/Euclid invariants against first principles.
      ASSERT_GE(r_want[i], 0) << values[i] << " % " << d;
      ASSERT_LT(r_want[i], d) << values[i] << " % " << d;
    }
  }
}

TEST_P(SimdDiffTest, ComposesWithParallelBackend) {
  // parallel+simd: pool chunks run the SIMD inner loops. Must match serial
  // for the full script at multiple worker counts.
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const Inputs in(1000, 0xc0de5000 + threads);
    VectorMachine serial = make_serial(order(), 99);
    VectorMachine both = make_parallel_simd(order(), 99, threads, level());
    ASSERT_STREQ(both.backend_name(), "parallel+simd");
    EXPECT_EQ(both.backend_workers(), threads);
    ASSERT_EQ(both.active_simd_level(), level());
    const WordVec want = run_script(serial, in);
    const WordVec got = run_script(both, in);
    ASSERT_EQ(want, got) << "threads=" << threads;
    expect_same_costs(serial.cost(), both.cost());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOrdersAllLevels, SimdDiffTest,
    ::testing::Combine(::testing::Values(ScatterOrder::kForward,
                                         ScatterOrder::kReverse,
                                         ScatterOrder::kShuffled),
                       ::testing::Values(SimdLevel::kScalar, SimdLevel::kNeon,
                                         SimdLevel::kAvx2,
                                         SimdLevel::kAvx512)),
    simd_param_name);

TEST(SimdMixedLevelTest, AllSupportedLevelsProduceOneDigest) {
  // Mixed-level differential fuzz: every supported ISA level (and the
  // scalar table) must produce the same digest for the same script — not
  // just each level vs serial, but every pair, including fused scripts.
  std::vector<SimdLevel> levels;
  for (const SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kNeon, SimdLevel::kAvx2,
        SimdLevel::kAvx512}) {
    if (simd_level_supported(level)) levels.push_back(level);
  }
  ASSERT_FALSE(levels.empty());
  for (const ScatterOrder order :
       {ScatterOrder::kForward, ScatterOrder::kReverse,
        ScatterOrder::kShuffled}) {
    for (const std::size_t n : {std::size_t{65}, std::size_t{1000}}) {
      const Inputs in(n, 0x3113d000 + n);
      std::vector<WordVec> digests;
      std::vector<WordVec> fused_digests;
      for (const SimdLevel level : levels) {
        VectorMachine m = make_simd(order, 99, level);
        digests.push_back(run_script(m, in));
        MachineConfig cfg;
        cfg.scatter_order = order;
        cfg.shuffle_seed = 4242;
        cfg.audit = false;
        cfg.fuse = true;
        cfg.backend = BackendKind::kSimd;
        cfg.simd_level = level;
        VectorMachine fm(cfg);
        fused_digests.push_back(run_fused_script(fm, in));
      }
      for (std::size_t i = 1; i < levels.size(); ++i) {
        EXPECT_EQ(digests[0], digests[i])
            << simd_level_name(levels[0]) << " vs "
            << simd_level_name(levels[i]) << " at n=" << n;
        EXPECT_EQ(fused_digests[0], fused_digests[i])
            << "fused " << simd_level_name(levels[0]) << " vs "
            << simd_level_name(levels[i]) << " at n=" << n;
      }
    }
  }
}

// ---- merge-strategy scaling fuzz -------------------------------------------
//
// The scatter merge strategy (single-pass claim intervals vs two-pass
// owner-computes) is a host-side choice: for every ScatterOrder, worker
// count, and fuse mode, a machine forced onto either merge must be
// bit-identical — outputs, memory images, and chimes — to the serial
// reference.

using MergeScalingParam =
    std::tuple<ScatterOrder, std::size_t, MergeStrategy>;

class MergeScalingDiffTest
    : public ::testing::TestWithParam<MergeScalingParam> {
 protected:
  ScatterOrder order() const { return std::get<0>(GetParam()); }
  std::size_t threads() const { return std::get<1>(GetParam()); }
  MergeStrategy merge() const { return std::get<2>(GetParam()); }
};

TEST_P(MergeScalingDiffTest, FullScriptBitIdenticalToSerial) {
  for (const std::size_t n : {std::size_t{257}, std::size_t{1000}}) {
    const Inputs in(n, 0x4e46e000 + n);
    VectorMachine serial = make_serial(order(), 99);
    VectorMachine parallel =
        make_parallel(order(), 99, threads(), /*grain=*/8, merge());
    const WordVec want = run_script(serial, in);
    const WordVec got = run_script(parallel, in);
    ASSERT_EQ(want, got) << "digest diverged at n=" << n;
    expect_same_costs(serial.cost(), parallel.cost());
  }
}

TEST_P(MergeScalingDiffTest, FusedScriptBitIdenticalForEitherFuseMode) {
  for (const bool fuse : {true, false}) {
    const Inputs in(600, 0x4e46ef);
    MachineConfig serial_cfg;
    serial_cfg.scatter_order = order();
    serial_cfg.shuffle_seed = 4242;
    serial_cfg.audit = false;
    serial_cfg.fuse = fuse;
    serial_cfg.backend = BackendKind::kSerial;
    MachineConfig par_cfg = serial_cfg;
    par_cfg.backend = BackendKind::kParallel;
    par_cfg.backend_threads = threads();
    par_cfg.backend_grain = 8;
    par_cfg.merge_strategy = merge();
    VectorMachine serial(serial_cfg);
    VectorMachine parallel(par_cfg);
    const WordVec want = run_fused_script(serial, in);
    const WordVec got = run_fused_script(parallel, in);
    ASSERT_EQ(want, got) << "fuse=" << fuse;
    expect_same_costs(serial.cost(), parallel.cost());
  }
}

std::string merge_scaling_param_name(
    const ::testing::TestParamInfo<MergeScalingParam>& info) {
  static constexpr const char* kOrderNames[] = {"Forward", "Reverse",
                                                "Shuffled"};
  static constexpr const char* kMergeNames[] = {"Auto", "SinglePass",
                                                "TwoPass"};
  return std::string(
             kOrderNames[static_cast<std::size_t>(std::get<0>(info.param))]) +
         "x" + std::to_string(std::get<1>(info.param)) + "threadsx" +
         kMergeNames[static_cast<std::size_t>(std::get<2>(info.param))];
}

INSTANTIATE_TEST_SUITE_P(
    AllOrdersWorkersMerges, MergeScalingDiffTest,
    ::testing::Combine(::testing::Values(ScatterOrder::kForward,
                                         ScatterOrder::kReverse,
                                         ScatterOrder::kShuffled),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4}, std::size_t{8}),
                       ::testing::Values(MergeStrategy::kSinglePass,
                                         MergeStrategy::kTwoPass)),
    merge_scaling_param_name);

TEST(FusedDiffEdgeTest, MaskedSgeFaultsLikeCompositionWithScatterApplied) {
  // An out-of-bounds INACTIVE lane: the masked scatter skips it, but the
  // fused op's readback gathers all lanes, so it must throw exactly like
  // the unfused composition does at its gather — i.e. with the scatter's
  // stores already landed.
  for (const bool fuse : {true, false}) {
    VectorMachine m = make_fused_machine(ScatterOrder::kForward, 0,
                                         /*audit=*/false, fuse);
    WordVec table(16, -1);
    WordVec idx{3, 99, 5};
    const WordVec vals{10, 11, 12};
    Mask active{1, 0, 1};
    EXPECT_THROW(m.scatter_gather_eq_masked(table, idx, vals, active),
                 PreconditionError);
    EXPECT_EQ(table[3], 10);
    EXPECT_EQ(table[5], 12);
  }
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<int> hits(1000, 0);
  pool.run(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, RethrowsLowestTaskException) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    try {
      pool.run(64, [&](std::size_t i) {
        if (i % 2 == 1) {
          throw std::runtime_error("task " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 1");
    }
  }
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool pool(3);
  std::size_t total = 0;
  for (int job = 0; job < 100; ++job) {
    std::vector<std::size_t> marks(17, 0);
    pool.run(marks.size(), [&](std::size_t i) { marks[i] = i; });
    for (std::size_t i = 0; i < marks.size(); ++i) total += marks[i];
  }
  EXPECT_EQ(total, 100u * (16u * 17u / 2u));
}

}  // namespace
}  // namespace folvec::vm
