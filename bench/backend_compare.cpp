// Serial vs parallel execution backend on the paper's core workloads:
// FOL1 decomposition, FOL* decomposition, multiple hashing (Figure 8), and
// address-calculation sorting (Figure 12), at N up to 2^20.
//
// Two numbers are reported side by side for every workload:
//
//   * the chime-model time (modeled S-810 microseconds) — identical across
//     backends by construction, and asserted so: the backend only changes
//     who executes the lanes, never which instructions are issued;
//   * measured host wall-clock per backend, and the parallel-over-serial
//     wall acceleration.
//
// Every run is also differentially checked: the parallel digest (outputs +
// final memory images) must be bit-identical to the serial one, which makes
// this bench double as a million-element backend equivalence test.
//
// Worker count defaults to 8 (override with FOLVEC_BENCH_THREADS); on hosts
// with fewer cores the wall acceleration honestly degrades toward 1.
#include <cstddef>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_harness/report.h"
#include "fol/fol1.h"
#include "fol/fol_star.h"
#include "hashing/open_table.h"
#include "sorting/address_calc.h"
#include "support/env.h"
#include "support/prng.h"
#include "support/require.h"
#include "support/table_printer.h"
#include "vm/machine.h"

namespace {

using folvec::vm::BackendKind;
using folvec::vm::MachineConfig;
using folvec::vm::VectorMachine;
using folvec::vm::Word;
using folvec::vm::WordVec;

struct Sample {
  double chime_us = 0;
  double wall_s = 0;
  WordVec digest;
};

std::size_t bench_threads() {
  if (const auto env = folvec::env_value("FOLVEC_BENCH_THREADS")) {
    const long v = std::strtol(env->c_str(), nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 8;
}

template <typename Body>
Sample run_backend(BackendKind kind, std::size_t threads,
                   const folvec::vm::CostParams& params, const Body& body) {
  MachineConfig cfg;
  cfg.audit = false;  // the auditor would pin execution to the serial path
  cfg.backend = kind;
  cfg.backend_threads = threads;
  VectorMachine m(cfg);
  Sample s;
  s.digest = body(m);
  s.chime_us = m.cost().microseconds(params);
  s.wall_s = m.cost().total_wall_seconds();
  return s;
}

void emit(WordVec& digest, const WordVec& v) {
  digest.insert(digest.end(), v.begin(), v.end());
}

WordVec fol1_body(VectorMachine& m, std::size_t n) {
  const std::size_t distinct = std::max<std::size_t>(1, n / 4);
  const WordVec idx =
      folvec::random_keys(n, static_cast<Word>(distinct), 0xf011 + n);
  WordVec work(distinct, 0);
  const folvec::fol::Decomposition d = folvec::fol::fol1_decompose(m, idx, work);
  WordVec digest;
  for (const auto& set : d.sets) {
    digest.push_back(static_cast<Word>(set.size()));
    for (std::size_t lane : set) digest.push_back(static_cast<Word>(lane));
  }
  emit(digest, work);
  return digest;
}

WordVec fol_star_body(VectorMachine& m, std::size_t n) {
  const std::size_t areas = 8 * n;
  std::vector<WordVec> lanes(2);
  for (std::size_t k = 0; k < lanes.size(); ++k) {
    lanes[k] =
        folvec::random_keys(n, static_cast<Word>(areas), 0x57a2 + n + k);
  }
  WordVec work(areas, 0);
  const folvec::fol::StarDecomposition d =
      folvec::fol::fol_star_decompose(m, lanes, work);
  WordVec digest{static_cast<Word>(d.scalar_rescues),
                 static_cast<Word>(d.forced_singletons)};
  for (const auto& set : d.sets) {
    digest.push_back(static_cast<Word>(set.size()));
    for (std::size_t lane : set) digest.push_back(static_cast<Word>(lane));
  }
  return digest;
}

WordVec hashing_body(VectorMachine& m, std::size_t n) {
  const WordVec keys = folvec::random_unique_keys(
      n, static_cast<Word>(8 * n), 0x4a54 + n);
  WordVec table(2 * n + 1, folvec::hashing::kUnentered);
  const folvec::hashing::MultiHashStats st =
      folvec::hashing::multi_hash_open_insert(
          m, table, keys, folvec::hashing::ProbeVariant::kKeyDependent);
  WordVec digest{static_cast<Word>(st.iterations),
                 static_cast<Word>(st.max_vector_len)};
  emit(digest, table);
  return digest;
}

WordVec sorting_body(VectorMachine& m, std::size_t n) {
  const auto vmax = static_cast<Word>(4 * n);
  WordVec data = folvec::random_keys(n, vmax, 0x5057 + n);
  folvec::sorting::address_calc_sort_vector(m, data, vmax);
  return data;
}

}  // namespace

int main() {
  using folvec::Cell;
  using folvec::JsonArray;
  const folvec::vm::CostParams params = folvec::vm::CostParams::s810_like();
  const std::size_t threads = bench_threads();
  folvec::bench::BenchReport report("backend_compare");
  report.config("threads", threads);
  report.config("sizes_log2", JsonArray{14, 17, 20});

  struct Workload {
    const char* name;
    WordVec (*body)(VectorMachine&, std::size_t);
  };
  const Workload workloads[] = {
      {"fol1", fol1_body},
      {"fol_star", fol_star_body},
      {"multi_hash", hashing_body},
      {"addr_calc_sort", sorting_body},
  };

  folvec::TablePrinter table({"workload", "N", "chime_us", "serial_wall_ms",
                              "parallel_wall_ms", "wall_accel"});
  for (const Workload& w : workloads) {
    for (int lg : {14, 17, 20}) {
      const auto n = static_cast<std::size_t>(1) << lg;
      const auto body = [&w, n](VectorMachine& m) { return w.body(m, n); };
      const Sample serial =
          run_backend(BackendKind::kSerial, threads, params, body);
      const Sample parallel =
          run_backend(BackendKind::kParallel, threads, params, body);
      FOLVEC_CHECK(serial.digest == parallel.digest,
                   "parallel backend diverged from serial reference");
      FOLVEC_CHECK(serial.chime_us == parallel.chime_us,
                   "backends must issue identical instruction streams");
      const double accel =
          parallel.wall_s > 0 ? serial.wall_s / parallel.wall_s : 0;
      table.add_row({w.name, Cell(static_cast<long long>(n)),
                     Cell(serial.chime_us, 0), Cell(serial.wall_s * 1e3, 2),
                     Cell(parallel.wall_s * 1e3, 2), Cell(accel, 2)});
    }
  }
  table.print(std::cout,
              "Backend comparison: chime model vs measured wall clock (" +
                  std::to_string(threads) + " workers requested)");
  report.add_table("Backend comparison: chime model vs measured wall clock (" +
                       std::to_string(threads) + " workers requested)",
                   table);
  std::cout << "\nchime times are backend-invariant (asserted); wall "
               "acceleration depends on host core count\n";
  return 0;
}
