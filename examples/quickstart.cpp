// Quickstart: the shared-data hazard and the FOL cure, in 80 lines.
//
// Scenario (paper Figure 4): eight updates arrive for five storage cells;
// some cells are hit several times. A data-parallel machine that simply
// scatters all eight updates loses the colliding ones. FOL1 splits the
// update lanes into conflict-free generations that can each run as one
// vector operation — and the number of generations is provably minimal.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <iostream>

#include "fol/fol1.h"
#include "fol/invariants.h"
#include "vm/machine.h"

int main() {
  using namespace folvec;
  using vm::Word;
  using vm::WordVec;

  // Eight updates; lanes 0/2/5 hit cell 1, lanes 3/4 hit cell 4.
  const WordVec target_cell{1, 0, 1, 4, 4, 1, 2, 3};
  const WordVec update_value{10, 11, 12, 13, 14, 15, 16, 17};
  std::vector<Word> cells(5, 0);

  vm::VectorMachine m;

  // --- The hazard: forced vectorization drops colliding updates. --------
  // Suppose each update must *accumulate* (cell += value). A single
  // gather-add-scatter loses work: the three lanes aimed at cell 1 all read
  // the same old value, and only one of their writes survives. The race is
  // the point of this demo, so it runs on a machine with ScatterCheck off
  // (under FOLVEC_AUDIT=1 the default machine would refuse the scatter).
  {
    vm::MachineConfig unaudited;
    unaudited.audit = false;
    vm::VectorMachine demo(unaudited);
    std::vector<Word> broken = cells;
    const WordVec old_vals = demo.gather(broken, target_cell);
    const WordVec new_vals = demo.add(old_vals, update_value);
    demo.scatter(broken, target_cell, new_vals);
    Word total = 0;
    for (Word c : broken) total += c;
    std::cout << "forced vectorization: cells sum to " << total
              << " (should be 108) -- two colliding updates were lost\n";
  }

  // --- The cure: FOL1 splits the lanes into conflict-free sets. ----------
  std::vector<Word> work(cells.size(), 0);
  const fol::Decomposition dec = fol::fol1_decompose(m, target_cell, work);

  std::cout << "\nFOL1 produced " << dec.rounds()
            << " parallel-processable sets:\n";
  for (std::size_t j = 0; j < dec.rounds(); ++j) {
    std::cout << "  S" << j + 1 << " = lanes {";
    for (std::size_t i = 0; i < dec.sets[j].size(); ++i) {
      std::cout << (i ? ", " : " ") << dec.sets[j][i];
    }
    std::cout << " }\n";
  }

  // Each set is duplicate-free, so gather-add-scatter is now safe; the sets
  // run one after another, exactly as the paper prescribes.
  for (const auto& set : dec.sets) {
    WordVec idx(set.size());
    WordVec val(set.size());
    for (std::size_t i = 0; i < set.size(); ++i) {
      idx[i] = target_cell[set[i]];
      val[i] = update_value[set[i]];
    }
    const WordVec old_vals = m.gather(cells, idx);
    m.scatter(cells, idx, m.add(old_vals, val));
  }
  Word total = 0;
  for (Word c : cells) total += c;
  std::cout << "\nwith FOL1: cells sum to " << total << " (correct)\n";

  // The guarantees of Section 3.2, checked at runtime:
  std::cout << "theorems hold: "
            << (fol::satisfies_all_theorems(dec, target_cell) ? "yes" : "NO")
            << " (disjoint cover, conflict-free sets, minimal set count, "
               "non-increasing sizes)\n";
  return 0;
}
