file(REMOVE_RECURSE
  "CMakeFiles/folvec_gc.dir/heap.cpp.o"
  "CMakeFiles/folvec_gc.dir/heap.cpp.o.d"
  "libfolvec_gc.a"
  "libfolvec_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/folvec_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
