// ParallelBackend: chunks VectorMachine primitives across a thread pool.
//
// Every primitive must be bit-identical to SerialBackend at any worker
// count. For elementwise work, reductions, compress, and bounds scans that
// follows from deterministic chunking (contiguous ascending chunks, partials
// combined in chunk order). Scatter is the interesting case — the survivor
// of a contested address is defined by the lane *traversal order* — and is
// handled with a two-pass owner-computes merge:
//
//   pass 1 (parallel over traversal positions): each worker walks its
//     contiguous slice of the traversal order and routes every active
//     (address, value) write into a bucket keyed by the destination address
//     range that owns it, preserving the slice's position order;
//   pass 2 (parallel over address ranges): each worker owns one address
//     range and replays that range's buckets slice 0..W-1, each in recorded
//     order — i.e. exactly ascending traversal position.
//
// For any address, writes are applied in traversal-position order and only
// by its owning worker, so the survivor equals the serial loop's for every
// ScatterOrder and any worker count, and no two workers ever touch the same
// table word (no atomics needed; the pool's join is the barrier between
// passes). This is the lane-exact ELS merge: the parallel machine stores
// exactly one of the written values — the same one the serial machine does.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "vm/backend.h"
#include "vm/thread_pool.h"

namespace folvec::vm {

class ParallelBackend final : public Backend {
 public:
  /// `workers` == 0 picks std::thread::hardware_concurrency (at least 1).
  /// `grain` is the minimum lane count per chunk: instructions shorter than
  /// two grains run inline, so tiny vectors skip dispatch entirely.
  explicit ParallelBackend(std::size_t workers, std::size_t grain);
  ~ParallelBackend() override;

  const char* name() const override { return "parallel"; }
  std::size_t workers() const override { return workers_; }

  void for_lanes(std::size_t n, RangeFn fn) override;
  Word reduce_sum(std::span<const Word> v) override;
  Word reduce_min(std::span<const Word> v) override;
  Word reduce_max(std::span<const Word> v) override;
  std::size_t count_true(std::span<const std::uint8_t> m) override;
  WordVec compress(std::span<const Word> v,
                   std::span<const std::uint8_t> m) override;
  std::size_t first_oob(std::span<const Word> idx, std::size_t table_size,
                        const std::uint8_t* mask) override;
  void scatter(std::span<Word> table, std::span<const Word> idx,
               std::span<const Word> vals, const std::uint8_t* mask,
               ScatterTraversal traversal,
               std::span<const std::size_t> order) override;
  void compress_into(std::span<const Word> v, std::span<const std::uint8_t> m,
                     std::span<Word> out) override;
  /// The scatter pass reuses the owner-computes merge above; the readback
  /// compare pass then chunks lanes with per-chunk survivor partials summed
  /// in chunk order, so the count (and every mask byte) is bit-identical to
  /// serial at any worker count.
  std::size_t scatter_gather_eq(std::span<Word> table,
                                std::span<const Word> idx,
                                std::span<const Word> vals,
                                const std::uint8_t* mask,
                                ScatterTraversal traversal,
                                std::span<const std::size_t> order,
                                std::span<std::uint8_t> out_match,
                                void (*between_passes)(void*),
                                void* hook_ctx) override;
  void partition(std::span<const Word> v, std::span<const std::uint8_t> m,
                 std::span<Word> kept, std::span<Word> rejected) override;

 private:
  /// One routed scatter write: destination address and the value stored.
  struct Route {
    Word addr;
    Word val;
  };

  /// Chunks an n-lane instruction: 1 (inline) below two grains, otherwise
  /// at most `workers_`, never fewer than one grain per chunk.
  std::size_t chunks_for(std::size_t n) const;

  /// The pool, spawned on first parallel-sized instruction.
  ThreadPool& pool();

  Word reduce(std::span<const Word> v, Word (*fold)(Word, Word));

  std::size_t workers_;
  std::size_t grain_;
  std::unique_ptr<ThreadPool> pool_;
  /// Scatter routing buckets, row-major [slice][owner range]; reused across
  /// instructions to keep capacity warm.
  std::vector<std::vector<Route>> buckets_;
};

}  // namespace folvec::vm
