// Structured hazard reports for the ScatterCheck auditor (see checker.h).
//
// A Hazard describes one rule violation observed at a single vector
// instruction, with enough lane-level detail that a test can assert on the
// exact offending lanes and a human can read the pretty-printed report and
// know which address was contested and which values collided there. Hazards
// accumulate in a per-machine HazardReport; audit-class hazards additionally
// raise AuditError when MachineConfig::audit_throw is set.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/require.h"
#include "vm/cost_model.h"

namespace folvec::vm {

/// Identical to the alias in machine.h (which includes this header);
/// duplicated so the report types stand alone.
using Word = std::int64_t;

/// What kind of contract was broken. The first two are hard preconditions
/// (the machine refuses them even without audit mode); the rest are
/// audit-only hazards — the vector-machine analogues of data races.
enum class HazardKind : std::uint8_t {
  kOutOfBounds,           ///< a lane's address is outside the table
  kLengthMismatch,        ///< index/value/mask operand lengths disagree
  kUnsanctionedDuplicate, ///< duplicate-address scatter outside a FOL round
  kElsViolation,          ///< readback saw a value no colliding lane wrote
  kClobberedWorkRead,     ///< gather from work whose labels were never retired
  kTupleConflict,         ///< two FOL* tuples in one set share an address
  kTheoremViolation,      ///< a Decomposition fails satisfies_all_theorems
};

/// Short stable name for a HazardKind ("out-of-bounds", "els-violation", ...).
const char* hazard_kind_name(HazardKind kind);

/// Sentinel lane id used when a write came from the scalar unit
/// (VectorMachine::scalar_store) rather than a vector lane.
inline constexpr std::size_t kScalarLane = static_cast<std::size_t>(-1);

/// One observed violation, at one instruction, at (usually) one address.
struct Hazard {
  HazardKind kind = HazardKind::kOutOfBounds;
  /// The instruction class that tripped the check.
  OpClass op = OpClass::kVectorScatter;
  /// The contested table index, or -1 when the hazard is not about a single
  /// address (length mismatches, theorem violations).
  Word address = -1;
  /// The lanes involved, in ascending order. For kElsViolation these are the
  /// lanes whose writes were amalgamated; for kTupleConflict they are tuple
  /// indices within the offending set; kScalarLane marks a scalar-unit write.
  std::vector<std::size_t> lanes;
  /// The value actually observed in memory (kElsViolation /
  /// kClobberedWorkRead), else 0.
  Word found = 0;
  /// The values that would have been legal to observe (the colliding lanes'
  /// written values, for kElsViolation).
  std::vector<Word> expected;
  /// Label of the enclosing ConflictWindow, or "" outside any window.
  std::string context;
  /// Fully formatted one-line diagnostic.
  std::string message;

  std::string to_string() const;
};

/// Accumulated hazards for one VectorMachine. Tests assert on this; the CLI
/// pretty-prints it via to_string().
class HazardReport {
 public:
  void add(Hazard h) { hazards_.push_back(std::move(h)); }
  void clear() { hazards_.clear(); }

  bool empty() const { return hazards_.empty(); }
  std::size_t size() const { return hazards_.size(); }
  const std::vector<Hazard>& hazards() const { return hazards_; }
  const Hazard& operator[](std::size_t i) const { return hazards_[i]; }

  /// Number of recorded hazards of one kind.
  std::size_t count(HazardKind kind) const;

  /// First recorded hazard of one kind, or nullptr.
  const Hazard* first(HazardKind kind) const;

  /// Multi-line human-readable report ("no hazards" when empty).
  std::string to_string() const;

 private:
  std::vector<Hazard> hazards_;
};

/// Thrown for audit-class hazards when MachineConfig::audit_throw is set.
/// Derives InternalError so existing "the substrate is broken" expectations
/// (e.g. FOL under ELS-violation injection) keep holding under audit.
class AuditError : public InternalError {
 public:
  explicit AuditError(const std::string& what) : InternalError(what) {}
};

}  // namespace folvec::vm
