#include "vm/buffer_pool.h"

#include <bit>
#include <utility>

namespace folvec::vm {

std::size_t BufferPool::floor_log2(std::size_t v) {
  return static_cast<std::size_t>(std::bit_width(v)) - 1;
}

BufferPool::WordVec BufferPool::acquire(std::size_t n) {
  ++stats_.acquires;
  // Bucket b holds capacities in [2^b, 2^(b+1)). The search starts in the
  // bucket containing `want` itself — whose members fit only if their
  // individual capacity reaches want — and walks two buckets higher, where
  // every member fits. Larger buckets are deliberately not scanned: burning
  // a huge buffer on a tiny ask would evict it from the size class that
  // actually needs it.
  const std::size_t want = n == 0 ? 1 : n;
  const std::size_t lo = floor_log2(want);
  for (std::size_t b = lo; b < kBuckets && b <= lo + 2; ++b) {
    std::vector<WordVec>& bucket = buckets_[b];
    for (std::size_t i = bucket.size(); i-- > 0;) {
      if (bucket[i].capacity() < want) continue;
      WordVec v = std::move(bucket[i]);
      bucket.erase(bucket.begin() + static_cast<std::ptrdiff_t>(i));
      stats_.held_words -= v.capacity();
      ++stats_.hits;
      v.resize(n);
      return v;
    }
  }
  ++stats_.misses;
  WordVec v;
  v.resize(n);
  return v;
}

void BufferPool::release(WordVec&& v) {
  WordVec dead = std::move(v);
  if (dead.capacity() == 0) {
    ++stats_.discards;
    return;
  }
  const std::size_t b = floor_log2(dead.capacity());
  std::vector<WordVec>& bucket = buckets_[b];
  if (bucket.size() >= kMaxPerBucket) {
    ++stats_.discards;
    return;
  }
  ++stats_.releases;
  stats_.held_words += dead.capacity();
  if (stats_.held_words > stats_.peak_held_words) {
    stats_.peak_held_words = stats_.held_words;
  }
  dead.clear();
  bucket.push_back(std::move(dead));
}

void BufferPool::trim() {
  for (auto& bucket : buckets_) bucket.clear();
  stats_.held_words = 0;
}

}  // namespace folvec::vm
