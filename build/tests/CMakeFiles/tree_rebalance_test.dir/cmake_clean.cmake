file(REMOVE_RECURSE
  "CMakeFiles/tree_rebalance_test.dir/tree_rebalance_test.cpp.o"
  "CMakeFiles/tree_rebalance_test.dir/tree_rebalance_test.cpp.o.d"
  "tree_rebalance_test"
  "tree_rebalance_test.pdb"
  "tree_rebalance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_rebalance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
