// Serving-layer load generator: open-loop request streams against the
// sharded batch server (src/serve/), the end-to-end shape the paper's
// batch primitives exist to absorb.
//
// Scenarios, each a deterministic request stream driven in pump mode
// (fixed batching, bit-reproducible counters) plus a threaded open-loop
// pass for wall latency:
//
//   * uniform    — keys uniform over the working set; the baseline row.
//   * zipf_hot   — Zipf(s=1.1) skew: a handful of hot keys dominate, the
//                  regime batching and duplicate resolution were built for.
//   * clustered  — draws cluster in contiguous key ranges (locality),
//                  stressing the router's multiplicative spread.
//   * burst      — arrivals in bursts with idle gaps: coalescer fill vs
//                  latency trade.
//   * faulted    — the zipf stream with injected probe-cycle saturation
//                  (support/faultsim, "probe=rate"): shard upserts recover
//                  by rehash-and-retry and the digest must stay exact.
//
// Every scenario cross-checks the sharded server against one serial
// unsharded VectorHashMap (full key sweep, bit-identical), so the bench
// doubles as an end-to-end differential test at load sizes.
//
// A final section measures the parallel backend's scatter merge strategy
// on exactly the scatters the serving layer issues (shard-local,
// kShuffled => kExplicit traversal, sub-batch sized): kAuto against both
// forced strategies. The wall-acceleration notes feed
// bench/goldens/backend_scaling.json, encoding the kAuto cutover decision
// (single-pass below ~160 lanes, two-pass above) as a regression floor.
//
// SLO notes: p50/p99 end-to-end latency and throughput land in wall-keyed
// notes (exempt from the deterministic trend gate); the smoke-size SLO
// assertions (generous bounds — shared runners are noisy) are recorded as
// slo_*_pass notes and enforced with FOLVEC_CHECK.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_harness/report.h"
#include "hashing/hash_map.h"
#include "serve/server.h"
#include "support/env.h"
#include "support/faultsim.h"
#include "support/prng.h"
#include "support/require.h"
#include "support/table_printer.h"
#include "telemetry/metrics.h"

using namespace folvec;
using serve::BatchServer;
using serve::BatchServerConfig;
using serve::OpKind;
using vm::Word;
using vm::WordVec;

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const auto v = env_value(name)) {
    const long parsed = std::strtol(v->c_str(), nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

// ---- key generators --------------------------------------------------------

/// Zipf(s) over [0, n) via inverse-CDF binary search on a precomputed
/// table. Deterministic given the stream's PRNG.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    double sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (double& c : cdf_) c /= sum;
  }
  Word draw(Xoshiro256& rng) const {
    const double u = rng.unit();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<Word>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

struct Op {
  OpKind kind;
  Word key;
  Word value;
};

enum class KeyDist { kUniform, kZipf, kClustered };

/// One deterministic request stream: 60% lookups (half targeting a
/// disjoint never-written range — the Bloom filter's short-circuit case),
/// 30% upserts, 10% erases.
std::vector<Op> make_stream(std::uint64_t seed, std::size_t n,
                            std::size_t key_space, KeyDist dist) {
  Xoshiro256 rng(seed);
  const ZipfSampler zipf(key_space, 1.1);
  Word cluster_base = 0;
  std::vector<Op> ops;
  ops.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Word key = 0;
    switch (dist) {
      case KeyDist::kUniform:
        key = static_cast<Word>(rng.below(key_space));
        break;
      case KeyDist::kZipf:
        key = zipf.draw(rng);
        break;
      case KeyDist::kClustered:
        // Stay in a 64-key cluster, hopping clusters every ~256 draws.
        if (rng.below(256) == 0) {
          cluster_base = static_cast<Word>(rng.below(key_space / 64) * 64);
        }
        key = cluster_base + static_cast<Word>(rng.below(64));
        break;
    }
    const double roll = rng.unit();
    if (roll < 0.30) {
      ops.push_back({OpKind::kUpsert, key, static_cast<Word>(rng.below(1u << 20))});
    } else if (roll < 0.90) {
      const Word probe =
          rng.unit() < 0.5 ? key : key + static_cast<Word>(2 * key_space);
      ops.push_back({OpKind::kLookup, probe, 0});
    } else {
      ops.push_back({OpKind::kErase, key, 0});
    }
  }
  return ops;
}

// ---- differential reference ------------------------------------------------

/// Replays a stream against a serial unsharded VectorHashMap with the same
/// same-op run splitting the server applies, then sweeps the whole key
/// space on both and requires bit-identical answers.
void check_digest(BatchServer& server, const std::vector<Op>& ops,
                  std::size_t key_space) {
  vm::MachineConfig serial_cfg;
  serial_cfg.backend = vm::BackendKind::kSerial;
  serial_cfg.audit = false;
  vm::VectorMachine m(serial_cfg);
  hashing::VectorHashMap reference(64);
  std::size_t i = 0;
  while (i < ops.size()) {
    std::size_t j = i;
    while (j < ops.size() && ops[j].kind == ops[i].kind) ++j;
    WordVec keys;
    for (std::size_t k = i; k < j; ++k) keys.push_back(ops[k].key);
    if (ops[i].kind == OpKind::kUpsert) {
      WordVec vals;
      for (std::size_t k = i; k < j; ++k) vals.push_back(ops[k].value);
      reference.upsert_batch(m, keys, vals);
    } else if (ops[i].kind == OpKind::kErase) {
      reference.erase_batch(m, keys);
    }
    i = j;
  }
  FOLVEC_CHECK(server.map().size() == reference.size(),
               "sharded size must match the serial reference");
  WordVec sweep;
  for (Word k = 0; k < static_cast<Word>(key_space); ++k) sweep.push_back(k);
  const WordVec got = server.map().lookup_batch(sweep, serve::kAbsent);
  const WordVec want = reference.lookup_batch(m, sweep, serve::kAbsent);
  FOLVEC_CHECK(got == want,
               "sharded lookup sweep must be bit-identical to the serial "
               "reference");
}

// ---- scenario driver -------------------------------------------------------

struct ScenarioResult {
  double wall_seconds = 0;
  double throughput_rps = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t bloom_skips = 0;
  std::uint64_t batches = 0;
  std::size_t final_size = 0;
};

BatchServerConfig server_config(std::size_t shards, std::size_t workers) {
  BatchServerConfig cfg;
  cfg.map.shards = shards;
  cfg.map.machine.backend = vm::BackendKind::kParallelSimd;
  cfg.map.machine.backend_threads = workers;
  cfg.map.machine.audit = false;
  cfg.coalesce.max_batch = 512;
  cfg.coalesce.max_wait = std::chrono::microseconds(200);
  return cfg;
}

/// Pump mode with a burst schedule: submit `burst` requests, pump, repeat.
/// Deterministic end state; wall time still measured for the table.
ScenarioResult run_pumped(const std::vector<Op>& ops, std::size_t key_space,
                          std::size_t shards, std::size_t workers,
                          std::size_t burst) {
  BatchServer server(server_config(shards, workers));
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t base = 0; base < ops.size(); base += burst) {
    const std::size_t end = std::min(ops.size(), base + burst);
    for (std::size_t i = base; i < end; ++i) {
      server.submit(ops[i].kind, ops[i].key, ops[i].value);
    }
    server.pump_all();
  }
  const auto t1 = std::chrono::steady_clock::now();
  check_digest(server, ops, key_space);

  ScenarioResult r;
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.throughput_rps = static_cast<double>(ops.size()) / r.wall_seconds;
  telemetry::PercentileSketch all;
  for (std::size_t op = 0; op < serve::kOpKindCount; ++op) {
    all.merge(server.latency_us(static_cast<OpKind>(op)));
  }
  r.p50_us = all.p50();
  r.p99_us = all.p99();
  r.bloom_skips = server.map().bloom_skips();
  r.batches = server.coalescer().batches();
  r.final_size = server.map().size();
  FOLVEC_CHECK(server.served() == ops.size(), "every request must be served");
  return r;
}

/// Threaded open-loop pass: arrivals paced at a fixed rate regardless of
/// service progress (spin pacing; the dispatch thread drains behind).
/// Wall-only numbers — nothing deterministic is read from this run.
ScenarioResult run_open_loop(const std::vector<Op>& ops, std::size_t shards,
                             std::size_t workers, double rate_rps) {
  BatchServer server(server_config(shards, workers));
  server.start();
  const auto t0 = std::chrono::steady_clock::now();
  const double ns_per_req = 1e9 / rate_rps;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const auto due =
        t0 + std::chrono::nanoseconds(static_cast<std::int64_t>(
                 ns_per_req * static_cast<double>(i)));
    while (std::chrono::steady_clock::now() < due) {
    }
    server.submit(ops[i].kind, ops[i].key, ops[i].value);
  }
  server.stop();
  const auto t1 = std::chrono::steady_clock::now();

  ScenarioResult r;
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.throughput_rps = static_cast<double>(ops.size()) / r.wall_seconds;
  telemetry::PercentileSketch all;
  for (std::size_t op = 0; op < serve::kOpKindCount; ++op) {
    all.merge(server.latency_us(static_cast<OpKind>(op)));
  }
  r.p50_us = all.p50();
  r.p99_us = all.p99();
  r.batches = server.coalescer().batches();
  FOLVEC_CHECK(server.served() == ops.size(),
               "open-loop run must serve every request");
  return r;
}

// ---- merge-strategy measurement (backend_scaling golden feed) --------------

double run_merge_strategy(const std::vector<Op>& ops, std::size_t key_space,
                          std::size_t workers, vm::MergeStrategy merge,
                          WordVec* digest_out) {
  serve::ShardedMapConfig cfg;
  cfg.shards = 4;
  cfg.machine.backend = vm::BackendKind::kParallel;
  cfg.machine.backend_threads = workers;
  cfg.machine.backend_grain = 8;  // sub-batches are short; let the pool split
  cfg.machine.audit = false;
  cfg.machine.scatter_order = vm::ScatterOrder::kShuffled;  // kExplicit path
  cfg.machine.merge_strategy = merge;
  serve::ShardedMap map(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t i = 0;
  while (i < ops.size()) {
    std::size_t j = i;
    while (j < ops.size() && ops[j].kind == ops[i].kind) ++j;
    // Serve-shaped batching: cap runs at the coalescer's default batch.
    for (std::size_t base = i; base < j; base += 512) {
      const std::size_t end = std::min(j, base + 512);
      WordVec keys;
      for (std::size_t k = base; k < end; ++k) keys.push_back(ops[k].key);
      switch (ops[i].kind) {
        case OpKind::kUpsert: {
          WordVec vals;
          for (std::size_t k = base; k < end; ++k) vals.push_back(ops[k].value);
          map.upsert_batch(keys, vals);
          break;
        }
        case OpKind::kLookup:
          map.lookup_batch(keys, serve::kAbsent);
          break;
        case OpKind::kErase:
          map.erase_batch(keys);
          break;
      }
    }
    i = j;
  }
  const auto t1 = std::chrono::steady_clock::now();
  WordVec sweep;
  for (Word k = 0; k < static_cast<Word>(key_space); ++k) sweep.push_back(k);
  *digest_out = map.lookup_batch(sweep, serve::kAbsent);
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  bench::BenchReport report("serve_load");
  const std::size_t n_requests = env_size("FOLVEC_SERVE_REQUESTS", 20000);
  const std::size_t workers = env_size("FOLVEC_BENCH_THREADS", 4);
  const std::size_t key_space = 4096;
  const std::size_t shards = 4;
  report.config("requests_per_scenario", static_cast<long long>(n_requests));
  report.config("key_space", static_cast<long long>(key_space));
  report.config("shards", static_cast<long long>(shards));
  report.config("workers", static_cast<long long>(workers));

  // ---- pump-mode scenario table (deterministic digests + counters) --------
  struct Scenario {
    const char* name;
    KeyDist dist;
    std::size_t burst;
    std::uint64_t seed;
  };
  const Scenario scenarios[] = {
      {"uniform", KeyDist::kUniform, 512, 101},
      {"zipf_hot", KeyDist::kZipf, 512, 102},
      {"clustered", KeyDist::kClustered, 512, 103},
      {"burst", KeyDist::kZipf, 64, 104},  // small bursts: fill-ratio stress
  };
  TablePrinter table({"scenario", "requests", "batches", "bloom_skips",
                      "final_size", "p50_us", "p99_us", "wall_ms"});
  double pump_throughput_rps = 0;  // zipf pump rate, paces the open loop
  for (const Scenario& s : scenarios) {
    std::cerr << "scenario " << s.name << "..." << std::flush;
    const std::vector<Op> ops = make_stream(s.seed, n_requests, key_space, s.dist);
    const ScenarioResult r = run_pumped(ops, key_space, shards, workers, s.burst);
    std::cerr << " done (" << r.wall_seconds * 1e3 << " ms)\n";
    if (std::string(s.name) == "zipf_hot") pump_throughput_rps = r.throughput_rps;
    table.add_row({Cell(s.name), Cell(static_cast<long long>(ops.size())),
                   Cell(static_cast<long long>(r.batches)),
                   Cell(static_cast<long long>(r.bloom_skips)),
                   Cell(static_cast<long long>(r.final_size)),
                   Cell(static_cast<long long>(r.p50_us)),
                   Cell(static_cast<long long>(r.p99_us)),
                   Cell(r.wall_seconds * 1e3, 1)});
    // Deterministic trend-gated notes: pure functions of the stream.
    const std::string prefix = std::string("serve_") + s.name;
    report.note(prefix + "_batches", static_cast<long long>(r.batches));
    report.note(prefix + "_bloom_skips", static_cast<long long>(r.bloom_skips));
    report.note(prefix + "_final_size", static_cast<long long>(r.final_size));
    // Wall-keyed (trend-exempt) latency + throughput notes.
    report.note(prefix + "_p50_wall_us", static_cast<long long>(r.p50_us));
    report.note(prefix + "_p99_wall_us", static_cast<long long>(r.p99_us));
    report.note(prefix + "_throughput_wall_rps", r.throughput_rps);
  }
  table.print(std::cout, "Serve load: pump mode (digest-checked)");
  report.add_table("Serve load: pump mode (digest-checked)", table);

  // ---- faulted scenario: injected probe-cycle saturation ------------------
  {
    const std::vector<Op> ops =
        make_stream(105, n_requests, key_space, KeyDist::kZipf);
    // Sparse periodic injection ("probe%k": every k-th saturation check),
    // NOT a rate plan: every recovery rehashes the hit shard to double
    // capacity, so sustained injection would ratchet table sizes
    // exponentially — the bench would measure memory exhaustion, not
    // serving. A handful of faults spread over the run is the realistic
    // shard-fault shape. The period scales with the request count (the
    // run drives roughly n/6 saturation checks) so the plan still fires
    // when FOLVEC_SERVE_REQUESTS shrinks the smoke size.
    const std::size_t fault_period =
        std::max<std::size_t>(13, n_requests / 32) | 1;
    const std::string fault_spec = "probe%" + std::to_string(fault_period);
    FaultPlan plan(9, fault_spec);
    report.config("fault_spec", fault_spec);
    report.config("fault_seed", 9LL);
    std::uint64_t injected = 0;
    {
      ScopedFaultPlan scoped(&plan);
      const ScenarioResult r =
          run_pumped(ops, key_space, shards, workers, /*burst=*/512);
      report.note("serve_faulted_final_size",
                  static_cast<long long>(r.final_size));
      report.note("serve_faulted_p99_wall_us",
                  static_cast<long long>(r.p99_us));
      if (telemetry::MetricsRegistry* reg = telemetry::metrics()) {
        injected = reg->snapshot().counters.count("fault.injected.probe")
                       ? reg->snapshot().counters.at("fault.injected.probe")
                       : 0;
      }
    }
    FOLVEC_CHECK(injected > 0,
                 "the fault plan must actually fire during the faulted run");
    report.note("serve_faulted_injected_probe_faults",
                static_cast<long long>(injected));
    std::cout << "\nfaulted scenario: " << injected
              << " injected probe saturations, digest still exact\n";
  }

  // ---- threaded open-loop pass (wall numbers only) ------------------------
  {
    const std::vector<Op> ops =
        make_stream(106, n_requests, key_space, KeyDist::kZipf);
    // Open-loop arrivals must stay under the service rate or queueing
    // delay grows without bound and p99 measures the backlog, not the
    // server. Pace at 30% of the measured pump-mode (batch-saturated)
    // throughput, clamped to keep the run short on fast hosts and the
    // offered load honest on slow ones.
    const double rate_rps =
        std::clamp(0.3 * pump_throughput_rps, 5000.0, 100000.0);
    report.note("serve_open_loop_offered_wall_rps", rate_rps);
    const ScenarioResult r = run_open_loop(ops, shards, workers, rate_rps);
    report.note("serve_open_loop_p50_wall_us", static_cast<long long>(r.p50_us));
    report.note("serve_open_loop_p99_wall_us", static_cast<long long>(r.p99_us));
    report.note("serve_open_loop_throughput_wall_rps", r.throughput_rps);
    std::cout << "open loop: " << static_cast<long long>(r.throughput_rps)
              << " req/s, p50 " << r.p50_us << "us, p99 " << r.p99_us
              << "us over " << r.batches << " batches\n";

    // SLO assertions — generous smoke-size bounds (shared CI runners):
    // the serving layer must stay interactive, not win benchmarks.
    const bool p99_ok = r.p99_us < 250000;       // 250ms end-to-end p99
    const bool tput_ok = r.throughput_rps > 1000;  // 1k req/s floor
    report.note("slo_p99_under_250ms_pass", p99_ok ? 1 : 0);
    report.note("slo_throughput_over_1k_rps_pass", tput_ok ? 1 : 0);
    FOLVEC_CHECK(p99_ok, "SLO: open-loop p99 must stay under 250ms at smoke");
    FOLVEC_CHECK(tput_ok, "SLO: open-loop throughput must exceed 1k req/s");
  }

  // ---- merge-strategy on serve-shaped explicit scatters -------------------
  // Feeds bench/goldens/backend_scaling.json: kAuto (single-pass <= 160
  // lanes, two-pass above) must not lose to either forced strategy on the
  // serving layer's shard-local scatters by more than timing noise.
  {
    const std::vector<Op> ops =
        make_stream(107, n_requests, key_space, KeyDist::kZipf);
    WordVec digest_auto, digest_single, digest_two;
    const double wall_auto = run_merge_strategy(ops, key_space, workers,
                                                vm::MergeStrategy::kAuto,
                                                &digest_auto);
    const double wall_single = run_merge_strategy(ops, key_space, workers,
                                                  vm::MergeStrategy::kSinglePass,
                                                  &digest_single);
    const double wall_two = run_merge_strategy(ops, key_space, workers,
                                               vm::MergeStrategy::kTwoPass,
                                               &digest_two);
    FOLVEC_CHECK(digest_auto == digest_single && digest_auto == digest_two,
                 "merge strategies must be bit-identical on the serve "
                 "workload");
    report.note("serve_scatter_auto_vs_single_wall_accel",
                wall_single / wall_auto);
    report.note("serve_scatter_auto_vs_two_wall_accel", wall_two / wall_auto);
    std::cout << "merge strategy on serve scatters: auto " << wall_auto * 1e3
              << "ms, forced single " << wall_single * 1e3
              << "ms, forced two-pass " << wall_two * 1e3 << "ms\n";
  }

  return 0;
}
