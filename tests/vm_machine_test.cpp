// Unit tests for the vector machine substrate: functional semantics of every
// primitive, the three scatter-order modes, the ELS failure injection, and
// bounds checking.
#include "vm/machine.h"

#include <gtest/gtest.h>

#include <numeric>

namespace folvec::vm {
namespace {

using ::testing::Test;

class MachineTest : public Test {
 protected:
  VectorMachine m_;
};

TEST_F(MachineTest, IotaProducesArithmeticSequence) {
  EXPECT_EQ(m_.iota(5), (WordVec{0, 1, 2, 3, 4}));
  EXPECT_EQ(m_.iota(4, 10), (WordVec{10, 11, 12, 13}));
  EXPECT_EQ(m_.iota(3, 1, -2), (WordVec{1, -1, -3}));
  EXPECT_TRUE(m_.iota(0).empty());
}

TEST_F(MachineTest, SplatReplicates) {
  EXPECT_EQ(m_.splat(3, 7), (WordVec{7, 7, 7}));
}

TEST_F(MachineTest, CopyIsIdentity) {
  const WordVec v{3, 1, 4, 1, 5};
  EXPECT_EQ(m_.copy(v), v);
}

TEST_F(MachineTest, ElementwiseArithmetic) {
  const WordVec a{1, 2, 3};
  const WordVec b{10, 20, 30};
  EXPECT_EQ(m_.add(a, b), (WordVec{11, 22, 33}));
  EXPECT_EQ(m_.sub(b, a), (WordVec{9, 18, 27}));
  EXPECT_EQ(m_.add_scalar(a, 5), (WordVec{6, 7, 8}));
  EXPECT_EQ(m_.mul_scalar(a, 3), (WordVec{3, 6, 9}));
  EXPECT_EQ(m_.negate(a), (WordVec{-1, -2, -3}));
  EXPECT_EQ(m_.and_scalar(WordVec{5, 6, 7}, 3), (WordVec{1, 2, 3}));
}

TEST_F(MachineTest, DivScalarIsFloorDivision) {
  EXPECT_EQ(m_.div_scalar(WordVec{7, -7, 6, -6}, 3), (WordVec{2, -3, 2, -2}));
}

TEST_F(MachineTest, ModScalarIsEuclidean) {
  EXPECT_EQ(m_.mod_scalar(WordVec{7, -7, 6, 0}, 3), (WordVec{1, 2, 0, 0}));
}

TEST_F(MachineTest, MismatchedLengthsThrow) {
  EXPECT_THROW(m_.add(WordVec{1}, WordVec{1, 2}), PreconditionError);
  EXPECT_THROW(m_.eq(WordVec{1}, WordVec{1, 2}), PreconditionError);
}

TEST_F(MachineTest, ComparesProduceMasks) {
  const WordVec a{1, 5, 3};
  const WordVec b{1, 2, 9};
  EXPECT_EQ(m_.eq(a, b), (Mask{1, 0, 0}));
  EXPECT_EQ(m_.ne(a, b), (Mask{0, 1, 1}));
  EXPECT_EQ(m_.le(a, b), (Mask{1, 0, 1}));
  EXPECT_EQ(m_.lt(a, b), (Mask{0, 0, 1}));
  EXPECT_EQ(m_.eq_scalar(a, 5), (Mask{0, 1, 0}));
  EXPECT_EQ(m_.ne_scalar(a, 5), (Mask{1, 0, 1}));
  EXPECT_EQ(m_.le_scalar(a, 3), (Mask{1, 0, 1}));
  EXPECT_EQ(m_.lt_scalar(a, 3), (Mask{1, 0, 0}));
  EXPECT_EQ(m_.ge_scalar(a, 3), (Mask{0, 1, 1}));
}

TEST_F(MachineTest, MaskAlgebra) {
  const Mask a{1, 1, 0, 0};
  const Mask b{1, 0, 1, 0};
  EXPECT_EQ(m_.mask_and(a, b), (Mask{1, 0, 0, 0}));
  EXPECT_EQ(m_.mask_or(a, b), (Mask{1, 1, 1, 0}));
  EXPECT_EQ(m_.mask_not(a), (Mask{0, 0, 1, 1}));
  EXPECT_EQ(m_.count_true(a), 2u);
  EXPECT_EQ(m_.count_true(Mask{}), 0u);
}

TEST_F(MachineTest, CompressPacksTrueLanes) {
  EXPECT_EQ(m_.compress(WordVec{1, 2, 3}, Mask{1, 0, 1}), (WordVec{1, 3}));
  EXPECT_TRUE(m_.compress(WordVec{1, 2}, Mask{0, 0}).empty());
}

TEST_F(MachineTest, SelectMergesByMask) {
  EXPECT_EQ(m_.select(Mask{1, 0, 1}, WordVec{1, 2, 3}, WordVec{7, 8, 9}),
            (WordVec{1, 8, 3}));
}

TEST_F(MachineTest, FromMaskYieldsZeroOne) {
  EXPECT_EQ(m_.from_mask(Mask{1, 0, 1}), (WordVec{1, 0, 1}));
}

TEST_F(MachineTest, ContiguousLoadStoreFill) {
  WordVec table(6, 0);
  m_.store(table, 2, WordVec{7, 8});
  EXPECT_EQ(table, (WordVec{0, 0, 7, 8, 0, 0}));
  EXPECT_EQ(m_.load(table, 1, 3), (WordVec{0, 7, 8}));
  m_.fill(table, 9);
  EXPECT_EQ(table, WordVec(6, 9));
  EXPECT_THROW(m_.store(table, 5, WordVec{1, 2}), PreconditionError);
  EXPECT_THROW(m_.load(table, 5, 2), PreconditionError);
}

TEST_F(MachineTest, StridedLoadStore) {
  WordVec table{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(m_.load_strided(table, 1, 3, 3), (WordVec{1, 4, 7}));
  m_.store_strided(table, 0, 4, WordVec{100, 200});
  EXPECT_EQ(table[0], 100);
  EXPECT_EQ(table[4], 200);
  EXPECT_THROW(m_.load_strided(table, 2, 3, 3), PreconditionError);
}

TEST_F(MachineTest, GatherReadsThroughIndices) {
  const WordVec table{10, 20, 30, 40};
  EXPECT_EQ(m_.gather(table, WordVec{3, 0, 3}), (WordVec{40, 10, 40}));
  EXPECT_THROW(m_.gather(table, WordVec{4}), PreconditionError);
  EXPECT_THROW(m_.gather(table, WordVec{-1}), PreconditionError);
}

TEST_F(MachineTest, GatherMaskedSkipsInactiveLanes) {
  const WordVec table{10, 20};
  // Inactive lanes may carry wild indices (e.g. null links).
  EXPECT_EQ(m_.gather_masked(table, WordVec{-1, 1, 99}, Mask{0, 1, 0}, -7),
            (WordVec{-7, 20, -7}));
  EXPECT_THROW(m_.gather_masked(table, WordVec{9}, Mask{1}, 0),
               PreconditionError);
}

TEST_F(MachineTest, ScatterWithoutDuplicatesIsOrderIndependent) {
  for (const auto order : {ScatterOrder::kForward, ScatterOrder::kReverse,
                           ScatterOrder::kShuffled}) {
    MachineConfig cfg;
    cfg.scatter_order = order;
    VectorMachine m(cfg);
    WordVec table(4, 0);
    m.scatter(table, WordVec{2, 0, 3}, WordVec{7, 8, 9});
    EXPECT_EQ(table, (WordVec{8, 0, 7, 9}));
  }
}

TEST_F(MachineTest, ScatterDuplicateSurvivorDependsOnOrder) {
  // These scatters probe machine-dependent duplicate behaviour on purpose,
  // so they opt out of the hazard audit.
  {
    MachineConfig cfg;
    cfg.audit = false;
    cfg.scatter_order = ScatterOrder::kForward;
    VectorMachine m(cfg);
    WordVec table(1, 0);
    m.scatter(table, WordVec{0, 0, 0}, WordVec{1, 2, 3});
    EXPECT_EQ(table[0], 3);  // last lane wins
  }
  {
    MachineConfig cfg;
    cfg.audit = false;
    cfg.scatter_order = ScatterOrder::kReverse;
    VectorMachine m(cfg);
    WordVec table(1, 0);
    m.scatter(table, WordVec{0, 0, 0}, WordVec{1, 2, 3});
    EXPECT_EQ(table[0], 1);  // first lane wins
  }
}

TEST_F(MachineTest, ShuffledScatterSatisfiesEls) {
  MachineConfig cfg;
  cfg.audit = false;  // intentional duplicate scatters
  cfg.scatter_order = ScatterOrder::kShuffled;
  VectorMachine m(cfg);
  // Whatever the interleaving, the survivor must be one of the written
  // values (the ELS condition) — across many repetitions.
  for (int rep = 0; rep < 100; ++rep) {
    WordVec table(2, -1);
    m.scatter(table, WordVec{0, 0, 1, 0}, WordVec{10, 20, 99, 30});
    EXPECT_TRUE(table[0] == 10 || table[0] == 20 || table[0] == 30);
    EXPECT_EQ(table[1], 99);  // singleton writes always land intact
  }
}

TEST_F(MachineTest, ShuffledScatterEventuallyVariesSurvivor) {
  MachineConfig cfg;
  cfg.audit = false;  // intentional duplicate scatters
  cfg.scatter_order = ScatterOrder::kShuffled;
  VectorMachine m(cfg);
  bool saw_different = false;
  Word first = 0;
  for (int rep = 0; rep < 64 && !saw_different; ++rep) {
    WordVec table(1, -1);
    m.scatter(table, WordVec{0, 0, 0, 0}, WordVec{1, 2, 3, 4});
    if (rep == 0) {
      first = table[0];
    } else if (table[0] != first) {
      saw_different = true;
    }
  }
  EXPECT_TRUE(saw_different)
      << "64 shuffled scatters never changed the duplicate survivor";
}

TEST_F(MachineTest, ElsViolationInjectionProducesAmalgam) {
  MachineConfig cfg;
  cfg.audit = false;  // the injected amalgam is the point, not a hazard
  cfg.inject_els_violation = true;
  VectorMachine m(cfg);
  WordVec table(2, 0);
  m.scatter(table, WordVec{0, 0, 1}, WordVec{5, 9, 42});
  // Colliding lanes: an amalgam of both values that equals neither.
  EXPECT_NE(table[0], 5);
  EXPECT_NE(table[0], 9);
  EXPECT_EQ(table[0], (5 + 1) ^ (9 + 1));
  // Singleton lanes stay intact.
  EXPECT_EQ(table[1], 42);
}

TEST_F(MachineTest, ScatterMaskedOnlyWritesActiveLanes) {
  WordVec table(3, 0);
  m_.scatter_masked(table, WordVec{0, 1, 2}, WordVec{7, 8, 9}, Mask{1, 0, 1});
  EXPECT_EQ(table, (WordVec{7, 0, 9}));
}

TEST_F(MachineTest, ScatterOrderedLastLaneWinsEvenOnReverseMachine) {
  MachineConfig cfg;
  cfg.scatter_order = ScatterOrder::kReverse;
  VectorMachine m(cfg);
  WordVec table(1, 0);
  m.scatter_ordered(table, WordVec{0, 0}, WordVec{1, 2});
  EXPECT_EQ(table[0], 2);
}

TEST_F(MachineTest, BitwiseAndShiftOps) {
  EXPECT_EQ(m_.or_scalar(WordVec{1, 4, 0}, 2), (WordVec{3, 6, 2}));
  EXPECT_EQ(m_.shl_scalar(WordVec{1, 3}, 4), (WordVec{16, 48}));
  EXPECT_EQ(m_.shr_scalar(WordVec{16, 48, -8}, 3), (WordVec{2, 6, -1}));
  EXPECT_THROW(m_.shl_scalar(WordVec{-1}, 1), PreconditionError);
  EXPECT_THROW(m_.shr_scalar(WordVec{1}, 64), PreconditionError);
}

TEST_F(MachineTest, ReverseFlipsElementOrder) {
  EXPECT_EQ(m_.reverse(WordVec{1, 2, 3}), (WordVec{3, 2, 1}));
  EXPECT_TRUE(m_.reverse(WordVec{}).empty());
  EXPECT_EQ(m_.reverse(WordVec{7}), (WordVec{7}));
}

TEST_F(MachineTest, Reductions) {
  const WordVec v{3, -1, 4, 1, 5};
  EXPECT_EQ(m_.reduce_sum(v), 12);
  EXPECT_EQ(m_.reduce_min(v), -1);
  EXPECT_EQ(m_.reduce_max(v), 5);
  EXPECT_EQ(m_.reduce_sum(WordVec{}), 0);
  EXPECT_THROW(m_.reduce_min(WordVec{}), PreconditionError);
  EXPECT_THROW(m_.reduce_max(WordVec{}), PreconditionError);
}

TEST_F(MachineTest, MaskedScatterSkipsBoundsCheckOnInactiveLanes) {
  // Inactive lanes may carry wild indices, mirroring gather_masked.
  WordVec table(2, 0);
  m_.scatter_masked(table, WordVec{-5, 1, 99}, WordVec{7, 8, 9},
                    Mask{0, 1, 0});
  EXPECT_EQ(table, (WordVec{0, 8}));
  EXPECT_THROW(
      m_.scatter_masked(table, WordVec{99}, WordVec{1}, Mask{1}),
      PreconditionError);
}

TEST_F(MachineTest, CostAccumulatorCountsInstructionsAndElements) {
  VectorMachine m;
  m.iota(10);
  m.iota(20);
  EXPECT_EQ(m.cost().instructions(OpClass::kVectorArith), 2u);
  EXPECT_EQ(m.cost().elements(OpClass::kVectorArith), 30u);
  m.scalar_mem(3);
  EXPECT_EQ(m.cost().elements(OpClass::kScalarMem), 3u);
  m.cost().reset();
  EXPECT_EQ(m.cost().total_instructions(), 0u);
}

}  // namespace
}  // namespace folvec::vm
