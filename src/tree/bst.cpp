#include "tree/bst.h"

#include <algorithm>

#include "support/require.h"
#include "vm/checker.h"

namespace folvec::tree {

using vm::Mask;
using vm::VectorMachine;
using vm::Word;
using vm::WordVec;

Bst::Bst(std::size_t capacity, vm::CostAccumulator* cost)
    : key_(capacity, 0), child_(2 * capacity + 1, kNull), cost_(cost) {
  FOLVEC_REQUIRE(capacity > 0, "tree capacity must be positive");
}

void Bst::insert_scalar(Word key) {
  FOLVEC_REQUIRE(alloc_ < key_.size(), "tree pool exhausted");
  // Descend to the null child slot this key belongs in, then fill it.
  std::size_t slot = root_slot();
  cost_.mem(1);
  cost_.branch(1);
  while (child_[slot] != kNull) {
    const auto node = static_cast<std::size_t>(child_[slot]);
    const bool go_right = key >= key_[node];  // duplicates descend right
    slot = 2 * node + (go_right ? 1 : 0);
    cost_.alu(2);
    cost_.mem(2);
    cost_.branch(2);
  }
  const auto node = static_cast<Word>(alloc_++);
  key_[static_cast<std::size_t>(node)] = key;
  child_[slot] = node;
  cost_.mem(2);
}

BulkInsertStats Bst::insert_bulk(VectorMachine& m,
                                 std::span<const Word> keys) {
  BulkInsertStats stats;
  if (keys.empty()) return stats;
  FOLVEC_REQUIRE(alloc_ + keys.size() <= key_.size(), "tree pool exhausted");

  WordVec pend_keys = m.copy(keys);
  WordVec pend_slots = m.splat(keys.size(), static_cast<Word>(root_slot()));
  // Per-slot label words for the overwrite-and-check filter. Every pass's
  // conflict filter deliberately scatters colliding lane ids into it, so the
  // loop runs under one sanctioned label-round window; the array is retired
  // below once the last pass's labels are dead.
  std::vector<Word> work(child_.size(), 0);
  {
  const vm::ConflictWindow window(m, work, vm::WindowKind::kLabelRound,
                                  "BST slot claim");

  // Each pass either descends a lane one level or resolves it; the pass
  // count is bounded by the final height plus the worst conflict chain.
  const std::size_t max_passes = 2 * (alloc_ + keys.size()) + 64;
  std::size_t passes = 0;
  while (!pend_keys.empty()) {
    FOLVEC_CHECK(++passes <= max_passes, "bulk insert failed to converge");
    ++stats.passes;
    const std::size_t n = pend_keys.size();

    const WordVec link = m.gather(child_, pend_slots);
    const Mask is_null = m.eq_scalar(link, kNull);
    const Mask descending = m.mask_not(is_null);

    // Descending lanes: read the node key, pick a side, move to that slot.
    const WordVec node_keys =
        m.gather_masked(key_, link, descending, 0);
    const Mask go_right_cmp = m.le(node_keys, pend_keys);  // key >= node key
    const Mask go_right = m.mask_and(go_right_cmp, descending);
    const WordVec next_slots =
        m.add(m.mul_scalar(link, 2), m.from_mask(go_right));
    pend_slots = m.select(descending, next_slots, pend_slots);

    // Candidate lanes: filter one winner per contested slot, then link the
    // winners' freshly allocated nodes in a single scatter.
    const std::size_t n_cand = m.count_true(is_null);
    if (n_cand == 0) continue;
    const WordVec lane_ids = m.iota(n);
    m.scatter_masked(work, pend_slots, lane_ids, is_null);
    const WordVec readback = m.gather_masked(work, pend_slots, is_null, -1);
    const Mask winner = m.mask_and(m.eq(readback, lane_ids), is_null);
    const std::size_t n_win = m.count_true(winner);
    FOLVEC_CHECK(n_win > 0, "conflict filter produced no winner");
    stats.conflict_lanes += n_cand - n_win;

    const WordVec win_keys = m.compress(pend_keys, winner);
    const WordVec win_slots = m.compress(pend_slots, winner);
    const WordVec new_nodes = m.iota(n_win, static_cast<Word>(alloc_));
    m.store(key_, alloc_, win_keys);
    m.scatter(child_, win_slots, new_nodes);
    alloc_ += n_win;

    // Losers keep their slot; next pass they descend through the new node.
    const Mask keep = m.mask_not(winner);
    pend_keys = m.compress(pend_keys, keep);
    pend_slots = m.compress(pend_slots, keep);
  }
  }
  m.retire_work(work);
  return stats;
}

bool Bst::contains(Word key) const {
  Word node = root();
  while (node != kNull) {
    const auto i = static_cast<std::size_t>(node);
    if (key_[i] == key) return true;
    node = child_[2 * i + (key >= key_[i] ? 1 : 0)];
  }
  return false;
}

std::vector<Word> Bst::inorder() const {
  std::vector<Word> out;
  out.reserve(alloc_);
  std::vector<Word> stack;
  Word node = root();
  while (node != kNull || !stack.empty()) {
    while (node != kNull) {
      stack.push_back(node);
      node = child_[2 * static_cast<std::size_t>(node)];
    }
    node = stack.back();
    stack.pop_back();
    out.push_back(key_[static_cast<std::size_t>(node)]);
    FOLVEC_CHECK(out.size() <= alloc_, "link structure contains a cycle");
    node = child_[2 * static_cast<std::size_t>(node) + 1];
  }
  return out;
}

bool Bst::check_invariant() const {
  // In-order traversal must be non-decreasing and visit each node once.
  const std::vector<Word> seq = inorder();
  if (seq.size() != alloc_) return false;
  return std::is_sorted(seq.begin(), seq.end());
}

void Bst::rebalance(VectorMachine& m) {
  if (alloc_ == 0) return;
  // Sorted keys via in-order traversal (scalar unit: one pointer-chasing
  // visit per node).
  const std::vector<Word> sorted = inorder();
  cost_.mem(2 * alloc_);
  cost_.branch(2 * alloc_);

  std::vector<Word> new_key(key_.size(), 0);
  std::vector<Word> new_child(child_.size(), kNull);
  std::size_t alloc = 0;

  // Level-synchronous midpoint construction over [lo, hi] ranges; each
  // lane's node is written into the parent child slot it was given.
  WordVec lo{0};
  WordVec hi{static_cast<Word>(alloc_ - 1)};
  WordVec slot{static_cast<Word>(root_slot())};
  while (!lo.empty()) {
    const std::size_t k = lo.size();
    const WordVec mid = m.div_scalar(m.add(lo, hi), 2);
    const WordVec nodes = m.iota(k, static_cast<Word>(alloc));
    m.store(new_key, alloc, m.gather(sorted, mid));
    m.scatter(new_child, slot, nodes);
    alloc += k;

    // Left sub-ranges [lo, mid-1] into slots 2*node, right sub-ranges
    // [mid+1, hi] into slots 2*node+1.
    const Mask has_left = m.lt(lo, mid);
    const Mask has_right = m.lt(mid, hi);
    const WordVec left_slots = m.compress(m.mul_scalar(nodes, 2), has_left);
    const WordVec right_slots =
        m.compress(m.add_scalar(m.mul_scalar(nodes, 2), 1), has_right);
    WordVec next_lo = m.compress(lo, has_left);
    WordVec next_hi = m.compress(m.add_scalar(mid, -1), has_left);
    WordVec next_slot = left_slots;
    const WordVec right_lo = m.compress(m.add_scalar(mid, 1), has_right);
    const WordVec right_hi = m.compress(hi, has_right);
    next_lo.insert(next_lo.end(), right_lo.begin(), right_lo.end());
    next_hi.insert(next_hi.end(), right_hi.begin(), right_hi.end());
    next_slot.insert(next_slot.end(), right_slots.begin(), right_slots.end());
    lo = std::move(next_lo);
    hi = std::move(next_hi);
    slot = std::move(next_slot);
  }
  FOLVEC_CHECK(alloc == alloc_, "rebalance lost nodes");
  key_ = std::move(new_key);
  child_ = std::move(new_child);
}

std::size_t Bst::height() const {
  // Iterative depth computation over an explicit (node, depth) stack.
  std::size_t best = 0;
  std::vector<std::pair<Word, std::size_t>> stack;
  if (root() != kNull) stack.emplace_back(root(), 1);
  while (!stack.empty()) {
    const auto [node, depth] = stack.back();
    stack.pop_back();
    best = std::max(best, depth);
    const auto i = static_cast<std::size_t>(node);
    if (child_[2 * i] != kNull) stack.emplace_back(child_[2 * i], depth + 1);
    if (child_[2 * i + 1] != kNull) {
      stack.emplace_back(child_[2 * i + 1], depth + 1);
    }
  }
  return best;
}

}  // namespace folvec::tree
