#include "rewrite/assoc_rewrite.h"

#include <vector>

#include "fol/fol_star.h"
#include "support/require.h"

namespace folvec::rewrite {

using vm::Mask;
using vm::VectorMachine;
using vm::Word;
using vm::WordVec;

namespace {


/// One in-place rule application: r = X*(Y*Z) with s = right(r) becomes
/// r = s*Z with s = X*Y.
void apply_scalar(TermArena& arena, Word r, Word s, vm::ScalarCost& sc) {
  auto& lefts = arena.lefts();
  auto& rights = arena.rights();
  const auto ri = static_cast<std::size_t>(r);
  const auto si = static_cast<std::size_t>(s);
  const Word x = lefts[ri];
  const Word y = lefts[si];
  const Word z = rights[si];
  lefts[si] = x;
  rights[si] = y;
  lefts[ri] = s;
  rights[ri] = z;
  sc.mem(7);
  sc.alu(2);
}

}  // namespace

RewriteStats assoc_rewrite_scalar(TermArena& arena, Word root,
                                  vm::CostAccumulator* cost) {
  RewriteStats stats;
  vm::ScalarCost sc(cost);
  // Depth-first worklist; at each operator node, rotate until the right
  // child is not an operator, then recurse into both children.
  std::vector<Word> stack{root};
  while (!stack.empty()) {
    const Word n = stack.back();
    stack.pop_back();
    sc.mem(1);
    sc.branch(1);
    if (arena.kind(n) == NodeKind::kLeaf) continue;
    // Associativity applies per operator kind: rotate while the right
    // child carries the same operator as n.
    while (arena.kind(arena.right(n)) == arena.kind(n)) {
      apply_scalar(arena, n, arena.right(n), sc);
      ++stats.rewrites;
      sc.mem(2);
      sc.branch(1);
    }
    sc.mem(2);
    sc.branch(1);
    stack.push_back(arena.left(n));
    stack.push_back(arena.right(n));
  }
  return stats;
}

RewriteStats assoc_rewrite_vector(VectorMachine& m, TermArena& arena,
                                  Word root, RewriteMode mode) {
  RewriteStats stats;
  auto& kinds = arena.kinds();
  auto& lefts = arena.lefts();
  auto& rights = arena.rights();
  const std::size_t n_nodes = arena.size();
  if (n_nodes == 0) return stats;
  std::vector<Word> work(n_nodes, 0);

  // Every sweep fires at least one rewrite, and the total number of
  // rewrites to normal form is bounded by the right-spine potential, which
  // is at most the node count squared over two; with at least one rewrite
  // per sweep that bounds the sweep count.
  const std::size_t max_sweeps = n_nodes * n_nodes / 2 + 64;
  for (;;) {
    FOLVEC_CHECK(stats.sweeps <= max_sweeps, "rewrite failed to converge");
    ++stats.sweeps;

    // Redex scan over the whole arena: operator nodes whose right child
    // carries the same operator. (Unreachable pool nodes cannot become
    // redexes of the live tree; rewriting them too would be harmless, but
    // this arena only contains the live tree.)
    const WordVec node_ids = m.iota(n_nodes);
    const WordVec kv = m.load(kinds, 0, n_nodes);
    const WordVec rv = m.load(rights, 0, n_nodes);
    const Mask is_op = m.ne_scalar(kv, static_cast<Word>(NodeKind::kLeaf));
    const WordVec right_kind = m.gather_masked(kinds, rv, is_op, kNone);
    const Mask redex = m.mask_and(is_op, m.eq(right_kind, kv));
    if (m.count_true(redex) == 0) break;

    std::vector<WordVec> tuple_lanes(2);
    tuple_lanes[0] = m.compress(node_ids, redex);  // V1: redex roots r
    tuple_lanes[1] = m.compress(rv, redex);        // V2: right children s

    const std::size_t max_rounds =
        mode == RewriteMode::kFirstSetPerSweep ? 1 : 0;
    const fol::StarDecomposition dec =
        fol::fol_star_decompose(m, tuple_lanes, work, max_rounds);
    stats.fol_rounds += dec.rounds();

    bool first_set = true;
    for (const auto& set : dec.sets) {
      // Pack the set's tuples.
      WordVec rs(set.size());
      WordVec ss(set.size());
      for (std::size_t i = 0; i < set.size(); ++i) {
        rs[i] = tuple_lanes[0][set[i]];
        ss[i] = tuple_lanes[1][set[i]];
      }
      WordVec lr;
      WordVec ls;
      if (first_set) {
        // The first set's tuples were live at scan time and are mutually
        // disjoint, so they are all still live now.
        lr = std::move(rs);
        ls = std::move(ss);
      } else {
        // Re-validate against the current tree: an earlier set may have
        // consumed a tuple (right(r) moved or its operator kind changed).
        const Mask still_linked = m.eq(m.gather(rights, rs), ss);
        const Mask still_same_kind =
            m.eq(m.gather_masked(kinds, ss, still_linked, kNone),
                 m.gather(kinds, rs));
        const Mask live = m.mask_and(still_linked, still_same_kind);
        const std::size_t n_live = m.count_true(live);
        stats.stale_dropped += set.size() - n_live;
        if (n_live == 0) continue;
        lr = m.compress(rs, live);
        ls = m.compress(ss, live);
      }
      first_set = false;

      // Parallel rule application; conflict-freedom within the set makes
      // the four scatters race-free.
      const WordVec x = m.gather(lefts, lr);
      const WordVec y = m.gather(lefts, ls);
      const WordVec z = m.gather(rights, ls);
      m.scatter(lefts, ls, x);
      m.scatter(rights, ls, y);
      m.scatter(lefts, lr, ls);
      m.scatter(rights, lr, z);
      stats.rewrites += lr.size();
    }
  }
  FOLVEC_CHECK(arena.is_left_deep(root), "normal form not reached");
  return stats;
}

}  // namespace folvec::rewrite
