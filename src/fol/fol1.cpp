#include "fol/fol1.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "fol/invariants.h"
#include "support/faultsim.h"
#include "support/require.h"
#include "telemetry/metrics.h"
#include "vm/buffer_pool.h"
#include "vm/checker.h"

namespace folvec::fol {

using vm::Mask;
using vm::VectorMachine;
using vm::Word;
using vm::WordVec;

Decomposition fol1_decompose(VectorMachine& m,
                             std::span<const Word> index_vector,
                             std::span<Word> work) {
  Decomposition out;
  if (index_vector.empty()) return out;

  const vm::AlgoSpan span(m, "fol1.decompose");
  telemetry::count("fol1.calls");
  telemetry::count("fol1.lanes", index_vector.size());

  // One host-side scan gives the analyzer a tight interval fact for the
  // index vector; the partition in step 3 preserves it, so every round's
  // scatter bounds stay proven and the per-lane audit pass can be elided.
  m.observe_range(index_vector);

  // The label rounds below deliberately scatter colliding labels; declare
  // the sanctioned conflict window so ScatterCheck can verify the readbacks
  // against the ELS contract instead of flagging the duplicates.
  const vm::ConflictWindow window(m, work, vm::WindowKind::kLabelRound,
                                  "FOL1 label round");

  // Step 0 (preprocessing): labels are the lane positions, the "most easily
  // computable" unique labels per the paper's footnote 6. Positions stay
  // attached to their lanes across rounds so the final sets report original
  // lane numbers. All round-loop working vectors come from the machine's
  // buffer pool: after the first round the loop is allocation-free.
  vm::BufferPool& pool = m.pool();
  const std::size_t n0 = index_vector.size();
  vm::PooledVec remaining_idx(pool, n0);
  vm::PooledVec remaining_pos(pool, n0);
  vm::PooledVec next_idx(pool, n0);
  vm::PooledVec next_pos(pool, n0);
  vm::PooledVec winners(pool, n0);
  vm::PooledVec assigned_idx(pool, n0);  // kept half of the idx split; unused
  m.copy_into(*remaining_idx, index_vector);
  m.iota_into(*remaining_pos, index_vector.size());

  // The subset collection grows by one push_back per round; reserve a
  // round-count guess up front to skip the early reallocation ladder.
  out.sets.reserve(std::min<std::size_t>(index_vector.size(), 32));

  const std::size_t max_rounds = index_vector.size();
  while (!remaining_idx->empty()) {
    FOLVEC_CHECK(out.sets.size() < max_rounds,
                 "FOL1 failed to terminate within N rounds; the scatter "
                 "substrate violates the ELS condition");
    const vm::AlgoSpan round_span(m, "round", out.sets.size());
    const std::size_t n_remaining = remaining_idx->size();

    // Steps 1+2 (writing labels, detection of overwriting) as one fused
    // instruction: scatter the globally unique lane positions, read back
    // through the same indices, and keep the lanes whose label survived.
    // count_true charges its reduce either way, but the fused kernel's
    // cached popcount lets it skip the host-side scan.
    Mask survived(0);
    m.scatter_gather_eq_into(survived, work, *remaining_idx, *remaining_pos);
    std::size_t n_survived = m.count_true(survived);
    if (n_survived == 0) {
      // An empty round means a contested work word holds none of the
      // written labels — transient on hardware that occasionally drops the
      // ELS guarantee (and under injected kElsViolation faults), permanent
      // on a substrate that never provides it. Re-issuing the label round
      // is always safe: no lane was assigned, so the retry recomputes the
      // identical survivors from the identical inputs.
      constexpr std::size_t kMaxElsRetries = 2;
      std::size_t retries = 0;
      while (n_survived == 0 && retries < kMaxElsRetries) {
        ++retries;
        m.scatter_gather_eq_into(survived, work, *remaining_idx,
                                 *remaining_pos);
        n_survived = m.count_true(survived);
      }
      telemetry::count("fol1.els_round_retries", retries);
      if (n_survived > 0 && faults() != nullptr) {
        telemetry::count("fault.recovered.els");
      }
      FOLVEC_CHECK(n_survived > 0,
                   "FOL1 round produced an empty set: a contested work word "
                   "holds none of the written labels (ELS violation)");
    }

    telemetry::observe("fol1.set_size", n_survived);
    telemetry::count("fol1.contested_lanes", n_remaining - n_survived);

    // Step 3 (updating control variables): one partition per control vector
    // replaces the old compress / mask_not / compress / compress chain. The
    // kept half of the position split is this round's output set; the kept
    // half of the index split is dead (those lanes are assigned).
    m.partition_into(*winners, *next_pos, *remaining_pos, survived);
    m.partition_into(*assigned_idx, *next_idx, *remaining_idx, survived);

    std::vector<std::size_t> set;
    set.reserve(winners->size());
    for (Word w : *winners) set.push_back(static_cast<std::size_t>(w));
    out.sets.push_back(std::move(set));

    std::swap(*remaining_idx, *next_idx);
    std::swap(*remaining_pos, *next_pos);

    // Adaptive degradation (Theorems 5-6): rounds equal the maximum address
    // multiplicity, so a collapsing surviving fraction on a large remainder
    // signals the quadratic tail — e.g. every lane addressing one area runs
    // N rounds of N-lane scatters. Drain that tail in one scalar pass: the
    // j-th remaining occurrence of an address joins set base+j. Occurrences
    // are counted lane-order, so the sets stay disjoint, cover the rest,
    // have non-increasing sizes, and the total round count still equals the
    // maximum multiplicity — the drained decomposition satisfies every
    // theorem the pure one does, and is identical for every backend.
    const vm::MachineConfig& cfg = m.config();
    if (cfg.adaptive && remaining_idx->size() >= cfg.adaptive_min_remaining &&
        n_survived * cfg.adaptive_collapse_den < n_remaining) {
      const std::size_t base = out.sets.size();
      const WordVec& idx = *remaining_idx;
      const WordVec& pos = *remaining_pos;
      std::unordered_map<Word, std::size_t> occurrence;
      occurrence.reserve(idx.size());
      for (std::size_t i = 0; i < idx.size(); ++i) {
        const std::size_t j = occurrence[idx[i]]++;
        if (base + j == out.sets.size()) out.sets.emplace_back();
        out.sets[base + j].push_back(static_cast<std::size_t>(pos[i]));
      }
      out.drained_lanes = idx.size();
      // Scalar chime: one pass over the k drained lanes (ALU per lane for
      // the occurrence bump, a load+store pair per distinct address for the
      // counter, one branch for the loop) — O(k) against the vector path's
      // O(k * max multiplicity).
      m.scalar_alu(idx.size());
      m.scalar_mem(2 * occurrence.size());
      m.scalar_branch(1);
      telemetry::count("fol1.adaptive_drains");
      telemetry::count("fol1.adaptive_drained_lanes", idx.size());
      break;
    }
  }
  telemetry::count("fol1.rounds", out.sets.size());
  telemetry::observe("fol1.rounds_per_call", out.sets.size());
  if (m.audit_enabled() && !satisfies_all_theorems(out, index_vector)) {
    m.checker()->audit_theorem_violation(
        "FOL1", "decomposition fails satisfies_all_theorems (Theorems 1-6)");
  }
  return out;
}

Status fol1_try_decompose(VectorMachine& m, std::span<const Word> index_vector,
                          std::span<Word> work, Decomposition& out) {
  try {
    out = fol1_decompose(m, index_vector, work);
    return Status::ok();
  } catch (const RecoverableError& e) {
    return e.status();
  }
}

Decomposition fol1_decompose_plain(std::span<const Word> index_vector) {
  Word max_index = -1;
  for (Word v : index_vector) {
    // An InternalError, not a precondition: negative entries would otherwise
    // silently size the work array from a negative maximum (UB-adjacent) —
    // treat them as corrupt input caught by the library's own invariant.
    FOLVEC_CHECK(v >= 0,
                 "fol1_decompose_plain: index vector entries must be "
                 "non-negative to size the work array");
    max_index = std::max(max_index, v);
  }
  WordVec work(static_cast<std::size_t>(max_index + 1), 0);
  VectorMachine m;
  return fol1_decompose(m, index_vector, work);
}

std::vector<std::size_t> fol1_round_of_lane(VectorMachine& m,
                                            std::span<const Word> index_vector,
                                            std::span<Word> work) {
  const Decomposition dec = fol1_decompose(m, index_vector, work);
  std::vector<std::size_t> round(index_vector.size(), 0);
  for (std::size_t j = 0; j < dec.sets.size(); ++j) {
    for (std::size_t lane : dec.sets[j]) round[lane] = j;
  }
  return round;
}

}  // namespace folvec::fol
