// Ablation: the paper's probe-recalculation optimization (Section 4.1).
//
// The original PARBASE-90 algorithm advanced colliding keys by +1, so keys
// that collided once kept colliding as a convoy on every retry. This paper
// advances by (key & 31) + 1, giving each key its own stride. The paper
// claims the optimization raises the acceleration ratio for load factors
// between 0.5 and 0.98. This bench runs both variants side by side.
#include <iostream>

#include "bench_harness/experiments.h"
#include "bench_harness/report.h"
#include "support/require.h"
#include "support/table_printer.h"

int main() {
  using namespace folvec;
  bench::BenchReport report("ablation_probe");
  report.config("table_size", 4099);
  report.config("seed", 42);
  const vm::CostParams params = vm::CostParams::s810_like();
  const double loads[] = {0.1, 0.3, 0.5, 0.7, 0.9, 0.98};

  // Both variants are measured against the same scalar baseline (the
  // paper's Figures 9/10 sequential algorithm), so the comparison isolates
  // the vectorized probe-recalculation change.
  TablePrinter table({"load", "vector_us(+1)", "vector_us(key-dep)",
                      "accel(+1)", "accel(key-dep)", "iters(+1)",
                      "iters(key-dep)"});
  double high_load_wins = 0;
  double high_load_rows = 0;
  for (double lf : loads) {
    const bench::RunResult lin =
        bench::run_multi_hash(4099, lf, hashing::ProbeVariant::kLinear, 42,
                              params);
    const bench::RunResult key = bench::run_multi_hash(
        4099, lf, hashing::ProbeVariant::kKeyDependent, 42, params);
    const double baseline_us = key.scalar_us;
    table.add_row({Cell(lf, 2), Cell(lin.vector_us, 1),
                   Cell(key.vector_us, 1), Cell(baseline_us / lin.vector_us, 2),
                   Cell(baseline_us / key.vector_us, 2), Cell(lin.iterations),
                   Cell(key.iterations)});
    if (lf >= 0.5) {
      high_load_rows += 1;
      if (key.vector_us <= lin.vector_us && key.iterations <= lin.iterations) {
        high_load_wins += 1;
      }
    }
  }
  table.print(std::cout,
              "Ablation: probe recalculation, original (+1) vs optimized "
              "(+(key&31)+1), table N=4099");
  report.add_table(
      "Ablation: probe recalculation, original (+1) vs optimized "
      "(+(key&31)+1), table N=4099",
      table);
  report.note("high_load_wins", high_load_wins);
  report.note("high_load_rows", high_load_rows);
  std::cout << "\npaper claim: the optimized recalculation wins for load "
               "factors in [0.5, 0.98] (colliding convoys split up instead "
               "of re-colliding)\n"
            << std::flush;
  FOLVEC_CHECK(high_load_wins == high_load_rows,
               "key-dependent probing must be faster at every load >= 0.5");
  return 0;
}
