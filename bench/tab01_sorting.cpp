// Reproduces paper Table 1: CPU time and acceleration ratio of the O(N)
// sorting algorithms — address calculation sorting (work array 3n) and
// distribution counting sort (work array 2^16, the data range) — for
// N = 2^6, 2^10, 2^14.
//
// Paper reference values:
//   Address calc:  accel 2.62 / 7.65 / 12.84 (growing with N)
//   Dist counting: accel 8.02 / 7.52 /  5.31 (shrinking with N — the fixed
//                  2^16-element histogram init+scan dominates at small N and
//                  vectorizes best)
#include <iostream>

#include "bench_harness/experiments.h"
#include "bench_harness/report.h"
#include "support/require.h"
#include "support/table_printer.h"

int main() {
  using namespace folvec;
  bench::BenchReport report("tab01_sorting");
  report.config("sizes_log2", JsonArray{6, 10, 14});
  report.config("addr_calc_vmax_log2", 20);
  report.config("dist_count_range_log2", 16);
  report.config("seed", 42);
  const vm::CostParams params = vm::CostParams::s810_like();
  constexpr vm::Word kVmax = 1 << 20;   // address-calc value range
  constexpr vm::Word kRange = 1 << 16;  // dist-count value range (paper's)

  TablePrinter table({"algorithm", "N", "sequential_us", "vectorized_us",
                      "acceleration", "paper_accel"});
  const char* paper_acs[] = {"2.62", "7.65", "12.84"};
  const char* paper_dcs[] = {"8.02", "7.52", "5.31"};

  double acs_prev = 0;
  int row = 0;
  for (int lg : {6, 10, 14}) {
    const auto n = static_cast<std::size_t>(1) << lg;
    const bench::RunResult r =
        bench::run_address_calc_sort(n, kVmax, 42, params);
    table.add_row({"address calc", Cell(static_cast<long long>(n)),
                   Cell(r.scalar_us, 0), Cell(r.vector_us, 0),
                   Cell(r.acceleration(), 2), paper_acs[row]});
    FOLVEC_CHECK(r.acceleration() > acs_prev,
                 "address-calc acceleration must grow with N (Table 1)");
    acs_prev = r.acceleration();
    ++row;
  }

  double dcs_prev = 1e9;
  row = 0;
  for (int lg : {6, 10, 14}) {
    const auto n = static_cast<std::size_t>(1) << lg;
    const bench::RunResult r =
        bench::run_dist_count_sort(n, kRange, 42, params);
    table.add_row({"dist counting", Cell(static_cast<long long>(n)),
                   Cell(r.scalar_us, 0), Cell(r.vector_us, 0),
                   Cell(r.acceleration(), 2), paper_dcs[row]});
    FOLVEC_CHECK(r.acceleration() > 1.0,
                 "dist counting must accelerate at every N (Table 1)");
    FOLVEC_CHECK(r.acceleration() <= dcs_prev,
                 "dist-count acceleration must not grow with N (Table 1)");
    dcs_prev = r.acceleration();
    ++row;
  }

  table.print(std::cout,
              "Table 1: CPU time and acceleration of O(N) sorting "
              "algorithms (modeled S-810/20)");
  report.add_table(
      "Table 1: CPU time and acceleration of O(N) sorting algorithms "
      "(modeled S-810/20)",
      table);
  report.note("addr_calc_accel_at_max_n", acs_prev);
  report.note("dist_count_accel_at_max_n", dcs_prev);
  std::cout << "\nshape checks passed: address-calc acceleration grows with "
               "N; dist-counting acceleration shrinks with N\n";
  return 0;
}
