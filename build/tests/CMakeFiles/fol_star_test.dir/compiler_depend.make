# Empty compiler generated dependencies file for fol_star_test.
# This may be replaced when dependencies are built.
