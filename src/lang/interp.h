// An interpreter for the array pseudo-language the paper writes its
// algorithms in ("a language with a parallel array assignment statement and
// a where statement, such as Fortran 90" — Section 4.1), executing on the
// simulated vector machine.
//
// This makes the paper's listings *directly executable*: Figure 8 can be
// fed to the interpreter nearly verbatim and cross-checked against the
// hand-written multi_hash_open_insert, instruction costs included — every
// array operation the program performs is issued to a VectorMachine and
// priced by the same chime model as the native implementations.
//
// Language summary (see parser.cpp for the grammar):
//   * scalars and bounded arrays (`local C[0 : 3*n - 1];`), 1- or 0-based;
//   * parallel array assignment over slices: `A[1 : n] := B[1 : n] + 1;`
//   * list-vector access by array subscripts: `table[hv[1 : n]]` is a
//     gather on the right of `:=` and a scatter on the left;
//   * `where mask do ... end where;` masks the vector assignments inside;
//   * `A where M` packs A's true lanes (the paper's where operator);
//   * `countTrue(M)`, `size(A)`, `iota(n [, start])` builtins, plus
//     host-registered ones (e.g. a hash function);
//   * `for v in a .. b loop`, `repeat ... until c;`, `while c do ...`,
//     `if c then ... [else ...] end if;`, `exit loop;`.
//
// Deviation from the listings: the one-line `if c then stmt;` form is
// written `if c then stmt; end if;` (the grammar keeps block delimiters
// uniform).
#pragma once

#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "lang/ast.h"
#include "vm/machine.h"

namespace folvec::lang {

/// A bounded array: valid subscripts are [lo, lo + data.size()).
struct ArrayValue {
  vm::Word lo = 0;
  vm::WordVec data;

  bool operator==(const ArrayValue&) const = default;
};

using Value = std::variant<vm::Word, ArrayValue>;

class Interpreter {
 public:
  /// The interpreter issues every array operation to `m` (borrowed).
  explicit Interpreter(vm::VectorMachine& m);

  // Host <-> program variable exchange.
  void set_scalar(const std::string& name, vm::Word v);
  void set_array(const std::string& name, ArrayValue v);
  /// Convenience: a plain vector becomes a 1-based array (the listings'
  /// usual convention, `key[1 : n]`).
  void set_array(const std::string& name, vm::WordVec data,
                 vm::Word lo = 1);
  vm::Word scalar(const std::string& name) const;
  const ArrayValue& array(const std::string& name) const;
  bool has(const std::string& name) const;

  /// Registers a host function callable from programs.
  using Builtin = std::function<Value(std::span<const Value>)>;
  void register_builtin(const std::string& name, Builtin fn);

  void run(const Program& program);
  void run(const std::string& source);  // parse + run

 private:
  enum class Flow : std::uint8_t { kNormal, kExitLoop };

  Flow exec_block(const std::vector<StmtPtr>& body);
  Flow exec(const Stmt& stmt);
  void exec_assign(const Stmt& stmt);
  Value eval(const Expr& expr);
  Value eval_binary(const Expr& expr);
  Value eval_call(const Expr& expr);

  vm::Word eval_scalar(const Expr& expr);
  ArrayValue& lookup_array(const std::string& name, std::size_t line);

  /// Converts a 0/1 array (comparison result) to a machine mask.
  static vm::Mask to_mask(const ArrayValue& v, std::size_t line);
  static ArrayValue from_mask(const vm::Mask& mask);

  [[noreturn]] static void fail(std::size_t line, const std::string& msg);

  vm::VectorMachine& m_;
  std::unordered_map<std::string, Value> env_;
  std::unordered_map<std::string, Builtin> builtins_;
  /// Active where-mask (empty when outside any where-block).
  vm::Mask where_mask_;
};

}  // namespace folvec::lang
