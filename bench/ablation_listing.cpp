// Ablation: the paper's Figure 8 listing, interpreted, vs the native
// implementation of the same algorithm.
//
// Both run on identical machines and produce identical tables; the listing
// issues extra vector loads/stores because the pseudo-language's slice
// renames (`key[1:nrest] := key[1:n] where ...`) materialize through
// memory, where the native code keeps packed vectors in registers. The gap
// is therefore a measure of what the paper's *vectorizing compiler* was
// worth beyond the algorithm itself.
#include <algorithm>
#include <iostream>

#include "bench_harness/report.h"
#include "hashing/open_table.h"
#include "lang/interp.h"
#include "support/prng.h"
#include "support/require.h"
#include "support/table_printer.h"
#include "vm/machine.h"

namespace {

constexpr const char* kFigure8 = R"(
hashedValue[1 : n] := key[1 : n] mod size(table);
where table[hashedValue[1 : n]] = unentered do
  table[hashedValue[1 : n]] := key[1 : n];
end where;
for it in 1 .. size(table) loop
  entered[1 : n] := key[1 : n] = table[hashedValue[1 : n]];
  nrest := countTrue(not entered[1 : n]);
  hashedValue[1 : nrest] := hashedValue[1 : n] where not entered[1 : n];
  key[1 : nrest] := key[1 : n] where not entered[1 : n];
  if nrest = 0 then exit loop; end if;
  n := nrest;
  hashedValue[1 : n] :=
      (hashedValue[1 : n] + (key[1 : n] & 31) + 1) mod size(table);
  where table[hashedValue[1 : n]] = unentered do
    table[hashedValue[1 : n]] := key[1 : n];
  end where;
end loop;
)";

}  // namespace

int main() {
  using namespace folvec;
  using vm::Word;
  using vm::WordVec;
  const vm::CostParams params = vm::CostParams::s810_like();
  constexpr std::size_t kTableSize = 4099;
  bench::BenchReport report("ablation_listing");
  report.config("table_size", 4099);
  report.config("loads", JsonArray{0.1, 0.5, 0.9});

  TablePrinter table({"load", "native_us", "listing_us", "overhead"});
  for (double load : {0.1, 0.5, 0.9}) {
    const auto n_keys = static_cast<std::size_t>(
        load * static_cast<double>(kTableSize));
    const WordVec keys = random_unique_keys(n_keys, 1 << 30, 3);

    vm::VectorMachine m_native;
    std::vector<Word> native_table(kTableSize, hashing::kUnentered);
    hashing::multi_hash_open_insert(m_native, native_table, keys,
                                    hashing::ProbeVariant::kKeyDependent);

    vm::VectorMachine m_listing;
    lang::Interpreter interp(m_listing);
    interp.set_scalar("unentered", hashing::kUnentered);
    interp.set_scalar("n", static_cast<Word>(n_keys));
    interp.set_array("table", WordVec(kTableSize, hashing::kUnentered), 0);
    interp.set_array("key", keys);
    interp.set_array("hashedValue", WordVec(n_keys, 0));
    interp.set_array("entered", WordVec(n_keys, 0));
    interp.run(kFigure8);

    FOLVEC_CHECK(interp.array("table").data ==
                     WordVec(native_table.begin(), native_table.end()),
                 "listing and native implementation diverged");

    const double native_us = m_native.cost().microseconds(params);
    const double listing_us = m_listing.cost().microseconds(params);
    table.add_row({Cell(load, 1), Cell(native_us, 1), Cell(listing_us, 1),
                   Cell(listing_us / native_us, 2)});
    FOLVEC_CHECK(listing_us < native_us * 3.0,
                 "interpretation overhead blew past 3x");
  }
  table.print(std::cout,
              "Ablation: Figure 8 as an interpreted listing vs the native "
              "implementation (N=4099)");
  report.add_table(
      "Ablation: Figure 8 as an interpreted listing vs the native "
      "implementation (N=4099)",
      table);
  std::cout << "\nboth produce bit-identical tables; the gap is the cost of "
               "materializing slice renames through memory instead of "
               "registers\n";
  return 0;
}
