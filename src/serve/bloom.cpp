#include "serve/bloom.h"

#include <algorithm>
#include <bit>

namespace folvec::serve {

namespace {

/// splitmix64 finalizer: full-avalanche mix, the same construction the
/// fault plan and PRNG use. Double hashing h1 + i*h2 derives every probe
/// position from two independent mixes.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

BloomFilter::BloomFilter(std::size_t expected_keys, std::size_t bits_per_key)
    : capacity_keys_(0),
      bits_per_key_(std::max<std::size_t>(1, bits_per_key)),
      bit_count_(0),
      hashes_(0) {
  reset(expected_keys);
}

void BloomFilter::reset(std::size_t expected_keys) {
  capacity_keys_ = std::max<std::size_t>(1, expected_keys);
  bit_count_ = std::max<std::size_t>(64, capacity_keys_ * bits_per_key_);
  // k = bits_per_key * ln 2, the FP-optimal count for a filter at capacity.
  hashes_ = std::clamp<std::size_t>(
      static_cast<std::size_t>(static_cast<double>(bits_per_key_) * 0.693),
      1, 8);
  words_.assign((bit_count_ + 63) / 64, 0);
}

void BloomFilter::insert(vm::Word key) {
  const std::uint64_t h1 = mix64(static_cast<std::uint64_t>(key));
  const std::uint64_t h2 = mix64(h1) | 1;  // odd: full-period stepping
  std::uint64_t h = h1;
  for (std::size_t i = 0; i < hashes_; ++i) {
    const std::size_t bit = static_cast<std::size_t>(h % bit_count_);
    words_[bit >> 6] |= std::uint64_t{1} << (bit & 63);
    h += h2;
  }
}

void BloomFilter::insert_all(std::span<const vm::Word> keys) {
  for (const vm::Word k : keys) insert(k);
}

bool BloomFilter::may_contain(vm::Word key) const {
  const std::uint64_t h1 = mix64(static_cast<std::uint64_t>(key));
  const std::uint64_t h2 = mix64(h1) | 1;
  std::uint64_t h = h1;
  for (std::size_t i = 0; i < hashes_; ++i) {
    const std::size_t bit = static_cast<std::size_t>(h % bit_count_);
    if ((words_[bit >> 6] & (std::uint64_t{1} << (bit & 63))) == 0) {
      return false;
    }
    h += h2;
  }
  return true;
}

double BloomFilter::fill_ratio() const {
  std::size_t set = 0;
  for (const std::uint64_t w : words_) {
    set += static_cast<std::size_t>(std::popcount(w));
  }
  return static_cast<double>(set) / static_cast<double>(bit_count_);
}

}  // namespace folvec::serve
