// ShardedMap: N VectorHashMap shards, one backend lane-group each.
//
// The scaling unit of the serving layer. Keys route to shards by a
// multiplicative spreading hash computed with vector ops on a dedicated
// router machine; each shard owns its own VectorMachine built from the
// shared MachineConfig — so a kParallel config gives every shard its own
// worker pool (its lane group), and a kParallelSimd config runs every
// shard's probe chains through the SIMD kernel tables. Batches partition
// stably by shard and run through the existing FOL decomposition via
// VectorHashMap::{upsert,lookup,erase}_batch, which preserves the
// sequential "last lane wins" contract: all occurrences of a key land in
// the same shard, in batch order.
//
// Each shard carries a Bloom filter (bloom.h) consulted before any vector
// op is issued: definitely-absent lookups and erases short-circuit on the
// scalar unit. The filter is maintained insert-after-success and rebuilt
// from live_keys() after erases, so it can only over-approximate the live
// set (false positives, never false negatives) — the differential tests
// pin ShardedMap bit-identical to a single reference VectorHashMap at
// every backend / worker-count / shard-count combination.
//
// Not thread-safe: like VectorMachine itself, a ShardedMap belongs to one
// issuing thread (the BatchServer's dispatch loop); parallelism comes from
// the shards' backend pools, not from concurrent callers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "hashing/hash_map.h"
#include "serve/bloom.h"
#include "vm/machine.h"

namespace folvec::serve {

struct ShardedMapConfig {
  /// Number of shards (>= 1). Each gets its own VectorMachine + hash map.
  std::size_t shards = 4;
  /// Every shard machine (and the router) is built from this config.
  vm::MachineConfig machine;
  /// Initial per-shard hash map capacity.
  std::size_t initial_capacity = 64;
  /// Bloom front-end on/off and its sizing.
  bool bloom = true;
  std::size_t bloom_bits_per_key = 10;
};

class ShardedMap {
 public:
  explicit ShardedMap(const ShardedMapConfig& config = {});

  std::size_t shard_count() const { return shards_.size(); }
  /// Total live keys across shards.
  std::size_t size() const;

  /// Batched upsert: routes, partitions stably, runs each shard's
  /// sub-batch, then (only after the shard's batch succeeded) adds the
  /// keys to the shard's Bloom filter — the retry-safety rule for side
  /// state layered over upsert_batch's rehash-and-retry loop.
  void upsert_batch(std::span<const vm::Word> keys,
                    std::span<const vm::Word> values);

  /// Batched lookup: `missing` for absent keys. Bloom-definite misses
  /// never reach the shard machine (counted in serve.bloom.skipped).
  vm::WordVec lookup_batch(std::span<const vm::Word> keys, vm::Word missing);

  /// Batched erase; returns the number of keys removed. Shards that
  /// removed anything rebuild their Bloom filter from live_keys().
  std::size_t erase_batch(std::span<const vm::Word> keys);

  bool contains(vm::Word key);

  /// Shard index per key, computed on the router machine (exposed so the
  /// tests can assert routing determinism and cross-shard coverage).
  vm::WordVec route(std::span<const vm::Word> keys);

  hashing::VectorHashMap& shard_map(std::size_t shard) {
    return shards_[shard]->map;
  }
  vm::VectorMachine& shard_machine(std::size_t shard) {
    return shards_[shard]->machine;
  }
  const BloomFilter* shard_bloom(std::size_t shard) const {
    return bloom_enabled_ ? &shards_[shard]->bloom : nullptr;
  }

  /// Lookups/erases answered "definitely absent" by a Bloom filter alone.
  std::uint64_t bloom_skips() const { return bloom_skips_; }
  std::uint64_t bloom_rebuilds() const { return bloom_rebuilds_; }

 private:
  struct Shard {
    explicit Shard(const ShardedMapConfig& config)
        : machine(config.machine),
          map(config.initial_capacity),
          bloom(config.initial_capacity, config.bloom_bits_per_key) {}
    vm::VectorMachine machine;
    hashing::VectorHashMap map;
    BloomFilter bloom;
  };

  /// Stable per-shard partition of a batch (scalar-unit bookkeeping, like
  /// the hash map's duplicate handling): lanes[s] are original positions,
  /// in batch order.
  void partition(std::span<const vm::Word> keys,
                 std::vector<std::vector<vm::Word>>& shard_keys,
                 std::vector<std::vector<std::size_t>>& shard_lanes);

  void rebuild_bloom(Shard& shard);

  vm::VectorMachine router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool bloom_enabled_;
  std::uint64_t bloom_skips_ = 0;
  std::uint64_t bloom_rebuilds_ = 0;
};

}  // namespace folvec::serve
