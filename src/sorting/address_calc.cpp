#include "sorting/address_calc.h"

#include <limits>
#include <utility>

#include "support/require.h"
#include "telemetry/metrics.h"
#include "vm/buffer_pool.h"
#include "vm/checker.h"

namespace folvec::sorting {

using vm::Mask;
using vm::VectorMachine;
using vm::Word;
using vm::WordVec;

namespace {

/// Order-preserving spreading function: floor(2n * x / vmax), mapping
/// [0, vmax) onto [0, 2n) (the first two thirds of the 3n-slot work array).
Word spread(Word x, Word n, Word vmax) {
  return 2 * n * x / vmax;
}

void check_input(std::span<const Word> data, Word vmax) {
  FOLVEC_REQUIRE(vmax > 0, "vmax must be positive");
  const auto n = static_cast<Word>(data.size());
  FOLVEC_REQUIRE(n == 0 || vmax <= std::numeric_limits<Word>::max() / (2 * n),
                 "2n * vmax must not overflow the machine word");
  for (Word x : data) {
    FOLVEC_REQUIRE(x >= 0 && x < vmax, "data values must lie in [0, vmax)");
  }
}

}  // namespace

void address_calc_sort_scalar(std::span<Word> data, Word vmax,
                              vm::CostAccumulator* cost) {
  check_input(data, vmax);
  const auto n = static_cast<Word>(data.size());
  if (n == 0) return;
  vm::ScalarCost sc(cost);
  const Word unentered = vmax;  // greater than any datum
  std::vector<Word> c(static_cast<std::size_t>(3 * n), unentered);
  sc.mem(c.size());
  sc.branch(c.size());

  for (Word x : data) {
    // A: spreading-function "hash" — one multiply and one (slow) divide.
    auto hv = static_cast<std::size_t>(spread(x, n, vmax));
    sc.div(1);
    sc.alu(2);
    // B: advance while the slot holds a value not greater than x, keeping
    // equal values stable and the occupied run sorted.
    sc.mem(1);
    sc.branch(1);
    while (c[hv] <= x) {
      ++hv;
      sc.alu(1);
      sc.mem(1);
      sc.branch(1);
    }
    // C & D: insert and ripple the displaced suffix one slot rightward.
    Word w = c[hv];
    c[hv] = x;
    sc.mem(2);
    while (w != unentered) {
      ++hv;
      const Word next = c[hv];
      c[hv] = w;
      w = next;
      sc.alu(1);
      sc.mem(2);
      sc.branch(1);
    }
    sc.branch(1);
  }

  // F: pack the occupied slots back into `data`.
  std::size_t count = 0;
  for (Word v : c) {
    sc.mem(1);
    sc.branch(1);
    if (v != unentered) {
      data[count++] = v;
      sc.mem(1);
    }
  }
  FOLVEC_CHECK(count == data.size(), "pack phase lost elements");
}

AddressCalcStats address_calc_sort_vector(VectorMachine& m,
                                          std::span<Word> data, Word vmax) {
  AddressCalcStats stats;
  check_input(data, vmax);
  const auto n = static_cast<Word>(data.size());
  if (n == 0) return stats;
  const vm::AlgoSpan span(m, "sorting.address_calc");
  telemetry::count("sorting.address_calc.calls");
  const Word unentered = vmax;

  std::vector<Word> c(static_cast<std::size_t>(3 * n));
  m.fill(c, unentered);

  // Pass-loop working vectors are pooled; steady-state passes allocate only
  // masks and the expression temporaries of phase B.
  vm::BufferPool& pool = m.pool();
  const std::size_t n0 = data.size();
  vm::PooledVec work(pool, n0);
  vm::PooledVec probed(pool, n0);
  vm::PooledVec shift_vals(pool, n0);
  vm::PooledVec shift_idx(pool, n0);
  vm::PooledVec scratch(pool, n0);
  vm::PooledVec ids(pool, n0);
  vm::PooledVec next_hv(pool, n0);
  vm::PooledVec next_a(pool, n0);
  vm::PooledVec assigned(pool, n0);  // kept half of the phase-E split; unused

  WordVec a = m.copy(data);
  // A: spreading-function "hash" of every datum at once. The two-op
  // elementwise chain queues under one OpBatch and crosses the pool
  // boundary once, composed through named buffers per the batch lifetime
  // rule.
  WordVec hv;
  {
    const vm::VectorMachine::OpBatch batch(m);
    m.mul_scalar_into(*scratch, a, 2 * n);
    m.div_scalar_into(hv, *scratch, vmax);
  }

  while (!a.empty()) {
    const vm::AlgoSpan pass_span(m, "pass", stats.outer_passes);
    ++stats.outer_passes;

    // B: advance lanes whose slot holds a value <= their datum. The loop is
    // all-vector; each pass moves only the still-colliding lanes. The bump
    // and the select of each step form one batched dispatch (the gather and
    // the count are memory/reduce class and flush eagerly either way).
    for (;;) {
      m.gather_into(*probed, c, hv);
      const Mask uninsertable = m.le(*probed, a);
      if (m.count_true(uninsertable) == 0) break;
      ++stats.probe_steps;
      {
        const vm::VectorMachine::OpBatch batch(m);
        m.add_scalar_into(*scratch, hv, 1);
        m.select_into(*next_hv, uninsertable, *scratch, hv);
      }
      std::swap(hv, *next_hv);
    }

    // C: overwrite-and-check with negated lane identifiers (-1..-nrest,
    // disjoint from the non-negative data), then store data where the
    // identifier survived. The claim is one fused scatter_gather_eq; every
    // claimed slot gets exactly one winner, so the masked data scatter below
    // overwrites every label the round left.
    m.gather_into(*work, c, hv);  // save displaced originals
    {
      // Identifier generation is another two-op batchable chain.
      const vm::VectorMachine::OpBatch batch(m);
      m.iota_into(*scratch, a.size(), 1);
      m.negate_into(*ids, *scratch);
    }
    Mask entered;
    {
      const vm::ConflictWindow window(m, c, vm::WindowKind::kLabelRound,
                                      "address-calc id claim");
      entered = m.scatter_gather_eq(c, hv, *ids);
    }
    m.scatter_masked(c, hv, a, entered);

    // D: ripple displaced values rightward, all chains in lock step. Chains
    // start at distinct slots (winners are unique per slot) and advance by
    // one slot per step, so they never collide; a chain that runs into
    // another winner's fresh value simply carries it along. The shift mask
    // (compare + mask-and) is one more batched pair.
    Mask displaced;
    Mask to_shift;
    {
      const vm::VectorMachine::OpBatch batch(m);
      m.ne_scalar_into(displaced, *work, unentered);
      m.mask_and_into(to_shift, entered, displaced);
    }
    m.compress_into(*shift_vals, *work, to_shift);
    m.compress_into(*scratch, hv, to_shift);
    m.add_scalar_into(*shift_idx, *scratch, 1);
    while (!shift_vals->empty()) {
      ++stats.shift_steps;
      m.gather_into(*probed, c, *shift_idx);
      m.scatter(c, *shift_idx, *shift_vals);
      const Mask nonempty = m.ne_scalar(*probed, unentered);
      m.compress_into(*shift_vals, *probed, nonempty);
      m.compress_into(*scratch, *shift_idx, nonempty);
      m.add_scalar_into(*shift_idx, *scratch, 1);
    }

    // E: pack the lanes that lost the identifier check for the next pass:
    // one partition per control vector, keeping only the rejected halves
    // (replacing the old mask_not + two compresses).
    m.partition_into(*assigned, *next_hv, hv, entered);
    m.partition_into(*assigned, *next_a, a, entered);
    std::swap(hv, *next_hv);
    std::swap(a, *next_a);
  }

  // F: pack the occupied slots of C back into `data`.
  const WordVec cv = m.load(c, 0, c.size());
  const WordVec sorted = m.compress(cv, m.ne_scalar(cv, unentered));
  FOLVEC_CHECK(sorted.size() == data.size(), "pack phase lost elements");
  m.store(data, 0, sorted);
  // Displacement statistics: how far the probe/ripple loops had to walk.
  telemetry::count("sorting.address_calc.outer_passes", stats.outer_passes);
  telemetry::observe("sorting.address_calc.probe_steps", stats.probe_steps);
  telemetry::observe("sorting.address_calc.shift_steps", stats.shift_steps);
  return stats;
}

}  // namespace folvec::sorting
