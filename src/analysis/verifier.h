// The offline static verifier: replays a recorded op graph.
//
// verify() walks an OpGraph in program order, recomputes every node's
// LaneFacts through the same facts.h transfer functions the online analyzer
// used, reconstructs the window / clobber state machine from the recorded
// environment nodes (window open/close, stores, retire-work), and re-judges
// every checkable memory op with the shared judge functions from verdict.h.
//
// Because judges and transfer functions are shared, the replayed verdicts
// must MATCH the verdicts recorded in the graph — any divergence is reported
// as a mismatch and means either a corrupted graph or an analyzer bug (the
// analysis tests assert zero mismatches on round-tripped graphs). The one
// exception is the lifetime class: pool release/acquire events are keyed by
// host pointers the serialized graph cannot carry, so replay trusts the
// recorded lifetime verdicts verbatim.
//
// This is what folvec_lint runs after a dry execution, and what downstream
// tooling can run on a "folvec-opgraph-v1" JSON document without any
// machine at all.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/opgraph.h"

namespace folvec::analysis {

struct ReplayResult {
  /// Proven hazards found by the replay (one per hazardous class per op).
  std::vector<Diagnostic> diagnostics;
  /// Replayed-vs-recorded verdict divergences (empty on a healthy graph).
  std::vector<std::string> mismatches;
  std::size_t checked_ops = 0;  ///< checkable memory ops replayed
  std::size_t safe_ops = 0;     ///< overall() == kProvenSafe
  std::size_t unknown_ops = 0;
  std::size_t hazard_ops = 0;

  bool clean() const { return diagnostics.empty() && mismatches.empty(); }
};

ReplayResult verify(const OpGraph& graph);

}  // namespace folvec::analysis
