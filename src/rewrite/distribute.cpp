#include "rewrite/distribute.h"

#include <vector>

#include "support/require.h"

namespace folvec::rewrite {

using vm::Mask;
using vm::VectorMachine;
using vm::Word;
using vm::WordVec;

namespace {

constexpr Word kMul = static_cast<Word>(NodeKind::kOp);
constexpr Word kAddK = static_cast<Word>(NodeKind::kAdd);
constexpr Word kLeafK = static_cast<Word>(NodeKind::kLeaf);

}  // namespace

bool is_sum_of_products(const TermArena& arena, Word root) {
  // DFS with an "inside a product" flag; DAG nodes may be reached through
  // several paths, so visited states (node, flag) bound the work.
  std::vector<std::pair<Word, bool>> stack{{root, false}};
  std::vector<std::uint8_t> seen(arena.size() * 2, 0);
  while (!stack.empty()) {
    const auto [n, in_mul] = stack.back();
    stack.pop_back();
    const auto state = 2 * static_cast<std::size_t>(n) + (in_mul ? 1u : 0u);
    if (seen[state]) continue;
    seen[state] = 1;
    switch (arena.kind(n)) {
      case NodeKind::kLeaf:
        break;
      case NodeKind::kAdd:
        if (in_mul) return false;
        stack.emplace_back(arena.left(n), false);
        stack.emplace_back(arena.right(n), false);
        break;
      case NodeKind::kOp:
        stack.emplace_back(arena.left(n), true);
        stack.emplace_back(arena.right(n), true);
        break;
    }
  }
  return true;
}

namespace {

/// Post-order normalization: children are expanded before the node itself
/// is examined (a child rewritten into a sum re-exposes its parent as a
/// redex), and the fresh products are normalized recursively. Only the
/// redex root is written; the add child stays intact because it may be
/// shared (see header).
void normalize_scalar(TermArena& arena, Word n, DistributeStats& stats,
                      vm::ScalarCost& sc) {
  sc.mem(1);
  sc.branch(1);
  if (arena.kind(n) == NodeKind::kLeaf) return;
  normalize_scalar(arena, arena.left(n), stats, sc);
  normalize_scalar(arena, arena.right(n), stats, sc);
  if (arena.kind(n) != NodeKind::kOp) return;
  const Word l = arena.left(n);
  const Word r = arena.right(n);
  const bool right_add = arena.kind(r) == NodeKind::kAdd;
  const bool left_add = arena.kind(l) == NodeKind::kAdd;
  sc.mem(4);
  sc.branch(2);
  if (!right_add && !left_add) return;
  const Word s = right_add ? r : l;  // the add (read-only)
  const Word x = right_add ? l : r;  // the distributed factor
  const Word y = arena.left(s);
  const Word z = arena.right(s);
  const Word t1 = right_add ? arena.make_op(x, y) : arena.make_op(y, x);
  const Word t2 = right_add ? arena.make_op(x, z) : arena.make_op(z, x);
  arena.kinds()[static_cast<std::size_t>(n)] = kAddK;
  arena.lefts()[static_cast<std::size_t>(n)] = t1;
  arena.rights()[static_cast<std::size_t>(n)] = t2;
  ++stats.rewrites;
  stats.allocated += 2;
  sc.mem(9);
  sc.alu(4);
  normalize_scalar(arena, t1, stats, sc);
  normalize_scalar(arena, t2, stats, sc);
}

}  // namespace

DistributeStats distribute_scalar(TermArena& arena, Word root,
                                  vm::CostAccumulator* cost) {
  DistributeStats stats;
  vm::ScalarCost sc(cost);
  normalize_scalar(arena, root, stats, sc);
  FOLVEC_CHECK(is_sum_of_products(arena, root), "expansion incomplete");
  return stats;
}

DistributeStats distribute_vector(VectorMachine& m, TermArena& arena,
                                  Word root) {
  DistributeStats stats;
  for (;;) {
    ++stats.sweeps;
    const std::size_t n_nodes = arena.size();
    auto& kinds = arena.kinds();
    auto& lefts = arena.lefts();
    auto& rights = arena.rights();

    // Redex scan: mul nodes with an add child; prefer the right-add rule
    // when both children are adds (the left add is inside X and is picked
    // up once the fresh products are scanned next sweep).
    const WordVec node_ids = m.iota(n_nodes);
    const WordVec kv = m.load(kinds, 0, n_nodes);
    const WordVec lv = m.load(lefts, 0, n_nodes);
    const WordVec rv = m.load(rights, 0, n_nodes);
    const Mask is_mul = m.eq_scalar(kv, kMul);
    const Mask right_add = m.mask_and(
        is_mul,
        m.eq_scalar(m.gather_masked(kinds, rv, is_mul, kLeafK), kAddK));
    const Mask left_add = m.mask_and(
        m.mask_and(is_mul, m.mask_not(right_add)),
        m.eq_scalar(m.gather_masked(kinds, lv, is_mul, kLeafK), kAddK));
    const Mask redex = m.mask_or(right_add, left_add);
    const std::size_t k = m.count_true(redex);
    if (k == 0) break;

    // Every redex writes only its own root, so the whole sweep is one
    // parallel-processable set by construction.
    const WordVec rs = m.compress(node_ids, redex);
    const Mask r1_full = right_add;  // side flag, packed below
    const WordVec side = m.compress(m.from_mask(r1_full), redex);
    const Mask r1 = m.ge_scalar(side, 1);
    const WordVec ss = m.compress(m.select(r1_full, rv, lv), redex);
    const WordVec x = m.compress(m.select(r1_full, lv, rv), redex);
    const WordVec y = m.gather(lefts, ss);
    const WordVec z = m.gather(rights, ss);

    // Allocate 2k fresh products contiguously: t1 block then t2 block.
    const Word base = static_cast<Word>(arena.size());
    for (std::size_t i = 0; i < 2 * k; ++i) arena.make_op(0, 0);
    auto& kinds2 = arena.kinds();
    auto& lefts2 = arena.lefts();
    auto& rights2 = arena.rights();
    const auto t1_off = static_cast<std::size_t>(base);
    const auto t2_off = t1_off + k;
    m.store(kinds2, t1_off, m.splat(2 * k, kMul));
    m.store(lefts2, t1_off, m.select(r1, x, y));
    m.store(rights2, t1_off, m.select(r1, y, x));
    m.store(lefts2, t2_off, m.select(r1, x, z));
    m.store(rights2, t2_off, m.select(r1, z, x));

    // r := t1 + t2.
    m.scatter(kinds2, rs, m.splat(k, kAddK));
    m.scatter(lefts2, rs, m.iota(k, base));
    m.scatter(rights2, rs, m.iota(k, base + static_cast<Word>(k)));

    stats.rewrites += k;
    stats.allocated += 2 * k;
  }
  FOLVEC_CHECK(is_sum_of_products(arena, root), "expansion incomplete");
  return stats;
}

}  // namespace folvec::rewrite
