// Abstract syntax for the paper's array pseudo-language.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "vm/machine.h"

namespace folvec::lang {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind : std::uint8_t {
    kNumber,  ///< integer literal                      (number)
    kVar,     ///< identifier                           (name)
    kIndex,   ///< name [ e ]                           (name, args[0])
    kSlice,   ///< name [ lo : hi ]                     (name, args[0..1])
    kBinary,  ///< e op e                               (op, args[0..1])
    kUnary,   ///< -e / not e                           (op, args[0])
    kCall,    ///< name ( e, ... )                      (name, args)
    kWhere,   ///< e where e  (pack-under-mask)         (args[0..1])
  };

  Kind kind;
  vm::Word number = 0;
  std::string name;
  std::string op;
  std::vector<ExprPtr> args;
  std::size_t line = 0;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind : std::uint8_t {
    kAssign,  ///< lhs := rhs ;
    kWhere,   ///< where cond do body end where ;
    kFor,     ///< for v in a .. b loop body end loop ;
    kRepeat,  ///< repeat body until cond ;
    kWhile,   ///< while cond do body end while ;
    kIf,      ///< if cond then body [else else_body] end if ;  (one-armed
              ///< short form "if cond then stmt" also accepted)
    kExit,    ///< exit loop ;
    kLocal,   ///< local name [ lo : hi ] ;   (array declaration, zeroed)
  };

  Kind kind;
  ExprPtr lhs;   // kAssign target (kVar/kIndex/kSlice)
  ExprPtr rhs;   // kAssign value
  ExprPtr cond;  // kWhere/kRepeat/kWhile/kIf
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> else_body;
  std::string var;       // kFor loop variable / kLocal array name
  ExprPtr from;          // kFor lower bound / kLocal lower bound
  ExprPtr to;            // kFor upper bound / kLocal upper bound
  std::size_t line = 0;
};

using Program = std::vector<StmtPtr>;

/// Parses a program (sequence of statements). Throws PreconditionError
/// with a line number on syntax errors.
Program parse_program(const std::string& source);

}  // namespace folvec::lang
