// Static hazard verifier: abstract lane domains, per-class verdicts, the
// recorded op-graph IR, offline replay, audit elision, and the soundness
// contract (a ProvenSafe op must never trip a runtime ScatterCheck hazard —
// enforced here by differential fuzz across scatter orders, backends, and
// fuse modes).
#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "analysis/facts.h"
#include "analysis/interval_set.h"
#include "analysis/opgraph.h"
#include "analysis/verdict.h"
#include "analysis/verifier.h"
#include "fol/fol1.h"
#include "support/prng.h"
#include "vm/buffer_pool.h"
#include "vm/checker.h"
#include "vm/machine.h"

namespace folvec {
namespace {

using analysis::Analyzer;
using analysis::ClobberOverlap;
using analysis::HazardClass;
using analysis::IntervalSet;
using analysis::LaneFacts;
using analysis::OpGraph;
using analysis::OpVerdicts;
using analysis::Verdict;
using analysis::WindowCtx;
using vm::BackendKind;
using vm::ConflictWindow;
using vm::HazardKind;
using vm::MachineConfig;
using vm::ScatterOrder;
using vm::VectorMachine;
using vm::WindowKind;
using vm::Word;
using vm::WordVec;

MachineConfig analyzed(bool elide = true, bool audit_throw = true) {
  MachineConfig cfg;
  cfg.audit = true;
  cfg.audit_throw = audit_throw;
  cfg.analysis = true;
  cfg.audit_elide = elide;
  return cfg;
}

std::uint64_t verdicts_of(const Analyzer::Stats& st, HazardClass c,
                          Verdict v) {
  return st.class_verdicts[static_cast<std::size_t>(c)]
                          [static_cast<std::size_t>(v)];
}

// ---- abstract lane domains (facts.h) ----------------------------------------

TEST(LaneFactsTest, IotaIsTightDistinctSorted) {
  const LaneFacts f = analysis::facts_iota(8, 3, 1);
  EXPECT_TRUE(f.has_range);
  EXPECT_EQ(f.lo, 3);
  EXPECT_EQ(f.hi, 10);
  EXPECT_TRUE(f.tight);
  EXPECT_TRUE(f.distinct);
  EXPECT_TRUE(f.sorted);
  EXPECT_TRUE(f.covers_range());
}

TEST(LaneFactsTest, IotaOverflowDropsToUnknown) {
  const LaneFacts f =
      analysis::facts_iota(4, std::numeric_limits<Word>::max() - 1, 1);
  EXPECT_FALSE(f.has_range);
  EXPECT_FALSE(f.distinct);
}

TEST(LaneFactsTest, AddScalarShiftsAndPreservesStructure) {
  const LaneFacts f =
      analysis::facts_add_scalar(analysis::facts_iota(4, 0, 1), 100);
  EXPECT_TRUE(f.has_range);
  EXPECT_EQ(f.lo, 100);
  EXPECT_EQ(f.hi, 103);
  EXPECT_TRUE(f.tight);
  EXPECT_TRUE(f.distinct);
  EXPECT_TRUE(f.sorted);
}

TEST(LaneFactsTest, AddScalarOverflowDropsToUnknown) {
  const LaneFacts in = analysis::facts_observed(
      2, std::numeric_limits<Word>::max() - 1, std::numeric_limits<Word>::max());
  const LaneFacts f = analysis::facts_add_scalar(in, 2);
  EXPECT_FALSE(f.has_range);
}

TEST(LaneFactsTest, ModScalarIsIdentityOnItsResidueInterval) {
  const LaneFacts in = analysis::facts_iota(5, 0, 1);  // [0, 4], distinct
  const LaneFacts same = analysis::facts_mod_scalar(in, 7);
  EXPECT_EQ(same, in);  // already within [0, 7): every claim survives
  const LaneFacts wide = analysis::facts_mod_scalar(
      analysis::facts_iota(10, 0, 1), 7);  // wraps: only the residue range
  EXPECT_TRUE(wide.has_range);
  EXPECT_EQ(wide.lo, 0);
  EXPECT_EQ(wide.hi, 6);
  EXPECT_FALSE(wide.tight);
  EXPECT_FALSE(wide.distinct);
}

TEST(LaneFactsTest, SubsetDropsTightnessKeepsOrder) {
  const LaneFacts f =
      analysis::facts_subset(analysis::facts_iota(8, 0, 1), 5);
  EXPECT_EQ(f.lanes, 5u);
  EXPECT_TRUE(f.has_range);
  EXPECT_FALSE(f.tight);  // the endpoint lanes may have been dropped
  EXPECT_TRUE(f.distinct);
  EXPECT_TRUE(f.sorted);
}

TEST(LaneFactsTest, ObservedIsTightButNotDistinct) {
  const LaneFacts f = analysis::facts_observed(6, -3, 12);
  EXPECT_TRUE(f.has_range);
  EXPECT_TRUE(f.tight);  // a scan attains both endpoints
  EXPECT_FALSE(f.distinct);  // the scan does not dedup
}

TEST(LaneFactsTest, PigeonholeProvesDuplicates) {
  LaneFacts f = analysis::facts_observed(5, 0, 3);  // 5 lanes, 4 values
  EXPECT_TRUE(f.proven_duplicates());
  f = analysis::facts_observed(4, 0, 3);
  EXPECT_FALSE(f.proven_duplicates());
  EXPECT_TRUE(analysis::facts_splat(4, 7).constant());
}

// ---- verdict judges (verdict.h) ---------------------------------------------

TEST(JudgeTest, BoundsTightEndpointOutsideTableIsHazard) {
  const LaneFacts oob = analysis::facts_iota(5, 7, 1);  // [7, 11] tight
  EXPECT_EQ(analysis::judge_bounds(oob, 10, /*masked=*/false),
            Verdict::kProvenHazard);
  // Masked: the offending endpoint lane may be inactive.
  EXPECT_EQ(analysis::judge_bounds(oob, 10, /*masked=*/true),
            Verdict::kUnknown);
  // Untight: the endpoint may not be attained by any lane.
  EXPECT_EQ(analysis::judge_bounds(analysis::facts_subset(oob, 3), 10, false),
            Verdict::kUnknown);
  EXPECT_EQ(analysis::judge_bounds(oob, 12, false), Verdict::kProvenSafe);
  EXPECT_EQ(analysis::judge_bounds(LaneFacts::unknown(4), 10, false),
            Verdict::kUnknown);
}

TEST(JudgeTest, OverlapSanctionsAndPigeonholeLoss) {
  const LaneFacts distinct = analysis::facts_iota(4, 0, 1);
  const LaneFacts dup = analysis::facts_splat(3, 2);       // proven duplicates
  const LaneFacts vals_distinct = analysis::facts_iota(3, 10, 1);
  const LaneFacts vals_const = analysis::facts_splat(3, 9);
  const LaneFacts unknown = LaneFacts::unknown(3);

  using analysis::judge_scatter_overlap;
  EXPECT_EQ(judge_scatter_overlap(dup, vals_distinct, WindowCtx::kNone, false,
                                  /*ordered=*/true),
            Verdict::kProvenSafe);  // VSTX defines the survivor
  EXPECT_EQ(judge_scatter_overlap(dup, vals_distinct, WindowCtx::kLabelRound,
                                  false, false),
            Verdict::kProvenSafe);  // the FOL sanction
  EXPECT_EQ(judge_scatter_overlap(distinct, unknown, WindowCtx::kNone, false,
                                  false),
            Verdict::kProvenSafe);  // no collisions at all
  EXPECT_EQ(judge_scatter_overlap(unknown, vals_const, WindowCtx::kNone, false,
                                  false),
            Verdict::kProvenSafe);  // collisions benign
  // Pigeonhole duplicates carrying pairwise-distinct values lose data even
  // inside a sanctioning data-race window (static-stronger).
  EXPECT_EQ(judge_scatter_overlap(dup, vals_distinct, WindowCtx::kDataRace,
                                  false, false),
            Verdict::kProvenHazard);
  EXPECT_EQ(judge_scatter_overlap(unknown, unknown, WindowCtx::kDataRace,
                                  false, false),
            Verdict::kUnknown);
}

TEST(JudgeTest, ReadClobberNeedsTightEdgeInExactSpan) {
  const LaneFacts tight = analysis::facts_iota(4, 0, 1);
  ClobberOverlap hit;
  hit.any = true;
  hit.lo_hit = true;
  EXPECT_EQ(analysis::judge_read_clobber(tight, /*in_window=*/true, hit),
            Verdict::kProvenSafe);  // in-window reads are exempt
  EXPECT_EQ(analysis::judge_read_clobber(tight, false, ClobberOverlap{}),
            Verdict::kProvenSafe);  // no intersection
  EXPECT_EQ(analysis::judge_read_clobber(tight, false, hit),
            Verdict::kProvenHazard);
  ClobberOverlap vague;
  vague.any = true;  // intersects, but no tight endpoint lands in a span
  EXPECT_EQ(analysis::judge_read_clobber(tight, false, vague),
            Verdict::kUnknown);
  EXPECT_EQ(analysis::judge_read_clobber(analysis::facts_subset(tight, 2),
                                         false, hit),
            Verdict::kUnknown);  // untight: the edge lane may be absent
}

// ---- interval set -----------------------------------------------------------

TEST(IntervalSetTest, AddMergesOverlappingAndAdjacent) {
  static const Word arena[32] = {};
  IntervalSet<Word> s;
  s.add(arena + 0, arena + 4);
  s.add(arena + 8, arena + 12);
  EXPECT_EQ(s.size(), 2u);
  s.add(arena + 4, arena + 8);  // adjacent on both sides: one interval
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.contains(arena + 0));
  EXPECT_TRUE(s.contains(arena + 11));
  EXPECT_FALSE(s.contains(arena + 12));
  EXPECT_TRUE(s.overlaps(arena + 10, arena + 20));
  EXPECT_FALSE(s.overlaps(arena + 12, arena + 20));
}

TEST(IntervalSetTest, EraseSplitsStraddlingIntervals) {
  static const Word arena[32] = {};
  IntervalSet<Word> s;
  s.add(arena + 0, arena + 10);
  s.erase(arena + 3, arena + 5);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(arena + 2));
  EXPECT_FALSE(s.contains(arena + 3));
  EXPECT_FALSE(s.contains(arena + 4));
  EXPECT_TRUE(s.contains(arena + 5));
  std::vector<std::pair<const Word*, const Word*>> ivals;
  s.for_each([&](const Word* b, const Word* e) { ivals.emplace_back(b, e); });
  ASSERT_EQ(ivals.size(), 2u);
  EXPECT_EQ(ivals[0], std::make_pair(arena + 0, arena + 3));
  EXPECT_EQ(ivals[1], std::make_pair(arena + 5, arena + 10));
}

// ---- machine integration: proofs, elision, graph replay ---------------------

TEST(AnalysisMachineTest, ProvenSafePermutationElidesAndReplaysClean) {
  VectorMachine m(analyzed());
  m.analyzer()->set_record_graph(true);
  WordVec table(16, 0);
  const WordVec idx = m.iota(16);        // distinct, tight, in bounds
  const WordVec vals = m.iota(16, 100);
  m.scatter(table, idx, vals);
  const WordVec back = m.gather(table, idx);
  EXPECT_EQ(back, vals);
  EXPECT_TRUE(m.hazards().empty());

  const Analyzer::Stats& st = m.analyzer()->stats();
  EXPECT_EQ(st.mem_ops, 2u);
  EXPECT_EQ(st.mem_safe, 2u);
  EXPECT_EQ(st.mem_hazard, 0u);
  EXPECT_EQ(st.scatter_ops, 1u);
  EXPECT_EQ(st.scatter_safe, 1u);
  EXPECT_GE(st.elided_instructions, 1u);
  EXPECT_GE(st.elided_lanes, 16u);

  // The offline replay re-derives every verdict from the recorded graph.
  const analysis::ReplayResult r = analysis::verify(m.analyzer()->graph());
  EXPECT_TRUE(r.clean()) << (r.mismatches.empty() ? "" : r.mismatches[0]);
  EXPECT_EQ(r.checked_ops, 2u);
  EXPECT_EQ(r.safe_ops, 2u);
}

TEST(AnalysisMachineTest, GraphJsonRoundTripReplaysIdentically) {
  VectorMachine m(analyzed());
  m.analyzer()->set_record_graph(true);
  WordVec table(12, 0);
  const WordVec safe_idx = m.iota(12);
  m.scatter(table, safe_idx, m.iota(12, 50));
  WordVec host_idx{3, 3, 7};  // no facts: stays unknown
  m.scatter_ordered(table, host_idx, m.iota(3, 1));
  const WordVec back = m.gather(table, safe_idx);
  EXPECT_EQ(back.size(), 12u);

  const OpGraph& g = m.analyzer()->graph();
  const std::string compact = g.to_json();
  const std::string pretty = g.to_json(2);
  const OpGraph g2 = OpGraph::from_json(compact);
  const OpGraph g3 = OpGraph::from_json(pretty);
  ASSERT_EQ(g2.nodes.size(), g.nodes.size());
  ASSERT_EQ(g3.nodes.size(), g.nodes.size());
  EXPECT_EQ(g2.to_json(), compact);  // serialization is a fixed point

  const analysis::ReplayResult live = analysis::verify(g);
  const analysis::ReplayResult parsed = analysis::verify(g2);
  EXPECT_TRUE(live.clean());
  EXPECT_TRUE(parsed.clean());
  EXPECT_EQ(parsed.checked_ops, live.checked_ops);
  EXPECT_EQ(parsed.safe_ops, live.safe_ops);
  EXPECT_EQ(parsed.unknown_ops, live.unknown_ops);
  EXPECT_EQ(parsed.hazard_ops, live.hazard_ops);
}

TEST(AnalysisMachineTest, MalformedGraphJsonIsRejected) {
  EXPECT_THROW(OpGraph::from_json("not json"), PreconditionError);
  EXPECT_THROW(OpGraph::from_json("{\"schema\": \"something-else\"}"),
               PreconditionError);
}

// ---- seeded verdicts, one ProvenHazard and one Unknown per class ------------

TEST(AnalysisSeededTest, BoundsHazardIsVetoedInDryMode) {
  VectorMachine m(analyzed());
  m.analyzer()->set_veto(true);
  WordVec table(10, -1);
  const WordVec idx = m.iota(5, 7);  // [7, 11] tight: lanes 3, 4 escape
  m.scatter(table, idx, m.splat(5, 1));
  EXPECT_EQ(table, WordVec(10, -1));  // vetoed: never executed
  const WordVec out = m.gather(table, idx);
  EXPECT_EQ(out, WordVec(5, 0));  // vetoed gather reads as zeros

  const Analyzer::Stats& st = m.analyzer()->stats();
  EXPECT_EQ(st.vetoed, 2u);
  EXPECT_GE(verdicts_of(st, HazardClass::kBounds, Verdict::kProvenHazard), 2u);
  ASSERT_FALSE(m.analyzer()->diagnostics().empty());
  EXPECT_EQ(m.analyzer()->diagnostics()[0].cls, HazardClass::kBounds);
}

TEST(AnalysisSeededTest, BoundsUnknownForHostIndices) {
  VectorMachine m(analyzed());
  WordVec table(10, 0);
  WordVec host_idx{1, 4, 2};  // in bounds, but the analyzer has no facts
  m.scatter(table, host_idx, m.splat(3, 5));
  const Analyzer::Stats& st = m.analyzer()->stats();
  EXPECT_GE(verdicts_of(st, HazardClass::kBounds, Verdict::kUnknown), 1u);
  EXPECT_EQ(st.mem_hazard, 0u);
  EXPECT_TRUE(m.hazards().empty());
}

TEST(AnalysisSeededTest, OverlapHazardProvenInsideSanctioningWindow) {
  VectorMachine m(analyzed());
  WordVec table(8, 0);
  {
    // The data-race window silences the runtime auditor; the pigeonhole
    // proof (3 lanes, 1 address, distinct values) still convicts the op.
    const ConflictWindow w(m, table, WindowKind::kDataRace, "test race");
    m.scatter(table, m.splat(3, 2), m.iota(3, 10));
  }
  EXPECT_TRUE(m.hazards().empty());  // runtime stays silent by design
  const Analyzer::Stats& st = m.analyzer()->stats();
  EXPECT_GE(verdicts_of(st, HazardClass::kOverlap, Verdict::kProvenHazard),
            1u);
}

TEST(AnalysisSeededTest, OverlapUnknownForHostIndices) {
  VectorMachine m(analyzed());
  WordVec table(8, 0);
  {
    const ConflictWindow w(m, table, WindowKind::kDataRace, "test race");
    WordVec host_idx{2, 2, 5};
    m.scatter(table, host_idx, m.iota(3, 10));
  }
  const Analyzer::Stats& st = m.analyzer()->stats();
  EXPECT_GE(verdicts_of(st, HazardClass::kOverlap, Verdict::kUnknown), 1u);
}

TEST(AnalysisSeededTest, ClobberHazardOnStaleLabelReadback) {
  VectorMachine m(analyzed(/*elide=*/true, /*audit_throw=*/false));
  WordVec work(10, 0);
  const WordVec keys = m.iota(10);
  fol::fol1_decompose(m, keys, work);
  // The closed round left labels in work; a tight in-bounds readback of
  // them is the use-after-round hazard, proven statically and caught by
  // the runtime auditor alike.
  m.gather(work, m.iota(4));
  const Analyzer::Stats& st = m.analyzer()->stats();
  EXPECT_GE(verdicts_of(st, HazardClass::kClobber, Verdict::kProvenHazard),
            1u);
  EXPECT_GE(m.hazards().count(HazardKind::kClobberedWorkRead), 1u);
}

TEST(AnalysisSeededTest, ClobberUnknownWithoutIndexFacts) {
  VectorMachine m(analyzed(/*elide=*/true, /*audit_throw=*/false));
  WordVec work(10, 0);
  const WordVec keys = m.iota(10);
  fol::fol1_decompose(m, keys, work);
  WordVec host_idx{0};  // no facts: footprint could touch any stale span
  m.gather(work, host_idx);
  const Analyzer::Stats& st = m.analyzer()->stats();
  EXPECT_GE(verdicts_of(st, HazardClass::kClobber, Verdict::kUnknown), 1u);

  // retire_work declares the labels dead: the same read is then proven safe.
  m.retire_work(work);
  m.clear_hazards();
  m.gather(work, m.iota(4));
  EXPECT_EQ(m.hazards().count(HazardKind::kClobberedWorkRead), 0u);
}

TEST(AnalysisSeededTest, LifetimeHazardOnReleasedPoolBuffer) {
  VectorMachine m(analyzed());
  WordVec buf = m.pool().acquire(4);
  const std::span<const Word> stale(buf.data(), 4);
  m.pool().release(std::move(buf));  // parked: storage alive, contents dead
  m.gather(stale, m.iota(2));
  const Analyzer::Stats& st = m.analyzer()->stats();
  EXPECT_GE(verdicts_of(st, HazardClass::kLifetime, Verdict::kProvenHazard),
            1u);
  ASSERT_FALSE(m.analyzer()->diagnostics().empty());
  EXPECT_EQ(m.analyzer()->diagnostics().back().cls, HazardClass::kLifetime);
}

TEST(AnalysisSeededTest, LifetimeUnknownOnPartialOverlapAndClearedOnReuse) {
  Analyzer a;
  WordVec table(16, 0);
  WordVec idx{0};
  a.on_buffer_release(table.data() + 8, 4);
  // The table span straddles the released range: partial overlap only.
  OpVerdicts v = a.classify_gather(table, idx, /*masked=*/false);
  EXPECT_EQ(v[HazardClass::kLifetime], Verdict::kUnknown);
  // Fully inside the released range: proven use-after-release.
  v = a.classify_gather(std::span<const Word>(table.data() + 8, 4), idx,
                        false);
  EXPECT_EQ(v[HazardClass::kLifetime], Verdict::kProvenHazard);
  // Reacquisition makes the storage live again.
  a.on_buffer_acquire(table.data() + 8, 4);
  v = a.classify_gather(table, idx, false);
  EXPECT_EQ(v[HazardClass::kLifetime], Verdict::kProvenSafe);
}

// ---- audit elision ----------------------------------------------------------

TEST(AnalysisElisionTest, ElisionPreservesOutputsAndSkipsLaneWork) {
  const auto run = [](bool elide) {
    VectorMachine m(analyzed(elide));
    WordVec table(64, 0);
    for (int round = 0; round < 4; ++round) {
      const WordVec idx = m.iota(64);
      const WordVec vals = m.iota(64, round * 1000);
      m.scatter(table, idx, vals);
    }
    const WordVec out = m.gather(table, m.iota(64));
    const Analyzer::Stats st = m.analyzer()->stats();
    EXPECT_TRUE(m.hazards().empty());
    return std::make_pair(out, st);
  };
  const auto [full_out, full_st] = run(false);
  const auto [elided_out, elided_st] = run(true);
  EXPECT_EQ(elided_out, full_out);
  EXPECT_EQ(full_st.elided_instructions, 0u);
  EXPECT_GE(full_st.checked_instructions, 4u);
  EXPECT_GE(elided_st.elided_instructions, 4u);
  EXPECT_GE(elided_st.elided_lanes, 4u * 64u);
}

TEST(AnalysisElisionTest, ClobberDetectionSurvivesElidedRounds) {
  // The elided FOL round books its write footprint as an interval instead
  // of per-address marks; the stale-label read must still be caught.
  VectorMachine m(analyzed(/*elide=*/true, /*audit_throw=*/false));
  WordVec work(16, 0);
  fol::fol1_decompose(m, m.iota(16), work);
  EXPECT_GE(m.analyzer()->stats().elided_instructions, 1u);
  m.gather(work, m.iota(4));
  EXPECT_GE(m.hazards().count(HazardKind::kClobberedWorkRead), 1u);
}

TEST(AnalysisElisionTest, Fol1DistinctKeysProveMostScatterOps) {
  VectorMachine m(analyzed());
  WordVec work(4096, 0);
  const WordVec keys = m.iota(4096);
  fol::fol1_decompose(m, keys, work);
  m.retire_work(work);
  const Analyzer::Stats& st = m.analyzer()->stats();
  ASSERT_GT(st.scatter_ops, 0u);
  // The acceptance bar: >= 80% of scatter-class ops proven safe on the
  // distinct-key FOL1 workload.
  EXPECT_GE(st.scatter_safe * 10, st.scatter_ops * 8)
      << st.scatter_safe << " of " << st.scatter_ops << " proven safe";
  EXPECT_GE(st.elided_instructions, 1u);
}

// ---- soundness differential fuzz -------------------------------------------
//
// Across every scatter order x backend x fuse combination, run a seeded
// hazard-free workload twice — full auditing vs audit elision — with
// audit_throw on. The contract under test: an op the analyzer proves safe
// never trips a runtime ScatterCheck hazard (no AuditError, no recorded
// hazards), and eliding its per-lane audit work changes no output.

struct FuzzOutcome {
  WordVec table;
  std::vector<std::size_t> decomposition;
  std::uint64_t elided = 0;
  std::uint64_t safe = 0;
  std::uint64_t mem_ops = 0;
};

FuzzOutcome run_fuzz_workload(const MachineConfig& cfg, std::uint64_t seed) {
  VectorMachine m(cfg);
  Xoshiro256 rng(seed);
  const std::size_t n = 256;
  FuzzOutcome out;
  out.table.assign(n, 0);

  for (int round = 0; round < 6; ++round) {
    // Machine-derived distinct indices: proven safe, eligible for elision.
    const WordVec idx = m.iota(n);
    const WordVec vals =
        m.add_scalar(idx, static_cast<Word>(rng.next() % 1000));
    m.scatter(out.table, idx, vals);
    // Host-built in-bounds indices: unknown facts, audited in full.
    WordVec host_idx(n / 4);
    for (Word& x : host_idx) x = static_cast<Word>(rng.next() % n);
    m.scatter_ordered(out.table, host_idx,
                      m.splat(host_idx.size(), round));
    const WordVec back = m.gather(out.table, idx);
    EXPECT_EQ(back.size(), n);
  }

  // A FOL1 round with duplicate keys: sanctioned label-round collisions,
  // scatter_gather_eq readbacks, retire_work at the end.
  WordVec keys(n);
  for (Word& k : keys) k = static_cast<Word>(rng.next() % (n / 2));
  WordVec work(n, 0);
  const fol::Decomposition dec = fol::fol1_decompose(m, keys, work);
  for (const std::vector<std::size_t>& set : dec.sets) {
    out.decomposition.insert(out.decomposition.end(), set.begin(), set.end());
  }
  m.retire_work(work);

  EXPECT_TRUE(m.hazards().empty());
  const Analyzer::Stats& st = m.analyzer()->stats();
  EXPECT_EQ(st.mem_hazard, 0u);  // the workload is hazard-free
  out.elided = st.elided_instructions;
  out.safe = st.mem_safe;
  out.mem_ops = st.mem_ops;
  return out;
}

TEST(AnalysisSoundnessFuzz, ProvenSafeNeverTripsRuntimeAcrossConfigs) {
  const ScatterOrder orders[] = {ScatterOrder::kForward,
                                 ScatterOrder::kReverse,
                                 ScatterOrder::kShuffled};
  const std::pair<BackendKind, std::size_t> backends[] = {
      {BackendKind::kSerial, 0},
      {BackendKind::kParallel, 1},
      {BackendKind::kParallel, 2},
      {BackendKind::kParallel, 8}};
  std::uint64_t seed = 0xf01dab1eULL;
  for (const ScatterOrder order : orders) {
    for (const auto& [backend, threads] : backends) {
      for (const bool fuse : {true, false}) {
        MachineConfig cfg = analyzed(/*elide=*/true);
        cfg.scatter_order = order;
        cfg.backend = backend;
        cfg.backend_threads = threads;
        cfg.backend_grain = 64;  // exercise parallel splits on short vectors
        cfg.fuse = fuse;
        ++seed;
        SCOPED_TRACE(testing::Message()
                     << "order=" << static_cast<int>(order)
                     << " backend=" << static_cast<int>(backend) << "/"
                     << threads << " fuse=" << fuse);

        const FuzzOutcome elided = run_fuzz_workload(cfg, seed);
        EXPECT_GT(elided.elided, 0u);
        EXPECT_GT(elided.safe, 0u);

        MachineConfig full = cfg;
        full.audit_elide = false;
        const FuzzOutcome checked = run_fuzz_workload(full, seed);
        EXPECT_EQ(checked.elided, 0u);
        EXPECT_EQ(elided.table, checked.table);
        EXPECT_EQ(elided.decomposition, checked.decomposition);
        EXPECT_EQ(elided.mem_ops, checked.mem_ops);
      }
    }
  }
}

}  // namespace
}  // namespace folvec
