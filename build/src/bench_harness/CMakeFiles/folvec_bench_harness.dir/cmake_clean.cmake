file(REMOVE_RECURSE
  "CMakeFiles/folvec_bench_harness.dir/experiments.cpp.o"
  "CMakeFiles/folvec_bench_harness.dir/experiments.cpp.o.d"
  "libfolvec_bench_harness.a"
  "libfolvec_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/folvec_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
