// Example: solving the eight-queens puzzle with SIVP breadth-first search.
//
// This was the showcase application of Kanada's earlier index-vector work
// (reference [7] of the paper): every partial placement lives in one vector
// lane, and a whole board row is decided for all of them with a handful of
// vector instructions. Because the lanes never share storage, this is the
// paper's Figure 2a regime — vectorizable even before FOL.
#include <iostream>

#include "queens/queens.h"
#include "vm/machine.h"

int main() {
  using namespace folvec;

  vm::VectorMachine m;
  const auto solutions = queens::solve_vector(m, 8);
  std::cout << "8-queens has " << solutions.size() << " solutions\n\n";

  // Print the first solution as a board.
  const auto& s = solutions.front();
  for (std::size_t row = 0; row < 8; ++row) {
    for (vm::Word col = 0; col < 8; ++col) {
      std::cout << (s[row] == col ? " Q" : " .");
    }
    std::cout << '\n';
  }

  // Validate every enumerated placement.
  for (const auto& sol : solutions) {
    if (!queens::is_valid_solution(sol)) {
      std::cout << "INVALID solution produced!\n";
      return 1;
    }
  }
  std::cout << "\nall " << solutions.size()
            << " placements verified queen-safe\n";

  // How wide did the data-parallel frontier get?
  vm::VectorMachine m2;
  const queens::QueensStats stats = queens::count_vector(m2, 8);
  std::cout << "peak frontier: " << stats.max_frontier
            << " simultaneous partial solutions (one vector lane each)\n";
  return 0;
}
