// NEON SimdKernels: 2 x int64 lanes per int64x2_t.
//
// aarch64 only. NEON's 64-bit integer support is narrow — no 64-bit
// multiply, no gather/scatter, no compress — so this table is deliberately
// sparse: the populated entries are the elementwise/mask ops where two-lane
// vectors still beat scalar code, and everything else stays null to take
// the scalar fallback. Notable mappings:
//
//   * shifts: VSHL with a negative count register is NEON's right shift, and
//     the signed variant is arithmetic — exactly the `>> k` semantics.
//   * select: VBSL on a lane mask built by comparing mask bytes to zero.
//   * count_true: VADDLV across widened byte sums (serial semantics sum the
//     byte values).
#include "vm/simd_kernels.h"

#if defined(__aarch64__) || defined(_M_ARM64)

#include <arm_neon.h>

namespace folvec::vm {

namespace {

inline int64x2_t load2(const Word* p) {
  return vld1q_s64(reinterpret_cast<const std::int64_t*>(p));
}

inline void store2(Word* p, int64x2_t v) {
  vst1q_s64(reinterpret_cast<std::int64_t*>(p), v);
}

/// Expands 2 mask bytes to all-ones/all-zeros 64-bit lanes.
inline uint64x2_t mask_lanes(const std::uint8_t* m) {
  const uint64x2_t raw = {static_cast<std::uint64_t>(m[0]),
                          static_cast<std::uint64_t>(m[1])};
  return vtstq_u64(raw, raw);
}

void k_add(Word* o, const Word* a, const Word* b, std::size_t lo,
           std::size_t hi) {
  std::size_t i = lo;
  for (; i + 2 <= hi; i += 2) {
    store2(o + i, vaddq_s64(load2(a + i), load2(b + i)));
  }
  for (; i < hi; ++i) o[i] = a[i] + b[i];
}

void k_sub(Word* o, const Word* a, const Word* b, std::size_t lo,
           std::size_t hi) {
  std::size_t i = lo;
  for (; i + 2 <= hi; i += 2) {
    store2(o + i, vsubq_s64(load2(a + i), load2(b + i)));
  }
  for (; i < hi; ++i) o[i] = a[i] - b[i];
}

void k_add_s(Word* o, const Word* a, Word s, std::size_t lo, std::size_t hi) {
  const int64x2_t vs = vdupq_n_s64(s);
  std::size_t i = lo;
  for (; i + 2 <= hi; i += 2) store2(o + i, vaddq_s64(load2(a + i), vs));
  for (; i < hi; ++i) o[i] = a[i] + s;
}

void k_and_s(Word* o, const Word* a, Word s, std::size_t lo, std::size_t hi) {
  const int64x2_t vs = vdupq_n_s64(s);
  std::size_t i = lo;
  for (; i + 2 <= hi; i += 2) store2(o + i, vandq_s64(load2(a + i), vs));
  for (; i < hi; ++i) o[i] = a[i] & s;
}

void k_or_s(Word* o, const Word* a, Word s, std::size_t lo, std::size_t hi) {
  const int64x2_t vs = vdupq_n_s64(s);
  std::size_t i = lo;
  for (; i + 2 <= hi; i += 2) store2(o + i, vorrq_s64(load2(a + i), vs));
  for (; i < hi; ++i) o[i] = a[i] | s;
}

void k_shr_s(Word* o, const Word* a, Word s, std::size_t lo, std::size_t hi) {
  // Signed VSHL with a negative count is NEON's arithmetic right shift.
  const int64x2_t cnt = vdupq_n_s64(-s);
  std::size_t i = lo;
  for (; i + 2 <= hi; i += 2) store2(o + i, vshlq_s64(load2(a + i), cnt));
  for (; i < hi; ++i) o[i] = a[i] >> s;
}

void k_neg(Word* o, const Word* a, Word /*s*/, std::size_t lo,
           std::size_t hi) {
  std::size_t i = lo;
  for (; i + 2 <= hi; i += 2) store2(o + i, vnegq_s64(load2(a + i)));
  for (; i < hi; ++i) o[i] = -a[i];
}

inline void store_bits(std::uint8_t* o, uint64x2_t cmp) {
  o[0] = vgetq_lane_u64(cmp, 0) != 0 ? 1 : 0;
  o[1] = vgetq_lane_u64(cmp, 1) != 0 ? 1 : 0;
}

void k_cmp_eq(std::uint8_t* o, const Word* a, const Word* b, std::size_t lo,
              std::size_t hi) {
  std::size_t i = lo;
  for (; i + 2 <= hi; i += 2) {
    store_bits(o + i, vceqq_s64(load2(a + i), load2(b + i)));
  }
  for (; i < hi; ++i) o[i] = a[i] == b[i] ? 1 : 0;
}

void k_cmp_ne(std::uint8_t* o, const Word* a, const Word* b, std::size_t lo,
              std::size_t hi) {
  std::size_t i = lo;
  for (; i + 2 <= hi; i += 2) {
    const uint64x2_t eq = vceqq_s64(load2(a + i), load2(b + i));
    o[i] = vgetq_lane_u64(eq, 0) != 0 ? 0 : 1;
    o[i + 1] = vgetq_lane_u64(eq, 1) != 0 ? 0 : 1;
  }
  for (; i < hi; ++i) o[i] = a[i] != b[i] ? 1 : 0;
}

void k_cmp_le(std::uint8_t* o, const Word* a, const Word* b, std::size_t lo,
              std::size_t hi) {
  std::size_t i = lo;
  for (; i + 2 <= hi; i += 2) {
    store_bits(o + i, vcleq_s64(load2(a + i), load2(b + i)));
  }
  for (; i < hi; ++i) o[i] = a[i] <= b[i] ? 1 : 0;
}

void k_cmp_lt(std::uint8_t* o, const Word* a, const Word* b, std::size_t lo,
              std::size_t hi) {
  std::size_t i = lo;
  for (; i + 2 <= hi; i += 2) {
    store_bits(o + i, vcltq_s64(load2(a + i), load2(b + i)));
  }
  for (; i < hi; ++i) o[i] = a[i] < b[i] ? 1 : 0;
}

void k_cmp_eq_s(std::uint8_t* o, const Word* a, Word s, std::size_t lo,
                std::size_t hi) {
  const int64x2_t vs = vdupq_n_s64(s);
  std::size_t i = lo;
  for (; i + 2 <= hi; i += 2) {
    store_bits(o + i, vceqq_s64(load2(a + i), vs));
  }
  for (; i < hi; ++i) o[i] = a[i] == s ? 1 : 0;
}

void k_cmp_ne_s(std::uint8_t* o, const Word* a, Word s, std::size_t lo,
                std::size_t hi) {
  const int64x2_t vs = vdupq_n_s64(s);
  std::size_t i = lo;
  for (; i + 2 <= hi; i += 2) {
    const uint64x2_t eq = vceqq_s64(load2(a + i), vs);
    o[i] = vgetq_lane_u64(eq, 0) != 0 ? 0 : 1;
    o[i + 1] = vgetq_lane_u64(eq, 1) != 0 ? 0 : 1;
  }
  for (; i < hi; ++i) o[i] = a[i] != s ? 1 : 0;
}

void k_cmp_le_s(std::uint8_t* o, const Word* a, Word s, std::size_t lo,
                std::size_t hi) {
  const int64x2_t vs = vdupq_n_s64(s);
  std::size_t i = lo;
  for (; i + 2 <= hi; i += 2) {
    store_bits(o + i, vcleq_s64(load2(a + i), vs));
  }
  for (; i < hi; ++i) o[i] = a[i] <= s ? 1 : 0;
}

void k_cmp_lt_s(std::uint8_t* o, const Word* a, Word s, std::size_t lo,
                std::size_t hi) {
  const int64x2_t vs = vdupq_n_s64(s);
  std::size_t i = lo;
  for (; i + 2 <= hi; i += 2) {
    store_bits(o + i, vcltq_s64(load2(a + i), vs));
  }
  for (; i < hi; ++i) o[i] = a[i] < s ? 1 : 0;
}

void k_cmp_ge_s(std::uint8_t* o, const Word* a, Word s, std::size_t lo,
                std::size_t hi) {
  const int64x2_t vs = vdupq_n_s64(s);
  std::size_t i = lo;
  for (; i + 2 <= hi; i += 2) {
    store_bits(o + i, vcgeq_s64(load2(a + i), vs));
  }
  for (; i < hi; ++i) o[i] = a[i] >= s ? 1 : 0;
}

void k_mask_and(std::uint8_t* o, const std::uint8_t* a, const std::uint8_t* b,
                std::size_t lo, std::size_t hi) {
  std::size_t i = lo;
  for (; i + 16 <= hi; i += 16) {
    vst1q_u8(o + i, vandq_u8(vld1q_u8(a + i), vld1q_u8(b + i)));
  }
  for (; i < hi; ++i) o[i] = static_cast<std::uint8_t>(a[i] & b[i]);
}

void k_mask_or(std::uint8_t* o, const std::uint8_t* a, const std::uint8_t* b,
               std::size_t lo, std::size_t hi) {
  std::size_t i = lo;
  for (; i + 16 <= hi; i += 16) {
    vst1q_u8(o + i, vorrq_u8(vld1q_u8(a + i), vld1q_u8(b + i)));
  }
  for (; i < hi; ++i) o[i] = static_cast<std::uint8_t>(a[i] | b[i]);
}

void k_mask_not(std::uint8_t* o, const std::uint8_t* a, std::size_t lo,
                std::size_t hi) {
  const uint8x16_t zero = vdupq_n_u8(0);
  const uint8x16_t one = vdupq_n_u8(1);
  std::size_t i = lo;
  for (; i + 16 <= hi; i += 16) {
    vst1q_u8(o + i, vandq_u8(vceqq_u8(vld1q_u8(a + i), zero), one));
  }
  for (; i < hi; ++i) o[i] = a[i] != 0 ? 0 : 1;
}

void k_select(Word* o, const std::uint8_t* m, const Word* a, const Word* b,
              std::size_t lo, std::size_t hi) {
  std::size_t i = lo;
  for (; i + 2 <= hi; i += 2) {
    store2(o + i,
           vbslq_s64(mask_lanes(m + i), load2(a + i), load2(b + i)));
  }
  for (; i < hi; ++i) o[i] = m[i] != 0 ? a[i] : b[i];
}

void k_from_mask(Word* o, const std::uint8_t* m, std::size_t lo,
                 std::size_t hi) {
  const int64x2_t one = vdupq_n_s64(1);
  std::size_t i = lo;
  for (; i + 2 <= hi; i += 2) {
    store2(o + i,
           vandq_s64(vreinterpretq_s64_u64(mask_lanes(m + i)), one));
  }
  for (; i < hi; ++i) o[i] = m[i] != 0 ? 1 : 0;
}

Word k_reduce_sum(const Word* v, std::size_t n) {
  int64x2_t acc = vdupq_n_s64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) acc = vaddq_s64(acc, load2(v + i));
  Word total = vaddvq_s64(acc);
  for (; i < n; ++i) total += v[i];
  return total;
}

std::size_t k_count_true(const std::uint8_t* m, std::size_t n) {
  std::size_t c = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    // Serial semantics sum the byte VALUES; widen-and-fold does that.
    c += static_cast<std::size_t>(vaddlvq_u8(vld1q_u8(m + i)));
  }
  for (; i < n; ++i) c += m[i];
  return c;
}

}  // namespace

const SimdKernels& simd_kernels_neon() {
  static const SimdKernels k = {
      SimdLevel::kNeon,
      "neon",
      k_add,
      k_sub,
      // No 64-bit vector multiply in NEON.
      nullptr,
      k_add_s,
      nullptr,
      k_and_s,
      k_or_s,
      k_shr_s,
      k_neg,
      // No 64-bit mulhi on NEON either; div/mod stay on the serial loop.
      nullptr,
      nullptr,
      k_cmp_eq,
      k_cmp_ne,
      k_cmp_le,
      k_cmp_lt,
      k_cmp_eq_s,
      k_cmp_ne_s,
      k_cmp_le_s,
      k_cmp_lt_s,
      k_cmp_ge_s,
      k_mask_and,
      k_mask_or,
      k_mask_not,
      k_select,
      k_from_mask,
      // iota: scalar loop is already optimal at 2 lanes.
      nullptr,
      // No gather/scatter addressing modes in NEON.
      nullptr,
      nullptr,
      nullptr,
      k_reduce_sum,
      // min/max: leave to the scalar fallback (2-lane horizontal folds do
      // not pay for themselves).
      nullptr,
      nullptr,
      k_count_true,
      // No compress/expand permutes worth using at 2 lanes.
      nullptr,
      nullptr,
      nullptr,
      nullptr,
      nullptr,
      nullptr,
      // No conflict-detection instruction.
      nullptr,
  };
  return k;
}

}  // namespace folvec::vm

#else  // !aarch64

namespace folvec::vm {}

#endif
