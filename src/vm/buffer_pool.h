// A size-bucketed free list of WordVec storage — the software stand-in for
// vector registers.
//
// Every value-returning VectorMachine primitive materializes its result in a
// fresh WordVec; on a register machine those intermediates would live in
// vector registers and cost nothing to "allocate". The pool closes that gap
// for the hot round loops: an algorithm acquires its working vectors once,
// feeds them to the *_into primitives each round, and releases them at the
// end — steady-state rounds touch no allocator.
//
// Released vectors are bucketed by floor(log2(capacity)), so bucket i holds
// capacities in [2^i, 2^(i+1)); acquire(n) scans its own bucket (checking
// each candidate's capacity) and the next two up, serving hits by a
// capacity-preserving resize. Each bucket keeps at most kMaxPerBucket
// vectors; beyond that, release simply frees.
//
// The pool is owned by one VectorMachine and, like the machine itself, is
// confined to the machine's issuing thread — no locking. Stats are exported
// by the machine under the host-only "pool." metrics namespace (excluded
// from MetricsSnapshot::deterministic(), like the parallel scatter-merge
// stats), so hit rates never enter cross-backend determinism contracts.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace folvec::analysis {
class Analyzer;
}  // namespace folvec::analysis

namespace folvec::vm {

class BufferPool {
 public:
  /// Free vectors retained per size bucket; further releases deallocate.
  static constexpr std::size_t kMaxPerBucket = 8;

  using WordVec = std::vector<std::int64_t>;

  /// A vector of size n (contents unspecified), reusing pooled storage with
  /// capacity >= n when any is available. Under an installed FaultPlan a
  /// kPoolAlloc fire degrades gracefully: the free lists are dropped (as a
  /// pressured allocator would drop its caches) and the request is served
  /// by a fresh allocation. Throws folvec::RecoverableError(kPoolExhausted)
  /// when a word limit is set and granting `n` would exceed it.
  WordVec acquire(std::size_t n);

  /// Returns a vector's storage to the pool (or frees it when the bucket is
  /// full). The vector is left empty either way.
  void release(WordVec&& v);

  /// Drops all retained storage.
  void trim();

  /// Caps the total words of capacity handed out and not yet released;
  /// 0 (the default) means unlimited. Acquires beyond the cap throw
  /// RecoverableError(kPoolExhausted) — the recoverable-exhaustion producer
  /// used by the resilience tests and by capped production deployments.
  void set_limit_words(std::uint64_t words) { limit_words_ = words; }
  std::uint64_t limit_words() const { return limit_words_; }

  /// The free-list bucket a capacity lands in: floor(log2(capacity)).
  /// Exposed for the bucket-boundary regression tests.
  static std::size_t bucket_of(std::size_t capacity);

  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t hits = 0;      ///< acquires served from a free list
    std::uint64_t misses = 0;    ///< acquires that had to allocate
    std::uint64_t releases = 0;  ///< releases retained in a bucket
    std::uint64_t discards = 0;  ///< releases dropped (bucket full / tiny)
    /// Words of capacity currently parked in free lists.
    std::uint64_t held_words = 0;
    /// High-water mark of held_words over the pool's lifetime.
    std::uint64_t peak_held_words = 0;
    /// Words of capacity handed out and not yet released (capacity-based,
    /// saturating: callers may legitimately release larger swapped-in
    /// storage than they acquired).
    std::uint64_t outstanding_words = 0;
    /// Injected kPoolAlloc faults absorbed by dropping the free lists.
    std::uint64_t fault_drops = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Attach the machine's static hazard analyzer (nullptr detaches). The
  /// pool reports every storage transition — acquire (live), release
  /// (parked: reads are use-after-release), free (gone) — which is exactly
  /// the lifetime state machine behind the kLifetime hazard class.
  void set_analyzer(analysis::Analyzer* a) { analyzer_ = a; }

 private:
  static constexpr std::size_t kBuckets = 64;

  static std::size_t floor_log2(std::size_t v);
  /// Emits the "pool.buffer.words_in_use" counter-track sample when a span
  /// tracer is installed (one relaxed load otherwise).
  void note_outstanding() const;

  std::array<std::vector<WordVec>, kBuckets> buckets_{};
  Stats stats_;
  std::uint64_t limit_words_ = 0;
  analysis::Analyzer* analyzer_ = nullptr;
};

/// RAII pooled vector: acquires on construction, releases on destruction.
/// The round loops' working buffers are PooledVecs so early exits (theorem
/// checks, audit throws) still hand the storage back.
class PooledVec {
 public:
  PooledVec(BufferPool& pool, std::size_t n)
      : pool_(&pool), v_(pool.acquire(n)) {}
  ~PooledVec() {
    if (pool_ != nullptr) pool_->release(std::move(v_));
  }
  PooledVec(const PooledVec&) = delete;
  PooledVec& operator=(const PooledVec&) = delete;
  PooledVec(PooledVec&& other) noexcept
      : pool_(other.pool_), v_(std::move(other.v_)) {
    other.pool_ = nullptr;
  }
  PooledVec& operator=(PooledVec&&) = delete;

  BufferPool::WordVec& operator*() { return v_; }
  const BufferPool::WordVec& operator*() const { return v_; }
  BufferPool::WordVec* operator->() { return &v_; }
  const BufferPool::WordVec* operator->() const { return &v_; }

 private:
  BufferPool* pool_;
  BufferPool::WordVec v_;
};

}  // namespace folvec::vm
