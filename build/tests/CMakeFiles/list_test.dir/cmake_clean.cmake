file(REMOVE_RECURSE
  "CMakeFiles/list_test.dir/list_test.cpp.o"
  "CMakeFiles/list_test.dir/list_test.cpp.o.d"
  "list_test"
  "list_test.pdb"
  "list_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
