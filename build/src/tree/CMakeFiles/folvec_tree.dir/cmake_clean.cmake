file(REMOVE_RECURSE
  "CMakeFiles/folvec_tree.dir/bst.cpp.o"
  "CMakeFiles/folvec_tree.dir/bst.cpp.o.d"
  "libfolvec_tree.a"
  "libfolvec_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/folvec_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
