// ScatterCheck: the hazard auditor must pinpoint the offending lanes and
// addresses, not merely observe that a decomposition failed downstream.
#include <algorithm>
#include <cstdlib>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "fol/fol1.h"
#include "fol/fol_star.h"
#include "fol/invariants.h"
#include "support/prng.h"
#include "vm/checker.h"

namespace folvec {
namespace {

using vm::AuditError;
using vm::ConflictWindow;
using vm::Hazard;
using vm::HazardKind;
using vm::MachineConfig;
using vm::Mask;
using vm::ScatterOrder;
using vm::VectorMachine;
using vm::WindowKind;
using vm::Word;
using vm::WordVec;

MachineConfig audited(ScatterOrder order = ScatterOrder::kForward,
                      bool audit_throw = true) {
  MachineConfig cfg;
  cfg.scatter_order = order;
  cfg.audit = true;
  cfg.audit_throw = audit_throw;
  return cfg;
}

TEST(ScatterCheckTest, AuditOffRecordsNothing) {
  MachineConfig cfg;
  cfg.audit = false;
  VectorMachine m(cfg);
  WordVec table(4, 0);
  m.scatter(table, WordVec{0, 2, 0}, WordVec{5, 9, 7});  // unsanctioned dup
  EXPECT_FALSE(m.audit_enabled());
  EXPECT_TRUE(m.hazards().empty());
}

TEST(ScatterCheckTest, UnsanctionedDuplicateIsLanePrecise) {
  VectorMachine m(audited());
  WordVec table(4, 0);
  EXPECT_THROW(m.scatter(table, WordVec{0, 2, 0}, WordVec{5, 9, 7}),
               AuditError);
  ASSERT_EQ(m.hazards().size(), 1u);
  const Hazard& h = m.hazards()[0];
  EXPECT_EQ(h.kind, HazardKind::kUnsanctionedDuplicate);
  EXPECT_EQ(h.address, 0);
  EXPECT_EQ(h.lanes, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(h.expected, (WordVec{5, 7}));
}

TEST(ScatterCheckTest, EqualValueDuplicatesAreBenign) {
  VectorMachine m(audited());
  WordVec table(4, 0);
  // A wavefront writing the same d+1 to a shared neighbour is no race.
  EXPECT_NO_THROW(m.scatter(table, WordVec{1, 1, 3}, WordVec{7, 7, 9}));
  EXPECT_TRUE(m.hazards().empty());
}

TEST(ScatterCheckTest, OrderedScatterDuplicatesAreSanctioned) {
  VectorMachine m(audited());
  WordVec table(4, 0);
  EXPECT_NO_THROW(
      m.scatter_ordered(table, WordVec{0, 0}, WordVec{5, 7}));
  EXPECT_TRUE(m.hazards().empty());
  EXPECT_EQ(table[0], 7);  // last lane wins, deterministically
}

TEST(ScatterCheckTest, ConflictWindowSanctionsDuplicates) {
  VectorMachine m(audited());
  WordVec table(4, 0);
  const ConflictWindow window(m, table, WindowKind::kDataRace, "test race");
  EXPECT_NO_THROW(m.scatter(table, WordVec{0, 2, 0}, WordVec{5, 9, 7}));
  EXPECT_TRUE(m.hazards().empty());
}

TEST(ScatterCheckTest, OutOfBoundsGatherListsEveryBadLane) {
  VectorMachine m(audited());
  const WordVec table{10, 11};
  EXPECT_THROW(m.gather(table, WordVec{0, 9, -1, 1}), PreconditionError);
  ASSERT_EQ(m.hazards().size(), 1u);
  const Hazard& h = m.hazards()[0];
  EXPECT_EQ(h.kind, HazardKind::kOutOfBounds);
  EXPECT_EQ(h.lanes, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(h.expected, (WordVec{9, -1}));
}

TEST(ScatterCheckTest, LengthMismatchIsRecordedAndThrowsPrecondition) {
  VectorMachine m(audited());
  WordVec table(4, 0);
  EXPECT_THROW(m.scatter(table, WordVec{0, 1}, WordVec{5}),
               PreconditionError);
  ASSERT_EQ(m.hazards().size(), 1u);
  EXPECT_EQ(m.hazards()[0].kind, HazardKind::kLengthMismatch);
}

TEST(ScatterCheckTest, ClobberedWorkGatherIsFlagged) {
  VectorMachine m(audited());
  WordVec work(4, 0);
  const WordVec idx{1, 1, 2};
  const fol::Decomposition dec = fol::fol1_decompose(m, idx, work);
  EXPECT_TRUE(fol::satisfies_all_theorems(dec, idx));
  // The round's labels are still sitting in work[1] and work[2]: reading
  // them back as if they were data is a use-after-round hazard.
  EXPECT_THROW(m.gather(work, WordVec{1}), AuditError);
  ASSERT_EQ(m.hazards().count(HazardKind::kClobberedWorkRead), 1u);
  EXPECT_EQ(m.hazards()[0].address, 1);
}

TEST(ScatterCheckTest, RetireWorkClearsClobberMarks) {
  VectorMachine m(audited());
  WordVec work(4, 0);
  fol::fol1_decompose(m, WordVec{1, 1, 2}, work);
  m.retire_work(work);
  EXPECT_NO_THROW(m.gather(work, WordVec{1}));
  EXPECT_TRUE(m.hazards().empty());
}

TEST(ScatterCheckTest, OverwriteClearsClobberMarks) {
  VectorMachine m(audited());
  WordVec work(4, 0);
  fol::fol1_decompose(m, WordVec{1, 1, 2}, work);
  m.fill(work, 0);
  EXPECT_NO_THROW(m.load(work, 0, work.size()));
  EXPECT_TRUE(m.hazards().empty());
}

TEST(ScatterCheckTest, ContiguousLoadOfClobberedWorkIsFlagged) {
  VectorMachine m(audited());
  WordVec work(4, 0);
  fol::fol1_decompose(m, WordVec{1, 1, 2}, work);
  EXPECT_THROW(m.load(work, 0, work.size()), AuditError);
  EXPECT_EQ(m.hazards().count(HazardKind::kClobberedWorkRead), 1u);
}

// The deterministic injection case: lanes 0 and 1 collide at address 7 with
// labels 0 and 1; the injected amalgam is (0+1)^(1+1) = 3, which is neither
// label, so the auditor must name exactly lanes {0, 1} at address 7.
TEST(ScatterCheckTest, ElsViolationPinpointsAmalgamatedLanes) {
  MachineConfig cfg = audited();
  cfg.inject_els_violation = true;
  VectorMachine m(cfg);
  WordVec work(8, 0);
  EXPECT_THROW(fol::fol1_decompose(m, WordVec{7, 7, 3}, work), AuditError);
  const Hazard* h = m.hazards().first(HazardKind::kElsViolation);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->address, 7);
  EXPECT_EQ(h->lanes, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(h->expected, (WordVec{0, 1}));
  EXPECT_EQ(h->found, 3);
  EXPECT_EQ(h->context, "FOL1 label round");
}

// AuditError derives InternalError, so callers asserting "the substrate is
// broken" keep passing under audit.
TEST(ScatterCheckTest, AuditErrorIsAnInternalError) {
  MachineConfig cfg = audited();
  cfg.inject_els_violation = true;
  VectorMachine m(cfg);
  WordVec work(8, 0);
  EXPECT_THROW(fol::fol1_decompose(m, WordVec{7, 7, 3}, work), InternalError);
}

// With audit_throw off the auditor records hazards without changing control
// flow; FOL1 then fails on its own empty-set invariant, and the report still
// holds the lane-precise diagnosis.
TEST(ScatterCheckTest, NonThrowingAuditStillRecords) {
  MachineConfig cfg = audited(ScatterOrder::kForward, /*audit_throw=*/false);
  cfg.inject_els_violation = true;
  VectorMachine m(cfg);
  WordVec work(8, 0);
  EXPECT_THROW(fol::fol1_decompose(m, WordVec{7, 7, 3}, work), InternalError);
  EXPECT_GE(m.hazards().count(HazardKind::kElsViolation), 1u);
  m.clear_hazards();
  EXPECT_TRUE(m.hazards().empty());
}

TEST(ScatterCheckTest, TheoremViolationIsReported) {
  VectorMachine m(audited());
  EXPECT_THROW(m.checker()->audit_theorem_violation("FOL1", "test detail"),
               AuditError);
  EXPECT_EQ(m.hazards().count(HazardKind::kTheoremViolation), 1u);
}

TEST(ScatterCheckTest, TupleConflictNamesBothTuples) {
  VectorMachine m(audited());
  // Tuple 0 touches {0, 1}; tuple 1 touches {1, 2}: address 1 is shared.
  const std::vector<WordVec> ivs{WordVec{0, 1}, WordVec{1, 2}};
  const std::vector<std::size_t> set{0, 1};
  EXPECT_THROW(m.checker()->audit_tuple_set(set, ivs), AuditError);
  const Hazard* h = m.hazards().first(HazardKind::kTupleConflict);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->address, 1);
  EXPECT_EQ(h->lanes, (std::vector<std::size_t>{0, 1}));
}

TEST(ScatterCheckTest, FolStarUnderAuditIsHazardFree) {
  VectorMachine m(audited());
  // Two binary tuples sharing address 3 must split into two rounds without
  // any hazard (the scalar rescue is an audited scalar_store now).
  const std::vector<WordVec> ivs{WordVec{3, 3}, WordVec{5, 6}};
  WordVec work(8, 0);
  const fol::StarDecomposition dec = fol::fol_star_decompose(m, ivs, work);
  EXPECT_EQ(dec.sets.size(), 2u);
  EXPECT_TRUE(m.hazards().empty());
}

TEST(ScatterCheckTest, ScalarStoreIsAuditedAndTicksScalarMem) {
  VectorMachine m(audited());
  WordVec table(4, 0);
  m.scalar_store(table, 2, 9);
  EXPECT_EQ(table[2], 9);
  EXPECT_EQ(m.cost().instructions(vm::OpClass::kScalarMem), 1u);
  EXPECT_THROW(m.scalar_store(table, 4, 1), PreconditionError);
}

TEST(ScatterCheckTest, EnvironmentVariableFlipsDefault) {
  ASSERT_EQ(setenv("FOLVEC_AUDIT", "1", 1), 0);
  EXPECT_TRUE(MachineConfig::audit_default());
  ASSERT_EQ(setenv("FOLVEC_AUDIT", "0", 1), 0);
  EXPECT_FALSE(MachineConfig::audit_default());
  unsetenv("FOLVEC_AUDIT");
}

TEST(ScatterCheckTest, ReportPrettyPrints) {
  VectorMachine m(audited());
  WordVec table(4, 0);
  try {
    m.scatter(table, WordVec{0, 2, 0}, WordVec{5, 9, 7});
    FAIL() << "expected AuditError";
  } catch (const AuditError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unsanctioned-duplicate"), std::string::npos);
    EXPECT_NE(what.find("{0, 2}"), std::string::npos);
  }
  const std::string report = m.hazards().to_string();
  EXPECT_NE(report.find("1 hazard"), std::string::npos);
  EXPECT_NE(report.find("table[0]"), std::string::npos);
}

// ---- fuzzing the auditor against the injection substrate -------------------

class ScatterCheckFuzzTest : public ::testing::TestWithParam<ScatterOrder> {};

// Direct scatter/gather level: the oracle recomputes exactly which addresses
// receive an amalgam that equals none of the colliding labels, and the
// auditor must report exactly those addresses with exactly those lanes.
TEST_P(ScatterCheckFuzzTest, AuditorPinpointsInjectedAmalgams) {
  Xoshiro256 rng(0xf0522ed ^ static_cast<std::uint64_t>(GetParam()));
  for (int rep = 0; rep < 200; ++rep) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.in_range(0, 18));
    const auto table_size = static_cast<Word>(1 + rng.in_range(0, 9));
    WordVec idx(n);
    for (auto& v : idx) v = rng.in_range(0, table_size - 1);
    // Labels are the lane numbers (distinct), as in FOL1.
    MachineConfig cfg = audited(GetParam());
    cfg.inject_els_violation = true;
    VectorMachine m(cfg);
    WordVec table(static_cast<std::size_t>(table_size), 0);
    WordVec labels(n);
    for (std::size_t i = 0; i < n; ++i) labels[i] = static_cast<Word>(i);

    // Oracle: collision groups and their XOR amalgam.
    std::unordered_map<Word, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < n; ++i) groups[idx[i]].push_back(i);
    std::unordered_map<Word, std::vector<std::size_t>> detectable;
    for (const auto& [addr, lanes] : groups) {
      if (lanes.size() < 2) continue;
      Word amalgam = 0;
      for (std::size_t lane : lanes) amalgam ^= labels[lane] + 1;
      const bool coincides =
          std::any_of(lanes.begin(), lanes.end(), [&](std::size_t lane) {
            return labels[lane] == amalgam;
          });
      if (!coincides) detectable[addr] = lanes;
    }

    const ConflictWindow window(m, table, WindowKind::kLabelRound, "fuzz");
    m.scatter(table, idx, labels);
    if (detectable.empty()) {
      EXPECT_NO_THROW(m.gather(table, idx));
      EXPECT_TRUE(m.hazards().empty());
      continue;
    }
    EXPECT_THROW(m.gather(table, idx), AuditError);
    EXPECT_EQ(m.hazards().size(), detectable.size());
    for (const Hazard& h : m.hazards().hazards()) {
      EXPECT_EQ(h.kind, HazardKind::kElsViolation);
      const auto it = detectable.find(h.address);
      ASSERT_NE(it, detectable.end())
          << "auditor flagged address " << h.address << " spuriously";
      EXPECT_EQ(h.lanes, it->second);
    }
  }
}

// End-to-end through FOL1: under injection either the auditor names the
// amalgamated lanes of some round, or — when every amalgam happens to
// coincide with a colliding label — the run must degrade to a decomposition
// that still satisfies every theorem. Silent mis-decomposition is the one
// outcome the auditor exists to rule out.
TEST_P(ScatterCheckFuzzTest, Fol1InjectionNeverMisdecomposesSilently) {
  Xoshiro256 rng(0xf01f22 ^ static_cast<std::uint64_t>(GetParam()));
  int detected = 0;
  for (int rep = 0; rep < 200; ++rep) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.in_range(0, 14));
    const Word span = 1 + rng.in_range(0, 7);
    WordVec idx(n);
    for (auto& v : idx) v = rng.in_range(0, span - 1);

    MachineConfig cfg = audited(GetParam());
    cfg.inject_els_violation = true;
    VectorMachine m(cfg);
    WordVec work(static_cast<std::size_t>(span), 0);
    try {
      const fol::Decomposition dec = fol::fol1_decompose(m, idx, work);
      EXPECT_TRUE(fol::satisfies_all_theorems(dec, idx))
          << "injection slipped an invalid decomposition past the auditor";
    } catch (const AuditError&) {
      ++detected;
      const Hazard* h = m.hazards().first(HazardKind::kElsViolation);
      ASSERT_NE(h, nullptr);
      // Lane-precision: the report names at least two colliding writers and
      // the observed amalgam is none of their labels.
      EXPECT_GE(h->lanes.size(), 2u);
      EXPECT_EQ(std::count(h->expected.begin(), h->expected.end(), h->found),
                0);
    }
  }
  // With up to 15 lanes over at most 8 addresses, collisions (and thus
  // detections) must occur many times in 200 reps.
  EXPECT_GT(detected, 20);
}

INSTANTIATE_TEST_SUITE_P(AllOrders, ScatterCheckFuzzTest,
                         ::testing::Values(ScatterOrder::kForward,
                                           ScatterOrder::kReverse,
                                           ScatterOrder::kShuffled));

}  // namespace
}  // namespace folvec
