// Example: incremental bulk-loading of an ordered index (BST).
//
// A database receiving batched inserts wants each batch applied with vector
// operations rather than one key at a time (paper Section 4.3). This
// example loads an index in batches with the FOL-filtered bulk inserter,
// verifies the order invariant after every batch, then serves range
// queries off the in-order traversal.
#include <algorithm>
#include <iostream>
#include <vector>

#include "support/prng.h"
#include "tree/bst.h"
#include "vm/machine.h"

int main() {
  using namespace folvec;
  using vm::Word;

  constexpr std::size_t kBatches = 8;
  constexpr std::size_t kBatchSize = 250;
  constexpr Word kKeyRange = 100000;

  vm::VectorMachine m;
  tree::Bst index(kBatches * kBatchSize + 1);
  std::vector<Word> all_keys;

  for (std::size_t b = 0; b < kBatches; ++b) {
    const std::vector<Word> batch =
        random_keys(kBatchSize, kKeyRange, 1000 + b);
    all_keys.insert(all_keys.end(), batch.begin(), batch.end());

    const tree::BulkInsertStats stats = index.insert_bulk(m, batch);
    if (!index.check_invariant()) {
      std::cout << "BST invariant broken after batch " << b << "\n";
      return 1;
    }
    std::cout << "batch " << b << ": " << kBatchSize << " keys in "
              << stats.passes << " vector passes, " << stats.conflict_lanes
              << " conflict retries, tree size " << index.size()
              << ", height " << index.height() << "\n";
  }

  // The index must now hold exactly the inserted multiset, in order.
  std::sort(all_keys.begin(), all_keys.end());
  if (index.inorder() != all_keys) {
    std::cout << "index contents diverged from the inserted keys\n";
    return 1;
  }

  // A range query: count keys in [lo, hi) via the sorted traversal.
  const Word lo = 25000;
  const Word hi = 50000;
  const auto sorted = index.inorder();
  const auto lo_it = std::lower_bound(sorted.begin(), sorted.end(), lo);
  const auto hi_it = std::lower_bound(sorted.begin(), sorted.end(), hi);
  std::cout << "\nrange [" << lo << ", " << hi << ") holds "
            << (hi_it - lo_it) << " keys of " << sorted.size() << "\n";

  std::cout << "\nvector-unit work for all batches:\n"
            << m.cost().breakdown(vm::CostParams::s810_like());
  return 0;
}
