// Tests for the support layer: PRNG determinism and distributions, table
// rendering, summary statistics, and the checking utilities.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "support/env.h"
#include "support/json.h"
#include "support/prng.h"
#include "support/require.h"
#include "support/stats.h"
#include "support/table_printer.h"

namespace folvec {
namespace {

TEST(EnvTest, NormalizeTrimsAndLowercases) {
  EXPECT_EQ(env_normalize("  OfF\t"), "off");
  EXPECT_EQ(env_normalize("Parallel"), "parallel");
  EXPECT_EQ(env_normalize("   "), "");
  EXPECT_EQ(env_normalize(""), "");
}

TEST(EnvTest, FlagRecognisesEveryOffSpelling) {
  // Regression: FOLVEC_AUDIT used to treat only the literal "0" as off, so
  // "off"/"false"/"no" silently *enabled* the auditor.
  for (const char* off : {"", "0", "00", "000", "false", "FALSE", "False",
                          "off", "OFF", "Off", "no", "No", "NO", " 0 ",
                          "\toff\n", "  false  "}) {
    EXPECT_FALSE(env_flag(off)) << '"' << off << '"';
  }
  for (const char* on : {"1", "01", "true", "on", "yes", "2", "parallel",
                         "enabled", "  1  ", "0x0"}) {
    EXPECT_TRUE(env_flag(on)) << '"' << on << '"';
  }
}

TEST(EnvTest, ValueReturnsNulloptWhenUnsetOrEmpty) {
  ::unsetenv("FOLVEC_ENV_TEST_VAR");
  EXPECT_FALSE(env_value("FOLVEC_ENV_TEST_VAR").has_value());
  ::setenv("FOLVEC_ENV_TEST_VAR", "", 1);
  EXPECT_FALSE(env_value("FOLVEC_ENV_TEST_VAR").has_value());
  ::setenv("FOLVEC_ENV_TEST_VAR", "Parallel", 1);
  ASSERT_TRUE(env_value("FOLVEC_ENV_TEST_VAR").has_value());
  EXPECT_EQ(*env_value("FOLVEC_ENV_TEST_VAR"), "Parallel");
  ::unsetenv("FOLVEC_ENV_TEST_VAR");
}

TEST(RequireTest, RequireThrowsPrecondition) {
  EXPECT_THROW(FOLVEC_REQUIRE(1 == 2, "impossible"), PreconditionError);
  EXPECT_NO_THROW(FOLVEC_REQUIRE(true, "fine"));
}

TEST(RequireTest, CheckThrowsInternal) {
  EXPECT_THROW(FOLVEC_CHECK(false, "bug"), InternalError);
}

TEST(RequireTest, MessagesCarryContext) {
  try {
    FOLVEC_REQUIRE(false, "the table is full");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the table is full"), std::string::npos);
    EXPECT_NE(what.find("support_test.cpp"), std::string::npos);
  }
}

TEST(CheckedNarrowTest, FitsAndRejects) {
  EXPECT_EQ(checked_narrow<std::int32_t>(std::int64_t{42}), 42);
  EXPECT_THROW(checked_narrow<std::int8_t>(std::int64_t{1000}),
               PreconditionError);
  EXPECT_THROW(checked_narrow<std::uint32_t>(std::int64_t{-1}),
               PreconditionError);
}

TEST(PrngTest, DeterministicAcrossInstances) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(PrngTest, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(PrngTest, BelowStaysBelow) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
  EXPECT_THROW(rng.below(0), PreconditionError);
}

TEST(PrngTest, InRangeIsInclusiveAndCoversRange) {
  Xoshiro256 rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.in_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(PrngTest, UnitInHalfOpenInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(PrngTest, RandomKeysRespectBoundAndSeed) {
  const auto a = random_keys(50, 100, 42);
  const auto b = random_keys(50, 100, 42);
  EXPECT_EQ(a, b);
  for (auto k : a) {
    EXPECT_GE(k, 0);
    EXPECT_LT(k, 100);
  }
}

TEST(PrngTest, RandomUniqueKeysAreUnique) {
  const auto keys = random_unique_keys(200, 256, 3);
  std::set<std::int64_t> seen(keys.begin(), keys.end());
  EXPECT_EQ(seen.size(), keys.size());
  EXPECT_THROW(random_unique_keys(10, 5, 1), PreconditionError);
}

TEST(PrngTest, ShuffleIsAPermutation) {
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  Xoshiro256 rng(4);
  shuffle(shuffled, rng);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(TablePrinterTest, AlignsColumnsAndRendersTypes) {
  TablePrinter t({"name", "count", "ratio"});
  t.add_row({"alpha", 42, Cell(3.14159, 2)});
  t.add_row({"b", 7, Cell(10.5, 1)});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("3.14"), std::string::npos);
  EXPECT_NE(text.find("10.5"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.add_row({1, 2});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, RowWidthMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({1}), PreconditionError);
}

TEST(TablePrinterTest, PrintIncludesTitle) {
  TablePrinter t({"x"});
  t.add_row({5});
  std::ostringstream os;
  t.print(os, "My Table");
  EXPECT_NE(os.str().find("My Table"), std::string::npos);
}

TEST(TablePrinterTest, ExposesHeadersAndRenderedRows) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", Cell(3.14159, 2)});
  t.add_row({"beta", Cell(42)});
  EXPECT_EQ(t.headers(), (std::vector<std::string>{"name", "value"}));
  ASSERT_EQ(t.rows().size(), 2u);
  EXPECT_EQ(t.rows()[0], (std::vector<std::string>{"alpha", "3.14"}));
  EXPECT_EQ(t.rows()[1], (std::vector<std::string>{"beta", "42"}));
}

TEST(JsonTest, DumpAndParseRoundTrip) {
  const JsonValue doc(JsonObject{
      {"string", "hi \"there\"\n"},
      {"int", 42},
      {"float", 2.5},
      {"flag", true},
      {"nothing", nullptr},
      {"list", JsonArray{1, 2, 3}},
      {"nested", JsonObject{{"k", "v"}}},
  });
  for (const int indent : {-1, 0, 2}) {
    const JsonValue back = JsonValue::parse(doc.dump(indent));
    EXPECT_EQ(back.find("string")->as_string(), "hi \"there\"\n");
    EXPECT_EQ(back.find("int")->as_number(), 42.0);
    EXPECT_EQ(back.find("float")->as_number(), 2.5);
    EXPECT_TRUE(back.find("flag")->as_bool());
    EXPECT_TRUE(back.find("nothing")->is_null());
    ASSERT_EQ(back.find("list")->as_array().size(), 3u);
    EXPECT_EQ(back.find("list")->as_array()[2].as_number(), 3.0);
    EXPECT_EQ(back.find("nested")->find("k")->as_string(), "v");
  }
}

TEST(JsonTest, ObjectsKeepInsertionOrder) {
  const JsonValue doc(JsonObject{{"z", 1}, {"a", 2}, {"m", 3}});
  EXPECT_EQ(doc.dump(-1), R"({"z":1,"a":2,"m":3})");
}

TEST(JsonTest, NumbersRoundTripLargeIntegers) {
  // Chime element totals reach 2^40+; doubles carry them exactly to 2^53.
  const std::uint64_t big = (std::uint64_t{1} << 50) + 12345;
  const JsonValue doc(JsonObject{{"n", big}});
  const JsonValue back = JsonValue::parse(doc.dump(-1));
  EXPECT_EQ(static_cast<std::uint64_t>(back.find("n")->as_number()), big);
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "tru", "1 2",
                          "{\"a\":1,}", "\"unterminated"}) {
    EXPECT_THROW(JsonValue::parse(bad), PreconditionError) << bad;
  }
}

TEST(JsonTest, FindOnNonObjectAndMissingKey) {
  const JsonValue arr(JsonArray{1});
  EXPECT_EQ(arr.find("x"), nullptr);
  const JsonValue obj(JsonObject{{"a", 1}});
  EXPECT_EQ(obj.find("b"), nullptr);
  ASSERT_NE(obj.find("a"), nullptr);
}

TEST(JsonTest, QuoteEscapesControlCharacters) {
  EXPECT_EQ(JsonValue::quote("a\"b\\c\n\t"), R"("a\"b\\c\n\t")");
  const JsonValue back =
      JsonValue::parse(JsonValue::quote("ctrl\x01" "end"));
  EXPECT_EQ(back.as_string(), "ctrl\x01" "end");
}

TEST(StatsTest, SummaryOnKnownData) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, 1.1180, 1e-3);
}

TEST(StatsTest, SingleSample) {
  const Summary s = summarize({7.0});
  EXPECT_DOUBLE_EQ(s.median, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_THROW(summarize({}), PreconditionError);
}

TEST(StatsTest, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({2.0, 8.0}), 4.0);
  EXPECT_THROW(geomean({1.0, -1.0}), PreconditionError);
  EXPECT_THROW(geomean({}), PreconditionError);
}

}  // namespace
}  // namespace folvec
