# Empty compiler generated dependencies file for example_bulk_index.
# This may be replaced when dependencies are built.
