file(REMOVE_RECURSE
  "CMakeFiles/folvec_lang.dir/interp.cpp.o"
  "CMakeFiles/folvec_lang.dir/interp.cpp.o.d"
  "CMakeFiles/folvec_lang.dir/parser.cpp.o"
  "CMakeFiles/folvec_lang.dir/parser.cpp.o.d"
  "CMakeFiles/folvec_lang.dir/token.cpp.o"
  "CMakeFiles/folvec_lang.dir/token.cpp.o.d"
  "libfolvec_lang.a"
  "libfolvec_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/folvec_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
