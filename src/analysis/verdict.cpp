#include "analysis/verdict.h"

namespace folvec::analysis {

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kUnknown:
      return "unknown";
    case Verdict::kProvenSafe:
      return "safe";
    case Verdict::kProvenHazard:
      return "hazard";
  }
  return "?";
}

const char* hazard_class_name(HazardClass c) {
  switch (c) {
    case HazardClass::kBounds:
      return "bounds";
    case HazardClass::kOverlap:
      return "overlap";
    case HazardClass::kClobber:
      return "clobber";
    case HazardClass::kLifetime:
      return "lifetime";
  }
  return "?";
}

Verdict judge_bounds(const LaneFacts& idx, std::size_t table_size,
                     bool masked) {
  if (idx.lanes == 0) return Verdict::kProvenSafe;
  if (idx.has_range && idx.lo >= 0 &&
      static_cast<std::uint64_t>(idx.hi) < table_size) {
    return Verdict::kProvenSafe;
  }
  if (!masked && idx.has_range && idx.tight &&
      (idx.lo < 0 || static_cast<std::uint64_t>(idx.hi) >= table_size)) {
    // A tight endpoint outside the table is an actual offending lane.
    return Verdict::kProvenHazard;
  }
  return Verdict::kUnknown;
}

Verdict judge_scatter_overlap(const LaneFacts& idx, const LaneFacts& vals,
                              WindowCtx window, bool masked, bool ordered) {
  if (ordered) return Verdict::kProvenSafe;  // VSTX defines the survivor
  if (window == WindowCtx::kLabelRound) {
    // The FOL sanction: colliding labels are the algorithm, and the round's
    // readback (scatter_gather_eq) audits the survivor.
    return Verdict::kProvenSafe;
  }
  if (idx.distinct) return Verdict::kProvenSafe;  // no collisions at all
  if (vals.constant()) return Verdict::kProvenSafe;  // collisions benign
  if (!masked && idx.proven_duplicates() && vals.distinct) {
    // Some two lanes share an address (pigeonhole), and every lane pair
    // carries differing values: a collision with a machine-dependent
    // survivor losing real data. Proven even inside a data-race window —
    // the runtime sanction silences the auditor, not the loss.
    return Verdict::kProvenHazard;
  }
  return Verdict::kUnknown;
}

Verdict judge_read_clobber(const LaneFacts& idx, bool in_window,
                           const ClobberOverlap& overlap) {
  if (in_window) return Verdict::kProvenSafe;
  if (!overlap.any) return Verdict::kProvenSafe;
  if (idx.has_range && idx.tight && (overlap.lo_hit || overlap.hi_hit)) {
    return Verdict::kProvenHazard;
  }
  return Verdict::kUnknown;
}

}  // namespace folvec::analysis
