file(REMOVE_RECURSE
  "CMakeFiles/radix_test.dir/radix_test.cpp.o"
  "CMakeFiles/radix_test.dir/radix_test.cpp.o.d"
  "radix_test"
  "radix_test.pdb"
  "radix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
