// FOL*: the filtering-overwritten-label method for unit processes that
// rewrite L data items at once (paper Section 3.3).
//
// Tuple i consists of the i-th elements of L index vectors V1..VL. A set of
// tuples is parallel-processable only if *no* storage area is addressed
// twice across all lanes of all tuples in the set. The decomposition writes
// globally-unique labels through every lane of every vector, reads them
// back, and keeps the tuples for which every lane's label survived.
//
// Deadlock (paper, Section 3.3): unlike FOL1, a round can yield an empty
// set — e.g. tuples <a,b> and <b,a> knock out each other's labels no matter
// which write wins. The paper's remedy is adopted: the *last* remaining
// tuple's labels are re-written by scalar stores after the vector scatter,
// so that tuple survives unless it conflicts with itself. If even that fails
// (the tuple addresses one area through two of its own lanes), the tuple is
// forced out as a singleton set, which is always safe: a singleton set's
// unit process executes alone, its lanes ordered by the instruction
// sequence of the main processing.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "fol/fol1.h"
#include "vm/machine.h"

namespace folvec::fol {

struct StarDecomposition {
  /// sets[j] holds tuple positions (0-based) of parallel-processable set j.
  std::vector<std::vector<std::size_t>> sets;
  /// Rounds where the scalar last-tuple rewrite decided a contested address
  /// in the last tuple's favour (deadlock prevention) — counted whether or
  /// not other tuples survived the same round.
  std::size_t scalar_rescues = 0;
  /// Tuples forced out as singletons because they self-conflict.
  std::size_t forced_singletons = 0;
  /// Tuples left unassigned because `max_rounds` cut the decomposition off.
  std::size_t unassigned = 0;
  /// Tuples assigned by the adaptive scalar drain (MachineConfig::adaptive)
  /// instead of by vector rounds. Only full decompositions (max_rounds == 0)
  /// drain; bounded ones keep their round/unassigned semantics.
  std::size_t drained_tuples = 0;

  std::size_t rounds() const { return sets.size(); }
};

/// Decomposes tuples formed by `index_vectors` (all the same length; every
/// element indexes into `work`) into parallel-processable sets of tuples.
///
/// `max_rounds` bounds the number of sets produced; 0 means decompose until
/// every tuple is assigned. Iterative algorithms (tree rewriting, garbage
/// collection, maze routing — see the paper's Related Works) typically want
/// max_rounds = 1: they apply the first parallel-processable set and
/// re-derive the work list, because applying one set can invalidate the
/// remaining tuples anyway. This also sidesteps FOL*'s worst case, where a
/// chain of pairwise-conflicting tuples costs O(N) rounds to decompose
/// fully.
///
/// Practical guidance from the paper: the per-round cost grows linearly in
/// L = index_vectors.size(), so FOL* pays off for L up to about five; the
/// tree-rewriting application uses L = 2.
StarDecomposition fol_star_decompose(
    vm::VectorMachine& m, std::span<const vm::WordVec> index_vectors,
    std::span<vm::Word> work, std::size_t max_rounds = 0);

}  // namespace folvec::fol
