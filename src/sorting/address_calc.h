// Address-calculation sorting (linear probing sort), paper Section 4.2.
//
// Data are "hashed" with an order-preserving spreading function into a work
// array C of 3n slots, displacing larger values rightward on collision
// (insertion-sort style), then packed back out — an O(n) expected-time sort.
// The spreading function is not a real hash: data[i] <= data[j] implies
// hash(data[i]) <= hash(data[j]), so the occupied slots of C are always in
// sorted order and the final pack yields the sorted array.
//
// The scalar version is the paper's Figure 11; the vectorized version is
// Figure 12, which resolves insertion collisions with the FOL
// overwrite-and-check: lanes scatter *negated lane identifiers* into their
// target slots, read them back, and only the surviving lane stores its
// datum; displaced values are shifted rightward by lock-step vector
// operations (part D), and losing lanes retry in the next outer pass.
//
// Note on the spreading function: Figure 11's listing reads
// `int(2 * size(C) * A[i] / Vmax)` with size(C) = 3n, but the worked example
// (Figure 13) uses factor 2n/Vmax — the listing's factor would index past
// the end of C. We follow the worked example: hash(x) = floor(2n*x / Vmax).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "vm/cost_model.h"
#include "vm/machine.h"

namespace folvec::sorting {

/// Run statistics for the vectorized sort (reported by the benches).
struct AddressCalcStats {
  std::size_t outer_passes = 0;  ///< Figure 12 repeat-until-empty passes
  std::size_t probe_steps = 0;   ///< part-B collision-advance vector steps
  std::size_t shift_steps = 0;   ///< part-D lock-step shift iterations
};

/// Figure 11: sequential linear-probing sort. `data` values must lie in
/// [0, vmax). Sorts in place. `cost` (optional) receives scalar-unit ticks.
void address_calc_sort_scalar(std::span<vm::Word> data, vm::Word vmax,
                              vm::CostAccumulator* cost = nullptr);

/// Figure 12: vectorized linear-probing sort on the machine. `data` values
/// must be non-negative (lane identifiers are stored negated to be
/// distinguishable) and less than `vmax`.
AddressCalcStats address_calc_sort_vector(vm::VectorMachine& m,
                                          std::span<vm::Word> data,
                                          vm::Word vmax);

}  // namespace folvec::sorting
