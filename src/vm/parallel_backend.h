// ParallelBackend: chunks VectorMachine primitives across a thread pool.
//
// Every primitive must be bit-identical to SerialBackend at any worker
// count. For elementwise work, reductions, compress, and bounds scans that
// follows from deterministic chunking (contiguous ascending chunks, partials
// combined in chunk order). Chunked instructions dispatch with static worker
// affinity (ThreadPool::run_affine): chunk i always runs on worker i, so
// consecutive instructions over equal-length vectors hand each worker the
// same lane range — its chunk stays in its cache across the whole round.
//
// Scatter is the interesting case — the survivor of a contested address is
// defined by the lane *traversal order* — and supports two lane-exact ELS
// merges (selected by MergeStrategy; both are bit-identical to serial):
//
// Two-pass owner-computes merge (the PR 2 reference, kTwoPass):
//
//   pass 1 (parallel over traversal positions): each worker walks its
//     contiguous slice of the traversal order and routes every active
//     (address, value) write into a bucket keyed by the destination address
//     range that owns it, preserving the slice's position order;
//   pass 2 (parallel over address ranges): each worker owns one address
//     range and replays that range's buckets slice 0..W-1, each in recorded
//     order — i.e. exactly ascending traversal position.
//
// Single-pass claim-interval merge (kSinglePass; kAuto uses it for forward
// and reverse traversals): the serial survivor of an address is its write
// with the HIGHEST traversal position, i.e. the first one encountered when
// scanning positions n-1 down to 0. The table is partitioned into disjoint
// per-worker address intervals; in ONE dispatch every worker scans all n
// positions in that descending order, skips addresses outside its interval,
// and applies the first write it meets to each of its addresses (an
// epoch-stamped claim array dedups without clearing or atomics — interval
// disjointness removes all races). One dispatch instead of two, no routing
// buckets, and under heavy collisions each address is written exactly once.
// kAuto keeps kExplicit traversals on the two-pass path: scanning a
// shuffled order array per worker touches lanes randomly, where the routing
// pass at least streams its slice; forcing kSinglePass remains exact.
//
// In both merges, for any address writes are applied in traversal-position
// order by a single owner, so the survivor equals the serial loop's for
// every ScatterOrder and any worker count. This is the lane-exact ELS
// merge: the parallel machine stores exactly one of the written values —
// the same one the serial machine does.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "vm/backend.h"
#include "vm/thread_pool.h"

namespace folvec::vm {

struct SimdKernels;

namespace detail {

/// Chunk i of count() even chunks over [0, n): [i*step, min(n, (i+1)*step)).
/// Only the first count() chunks are non-empty; callers dispatch exactly
/// that many tasks, so no zero-lane chunk ever reaches the pool.
struct ChunkPlan {
  std::size_t step;
  std::size_t n;
  std::size_t lo(std::size_t i) const { return i * step; }
  /// Subtraction form: `(i + 1) * step` wraps for n near SIZE_MAX (the last
  /// chunk's product exceeds SIZE_MAX whenever step does not divide n).
  std::size_t hi(std::size_t i) const {
    const std::size_t base = lo(i);
    return n - base < step ? n : base + step;
  }
  /// Number of non-empty chunks: ceil(n / step), overflow-proof.
  std::size_t count() const {
    return n == 0 ? 0 : n / step + (n % step != 0 ? 1 : 0);
  }
};

/// Plans `chunks` even chunks over [0, n). The ceil-division is written in
/// quotient-plus-remainder form: the textbook (n + chunks - 1) / chunks
/// wraps for n near SIZE_MAX and would plan step 0.
inline ChunkPlan plan(std::size_t n, std::size_t chunks) {
  const std::size_t step = n / chunks + (n % chunks != 0 ? 1 : 0);
  return ChunkPlan{step == 0 ? 1 : step, n};
}

}  // namespace detail

class ParallelBackend final : public Backend {
 public:
  /// `workers` == 0 picks std::thread::hardware_concurrency (at least 1).
  /// `grain` is the minimum lane count per chunk: instructions shorter than
  /// two grains run inline, so tiny vectors skip dispatch entirely.
  /// `kernels`, when non-null, attaches a SIMD kernel table: per-chunk
  /// reduction / popcount partials run through the table's whole-span entry
  /// points, and VectorMachine's lane kernels ride into every for_lanes
  /// chunk, so pool workers run the SIMD inner loops over their own lanes.
  explicit ParallelBackend(std::size_t workers, std::size_t grain,
                           MergeStrategy merge = MergeStrategy::kAuto,
                           const SimdKernels* kernels = nullptr);
  ~ParallelBackend() override;

  const char* name() const override {
    return kernels_ != nullptr ? "parallel+simd" : "parallel";
  }
  std::size_t workers() const override { return workers_; }

  void for_lanes(std::size_t n, RangeFn fn) override;
  Word reduce_sum(std::span<const Word> v) override;
  Word reduce_min(std::span<const Word> v) override;
  Word reduce_max(std::span<const Word> v) override;
  std::size_t count_true(std::span<const std::uint8_t> m) override;
  WordVec compress(std::span<const Word> v,
                   std::span<const std::uint8_t> m) override;
  std::size_t first_oob(std::span<const Word> idx, std::size_t table_size,
                        const std::uint8_t* mask) override;
  void scatter(std::span<Word> table, std::span<const Word> idx,
               std::span<const Word> vals, const std::uint8_t* mask,
               ScatterTraversal traversal,
               std::span<const std::size_t> order) override;
  void compress_into(std::span<const Word> v, std::span<const std::uint8_t> m,
                     std::span<Word> out) override;
  /// The scatter pass reuses the lane-exact merge above; the readback
  /// compare pass then chunks lanes with per-chunk survivor partials summed
  /// in chunk order, so the count (and every mask byte) is bit-identical to
  /// serial at any worker count.
  std::size_t scatter_gather_eq(std::span<Word> table,
                                std::span<const Word> idx,
                                std::span<const Word> vals,
                                const std::uint8_t* mask,
                                ScatterTraversal traversal,
                                std::span<const std::size_t> order,
                                std::span<std::uint8_t> out_match,
                                void (*between_passes)(void*),
                                void* hook_ctx) override;
  void partition(std::span<const Word> v, std::span<const std::uint8_t> m,
                 std::span<Word> kept, std::span<Word> rejected) override;

 private:
  /// One routed scatter write: destination address and the value stored.
  struct Route {
    Word addr;
    Word val;
  };

  /// Chunks an n-lane instruction: 1 (inline) below two grains, otherwise
  /// at most `workers_`, never fewer than one grain per chunk.
  std::size_t chunks_for(std::size_t n) const;

  /// Plans `c` chunks over n lanes and asserts the zero-lane-chunk
  /// invariant; dispatch exactly the returned plan's count() tasks.
  static detail::ChunkPlan checked_plan(std::size_t n, std::size_t c);

  /// The pool, spawned on first parallel-sized instruction.
  ThreadPool& pool();

  /// `span_kernel`, when non-null, folds a whole [lo, hi) range at once
  /// (SIMD); the per-chunk partials it returns are combined in ascending
  /// chunk order exactly like the scalar path's, so the result stays
  /// bit-identical (the folds used here are associative, including
  /// wrap-around addition).
  Word reduce(std::span<const Word> v, Word (*fold)(Word, Word),
              Word (*span_kernel)(const Word*, std::size_t));

  void scatter_two_pass(std::span<Word> table, std::span<const Word> idx,
                        std::span<const Word> vals, const std::uint8_t* mask,
                        ScatterTraversal traversal,
                        std::span<const std::size_t> order, std::size_t c);
  void scatter_single_pass(std::span<Word> table, std::span<const Word> idx,
                           std::span<const Word> vals,
                           const std::uint8_t* mask,
                           ScatterTraversal traversal,
                           std::span<const std::size_t> order);

  std::size_t workers_;
  std::size_t grain_;
  MergeStrategy merge_;
  /// Optional SIMD kernel table (null for the plain parallel backend).
  const SimdKernels* kernels_ = nullptr;
  std::unique_ptr<ThreadPool> pool_;
  /// Scatter routing buckets, row-major [slice][owner range]; reused across
  /// instructions to keep capacity warm (two-pass merge only).
  std::vector<std::vector<Route>> buckets_;
  /// Single-pass merge claim stamps, one per table word: claim_[addr] ==
  /// claim_epoch_ means `addr` already received its surviving write this
  /// instruction. Bumping the epoch invalidates every stamp at once, so the
  /// array is never cleared; entries are only touched by the interval owner.
  std::vector<std::uint64_t> claim_;
  std::uint64_t claim_epoch_ = 0;
};

}  // namespace folvec::vm
