// Reproduction of the paper's Section 5 lineage: the two published
// algorithms it identifies as containing "implicit, specialized FOL" —
// Appel & Bendiksen's vectorized copying garbage collector and Suzuki et
// al.'s vectorized maze router. Both compute only the first
// parallel-processable set per step (losers of the overwrite-and-check
// simply follow the winner's result), which is why the paper calls FOL
// their generalization.
//
// Shape expectations: both accelerate on the modeled machine, with the
// advantage growing with problem size (longer vectors amortize startup) —
// GC's BFS scan vectorizes across the whole copied region, and the maze
// wavefront grows linearly with the grid side.
#include <iostream>

#include "bench_harness/experiments.h"
#include "bench_harness/report.h"
#include "support/require.h"
#include "support/table_printer.h"

int main() {
  using namespace folvec;
  bench::BenchReport report("related_work");
  report.config("gc_heap_cells", JsonArray{1000, 10000, 100000});
  report.config("maze_sides", JsonArray{16, 64, 192});
  report.config("seed", 42);
  const vm::CostParams params = vm::CostParams::s810_like();

  {
    TablePrinter table(
        {"heap_cells", "live%", "scalar_us", "vector_us", "accel", "passes"});
    double prev_size_accel = 0;
    for (std::size_t cells : {1000u, 10000u, 100000u}) {
      for (double live : {0.25, 0.75}) {
        const bench::RunResult r = bench::run_gc(cells, live, 42, params);
        table.add_row({Cell(static_cast<long long>(cells)),
                       Cell(static_cast<long long>(live * 100)),
                       Cell(r.scalar_us, 1), Cell(r.vector_us, 1),
                       Cell(r.acceleration(), 2), Cell(r.iterations)});
        if (live == 0.75) {
          FOLVEC_CHECK(r.acceleration() > prev_size_accel,
                       "GC acceleration must grow with heap size");
          prev_size_accel = r.acceleration();
        }
      }
    }
    table.print(std::cout,
                "Related work: vectorized copying GC (Appel/Bendiksen "
                "lineage) on the modeled S-810");
    report.add_table(
        "Related work: vectorized copying GC (Appel/Bendiksen lineage) on "
        "the modeled S-810",
        table);
    report.note("gc_accel_largest_heap", prev_size_accel);
    FOLVEC_CHECK(prev_size_accel > 1.0,
                 "vectorized GC must beat scalar on large heaps");
    std::cout << '\n';
  }

  {
    TablePrinter table({"grid", "obstacles%", "scalar_us", "vector_us",
                        "accel", "wavefronts"});
    double best = 0;
    for (std::size_t side : {16u, 64u, 192u}) {
      for (int density : {0, 25}) {
        const bench::RunResult r = bench::run_maze(side, density, 42, params);
        table.add_row({Cell(std::to_string(side) + "x" + std::to_string(side)),
                       Cell(static_cast<long long>(density)),
                       Cell(r.scalar_us, 1), Cell(r.vector_us, 1),
                       Cell(r.acceleration(), 2), Cell(r.iterations)});
        best = std::max(best, r.acceleration());
      }
    }
    table.print(std::cout,
                "Related work: vectorized maze routing (Suzuki et al. "
                "lineage) on the modeled S-810");
    report.add_table(
        "Related work: vectorized maze routing (Suzuki et al. lineage) on "
        "the modeled S-810",
        table);
    report.note("maze_best_accel", best);
    FOLVEC_CHECK(best > 1.0,
                 "vectorized routing must beat scalar on large grids");
  }
  return 0;
}
