
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/interp.cpp" "src/lang/CMakeFiles/folvec_lang.dir/interp.cpp.o" "gcc" "src/lang/CMakeFiles/folvec_lang.dir/interp.cpp.o.d"
  "/root/repo/src/lang/parser.cpp" "src/lang/CMakeFiles/folvec_lang.dir/parser.cpp.o" "gcc" "src/lang/CMakeFiles/folvec_lang.dir/parser.cpp.o.d"
  "/root/repo/src/lang/token.cpp" "src/lang/CMakeFiles/folvec_lang.dir/token.cpp.o" "gcc" "src/lang/CMakeFiles/folvec_lang.dir/token.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/folvec_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/folvec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
