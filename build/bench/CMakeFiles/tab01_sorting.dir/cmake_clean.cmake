file(REMOVE_RECURSE
  "CMakeFiles/tab01_sorting.dir/tab01_sorting.cpp.o"
  "CMakeFiles/tab01_sorting.dir/tab01_sorting.cpp.o.d"
  "tab01_sorting"
  "tab01_sorting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_sorting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
