#include "vm/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "support/faultsim.h"
#include "support/require.h"
#include "telemetry/metrics.h"
#include "telemetry/spans.h"

namespace folvec::vm {

ThreadPool::ThreadPool(std::size_t workers) {
  FOLVEC_REQUIRE(workers >= 1, "thread pool needs at least one worker");
  // Slot `workers - 1` belongs to the thread calling run().
  worker_stats_.resize(workers);
  threads_.reserve(workers - 1);
  for (std::size_t i = 0; i + 1 < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
  flush_telemetry();
}

void ThreadPool::flush_telemetry() const {
  telemetry::MetricsRegistry* r = telemetry::metrics();
  if (r == nullptr || (jobs_ == 0 && inline_jobs_ == 0)) return;
  r->add("pool.jobs", jobs_);
  r->add("pool.affine_jobs", affine_jobs_);
  r->add("pool.inline_jobs", inline_jobs_);
  r->add("pool.tasks", tasks_total_);
  r->gauge_max("pool.max_tasks_per_job",
               static_cast<std::int64_t>(max_tasks_per_job_));
  for (std::size_t w = 0; w < worker_stats_.size(); ++w) {
    const WorkerStats& s = worker_stats_[w];
    if (s.tasks == 0) continue;
    const std::string base = "pool.worker." + std::to_string(w);
    r->add(base + ".tasks", s.tasks);
    r->time_add(base + ".busy_seconds", s.busy_seconds);
  }
}

void ThreadPool::claim(Job& job, std::size_t worker, WorkerStats& stats) {
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t claimed = 0;
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.tasks) break;
    ++claimed;
    if (i == job.inject_task) {
      // Injected worker death: record the fault without touching the task
      // body. run() re-dispatches the task inline after the barrier.
      job.errors[i] = std::make_exception_ptr(InjectedFault(FaultSite::kWorkerFault));
      continue;
    }
    try {
      (*job.fn)(i);
    } catch (...) {
      job.errors[i] = std::current_exception();
    }
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - start;
  stats.busy_seconds += dt.count();
  stats.tasks += claimed;
  job.claimed[worker] = static_cast<std::size_t>(claimed);
}

void ThreadPool::claim_affine(Job& job, std::size_t worker,
                              WorkerStats& stats) const {
  // Static map: the caller (logical worker size()-1) owns task tasks-1;
  // pool worker w owns task w when w < tasks-1; everyone else just checks
  // in at the barrier.
  std::size_t task = kNoInject;
  if (worker == size() - 1) {
    task = job.tasks - 1;
  } else if (worker < job.tasks - 1) {
    task = worker;
  }
  job.claimed[worker] = task == kNoInject ? 0 : 1;
  if (task == kNoInject) return;
  const auto start = std::chrono::steady_clock::now();
  if (task == job.inject_task) {
    job.errors[task] = std::make_exception_ptr(InjectedFault(FaultSite::kWorkerFault));
  } else {
    try {
      (*job.fn)(task);
    } catch (...) {
      job.errors[task] = std::current_exception();
    }
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - start;
  stats.busy_seconds += dt.count();
  ++stats.tasks;
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  bool named_track = false;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    // Name this worker's trace track on its first traced job, so Chrome
    // traces show "worker-<i>" lanes instead of anonymous tids. The caller
    // participates as logical worker size()-1 on the "main" track.
    if (!named_track) {
      if (telemetry::SpanTracer* t = telemetry::tracer()) {
        t->set_thread_name("worker-" + std::to_string(worker));
        named_track = true;
      }
    }
    if (job->affine) {
      claim_affine(*job, worker, worker_stats_[worker]);
    } else {
      claim(*job, worker, worker_stats_[worker]);
    }
    {
      const std::lock_guard<std::mutex> lk(mu_);
      ++checked_in_;
      if (checked_in_ == threads_.size()) done_cv_.notify_one();
    }
  }
}

namespace {

/// One kWorkerFault draw per job, made on the calling thread BEFORE the
/// inline/pooled split, so plans see the same decision stream regardless
/// of worker count or task granularity.
bool draw_worker_fault() {
  FaultPlan* plan = faults();
  if (plan == nullptr || !plan->fires(FaultSite::kWorkerFault)) return false;
  telemetry::count("fault.injected.worker");
  return true;
}

}  // namespace

void ThreadPool::run_job(Job& job, const std::function<void(std::size_t)>& fn) {
  // Counter track: workers engaged while the job runs (0 between jobs).
  telemetry::SpanTracer* trace = telemetry::tracer();
  if (trace != nullptr) {
    trace->counter("pool.occupancy",
                   static_cast<double>(std::min(job.tasks, size())));
  }
  {
    const std::lock_guard<std::mutex> lk(mu_);
    job_ = &job;
    checked_in_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();
  if (job.affine) {
    claim_affine(job, size() - 1, worker_stats_[size() - 1]);
  } else {
    claim(job, size() - 1, worker_stats_[size() - 1]);
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return checked_in_ == threads_.size(); });
    job_ = nullptr;
  }
  if (trace != nullptr) trace->counter("pool.occupancy", 0.0);
  // Per-job imbalance: spread between the busiest and idlest worker's claim
  // counts. A healthy pool on even chunks shows 0 or 1. Affine jobs skip it
  // — their 0/1 assignment is static, so the spread carries no signal.
  if (!job.affine && telemetry::metrics() != nullptr) {
    const auto [lo, hi] =
        std::minmax_element(job.claimed.begin(), job.claimed.end());
    telemetry::observe("pool.claim_imbalance",
                       static_cast<std::uint64_t>(*hi - *lo));
  }
  // Real failures win over injected ones: rethrow the lowest-index genuine
  // error (the pre-injection contract). If the only error is the injected
  // fault, recover by running the sacrificed task inline — it was never
  // started, so this is its first and only execution.
  for (std::size_t i = 0; i < job.errors.size(); ++i) {
    if (job.errors[i] == nullptr || i == job.inject_task) continue;
    std::rethrow_exception(job.errors[i]);
  }
  if (job.inject_task != kNoInject && job.errors[job.inject_task] != nullptr) {
    job.errors[job.inject_task] = nullptr;
    fn(job.inject_task);
    telemetry::count("fault.recovered.worker");
  }
}

void ThreadPool::run(std::size_t tasks,
                     const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) return;
  const bool inject = draw_worker_fault();
  if (threads_.empty() || tasks == 1) {
    // Inline execution: first exception propagates naturally, which matches
    // the lowest-task-index rule because tasks run in order. An injected
    // fault has nothing to kill here — the "re-dispatch" is the same inline
    // call — so it counts as recovered immediately.
    ++inline_jobs_;
    if (inject) telemetry::count("fault.recovered.worker");
    for (std::size_t i = 0; i < tasks; ++i) fn(i);
    return;
  }
  ++jobs_;
  tasks_total_ += tasks;
  max_tasks_per_job_ = std::max(max_tasks_per_job_, tasks);
  Job job;
  job.fn = &fn;
  job.tasks = tasks;
  job.errors.resize(tasks);
  job.claimed.resize(size());
  if (inject) job.inject_task = 0;
  run_job(job, fn);
}

void ThreadPool::run_affine(std::size_t tasks,
                            const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) return;
  FOLVEC_REQUIRE(tasks <= size(),
                 "run_affine needs one worker per task (tasks <= size())");
  const bool inject = draw_worker_fault();
  if (threads_.empty() || tasks == 1) {
    ++inline_jobs_;
    if (inject) telemetry::count("fault.recovered.worker");
    for (std::size_t i = 0; i < tasks; ++i) fn(i);
    return;
  }
  ++jobs_;
  ++affine_jobs_;
  tasks_total_ += tasks;
  max_tasks_per_job_ = std::max(max_tasks_per_job_, tasks);
  Job job;
  job.fn = &fn;
  job.tasks = tasks;
  job.affine = true;
  job.errors.resize(tasks);
  job.claimed.resize(size());
  if (inject) job.inject_task = 0;
  run_job(job, fn);
}

}  // namespace folvec::vm
