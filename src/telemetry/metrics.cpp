#include "telemetry/metrics.h"

#include <atomic>
#include <bit>
#include <sstream>

#include "support/json.h"

namespace folvec::telemetry {

namespace {

std::atomic<MetricsRegistry*> g_metrics{nullptr};

/// Namespaces that describe the host-execution machinery (thread pool,
/// backend identity, fault injection) rather than the modeled computation;
/// excluded from the deterministic view because they legitimately vary with
/// worker count ("fault.": the worker-fault site is only checked by the
/// parallel backend, so serial and parallel runs under one plan see
/// different check counts).
bool is_host_namespace(std::string_view name) {
  return name.rfind("pool.", 0) == 0 || name.rfind("backend.", 0) == 0 ||
         name.rfind("fault.", 0) == 0;
}

}  // namespace

// ---- HistogramData ----------------------------------------------------------

std::size_t histogram_bucket(std::uint64_t value) {
  return static_cast<std::size_t>(std::bit_width(value));
}

std::pair<std::uint64_t, std::uint64_t> histogram_bucket_range(std::size_t b) {
  if (b == 0) return {0, 0};
  const std::uint64_t lo = std::uint64_t{1} << (b - 1);
  const std::uint64_t hi =
      b == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << b) - 1;
  return {lo, hi};
}

std::uint64_t saturating_add_u64(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t s = a + b;
  return s < a ? ~std::uint64_t{0} : s;
}

std::uint64_t saturating_mul_u64(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > ~std::uint64_t{0} / b) return ~std::uint64_t{0};
  return a * b;
}

void HistogramData::record(std::uint64_t value, std::uint64_t weight) {
  if (weight == 0) return;
  std::uint64_t& bucket = buckets[histogram_bucket(value)];
  bucket = saturating_add_u64(bucket, weight);
  if (count == 0 || value < min) min = value;
  if (value > max) max = value;
  count = saturating_add_u64(count, weight);
  sum = saturating_add_u64(sum, saturating_mul_u64(value, weight));
}

void HistogramData::merge(const HistogramData& other) {
  if (other.count == 0) return;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    buckets[i] = saturating_add_u64(buckets[i], other.buckets[i]);
  }
  if (count == 0 || other.min < min) min = other.min;
  if (other.max > max) max = other.max;
  count = saturating_add_u64(count, other.count);
  sum = saturating_add_u64(sum, other.sum);
}

// ---- PercentileSketch -------------------------------------------------------

std::size_t PercentileSketch::bucket_index(std::uint64_t value) {
  if (value < 2 * kSubBuckets) return static_cast<std::size_t>(value);
  const std::size_t w = static_cast<std::size_t>(std::bit_width(value));
  // The power-of-two block [2^(w-1), 2^w) splits into kSubBuckets ranges
  // of width 2^(w-1-kSubBucketBits).
  const std::size_t sub = static_cast<std::size_t>(
      (value - (std::uint64_t{1} << (w - 1))) >> (w - 1 - kSubBucketBits));
  return 2 * kSubBuckets + (w - (kSubBucketBits + 2)) * kSubBuckets + sub;
}

std::pair<std::uint64_t, std::uint64_t> PercentileSketch::bucket_range(
    std::size_t b) {
  if (b < 2 * kSubBuckets) return {b, b};
  const std::size_t block = (b - 2 * kSubBuckets) / kSubBuckets;
  const std::size_t sub = (b - 2 * kSubBuckets) % kSubBuckets;
  const std::size_t w = block + kSubBucketBits + 2;
  const std::uint64_t width = std::uint64_t{1} << (w - 1 - kSubBucketBits);
  const std::uint64_t lo = (std::uint64_t{1} << (w - 1)) + sub * width;
  return {lo, lo + (width - 1)};
}

void PercentileSketch::record(std::uint64_t value, std::uint64_t weight) {
  if (weight == 0) return;
  std::uint64_t& b = buckets_[bucket_index(value)];
  b = saturating_add_u64(b, weight);
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  count_ = saturating_add_u64(count_, weight);
  sum_ = saturating_add_u64(sum_, saturating_mul_u64(value, weight));
}

void PercentileSketch::merge(const PercentileSketch& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] = saturating_add_u64(buckets_[i], other.buckets_[i]);
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ = saturating_add_u64(count_, other.count_);
  sum_ = saturating_add_u64(sum_, other.sum_);
}

std::uint64_t PercentileSketch::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based: ceil(q * count), clamped to
  // [1, count] so q=0 is the smallest sample and q=1 the largest.
  const double scaled = q * static_cast<double>(count_);
  std::uint64_t rank = static_cast<std::uint64_t>(scaled);
  if (static_cast<double>(rank) < scaled) ++rank;
  if (rank == 0) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    cum = saturating_add_u64(cum, buckets_[b]);
    if (cum >= rank) {
      const auto [lo, hi] = bucket_range(b);
      std::uint64_t rep = lo + (hi - lo) / 2;
      if (rep < min_) rep = min_;
      if (rep > max_) rep = max_;
      return rep;
    }
  }
  return max_;
}

// ---- MetricsSnapshot --------------------------------------------------------

MetricsSnapshot MetricsSnapshot::deterministic() const {
  MetricsSnapshot out;
  for (const auto& [k, v] : counters) {
    if (!is_host_namespace(k)) out.counters.emplace(k, v);
  }
  for (const auto& [k, v] : gauges) {
    if (!is_host_namespace(k)) out.gauges.emplace(k, v);
  }
  for (const auto& [k, v] : histograms) {
    if (!is_host_namespace(k)) out.histograms.emplace(k, v);
  }
  return out;
}

MetricsSnapshot MetricsSnapshot::diff(const MetricsSnapshot& after,
                                      const MetricsSnapshot& before) {
  MetricsSnapshot out = after;
  for (auto& [k, v] : out.counters) {
    const auto it = before.counters.find(k);
    if (it != before.counters.end()) {
      v = v >= it->second ? v - it->second : 0;  // clamp across resets
    }
  }
  for (const auto& kv : before.counters) {
    out.counters.emplace(kv.first, 0);  // only-in-before: a zero delta
  }
  for (auto& [k, h] : out.histograms) {
    const auto it = before.histograms.find(k);
    if (it == before.histograms.end()) continue;
    const HistogramData& b = it->second;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      h.buckets[i] = h.buckets[i] >= b.buckets[i] ? h.buckets[i] - b.buckets[i]
                                                  : 0;
    }
    h.count = h.count >= b.count ? h.count - b.count : 0;
    h.sum = h.sum >= b.sum ? h.sum - b.sum : 0;
    // min/max cannot be un-merged; keep the after-side extremes.
  }
  for (const auto& kv : before.histograms) {
    out.histograms.emplace(kv.first, HistogramData{});
  }
  for (auto& [k, t] : out.timings) {
    const auto it = before.timings.find(k);
    if (it != before.timings.end()) t -= it->second;
  }
  for (const auto& kv : before.timings) {
    out.timings.emplace(kv.first, 0.0);
  }
  // Gauges and labels stay `after`'s verbatim (instantaneous facts — see
  // the header contract); only-in-before gauges/labels are dropped.
  return out;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [k, v] : other.counters) counters[k] += v;
  for (const auto& [k, v] : other.gauges) {
    const auto [it, fresh] = gauges.emplace(k, v);
    if (!fresh && v > it->second) it->second = v;
  }
  for (const auto& [k, h] : other.histograms) histograms[k].merge(h);
  for (const auto& [k, t] : other.timings) timings[k] += t;
  for (const auto& [k, s] : other.labels) labels[k] = s;
}

std::string MetricsSnapshot::to_text() const {
  std::ostringstream os;
  for (const auto& [k, v] : counters) {
    os << "counter   " << k << " = " << v << '\n';
  }
  for (const auto& [k, v] : gauges) {
    os << "gauge     " << k << " = " << v << '\n';
  }
  for (const auto& [k, h] : histograms) {
    os << "histogram " << k << ": count=" << h.count << " sum=" << h.sum
       << " min=" << h.min << " max=" << h.max << '\n';
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      const auto [lo, hi] = histogram_bucket_range(b);
      os << "            [" << lo << ".." << hi << "] " << h.buckets[b]
         << '\n';
    }
  }
  for (const auto& [k, t] : timings) {
    os << "timing    " << k << " = " << t << " s\n";
  }
  for (const auto& [k, s] : labels) {
    os << "label     " << k << " = " << s << '\n';
  }
  return os.str();
}

std::string MetricsSnapshot::to_json(int indent) const {
  JsonObject counters_json;
  for (const auto& [k, v] : counters) counters_json.emplace_back(k, v);
  JsonObject gauges_json;
  for (const auto& [k, v] : gauges) gauges_json.emplace_back(k, v);
  JsonObject hists_json;
  for (const auto& [k, h] : histograms) {
    JsonArray buckets;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      const auto [lo, hi] = histogram_bucket_range(b);
      buckets.push_back(JsonObject{
          {"lo", lo}, {"hi", hi}, {"count", h.buckets[b]}});
    }
    hists_json.emplace_back(
        k, JsonObject{{"count", h.count},
                      {"sum", h.sum},
                      {"min", h.min},
                      {"max", h.max},
                      {"buckets", std::move(buckets)}});
  }
  JsonObject timings_json;
  for (const auto& [k, t] : timings) timings_json.emplace_back(k, t);
  JsonObject labels_json;
  for (const auto& [k, s] : labels) labels_json.emplace_back(k, s);
  const JsonValue doc(JsonObject{{"counters", std::move(counters_json)},
                                 {"gauges", std::move(gauges_json)},
                                 {"histograms", std::move(hists_json)},
                                 {"timings", std::move(timings_json)},
                                 {"labels", std::move(labels_json)}});
  return doc.dump(indent);
}

// ---- MetricsRegistry --------------------------------------------------------

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  const std::lock_guard<std::mutex> lk(mu_);
  data_.counters[std::string(name)] += delta;
}

void MetricsRegistry::gauge_set(std::string_view name, std::int64_t value) {
  const std::lock_guard<std::mutex> lk(mu_);
  data_.gauges[std::string(name)] = value;
}

void MetricsRegistry::gauge_max(std::string_view name, std::int64_t value) {
  const std::lock_guard<std::mutex> lk(mu_);
  const auto [it, fresh] = data_.gauges.emplace(std::string(name), value);
  if (!fresh && value > it->second) it->second = value;
}

void MetricsRegistry::observe(std::string_view name, std::uint64_t value,
                              std::uint64_t weight) {
  const std::lock_guard<std::mutex> lk(mu_);
  data_.histograms[std::string(name)].record(value, weight);
}

void MetricsRegistry::time_add(std::string_view name, double seconds) {
  const std::lock_guard<std::mutex> lk(mu_);
  data_.timings[std::string(name)] += seconds;
}

void MetricsRegistry::label(std::string_view name, std::string value) {
  const std::lock_guard<std::mutex> lk(mu_);
  data_.labels[std::string(name)] = std::move(value);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return data_;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lk(mu_);
  data_ = MetricsSnapshot{};
}

// ---- global install ---------------------------------------------------------

MetricsRegistry* metrics() {
  return g_metrics.load(std::memory_order_relaxed);
}

void install_metrics(MetricsRegistry* registry) {
  g_metrics.store(registry, std::memory_order_release);
}

ScopedMetrics::ScopedMetrics(MetricsRegistry& registry)
    : previous_(metrics()) {
  install_metrics(&registry);
}

ScopedMetrics::~ScopedMetrics() { install_metrics(previous_); }

}  // namespace folvec::telemetry
