#include "sorting/scan.h"

#include <algorithm>

#include "support/require.h"

namespace folvec::sorting {

using vm::VectorMachine;
using vm::Word;
using vm::WordVec;

void inclusive_scan_scalar(std::span<Word> buf, vm::CostAccumulator* cost) {
  vm::ScalarCost sc(cost);
  Word carry = 0;
  for (auto& v : buf) {
    carry += v;
    v = carry;
    sc.alu(1);
    sc.mem(2);
    sc.branch(1);
  }
}

void inclusive_scan_vector(VectorMachine& m, std::span<Word> buf) {
  const std::size_t r = buf.size();
  constexpr std::size_t kBlocks = 512;
  if (r < 2 * kBlocks) {
    // Too small to amortize the strided sweeps; the scalar unit wins.
    inclusive_scan_scalar(buf, &m.cost());
    return;
  }
  const std::size_t block_len = r / kBlocks;  // main region: kBlocks * block_len
  const std::size_t main_len = kBlocks * block_len;

  // Pass 1: simultaneous block-local inclusive scans. Row `row` of every
  // block is one strided vector of kBlocks elements.
  WordVec carry = m.splat(kBlocks, 0);
  for (std::size_t row = 0; row < block_len; ++row) {
    const WordVec v = m.load_strided(buf, row, block_len, kBlocks);
    carry = m.add(carry, v);
    m.store_strided(buf, row, block_len, carry);
  }

  // Scalar exclusive scan of the block totals (`carry` holds them).
  WordVec offsets(kBlocks);
  Word acc = 0;
  for (std::size_t b = 0; b < kBlocks; ++b) {
    offsets[b] = acc;
    acc += carry[b];
    m.scalar_alu(1);
    m.scalar_mem(2);
    m.scalar_branch(1);
  }

  // Pass 2: add each block's offset to all of its rows.
  for (std::size_t row = 0; row < block_len; ++row) {
    const WordVec v = m.load_strided(buf, row, block_len, kBlocks);
    m.store_strided(buf, row, block_len, m.add(v, offsets));
  }

  // Scalar tail for the remainder beyond the blocked region.
  Word tail_carry = main_len > 0 ? buf[main_len - 1] : 0;
  for (std::size_t i = main_len; i < r; ++i) {
    tail_carry += buf[i];
    buf[i] = tail_carry;
    m.scalar_alu(1);
    m.scalar_mem(2);
    m.scalar_branch(1);
  }
}

}  // namespace folvec::sorting
