#include "lang/token.h"

#include <cctype>
#include <unordered_set>

#include "support/require.h"

namespace folvec::lang {

namespace {

const std::unordered_set<std::string>& keywords() {
  static const std::unordered_set<std::string> kw{
      "where", "do", "end",  "for",  "in",   "loop", "repeat", "until",
      "while", "if", "then", "else", "exit", "local", "not",   "and",
      "or",    "mod"};
  return kw;
}

}  // namespace

std::vector<Token> tokenize(const std::string& source) {
  std::vector<Token> out;
  std::size_t i = 0;
  std::size_t line = 1;
  const std::size_t n = source.size();

  auto error = [&](const std::string& msg) {
    throw PreconditionError("lang: line " + std::to_string(line) + ": " +
                            msg);
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: /* ... */ and -- to end of line.
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= n) error("unterminated comment");
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && source[i + 1] == '-') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      vm::Word value = 0;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
        value = value * 10 + (source[i] - '0');
        ++i;
      }
      out.push_back({TokenKind::kNumber, "", value, line});
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_')) {
        word.push_back(source[i]);
        ++i;
      }
      const bool kw = keywords().count(word) > 0;
      out.push_back(
          {kw ? TokenKind::kKeyword : TokenKind::kIdentifier, word, 0, line});
      continue;
    }
    // Multi-character symbols first.
    auto two = [&](const char* s) {
      return i + 1 < n && source[i] == s[0] && source[i + 1] == s[1];
    };
    if (two(":=") || two("..") || two("/=") || two("<=") || two(">=")) {
      out.push_back(
          {TokenKind::kSymbol, source.substr(i, 2), 0, line});
      i += 2;
      continue;
    }
    const std::string singles = ";,()[]:+-*/&=<>";
    if (singles.find(c) != std::string::npos) {
      out.push_back({TokenKind::kSymbol, std::string(1, c), 0, line});
      ++i;
      continue;
    }
    error(std::string("unexpected character '") + c + "'");
  }
  out.push_back({TokenKind::kEndOfInput, "", 0, line});
  return out;
}

}  // namespace folvec::lang
