// Host wall-clock micro-benchmarks (google-benchmark) of the machine
// primitives and the end-to-end kernels.
//
// These measure the *simulator's* throughput on the host, not the modeled
// S-810 times the figure/table benches report — useful for keeping the
// substrate itself fast and for spotting accidental complexity regressions
// (e.g. the O(N^2) all-duplicates FOL1 case shows up directly here too).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>

#include "bench_harness/report.h"
#include "fol/fol1.h"
#include "hashing/open_table.h"
#include "sorting/address_calc.h"
#include "sorting/dist_count.h"
#include "support/env.h"
#include "support/prng.h"
#include "support/require.h"
#include "telemetry/metrics.h"
#include "telemetry/profile.h"
#include "telemetry/spans.h"
#include "tree/bst.h"
#include "vm/checker.h"
#include "vm/machine.h"
#include "vm/simd_backend.h"

namespace {

using folvec::random_keys;
using folvec::random_unique_keys;
using folvec::vm::VectorMachine;
using folvec::vm::Word;
using folvec::vm::WordVec;

void BM_MachineGather(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  VectorMachine m;
  const WordVec table = m.iota(n);
  const WordVec idx = random_keys(n, static_cast<Word>(n), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.gather(table, idx));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MachineGather)->Arg(1 << 10)->Arg(1 << 14);

void BM_MachineScatter(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  VectorMachine m;
  WordVec table(n, 0);
  const WordVec idx = random_keys(n, static_cast<Word>(n), 2);
  const WordVec vals = m.iota(n);
  // Random indices collide on purpose: this measures the raw primitive.
  // The window sanctions the duplicates so the bench also runs (and shows
  // the checker's overhead) under FOLVEC_AUDIT=1.
  const folvec::vm::ConflictWindow window(
      m, table, folvec::vm::WindowKind::kDataRace, "scatter microbench");
  for (auto _ : state) {
    m.scatter(table, idx, vals);
    benchmark::DoNotOptimize(table.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MachineScatter)->Arg(1 << 10)->Arg(1 << 14);

void BM_MachineScatterGatherEq(benchmark::State& state) {
  // The fused FOL kernel: scatter distinct labels, gather the readback,
  // compare — one pass over the lanes instead of three. Random indices
  // collide on purpose (that is the workload the kernel exists for); the
  // window sanctions the duplicates under FOLVEC_AUDIT=1.
  const auto n = static_cast<std::size_t>(state.range(0));
  VectorMachine m;
  WordVec table(n, -1);
  const WordVec idx = random_keys(n, static_cast<Word>(n), 11);
  const WordVec labels = m.iota(n);
  const folvec::vm::ConflictWindow window(
      m, table, folvec::vm::WindowKind::kDataRace, "sge microbench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.scatter_gather_eq(table, idx, labels));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MachineScatterGatherEq)->Arg(1 << 10)->Arg(1 << 14);

void BM_MachinePartition(benchmark::State& state) {
  // The fused kept/rejected split that replaces compress(v, m) +
  // compress(v, !m) in the round loops.
  const auto n = static_cast<std::size_t>(state.range(0));
  VectorMachine m;
  const WordVec v = m.iota(n);
  const auto mask_words = random_keys(n, 2, 12);
  folvec::vm::Mask mask(n);
  for (std::size_t i = 0; i < n; ++i) {
    mask[i] = static_cast<std::uint8_t>(mask_words[i]);
  }
  WordVec kept(n);
  WordVec rejected(n);
  for (auto _ : state) {
    m.partition_into(kept, rejected, v, mask);
    benchmark::DoNotOptimize(kept.data());
    benchmark::DoNotOptimize(rejected.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MachinePartition)->Arg(1 << 14);

void BM_MachineCompress(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  VectorMachine m;
  const WordVec v = m.iota(n);
  const auto mask_words = random_keys(n, 2, 3);
  folvec::vm::Mask mask(n);
  for (std::size_t i = 0; i < n; ++i) {
    mask[i] = static_cast<std::uint8_t>(mask_words[i]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.compress(v, mask));
  }
}
BENCHMARK(BM_MachineCompress)->Arg(1 << 14);

// ---- per-instruction simd-vs-serial rows -----------------------------------
//
// Each SIMD-lowered primitive benched twice on identical inputs: once on the
// serial backend, once on the SIMD backend (runtime-dispatched to the best
// ISA the host offers, or forced via FOLVEC_SIMD_LEVEL). Rows pair up as
// BM_Prim*/serial/N vs BM_Prim*/simd/N; the ratio is the host-side speedup
// of the intrinsics lane loops over the scalar lane loops for that one
// instruction, free of any algorithm-level effects.

using folvec::vm::BackendKind;

VectorMachine backend_machine(BackendKind kind) {
  folvec::vm::MachineConfig cfg;
  cfg.backend = kind;
  return VectorMachine(cfg);
}

void BM_PrimAdd(benchmark::State& state, BackendKind kind) {
  const auto n = static_cast<std::size_t>(state.range(0));
  VectorMachine m = backend_machine(kind);
  const WordVec a = random_keys(n, 1 << 20, 31);
  const WordVec b = random_keys(n, 1 << 20, 32);
  WordVec out;
  for (auto _ : state) {
    m.add_into(out, a, b);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_PrimAdd, serial, BackendKind::kSerial)->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_PrimAdd, simd, BackendKind::kSimd)->Arg(1 << 14);

void BM_PrimAddScalar(benchmark::State& state, BackendKind kind) {
  const auto n = static_cast<std::size_t>(state.range(0));
  VectorMachine m = backend_machine(kind);
  const WordVec a = random_keys(n, 1 << 20, 33);
  WordVec out;
  for (auto _ : state) {
    m.add_scalar_into(out, a, 7);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_PrimAddScalar, serial, BackendKind::kSerial)
    ->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_PrimAddScalar, simd, BackendKind::kSimd)->Arg(1 << 14);

void BM_PrimCmpLt(benchmark::State& state, BackendKind kind) {
  const auto n = static_cast<std::size_t>(state.range(0));
  VectorMachine m = backend_machine(kind);
  const WordVec a = random_keys(n, 1 << 20, 34);
  const WordVec b = random_keys(n, 1 << 20, 35);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.lt(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_PrimCmpLt, serial, BackendKind::kSerial)->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_PrimCmpLt, simd, BackendKind::kSimd)->Arg(1 << 14);

void BM_PrimSelect(benchmark::State& state, BackendKind kind) {
  const auto n = static_cast<std::size_t>(state.range(0));
  VectorMachine m = backend_machine(kind);
  const WordVec a = random_keys(n, 1 << 20, 36);
  const WordVec b = random_keys(n, 1 << 20, 37);
  const auto mask_words = random_keys(n, 2, 38);
  folvec::vm::Mask mask(n);
  for (std::size_t i = 0; i < n; ++i) {
    mask[i] = static_cast<std::uint8_t>(mask_words[i]);
  }
  WordVec out;
  for (auto _ : state) {
    m.select_into(out, mask, a, b);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_PrimSelect, serial, BackendKind::kSerial)->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_PrimSelect, simd, BackendKind::kSimd)->Arg(1 << 14);

void BM_PrimGather(benchmark::State& state, BackendKind kind) {
  const auto n = static_cast<std::size_t>(state.range(0));
  VectorMachine m = backend_machine(kind);
  const WordVec table = m.iota(n);
  const WordVec idx = random_keys(n, static_cast<Word>(n), 39);
  WordVec out;
  for (auto _ : state) {
    m.gather_into(out, table, idx);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_PrimGather, serial, BackendKind::kSerial)->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_PrimGather, simd, BackendKind::kSimd)->Arg(1 << 14);

void BM_PrimScatter(benchmark::State& state, BackendKind kind) {
  const auto n = static_cast<std::size_t>(state.range(0));
  VectorMachine m = backend_machine(kind);
  WordVec table(n, 0);
  const WordVec idx = random_keys(n, static_cast<Word>(n), 40);
  const WordVec vals = m.iota(n);
  const folvec::vm::ConflictWindow window(
      m, table, folvec::vm::WindowKind::kDataRace, "simd scatter microbench");
  for (auto _ : state) {
    m.scatter(table, idx, vals);
    benchmark::DoNotOptimize(table.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_PrimScatter, serial, BackendKind::kSerial)->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_PrimScatter, simd, BackendKind::kSimd)->Arg(1 << 14);

void BM_PrimScatterGatherEq(benchmark::State& state, BackendKind kind) {
  const auto n = static_cast<std::size_t>(state.range(0));
  VectorMachine m = backend_machine(kind);
  WordVec table(n, -1);
  const WordVec idx = random_keys(n, static_cast<Word>(n), 41);
  const WordVec labels = m.iota(n);
  const folvec::vm::ConflictWindow window(
      m, table, folvec::vm::WindowKind::kDataRace, "simd sge microbench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.scatter_gather_eq(table, idx, labels));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_PrimScatterGatherEq, serial, BackendKind::kSerial)
    ->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_PrimScatterGatherEq, simd, BackendKind::kSimd)
    ->Arg(1 << 14);

void BM_PrimCompress(benchmark::State& state, BackendKind kind) {
  const auto n = static_cast<std::size_t>(state.range(0));
  VectorMachine m = backend_machine(kind);
  const WordVec v = m.iota(n);
  const auto mask_words = random_keys(n, 2, 42);
  folvec::vm::Mask mask(n);
  for (std::size_t i = 0; i < n; ++i) {
    mask[i] = static_cast<std::uint8_t>(mask_words[i]);
  }
  WordVec out;
  for (auto _ : state) {
    m.compress_into(out, v, mask);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_PrimCompress, serial, BackendKind::kSerial)->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_PrimCompress, simd, BackendKind::kSimd)->Arg(1 << 14);

void BM_PrimReduceSum(benchmark::State& state, BackendKind kind) {
  const auto n = static_cast<std::size_t>(state.range(0));
  VectorMachine m = backend_machine(kind);
  const WordVec v = random_keys(n, 1 << 20, 43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.reduce_sum(v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_PrimReduceSum, serial, BackendKind::kSerial)
    ->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_PrimReduceSum, simd, BackendKind::kSimd)->Arg(1 << 14);

void BM_Fol1UniqueLanes(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  WordVec targets(n);
  for (std::size_t i = 0; i < n; ++i) targets[i] = static_cast<Word>(i);
  WordVec work(n, 0);
  for (auto _ : state) {
    VectorMachine m;
    benchmark::DoNotOptimize(folvec::fol::fol1_decompose(m, targets, work));
  }
}
BENCHMARK(BM_Fol1UniqueLanes)->Arg(1 << 10)->Arg(1 << 14);

void BM_Fol1AllDuplicates(benchmark::State& state) {
  // The Theorem 6 worst case: quadratic in the lane count.
  const auto n = static_cast<std::size_t>(state.range(0));
  const WordVec targets(n, 0);
  WordVec work(1, 0);
  for (auto _ : state) {
    VectorMachine m;
    benchmark::DoNotOptimize(folvec::fol::fol1_decompose(m, targets, work));
  }
}
BENCHMARK(BM_Fol1AllDuplicates)->Arg(1 << 8)->Arg(1 << 10);

void BM_MultiHashOpen(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto keys = random_unique_keys(size / 2, 1 << 30, 4);
  for (auto _ : state) {
    VectorMachine m;
    std::vector<Word> table(size, folvec::hashing::kUnentered);
    folvec::hashing::multi_hash_open_insert(
        m, table, keys, folvec::hashing::ProbeVariant::kKeyDependent);
    benchmark::DoNotOptimize(table.data());
  }
}
BENCHMARK(BM_MultiHashOpen)->Arg(521)->Arg(4099);

void BM_AddressCalcSortVector(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto data = random_keys(n, 1 << 20, 5);
  for (auto _ : state) {
    VectorMachine m;
    auto copy = data;
    folvec::sorting::address_calc_sort_vector(m, copy, 1 << 20);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_AddressCalcSortVector)->Arg(1 << 10)->Arg(1 << 14);

void BM_DistCountSortVector(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto data = random_keys(n, 1 << 16, 6);
  for (auto _ : state) {
    VectorMachine m;
    auto copy = data;
    folvec::sorting::dist_count_sort_vector(m, copy, 1 << 16);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_DistCountSortVector)->Arg(1 << 10)->Arg(1 << 14);

void BM_BstBulkInsert(benchmark::State& state) {
  const auto ni = static_cast<std::size_t>(state.range(0));
  const auto initial = random_keys(ni, 1 << 30, 7);
  const auto batch = random_keys(512, 1 << 30, 8);
  for (auto _ : state) {
    VectorMachine m;
    folvec::tree::Bst t(ni + 513);
    for (Word k : initial) t.insert_scalar(k);
    t.insert_bulk(m, batch);
    benchmark::DoNotOptimize(t.size());
  }
}
BENCHMARK(BM_BstBulkInsert)->Arg(128)->Arg(2048);

// ---- disabled-path overhead guard ------------------------------------------
//
// The telemetry hooks ship inside every VectorMachine op, so the substrate
// must stay free when nothing is installed. The pre-telemetry baseline is
// not measurable at runtime, but two of its properties are checkable:
//
//   * chime neutrality — telemetry never issues machine instructions, so
//     the modeled instruction/element totals must be bit-identical with and
//     without a registry+tracer+profiler installed (stronger than the 2%
//     budget);
//   * disabled-path cost — the run with nothing installed must not be
//     slower than the run that actually records (interleaved min-of-k
//     walls, 25% slack to absorb shared-host noise), which bounds the
//     disabled hooks at "no costlier than the enabled ones", i.e. one
//     relaxed atomic load per record site.
//
// Set FOLVEC_SKIP_OVERHEAD_GUARD=1 to skip the wall check (sanitizer or
// emulated hosts, where timing is meaningless).

struct GuardSample {
  std::uint64_t instructions = 0;
  std::uint64_t elements = 0;
  double wall_seconds = 0;
};

GuardSample guard_workload() {
  const auto t0 = std::chrono::steady_clock::now();
  VectorMachine m;
  const WordVec keys = random_unique_keys(2048, 1 << 30, 99);
  std::vector<Word> table(4099, folvec::hashing::kUnentered);
  folvec::hashing::multi_hash_open_insert(
      m, table, keys, folvec::hashing::ProbeVariant::kKeyDependent);
  const WordVec targets = random_keys(1 << 14, 1 << 12, 17);
  WordVec work(std::size_t{1} << 12, 0);
  benchmark::DoNotOptimize(folvec::fol::fol1_decompose(m, targets, work));
  GuardSample s;
  s.instructions = m.cost().total_instructions();
  s.elements = m.cost().total_elements();
  s.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return s;
}

GuardSample run_overhead_guard() {
  constexpr int kReps = 7;
  guard_workload();  // warmup: page in code and key material

  // Interleave the disabled and enabled reps so ambient host load (CI
  // neighbors, background builds) drifts both measurements alike instead
  // of landing on one side of the comparison.
  folvec::telemetry::MetricsRegistry registry;
  folvec::telemetry::SpanTracer tracer;
  folvec::telemetry::Profiler profiler;
  GuardSample off;
  GuardSample on;
  for (int i = 0; i < kReps; ++i) {
    const GuardSample s = guard_workload();
    GuardSample t;
    {
      const folvec::telemetry::ScopedMetrics sm(registry);
      const folvec::telemetry::ScopedTracer st(tracer);
      const folvec::telemetry::ScopedProfiler sp(profiler);
      t = guard_workload();
    }
    if (i == 0) {
      off = s;
      on = t;
    } else {
      FOLVEC_CHECK(s.instructions == off.instructions &&
                       s.elements == off.elements,
                   "guard workload must be chime-deterministic across runs");
      off.wall_seconds = std::min(off.wall_seconds, s.wall_seconds);
      on.wall_seconds = std::min(on.wall_seconds, t.wall_seconds);
    }
    FOLVEC_CHECK(t.instructions == off.instructions &&
                     t.elements == off.elements,
                 "telemetry must not perturb the modeled instruction stream");
  }

  const auto skip_env = folvec::env_value("FOLVEC_SKIP_OVERHEAD_GUARD");
  if (!(skip_env && folvec::env_flag(*skip_env))) {
    FOLVEC_CHECK(off.wall_seconds <= on.wall_seconds * 1.25,
                 "disabled-path telemetry hooks cost more than the enabled "
                 "path: the no-registry fast path has regressed");
  }
  off.wall_seconds = on.wall_seconds > 0 ? off.wall_seconds / on.wall_seconds
                                         : 0;  // report the ratio
  return off;
}

// ---- fused-kernel chime accounting -----------------------------------------
//
// A fixed FOL1 workload (2^14 lanes, rare sharing, fixed seed) run twice:
// fused (scatter_gather_eq + partition) and unfused (the reference chains,
// MachineConfig::fuse = false). The modeled instruction/element totals are
// fully deterministic, so they land in the report notes where the CI
// chime-regression job diffs them against committed golden ceilings —
// google-benchmark's adaptive iteration counts make the timing numbers
// useless as goldens, but these are not timing numbers.

struct FusedCutSample {
  std::uint64_t fused_instructions = 0;
  std::uint64_t fused_elements = 0;
  std::uint64_t unfused_instructions = 0;
  std::uint64_t unfused_elements = 0;
  double chime_cut = 0;  // 1 - fused_us/unfused_us under the S-810 table
};

FusedCutSample run_fused_cut_probe() {
  const folvec::vm::CostParams params = folvec::vm::CostParams::s810_like();
  const std::size_t n = std::size_t{1} << 14;
  const WordVec targets = random_keys(n, static_cast<Word>(4 * n), 23);
  double us[2] = {0, 0};
  FusedCutSample s;
  for (const bool fuse : {true, false}) {
    folvec::vm::MachineConfig cfg;
    cfg.fuse = fuse;
    VectorMachine m(cfg);
    WordVec work(4 * n, 0);
    benchmark::DoNotOptimize(folvec::fol::fol1_decompose(m, targets, work));
    if (fuse) {
      s.fused_instructions = m.cost().total_instructions();
      s.fused_elements = m.cost().total_elements();
      us[0] = m.cost().microseconds(params);
    } else {
      s.unfused_instructions = m.cost().total_instructions();
      s.unfused_elements = m.cost().total_elements();
      us[1] = m.cost().microseconds(params);
    }
  }
  FOLVEC_CHECK(us[0] < us[1],
               "fused FOL1 must price below the unfused composition");
  s.chime_cut = 1.0 - us[0] / us[1];
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const GuardSample guard = run_overhead_guard();
  const FusedCutSample fused = run_fused_cut_probe();

  folvec::bench::BenchReport report("micro_vm");
  report.config("guard_reps", 7);
  report.config("simd_level",
                folvec::vm::simd_level_name(folvec::vm::simd_resolve_level(
                    folvec::vm::MachineConfig::simd_level_default())));
  report.note("guard_chime_instructions", guard.instructions);
  report.note("guard_chime_elements", guard.elements);
  report.note("guard_disabled_over_enabled_wall", guard.wall_seconds);
  report.note("fused_fol1_chime_instructions", fused.fused_instructions);
  report.note("fused_fol1_chime_elements", fused.fused_elements);
  report.note("unfused_fol1_chime_instructions", fused.unfused_instructions);
  report.note("unfused_fol1_chime_elements", fused.unfused_elements);
  report.note("fol1_fused_chime_cut", fused.chime_cut);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
