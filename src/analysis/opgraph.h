// The recorded op-graph IR: an SSA-ish dataflow graph of one machine run.
//
// Every VectorMachine primitive the analyzer observes becomes one OpNode;
// the node's index is its SSA value id (the op IS its result). def/use edges
// are the `inputs` list: each entry names the node that produced an operand
// vector/mask, with kSource nodes materialized lazily for values the
// recorder never saw defined (host-built inputs). Audited tables are not
// SSA values — scatters mutate them in place — so memory ops carry a
// `region` id instead, and window open/close, buffer-release and
// retire-work events are recorded as nodes in program order, which is
// exactly what the offline replay (verifier.h) needs to reconstruct the
// clobber state machine.
//
// The graph is the IR contract for tooling: folvec_lint serializes it with
// to_json() ("folvec-opgraph-v1", schema documented in docs/analysis.md)
// and the static verifier replays either the in-memory or the re-parsed
// form. 64-bit scalar payloads (s0/s1, interval endpoints) are serialized
// as strings — JSON numbers are doubles and must round-trip exactly.
//
// ROADMAP item 5 (operation fusion) consumes this same graph: def/use
// chains of elementwise nodes are precisely the fusible pipelines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/facts.h"
#include "analysis/verdict.h"

namespace folvec::analysis {

enum class Opcode : std::uint8_t {
  kSource = 0,    ///< a value first seen as an operand (no recorded producer)
  kObserveRange,  ///< measured min/max annotation (Analyzer::observe_range)
  kIota,
  kSplat,
  kCopy,
  kReverse,
  kAdd,
  kSub,
  kMul,
  kAddScalar,
  kMulScalar,
  kDivScalar,
  kModScalar,
  kAndScalar,
  kOrScalar,
  kShlScalar,
  kShrScalar,
  kNegate,
  kCmpEq,
  kCmpNe,
  kCmpLe,
  kCmpLt,
  kCmpEqScalar,
  kCmpNeScalar,
  kCmpLeScalar,
  kCmpLtScalar,
  kCmpGeScalar,
  kMaskAnd,
  kMaskOr,
  kMaskNot,
  kCountTrue,
  kReduceSum,
  kReduceMin,
  kReduceMax,
  kCompress,
  kPartitionKept,
  kPartitionRejected,
  kSelect,
  kFromMask,
  kLoad,
  kLoadStrided,
  kStore,
  kStoreStrided,
  kFill,
  kScalarStore,
  kGather,
  kScatter,
  kScatterOrdered,
  kScatterGatherEq,
  kWindowOpen,
  kWindowClose,
  kBufferRelease,
  kRetireWork,
};
inline constexpr std::size_t kOpcodeCount =
    static_cast<std::size_t>(Opcode::kRetireWork) + 1;

const char* opcode_name(Opcode op);

/// True for the list-vector memory ops the verifier rules on.
inline bool opcode_checkable(Opcode op) {
  return op == Opcode::kGather || op == Opcode::kScatter ||
         op == Opcode::kScatterOrdered || op == Opcode::kScatterGatherEq;
}

/// True for the scatter-class subset (what audit elision targets first).
inline bool opcode_scatter_class(Opcode op) {
  return op == Opcode::kScatter || op == Opcode::kScatterOrdered ||
         op == Opcode::kScatterGatherEq;
}

inline constexpr std::uint32_t kNoNode = ~std::uint32_t{0};
inline constexpr std::uint32_t kNoRegion = ~std::uint32_t{0};

struct OpNode {
  Opcode op = Opcode::kSource;
  /// def/use edges: producer node ids of the operand values, in operand
  /// order (memory ops: idx, then vals, then mask).
  std::vector<std::uint32_t> inputs;
  /// Op-specific extra refs: kObserveRange names the annotated value;
  /// kBufferRelease lists values whose storage only PARTIALLY overlaps the
  /// released range (inputs carries the fully-dead ones).
  std::vector<std::uint32_t> aux;
  std::size_t lanes = 0;
  /// Scalar payloads: the scalar operand of *_scalar ops; iota's
  /// (start, step); kObserveRange's measured (min, max).
  Word s0 = 0;
  Word s1 = 0;
  /// Memory ops: the audited table's region and element count.
  std::uint32_t region = kNoRegion;
  std::size_t table_size = 0;
  bool masked = false;
  bool ordered = false;
  bool elided = false;  ///< this op's ScatterCheck work was elided
  /// Window context at issue (kWindowOpen nodes: the opened kind).
  WindowCtx window = WindowCtx::kNone;
  /// lang/ source line (Expr::line) active at issue; 0 = unknown.
  std::size_t line = 0;
  /// Facts of the op's vector output (meaningless for pure effects).
  LaneFacts facts;
  /// Verdicts (checkable memory ops only; vacuously safe otherwise).
  OpVerdicts verdicts;
};

struct OpGraph {
  std::vector<OpNode> nodes;
  /// Element count per table region (grows if a region is later seen
  /// larger; regions are identified by table base address at record time).
  std::vector<std::size_t> region_sizes;

  std::uint32_t add(OpNode n) {
    nodes.push_back(std::move(n));
    return static_cast<std::uint32_t>(nodes.size() - 1);
  }

  /// Serializes as "folvec-opgraph-v1" (see docs/analysis.md).
  std::string to_json(int indent = -1) const;

  /// Parses a to_json() document; throws PreconditionError on malformed or
  /// wrong-schema input.
  static OpGraph from_json(const std::string& text);
};

}  // namespace folvec::analysis
