// Tests for FOL*: tuple decomposition across L index vectors, the
// deadlock-avoidance scalar rescue, forced singletons for self-conflicting
// tuples, and property sweeps.
#include "fol/fol_star.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "support/prng.h"

namespace folvec::fol {
namespace {

using vm::MachineConfig;
using vm::ScatterOrder;
using vm::VectorMachine;
using vm::Word;
using vm::WordVec;

StarDecomposition decompose(const std::vector<WordVec>& lanes,
                            ScatterOrder order = ScatterOrder::kForward,
                            std::uint64_t shuffle_seed = 1) {
  MachineConfig cfg;
  cfg.scatter_order = order;
  cfg.shuffle_seed = shuffle_seed;
  VectorMachine m(cfg);
  Word max_index = 0;
  for (const auto& v : lanes) {
    for (Word x : v) max_index = std::max(max_index, x);
  }
  WordVec work(static_cast<std::size_t>(max_index) + 1, 0);
  return fol_star_decompose(m, lanes, work);
}

/// Checks the FOL* output conditions: disjoint cover of tuple positions and
/// no storage area addressed twice within a set (across all lanes).
void expect_valid(const StarDecomposition& d,
                  const std::vector<WordVec>& lanes) {
  const std::size_t n = lanes.empty() ? 0 : lanes[0].size();
  std::vector<char> seen(n, 0);
  std::size_t total = 0;
  for (std::size_t j = 0; j < d.sets.size(); ++j) {
    const auto& set = d.sets[j];
    std::set<Word> areas;
    for (std::size_t pos : set) {
      ASSERT_LT(pos, n);
      EXPECT_FALSE(seen[pos]) << "tuple " << pos << " assigned twice";
      seen[pos] = 1;
      ++total;
      // Singleton sets are allowed to self-conflict (they run alone).
      if (set.size() > 1) {
        for (const auto& lane : lanes) {
          EXPECT_TRUE(areas.insert(lane[pos]).second)
              << "area " << lane[pos] << " contested within set " << j;
        }
      }
    }
  }
  EXPECT_EQ(total, n) << "not every tuple was assigned";
}

TEST(FolStarTest, EmptyInputYieldsNoSets) {
  const std::vector<WordVec> lanes{WordVec{}, WordVec{}};
  EXPECT_EQ(decompose(lanes).rounds(), 0u);
}

TEST(FolStarTest, RequiresAtLeastOneLane) {
  VectorMachine m;
  WordVec work(1, 0);
  const std::vector<WordVec> lanes;
  EXPECT_THROW(fol_star_decompose(m, lanes, work), PreconditionError);
}

TEST(FolStarTest, RequiresEqualLaneLengths) {
  VectorMachine m;
  WordVec work(8, 0);
  const std::vector<WordVec> lanes{WordVec{1, 2}, WordVec{3}};
  EXPECT_THROW(fol_star_decompose(m, lanes, work), PreconditionError);
}

TEST(FolStarTest, DisjointTuplesFormOneSet) {
  const std::vector<WordVec> lanes{WordVec{0, 2, 4}, WordVec{1, 3, 5}};
  const StarDecomposition d = decompose(lanes);
  ASSERT_EQ(d.rounds(), 1u);
  EXPECT_EQ(d.sets[0].size(), 3u);
  expect_valid(d, lanes);
}

TEST(FolStarTest, SingleLaneBehavesLikeFol1) {
  const std::vector<WordVec> lanes{WordVec{7, 7, 3}};
  const StarDecomposition d = decompose(lanes);
  EXPECT_EQ(d.rounds(), 2u);
  expect_valid(d, lanes);
}

TEST(FolStarTest, ChainedRedexPatternSplits) {
  // The Figure 5 situation: tuples (n1,n3) and (n3,n5) share n3.
  const std::vector<WordVec> lanes{WordVec{1, 3}, WordVec{3, 5}};
  const StarDecomposition d = decompose(lanes);
  ASSERT_EQ(d.rounds(), 2u);
  EXPECT_EQ(d.sets[0].size(), 1u);
  EXPECT_EQ(d.sets[1].size(), 1u);
  expect_valid(d, lanes);
}

TEST(FolStarTest, MutualConflictIsRescuedByScalarWrite) {
  // <a,b> and <b,a>: a pure vector pass can deadlock (each tuple's labels
  // overwritten by the other); the scalar rewrite of the last tuple's
  // labels must rescue exactly one tuple per round.
  const std::vector<WordVec> lanes{WordVec{0, 1}, WordVec{1, 0}};
  const StarDecomposition d = decompose(lanes);
  ASSERT_EQ(d.rounds(), 2u);
  EXPECT_EQ(d.sets[0].size(), 1u);
  EXPECT_EQ(d.sets[1].size(), 1u);
  expect_valid(d, lanes);
  EXPECT_EQ(d.forced_singletons, 0u);
  // Round 1 rescues the contested last tuple; round 2's lone leftover is
  // uncontested and must NOT be charged as a rescue.
  EXPECT_EQ(d.scalar_rescues, 1u);
}

TEST(FolStarTest, RescueCountedEvenWhenOtherTuplesSurviveAlongside) {
  // Regression: the old accounting only counted a rescue when the rescued
  // tuple was the round's *sole* survivor. Here round 1's survivors are
  // {T2, T3}: T3 = <2,5> is contested (shares area 2 with T1) and owes its
  // survival to the scalar re-store, so it must count even though T2
  // survived alongside. Round 2 = {T0, T1} is conflict-free (no rescue).
  const std::vector<WordVec> lanes{WordVec{0, 2, 0, 2}, WordVec{1, 3, 4, 5}};
  const StarDecomposition d =
      decompose(lanes, vm::ScatterOrder::kForward);
  expect_valid(d, lanes);
  ASSERT_EQ(d.rounds(), 2u);
  EXPECT_EQ(d.sets[0], (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(d.sets[1], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(d.scalar_rescues, 1u);
  EXPECT_EQ(d.forced_singletons, 0u);
}

TEST(FolStarTest, UncontestedSoleSurvivorIsNotChargedAsRescue) {
  // Regression (the flip side): the old accounting charged a rescue
  // whenever a sole survivor happened to be the last tuple, even if nothing
  // contested its addresses. Round 1 survivors are {T1, T2}; round 2's
  // leftover T0 = <0,1> survives alone — but area 0 is no longer contested
  // by anyone, so scalar_rescues must stay 0.
  const std::vector<WordVec> lanes{WordVec{0, 0, 5}, WordVec{1, 2, 6}};
  const StarDecomposition d =
      decompose(lanes, vm::ScatterOrder::kForward);
  expect_valid(d, lanes);
  ASSERT_EQ(d.rounds(), 2u);
  EXPECT_EQ(d.sets[0], (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(d.sets[1], (std::vector<std::size_t>{0}));
  EXPECT_EQ(d.scalar_rescues, 0u);
  EXPECT_EQ(d.forced_singletons, 0u);
}

TEST(FolStarTest, DisjointTuplesReportNoRescues) {
  const std::vector<WordVec> lanes{WordVec{0, 2}, WordVec{1, 3}};
  const StarDecomposition d = decompose(lanes);
  expect_valid(d, lanes);
  ASSERT_EQ(d.rounds(), 1u);
  EXPECT_EQ(d.scalar_rescues, 0u);
  EXPECT_EQ(d.forced_singletons, 0u);
}

TEST(FolStarTest, SelfConflictingTupleBecomesForcedSingleton) {
  // A tuple addressing one area through both lanes can never pass the
  // label check; it must be forced out as a singleton, not spin forever.
  const std::vector<WordVec> lanes{WordVec{4}, WordVec{4}};
  const StarDecomposition d = decompose(lanes);
  ASSERT_EQ(d.rounds(), 1u);
  EXPECT_EQ(d.sets[0], (std::vector<std::size_t>{0}));
  EXPECT_EQ(d.forced_singletons, 1u);
}

TEST(FolStarTest, MixedSelfAndCrossConflicts) {
  const std::vector<WordVec> lanes{WordVec{0, 2, 2}, WordVec{0, 3, 3}};
  // Tuple 0 self-conflicts; tuples 1 and 2 are identical (cross-conflict).
  const StarDecomposition d = decompose(lanes);
  expect_valid(d, lanes);
  EXPECT_GE(d.rounds(), 2u);
}

TEST(FolStarTest, ThreeLanes) {
  const std::vector<WordVec> lanes{WordVec{0, 1}, WordVec{2, 3},
                                   WordVec{4, 2}};
  // Tuples share area 2 across lanes 1 and 2.
  const StarDecomposition d = decompose(lanes);
  ASSERT_EQ(d.rounds(), 2u);
  expect_valid(d, lanes);
}

TEST(FolStarTest, MaxRoundsOneReturnsOnlyFirstSet) {
  // Chained tuples: full decomposition needs many rounds; max_rounds=1 must
  // return just the first conflict-free set and report the rest unassigned.
  VectorMachine m;
  WordVec v1;
  WordVec v2;
  for (Word i = 0; i < 10; ++i) {
    v1.push_back(i);
    v2.push_back(i + 1);
  }
  WordVec work(12, 0);
  const std::vector<WordVec> lanes{v1, v2};
  const StarDecomposition d = fol_star_decompose(m, lanes, work, 1);
  ASSERT_EQ(d.rounds(), 1u);
  EXPECT_EQ(d.sets[0].size() + d.unassigned, 10u);
  EXPECT_GT(d.unassigned, 0u);
  // The returned set must still be conflict-free across both lanes.
  std::set<Word> areas;
  for (std::size_t pos : d.sets[0]) {
    EXPECT_TRUE(areas.insert(v1[pos]).second);
    EXPECT_TRUE(areas.insert(v2[pos]).second);
  }
}

TEST(FolStarTest, MaxRoundsZeroAssignsEverything) {
  VectorMachine m;
  WordVec work(4, 0);
  const std::vector<WordVec> lanes{WordVec{0, 0, 0}};
  const StarDecomposition d = fol_star_decompose(m, lanes, work, 0);
  EXPECT_EQ(d.rounds(), 3u);
  EXPECT_EQ(d.unassigned, 0u);
}

// ---- property sweeps -------------------------------------------------------

// (tuples, lanes L, distinct areas, scatter order, seed)
using SweepParam =
    std::tuple<std::size_t, std::size_t, std::size_t, ScatterOrder, int>;

class FolStarPropertyTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(FolStarPropertyTest, DecompositionIsValidOnRandomWorkloads) {
  const auto [n, l, distinct, order, seed] = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 104729 + n * 31 + l);
  std::vector<WordVec> lanes(l, WordVec(n));
  for (auto& lane : lanes) {
    for (auto& x : lane) {
      x = rng.in_range(0, static_cast<Word>(distinct) - 1);
    }
  }
  const StarDecomposition d =
      decompose(lanes, order, static_cast<std::uint64_t>(seed));
  expect_valid(d, lanes);
  // Termination sanity: every round assigns at least one tuple.
  EXPECT_LE(d.rounds(), n);
}

INSTANTIATE_TEST_SUITE_P(
    RandomTuples, FolStarPropertyTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 9, 64),
                       ::testing::Values<std::size_t>(1, 2, 3, 5),
                       ::testing::Values<std::size_t>(2, 17, 128),
                       ::testing::Values(ScatterOrder::kForward,
                                         ScatterOrder::kShuffled),
                       ::testing::Values(1, 2)));

}  // namespace
}  // namespace folvec::fol
