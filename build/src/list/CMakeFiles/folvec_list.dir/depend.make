# Empty dependencies file for folvec_list.
# This may be replaced when dependencies are built.
