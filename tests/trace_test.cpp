// Tests for the instruction trace facility, including pinning the exact
// instruction sequence FOL1 issues for a duplicate-free input — a
// regression guard against accidental extra passes.
#include "vm/trace.h"

#include <gtest/gtest.h>

#include "fol/fol1.h"
#include "vm/machine.h"

namespace folvec::vm {
namespace {

TEST(TraceSinkTest, RecordsAndCounts) {
  TraceSink t;
  t.record(OpClass::kVectorGather, 100);
  t.record(OpClass::kVectorGather, 50);
  t.record(OpClass::kVectorArith, 10);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.count(OpClass::kVectorGather), 2u);
  EXPECT_EQ(t.count(OpClass::kVectorStore), 0u);
  EXPECT_EQ(t.max_length(OpClass::kVectorGather), 100u);
  EXPECT_EQ(t.max_length(OpClass::kVectorStore), 0u);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
}

TEST(TraceSinkTest, ToStringRendersAndTruncates) {
  TraceSink t;
  for (int i = 0; i < 5; ++i) t.record(OpClass::kVectorArith, 8);
  const std::string full = t.to_string();
  EXPECT_NE(full.find("v.arith[8]"), std::string::npos);
  const std::string cut = t.to_string(2);
  EXPECT_NE(cut.find("(+3 more)"), std::string::npos);
}

TEST(TraceSinkTest, CapacityBoundsStorageButNotAggregates) {
  TraceSink t(3);
  EXPECT_EQ(t.capacity(), 3u);
  for (std::size_t i = 1; i <= 10; ++i) {
    t.record(OpClass::kVectorGather, i * 10);
  }
  // Storage is truncated at the capacity...
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.entries().size(), 3u);
  EXPECT_EQ(t.dropped(), 7u);
  EXPECT_EQ(t.total_recorded(), 10u);
  // ...but the per-class aggregates cover every recorded instruction,
  // including the max length 100 that only a dropped entry carried.
  EXPECT_EQ(t.count(OpClass::kVectorGather), 10u);
  EXPECT_EQ(t.max_length(OpClass::kVectorGather), 100u);
}

TEST(TraceSinkTest, ToStringNotesDroppedEntries) {
  TraceSink t(2);
  for (int i = 0; i < 5; ++i) t.record(OpClass::kVectorArith, 8);
  // 2 stored, 3 dropped: all 3 unshown instructions are announced.
  EXPECT_NE(t.to_string().find("(+3 more)"), std::string::npos);
}

TEST(TraceSinkTest, ClearResetsDroppedAndAggregates) {
  TraceSink t(1);
  t.record(OpClass::kVectorArith, 8);
  t.record(OpClass::kVectorArith, 16);
  ASSERT_EQ(t.dropped(), 1u);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_EQ(t.total_recorded(), 0u);
  EXPECT_EQ(t.count(OpClass::kVectorArith), 0u);
  EXPECT_EQ(t.max_length(OpClass::kVectorArith), 0u);
  // Capacity survives clear(): the sink can refill up to the same bound.
  t.record(OpClass::kVectorArith, 4);
  t.record(OpClass::kVectorArith, 4);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.dropped(), 1u);
}

TEST(MachineTraceTest, DetachedByDefault) {
  VectorMachine m;
  m.iota(4);  // must not crash without a sink
}

TEST(MachineTraceTest, AttachedSinkSeesEveryInstruction) {
  VectorMachine m;
  TraceSink t;
  m.attach_trace(&t);
  const WordVec a = m.iota(8);
  const WordVec b = m.add_scalar(a, 1);
  m.eq(a, b);
  m.scalar_mem(2);
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t.entries()[0], (TraceEntry{OpClass::kVectorArith, 8}));
  EXPECT_EQ(t.entries()[2], (TraceEntry{OpClass::kVectorCompare, 8}));
  EXPECT_EQ(t.entries()[3], (TraceEntry{OpClass::kScalarMem, 2}));
  m.attach_trace(nullptr);
  m.iota(3);
  EXPECT_EQ(t.size(), 4u);  // detached: no further entries
}

TEST(MachineTraceTest, Fol1DuplicateFreeInstructionMix) {
  // A duplicate-free fused FOL1 run is one round: copy + iota +
  // scatter_gather_eq + count + 2 partition (positions and indices).
  // Force fusion on so a FOLVEC_FUSE=0 environment can't flip the mix.
  MachineConfig cfg;
  cfg.fuse = true;
  VectorMachine m(cfg);
  TraceSink t;
  m.attach_trace(&t);
  const WordVec v{3, 1, 4, 0, 2};
  WordVec work(5, 0);
  folvec::fol::fol1_decompose(m, v, work);
  EXPECT_EQ(t.count(OpClass::kVectorScatterGatherEq), 1u);
  EXPECT_EQ(t.count(OpClass::kVectorReduce), 1u);
  EXPECT_EQ(t.count(OpClass::kVectorPartition), 2u);
  EXPECT_EQ(t.count(OpClass::kVectorScatter), 0u);
  EXPECT_EQ(t.count(OpClass::kVectorGather), 0u);
  EXPECT_EQ(t.count(OpClass::kVectorCompare), 0u);
  EXPECT_EQ(t.count(OpClass::kVectorCompress), 0u);
  EXPECT_EQ(t.max_length(OpClass::kVectorScatterGatherEq), 5u);
}

TEST(MachineTraceTest, Fol1UnfusedInstructionMix) {
  // With fusion off the same run decomposes into the reference chain:
  // scatter + gather + compare + count, then each partition becomes
  // compress + mask_not + compress.
  MachineConfig cfg;
  cfg.fuse = false;
  VectorMachine m(cfg);
  TraceSink t;
  m.attach_trace(&t);
  const WordVec v{3, 1, 4, 0, 2};
  WordVec work(5, 0);
  folvec::fol::fol1_decompose(m, v, work);
  EXPECT_EQ(t.count(OpClass::kVectorScatterGatherEq), 0u);
  EXPECT_EQ(t.count(OpClass::kVectorPartition), 0u);
  EXPECT_EQ(t.count(OpClass::kVectorScatter), 1u);
  EXPECT_EQ(t.count(OpClass::kVectorGather), 1u);
  EXPECT_EQ(t.count(OpClass::kVectorCompare), 1u);
  EXPECT_EQ(t.count(OpClass::kVectorCompress), 4u);
  EXPECT_EQ(t.max_length(OpClass::kVectorScatter), 5u);
}

}  // namespace
}  // namespace folvec::vm
