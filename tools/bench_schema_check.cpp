// bench_schema_check: validates machine-readable bench reports.
//
// Every bench binary writes a `BENCH_<name>.json` next to its stdout tables
// (schema "folvec-bench-report-v2", emitted by bench_harness/report.cpp).
// CI runs one bench per family and then feeds the resulting files through
// this checker, so a field rename, a malformed document, or a table whose
// rows drifted from its headers fails the build instead of silently
// producing artifacts nobody can load.
//
// Usage: bench_schema_check FILE...
// Exits 0 iff every file parses and conforms; prints one line per problem.
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "support/json.h"

namespace {

using folvec::JsonValue;

/// Collects problems for one file; empty means the file conforms.
class Checker {
 public:
  explicit Checker(std::string path) : path_(std::move(path)) {}

  void fail(const std::string& what) { problems_.push_back(what); }

  /// Fetches `parent.key`, recording a problem when absent.
  const JsonValue* require(const JsonValue& parent, const std::string& key,
                           const std::string& where) {
    const JsonValue* v = parent.find(key);
    if (v == nullptr) fail("missing key \"" + key + "\" in " + where);
    return v;
  }

  const JsonValue* require_object(const JsonValue& parent,
                                  const std::string& key,
                                  const std::string& where) {
    const JsonValue* v = require(parent, key, where);
    if (v != nullptr && !v->is_object()) {
      fail("\"" + key + "\" in " + where + " must be an object");
      return nullptr;
    }
    return v;
  }

  void require_uint(const JsonValue& parent, const std::string& key,
                    const std::string& where) {
    const JsonValue* v = require(parent, key, where);
    if (v == nullptr) return;
    if (!v->is_number() || v->as_number() < 0) {
      fail("\"" + key + "\" in " + where + " must be a non-negative number");
    }
  }

  void check_table(const JsonValue& table, const std::string& where) {
    if (!table.is_object()) {
      fail(where + " must be an object");
      return;
    }
    const JsonValue* title = require(table, "title", where);
    if (title != nullptr && !title->is_string()) {
      fail(where + ".title must be a string");
    }
    const JsonValue* headers = require(table, "headers", where);
    std::size_t width = 0;
    if (headers != nullptr) {
      if (!headers->is_array() || headers->as_array().empty()) {
        fail(where + ".headers must be a non-empty array");
      } else {
        width = headers->as_array().size();
        for (const JsonValue& h : headers->as_array()) {
          if (!h.is_string()) fail(where + ".headers must hold strings");
        }
      }
    }
    const JsonValue* rows = require(table, "rows", where);
    if (rows == nullptr) return;
    if (!rows->is_array()) {
      fail(where + ".rows must be an array");
      return;
    }
    for (std::size_t r = 0; r < rows->as_array().size(); ++r) {
      const JsonValue& row = rows->as_array()[r];
      const std::string row_where =
          where + ".rows[" + std::to_string(r) + "]";
      if (!row.is_array()) {
        fail(row_where + " must be an array");
        continue;
      }
      if (width != 0 && row.as_array().size() != width) {
        fail(row_where + " has " + std::to_string(row.as_array().size()) +
             " cells, headers declare " + std::to_string(width));
      }
      for (const JsonValue& cell : row.as_array()) {
        if (!cell.is_string()) fail(row_where + " must hold strings");
      }
    }
  }

  void check_backend(const JsonValue& backend) {
    const JsonValue* name = require(backend, "name", "backend");
    if (name != nullptr &&
        (!name->is_string() ||
         (name->as_string() != "serial" && name->as_string() != "parallel"))) {
      fail("backend.name must be \"serial\" or \"parallel\"");
    }
    const JsonValue* workers = require(backend, "workers", "backend");
    if (workers != nullptr &&
        (!workers->is_number() || workers->as_number() < 1)) {
      fail("backend.workers must be a number >= 1");
    }
    const JsonValue* requested = require(backend, "requested", "backend");
    if (requested != nullptr && !requested->is_string()) {
      fail("backend.requested must be a string");
    }
    const JsonValue* pinned = require(backend, "pinned", "backend");
    if (pinned != nullptr && !pinned->is_bool()) {
      fail("backend.pinned must be a boolean");
    }
    const JsonValue* reason = require(backend, "pin_reason", "backend");
    if (pinned != nullptr && pinned->is_bool() && reason != nullptr) {
      // The reason travels with the pin: null exactly when not pinned.
      if (pinned->as_bool() && !reason->is_string()) {
        fail("backend.pin_reason must name a reason when pinned");
      }
      if (!pinned->as_bool() && !reason->is_null()) {
        fail("backend.pin_reason must be null when not pinned");
      }
    }
  }

  void require_number(const JsonValue& parent, const std::string& key,
                      const std::string& where) {
    const JsonValue* v = require(parent, key, where);
    if (v != nullptr && !v->is_number()) {
      fail("\"" + key + "\" in " + where + " must be a number");
    }
  }

  /// The v2 model-fidelity section: a fit + percentiles per op class seen
  /// by the session profiler, plus the worst-residual ranking. `ops` may
  /// legitimately be empty (a bench that never ran a machine op).
  void check_calibration(const JsonValue& calibration) {
    const JsonValue* model = require(calibration, "model", "calibration");
    if (model != nullptr && !model->is_string()) {
      fail("calibration.model must be a string");
    }
    require_uint(calibration, "clock_hz", "calibration");
    const JsonValue* ops = require_object(calibration, "ops", "calibration");
    if (ops != nullptr) {
      for (const auto& [name, entry] : ops->as_object()) {
        const std::string where = "calibration.ops[\"" + name + "\"]";
        if (!entry.is_object()) {
          fail(where + " must be an object");
          continue;
        }
        require_uint(entry, "samples", where);
        require_uint(entry, "elements", where);
        // The fitted intercept/slope can be negative on noisy series; only
        // presence and numeric-ness are structural.
        require_number(entry, "a_ns", where);
        require_number(entry, "b_ns", where);
        const JsonValue* r2 = require(entry, "r2", where);
        if (r2 != nullptr &&
            (!r2->is_number() || r2->as_number() < 0.0 ||
             r2->as_number() > 1.0)) {
          fail(where + ".r2 must be a number in [0, 1]");
        }
        require_uint(entry, "rms_residual_ns", where);
        require_uint(entry, "wall_ns_p50", where);
        require_uint(entry, "wall_ns_p90", where);
        require_uint(entry, "wall_ns_p99", where);
      }
    }
    const JsonValue* worst =
        require(calibration, "worst_residual_ops", "calibration");
    if (worst != nullptr) {
      if (!worst->is_array()) {
        fail("calibration.worst_residual_ops must be an array");
      } else {
        for (const JsonValue& v : worst->as_array()) {
          if (!v.is_string()) {
            fail("calibration.worst_residual_ops must hold op-class names");
          } else if (ops != nullptr && ops->find(v.as_string()) == nullptr) {
            fail("calibration.worst_residual_ops names \"" + v.as_string() +
                 "\" which is absent from calibration.ops");
          }
        }
      }
    }
  }

  void check_metrics(const JsonValue& metrics) {
    for (const char* section :
         {"counters", "gauges", "histograms", "timings", "labels"}) {
      require_object(metrics, section, "metrics");
    }
    const JsonValue* counters = metrics.find("counters");
    if (counters != nullptr && counters->is_object()) {
      for (const auto& [key, value] : counters->as_object()) {
        if (!value.is_number() || value.as_number() < 0) {
          fail("metrics.counters[\"" + key +
               "\"] must be a non-negative number");
        }
      }
    }
  }

  /// An injected-fault run is not comparable with a clean one: any fault.*
  /// counter in the metrics requires the report to carry its FaultPlan
  /// (config.fault_spec / config.fault_seed, recorded by BenchReport) so
  /// report consumers can tell the two apart. One-directional on purpose —
  /// a declared plan whose sites never fired leaves no counters and is
  /// still a valid clean-looking run.
  void check_fault_provenance(const JsonValue& config,
                              const JsonValue& metrics) {
    const JsonValue* counters = metrics.find("counters");
    if (counters == nullptr || !counters->is_object()) return;
    std::string example;
    for (const auto& [key, value] : counters->as_object()) {
      if (key.rfind("fault.", 0) == 0) {
        example = key;
        break;
      }
    }
    if (example.empty()) return;
    const JsonValue* spec = config.find("fault_spec");
    if (spec == nullptr || !spec->is_string() || spec->as_string().empty()) {
      fail("metrics.counters[\"" + example +
           "\"] recorded but config.fault_spec is missing: injected-fault "
           "reports must carry their fault plan");
    }
    const JsonValue* seed = config.find("fault_seed");
    if (seed == nullptr || !seed->is_number()) {
      fail("metrics.counters[\"" + example +
           "\"] recorded but config.fault_seed is missing: injected-fault "
           "reports must carry their fault seed");
    }
  }

  void check_document(const JsonValue& doc) {
    if (!doc.is_object()) {
      fail("top level must be an object");
      return;
    }
    const JsonValue* schema = require(doc, "schema", "top level");
    if (schema != nullptr &&
        (!schema->is_string() ||
         schema->as_string() != "folvec-bench-report-v2")) {
      fail("schema must be the string \"folvec-bench-report-v2\"");
    }
    const JsonValue* bench = require(doc, "bench", "top level");
    if (bench != nullptr &&
        (!bench->is_string() || bench->as_string().empty())) {
      fail("bench must be a non-empty string");
    }
    const JsonValue* config = require_object(doc, "config", "top level");
    require_object(doc, "notes", "top level");

    if (const JsonValue* backend =
            require_object(doc, "backend", "top level")) {
      check_backend(*backend);
    }
    if (const JsonValue* chime = require_object(doc, "chime", "top level")) {
      require_uint(*chime, "instructions", "chime");
      require_uint(*chime, "elements", "chime");
    }
    if (const JsonValue* wall = require_object(doc, "wall", "top level")) {
      require_uint(*wall, "seconds", "wall");
    }
    if (const JsonValue* calibration =
            require_object(doc, "calibration", "top level")) {
      check_calibration(*calibration);
    }
    const JsonValue* tables = require(doc, "tables", "top level");
    if (tables != nullptr) {
      if (!tables->is_array()) {
        fail("tables must be an array");
      } else {
        for (std::size_t i = 0; i < tables->as_array().size(); ++i) {
          check_table(tables->as_array()[i],
                      "tables[" + std::to_string(i) + "]");
        }
      }
    }
    if (const JsonValue* metrics =
            require_object(doc, "metrics", "top level")) {
      check_metrics(*metrics);
      if (config != nullptr) check_fault_provenance(*config, *metrics);
    }
  }

  /// Reads, parses, and validates the file. Returns true on success.
  bool run() {
    std::ifstream in(path_);
    if (!in) {
      fail("cannot open file");
      return report();
    }
    std::stringstream buf;
    buf << in.rdbuf();
    try {
      check_document(JsonValue::parse(buf.str()));
    } catch (const std::exception& e) {
      fail(std::string("invalid JSON: ") + e.what());
    }
    return report();
  }

 private:
  bool report() const {
    if (problems_.empty()) {
      std::printf("ok      %s\n", path_.c_str());
      return true;
    }
    for (const std::string& p : problems_) {
      std::printf("FAIL    %s: %s\n", path_.c_str(), p.c_str());
    }
    return false;
  }

  std::string path_;
  std::vector<std::string> problems_;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s BENCH_report.json...\n"
                 "validates folvec-bench-report-v2 documents\n",
                 argv[0]);
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    if (!Checker(argv[i]).run()) ++failures;
  }
  if (failures > 0) {
    std::printf("%d of %d report(s) failed schema validation\n", failures,
                argc - 1);
    return 1;
  }
  return 0;
}
