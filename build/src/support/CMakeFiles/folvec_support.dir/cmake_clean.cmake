file(REMOVE_RECURSE
  "CMakeFiles/folvec_support.dir/table_printer.cpp.o"
  "CMakeFiles/folvec_support.dir/table_printer.cpp.o.d"
  "libfolvec_support.a"
  "libfolvec_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/folvec_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
