// Tests for distributivity expansion: semantic preservation (polynomial
// denotation), DAG sharing behaviour, scalar/vector agreement, and mixed
// associativity + distributivity pipelines.
#include "rewrite/distribute.h"

#include <gtest/gtest.h>

#include <tuple>

#include "rewrite/assoc_rewrite.h"
#include "rewrite/polynomial.h"
#include "support/prng.h"

namespace folvec::rewrite {
namespace {

using vm::MachineConfig;
using vm::ScatterOrder;
using vm::VectorMachine;
using vm::Word;

/// Builds a random term mixing adds and muls over `leaves` symbols.
Word build_mixed(TermArena& arena, std::size_t leaves, Xoshiro256& rng) {
  if (leaves == 1) {
    return arena.make_leaf(rng.in_range(0, 5));
  }
  const auto left_leaves =
      static_cast<std::size_t>(rng.in_range(1, static_cast<Word>(leaves - 1)));
  const Word l = build_mixed(arena, left_leaves, rng);
  const Word r = build_mixed(arena, leaves - left_leaves, rng);
  return rng.unit() < 0.5 ? arena.make_op(l, r) : arena.make_add(l, r);
}

TEST(SumOfProductsTest, Recognition) {
  TermArena a;
  const Word x = a.make_leaf(0);
  const Word y = a.make_leaf(1);
  const Word z = a.make_leaf(2);
  EXPECT_TRUE(is_sum_of_products(a, x));
  EXPECT_TRUE(is_sum_of_products(a, a.make_op(x, y)));
  EXPECT_TRUE(is_sum_of_products(a, a.make_add(a.make_op(x, y), z)));
  EXPECT_FALSE(is_sum_of_products(a, a.make_op(x, a.make_add(y, z))));
  EXPECT_FALSE(is_sum_of_products(a, a.make_op(a.make_add(x, y), z)));
  // An add nested deeper inside a product still disqualifies.
  const Word deep = a.make_op(x, a.make_op(y, a.make_add(x, z)));
  EXPECT_FALSE(is_sum_of_products(a, deep));
}

TEST(DistributeScalarTest, TextbookExample) {
  // a*(b+c) -> a*b + a*c
  TermArena a;
  const Word root = a.make_op(a.make_leaf(0), a.make_add(a.make_leaf(1),
                                                         a.make_leaf(2)));
  const Polynomial before = eval_polynomial(a, root);
  const DistributeStats stats = distribute_scalar(a, root);
  EXPECT_EQ(stats.rewrites, 1u);
  EXPECT_EQ(stats.allocated, 2u);
  EXPECT_TRUE(is_sum_of_products(a, root));
  EXPECT_EQ(eval_polynomial(a, root), before);
  EXPECT_EQ(a.kind(root), NodeKind::kAdd);
}

TEST(DistributeScalarTest, LeftAddOrientation) {
  // (a+b)*c -> a*c + b*c
  TermArena a;
  const Word root = a.make_op(a.make_add(a.make_leaf(0), a.make_leaf(1)),
                              a.make_leaf(2));
  const Polynomial before = eval_polynomial(a, root);
  distribute_scalar(a, root);
  EXPECT_EQ(eval_polynomial(a, root), before);
  // Orientation preserved: monomials are {0,2} and {1,2}.
  EXPECT_EQ(a.to_string(a.left(root)), "(s0*s2)");
  EXPECT_EQ(a.to_string(a.right(root)), "(s1*s2)");
}

TEST(DistributeScalarTest, ProductOfSumsSharesFactors) {
  // (a+b)*(c+d): the first rewrite shares the (a+b) subtree between the
  // two fresh products — Figure 3b sharing, observable via node count.
  TermArena a;
  const Word ab = a.make_add(a.make_leaf(0), a.make_leaf(1));
  const Word cd = a.make_add(a.make_leaf(2), a.make_leaf(3));
  const Word root = a.make_op(ab, cd);
  const Polynomial before = eval_polynomial(a, root);
  distribute_scalar(a, root);
  EXPECT_TRUE(is_sum_of_products(a, root));
  EXPECT_EQ(eval_polynomial(a, root), before);
  ASSERT_EQ(before.size(), 4u);  // ac + ad + bc + bd
}

TEST(DistributeScalarTest, AlreadyNormalIsNoop) {
  TermArena a;
  const Word root = a.make_add(a.make_op(a.make_leaf(0), a.make_leaf(1)),
                               a.make_leaf(2));
  const DistributeStats stats = distribute_scalar(a, root);
  EXPECT_EQ(stats.rewrites, 0u);
}

TEST(DistributeVectorTest, TextbookExample) {
  TermArena a;
  const Word root = a.make_op(a.make_leaf(0), a.make_add(a.make_leaf(1),
                                                         a.make_leaf(2)));
  const Polynomial before = eval_polynomial(a, root);
  VectorMachine m;
  const DistributeStats stats = distribute_vector(m, a, root);
  EXPECT_EQ(stats.rewrites, 1u);
  EXPECT_TRUE(is_sum_of_products(a, root));
  EXPECT_EQ(eval_polynomial(a, root), before);
}

TEST(DistributeVectorTest, LeafOnlyAndPureSumAreNoops) {
  TermArena a;
  const Word leaf = a.make_leaf(4);
  VectorMachine m;
  EXPECT_EQ(distribute_vector(m, a, leaf).rewrites, 0u);
  const Word sum = a.make_add(a.make_leaf(0), a.make_add(a.make_leaf(1),
                                                         a.make_leaf(2)));
  EXPECT_EQ(distribute_vector(m, a, sum).rewrites, 0u);
}

TEST(DistributeVectorTest, MatchesScalarSemantics) {
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    TermArena original;
    const Word root = build_mixed(original, 8, rng);
    const Polynomial denotation = eval_polynomial(original, root);

    TermArena scalar_arena = original;
    distribute_scalar(scalar_arena, root);
    TermArena vec_arena = original;
    VectorMachine m;
    distribute_vector(m, vec_arena, root);

    EXPECT_EQ(eval_polynomial(scalar_arena, root), denotation)
        << "trial " << trial;
    EXPECT_EQ(eval_polynomial(vec_arena, root), denotation)
        << "trial " << trial;
  }
}

TEST(DistributePipelineTest, ExpandThenNormalizeAssociativity) {
  // The classic compiler pipeline: distribute to sum-of-products, unshare
  // the resulting DAG back into a tree, then left-normalize both operators
  // with the (in-place, tree-only) associativity rewriter.
  TermArena a;
  Xoshiro256 rng(17);
  const Word root = build_mixed(a, 10, rng);
  const Polynomial denotation = eval_polynomial(a, root);
  VectorMachine m;
  distribute_vector(m, a, root);
  const Word tree_root = a.unshare(root);
  assoc_rewrite_vector(m, a, tree_root);
  EXPECT_TRUE(is_sum_of_products(a, tree_root));
  EXPECT_TRUE(a.is_left_deep(tree_root));
  EXPECT_EQ(eval_polynomial(a, tree_root), denotation);
}

TEST(DistributePipelineTest, InPlaceAssocOnSharedDagWouldBeUnsound) {
  // Control experiment documenting WHY unshare is required: running the
  // in-place associativity rewriter directly on a DAG with shared
  // subterms corrupts the denotation.
  TermArena a;
  Xoshiro256 rng(17);
  const Word root = build_mixed(a, 10, rng);
  const Polynomial denotation = eval_polynomial(a, root);
  VectorMachine m;
  distribute_vector(m, a, root);
  ASSERT_EQ(eval_polynomial(a, root), denotation);
  assoc_rewrite_vector(m, a, root);  // DAG: shared nodes rewritten in place
  EXPECT_NE(eval_polynomial(a, root), denotation)
      << "this seed is known to share subterms; if the rewrite preserved "
         "the denotation the control experiment no longer demonstrates "
         "anything";
}

// (leaves, scatter order, seed)
using DistSweep = std::tuple<std::size_t, ScatterOrder, int>;

class DistributePropertyTest : public ::testing::TestWithParam<DistSweep> {};

TEST_P(DistributePropertyTest, DenotationPreserved) {
  const auto [leaves, order, seed] = GetParam();
  TermArena a;
  Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 1009 + leaves);
  const Word root = build_mixed(a, leaves, rng);
  const Polynomial denotation = eval_polynomial(a, root);
  MachineConfig cfg;
  cfg.scatter_order = order;
  VectorMachine m(cfg);
  distribute_vector(m, a, root);
  EXPECT_TRUE(is_sum_of_products(a, root));
  EXPECT_EQ(eval_polynomial(a, root), denotation);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, DistributePropertyTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 5, 9, 12),
                       ::testing::Values(ScatterOrder::kForward,
                                         ScatterOrder::kShuffled),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace folvec::rewrite
