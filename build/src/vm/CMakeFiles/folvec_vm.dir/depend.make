# Empty dependencies file for folvec_vm.
# This may be replaced when dependencies are built.
