file(REMOVE_RECURSE
  "CMakeFiles/vm_machine_test.dir/vm_machine_test.cpp.o"
  "CMakeFiles/vm_machine_test.dir/vm_machine_test.cpp.o.d"
  "vm_machine_test"
  "vm_machine_test.pdb"
  "vm_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
