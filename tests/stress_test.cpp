// Cross-module stress test: one machine instance drives randomized mixed
// workloads across the hash map, BST, sorts, lists and FOL, continuously
// checked against host-side references. Exercises interactions a
// single-module test cannot (shared machine state, accumulated cost,
// adversarial scatter ordering across modules). Also smoke-includes the
// umbrella header to guarantee it stays self-contained.
#include "folvec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_map>
#include <vector>

namespace folvec {
namespace {

using vm::MachineConfig;
using vm::ScatterOrder;
using vm::VectorMachine;
using vm::Word;
using vm::WordVec;

class StressTest : public ::testing::TestWithParam<ScatterOrder> {};

TEST_P(StressTest, MixedWorkloadAgainstReferences) {
  MachineConfig cfg;
  cfg.scatter_order = GetParam();
  VectorMachine m(cfg);
  Xoshiro256 rng(0xfeedULL);

  hashing::VectorHashMap map;
  std::unordered_map<Word, Word> map_ref;

  constexpr std::size_t kBstCapacity = 8192;
  tree::Bst bst(kBstCapacity);
  std::vector<Word> bst_ref;

  for (int round = 0; round < 40; ++round) {
    const auto op = rng.below(5);
    switch (op) {
      case 0: {  // hash map upserts
        const auto n = 1 + rng.below(80);
        WordVec keys(n);
        WordVec values(n);
        for (std::size_t i = 0; i < n; ++i) {
          keys[i] = rng.in_range(0, 999);
          values[i] = rng.in_range(0, 1 << 20);
          map_ref[keys[i]] = values[i];
        }
        map.upsert_batch(m, keys, values);
        ASSERT_EQ(map.size(), map_ref.size());
        break;
      }
      case 1: {  // hash map erases + lookups
        WordVec victims;
        for (const auto& [k, v] : map_ref) {
          if (rng.unit() < 0.3) victims.push_back(k);
        }
        map.erase_batch(m, victims);
        for (Word k : victims) map_ref.erase(k);
        WordVec queries;
        for (int q = 0; q < 20; ++q) queries.push_back(rng.in_range(0, 999));
        const WordVec got = map.lookup_batch(m, queries, -1);
        for (std::size_t i = 0; i < queries.size(); ++i) {
          const auto it = map_ref.find(queries[i]);
          ASSERT_EQ(got[i], it == map_ref.end() ? -1 : it->second)
              << "round " << round;
        }
        break;
      }
      case 2: {  // BST bulk insert
        const auto n = 1 + rng.below(60);
        if (bst_ref.size() + n > kBstCapacity) break;
        WordVec keys(n);
        for (auto& k : keys) k = rng.in_range(0, 1 << 16);
        bst.insert_bulk(m, keys);
        bst_ref.insert(bst_ref.end(), keys.begin(), keys.end());
        ASSERT_TRUE(bst.check_invariant()) << "round " << round;
        break;
      }
      case 3: {  // BST rebalance + full content check
        bst.rebalance(m);
        ASSERT_TRUE(bst.check_invariant());
        auto expected = bst_ref;
        std::sort(expected.begin(), expected.end());
        ASSERT_EQ(bst.inorder(), expected) << "round " << round;
        break;
      }
      case 4: {  // one of the vector sorts on fresh data
        const auto n = 1 + rng.below(300);
        auto data = random_keys(n, 1 << 16, rng.next());
        auto expected = data;
        std::sort(expected.begin(), expected.end());
        switch (rng.below(3)) {
          case 0:
            sorting::address_calc_sort_vector(m, data, 1 << 16);
            break;
          case 1:
            sorting::dist_count_sort_vector(m, data, 1 << 16);
            break;
          default:
            sorting::radix_sort_vector(m, data, 8);
            break;
        }
        ASSERT_EQ(data, expected) << "round " << round;
        break;
      }
      default:
        break;
    }
  }

  // The shared machine accumulated cost across every module.
  EXPECT_GT(m.cost().total_instructions(), 0u);
  EXPECT_GT(m.cost().cycles(vm::CostParams::s810_like()), 0.0);
}

TEST_P(StressTest, ListAndFolUnderChurn) {
  MachineConfig cfg;
  cfg.scatter_order = GetParam();
  VectorMachine m(cfg);
  Xoshiro256 rng(0xbeefULL);

  list::ListArena arena;
  const Word shared_tail = arena.build(WordVec{1000, 1001, 1002});
  WordVec heads;
  for (int i = 0; i < 30; ++i) {
    WordVec prefix(rng.below(6));
    for (auto& v : prefix) v = rng.in_range(0, 99);
    heads.push_back(rng.unit() < 0.5
                        ? arena.build_with_shared_tail(prefix, shared_tail)
                        : arena.build(prefix));
  }
  list::ListArena ref = arena;

  for (int round = 0; round < 10; ++round) {
    const Word delta = rng.in_range(1, 9);
    list::multi_increment(m, arena, heads, delta);
    list::multi_increment_scalar(ref, heads, delta);
    for (std::size_t i = 0; i < heads.size(); ++i) {
      ASSERT_EQ(arena.to_vector(heads[i]), ref.to_vector(heads[i]))
          << "round " << round << " list " << i;
    }
    // Interleave a FOL decomposition over random targets and verify the
    // theorems under this machine's scatter order.
    WordVec targets(64);
    for (auto& t : targets) t = rng.in_range(0, 15);
    WordVec work(16, 0);
    const fol::Decomposition d = fol::fol1_decompose(m, targets, work);
    ASSERT_TRUE(fol::satisfies_all_theorems(d, targets));
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, StressTest,
                         ::testing::Values(ScatterOrder::kForward,
                                           ScatterOrder::kReverse,
                                           ScatterOrder::kShuffled));

}  // namespace
}  // namespace folvec
