// Runtime SIMD dispatch: level parsing (FOLVEC_SIMD_LEVEL), host CPUID
// detection, graceful downgrade when a forced level is unavailable, and the
// per-level telemetry the machine emits (backend.simd_level label plus
// backend.simd.dispatch.<level> counters).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "telemetry/metrics.h"
#include "vm/machine.h"
#include "vm/simd_backend.h"
#include "vm/simd_kernels.h"

namespace folvec::vm {
namespace {

/// Saves one environment variable on construction, restores it on
/// destruction, so default-parsing tests cannot leak into other tests.
class ScopedEnv {
 public:
  explicit ScopedEnv(const char* name) : name_(name) {
    const char* cur = std::getenv(name);
    if (cur != nullptr) saved_ = cur;
    had_ = cur != nullptr;
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(SimdDispatchTest, ParseLevelAcceptsCanonicalSpellings) {
  EXPECT_EQ(simd_parse_level(nullptr), SimdLevel::kAuto);
  EXPECT_EQ(simd_parse_level(""), SimdLevel::kAuto);
  EXPECT_EQ(simd_parse_level("auto"), SimdLevel::kAuto);
  EXPECT_EQ(simd_parse_level("scalar"), SimdLevel::kScalar);
  EXPECT_EQ(simd_parse_level("neon"), SimdLevel::kNeon);
  EXPECT_EQ(simd_parse_level("avx2"), SimdLevel::kAvx2);
  EXPECT_EQ(simd_parse_level("avx512"), SimdLevel::kAvx512);
  // Unknown spellings warn once and fall back to auto rather than aborting.
  EXPECT_EQ(simd_parse_level("avx9000"), SimdLevel::kAuto);
}

TEST(SimdDispatchTest, SimdLevelDefaultReadsEnvCaseAndSpaceInsensitively) {
  const ScopedEnv env("FOLVEC_SIMD_LEVEL");
  ::unsetenv("FOLVEC_SIMD_LEVEL");
  EXPECT_EQ(MachineConfig::simd_level_default(), SimdLevel::kAuto);
  ::setenv("FOLVEC_SIMD_LEVEL", "scalar", 1);
  EXPECT_EQ(MachineConfig::simd_level_default(), SimdLevel::kScalar);
  ::setenv("FOLVEC_SIMD_LEVEL", " AVX2 ", 1);
  EXPECT_EQ(MachineConfig::simd_level_default(), SimdLevel::kAvx2);
  ::setenv("FOLVEC_SIMD_LEVEL", "Avx512", 1);
  EXPECT_EQ(MachineConfig::simd_level_default(), SimdLevel::kAvx512);
}

TEST(SimdDispatchTest, BackendDefaultParsesSimdSpellings) {
  const ScopedEnv env("FOLVEC_BACKEND");
  ::setenv("FOLVEC_BACKEND", "simd", 1);
  EXPECT_EQ(MachineConfig::backend_default(), BackendKind::kSimd);
  ::setenv("FOLVEC_BACKEND", "parallel+simd", 1);
  EXPECT_EQ(MachineConfig::backend_default(), BackendKind::kParallelSimd);
  ::setenv("FOLVEC_BACKEND", "SIMD+Parallel", 1);
  EXPECT_EQ(MachineConfig::backend_default(), BackendKind::kParallelSimd);
}

TEST(SimdDispatchTest, HostLevelIsSupportedAndResolvesAuto) {
  const SimdLevel host = simd_host_level();
  EXPECT_TRUE(simd_level_supported(host));
  EXPECT_EQ(simd_resolve_level(SimdLevel::kAuto), host);
  // kScalar is supported everywhere and always resolves to itself.
  EXPECT_TRUE(simd_level_supported(SimdLevel::kScalar));
  EXPECT_EQ(simd_resolve_level(SimdLevel::kScalar), SimdLevel::kScalar);
}

TEST(SimdDispatchTest, ResolveDowngradesGracefullyToASupportedLevel) {
  for (const SimdLevel requested :
       {SimdLevel::kScalar, SimdLevel::kNeon, SimdLevel::kAvx2,
        SimdLevel::kAvx512}) {
    const SimdLevel got = simd_resolve_level(requested);
    EXPECT_TRUE(simd_level_supported(got)) << simd_level_name(requested);
    if (simd_level_supported(requested)) {
      EXPECT_EQ(got, requested);
    } else {
      // Downgrade, never upgrade: the resolved rank sits strictly below.
      EXPECT_LT(static_cast<int>(got), static_cast<int>(requested));
    }
  }
}

TEST(SimdDispatchTest, KernelTablesCarryTheirOwnLevelAndName) {
  const SimdKernels& scalar = simd_kernels_scalar();
  EXPECT_EQ(scalar.level, SimdLevel::kScalar);
  EXPECT_STREQ(scalar.name, "scalar");
  // The scalar table is total: forced-scalar machines still dispatch every
  // primitive through the table plumbing.
  EXPECT_NE(scalar.add, nullptr);
  EXPECT_NE(scalar.scatter_fwd, nullptr);
  EXPECT_NE(scalar.conflict_rank, nullptr);
  for (const SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kNeon, SimdLevel::kAvx2,
        SimdLevel::kAvx512}) {
    if (!simd_level_supported(level)) continue;
    const SimdKernels& table = simd_kernels_for(level);
    EXPECT_EQ(table.level, level);
    EXPECT_STREQ(table.name, simd_level_name(level));
  }
}

TEST(SimdDispatchTest, ForcedScalarMachineReportsItself) {
  MachineConfig cfg;
  cfg.backend = BackendKind::kSimd;
  cfg.simd_level = SimdLevel::kScalar;
  VectorMachine m(cfg);
  EXPECT_STREQ(m.backend_name(), "simd");
  EXPECT_EQ(m.backend_workers(), 1u);
  EXPECT_EQ(m.active_simd_level(), SimdLevel::kScalar);
  EXPECT_EQ(m.simd_dispatches(), 0u);
  const WordVec a = m.iota(100);
  m.reduce_sum(m.add(a, a));
  EXPECT_GT(m.simd_dispatches(), 0u);
}

TEST(SimdDispatchTest, SerialMachineNeverDispatchesSimd) {
  MachineConfig cfg;
  cfg.backend = BackendKind::kSerial;
  VectorMachine m(cfg);
  EXPECT_EQ(m.active_simd_level(), SimdLevel::kScalar);
  const WordVec a = m.iota(100);
  m.reduce_sum(m.add(a, a));
  EXPECT_EQ(m.simd_dispatches(), 0u);
}

TEST(SimdDispatchTest, AuditKeepsSimdButPinsParallelSimdToSimd) {
  // The SIMD kernels run on the issuing thread and are bit-identical, so an
  // audited machine stays vectorized; only the thread pool is pinned away.
  MachineConfig cfg;
  cfg.backend = BackendKind::kSimd;
  cfg.audit = true;
  const VectorMachine simd(cfg);
  EXPECT_STREQ(simd.backend_name(), "simd");

  MachineConfig both_cfg;
  both_cfg.backend = BackendKind::kParallelSimd;
  both_cfg.backend_threads = 4;
  both_cfg.audit = true;
  const VectorMachine both(both_cfg);
  EXPECT_STREQ(both.backend_name(), "simd");
  EXPECT_EQ(both.backend_workers(), 1u);
}

TEST(SimdDispatchTest, TelemetryCarriesLevelLabelAndDispatchCounter) {
  telemetry::MetricsRegistry registry;
  const telemetry::ScopedMetrics scoped(registry);
  const char* level_name = nullptr;
  {
    MachineConfig cfg;
    cfg.backend = BackendKind::kSimd;
    cfg.audit = false;
    VectorMachine m(cfg);
    level_name = simd_level_name(m.active_simd_level());
    const WordVec a = m.iota(512);
    m.reduce_sum(m.mul_scalar(a, 3));
  }
  const telemetry::MetricsSnapshot snap = registry.snapshot();
  ASSERT_TRUE(snap.labels.contains("backend.simd_level"));
  EXPECT_EQ(snap.labels.at("backend.simd_level"), level_name);
  ASSERT_TRUE(snap.labels.contains("backend.requested"));
  EXPECT_EQ(snap.labels.at("backend.requested"), "simd");
  const std::string counter =
      std::string("backend.simd.dispatch.") + level_name;
  ASSERT_TRUE(snap.counters.contains(counter)) << counter;
  EXPECT_GT(snap.counters.at(counter), 0u);
}

TEST(SimdDispatchTest, ConflictRankMatchesScalarOccurrenceNumbers) {
  // conflict_rank is the hardware half of the FOL ablation: rank[i] must be
  // lane i's occurrence number among earlier lanes with the same address,
  // for every level that provides the kernel.
  const WordVec idx{3, 1, 3, 3, 0, 1, 7, 3};
  const WordVec want{0, 0, 1, 2, 0, 1, 0, 3};
  for (const SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kNeon, SimdLevel::kAvx2,
        SimdLevel::kAvx512}) {
    if (!simd_level_supported(level)) continue;
    const SimdKernels& table = simd_kernels_for(level);
    if (table.conflict_rank == nullptr) continue;
    WordVec rank(idx.size(), -1);
    WordVec counts(8, 0);
    table.conflict_rank(rank.data(), idx.data(), idx.size(), counts.data());
    EXPECT_EQ(rank, want) << simd_level_name(level);
    // counts must hold the final occurrence totals (reusable next round).
    EXPECT_EQ(counts[3], 4);
    EXPECT_EQ(counts[1], 2);
    EXPECT_EQ(counts[0], 1);
    EXPECT_EQ(counts[7], 1);
  }
}

TEST(SimdDispatchTest, ConflictRankFuzzAgainstScalarReference) {
  const SimdLevel host = simd_host_level();
  if (host == SimdLevel::kScalar) {
    GTEST_SKIP() << "no vector ISA on this host/build";
  }
  const SimdKernels& hw = simd_kernels_for(host);
  if (hw.conflict_rank == nullptr) {
    GTEST_SKIP() << simd_level_name(host) << " has no conflict detection";
  }
  const SimdKernels& ref = simd_kernels_scalar();
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = 1 + next() % 500;
    const std::size_t keys = 1 + next() % 64;
    WordVec idx(n);
    for (auto& x : idx) x = static_cast<Word>(next() % keys);
    WordVec rank_hw(n, -1);
    WordVec rank_ref(n, -1);
    WordVec counts_hw(keys, 0);
    WordVec counts_ref(keys, 0);
    hw.conflict_rank(rank_hw.data(), idx.data(), n, counts_hw.data());
    ref.conflict_rank(rank_ref.data(), idx.data(), n, counts_ref.data());
    ASSERT_EQ(rank_hw, rank_ref) << "round " << round << " n=" << n;
    ASSERT_EQ(counts_hw, counts_ref) << "round " << round;
  }
}

}  // namespace
}  // namespace folvec::vm
