#include "vm/cost_model.h"

#include <iomanip>
#include <sstream>

namespace folvec::vm {

const char* op_class_name(OpClass c) {
  switch (c) {
    case OpClass::kScalarAlu: return "s.alu";
    case OpClass::kScalarMem: return "s.mem";
    case OpClass::kScalarBranch: return "s.br";
    case OpClass::kScalarDiv: return "s.div";
    case OpClass::kVectorArith: return "v.arith";
    case OpClass::kVectorCompare: return "v.cmp";
    case OpClass::kVectorDiv: return "v.div";
    case OpClass::kVectorMask: return "v.mask";
    case OpClass::kVectorLoad: return "v.load";
    case OpClass::kVectorStore: return "v.store";
    case OpClass::kVectorGather: return "v.gather";
    case OpClass::kVectorScatter: return "v.scatter";
    case OpClass::kVectorScatterOrdered: return "v.scatter.ord";
    case OpClass::kVectorCompress: return "v.compress";
    case OpClass::kVectorReduce: return "v.reduce";
    case OpClass::kVectorScatterGatherEq: return "v.sge";
    case OpClass::kVectorPartition: return "v.partition";
    case OpClass::kCount: break;
  }
  return "?";
}

namespace {

void set(CostParams& p, OpClass c, double startup, double per_element) {
  const auto i = static_cast<std::size_t>(c);
  p.startup[i] = startup;
  p.per_element[i] = per_element;
}

}  // namespace

CostParams CostParams::s810_like() {
  // Calibration rationale (shape targets from the paper, Section 4):
  //  * the S-810 scalar unit was the slow side of the machine: simple ops a
  //    few cycles, memory ~5 cycles, and integer divide (the MOD in every
  //    hash) tens of cycles — scalar hashing is division-bound, which is
  //    what lets the vectorized version win by an order of magnitude;
  //  * vector startup of a few tens of cycles: enough that a ~260-element
  //    working vector (table 521, load 0.5) only reaches an acceleration of
  //    ~5 while ~2050 elements (table 4099) reaches ~10 (Figure 10);
  //  * element throughput of several results/cycle for chained linear
  //    arithmetic (multiple parallel pipes), ~1 element/cycle for
  //    gather/scatter (bank conflicts), divide pipelined at ~1/cycle.
  CostParams p;
  set(p, OpClass::kScalarAlu, 0.0, 2.0);
  set(p, OpClass::kScalarMem, 0.0, 5.0);
  set(p, OpClass::kScalarBranch, 0.0, 5.0);
  set(p, OpClass::kScalarDiv, 0.0, 60.0);
  set(p, OpClass::kVectorArith, 35.0, 0.15);
  set(p, OpClass::kVectorCompare, 35.0, 0.15);
  set(p, OpClass::kVectorDiv, 60.0, 1.0);
  set(p, OpClass::kVectorMask, 20.0, 0.05);
  set(p, OpClass::kVectorLoad, 45.0, 0.25);
  set(p, OpClass::kVectorStore, 45.0, 0.25);
  set(p, OpClass::kVectorGather, 70.0, 1.0);
  set(p, OpClass::kVectorScatter, 70.0, 1.0);
  set(p, OpClass::kVectorScatterOrdered, 70.0, 2.0);
  set(p, OpClass::kVectorCompress, 45.0, 0.25);
  set(p, OpClass::kVectorReduce, 40.0, 0.15);
  // Fused kernels are charged the *chained* cost: one startup for the whole
  // pipe group instead of one per primitive. scatter_gather_eq's readback
  // rides the scatter's address stream, so the second memory pass overlaps
  // the first instead of paying the full 1.0 again, and the compare + count
  // chain for free — 1.5 cycles/element against 2.3 for the four-op
  // composition (scatter 1.0 + gather 1.0 + compare 0.15 + count 0.15).
  // partition runs both packs from one read of v and one mask scan, at the
  // single-compress element rate.
  set(p, OpClass::kVectorScatterGatherEq, 70.0, 1.5);
  set(p, OpClass::kVectorPartition, 45.0, 0.25);
  return p;
}

CostParams CostParams::zero_startup() {
  CostParams p = s810_like();
  for (std::size_t i = 0; i < kOpClassCount; ++i) {
    if (is_vector_class(static_cast<OpClass>(i))) p.startup[i] = 0.0;
  }
  return p;
}

CostParams CostParams::cheap_gather() {
  CostParams p = s810_like();
  const double linear =
      p.per_element[static_cast<std::size_t>(OpClass::kVectorLoad)];
  p.per_element[static_cast<std::size_t>(OpClass::kVectorGather)] = linear;
  p.per_element[static_cast<std::size_t>(OpClass::kVectorScatter)] = linear;
  p.per_element[static_cast<std::size_t>(OpClass::kVectorScatterOrdered)] =
      linear;
  // The fused scatter+readback is memory-bound the same way; at linear
  // speed both passes together cost two linear streams.
  p.per_element[static_cast<std::size_t>(OpClass::kVectorScatterGatherEq)] =
      2.0 * linear;
  return p;
}

std::uint64_t CostAccumulator::total_instructions() const {
  std::uint64_t t = 0;
  for (auto v : instructions_) t += v;
  return t;
}

std::uint64_t CostAccumulator::total_elements() const {
  std::uint64_t t = 0;
  for (auto v : elements_) t += v;
  return t;
}

double CostAccumulator::total_wall_seconds() const {
  double t = 0;
  for (auto v : wall_seconds_) t += v;
  return t;
}

double CostAccumulator::cycles(const CostParams& p) const {
  double total = 0;
  for (std::size_t i = 0; i < kOpClassCount; ++i) {
    total += p.startup[i] * static_cast<double>(instructions_[i]) +
             p.per_element[i] * static_cast<double>(elements_[i]);
  }
  return total;
}

CostAccumulator& CostAccumulator::operator+=(const CostAccumulator& other) {
  for (std::size_t i = 0; i < kOpClassCount; ++i) {
    instructions_[i] += other.instructions_[i];
    elements_[i] += other.elements_[i];
    wall_seconds_[i] += other.wall_seconds_[i];
  }
  return *this;
}

std::string CostAccumulator::breakdown(const CostParams& p) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  for (std::size_t i = 0; i < kOpClassCount; ++i) {
    if (instructions_[i] == 0) continue;
    const auto c = static_cast<OpClass>(i);
    const double cyc = p.startup[i] * static_cast<double>(instructions_[i]) +
                       p.per_element[i] * static_cast<double>(elements_[i]);
    os << std::setw(14) << op_class_name(c) << ": " << std::setw(10)
       << instructions_[i] << " instr, " << std::setw(12) << elements_[i]
       << " elems, " << std::setw(12) << cyc << " cycles\n";
  }
  return os.str();
}

}  // namespace folvec::vm
