file(REMOVE_RECURSE
  "CMakeFiles/ablation_listing.dir/ablation_listing.cpp.o"
  "CMakeFiles/ablation_listing.dir/ablation_listing.cpp.o.d"
  "ablation_listing"
  "ablation_listing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_listing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
