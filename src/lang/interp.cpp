#include "lang/interp.h"

#include <algorithm>

#include "support/require.h"
#include "vm/checker.h"

namespace folvec::lang {

using vm::Mask;
using vm::Word;
using vm::WordVec;

Interpreter::Interpreter(vm::VectorMachine& m) : m_(m) {}

void Interpreter::fail(std::size_t line, const std::string& msg) {
  throw PreconditionError("lang: line " + std::to_string(line) + ": " + msg);
}

void Interpreter::set_scalar(const std::string& name, Word v) {
  env_[name] = v;
}

void Interpreter::set_array(const std::string& name, ArrayValue v) {
  env_[name] = std::move(v);
}

void Interpreter::set_array(const std::string& name, WordVec data, Word lo) {
  env_[name] = ArrayValue{lo, std::move(data)};
}

Word Interpreter::scalar(const std::string& name) const {
  const auto it = env_.find(name);
  FOLVEC_REQUIRE(it != env_.end(), "unknown variable: " + name);
  const Word* w = std::get_if<Word>(&it->second);
  FOLVEC_REQUIRE(w != nullptr, name + " is not a scalar");
  return *w;
}

const ArrayValue& Interpreter::array(const std::string& name) const {
  const auto it = env_.find(name);
  FOLVEC_REQUIRE(it != env_.end(), "unknown variable: " + name);
  const ArrayValue* a = std::get_if<ArrayValue>(&it->second);
  FOLVEC_REQUIRE(a != nullptr, name + " is not an array");
  return *a;
}

bool Interpreter::has(const std::string& name) const {
  return env_.count(name) > 0;
}

void Interpreter::register_builtin(const std::string& name, Builtin fn) {
  builtins_[name] = std::move(fn);
}

void Interpreter::run(const Program& program) {
  const Flow flow = exec_block(program);
  FOLVEC_REQUIRE(flow == Flow::kNormal, "exit loop outside any loop");
}

void Interpreter::run(const std::string& source) {
  run(parse_program(source));
}

// ---- helpers -----------------------------------------------------------------

Mask Interpreter::to_mask(const ArrayValue& v, std::size_t line) {
  Mask mask(v.data.size());
  for (std::size_t i = 0; i < v.data.size(); ++i) {
    if (v.data[i] != 0 && v.data[i] != 1) {
      fail(line, "mask array must hold only 0/1 values");
    }
    mask[i] = static_cast<std::uint8_t>(v.data[i]);
  }
  return mask;
}

ArrayValue Interpreter::from_mask(const Mask& mask) {
  ArrayValue out;
  out.lo = 1;
  out.data.assign(mask.begin(), mask.end());
  return out;
}

ArrayValue& Interpreter::lookup_array(const std::string& name,
                                      std::size_t line) {
  const auto it = env_.find(name);
  if (it == env_.end()) fail(line, "unknown array: " + name);
  ArrayValue* a = std::get_if<ArrayValue>(&it->second);
  if (a == nullptr) fail(line, name + " is not an array");
  return *a;
}

Word Interpreter::eval_scalar(const Expr& expr) {
  const Value v = eval(expr);
  const Word* w = std::get_if<Word>(&v);
  if (w == nullptr) fail(expr.line, "expected a scalar value here");
  return *w;
}

// ---- statements -----------------------------------------------------------------

Interpreter::Flow Interpreter::exec_block(const std::vector<StmtPtr>& body) {
  for (const auto& stmt : body) {
    const Flow flow = exec(*stmt);
    if (flow != Flow::kNormal) return flow;
  }
  return Flow::kNormal;
}

Interpreter::Flow Interpreter::exec(const Stmt& stmt) {
  // Stamp the machine's analyzer with the statement's source line so every
  // diagnostic the static verifier emits points at program text.
  m_.set_source_line(stmt.line);
  switch (stmt.kind) {
    case Stmt::Kind::kAssign:
      exec_assign(stmt);
      return Flow::kNormal;

    case Stmt::Kind::kLocal: {
      const Word lo = eval_scalar(*stmt.from);
      const Word hi = eval_scalar(*stmt.to);
      if (hi < lo - 1) fail(stmt.line, "array upper bound below lower");
      env_[stmt.var] =
          ArrayValue{lo, WordVec(static_cast<std::size_t>(hi - lo + 1), 0)};
      return Flow::kNormal;
    }

    case Stmt::Kind::kWhere: {
      const Value cond = eval(*stmt.cond);
      const ArrayValue* arr = std::get_if<ArrayValue>(&cond);
      if (arr == nullptr) fail(stmt.line, "where-condition must be a mask");
      Mask mask = to_mask(*arr, stmt.line);
      const Mask saved = where_mask_;
      if (!saved.empty()) {
        if (saved.size() != mask.size()) {
          fail(stmt.line, "nested where-masks have different lengths");
        }
        mask = m_.mask_and(saved, mask);
      }
      where_mask_ = std::move(mask);
      const Flow flow = exec_block(stmt.body);
      where_mask_ = saved;
      return flow;
    }

    case Stmt::Kind::kFor: {
      const Word from = eval_scalar(*stmt.from);
      const Word to = eval_scalar(*stmt.to);
      for (Word i = from; i <= to; ++i) {
        env_[stmt.var] = i;
        m_.scalar_branch(1);
        m_.scalar_alu(1);
        const Flow flow = exec_block(stmt.body);
        if (flow == Flow::kExitLoop) break;
      }
      return Flow::kNormal;
    }

    case Stmt::Kind::kRepeat: {
      for (;;) {
        const Flow flow = exec_block(stmt.body);
        if (flow == Flow::kExitLoop) break;
        m_.scalar_branch(1);
        if (eval_scalar(*stmt.cond) != 0) break;
      }
      return Flow::kNormal;
    }

    case Stmt::Kind::kWhile: {
      for (;;) {
        m_.scalar_branch(1);
        if (eval_scalar(*stmt.cond) == 0) break;
        const Flow flow = exec_block(stmt.body);
        if (flow == Flow::kExitLoop) break;
      }
      return Flow::kNormal;
    }

    case Stmt::Kind::kIf: {
      m_.scalar_branch(1);
      return eval_scalar(*stmt.cond) != 0 ? exec_block(stmt.body)
                                          : exec_block(stmt.else_body);
    }

    case Stmt::Kind::kExit:
      return Flow::kExitLoop;
  }
  return Flow::kNormal;
}

void Interpreter::exec_assign(const Stmt& stmt) {
  const Expr& lhs = *stmt.lhs;
  Value rhs = eval(*stmt.rhs);

  switch (lhs.kind) {
    case Expr::Kind::kVar: {
      if (!where_mask_.empty()) {
        fail(stmt.line, "whole-variable assignment inside where-block");
      }
      env_[lhs.name] = std::move(rhs);
      return;
    }

    case Expr::Kind::kIndex: {
      ArrayValue& target = lookup_array(lhs.name, lhs.line);
      const Value idx = eval(*lhs.args[0]);
      if (const Word* scalar_idx = std::get_if<Word>(&idx)) {
        if (!where_mask_.empty()) {
          fail(stmt.line, "scalar element store inside where-block");
        }
        const Word* value = std::get_if<Word>(&rhs);
        if (value == nullptr) fail(stmt.line, "element store needs a scalar");
        const Word pos = *scalar_idx - target.lo;
        if (pos < 0 || static_cast<std::size_t>(pos) >= target.data.size()) {
          fail(stmt.line, "subscript out of range");
        }
        target.data[static_cast<std::size_t>(pos)] = *value;
        m_.scalar_mem(1);
        return;
      }
      // List-vector store (scatter), masked under a where-block. Rebase the
      // subscripts only when the array is not 0-based: the no-copy path
      // keeps the analyzer's facts (keyed by storage) attached to them.
      const ArrayValue& indices = std::get<ArrayValue>(idx);
      WordVec rebased;
      if (target.lo != 0) {
        rebased = m_.add_scalar(indices.data, -target.lo);
      }
      const WordVec& adjusted = target.lo != 0 ? rebased : indices.data;
      // Expression evaluation copies arrays out of the environment, which
      // detaches any lane facts keyed on the original storage. One host-side
      // scan re-establishes tight bounds (and distinctness when the
      // subscripts are strictly increasing) so the verifier can judge the
      // scatter instead of reporting Unknown.
      m_.observe_range(adjusted);
      WordVec values;
      if (const Word* scalar_value = std::get_if<Word>(&rhs)) {
        values = m_.splat(adjusted.size(), *scalar_value);
      } else {
        values = std::get<ArrayValue>(rhs).data;
      }
      if (values.size() != adjusted.size()) {
        fail(stmt.line, "scatter value/index length mismatch");
      }
      // The language exposes raw VIST semantics (Figure 8/12 programs race
      // distinct values for slots deliberately), so user scatters run inside
      // a sanctioned data-race window.
      const vm::ConflictWindow window(m_, target.data,
                                      vm::WindowKind::kDataRace,
                                      "language list-vector store");
      if (where_mask_.empty()) {
        m_.scatter(target.data, adjusted, values);
      } else {
        if (where_mask_.size() != adjusted.size()) {
          fail(stmt.line, "where-mask length mismatch");
        }
        m_.scatter_masked(target.data, adjusted, values, where_mask_);
      }
      return;
    }

    case Expr::Kind::kSlice: {
      ArrayValue& target = lookup_array(lhs.name, lhs.line);
      const Word a = eval_scalar(*lhs.args[0]);
      const Word b = eval_scalar(*lhs.args[1]);
      if (b < a) return;  // empty slice: no-op
      const Word pos = a - target.lo;
      const auto len = static_cast<std::size_t>(b - a + 1);
      if (pos < 0 ||
          static_cast<std::size_t>(pos) + len > target.data.size()) {
        fail(stmt.line, "slice out of range");
      }
      WordVec values;
      if (const Word* scalar_value = std::get_if<Word>(&rhs)) {
        values = m_.splat(len, *scalar_value);
      } else {
        values = std::get<ArrayValue>(rhs).data;
      }
      if (values.size() != len) {
        fail(stmt.line, "slice assignment length mismatch");
      }
      const auto offset = static_cast<std::size_t>(pos);
      if (where_mask_.empty()) {
        m_.store(target.data, offset, values);
      } else {
        if (where_mask_.size() != len) {
          fail(stmt.line, "where-mask length mismatch");
        }
        const WordVec old = m_.load(target.data, offset, len);
        m_.store(target.data, offset, m_.select(where_mask_, values, old));
      }
      return;
    }

    default:
      fail(stmt.line, "invalid assignment target");
  }
}

// ---- expressions -----------------------------------------------------------------

Value Interpreter::eval(const Expr& expr) {
  m_.set_source_line(expr.line);
  switch (expr.kind) {
    case Expr::Kind::kNumber:
      return expr.number;

    case Expr::Kind::kVar: {
      const auto it = env_.find(expr.name);
      if (it == env_.end()) fail(expr.line, "unknown variable: " + expr.name);
      return it->second;
    }

    case Expr::Kind::kIndex: {
      const ArrayValue& base = lookup_array(expr.name, expr.line);
      const Value idx = eval(*expr.args[0]);
      if (const Word* scalar_idx = std::get_if<Word>(&idx)) {
        const Word pos = *scalar_idx - base.lo;
        if (pos < 0 || static_cast<std::size_t>(pos) >= base.data.size()) {
          fail(expr.line, "subscript out of range");
        }
        m_.scalar_mem(1);
        return base.data[static_cast<std::size_t>(pos)];
      }
      // List-vector load (gather). Same fact-recovery scan as the scatter
      // path in exec_assign: evaluation copied the subscripts out of the
      // environment, so their lane facts must be re-measured.
      const ArrayValue& indices = std::get<ArrayValue>(idx);
      WordVec rebased;
      if (base.lo != 0) rebased = m_.add_scalar(indices.data, -base.lo);
      const WordVec& adjusted = base.lo != 0 ? rebased : indices.data;
      m_.observe_range(adjusted);
      return ArrayValue{1, m_.gather(base.data, adjusted)};
    }

    case Expr::Kind::kSlice: {
      const ArrayValue& base = lookup_array(expr.name, expr.line);
      const Word a = eval_scalar(*expr.args[0]);
      const Word b = eval_scalar(*expr.args[1]);
      if (b < a) return ArrayValue{1, {}};
      const Word pos = a - base.lo;
      const auto len = static_cast<std::size_t>(b - a + 1);
      if (pos < 0 ||
          static_cast<std::size_t>(pos) + len > base.data.size()) {
        fail(expr.line, "slice out of range");
      }
      return ArrayValue{
          1, m_.load(base.data, static_cast<std::size_t>(pos), len)};
    }

    case Expr::Kind::kUnary: {
      Value v = eval(*expr.args[0]);
      if (expr.op == "-") {
        if (const Word* w = std::get_if<Word>(&v)) {
          m_.scalar_alu(1);
          return -*w;
        }
        return ArrayValue{1, m_.negate(std::get<ArrayValue>(v).data)};
      }
      // not
      if (const Word* w = std::get_if<Word>(&v)) {
        m_.scalar_alu(1);
        return static_cast<Word>(*w == 0 ? 1 : 0);
      }
      const Mask mask = to_mask(std::get<ArrayValue>(v), expr.line);
      return from_mask(m_.mask_not(mask));
    }

    case Expr::Kind::kBinary:
      return eval_binary(expr);

    case Expr::Kind::kCall:
      return eval_call(expr);

    case Expr::Kind::kWhere: {
      const Value v = eval(*expr.args[0]);
      const Value mv = eval(*expr.args[1]);
      const ArrayValue* arr = std::get_if<ArrayValue>(&v);
      const ArrayValue* mask_arr = std::get_if<ArrayValue>(&mv);
      if (arr == nullptr || mask_arr == nullptr) {
        fail(expr.line, "'where' operator needs array operands");
      }
      const Mask mask = to_mask(*mask_arr, expr.line);
      if (mask.size() != arr->data.size()) {
        fail(expr.line, "'where' operand lengths differ");
      }
      return ArrayValue{1, m_.compress(arr->data, mask)};
    }
  }
  fail(expr.line, "unreachable expression kind");
}

Value Interpreter::eval_binary(const Expr& expr) {
  const std::string& op = expr.op;
  Value lv = eval(*expr.args[0]);
  Value rv = eval(*expr.args[1]);
  const Word* ls = std::get_if<Word>(&lv);
  const Word* rs = std::get_if<Word>(&rv);

  // scalar op scalar ----------------------------------------------------
  if (ls != nullptr && rs != nullptr) {
    const Word a = *ls;
    const Word b = *rs;
    if (op == "/" || op == "mod") {
      if (b <= 0) fail(expr.line, "division by non-positive scalar");
      m_.scalar_div(1);
      if (op == "/") return a / b;
      Word r = a % b;
      if (r < 0) r += b;
      return r;
    }
    m_.scalar_alu(1);
    if (op == "+") return a + b;
    if (op == "-") return a - b;
    if (op == "*") return a * b;
    if (op == "&") return a & b;
    if (op == "=") return static_cast<Word>(a == b);
    if (op == "/=") return static_cast<Word>(a != b);
    if (op == "<") return static_cast<Word>(a < b);
    if (op == "<=") return static_cast<Word>(a <= b);
    if (op == ">") return static_cast<Word>(a > b);
    if (op == ">=") return static_cast<Word>(a >= b);
    if (op == "and") return static_cast<Word>(a != 0 && b != 0);
    if (op == "or") return static_cast<Word>(a != 0 || b != 0);
    fail(expr.line, "unknown scalar operator " + op);
  }

  // array op array -------------------------------------------------------
  if (ls == nullptr && rs == nullptr) {
    const WordVec& a = std::get<ArrayValue>(lv).data;
    const WordVec& b = std::get<ArrayValue>(rv).data;
    if (a.size() != b.size()) {
      fail(expr.line, "array operand lengths differ");
    }
    if (op == "+") return ArrayValue{1, m_.add(a, b)};
    if (op == "-") return ArrayValue{1, m_.sub(a, b)};
    if (op == "*") return ArrayValue{1, m_.mul(a, b)};
    if (op == "=") return from_mask(m_.eq(a, b));
    if (op == "/=") return from_mask(m_.ne(a, b));
    if (op == "<=") return from_mask(m_.le(a, b));
    if (op == "<") return from_mask(m_.lt(a, b));
    if (op == ">=") return from_mask(m_.le(b, a));
    if (op == ">") return from_mask(m_.lt(b, a));
    if (op == "and") {
      return from_mask(m_.mask_and(to_mask(std::get<ArrayValue>(lv),
                                           expr.line),
                                   to_mask(std::get<ArrayValue>(rv),
                                           expr.line)));
    }
    if (op == "or") {
      return from_mask(m_.mask_or(to_mask(std::get<ArrayValue>(lv),
                                          expr.line),
                                  to_mask(std::get<ArrayValue>(rv),
                                          expr.line)));
    }
    fail(expr.line, "operator " + op + " not supported on two arrays");
  }

  // mixed: normalize to array op scalar, flipping where needed -----------
  const bool scalar_on_left = (ls != nullptr);
  const WordVec& a = std::get<ArrayValue>(scalar_on_left ? rv : lv).data;
  const Word s = scalar_on_left ? *ls : *rs;
  if (op == "+") return ArrayValue{1, m_.add_scalar(a, s)};
  if (op == "*") return ArrayValue{1, m_.mul_scalar(a, s)};
  if (op == "&") return ArrayValue{1, m_.and_scalar(a, s)};
  if (op == "-") {
    if (scalar_on_left) {  // s - A
      return ArrayValue{1, m_.add_scalar(m_.negate(a), s)};
    }
    return ArrayValue{1, m_.add_scalar(a, -s)};
  }
  if (op == "/" || op == "mod") {
    if (scalar_on_left) fail(expr.line, "scalar / array is not supported");
    if (s <= 0) fail(expr.line, "division by non-positive scalar");
    return ArrayValue{1, op == "/" ? m_.div_scalar(a, s)
                                   : m_.mod_scalar(a, s)};
  }
  // Comparisons: A op s directly, s op A via the flipped operator.
  const auto cmp = [&](const std::string& o) -> Mask {
    if (o == "=") return m_.eq_scalar(a, s);
    if (o == "/=") return m_.ne_scalar(a, s);
    if (o == "<") return m_.lt_scalar(a, s);
    if (o == "<=") return m_.le_scalar(a, s);
    if (o == ">=") return m_.ge_scalar(a, s);
    if (o == ">") return m_.mask_not(m_.le_scalar(a, s));
    fail(expr.line, "operator " + op + " not supported on array/scalar");
  };
  static const std::unordered_map<std::string, std::string> kFlip{
      {"=", "="},   {"/=", "/="}, {"<", ">"},
      {"<=", ">="}, {">", "<"},   {">=", "<="}};
  const auto flip = kFlip.find(op);
  if (flip == kFlip.end()) {
    fail(expr.line, "operator " + op + " not supported on array/scalar");
  }
  return from_mask(cmp(scalar_on_left ? flip->second : op));
}

Value Interpreter::eval_call(const Expr& expr) {
  std::vector<Value> args;
  args.reserve(expr.args.size());
  for (const auto& a : expr.args) args.push_back(eval(*a));

  if (expr.name == "countTrue") {
    if (args.size() != 1 || !std::holds_alternative<ArrayValue>(args[0])) {
      fail(expr.line, "countTrue needs one mask argument");
    }
    return static_cast<Word>(
        m_.count_true(to_mask(std::get<ArrayValue>(args[0]), expr.line)));
  }
  if (expr.name == "size") {
    if (args.size() != 1 || !std::holds_alternative<ArrayValue>(args[0])) {
      fail(expr.line, "size needs one array argument");
    }
    return static_cast<Word>(std::get<ArrayValue>(args[0]).data.size());
  }
  if (expr.name == "iota") {
    if (args.empty() || args.size() > 2 ||
        !std::holds_alternative<Word>(args[0])) {
      fail(expr.line, "iota needs (count [, start]) scalars");
    }
    const Word count = std::get<Word>(args[0]);
    const Word start = args.size() == 2 ? std::get<Word>(args[1]) : 1;
    if (count < 0) fail(expr.line, "iota count must be non-negative");
    return ArrayValue{1, m_.iota(static_cast<std::size_t>(count), start)};
  }
  const auto it = builtins_.find(expr.name);
  if (it == builtins_.end()) {
    fail(expr.line, "unknown function: " + expr.name);
  }
  return it->second(args);
}

}  // namespace folvec::lang
