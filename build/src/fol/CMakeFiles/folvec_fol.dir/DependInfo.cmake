
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fol/fol1.cpp" "src/fol/CMakeFiles/folvec_fol.dir/fol1.cpp.o" "gcc" "src/fol/CMakeFiles/folvec_fol.dir/fol1.cpp.o.d"
  "/root/repo/src/fol/fol_star.cpp" "src/fol/CMakeFiles/folvec_fol.dir/fol_star.cpp.o" "gcc" "src/fol/CMakeFiles/folvec_fol.dir/fol_star.cpp.o.d"
  "/root/repo/src/fol/invariants.cpp" "src/fol/CMakeFiles/folvec_fol.dir/invariants.cpp.o" "gcc" "src/fol/CMakeFiles/folvec_fol.dir/invariants.cpp.o.d"
  "/root/repo/src/fol/ordered.cpp" "src/fol/CMakeFiles/folvec_fol.dir/ordered.cpp.o" "gcc" "src/fol/CMakeFiles/folvec_fol.dir/ordered.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/folvec_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/folvec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
