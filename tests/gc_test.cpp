// Tests for the cons heap and both garbage collectors: liveness precision,
// sharing preservation (one copy per shared cell), cycle safety, root
// rewriting, and scalar/vector equivalence sweeps.
#include "gc/heap.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "support/prng.h"

namespace folvec::gc {
namespace {

using vm::MachineConfig;
using vm::ScatterOrder;
using vm::VectorMachine;
using vm::Word;

TEST(TaggingTest, RoundTrips) {
  EXPECT_TRUE(is_immediate(make_immediate(5)));
  EXPECT_TRUE(is_immediate(make_immediate(-3)));
  EXPECT_EQ(immediate_value(make_immediate(-3)), -3);
  EXPECT_TRUE(is_pointer(make_pointer(7)));
  EXPECT_EQ(pointer_cell(make_pointer(7)), 7);
  EXPECT_TRUE(is_nil(kNilValue));
  EXPECT_FALSE(is_pointer(kNilValue));
  EXPECT_FALSE(is_immediate(kNilValue));
}

TEST(ConsHeapTest, AllocAndAccess) {
  ConsHeap h(8);
  const Word c = h.alloc(make_immediate(1), kNilValue);
  EXPECT_EQ(h.car(c), make_immediate(1));
  EXPECT_EQ(h.cdr(c), kNilValue);
  EXPECT_EQ(h.allocated(), 1u);
  h.set_car(c, make_immediate(9));
  EXPECT_EQ(h.car(c), make_immediate(9));
}

TEST(ConsHeapTest, ExhaustionThrows) {
  ConsHeap h(1);
  h.alloc(kNilValue, kNilValue);
  EXPECT_THROW(h.alloc(kNilValue, kNilValue), PreconditionError);
}

namespace {

/// Builds the list (v0 v1 ... vk) of immediates; returns the head pointer.
Word build_list(ConsHeap& h, const std::vector<Word>& values) {
  Word tail = kNilValue;
  for (std::size_t i = values.size(); i-- > 0;) {
    tail = make_pointer(h.alloc(make_immediate(values[i]), tail));
  }
  return tail;
}

std::vector<Word> read_list(const ConsHeap& h, Word head) {
  std::vector<Word> out;
  while (is_pointer(head)) {
    out.push_back(immediate_value(h.car(pointer_cell(head))));
    head = h.cdr(pointer_cell(head));
  }
  return out;
}

}  // namespace

class CollectorTest : public ::testing::TestWithParam<bool> {
 protected:
  GcStats collect(ConsHeap& h, std::span<Word> roots) {
    if (GetParam()) {
      VectorMachine m;
      return h.collect_vector(m, roots);
    }
    return h.collect_scalar(roots);
  }
};

TEST_P(CollectorTest, KeepsLiveDropsDead) {
  ConsHeap h(64);
  std::vector<Word> roots{build_list(h, {1, 2, 3})};
  build_list(h, {100, 101});  // garbage: never rooted
  ASSERT_EQ(h.allocated(), 5u);

  const GcStats stats = collect(h, roots);
  EXPECT_EQ(stats.live_cells, 3u);
  EXPECT_EQ(h.allocated(), 3u);
  EXPECT_EQ(read_list(h, roots[0]), (std::vector<Word>{1, 2, 3}));
}

TEST_P(CollectorTest, SharedStructureCopiedOnce) {
  ConsHeap h(64);
  const Word shared = build_list(h, {7, 8});
  // Two roots reach the same two cells through different prefixes.
  std::vector<Word> roots{
      make_pointer(h.alloc(make_immediate(1), shared)),
      make_pointer(h.alloc(make_immediate(2), shared)),
  };
  ASSERT_EQ(h.allocated(), 4u);

  const GcStats stats = collect(h, roots);
  EXPECT_EQ(stats.live_cells, 4u);  // sharing preserved: 4 cells, not 6
  EXPECT_EQ(read_list(h, roots[0]), (std::vector<Word>{1, 7, 8}));
  EXPECT_EQ(read_list(h, roots[1]), (std::vector<Word>{2, 7, 8}));
  // Physically shared after collection too.
  EXPECT_EQ(h.cdr(pointer_cell(roots[0])), h.cdr(pointer_cell(roots[1])));
}

TEST_P(CollectorTest, CyclesSurvive) {
  ConsHeap h(16);
  const Word a = h.alloc(make_immediate(1), kNilValue);
  const Word b = h.alloc(make_immediate(2), make_pointer(a));
  h.set_cdr(a, make_pointer(b));  // a <-> b cycle
  std::vector<Word> roots{make_pointer(a)};

  const GcStats stats = collect(h, roots);
  EXPECT_EQ(stats.live_cells, 2u);
  const Word na = pointer_cell(roots[0]);
  const Word nb = pointer_cell(h.cdr(na));
  EXPECT_EQ(h.car(na), make_immediate(1));
  EXPECT_EQ(h.car(nb), make_immediate(2));
  EXPECT_EQ(h.cdr(nb), make_pointer(na));  // cycle closed
}

TEST_P(CollectorTest, NilAndImmediateRootsUntouched) {
  ConsHeap h(8);
  std::vector<Word> roots{kNilValue, make_immediate(42)};
  const GcStats stats = collect(h, roots);
  EXPECT_EQ(stats.live_cells, 0u);
  EXPECT_EQ(roots[0], kNilValue);
  EXPECT_EQ(roots[1], make_immediate(42));
}

TEST_P(CollectorTest, CollectionEnablesReuse) {
  ConsHeap h(4);
  std::vector<Word> roots{build_list(h, {1})};
  build_list(h, {2, 3, 4});  // fills the rest with garbage
  EXPECT_THROW(h.alloc(kNilValue, kNilValue), PreconditionError);
  collect(h, roots);
  // Three cells were reclaimed.
  h.alloc(kNilValue, kNilValue);
  h.alloc(kNilValue, kNilValue);
  h.alloc(kNilValue, kNilValue);
  EXPECT_THROW(h.alloc(kNilValue, kNilValue), PreconditionError);
}

INSTANTIATE_TEST_SUITE_P(ScalarAndVector, CollectorTest, ::testing::Bool());

TEST(CollectorEquivalenceTest, RandomHeapsAgree) {
  for (const auto order : {ScatterOrder::kForward, ScatterOrder::kReverse,
                           ScatterOrder::kShuffled}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      // Build a random DAG-ish heap: each new cell points to earlier cells
      // or immediates; root a random subset.
      constexpr std::size_t kCells = 200;
      ConsHeap scalar_heap(kCells * 2);
      Xoshiro256 rng(seed * 97);
      auto random_value = [&](Word upto) -> Word {
        const double u = rng.unit();
        if (u < 0.25 || upto == 0) return kNilValue;
        if (u < 0.55) return make_immediate(rng.in_range(-50, 50));
        return make_pointer(rng.in_range(0, upto - 1));
      };
      for (std::size_t i = 0; i < kCells; ++i) {
        const auto upto = static_cast<Word>(i);
        scalar_heap.alloc(random_value(upto), random_value(upto));
      }
      std::vector<Word> roots;
      for (int r = 0; r < 12; ++r) {
        roots.push_back(
            make_pointer(rng.in_range(0, static_cast<Word>(kCells) - 1)));
      }
      ConsHeap vector_heap = scalar_heap;
      std::vector<Word> scalar_roots = roots;
      std::vector<Word> vector_roots = roots;

      const GcStats s1 = scalar_heap.collect_scalar(scalar_roots);
      MachineConfig cfg;
      cfg.scatter_order = order;
      VectorMachine m(cfg);
      const GcStats s2 = vector_heap.collect_vector(m, vector_roots);

      ASSERT_EQ(s1.live_cells, s2.live_cells) << "seed " << seed;
      for (std::size_t r = 0; r < roots.size(); ++r) {
        ASSERT_TRUE(ConsHeap::deep_equal(scalar_heap, scalar_roots[r],
                                         vector_heap, vector_roots[r]))
            << "seed " << seed << " root " << r;
      }
    }
  }
}

}  // namespace
}  // namespace folvec::gc
