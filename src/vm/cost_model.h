// Chime-style cost accounting for the simulated vector processor.
//
// The paper's evaluation ran on a Hitachi S-810/20, a register-based
// pipelined vector processor. We do not have that hardware, so every
// algorithm in this repo executes against folvec::vm::VectorMachine, which
// counts the instructions it issues. The counts are converted into cycle
// estimates by a CostParams table with the classic two-parameter pipeline
// model:
//
//     cost(instruction over n elements) = startup + n * per_element
//
// Vector startup (pipeline fill + instruction issue) is what makes short
// vectors slow; per-element throughput is what makes long vectors fast.
// Gather/scatter ("list vector") instructions are given a markedly higher
// per-element cost than linear loads, matching every memory-bank-conflict
// analysis of the S-810 class of machines. Scalar code is modelled with flat
// per-operation costs. The absolute constants are calibrated, not measured
// (see CostParams::s810_like for the rationale); the benchmark harnesses
// compare *shapes* against the paper, never absolute microseconds.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace folvec::vm {

/// Instruction classes distinguished by the cost model.
enum class OpClass : std::uint8_t {
  kScalarAlu,             ///< register arithmetic / logic, one datum
  kScalarMem,             ///< scalar load or store
  kScalarBranch,          ///< compare-and-branch step of a scalar loop
  kScalarDiv,             ///< scalar integer divide / modulus (slow!)
  kVectorArith,           ///< elementwise vector arithmetic / logic
  kVectorCompare,         ///< elementwise compare producing a mask
  kVectorDiv,             ///< elementwise divide / modulus (pipelined)
  kVectorMask,            ///< mask-register manipulation
  kVectorLoad,            ///< contiguous vector load
  kVectorStore,           ///< contiguous vector store
  kVectorGather,          ///< indexed load (list-vector load)
  kVectorScatter,         ///< indexed store, ELS semantics (S-3800 VIST)
  kVectorScatterOrdered,  ///< indexed store, order-preserving (VSTX); slower
  kVectorCompress,        ///< pack-under-mask ("A where M")
  kVectorReduce,          ///< reduction (count_true, sum, min, max)
  kVectorScatterGatherEq, ///< fused scatter + readback gather + compare
  kVectorPartition,       ///< fused two-way pack-under-mask (kept/rejected)
  kCount
};

constexpr std::size_t kOpClassCount = static_cast<std::size_t>(OpClass::kCount);

/// Human-readable mnemonic for an op class.
const char* op_class_name(OpClass c);

/// Whether the class models a vector (pipelined) instruction.
constexpr bool is_vector_class(OpClass c) {
  return c >= OpClass::kVectorArith;
}

/// The two-parameter pipeline model, one (startup, per_element) pair per
/// instruction class, plus the machine clock used to convert cycles to time.
struct CostParams {
  std::array<double, kOpClassCount> startup{};
  std::array<double, kOpClassCount> per_element{};
  double clock_hz = 71.0e6;  ///< S-810 cycle time was 14 ns.

  /// Calibrated parameter set used by all reproduction benches.
  static CostParams s810_like();

  /// A hypothetical machine with zero vector startup (ablation: how much of
  /// the paper's load-factor hump is a startup artefact).
  static CostParams zero_startup();

  /// A machine whose gather/scatter runs at linear-load speed (ablation:
  /// list-vector memory cost).
  static CostParams cheap_gather();

  double cost(OpClass c, std::size_t elements) const {
    const auto i = static_cast<std::size_t>(c);
    return startup[i] + per_element[i] * static_cast<double>(elements);
  }
};

/// Raw instruction/element counts per class; cycle conversion is applied on
/// demand so one run can be re-priced under several CostParams.
///
/// Next to the chime model, the accumulator also collects measured *host*
/// wall-clock per class (record_wall, fed by VectorMachine's per-primitive
/// timers). The chime numbers answer "what would the S-810 have done"; the
/// wall numbers answer "what does this backend do on this hardware" — the
/// backend-comparison bench reports both side by side.
class CostAccumulator {
 public:
  void record(OpClass c, std::size_t elements) {
    const auto i = static_cast<std::size_t>(c);
    instructions_[i] += 1;
    elements_[i] += elements;
  }

  /// Adds measured host execution time for one instruction of class `c`.
  void record_wall(OpClass c, double seconds) {
    wall_seconds_[static_cast<std::size_t>(c)] += seconds;
  }

  void reset() {
    instructions_.fill(0);
    elements_.fill(0);
    wall_seconds_.fill(0.0);
  }

  std::uint64_t instructions(OpClass c) const {
    return instructions_[static_cast<std::size_t>(c)];
  }
  std::uint64_t elements(OpClass c) const {
    return elements_[static_cast<std::size_t>(c)];
  }
  std::uint64_t total_instructions() const;
  std::uint64_t total_elements() const;

  /// Measured host seconds spent executing instructions of class `c`.
  double wall_seconds(OpClass c) const {
    return wall_seconds_[static_cast<std::size_t>(c)];
  }
  double total_wall_seconds() const;

  /// Estimated cycles under `p`.
  double cycles(const CostParams& p) const;

  /// Estimated wall time in microseconds under `p`.
  double microseconds(const CostParams& p) const {
    return cycles(p) / p.clock_hz * 1.0e6;
  }

  CostAccumulator& operator+=(const CostAccumulator& other);

  /// Multi-line per-class breakdown for reports.
  std::string breakdown(const CostParams& p) const;

 private:
  std::array<std::uint64_t, kOpClassCount> instructions_{};
  std::array<std::uint64_t, kOpClassCount> elements_{};
  std::array<double, kOpClassCount> wall_seconds_{};
};

/// Cost-ticking helper for scalar baseline code. Wraps a nullable
/// accumulator so the same algorithm can run instrumented (benchmarks) or
/// free (plain library use) without branching at every call site.
class ScalarCost {
 public:
  ScalarCost() = default;
  explicit ScalarCost(CostAccumulator* acc) : acc_(acc) {}

  void alu(std::size_t n = 1) { tick(OpClass::kScalarAlu, n); }
  void mem(std::size_t n = 1) { tick(OpClass::kScalarMem, n); }
  void branch(std::size_t n = 1) { tick(OpClass::kScalarBranch, n); }
  void div(std::size_t n = 1) { tick(OpClass::kScalarDiv, n); }

 private:
  void tick(OpClass c, std::size_t n) {
    if (acc_ != nullptr) acc_->record(c, n);
  }
  CostAccumulator* acc_ = nullptr;
};

}  // namespace folvec::vm
