#include "vm/checker.h"

#include <algorithm>
#include <sstream>

namespace folvec::vm {

namespace {

std::string join_lanes(const std::vector<std::size_t>& lanes) {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    if (i != 0) os << ", ";
    if (lanes[i] == kScalarLane) {
      os << "scalar";
    } else {
      os << lanes[i];
    }
  }
  os << '}';
  return os.str();
}

std::string join_values(const std::vector<Word>& vals) {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < vals.size(); ++i) {
    if (i != 0) os << ", ";
    os << vals[i];
  }
  os << '}';
  return os.str();
}

}  // namespace

// ---- window stack ----------------------------------------------------------

void ScatterChecker::push_window(std::span<const Word> table, WindowKind kind,
                                 const char* label) {
  Window w;
  w.begin = table.data();
  w.end = table.data() + table.size();
  w.kind = kind;
  w.label = label;
  windows_.push_back(std::move(w));
}

void ScatterChecker::pop_window() {
  FOLVEC_CHECK(!windows_.empty(), "ConflictWindow stack underflow");
  const Window& w = windows_.back();
  if (w.kind == WindowKind::kLabelRound) {
    // The labels written during the round are now stale garbage: reading
    // them back outside a window is a hazard until they are overwritten or
    // the work array is retired.
    for (const auto& [addr, rec] : w.writes) clobbered_.insert(addr);
    // Elided scatters never enumerated their addresses; their (exact)
    // footprints carry the same staleness at interval granularity.
    w.elided_ranges.for_each(
        [this](const Word* b, const Word* e) { clobbered_ranges_.add(b, e); });
  }
  windows_.pop_back();
}

ScatterChecker::Window* ScatterChecker::covering_window(
    std::span<const Word> table) {
  const Word* b = table.data();
  const Word* e = table.data() + table.size();
  for (auto it = windows_.rbegin(); it != windows_.rend(); ++it) {
    if (it->begin <= b && e <= it->end) return &*it;
  }
  return nullptr;
}

// ---- hazard plumbing -------------------------------------------------------

void ScatterChecker::throw_audit(std::size_t first_new) const {
  std::ostringstream os;
  os << "ScatterCheck: ";
  for (std::size_t i = first_new; i < report_.size(); ++i) {
    if (i != first_new) os << "; ";
    os << report_[i].to_string();
  }
  throw AuditError(os.str());
}

void ScatterChecker::precondition_hazard(Hazard h) {
  const std::string what = h.to_string();
  add(std::move(h));
  throw PreconditionError("ScatterCheck: " + what);
}

// ---- shared operand checks -------------------------------------------------

void ScatterChecker::check_lengths(OpClass op, std::size_t idx_n,
                                   std::size_t vals_n, const Mask* mask) {
  const std::size_t mask_n = mask != nullptr ? mask->size() : idx_n;
  if (idx_n == vals_n && idx_n == mask_n) return;
  Hazard h;
  h.kind = HazardKind::kLengthMismatch;
  h.op = op;
  std::ostringstream os;
  os << op_class_name(op) << ": operand lengths disagree (index " << idx_n;
  if (vals_n != idx_n) os << ", values " << vals_n;
  if (mask != nullptr) os << ", mask " << mask_n;
  os << ')';
  h.message = os.str();
  precondition_hazard(std::move(h));
}

void ScatterChecker::check_bounds(OpClass op, std::span<const Word> idx,
                                  std::size_t table_size, const Mask* mask) {
  Hazard h;
  for (std::size_t lane = 0; lane < idx.size(); ++lane) {
    if (mask != nullptr && (*mask)[lane] == 0) continue;
    if (idx[lane] >= 0 && static_cast<std::size_t>(idx[lane]) <
                              table_size) {
      continue;
    }
    h.lanes.push_back(lane);
    h.expected.push_back(idx[lane]);  // the offending addresses, per lane
  }
  if (h.lanes.empty()) return;
  h.kind = HazardKind::kOutOfBounds;
  h.op = op;
  h.address = h.expected.front();
  std::ostringstream os;
  os << op_class_name(op) << ": lanes " << join_lanes(h.lanes)
     << " address outside table[0.." << table_size << "): addresses "
     << join_values(h.expected);
  h.message = os.str();
  precondition_hazard(std::move(h));
}

// ---- instruction hooks -----------------------------------------------------

void ScatterChecker::on_gather(std::span<const Word> table,
                               std::span<const Word> idx, const Mask* mask) {
  ++instr_seq_;
  check_lengths(OpClass::kVectorGather, idx.size(), idx.size(), mask);
  check_bounds(OpClass::kVectorGather, idx, table.size(), mask);

  const std::size_t first_new = report_.size();
  Window* w = covering_window(table);
  if (w != nullptr) {
    // Readback inside a sanctioned round: memory must hold one of the values
    // the latest writing instruction actually stored there. Anything else is
    // the substrate violating the ELS condition.
    std::unordered_set<const Word*> reported;
    for (std::size_t lane = 0; lane < idx.size(); ++lane) {
      if (mask != nullptr && (*mask)[lane] == 0) continue;
      const Word* addr = table.data() + static_cast<std::size_t>(idx[lane]);
      const auto it = w->writes.find(addr);
      if (it == w->writes.end()) continue;
      if (!reported.insert(addr).second) continue;
      const Word found = *addr;
      const WriteRecord& rec = it->second;
      const bool legal =
          std::any_of(rec.writers.begin(), rec.writers.end(),
                      [found](const auto& wr) { return wr.second == found; });
      if (legal) continue;
      Hazard h;
      h.kind = HazardKind::kElsViolation;
      h.op = OpClass::kVectorGather;
      h.address = idx[lane];
      for (const auto& [wl, wv] : rec.writers) {
        h.lanes.push_back(wl);
        h.expected.push_back(wv);
      }
      h.found = found;
      h.context = w->label;
      std::ostringstream os;
      os << w->label << ": table[" << h.address << "] holds " << found
         << ", but the colliding scatter lanes " << join_lanes(h.lanes)
         << " wrote " << join_values(h.expected)
         << " — the substrate amalgamated the ELS survivor";
      h.message = os.str();
      add(std::move(h));
    }
  } else if (!clobbered_.empty() || !clobbered_ranges_.empty()) {
    Hazard h;
    for (std::size_t lane = 0; lane < idx.size(); ++lane) {
      if (mask != nullptr && (*mask)[lane] == 0) continue;
      const Word* addr = table.data() + static_cast<std::size_t>(idx[lane]);
      if (clobbered_.count(addr) == 0 && !clobbered_ranges_.contains(addr)) {
        continue;
      }
      h.lanes.push_back(lane);
      h.expected.push_back(idx[lane]);
      if (h.lanes.size() == 1) h.found = *addr;
    }
    if (!h.lanes.empty()) {
      h.kind = HazardKind::kClobberedWorkRead;
      h.op = OpClass::kVectorGather;
      h.address = h.expected.front();
      std::ostringstream os;
      os << "lanes " << join_lanes(h.lanes) << " gather addresses "
         << join_values(h.expected)
         << " still holding stale labels from a closed label round "
         << "(overwrite them or retire_work the array)";
      h.message = os.str();
      add(std::move(h));
    }
  }
  if (report_.size() > first_new && throw_) throw_audit(first_new);
}

void ScatterChecker::on_scatter(std::span<const Word> table,
                                std::span<const Word> idx,
                                std::span<const Word> vals, const Mask* mask,
                                bool ordered) {
  ++instr_seq_;
  const OpClass op =
      ordered ? OpClass::kVectorScatterOrdered : OpClass::kVectorScatter;
  check_lengths(op, idx.size(), vals.size(), mask);
  check_bounds(op, idx, table.size(), mask);

  // Group the active lanes by target address, preserving lane order.
  struct Group {
    std::vector<std::size_t> lanes;
    bool differing = false;
  };
  std::unordered_map<Word, Group> groups;
  for (std::size_t lane = 0; lane < idx.size(); ++lane) {
    if (mask != nullptr && (*mask)[lane] == 0) continue;
    Group& g = groups[idx[lane]];
    if (!g.lanes.empty() && vals[g.lanes.front()] != vals[lane]) {
      g.differing = true;
    }
    g.lanes.push_back(lane);
  }

  const std::size_t first_new = report_.size();
  Window* w = covering_window(table);
  if (w != nullptr) {
    for (const auto& [target, g] : groups) {
      const Word* addr = table.data() + static_cast<std::size_t>(target);
      WriteRecord& rec = w->writes[addr];
      rec.instr = instr_seq_;
      rec.writers.clear();
      if (ordered) {
        // Order-preserving scatter: the last colliding lane's value is the
        // only legal survivor.
        rec.writers.emplace_back(g.lanes.back(), vals[g.lanes.back()]);
      } else {
        for (std::size_t lane : g.lanes) {
          rec.writers.emplace_back(lane, vals[lane]);
        }
      }
      clobbered_.erase(addr);
      clobbered_ranges_.erase(addr, addr + 1);
    }
    return;
  }

  // Outside any window: duplicate addresses with differing values and no
  // defined survivor are the vector-machine analogue of a data race.
  for (const auto& [target, g] : groups) {
    if (g.lanes.size() < 2 || !g.differing || ordered) continue;
    Hazard h;
    h.kind = HazardKind::kUnsanctionedDuplicate;
    h.op = op;
    h.address = target;
    h.lanes = g.lanes;
    for (std::size_t lane : g.lanes) h.expected.push_back(vals[lane]);
    std::ostringstream os;
    os << op_class_name(op) << ": lanes " << join_lanes(h.lanes)
       << " scatter differing values " << join_values(h.expected)
       << " to table[" << target
       << "] outside any ConflictWindow — the survivor is undefined";
    h.message = os.str();
    add(std::move(h));
  }
  if (report_.size() > first_new && throw_) throw_audit(first_new);
  for (const auto& [target, g] : groups) {
    const Word* addr = table.data() + static_cast<std::size_t>(target);
    clobbered_.erase(addr);
    clobbered_ranges_.erase(addr, addr + 1);
  }
}

void ScatterChecker::on_scatter_elided(std::span<const Word> table, Word lo,
                                       Word hi, bool exact) {
  ++instr_seq_;
  if (lo > hi) return;
  const Word* b = table.data() + static_cast<std::size_t>(lo);
  const Word* e = table.data() + static_cast<std::size_t>(hi) + 1;
  // The elided scatter replaced whatever candidate values earlier writes
  // left anywhere in its footprint. Stale records must not survive: a later
  // fully-audited gather would compare memory against candidates this write
  // superseded and report a false ELS violation. (Dropping them on a
  // non-exact footprint merely widens what the elided round stops checking —
  // the documented trade of elision — it never invents hazards.)
  for (Window& w : windows_) {
    if (w.writes.empty()) continue;
    for (auto it = w.writes.begin(); it != w.writes.end();) {
      if (b <= it->first && it->first < e) {
        it = w.writes.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (!exact) return;
  // Provable full coverage: every address in [lo, hi] now holds this
  // scatter's data, so older clobber marks are lifted...
  for (auto it = clobbered_.begin(); it != clobbered_.end();) {
    if (b <= *it && *it < e) {
      it = clobbered_.erase(it);
    } else {
      ++it;
    }
  }
  clobbered_ranges_.erase(b, e);
  // ...and if this is a label round, the whole footprint becomes stale when
  // the window closes. (Non-exact label-round footprints are *not* booked:
  // marking addresses the scatter may have skipped would invent hazards.)
  Window* w = covering_window(table);
  if (w != nullptr && w->kind == WindowKind::kLabelRound) {
    w->elided_ranges.add(b, e);
  }
}

void ScatterChecker::on_scalar_store(std::span<const Word> table,
                                     std::size_t pos, Word value) {
  ++instr_seq_;
  const Word* addr = table.data() + pos;
  Window* w = covering_window(table);
  if (w != nullptr) {
    WriteRecord& rec = w->writes[addr];
    rec.instr = instr_seq_;
    rec.writers.assign(1, {kScalarLane, value});
  }
  clobbered_.erase(addr);
  clobbered_ranges_.erase(addr, addr + 1);
}

void ScatterChecker::on_overwrite(const Word* base, std::size_t n,
                                  std::size_t stride) {
  for (std::size_t i = 0; i < n; ++i) {
    const Word* addr = base + i * stride;
    if (!clobbered_.empty()) clobbered_.erase(addr);
    clobbered_ranges_.erase(addr, addr + 1);
    for (Window& w : windows_) {
      w.writes.erase(addr);
      w.elided_ranges.erase(addr, addr + 1);
    }
  }
}

void ScatterChecker::on_contiguous_read(std::span<const Word> table,
                                        std::size_t offset, std::size_t n) {
  if (clobbered_.empty() && clobbered_ranges_.empty()) return;
  if (covering_window(table) != nullptr) return;
  Hazard h;
  for (std::size_t i = 0; i < n; ++i) {
    const Word* addr = table.data() + offset + i;
    if (clobbered_.count(addr) == 0 && !clobbered_ranges_.contains(addr)) {
      continue;
    }
    h.lanes.push_back(i);
    h.expected.push_back(static_cast<Word>(offset + i));
    if (h.lanes.size() == 1) h.found = *addr;
  }
  if (h.lanes.empty()) return;
  h.kind = HazardKind::kClobberedWorkRead;
  h.op = OpClass::kVectorLoad;
  h.address = h.expected.front();
  std::ostringstream os;
  os << "contiguous load reads offsets " << join_values(h.expected)
     << " still holding stale labels from a closed label round "
     << "(overwrite them or retire_work the array)";
  h.message = os.str();
  const std::size_t first_new = report_.size();
  add(std::move(h));
  if (throw_) throw_audit(first_new);
}

// ---- FOL-level audits ------------------------------------------------------

void ScatterChecker::audit_tuple_set(std::span<const std::size_t> set,
                                     std::span<const WordVec> index_vectors) {
  // Each tuple t touches { iv[set[t]] : iv in index_vectors }. Within one
  // parallel-processable set those footprints must be pairwise disjoint.
  std::unordered_map<Word, std::size_t> owner;  // address -> tuple index
  const std::size_t first_new = report_.size();
  for (std::size_t t = 0; t < set.size(); ++t) {
    const std::size_t lane = set[t];
    for (const WordVec& iv : index_vectors) {
      FOLVEC_REQUIRE(lane < iv.size(),
                     "audit_tuple_set: set entry outside index vectors");
      const Word address = iv[lane];
      const auto [it, inserted] = owner.emplace(address, t);
      if (inserted || it->second == t) continue;
      Hazard h;
      h.kind = HazardKind::kTupleConflict;
      h.op = OpClass::kVectorScatter;
      h.address = address;
      h.lanes = {it->second, t};
      std::ostringstream os;
      os << "FOL* set places tuples " << join_lanes(h.lanes)
         << " (lanes " << set[it->second] << " and " << lane
         << ") in one round but both touch address " << address;
      h.message = os.str();
      add(std::move(h));
    }
  }
  if (report_.size() > first_new && throw_) throw_audit(first_new);
}

void ScatterChecker::audit_theorem_violation(const std::string& where,
                                             const std::string& details) {
  Hazard h;
  h.kind = HazardKind::kTheoremViolation;
  h.op = OpClass::kVectorScatter;
  h.context = where;
  h.message = where + ": " + details;
  const std::size_t first_new = report_.size();
  add(std::move(h));
  if (throw_) throw_audit(first_new);
}

void ScatterChecker::retire_work(std::span<const Word> region) {
  if (clobbered_.empty() && clobbered_ranges_.empty()) return;
  const Word* b = region.data();
  const Word* e = region.data() + region.size();
  for (auto it = clobbered_.begin(); it != clobbered_.end();) {
    if (b <= *it && *it < e) {
      it = clobbered_.erase(it);
    } else {
      ++it;
    }
  }
  clobbered_ranges_.erase(b, e);
}

}  // namespace folvec::vm
