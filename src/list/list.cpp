#include "list/list.h"

#include "fol/fol1.h"
#include "support/require.h"

namespace folvec::list {

using vm::Mask;
using vm::VectorMachine;
using vm::Word;
using vm::WordVec;

std::size_t ListArena::check(Word cell) const {
  FOLVEC_REQUIRE(cell >= 0 && static_cast<std::size_t>(cell) < car_.size(),
                 "cell index out of range");
  return static_cast<std::size_t>(cell);
}

Word ListArena::cons(Word car, Word cdr) {
  FOLVEC_REQUIRE(cdr == kNil || (cdr >= 0 && static_cast<std::size_t>(cdr) <
                                                 car_.size()),
                 "cdr must be kNil or an existing cell");
  car_.push_back(car);
  cdr_.push_back(cdr);
  return static_cast<Word>(car_.size() - 1);
}

Word ListArena::build(std::span<const Word> values) {
  Word head = kNil;
  for (std::size_t i = values.size(); i-- > 0;) {
    head = cons(values[i], head);
  }
  return head;
}

std::vector<Word> ListArena::to_vector(Word head) const {
  std::vector<Word> out;
  for (Word cell = head; cell != kNil; cell = cdr(cell)) {
    out.push_back(car(cell));
    FOLVEC_CHECK(out.size() <= car_.size(), "list contains a cycle");
  }
  return out;
}

Word ListArena::build_with_shared_tail(std::span<const Word> prefix,
                                       Word tail_head) {
  Word head = tail_head;
  for (std::size_t i = prefix.size(); i-- > 0;) {
    head = cons(prefix[i], head);
  }
  return head;
}

namespace {

/// Packs away the lanes whose list has ended.
WordVec drop_finished(VectorMachine& m, const WordVec& cur) {
  return m.compress(cur, m.ne_scalar(cur, kNil));
}

}  // namespace

WordVec multi_length(VectorMachine& m, const ListArena& arena,
                     std::span<const Word> heads) {
  // Lengths need per-lane results, so lanes are not packed away; instead a
  // live mask shrinks as lists end. One gather per level (SIVP).
  WordVec cur = m.copy(heads);
  WordVec len = m.splat(heads.size(), 0);
  Mask live = m.ne_scalar(cur, kNil);
  while (m.count_true(live) > 0) {
    len = m.add(len, m.from_mask(live));
    cur = m.select(live, m.gather_masked(arena.cdrs(), cur, live, kNil), cur);
    live = m.mask_and(live, m.ne_scalar(cur, kNil));
  }
  return len;
}

WordVec multi_sum(VectorMachine& m, const ListArena& arena,
                  std::span<const Word> heads) {
  WordVec cur = m.copy(heads);
  WordVec sum = m.splat(heads.size(), 0);
  Mask live = m.ne_scalar(cur, kNil);
  while (m.count_true(live) > 0) {
    const WordVec vals = m.gather_masked(arena.cars(), cur, live, 0);
    sum = m.add(sum, vals);
    cur = m.select(live, m.gather_masked(arena.cdrs(), cur, live, kNil), cur);
    live = m.mask_and(live, m.ne_scalar(cur, kNil));
  }
  return sum;
}

std::size_t multi_increment(VectorMachine& m, ListArena& arena,
                            std::span<const Word> heads, Word delta) {
  std::size_t updates = 0;
  std::vector<Word> work(arena.size(), 0);
  WordVec cur = m.compress(m.copy(heads), m.ne_scalar(heads, kNil));
  while (!cur.empty()) {
    // The level's index vector may address one cell from several lanes
    // (shared tails); FOL1 splits it so each set's gather-add-scatter is a
    // faithful read-modify-write per lane.
    const fol::Decomposition dec = fol::fol1_decompose(m, cur, work);
    for (const auto& set : dec.sets) {
      WordVec cells(set.size());
      for (std::size_t i = 0; i < set.size(); ++i) cells[i] = cur[set[i]];
      const WordVec old_vals = m.gather(arena.cars(), cells);
      m.scatter(arena.cars(), cells, m.add_scalar(old_vals, delta));
      updates += set.size();
    }
    cur = drop_finished(m, m.gather(arena.cdrs(), cur));
  }
  m.retire_work(work);
  return updates;
}

std::size_t multi_increment_unsafe(VectorMachine& m, ListArena& arena,
                                   std::span<const Word> heads, Word delta) {
  std::size_t updates = 0;
  WordVec cur = m.compress(m.copy(heads), m.ne_scalar(heads, kNil));
  while (!cur.empty()) {
    const WordVec old_vals = m.gather(arena.cars(), cur);
    m.scatter(arena.cars(), cur, m.add_scalar(old_vals, delta));
    updates += cur.size();
    cur = drop_finished(m, m.gather(arena.cdrs(), cur));
  }
  return updates;
}

std::size_t multi_increment_scalar(ListArena& arena,
                                   std::span<const Word> heads, Word delta,
                                   vm::CostAccumulator* cost) {
  vm::ScalarCost sc(cost);
  std::size_t updates = 0;
  for (Word head : heads) {
    for (Word cell = head; cell != kNil; cell = arena.cdr(cell)) {
      arena.cars()[static_cast<std::size_t>(cell)] += delta;
      ++updates;
      sc.alu(1);
      sc.mem(3);
      sc.branch(1);
    }
    sc.branch(1);
  }
  return updates;
}

}  // namespace folvec::list
