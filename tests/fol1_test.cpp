// Tests for FOL1: unit cases pinned to the paper's examples, and
// parameterized property sweeps of Theorems 1-6 across scatter-order modes
// and duplicate distributions.
#include "fol/fol1.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "fol/invariants.h"
#include "support/prng.h"

namespace folvec::fol {
namespace {

using vm::MachineConfig;
using vm::ScatterOrder;
using vm::VectorMachine;
using vm::Word;
using vm::WordVec;

Decomposition decompose(const WordVec& index_vector,
                        ScatterOrder order = ScatterOrder::kForward,
                        std::uint64_t shuffle_seed = 1) {
  MachineConfig cfg;
  cfg.scatter_order = order;
  cfg.shuffle_seed = shuffle_seed;
  VectorMachine m(cfg);
  Word max_index = 0;
  for (Word v : index_vector) max_index = std::max(max_index, v);
  WordVec work(static_cast<std::size_t>(max_index) + 1, 0);
  return fol1_decompose(m, index_vector, work);
}

TEST(Fol1Test, EmptyInputYieldsNoSets) {
  VectorMachine m;
  WordVec work(1, 0);
  EXPECT_EQ(fol1_decompose(m, WordVec{}, work).rounds(), 0u);
}

TEST(Fol1Test, DuplicateFreeInputYieldsSingleSet) {
  // Theorem 3: M = 1 when the input has no duplicates.
  const WordVec v{4, 2, 7, 0, 5};
  const Decomposition d = decompose(v);
  ASSERT_EQ(d.rounds(), 1u);
  EXPECT_EQ(d.sets[0], (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Fol1Test, AllSameYieldsSingletonSets) {
  // Theorem 6's worst case: N lanes to one storage area.
  const WordVec v{3, 3, 3, 3};
  const Decomposition d = decompose(v);
  ASSERT_EQ(d.rounds(), 4u);
  for (const auto& s : d.sets) EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(satisfies_all_theorems(d, v));
}

TEST(Fol1Test, PaperFigure6Pattern) {
  // Figure 6: S = {a,b,a,c,c,a} decomposes into three sets with the
  // multiplicity-3 element 'a' spread across all of them.
  const WordVec v{0, 1, 0, 2, 2, 0};  // a=0, b=1, c=2
  const Decomposition d = decompose(v);
  ASSERT_EQ(d.rounds(), 3u);
  EXPECT_TRUE(satisfies_all_theorems(d, v));
  // Set sizes must be 3, 2, 1: {a,b,c}, {a,c}, {a}.
  EXPECT_EQ(d.sets[0].size(), 3u);
  EXPECT_EQ(d.sets[1].size(), 2u);
  EXPECT_EQ(d.sets[2].size(), 1u);
}

TEST(Fol1Test, ForwardOrderPicksLastLanePerRound) {
  // On a last-write-wins machine, the surviving label of a contested area
  // is the highest lane, so round 0 winners are the last occurrences.
  const WordVec v{5, 5, 5};
  const Decomposition d = decompose(v, ScatterOrder::kForward);
  EXPECT_EQ(d.sets[0], (std::vector<std::size_t>{2}));
  EXPECT_EQ(d.sets[1], (std::vector<std::size_t>{1}));
  EXPECT_EQ(d.sets[2], (std::vector<std::size_t>{0}));
}

TEST(Fol1Test, ReverseOrderPicksFirstLanePerRound) {
  const WordVec v{5, 5, 5};
  const Decomposition d = decompose(v, ScatterOrder::kReverse);
  EXPECT_EQ(d.sets[0], (std::vector<std::size_t>{0}));
  EXPECT_EQ(d.sets[1], (std::vector<std::size_t>{1}));
  EXPECT_EQ(d.sets[2], (std::vector<std::size_t>{2}));
}

TEST(Fol1Test, PlainWrapperAllocatesItsOwnWork) {
  const WordVec v{9, 9, 1};
  const Decomposition d = fol1_decompose_plain(v);
  EXPECT_EQ(d.rounds(), 2u);
  EXPECT_TRUE(satisfies_all_theorems(d, v));
}

TEST(Fol1Test, PlainWrapperRejectsNegativeIndices) {
  EXPECT_THROW(fol1_decompose_plain(WordVec{-1, 0}), InternalError);
}

TEST(Fol1Test, RoundOfLaneMatchesDecomposition) {
  const WordVec v{2, 2, 0, 2};
  VectorMachine m;
  WordVec work(3, 0);
  const auto rounds = fol1_round_of_lane(m, v, work);
  ASSERT_EQ(rounds.size(), 4u);
  // Lane 2 (the only reference to area 0) must be in round 0.
  EXPECT_EQ(rounds[2], 0u);
  // The three lanes referencing area 2 must occupy rounds {0,1,2}.
  std::vector<std::size_t> area2{rounds[0], rounds[1], rounds[3]};
  std::sort(area2.begin(), area2.end());
  EXPECT_EQ(area2, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Fol1Test, ElsViolationIsDetectedNotSilent) {
  // Failure injection: the machine stores amalgams on collision. FOL1 must
  // refuse (throw) rather than return a wrong decomposition.
  MachineConfig cfg;
  cfg.inject_els_violation = true;
  VectorMachine m(cfg);
  WordVec work(1, 0);
  const WordVec v{0, 0};
  EXPECT_THROW(fol1_decompose(m, v, work), InternalError);
}

TEST(Fol1Test, WorkAreaContentsNeedNoInitialization) {
  // The work area may hold arbitrary garbage; FOL1 overwrites before reading.
  VectorMachine m;
  WordVec work{-77, 123456, -1, 42};
  const WordVec v{0, 3, 0};
  const Decomposition d = fol1_decompose(m, v, work);
  EXPECT_EQ(d.rounds(), 2u);
  EXPECT_TRUE(satisfies_all_theorems(d, v));
}

// ---- property sweeps -------------------------------------------------------

// (n lanes, distinct areas, scatter order, seed)
using SweepParam = std::tuple<std::size_t, std::size_t, ScatterOrder, int>;

class Fol1PropertyTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(Fol1PropertyTest, TheoremsHoldOnRandomWorkloads) {
  const auto [n, distinct, order, seed] = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 7919 + n);
  WordVec v(n);
  for (auto& x : v) {
    x = rng.in_range(0, static_cast<Word>(distinct) - 1);
  }
  const Decomposition d =
      decompose(v, order, static_cast<std::uint64_t>(seed));
  EXPECT_TRUE(is_disjoint_cover(d, n));
  EXPECT_TRUE(sets_are_conflict_free(d, v));
  EXPECT_TRUE(sizes_non_increasing(d));
  EXPECT_TRUE(is_minimal(d, v)) << "rounds=" << d.rounds() << " maxmult="
                                << max_multiplicity(v);
  EXPECT_LE(d.rounds(), n);  // Theorem 1 (termination bound)
}

INSTANTIATE_TEST_SUITE_P(
    DuplicateDistributions, Fol1PropertyTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 7, 64, 257),
                       ::testing::Values<std::size_t>(1, 2, 16, 256),
                       ::testing::Values(ScatterOrder::kForward,
                                         ScatterOrder::kReverse,
                                         ScatterOrder::kShuffled),
                       ::testing::Values(1, 2, 3)));

class Fol1SkewTest : public ::testing::TestWithParam<int> {};

TEST_P(Fol1SkewTest, HeavilySkewedMultiplicitiesStayMinimal) {
  // One hot area referenced k times among n otherwise-unique lanes.
  const int k = GetParam();
  const std::size_t n = 100;
  WordVec v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<Word>(i + 1);
  for (int i = 0; i < k; ++i) v[static_cast<std::size_t>(i) * 7 % n] = 0;
  const Decomposition d = decompose(v, ScatterOrder::kShuffled,
                                    static_cast<std::uint64_t>(k));
  EXPECT_TRUE(satisfies_all_theorems(d, v));
  EXPECT_EQ(d.rounds(), static_cast<std::size_t>(k));
}

INSTANTIATE_TEST_SUITE_P(HotSpotMultiplicity, Fol1SkewTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace folvec::fol
