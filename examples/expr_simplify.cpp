// Example: canonicalizing expression trees with parallel rewriting (FOL*).
//
// A symbolic-algebra or compiler pass often normalizes associative
// operators to a canonical (left-deep) shape before common-subexpression
// elimination. This example builds expression trees, rewrites them to
// left-deep form with the FOL*-based vector rewriter, and shows the two
// regimes: independent redexes vectorize, chained redexes serialize (the
// paper's Figure 5 conflict, and its Section 3.3 caveat).
#include <iostream>

#include "rewrite/assoc_rewrite.h"
#include "rewrite/term.h"
#include "support/prng.h"
#include "vm/machine.h"

int main() {
  using namespace folvec;
  using vm::Word;

  // Small demo: the paper's own tree a*(b*(c*d)) (Figure 5).
  {
    rewrite::TermArena arena;
    const Word root = rewrite::build_right_comb(arena, 4);
    std::cout << "input:      " << arena.to_string(root) << "\n";
    vm::VectorMachine m;
    const rewrite::RewriteStats stats =
        rewrite::assoc_rewrite_vector(m, arena, root);
    std::cout << "normalized: " << arena.to_string(root) << "  ("
              << stats.rewrites << " rewrites in " << stats.sweeps
              << " sweeps)\n\n";
  }

  // Larger trees: count how much parallelism each shape exposes.
  for (const bool chained : {false, true}) {
    rewrite::TermArena arena;
    Xoshiro256 rng(7);
    const std::size_t leaves = 256;
    const Word root = chained
                          ? rewrite::build_right_comb(arena, leaves)
                          : rewrite::build_random_tree(arena, leaves, rng);
    const std::size_t depth_before = arena.depth(root);

    vm::VectorMachine m;
    const rewrite::RewriteStats stats =
        rewrite::assoc_rewrite_vector(m, arena, root);

    if (!arena.is_left_deep(root)) {
      std::cout << "normalization FAILED\n";
      return 1;
    }
    const double rewrites_per_sweep =
        static_cast<double>(stats.rewrites) /
        static_cast<double>(stats.sweeps == 0 ? 1 : stats.sweeps);
    std::cout << (chained ? "chained (right comb)" : "random shape    ")
              << ": depth " << depth_before << " -> " << arena.depth(root)
              << ", " << stats.rewrites << " rewrites, " << stats.sweeps
              << " sweeps, " << rewrites_per_sweep
              << " parallel rewrites/sweep\n";
  }
  std::cout << "\nchained redexes overlap pairwise (Figure 5's shared n3), "
               "so each sweep can fire only one of them -- the Section 3.3 "
               "caveat in action; random shapes expose real parallelism.\n";
  return 0;
}
