#include "analysis/facts.h"

#include <algorithm>
#include <limits>

namespace folvec::analysis {

namespace {

constexpr Word kWordMin = std::numeric_limits<Word>::min();
constexpr Word kWordMax = std::numeric_limits<Word>::max();

using Wide = __int128;

bool fits(Wide v) {
  return v >= static_cast<Wide>(kWordMin) && v <= static_cast<Wide>(kWordMax);
}

/// Shifts an interval by a wide-computed pair of endpoints; drops the whole
/// fact set to unknown when either endpoint leaves the machine word (the
/// concrete op would wrap, and wrapped lanes satisfy none of our claims).
LaneFacts ranged(const LaneFacts& base, Wide lo, Wide hi) {
  if (!fits(lo) || !fits(hi)) return LaneFacts::unknown(base.lanes);
  LaneFacts f = base;
  f.has_range = true;
  f.lo = static_cast<Word>(lo);
  f.hi = static_cast<Word>(hi);
  return f;
}

}  // namespace

LaneFacts facts_iota(std::size_t n, Word start, Word step) {
  LaneFacts f;
  f.lanes = n;
  if (n == 0) {
    // Vacuous: an empty vector satisfies every claim, but carries no range.
    f.distinct = true;
    f.sorted = true;
    return f;
  }
  const Wide last =
      static_cast<Wide>(start) + static_cast<Wide>(step) * (static_cast<Wide>(n) - 1);
  if (!fits(last)) return LaneFacts::unknown(n);
  const Word last_w = static_cast<Word>(last);
  f.has_range = true;
  f.lo = std::min(start, last_w);
  f.hi = std::max(start, last_w);
  f.tight = true;
  f.distinct = step != 0 || n == 1;
  f.sorted = step >= 0 || n == 1;
  return f;
}

LaneFacts facts_splat(std::size_t n, Word value) {
  LaneFacts f;
  f.lanes = n;
  f.has_range = true;
  f.lo = value;
  f.hi = value;
  f.tight = n > 0;
  f.distinct = n <= 1;
  f.sorted = true;
  return f;
}

LaneFacts facts_copy(const LaneFacts& v) { return v; }

LaneFacts facts_reverse(const LaneFacts& v) {
  LaneFacts f = v;
  // Non-decreasing reversed is non-increasing, which we do not track.
  f.sorted = v.lanes <= 1 || v.constant();
  return f;
}

LaneFacts facts_add_scalar(const LaneFacts& v, Word s) {
  if (!v.has_range) return LaneFacts::unknown(v.lanes);
  LaneFacts f = ranged(v, static_cast<Wide>(v.lo) + s, static_cast<Wide>(v.hi) + s);
  // distinct/sorted/tight survive a (non-wrapping) shift untouched.
  return f;
}

LaneFacts facts_mul_scalar(const LaneFacts& v, Word s) {
  if (s == 0) return facts_splat(v.lanes, 0);
  if (!v.has_range) return LaneFacts::unknown(v.lanes);
  const Wide a = static_cast<Wide>(v.lo) * s;
  const Wide b = static_cast<Wide>(v.hi) * s;
  LaneFacts f = ranged(v, std::min(a, b), std::max(a, b));
  if (!f.has_range) return f;
  // Scaling by a nonzero factor is injective; order flips for negative s.
  if (s < 0) f.sorted = v.lanes <= 1;
  return f;
}

LaneFacts facts_div_scalar(const LaneFacts& v, Word s) {
  if (s <= 0 || !v.has_range) return LaneFacts::unknown(v.lanes);
  const auto floordiv = [s](Word x) {
    Word q = x / s;
    if ((x % s) != 0 && x < 0) --q;
    return q;
  };
  LaneFacts f = v;
  f.lo = floordiv(v.lo);
  f.hi = floordiv(v.hi);
  // Floor division is monotone: endpoints map to endpoints (tight survives)
  // and sortedness survives; collisions kill distinctness.
  f.distinct = v.lanes <= 1;
  return f;
}

LaneFacts facts_mod_scalar(const LaneFacts& v, Word s) {
  if (s <= 0) return LaneFacts::unknown(v.lanes);
  if (v.has_range && v.lo >= 0 && v.hi < s) {
    // The reduction is the identity on this interval: full facts survive.
    return v;
  }
  LaneFacts f = LaneFacts::unknown(v.lanes);
  f.has_range = true;
  f.lo = 0;
  f.hi = s - 1;
  return f;
}

LaneFacts facts_and_scalar(const LaneFacts& v, Word s) {
  if (s < 0) {
    // Sign bit survives the mask: no useful bound.
    return LaneFacts::unknown(v.lanes);
  }
  LaneFacts f = LaneFacts::unknown(v.lanes);
  f.has_range = true;
  f.lo = 0;
  f.hi = s;  // x & s has only bits of s set, hence lies in [0, s]
  return f;
}

LaneFacts facts_or_scalar(const LaneFacts& v, Word s) {
  if (s < 0 || !v.has_range || v.lo < 0) return LaneFacts::unknown(v.lanes);
  // For non-negative x and s: max(x, s) <= x|s <= x + s.
  const Wide hi = static_cast<Wide>(v.hi) + s;
  LaneFacts f = LaneFacts::unknown(v.lanes);
  if (!fits(hi)) return f;
  f.has_range = true;
  f.lo = std::max(v.lo, s);
  f.hi = static_cast<Word>(hi);
  return f;
}

LaneFacts facts_shl_scalar(const LaneFacts& v, Word k) {
  if (k < 0 || k >= 64 || !v.has_range || v.lo < 0) {
    return LaneFacts::unknown(v.lanes);
  }
  const Wide scale = static_cast<Wide>(1) << k;
  LaneFacts f = ranged(v, static_cast<Wide>(v.lo) * scale,
                       static_cast<Wide>(v.hi) * scale);
  return f;  // injective and monotone when it does not wrap
}

LaneFacts facts_shr_scalar(const LaneFacts& v, Word k) {
  if (k < 0 || k >= 64 || !v.has_range) return LaneFacts::unknown(v.lanes);
  LaneFacts f = v;
  f.lo = v.lo >> k;
  f.hi = v.hi >> k;
  f.distinct = v.lanes <= 1;  // monotone but not injective
  return f;
}

LaneFacts facts_negate(const LaneFacts& v) {
  if (!v.has_range || v.lo == kWordMin) return LaneFacts::unknown(v.lanes);
  LaneFacts f = v;
  f.lo = -v.hi;
  f.hi = -v.lo;
  f.sorted = v.lanes <= 1 || v.constant();
  return f;
}

LaneFacts facts_add(const LaneFacts& a, const LaneFacts& b) {
  if (!a.has_range || !b.has_range) return LaneFacts::unknown(a.lanes);
  LaneFacts f = ranged(LaneFacts::unknown(a.lanes),
                       static_cast<Wide>(a.lo) + b.lo,
                       static_cast<Wide>(a.hi) + b.hi);
  if (!f.has_range) return f;
  // Adding a provably-constant vector is a shift; otherwise injectivity is
  // lost. Sums of non-decreasing vectors stay non-decreasing.
  f.distinct = (a.distinct && b.constant()) || (b.distinct && a.constant());
  f.tight = (a.tight && b.constant()) || (b.tight && a.constant());
  f.sorted = a.sorted && b.sorted;
  return f;
}

LaneFacts facts_sub(const LaneFacts& a, const LaneFacts& b) {
  if (!a.has_range || !b.has_range) return LaneFacts::unknown(a.lanes);
  LaneFacts f = ranged(LaneFacts::unknown(a.lanes),
                       static_cast<Wide>(a.lo) - b.hi,
                       static_cast<Wide>(a.hi) - b.lo);
  if (!f.has_range) return f;
  f.distinct = (a.distinct && b.constant()) || (b.distinct && a.constant());
  f.tight = (a.tight && b.constant()) || (b.tight && a.constant());
  f.sorted = a.sorted && b.constant();
  return f;
}

LaneFacts facts_mul(const LaneFacts& a, const LaneFacts& b) {
  if (!a.has_range || !b.has_range) return LaneFacts::unknown(a.lanes);
  const Wide p1 = static_cast<Wide>(a.lo) * b.lo;
  const Wide p2 = static_cast<Wide>(a.lo) * b.hi;
  const Wide p3 = static_cast<Wide>(a.hi) * b.lo;
  const Wide p4 = static_cast<Wide>(a.hi) * b.hi;
  return ranged(LaneFacts::unknown(a.lanes), std::min({p1, p2, p3, p4}),
                std::max({p1, p2, p3, p4}));
}

LaneFacts facts_subset(const LaneFacts& v, std::size_t out_lanes) {
  LaneFacts f = v;
  f.lanes = out_lanes;
  f.tight = false;  // the endpoint lanes may have been dropped
  if (out_lanes == 0) {
    f.has_range = false;
    f.distinct = true;
    f.sorted = true;
  }
  return f;
}

LaneFacts facts_select(const LaneFacts& a, const LaneFacts& b, std::size_t n) {
  LaneFacts f = LaneFacts::unknown(n);
  if (a.has_range && b.has_range) {
    f.has_range = true;
    f.lo = std::min(a.lo, b.lo);
    f.hi = std::max(a.hi, b.hi);
  }
  return f;
}

LaneFacts facts_from_mask(std::size_t n) {
  LaneFacts f = LaneFacts::unknown(n);
  f.has_range = true;
  f.lo = 0;
  f.hi = 1;
  return f;
}

LaneFacts facts_observed(std::size_t n, Word lo, Word hi) {
  LaneFacts f = LaneFacts::unknown(n);
  if (n == 0) return f;
  f.has_range = true;
  f.lo = lo;
  f.hi = hi;
  f.tight = true;
  return f;
}

}  // namespace folvec::analysis
