// Unbalanced binary search tree with pooled, structure-of-arrays storage,
// and the FOL1-based bulk insertion of paper Section 4.3.
//
// Layout: node fields live in parallel arrays (`key`, plus a unified child
// array where child[2*node] is the left link and child[2*node + 1] the
// right link) so the vectorized inserter can traverse and relink with
// list-vector gathers and scatters. The tree root is child slot
// 2*capacity, making "empty tree" just another null child slot and letting
// the bulk inserter treat root creation like any other link write.
//
// Bulk insertion descends all pending keys one level per pass. Keys whose
// next child link is null become *candidates*: they want to allocate a node
// and write its index into that link slot. Several candidates can target
// the same slot — the shared-data hazard of Figure 4 — so one
// overwrite-and-check round (lane labels scattered into a per-slot work
// array) filters the winners; losers resume their descent *through the
// winner's freshly created node* on the next pass, exactly as sequential
// insertion would have collided with it.
//
// Duplicate keys descend right, matching the scalar baseline.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "vm/cost_model.h"
#include "vm/machine.h"

namespace folvec::tree {

inline constexpr vm::Word kNull = -1;

struct BulkInsertStats {
  std::size_t passes = 0;          ///< level-descent vector passes
  std::size_t conflict_lanes = 0;  ///< candidate lanes that lost a round
};

class Bst {
 public:
  /// `capacity` bounds the total number of nodes ever inserted.
  explicit Bst(std::size_t capacity, vm::CostAccumulator* cost = nullptr);

  /// Sequential insertion (the Figure 14 baseline).
  void insert_scalar(vm::Word key);

  /// Vectorized bulk insertion of `keys` (duplicates allowed).
  BulkInsertStats insert_bulk(vm::VectorMachine& m,
                              std::span<const vm::Word> keys);

  bool contains(vm::Word key) const;
  std::size_t size() const { return alloc_; }

  /// In-order key sequence (ascending when the BST invariant holds).
  std::vector<vm::Word> inorder() const;

  /// True iff every node's subtree satisfies the BST ordering invariant
  /// (left < node, right >= node) and the link structure is a proper tree.
  bool check_invariant() const;

  /// Height of the tree (0 for empty).
  std::size_t height() const;

  /// Rebuilds the tree to minimum height with vector operations — the
  /// "tree rebalancing" named as future work in the paper's conclusion.
  /// The sorted key sequence is re-linked by level-synchronous midpoint
  /// construction: every level's nodes are allocated with one contiguous
  /// store and linked with one scatter (slots of distinct parents never
  /// conflict, so no FOL pass is needed — a useful contrast with
  /// insert_bulk). Contents and in-order sequence are unchanged.
  void rebalance(vm::VectorMachine& m);

 private:
  vm::Word root() const { return child_[root_slot()]; }
  std::size_t root_slot() const { return 2 * key_.size(); }

  std::vector<vm::Word> key_;    ///< pool: node keys
  std::vector<vm::Word> child_;  ///< pool: links; [2i]=left, [2i+1]=right,
                                 ///< [2*capacity]=root
  std::size_t alloc_ = 0;
  mutable vm::ScalarCost cost_;
};

}  // namespace folvec::tree
