# Empty dependencies file for fig09_hash_time.
# This may be replaced when dependencies are built.
