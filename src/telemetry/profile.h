// Cost-model calibration profiler.
//
// The chime model (vm/cost_model.h) predicts `cost = startup + n *
// per_element` cycles per instruction; the paper's claims are stated in
// those modeled chimes, but since PR 7 the headline win is wall-clock.
// This profiler quantifies how well the model tracks the host: every
// executed instruction contributes one (elements, wall_ns) sample to a
// per-op-class series, and at report time each series yields
//
//   * a least-squares fit  wall_ns ~ a_ns + b_ns * elements  with R² and
//     the RMS residual (the chime model is affine in n, so R² against n
//     is exactly R² against the chime prediction), and
//   * p50/p90/p99 wall_ns from a PercentileSketch (bounded relative
//     error, deterministic, mergeable).
//
// The bench reporter (bench_harness/report.cpp) pairs each fitted series
// with the op class's chime constants and emits the "calibration" section
// of every BENCH_*.json; high-residual classes are flagged so a model
// mismatch is visible per report and trendable across PRs.
//
// Like the tracer and the metrics registry, the profiler is a
// process-wide borrowed pointer, nullptr by default: the off path is one
// relaxed atomic load per instruction, enforced by micro_vm's overhead
// guard. Series are keyed by the op-class mnemonic pointer (static
// storage) so the hot-path record is a pointer-hash lookup; snapshot()
// re-keys by string and merges aliases.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>

#include "telemetry/metrics.h"

namespace folvec::telemetry {

/// Least-squares fit of one op class's wall ~ elements relation.
struct OpFit {
  std::uint64_t samples = 0;
  double a_ns = 0.0;  // intercept: fitted fixed cost per instruction
  double b_ns = 0.0;  // slope: fitted cost per element
  double r2 = 0.0;    // coefficient of determination, clamped to [0, 1]
  double rms_residual_ns = 0.0;
};

class Profiler {
 public:
  /// One op class's accumulated samples: the moments needed for the
  /// least-squares fit plus a wall_ns percentile sketch.
  struct Series {
    std::uint64_t samples = 0;
    std::uint64_t elements = 0;  // total lanes across samples
    double sum_n = 0.0;          // Σ elements
    double sum_nn = 0.0;         // Σ elements²
    double sum_w = 0.0;          // Σ wall_ns
    double sum_ww = 0.0;         // Σ wall_ns²
    double sum_nw = 0.0;         // Σ elements · wall_ns
    PercentileSketch wall_ns;

    /// Fit from the moments. With < 2 samples or zero variance in n the
    /// slope is 0 and the intercept is the mean; R² is then 1 exactly
    /// when the samples are constant (nothing left to explain).
    OpFit fit() const;
    void merge(const Series& other);
  };

  /// Records one executed instruction. `static_name` must point at storage
  /// that outlives the profiler (op-class mnemonics do). Thread-safe.
  void record(const char* static_name, std::size_t elements,
              double wall_seconds);

  /// Copies all series out, keyed by op name; series recorded under
  /// distinct pointers with equal spellings are merged.
  std::map<std::string, Series> snapshot() const;

  void reset();

 private:
  mutable std::mutex mu_;
  std::unordered_map<const char*, Series> series_;
};

/// The installed profiler, or nullptr (borrowed, same contract as
/// metrics() / tracer()).
Profiler* profiler();
void install_profiler(Profiler* p);

/// Zero-cost-when-off recording helper.
inline void profile_op(const char* static_name, std::size_t elements,
                       double wall_seconds) {
  if (Profiler* p = profiler()) p->record(static_name, elements, wall_seconds);
}

/// RAII install/uninstall of a profiler (tests, bench mains).
class ScopedProfiler {
 public:
  explicit ScopedProfiler(Profiler& p);
  ~ScopedProfiler();
  ScopedProfiler(const ScopedProfiler&) = delete;
  ScopedProfiler& operator=(const ScopedProfiler&) = delete;

 private:
  Profiler* previous_;
};

}  // namespace folvec::telemetry
