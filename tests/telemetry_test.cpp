// Tests for the telemetry layer: metrics registry (counters, gauges,
// log2-bucket histograms), snapshot views and algebra, the span tracer's
// Chrome trace-event export, and the environment-driven session.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/json.h"
#include "telemetry/metrics.h"
#include "telemetry/session.h"
#include "telemetry/spans.h"

namespace folvec::telemetry {
namespace {

// ---- histogram buckets ------------------------------------------------------

TEST(HistogramTest, BucketIsBitWidth) {
  EXPECT_EQ(histogram_bucket(0), 0u);
  EXPECT_EQ(histogram_bucket(1), 1u);
  EXPECT_EQ(histogram_bucket(2), 2u);
  EXPECT_EQ(histogram_bucket(3), 2u);
  EXPECT_EQ(histogram_bucket(4), 3u);
  EXPECT_EQ(histogram_bucket(1023), 10u);
  EXPECT_EQ(histogram_bucket(1024), 11u);
  EXPECT_EQ(histogram_bucket(~std::uint64_t{0}), 64u);
}

TEST(HistogramTest, BucketRangesTileTheDomain) {
  EXPECT_EQ(histogram_bucket_range(0), (std::pair<std::uint64_t,
                                                  std::uint64_t>{0, 0}));
  std::uint64_t expected_lo = 1;
  for (std::size_t b = 1; b <= 64; ++b) {
    const auto [lo, hi] = histogram_bucket_range(b);
    EXPECT_EQ(lo, expected_lo) << "bucket " << b;
    EXPECT_EQ(histogram_bucket(lo), b);
    EXPECT_EQ(histogram_bucket(hi), b);
    if (b < 64) expected_lo = hi + 1;
  }
}

TEST(HistogramTest, RecordTracksCountSumMinMaxAndWeights) {
  HistogramData h;
  h.record(5);
  h.record(0);
  h.record(100, 3);  // three occurrences at once
  h.record(7, 0);    // zero weight: must be a no-op
  EXPECT_EQ(h.count, 5u);
  EXPECT_EQ(h.sum, 305u);
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 100u);
  EXPECT_EQ(h.buckets[histogram_bucket(100)], 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 61.0);
}

TEST(HistogramTest, MergeCombines) {
  HistogramData a;
  a.record(2);
  HistogramData b;
  b.record(1000, 2);
  a.merge(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.sum, 2002u);
  EXPECT_EQ(a.min, 2u);
  EXPECT_EQ(a.max, 1000u);
  a.merge(HistogramData{});  // empty merge is a no-op
  EXPECT_EQ(a.count, 3u);
}

// ---- registry and helpers ---------------------------------------------------

TEST(MetricsRegistryTest, HelpersAreNoOpsWithoutARegistry) {
  ASSERT_EQ(metrics(), nullptr) << "another test leaked an installed registry";
  // Must not crash — this is the production disabled path.
  count("x");
  gauge_set("x", 1);
  gauge_max("x", 2);
  observe("x", 3);
  time_add("x", 0.5);
  label("x", "y");
}

TEST(MetricsRegistryTest, ScopedInstallRoutesHelpersAndRestores) {
  MetricsRegistry outer;
  {
    const ScopedMetrics install_outer(outer);
    EXPECT_EQ(metrics(), &outer);
    count("c", 2);
    {
      MetricsRegistry inner;
      const ScopedMetrics install_inner(inner);
      EXPECT_EQ(metrics(), &inner);
      count("c", 5);
      EXPECT_EQ(inner.snapshot().counters.at("c"), 5u);
    }
    EXPECT_EQ(metrics(), &outer);
    count("c");
    gauge_set("g", -3);
    gauge_max("g", 10);
    gauge_max("g", 4);  // below the high-water mark: ignored
    observe("h", 6, 2);
    time_add("t", 0.25);
    time_add("t", 0.25);
    label("l", "first");
    label("l", "second");
  }
  EXPECT_EQ(metrics(), nullptr);
  const MetricsSnapshot snap = outer.snapshot();
  EXPECT_EQ(snap.counters.at("c"), 3u);
  EXPECT_EQ(snap.gauges.at("g"), 10);
  EXPECT_EQ(snap.histograms.at("h").count, 2u);
  EXPECT_DOUBLE_EQ(snap.timings.at("t"), 0.5);
  EXPECT_EQ(snap.labels.at("l"), "second");
}

TEST(MetricsRegistryTest, ResetClears) {
  MetricsRegistry r;
  r.add("c");
  r.observe("h", 1);
  r.reset();
  EXPECT_TRUE(r.snapshot().empty());
}

TEST(MetricsRegistryTest, ConcurrentRecordingIsExact) {
  MetricsRegistry r;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r] {
      for (int i = 0; i < kPerThread; ++i) {
        r.add("shared");
        r.observe("hist", static_cast<std::uint64_t>(i % 7));
      }
    });
  }
  for (auto& t : threads) t.join();
  const MetricsSnapshot snap = r.snapshot();
  EXPECT_EQ(snap.counters.at("shared"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.histograms.at("hist").count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ---- snapshot views and algebra ---------------------------------------------

MetricsSnapshot sample_snapshot() {
  MetricsRegistry r;
  r.add("fol1.rounds", 3);
  r.add("pool.jobs", 9);
  r.add("backend.pinned", 1);
  r.gauge_max("backend.workers", 8);
  r.gauge_max("fol1.depth", 2);
  r.observe("fol1.set_size", 100);
  r.observe("pool.imbalance", 5);
  r.time_add("vm.op.v.arith.wall_seconds", 0.5);
  r.label("backend.name", "parallel");
  return r.snapshot();
}

TEST(MetricsSnapshotTest, DeterministicViewDropsHostState) {
  const MetricsSnapshot det = sample_snapshot().deterministic();
  EXPECT_TRUE(det.counters.contains("fol1.rounds"));
  EXPECT_FALSE(det.counters.contains("pool.jobs"));
  EXPECT_FALSE(det.counters.contains("backend.pinned"));
  EXPECT_TRUE(det.gauges.contains("fol1.depth"));
  EXPECT_FALSE(det.gauges.contains("backend.workers"));
  EXPECT_TRUE(det.histograms.contains("fol1.set_size"));
  EXPECT_FALSE(det.histograms.contains("pool.imbalance"));
  EXPECT_TRUE(det.timings.empty());
  EXPECT_TRUE(det.labels.empty());
}

TEST(MetricsSnapshotTest, DiffSubtractsCountersAndHistograms) {
  MetricsRegistry r;
  r.add("c", 10);
  r.observe("h", 4, 2);
  const MetricsSnapshot before = r.snapshot();
  r.add("c", 7);
  r.add("fresh", 1);
  r.observe("h", 4);
  const MetricsSnapshot delta = MetricsSnapshot::diff(r.snapshot(), before);
  EXPECT_EQ(delta.counters.at("c"), 7u);
  EXPECT_EQ(delta.counters.at("fresh"), 1u);
  EXPECT_EQ(delta.histograms.at("h").count, 1u);
  EXPECT_EQ(delta.histograms.at("h").sum, 4u);
}

TEST(MetricsSnapshotTest, MergeAddsAndTakesGaugeMax) {
  MetricsSnapshot a = sample_snapshot();
  MetricsSnapshot b = sample_snapshot();
  b.gauges["fol1.depth"] = 1;  // below a's value: merge keeps the max
  a.merge(b);
  EXPECT_EQ(a.counters.at("fol1.rounds"), 6u);
  EXPECT_EQ(a.gauges.at("fol1.depth"), 2);
  EXPECT_EQ(a.histograms.at("fol1.set_size").count, 2u);
  EXPECT_DOUBLE_EQ(a.timings.at("vm.op.v.arith.wall_seconds"), 1.0);
}

TEST(MetricsSnapshotTest, TextAndJsonRenderings) {
  const MetricsSnapshot snap = sample_snapshot();
  const std::string text = snap.to_text();
  EXPECT_NE(text.find("counter   fol1.rounds = 3"), std::string::npos);
  EXPECT_NE(text.find("label     backend.name = parallel"), std::string::npos);

  const JsonValue doc = JsonValue::parse(snap.to_json(-1));
  EXPECT_EQ(doc.find("counters")->find("fol1.rounds")->as_number(), 3.0);
  EXPECT_EQ(doc.find("labels")->find("backend.name")->as_string(), "parallel");
  const JsonValue* hist = doc.find("histograms")->find("fol1.set_size");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("count")->as_number(), 1.0);
  EXPECT_EQ(hist->find("buckets")->as_array().size(), 1u);
}

// ---- span tracer ------------------------------------------------------------

/// Parses the tracer's output and returns (name, cat) pairs in file order.
std::vector<std::pair<std::string, std::string>> trace_events(
    const SpanTracer& tracer) {
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const JsonValue doc = JsonValue::parse(os.str());
  std::vector<std::pair<std::string, std::string>> out;
  for (const JsonValue& ev : doc.find("traceEvents")->as_array()) {
    out.emplace_back(ev.find("name")->as_string(),
                     ev.find("cat")->as_string());
  }
  return out;
}

TEST(SpanTracerTest, NestedSpansCarryChimeDeltas) {
  SpanTracer tracer;
  tracer.begin("outer", 100, 1000);
  tracer.begin("inner", 140, 1400);
  tracer.end(150, 1500);  // inner: +10 instructions, +100 elements
  tracer.end(200, 2000);  // outer: +100 instructions, +1000 elements
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.open_depth(), 0u);

  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const JsonValue doc = JsonValue::parse(os.str());
  const JsonArray& evs = doc.find("traceEvents")->as_array();
  ASSERT_EQ(evs.size(), 2u);
  // Spans close inner-first.
  EXPECT_EQ(evs[0].find("name")->as_string(), "inner");
  EXPECT_EQ(evs[0].find("args")->find("chime_instructions")->as_number(), 10.0);
  EXPECT_EQ(evs[0].find("args")->find("chime_elements")->as_number(), 100.0);
  EXPECT_EQ(evs[1].find("name")->as_string(), "outer");
  EXPECT_EQ(evs[1].find("args")->find("chime_instructions")->as_number(),
            100.0);
  // The inner span nests inside the outer one on the timeline.
  const double outer_ts = evs[1].find("ts")->as_number();
  const double outer_dur = evs[1].find("dur")->as_number();
  const double inner_ts = evs[0].find("ts")->as_number();
  const double inner_dur = evs[0].find("dur")->as_number();
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_ts + inner_dur, outer_ts + outer_dur + 1e-9);
}

TEST(SpanTracerTest, OpEventsAndUnbalancedEnd) {
  SpanTracer tracer;
  const auto t0 = SpanTracer::Clock::now();
  tracer.op("v.gather", 128, t0, t0 + std::chrono::microseconds(5));
  tracer.end();  // unbalanced: ignored
  EXPECT_EQ(tracer.size(), 1u);
  const auto evs = trace_events(tracer);
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0], (std::pair<std::string, std::string>{"v.gather", "op"}));
}

TEST(SpanTracerTest, CapacityDropsButCounts) {
  SpanTracer tracer(2);
  const auto t0 = SpanTracer::Clock::now();
  for (int i = 0; i < 5; ++i) tracer.op("v.arith", 1, t0, t0);
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.dropped(), 3u);
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const JsonValue doc = JsonValue::parse(os.str());
  EXPECT_EQ(doc.find("otherData")->find("dropped_events")->as_number(), 3.0);
}

TEST(SpanTracerTest, OpenSpansAppearInOutputWithoutMutatingState) {
  SpanTracer tracer;
  tracer.begin("still_open");
  EXPECT_EQ(tracer.open_depth(), 1u);
  const auto evs = trace_events(tracer);
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].first, "still_open");
  // The tracer itself still considers the span open.
  EXPECT_EQ(tracer.open_depth(), 1u);
  EXPECT_EQ(tracer.size(), 0u);
  tracer.end();
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(SpanTracerTest, ScopedSpanOnlyRecordsWhenInstalled) {
  { const ScopedSpan off("ignored"); }  // no tracer installed: no-op

  SpanTracer tracer;
  {
    const ScopedTracer install(tracer);
    ASSERT_TRUE(tracing());
    const ScopedSpan named("phase");
    const ScopedSpan indexed("round", 7);
  }
  EXPECT_FALSE(tracing());
  const auto evs = trace_events(tracer);
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].first, "round[7]");
  EXPECT_EQ(evs[1].first, "phase");
}

// ---- env session ------------------------------------------------------------

class EnvSessionTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("FOLVEC_TRACE_JSON");
    ::unsetenv("FOLVEC_METRICS");
  }
};

TEST_F(EnvSessionTest, InstallsRegistryAndRestores) {
  ASSERT_EQ(metrics(), nullptr);
  {
    EnvSession session;
    EXPECT_EQ(metrics(), &session.registry());
    EXPECT_EQ(session.span_tracer(), nullptr);  // no FOLVEC_TRACE_JSON
    count("session.counter", 4);
    EXPECT_EQ(session.registry().snapshot().counters.at("session.counter"),
              4u);
  }
  EXPECT_EQ(metrics(), nullptr);
}

TEST_F(EnvSessionTest, WritesTraceAndMetricsFiles) {
  const std::string trace_path = ::testing::TempDir() + "folvec_trace.json";
  const std::string metrics_path = ::testing::TempDir() + "folvec_metrics.json";
  ::setenv("FOLVEC_TRACE_JSON", trace_path.c_str(), 1);
  ::setenv("FOLVEC_METRICS", metrics_path.c_str(), 1);
  {
    EnvSession session;
    ASSERT_NE(session.span_tracer(), nullptr);
    ASSERT_TRUE(session.trace_path().has_value());
    const ScopedSpan span("unit_test");
    count("session.file_counter", 2);
  }
  std::ifstream trace_in(trace_path);
  ASSERT_TRUE(trace_in.good());
  std::stringstream trace_buf;
  trace_buf << trace_in.rdbuf();
  const JsonValue trace = JsonValue::parse(trace_buf.str());
  ASSERT_EQ(trace.find("traceEvents")->as_array().size(), 1u);
  EXPECT_EQ(
      trace.find("traceEvents")->as_array()[0].find("name")->as_string(),
      "unit_test");

  std::ifstream metrics_in(metrics_path);
  ASSERT_TRUE(metrics_in.good());
  std::stringstream metrics_buf;
  metrics_buf << metrics_in.rdbuf();
  const JsonValue snap = JsonValue::parse(metrics_buf.str());
  EXPECT_EQ(snap.find("counters")->find("session.file_counter")->as_number(),
            2.0);

  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

}  // namespace
}  // namespace folvec::telemetry
