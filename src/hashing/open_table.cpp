#include "hashing/open_table.h"

#include <string>
#include <unordered_set>
#include <utility>

#include "hashing/hash_fn.h"
#include "support/faultsim.h"
#include "support/require.h"
#include "telemetry/metrics.h"
#include "vm/buffer_pool.h"
#include "vm/checker.h"

namespace folvec::hashing {

using vm::Mask;
using vm::VectorMachine;
using vm::Word;
using vm::WordVec;

ScalarOpenTable::ScalarOpenTable(std::size_t table_size, ProbeVariant variant,
                                 vm::CostAccumulator* cost)
    : slots_(table_size, kUnentered), variant_(variant), cost_(cost) {
  FOLVEC_REQUIRE(table_size > 32,
                 "the key-dependent probe step requires size(table) > 32");
}

Word ScalarOpenTable::probe_step(Word key) const {
  switch (variant_) {
    case ProbeVariant::kLinear:
      return 1;
    case ProbeVariant::kKeyDependent:
      return (key & 31) + 1;
  }
  return 1;
}

Status ScalarOpenTable::try_insert(Word key, std::size_t* probes_out) {
  FOLVEC_REQUIRE(key >= 0, "keys must be non-negative");
  if (FaultPlan* plan = faults();
      plan != nullptr && plan->fires(FaultSite::kProbeSaturation)) {
    telemetry::count("fault.injected.probe");
    return Status(StatusCode::kProbeCycleSaturated,
                  "injected probe-cycle saturation");
  }
  if (entered_ == slots_.size()) {
    // Genuinely full: a distinct condition from a saturated probe cycle,
    // and one growing also fixes.
    return Status(StatusCode::kTableFull,
                  "every slot of the " + std::to_string(slots_.size()) +
                      "-slot table is occupied");
  }
  const auto size = static_cast<Word>(slots_.size());
  // hash: one (slow) integer division plus bookkeeping on the scalar unit.
  cost_.div(1);
  cost_.alu(1);
  Word h = mod_hash(key, size);
  std::size_t probes = 1;
  // Probe until an empty slot; each probe is a load + compare-and-branch,
  // and a re-probe adds the step arithmetic and another modulus.
  cost_.mem(1);
  cost_.branch(1);
  while (slots_[static_cast<std::size_t>(h)] != kUnentered) {
    FOLVEC_REQUIRE(slots_[static_cast<std::size_t>(h)] != key,
                   "duplicate key inserted into an open-addressing table");
    h = mod_hash(h + probe_step(key), size);
    ++probes;
    cost_.div(1);
    cost_.alu(2);
    cost_.mem(1);
    cost_.branch(1);
    // The sequence advances by a constant step, so its cycle length divides
    // the table size: after `size` probes every reachable slot has been
    // visited. Exceeding that means the key's cycle holds no free slot even
    // though the table is not full (gcd hazard — see the header).
    if (probes > slots_.size()) {
      telemetry::count("hashing.probe_cycle_saturated");
      return Status(
          StatusCode::kProbeCycleSaturated,
          "probe cycle of key " + std::to_string(key) + " (step " +
              std::to_string(probe_step(key)) + ", table size " +
              std::to_string(slots_.size()) +
              ") has no free slot although the table is not full");
    }
  }
  slots_[static_cast<std::size_t>(h)] = key;
  cost_.mem(1);
  ++entered_;
  telemetry::observe("hashing.scalar.probe_count", probes);
  if (probes_out != nullptr) *probes_out = probes;
  return Status::ok();
}

std::size_t ScalarOpenTable::insert(Word key) {
  std::size_t probes = 0;
  const Status st = try_insert(key, &probes);
  if (!st.is_ok()) throw RecoverableError(st.code(), st.message());
  return probes;
}

void ScalarOpenTable::grow() {
  // The next prime above twice the current size: prime sizes make
  // gcd(step, size) = 1 for every key-dependent step in [1, 32], so every
  // probe cycle covers the whole table and saturation implies truly full.
  std::size_t candidate = slots_.size() * 2 + 1;
  const auto is_prime = [](std::size_t v) {
    for (std::size_t d = 3; d * d <= v; d += 2) {
      if (v % d == 0) return false;
    }
    return (v & 1) != 0;
  };
  while (!is_prime(candidate)) candidate += 2;
  std::vector<Word> old = std::move(slots_);
  slots_.assign(candidate, kUnentered);
  entered_ = 0;
  ++grows_;
  telemetry::count("hashing.scalar.grows");
  for (Word v : old) {
    if (v == kUnentered) continue;
    // Re-entry cannot fail: the new size is prime (full-cycle probing) and
    // strictly larger than the number of live keys. Injected faults are
    // ignored here — the re-entry IS the recovery path.
    const auto size = static_cast<Word>(slots_.size());
    cost_.div(1);
    cost_.alu(1);
    Word h = mod_hash(v, size);
    cost_.mem(1);
    cost_.branch(1);
    while (slots_[static_cast<std::size_t>(h)] != kUnentered) {
      h = mod_hash(h + probe_step(v), size);
      cost_.div(1);
      cost_.alu(2);
      cost_.mem(1);
      cost_.branch(1);
    }
    slots_[static_cast<std::size_t>(h)] = v;
    cost_.mem(1);
    ++entered_;
  }
}

std::size_t ScalarOpenTable::insert_or_grow(Word key) {
  // One grow always suffices for a genuine failure (prime size, cycle
  // covers the table, size > 2x the live keys), so the bound only trips
  // under sustained fault injection — surface that instead of growing
  // without limit.
  constexpr std::size_t kMaxGrows = 3;
  Status st;
  for (std::size_t attempt = 0; attempt <= kMaxGrows; ++attempt) {
    std::size_t probes = 0;
    st = try_insert(key, &probes);
    if (st.is_ok()) {
      if (attempt != 0 && faults() != nullptr) {
        telemetry::count("fault.recovered.probe");
      }
      return probes;
    }
    if (attempt < kMaxGrows) grow();
  }
  throw RecoverableError(st.code(), st.message());
}

bool ScalarOpenTable::contains(Word key) const {
  const auto size = static_cast<Word>(slots_.size());
  Word h = mod_hash(key, size);
  for (std::size_t probes = 0; probes <= slots_.size() * 33; ++probes) {
    const Word v = slots_[static_cast<std::size_t>(h)];
    if (v == key) return true;
    if (v == kUnentered) return false;
    h = mod_hash(h + probe_step(key), size);
  }
  return false;
}

namespace {

/// Body of the Figure 8 insert, factored so the try_ wrapper can translate
/// its recoverable failure modes into Statuses without unwinding machinery
/// at every return site.
Status multi_hash_open_insert_body(VectorMachine& m, std::span<Word> table,
                                   std::span<const Word> keys,
                                   ProbeVariant variant,
                                   MultiHashStats& stats) {
  if (keys.empty()) return Status::ok();
  const auto size = static_cast<Word>(table.size());
  FOLVEC_REQUIRE(size > 32,
                 "the key-dependent probe step requires size(table) > 32");
  if (FaultPlan* plan = faults();
      plan != nullptr && plan->fires(FaultSite::kProbeSaturation)) {
    telemetry::count("fault.injected.probe");
    return Status(StatusCode::kProbeCycleSaturated,
                  "injected probe-cycle saturation");
  }
  std::size_t free_slots = 0;
  for (Word v : table) free_slots += (v == kUnentered) ? 1u : 0u;
  if (keys.size() > free_slots) {
    // Data-dependent, not caller misuse: how full the table is depends on
    // what was previously inserted. Recover by growing (see
    // VectorHashMap::rehash) and retrying the batch.
    return Status(StatusCode::kTableFull,
                  std::to_string(keys.size()) + " keys for " +
                      std::to_string(free_slots) + " free slots");
  }

  const vm::AlgoSpan span(m, "hashing.multi_insert");
  telemetry::count("hashing.insert_calls");
  telemetry::count("hashing.keys", keys.size());

  // Figure 8, first entry attempt: hash, then store keys into empty slots.
  // More than one key may be written to one entry — the ELS scatter keeps
  // exactly one intact, and the check below detects the losers. The whole
  // insert loop is the overwrite-and-check idiom, so the racing scatters
  // are a sanctioned data-race window over the table.
  const vm::ConflictWindow window(m, table, vm::WindowKind::kDataRace,
                                  "multiple hashing insert");
  // Retry-round working vectors are pooled and refilled in place; after the
  // first round the loop performs no allocation.
  vm::BufferPool& pool = m.pool();
  vm::PooledVec key_vec(pool, keys.size());
  vm::PooledVec next_key(pool, keys.size());
  vm::PooledVec next_hashed(pool, keys.size());
  vm::PooledVec probed(pool, keys.size());
  // Kept half of the splits; unused.
  vm::PooledVec entered_scratch(pool, keys.size());
  // Named intermediates for the batched subscript recalculation below:
  // queued kernels hold pointers into these until the batch flushes, so the
  // chain cannot be composed from value-returning temporaries.
  vm::PooledVec probe_tmp(pool, keys.size());
  vm::PooledVec step_vec(pool, keys.size());
  m.copy_into(*key_vec, keys);
  WordVec hashed = m.mod_scalar(*key_vec, size);
  {
    m.gather_into(*probed, table, hashed);
    const Mask empty = m.eq_scalar(*probed, kUnentered);
    m.scatter_masked(table, hashed, *key_vec, empty);
  }
  stats.max_vector_len = key_vec->size();

  // Outer loop: detect which keys made it, pack the rest, re-probe.
  const std::size_t max_iterations = table.size() * 33;
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    ++stats.iterations;
    const vm::AlgoSpan round_span(m, "retry", iter);
    m.gather_into(*probed, table, hashed);
    const Mask entered = m.eq(*probed, *key_vec);
    const std::size_t nrest = key_vec->size() - m.count_true(entered);
    // Keys confirmed entered this pass found their slot on probe iter+1.
    telemetry::observe("hashing.probe_count", iter + 1,
                       key_vec->size() - nrest);
    if (nrest == 0) {
      telemetry::count("hashing.retry_rounds", stats.iterations);
      telemetry::observe("hashing.retry_rounds_per_call", stats.iterations);
      return Status::ok();
    }

    // One partition per control vector replaces the old mask_not + two
    // compresses; the kept (entered) halves are dead.
    m.partition_into(*entered_scratch, *next_hashed, hashed, entered);
    m.partition_into(*entered_scratch, *next_key, *key_vec, entered);
    std::swap(hashed, *next_hashed);
    std::swap(*key_vec, *next_key);

    // Subscript recalculation. The optimized variant separates keys that
    // collided at the same slot by giving each its own stride. The whole
    // chain is elementwise, so it queues under one OpBatch and crosses the
    // pool boundary once at the gather below instead of once per op.
    {
      const vm::VectorMachine::OpBatch batch(m);
      switch (variant) {
        case ProbeVariant::kLinear:
          m.add_scalar_into(*probe_tmp, hashed, 1);
          m.mod_scalar_into(hashed, *probe_tmp, size);
          break;
        case ProbeVariant::kKeyDependent:
          m.and_scalar_into(*probe_tmp, *key_vec, 31);
          m.add_scalar_into(*step_vec, *probe_tmp, 1);
          m.add_into(*probe_tmp, hashed, *step_vec);
          m.mod_scalar_into(hashed, *probe_tmp, size);
          break;
      }
    }

    m.gather_into(*probed, table, hashed);
    const Mask empty = m.eq_scalar(*probed, kUnentered);
    m.scatter_masked(table, hashed, *key_vec, empty);
  }
  // A full sweep of the table without convergence: every remaining key's
  // probe cycle is saturated (composite size + gcd hazard). The table holds
  // the keys that did land; the caller recovers by growing and re-deriving
  // the remainder.
  telemetry::count("hashing.probe_cycle_saturated");
  return Status(StatusCode::kProbeCycleSaturated,
                "multiple hashing swept the table without converging (" +
                    std::to_string(key_vec->size()) +
                    " keys on saturated probe cycles)");
}

}  // namespace

Status try_multi_hash_open_insert(VectorMachine& m, std::span<Word> table,
                                  std::span<const Word> keys,
                                  ProbeVariant variant,
                                  MultiHashStats* stats_out) {
  MultiHashStats stats;
  Status st;
  try {
    st = multi_hash_open_insert_body(m, table, keys, variant, stats);
  } catch (const RecoverableError& e) {
    // A capped buffer pool running dry mid-insert arrives as an exception
    // from acquire(); forward it as a value.
    st = e.status();
  }
  if (stats_out != nullptr) *stats_out = stats;
  return st;
}

MultiHashStats multi_hash_open_insert(VectorMachine& m,
                                      std::span<Word> table,
                                      std::span<const Word> keys,
                                      ProbeVariant variant) {
  MultiHashStats stats;
  const Status st = multi_hash_open_insert_body(m, table, keys, variant, stats);
  if (!st.is_ok()) throw RecoverableError(st.code(), st.message());
  return stats;
}

vm::Mask multi_hash_open_contains(VectorMachine& m,
                                  std::span<const Word> table,
                                  std::span<const Word> keys,
                                  ProbeVariant variant,
                                  MultiHashLookupStats* lookup_stats) {
  if (lookup_stats != nullptr) *lookup_stats = MultiHashLookupStats{};
  const auto size = static_cast<Word>(table.size());
  FOLVEC_REQUIRE(size > 32,
                 "the key-dependent probe step requires size(table) > 32");
  Mask found(keys.size(), 0);
  if (keys.empty()) return found;

  // Lockstep probing: lanes retire when they hit their key (found) or an
  // empty slot (absent); the rest advance along their probe sequence.
  // Working vectors are pooled; the probe loop allocates only masks.
  vm::BufferPool& pool = m.pool();
  vm::PooledVec key_vec(pool, keys.size());
  vm::PooledVec lane(pool, keys.size());
  vm::PooledVec probed(pool, keys.size());
  vm::PooledVec hit_lanes(pool, keys.size());
  vm::PooledVec packed(pool, keys.size());
  // Named intermediates for the batched subscript recalculation (see the
  // insert loop): queued kernels hold pointers into these until the flush.
  vm::PooledVec probe_tmp(pool, keys.size());
  vm::PooledVec step_vec(pool, keys.size());
  m.copy_into(*key_vec, keys);
  m.iota_into(*lane, keys.size());
  WordVec hashed = m.mod_scalar(*key_vec, size);
  const std::size_t max_iterations = table.size() * 33;
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    m.gather_into(*probed, table, hashed);
    const Mask hit = m.eq(*probed, *key_vec);
    const Mask miss = m.eq_scalar(*probed, kUnentered);
    // Record hits through the lane index vector.
    m.compress_into(*hit_lanes, *lane, hit);
    for (Word l : *hit_lanes) found[static_cast<std::size_t>(l)] = 1;
    const Mask active = m.mask_not(m.mask_or(hit, miss));
    if (m.count_true(active) == 0) return found;
    m.compress_into(*packed, *key_vec, active);
    std::swap(*key_vec, *packed);
    m.compress_into(*packed, *lane, active);
    std::swap(*lane, *packed);
    m.compress_into(*packed, hashed, active);
    std::swap(hashed, *packed);
    {
      const vm::VectorMachine::OpBatch batch(m);
      switch (variant) {
        case ProbeVariant::kLinear:
          m.add_scalar_into(*probe_tmp, hashed, 1);
          m.mod_scalar_into(hashed, *probe_tmp, size);
          break;
        case ProbeVariant::kKeyDependent:
          m.and_scalar_into(*probe_tmp, *key_vec, 31);
          m.add_scalar_into(*step_vec, *probe_tmp, 1);
          m.add_into(*probe_tmp, hashed, *step_vec);
          m.mod_scalar_into(hashed, *probe_tmp, size);
          break;
      }
    }
  }
  // Lanes still probing after a full sweep of the table are reported
  // absent. Reachable only when some probe cycle holds no empty slot — the
  // table is completely full, or a composite size saturated a cycle (gcd
  // hazard, see the header) — so surface the count instead of falling
  // through silently: a caller seeing nonzero exhausted lanes on a table it
  // believes sparse has hit the hazard and should grow to a prime size.
  telemetry::count("hashing.lookup_sweep_exhausted", key_vec->size());
  if (lookup_stats != nullptr) {
    lookup_stats->sweep_exhausted_lanes = key_vec->size();
  }
  return found;
}

}  // namespace folvec::hashing
