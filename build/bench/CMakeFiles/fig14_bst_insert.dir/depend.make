# Empty dependencies file for fig14_bst_insert.
# This may be replaced when dependencies are built.
