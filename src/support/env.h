// Environment-variable parsing shared by every FOLVEC_* switch.
//
// Historically each switch grew its own ad-hoc parser; FOLVEC_AUDIT treated
// only the literal "0" as off, so `FOLVEC_AUDIT=off` silently *enabled* the
// auditor. All boolean-ish switches (FOLVEC_AUDIT, FOLVEC_BACKEND's boolean
// spellings) now share env_flag(): case-insensitive, whitespace-trimmed, and
// with every common "off" spelling recognised.
#pragma once

#include <cctype>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

namespace folvec {

/// Lower-cases ASCII letters and strips leading/trailing whitespace.
inline std::string env_normalize(std::string_view raw) {
  std::size_t begin = 0;
  std::size_t end = raw.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(raw[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(raw[end - 1])) != 0) {
    --end;
  }
  std::string out;
  out.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(raw[i]))));
  }
  return out;
}

/// Interprets a boolean-ish environment value. Off spellings (case- and
/// whitespace-insensitive): empty, "false", "off", "no", and any all-digit
/// string equal to zero ("0", "00", ...). Everything else is on.
inline bool env_flag(std::string_view raw) {
  const std::string v = env_normalize(raw);
  if (v.empty() || v == "false" || v == "off" || v == "no") return false;
  bool all_digits = true;
  bool any_nonzero = false;
  for (char c : v) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
      all_digits = false;
      break;
    }
    if (c != '0') any_nonzero = true;
  }
  if (all_digits) return any_nonzero;
  return true;
}

/// Reads an environment variable; nullopt when unset or empty.
inline std::optional<std::string> env_value(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  return std::string(raw);
}

}  // namespace folvec
