#include "gc/heap.h"

#include <set>
#include <utility>

#include "support/require.h"
#include "vm/checker.h"

namespace folvec::gc {

using vm::Mask;
using vm::VectorMachine;
using vm::Word;
using vm::WordVec;

namespace {

/// Forwarding word value meaning "not yet evacuated".
constexpr Word kUnforwarded = -1;

}  // namespace

ConsHeap::ConsHeap(std::size_t semispace_cells)
    : semispace_(semispace_cells),
      car_(semispace_cells, kNilValue),
      cdr_(semispace_cells, kNilValue),
      to_car_(semispace_cells, kNilValue),
      to_cdr_(semispace_cells, kNilValue),
      forward_(semispace_cells, kUnforwarded) {
  FOLVEC_REQUIRE(semispace_cells > 0, "heap capacity must be positive");
}

std::size_t ConsHeap::check(Word cell) const {
  FOLVEC_REQUIRE(cell >= 0 && static_cast<std::size_t>(cell) < alloc_,
                 "cell index out of range");
  return static_cast<std::size_t>(cell);
}

Word ConsHeap::alloc(Word car, Word cdr) {
  FOLVEC_REQUIRE(alloc_ < semispace_, "semispace full: collect first");
  car_[alloc_] = car;
  cdr_[alloc_] = cdr;
  return static_cast<Word>(alloc_++);
}

void ConsHeap::flip() {
  car_.swap(to_car_);
  cdr_.swap(to_cdr_);
  std::fill(forward_.begin(), forward_.end(), kUnforwarded);
}

GcStats ConsHeap::collect_scalar(std::span<Word> roots,
                                 vm::CostAccumulator* cost) {
  GcStats stats;
  vm::ScalarCost sc(cost);
  std::size_t to_alloc = 0;
  std::size_t scan = 0;

  // Evacuate one tagged value: returns the updated value.
  auto forward_value = [&](Word v) -> Word {
    sc.alu(2);
    sc.branch(2);
    if (!is_pointer(v)) return v;
    const auto cell = static_cast<std::size_t>(pointer_cell(v));
    sc.mem(1);
    if (forward_[cell] == kUnforwarded) {
      to_car_[to_alloc] = car_[cell];
      to_cdr_[to_alloc] = cdr_[cell];
      forward_[cell] = static_cast<Word>(to_alloc);
      ++to_alloc;
      sc.mem(5);
      sc.alu(1);
    }
    sc.mem(1);
    return make_pointer(forward_[cell]);
  };

  for (auto& r : roots) r = forward_value(r);
  while (scan < to_alloc) {
    to_car_[scan] = forward_value(to_car_[scan]);
    to_cdr_[scan] = forward_value(to_cdr_[scan]);
    ++scan;
    sc.mem(4);
    sc.branch(1);
    sc.alu(1);
  }

  stats.live_cells = to_alloc;
  alloc_ = to_alloc;
  flip();
  return stats;
}

GcStats ConsHeap::collect_vector(VectorMachine& m, std::span<Word> roots) {
  GcStats stats;
  std::size_t to_alloc = 0;

  // Forwards one batch of tagged slot values; returns the rewritten batch.
  // Duplicate claims on one from-space cell are resolved with a single
  // overwrite-and-check round (the "very specialized FOL" of Section 5):
  // losers simply follow the winner's forwarding pointer.
  auto forward_batch = [&](const WordVec& vals) -> WordVec {
    if (vals.empty()) return vals;
    const Mask not_nil = m.ne_scalar(vals, kNilValue);
    const Mask even = m.eq_scalar(m.and_scalar(vals, 1), 0);
    const Mask is_ptr = m.mask_and(not_nil, even);
    if (m.count_true(is_ptr) == 0) return vals;
    const WordVec cells = m.div_scalar(vals, 2);

    const WordVec fwd0 = m.gather_masked(forward_, cells, is_ptr, 0);
    const Mask unforwarded =
        m.mask_and(is_ptr, m.eq_scalar(fwd0, kUnforwarded));
    const std::size_t n_unforwarded = m.count_true(unforwarded);
    if (n_unforwarded > 0) {
      // Claim labels are negative and distinct from kUnforwarded, so they
      // can never be mistaken for a real to-space index.
      const WordVec labels = m.negate(m.add_scalar(m.iota(vals.size()), 2));
      WordVec readback;
      {
        const vm::ConflictWindow window(m, forward_,
                                        vm::WindowKind::kLabelRound,
                                        "evacuation claim");
        m.scatter_masked(forward_, cells, labels, unforwarded);
        readback = m.gather_masked(forward_, cells, unforwarded, 0);
      }
      const Mask winner = m.mask_and(m.eq(readback, labels), unforwarded);
      const std::size_t n_win = m.count_true(winner);
      FOLVEC_CHECK(n_win > 0, "evacuation claim produced no winner");
      stats.claim_conflicts += n_unforwarded - n_win;

      const WordVec win_cells = m.compress(cells, winner);
      const WordVec new_cells =
          m.iota(n_win, static_cast<Word>(to_alloc));
      m.scatter(forward_, win_cells, new_cells);
      m.store(to_car_, to_alloc, m.gather(car_, win_cells));
      m.store(to_cdr_, to_alloc, m.gather(cdr_, win_cells));
      to_alloc += n_win;
    }

    // Everyone re-reads the (now complete) forwarding pointers.
    const WordVec fwd = m.gather_masked(forward_, cells, is_ptr, 0);
    return m.select(is_ptr, m.mul_scalar(fwd, 2), vals);
  };

  // Roots first.
  {
    const WordVec rewritten = forward_batch(m.copy(roots));
    if (!rewritten.empty()) {
      m.store(roots, 0, rewritten);
    }
  }

  // Cheney scan: each pass rewrites the car and cdr slots of every cell
  // copied but not yet scanned (a contiguous to-space region).
  std::size_t scan = 0;
  while (scan < to_alloc) {
    ++stats.scan_passes;
    const std::size_t batch = to_alloc - scan;
    m.store(to_car_, scan, forward_batch(m.load(to_car_, scan, batch)));
    m.store(to_cdr_, scan, forward_batch(m.load(to_cdr_, scan, batch)));
    scan += batch;
  }

  stats.live_cells = to_alloc;
  alloc_ = to_alloc;
  flip();
  return stats;
}

bool ConsHeap::deep_equal(const ConsHeap& a, Word va, const ConsHeap& b,
                          Word vb) {
  std::set<std::pair<Word, Word>> visited;
  std::vector<std::pair<Word, Word>> stack{{va, vb}};
  while (!stack.empty()) {
    const auto [x, y] = stack.back();
    stack.pop_back();
    if (is_nil(x) || is_nil(y)) {
      if (x != y) return false;
      continue;
    }
    if (is_immediate(x) || is_immediate(y)) {
      if (x != y) return false;
      continue;
    }
    // Both pointers.
    if (!visited.insert({x, y}).second) continue;
    const Word ca = a.car(pointer_cell(x));
    const Word cb = b.car(pointer_cell(y));
    const Word da = a.cdr(pointer_cell(x));
    const Word db = b.cdr(pointer_cell(y));
    stack.emplace_back(ca, cb);
    stack.emplace_back(da, db);
  }
  return true;
}

}  // namespace folvec::gc
