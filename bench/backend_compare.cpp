// Serial vs parallel execution backend on the paper's core workloads:
// FOL1 decomposition (dense and rare sharing), FOL* decomposition, multiple
// hashing (Figure 8), and address-calculation sorting (Figure 12), at N up
// to 2^20.
//
// Since PR 4 every workload runs three times: fused serial, fused parallel,
// and unfused serial (MachineConfig::fuse = false, the differential
// reference that executes scatter_gather_eq / partition as their original
// primitive chains). The table reports, side by side:
//
//   * the fused and unfused chime-model times (modeled S-810 microseconds)
//     and the fused-over-unfused chime cut — the headline number of the
//     fused-kernel work: the FOL1 hot round drops from four memory passes
//     to one, which the chime model prices at a >= 25% reduction (asserted
//     for the FOL1 workloads at N=2^20);
//   * measured host wall-clock per backend plus the unfused serial wall,
//     and the parallel-over-serial wall acceleration. Wall ratios are
//     reported, never asserted: host timing is too noisy to gate on.
//
// Every run is also differentially checked: the parallel digest (outputs +
// final memory images) must be bit-identical to the serial one, and the
// unfused digest bit-identical to the fused one, which makes this bench
// double as a million-element fused-kernel equivalence test.
//
// A second table compares audit modes on the proven-safe fol1_distinct
// workload: audit off, full per-lane ScatterCheck, and the static-analysis
// elided auditor (MachineConfig::analysis + audit_elide). Asserted: >= 80%
// of scatter-class ops proven safe, identical outputs and chime streams
// across modes, and the elided wall beating the full audit at N=2^20.
//
// A third table is the scaling curve (PR 7): every workload rerun at 1, 2,
// 4, and 8 workers at N=2^17 (plus a 4-worker point at N=2^20 when that
// size is in the run), with the parallel-over-serial wall acceleration per
// worker count. On hosts with >= 4 hardware threads the 4-worker points are
// asserted > 1.0 — the parallel backend must actually win, not just match —
// and emitted as notes so bench/goldens/backend_scaling.json can hold
// ratio-based floors for the CI scaling leg. On smaller hosts the
// assertions are skipped (the curve honestly degrades toward 1) and the
// gate is reported via the wall_accel_gate_active note.
//
// Worker count defaults to 8 (override with FOLVEC_BENCH_THREADS); the size
// list defaults to {14, 17, 20} (override with FOLVEC_BENCH_SIZES_LOG2, a
// comma-separated log2 list — the CI scaling leg passes "17").
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analyzer.h"
#include "bench_harness/report.h"
#include "fol/fol1.h"
#include "fol/fol_star.h"
#include "hashing/open_table.h"
#include "sorting/address_calc.h"
#include "support/env.h"
#include "support/prng.h"
#include "support/require.h"
#include "support/table_printer.h"
#include "vm/machine.h"

namespace {

using folvec::vm::BackendKind;
using folvec::vm::MachineConfig;
using folvec::vm::VectorMachine;
using folvec::vm::Word;
using folvec::vm::WordVec;

struct Sample {
  double chime_us = 0;
  double wall_s = 0;
  WordVec digest;
};

/// One audit-mode run of the proven-safe FOL1 workload, with the analyzer's
/// elision metrics when static analysis was attached.
struct AuditSample {
  double chime_us = 0;
  double wall_s = 0;
  WordVec digest;
  std::uint64_t scatter_ops = 0;
  std::uint64_t scatter_safe = 0;
  std::uint64_t elided = 0;
  std::uint64_t checked = 0;
};

enum class AuditMode { kOff, kFull, kElide };

std::size_t bench_threads() {
  if (const auto env = folvec::env_value("FOLVEC_BENCH_THREADS")) {
    const long v = std::strtol(env->c_str(), nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 8;
}

/// Lane counts to run, as log2 sizes. FOLVEC_BENCH_SIZES_LOG2 overrides the
/// default {14, 17, 20} with a comma-separated list (the CI scaling leg
/// passes "17" to keep the runner under budget); out-of-range tokens are
/// ignored, and an all-invalid override falls back to the default.
std::vector<int> bench_sizes() {
  std::vector<int> sizes;
  if (const auto env = folvec::env_value("FOLVEC_BENCH_SIZES_LOG2")) {
    std::stringstream ss(*env);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      const long v = std::strtol(tok.c_str(), nullptr, 10);
      if (v >= 1 && v <= 30) sizes.push_back(static_cast<int>(v));
    }
  }
  if (sizes.empty()) sizes = {14, 17, 20};
  return sizes;
}

template <typename Body>
Sample run_backend(BackendKind kind, std::size_t threads, bool fuse,
                   const folvec::vm::CostParams& params, const Body& body) {
  MachineConfig cfg;
  cfg.audit = false;  // the auditor would pin execution to the serial path
  cfg.backend = kind;
  cfg.backend_threads = threads;
  cfg.fuse = fuse;
  VectorMachine m(cfg);
  Sample s;
  s.digest = body(m);
  s.chime_us = m.cost().microseconds(params);
  s.wall_s = m.cost().total_wall_seconds();
  return s;
}

void emit(WordVec& digest, const WordVec& v) {
  digest.insert(digest.end(), v.begin(), v.end());
}

WordVec fol1_body_sized(VectorMachine& m, std::size_t n, std::size_t distinct,
                        std::uint64_t seed) {
  const WordVec idx = folvec::random_keys(n, static_cast<Word>(distinct), seed);
  WordVec work(distinct, 0);
  const folvec::fol::Decomposition d = folvec::fol::fol1_decompose(m, idx, work);
  WordVec digest;
  for (const auto& set : d.sets) {
    digest.push_back(static_cast<Word>(set.size()));
    for (std::size_t lane : set) digest.push_back(static_cast<Word>(lane));
  }
  emit(digest, work);
  return digest;
}

WordVec fol1_body(VectorMachine& m, std::size_t n) {
  // Dense sharing: each storage area is hit by ~4 lanes, so the
  // decomposition takes several rounds.
  return fol1_body_sized(m, n, std::max<std::size_t>(1, n / 4), 0xf011 + n);
}

WordVec fol1_rare_body(VectorMachine& m, std::size_t n) {
  // Rare sharing (Theorem 4's O(N) regime): 4N areas, so most lanes are
  // uncontested and the run is one or two rounds of full vector length —
  // the regime where the fused one-pass round shows its full cut.
  return fol1_body_sized(m, n, 4 * n, 0xfa2e + n);
}

WordVec fol1_distinct_body(VectorMachine& m, std::size_t n) {
  // All-distinct addressing (N areas, multiplicity 1, a shuffled
  // permutation): one full-length round, the baseline the adaptive
  // degradation bound below is measured against.
  WordVec idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = static_cast<Word>(i);
  folvec::Xoshiro256 rng(0xd157 + n);
  folvec::shuffle(idx, rng);
  WordVec work(n, 0);
  const folvec::fol::Decomposition d = folvec::fol::fol1_decompose(m, idx, work);
  WordVec digest{static_cast<Word>(d.drained_lanes)};
  for (const auto& set : d.sets) {
    digest.push_back(static_cast<Word>(set.size()));
    for (std::size_t lane : set) digest.push_back(static_cast<Word>(lane));
  }
  emit(digest, work);
  return digest;
}

WordVec fol1_heavy_body(VectorMachine& m, std::size_t n) {
  // Theorem 6's pathological-sharing worst case: every lane addresses the
  // same area (multiplicity N), which the pure decomposition serves in N
  // rounds of shrinking scatters — O(N^2) lane work. The adaptive drain
  // detects the surviving-fraction collapse after round one and finishes in
  // a single O(N) scalar pass; main() asserts the modeled cost stays within
  // 2x the all-distinct baseline at N=2^20.
  const WordVec idx(n, 0);
  WordVec work(1, 0);
  const folvec::fol::Decomposition d = folvec::fol::fol1_decompose(m, idx, work);
  WordVec digest{static_cast<Word>(d.drained_lanes)};
  for (const auto& set : d.sets) {
    digest.push_back(static_cast<Word>(set.size()));
    for (std::size_t lane : set) digest.push_back(static_cast<Word>(lane));
  }
  emit(digest, work);
  return digest;
}

WordVec fol_star_body(VectorMachine& m, std::size_t n) {
  const std::size_t areas = 8 * n;
  std::vector<WordVec> lanes(2);
  for (std::size_t k = 0; k < lanes.size(); ++k) {
    lanes[k] =
        folvec::random_keys(n, static_cast<Word>(areas), 0x57a2 + n + k);
  }
  WordVec work(areas, 0);
  const folvec::fol::StarDecomposition d =
      folvec::fol::fol_star_decompose(m, lanes, work);
  WordVec digest{static_cast<Word>(d.scalar_rescues),
                 static_cast<Word>(d.forced_singletons)};
  for (const auto& set : d.sets) {
    digest.push_back(static_cast<Word>(set.size()));
    for (std::size_t lane : set) digest.push_back(static_cast<Word>(lane));
  }
  return digest;
}

WordVec hashing_body(VectorMachine& m, std::size_t n) {
  const WordVec keys = folvec::random_unique_keys(
      n, static_cast<Word>(8 * n), 0x4a54 + n);
  WordVec table(2 * n + 1, folvec::hashing::kUnentered);
  const folvec::hashing::MultiHashStats st =
      folvec::hashing::multi_hash_open_insert(
          m, table, keys, folvec::hashing::ProbeVariant::kKeyDependent);
  WordVec digest{static_cast<Word>(st.iterations),
                 static_cast<Word>(st.max_vector_len)};
  emit(digest, table);
  return digest;
}

WordVec sorting_body(VectorMachine& m, std::size_t n) {
  const auto vmax = static_cast<Word>(4 * n);
  WordVec data = folvec::random_keys(n, vmax, 0x5057 + n);
  folvec::sorting::address_calc_sort_vector(m, data, vmax);
  return data;
}

}  // namespace

int main() {
  using folvec::Cell;
  using folvec::JsonArray;
  const folvec::vm::CostParams params = folvec::vm::CostParams::s810_like();
  const std::size_t threads = bench_threads();
  const std::vector<int> sizes = bench_sizes();
  const bool has_n17 =
      std::find(sizes.begin(), sizes.end(), 17) != sizes.end();
  const bool has_n20 =
      std::find(sizes.begin(), sizes.end(), 20) != sizes.end();
  const unsigned hw_threads = std::thread::hardware_concurrency();
  // The 4-worker win is only assertable when the host can actually run 4
  // workers in parallel; on smaller hosts the curve is reported, not gated.
  const bool accel_gate = hw_threads >= 4;
  folvec::bench::BenchReport report("backend_compare");
  report.config("threads", threads);
  {
    JsonArray sizes_json;
    for (const int lg : sizes) sizes_json.emplace_back(lg);
    report.config("sizes_log2", std::move(sizes_json));
  }
  report.config("hardware_concurrency", static_cast<double>(hw_threads));

  struct Workload {
    const char* name;
    WordVec (*body)(VectorMachine&, std::size_t);
    bool assert_cut;  // fused chime cut >= 25% at N=2^20 (the FOL1 rounds)
  };
  const Workload workloads[] = {
      {"fol1", fol1_body, true},
      {"fol1_rare", fol1_rare_body, true},
      {"fol1_distinct", fol1_distinct_body, false},
      {"fol1_heavy", fol1_heavy_body, false},
      {"fol_star", fol_star_body, false},
      {"multi_hash", hashing_body, false},
      {"addr_calc_sort", sorting_body, false},
  };

  // Chime times captured at N=2^20 for the adaptive-degradation bound.
  double distinct_chime_n20 = 0;
  double heavy_chime_n20 = 0;

  folvec::TablePrinter table({"workload", "N", "fused_chime_us",
                              "unfused_chime_us", "chime_cut", "serial_wall_ms",
                              "parallel_wall_ms", "unfused_wall_ms",
                              "wall_accel"});
  for (const Workload& w : workloads) {
    for (const int lg : sizes) {
      const auto n = static_cast<std::size_t>(1) << lg;
      const auto body = [&w, n](VectorMachine& m) { return w.body(m, n); };
      // One untimed warmup so the first measured run is not the one paying
      // to page in the key material and working set, then min-of-k
      // interleaved reps: ambient host load drifts all three configurations
      // alike instead of landing on whichever ran when the spike hit.
      run_backend(BackendKind::kSerial, threads, /*fuse=*/true, params, body);
      constexpr int kReps = 3;
      Sample serial;
      Sample parallel;
      Sample unfused;
      for (int rep = 0; rep < kReps; ++rep) {
        const Sample s = run_backend(BackendKind::kSerial, threads,
                                     /*fuse=*/true, params, body);
        const Sample p = run_backend(BackendKind::kParallel, threads,
                                     /*fuse=*/true, params, body);
        const Sample u = run_backend(BackendKind::kSerial, threads,
                                     /*fuse=*/false, params, body);
        if (rep == 0) {
          serial = s;
          parallel = p;
          unfused = u;
        } else {
          FOLVEC_CHECK(s.digest == serial.digest && p.digest == parallel.digest &&
                           u.digest == unfused.digest,
                       "workload must be deterministic across reps");
          serial.wall_s = std::min(serial.wall_s, s.wall_s);
          parallel.wall_s = std::min(parallel.wall_s, p.wall_s);
          unfused.wall_s = std::min(unfused.wall_s, u.wall_s);
        }
      }
      FOLVEC_CHECK(serial.digest == parallel.digest,
                   "parallel backend diverged from serial reference");
      FOLVEC_CHECK(serial.digest == unfused.digest,
                   "fused kernels diverged from the unfused composition");
      FOLVEC_CHECK(serial.chime_us == parallel.chime_us,
                   "backends must issue identical instruction streams");
      FOLVEC_CHECK(serial.chime_us <= unfused.chime_us,
                   "fused kernels must never cost more chimes than the chain");
      const double cut =
          unfused.chime_us > 0 ? 1.0 - serial.chime_us / unfused.chime_us : 0;
      if (w.assert_cut && lg == 20) {
        FOLVEC_CHECK(cut >= 0.25,
                     "fused FOL1 round must cut >= 25% of the chained chime "
                     "cost at N=2^20");
        report.note(std::string(w.name) + "_chime_cut_n20", cut);
        report.note(std::string(w.name) + "_wall_fused_over_unfused_n20",
                    unfused.wall_s > 0 ? serial.wall_s / unfused.wall_s : 0);
      }
      if (lg == 20 && std::string(w.name) == "fol1_distinct") {
        distinct_chime_n20 = serial.chime_us;
      }
      if (lg == 20 && std::string(w.name) == "fol1_heavy") {
        heavy_chime_n20 = serial.chime_us;
      }
      const double accel =
          parallel.wall_s > 0 ? serial.wall_s / parallel.wall_s : 0;
      table.add_row({w.name, Cell(static_cast<long long>(n)),
                     Cell(serial.chime_us, 0), Cell(unfused.chime_us, 0),
                     Cell(cut, 3), Cell(serial.wall_s * 1e3, 2),
                     Cell(parallel.wall_s * 1e3, 2),
                     Cell(unfused.wall_s * 1e3, 2), Cell(accel, 2)});
    }
  }
  // Graceful-degradation acceptance bound: with the adaptive drain on
  // (the default), maximal sharing (every lane one area, multiplicity N)
  // must model within 2x of the all-distinct run of the same length —
  // instead of the ~N/2-fold blowup of the pure Theorem 6 decomposition.
  // Only checkable when the run includes N=2^20.
  if (has_n20) {
    FOLVEC_CHECK(distinct_chime_n20 > 0 && heavy_chime_n20 > 0,
                 "fol1_distinct / fol1_heavy N=2^20 samples missing");
    const double heavy_ratio = heavy_chime_n20 / distinct_chime_n20;
    FOLVEC_CHECK(heavy_ratio <= 2.0,
                 "adaptive drain failed to bound pathological sharing within "
                 "2x of the all-distinct chime cost at N=2^20");
    report.note("fol1_heavy_over_distinct_chime_n20", heavy_ratio);
  }

  // ---- worker scaling curve -----------------------------------------------
  // Every workload at 1/2/4/8 workers at N=2^17, plus the 4-worker point at
  // N=2^20: the evidence the parallel backend wins rather than merely
  // matching. Each point is digest-checked against the serial reference, so
  // the curve doubles as a bit-identity sweep across worker counts.
  folvec::TablePrinter scaling_table({"workload", "N", "workers",
                                      "serial_wall_ms", "parallel_wall_ms",
                                      "wall_accel"});
  double min_accel_n17_w4 = 0;
  double min_accel_n20_w4 = 0;
  const auto scaling_points = [&](const Workload& w, int lg,
                                  const std::vector<std::size_t>& counts) {
    const auto n = static_cast<std::size_t>(1) << lg;
    const auto body = [&w, n](VectorMachine& m) { return w.body(m, n); };
    constexpr int kReps = 3;
    run_backend(BackendKind::kSerial, threads, /*fuse=*/true, params, body);
    Sample serial;
    for (int rep = 0; rep < kReps; ++rep) {
      const Sample s = run_backend(BackendKind::kSerial, threads,
                                   /*fuse=*/true, params, body);
      if (rep == 0) {
        serial = s;
      } else {
        serial.wall_s = std::min(serial.wall_s, s.wall_s);
      }
    }
    for (const std::size_t workers : counts) {
      Sample parallel;
      for (int rep = 0; rep < kReps; ++rep) {
        const Sample p = run_backend(BackendKind::kParallel, workers,
                                     /*fuse=*/true, params, body);
        FOLVEC_CHECK(p.digest == serial.digest,
                     "parallel backend diverged from serial on the scaling "
                     "curve");
        if (rep == 0) {
          parallel = p;
        } else {
          parallel.wall_s = std::min(parallel.wall_s, p.wall_s);
        }
      }
      const double accel =
          parallel.wall_s > 0 ? serial.wall_s / parallel.wall_s : 0;
      scaling_table.add_row({w.name, Cell(static_cast<long long>(n)),
                             Cell(static_cast<long long>(workers)),
                             Cell(serial.wall_s * 1e3, 2),
                             Cell(parallel.wall_s * 1e3, 2), Cell(accel, 2)});
      if (workers == 4) {
        const std::string note_key = std::string("scaling_wall_accel_") +
                                     w.name + "_n" + std::to_string(lg) +
                                     "_w4";
        report.note(note_key, accel);
        double& min_accel = lg == 17 ? min_accel_n17_w4 : min_accel_n20_w4;
        min_accel = min_accel == 0 ? accel : std::min(min_accel, accel);
        if (accel_gate) {
          FOLVEC_CHECK(accel > 1.0,
                       "parallel backend must beat serial wall clock with 4 "
                       "workers on every workload");
        }
      }
    }
  };
  for (const Workload& w : workloads) {
    if (has_n17) scaling_points(w, 17, {1, 2, 4, 8});
    if (has_n20) scaling_points(w, 20, {4});
  }
  report.note("wall_accel_gate_active", accel_gate ? 1.0 : 0.0);
  if (has_n17) report.note("scaling_wall_accel_min_n17_w4", min_accel_n17_w4);
  if (has_n20) report.note("scaling_wall_accel_min_n20_w4", min_accel_n20_w4);

  // ---- audit-mode comparison ----------------------------------------------
  // The static verifier's elision claim, measured on the all-distinct FOL1
  // workload (every scatter-class op proven safe): audit off is the floor,
  // full per-lane ScatterCheck the ceiling, and the analysis-elided auditor
  // keeps the guarantees (the elided round's write footprint is booked as
  // one clobber interval) while skipping the per-lane pass.
  const auto run_audit = [&params](AuditMode mode, std::size_t n) {
    MachineConfig cfg;
    cfg.backend = BackendKind::kSerial;  // audit pins serial; compare alike
    cfg.audit = mode != AuditMode::kOff;
    cfg.analysis = mode == AuditMode::kElide;
    cfg.audit_elide = mode == AuditMode::kElide;
    VectorMachine m(cfg);
    AuditSample s;
    s.digest = fol1_distinct_body(m, n);
    s.chime_us = m.cost().microseconds(params);
    s.wall_s = m.cost().total_wall_seconds();
    if (auto* a = m.analyzer()) {
      s.scatter_ops = a->stats().scatter_ops;
      s.scatter_safe = a->stats().scatter_safe;
      s.elided = a->stats().elided_instructions;
      s.checked = a->stats().checked_instructions;
    }
    return s;
  };
  folvec::TablePrinter audit_table({"audit", "N", "chime_us", "wall_ms",
                                    "audit_overhead", "scatter_proven_safe",
                                    "elided_fraction"});
  double full_wall_n20 = 0;
  double elide_wall_n20 = 0;
  for (const int lg : sizes) {
    const auto n = static_cast<std::size_t>(1) << lg;
    run_audit(AuditMode::kElide, n);  // warmup (pages in the key material)
    AuditSample off;
    AuditSample full;
    AuditSample elide;
    constexpr int kReps = 3;
    for (int rep = 0; rep < kReps; ++rep) {
      const AuditSample o = run_audit(AuditMode::kOff, n);
      const AuditSample f = run_audit(AuditMode::kFull, n);
      const AuditSample e = run_audit(AuditMode::kElide, n);
      if (rep == 0) {
        off = o;
        full = f;
        elide = e;
      } else {
        off.wall_s = std::min(off.wall_s, o.wall_s);
        full.wall_s = std::min(full.wall_s, f.wall_s);
        elide.wall_s = std::min(elide.wall_s, e.wall_s);
      }
    }
    FOLVEC_CHECK(off.digest == full.digest && off.digest == elide.digest,
                 "audit modes must not change workload outputs");
    FOLVEC_CHECK(off.chime_us == full.chime_us &&
                     off.chime_us == elide.chime_us,
                 "auditing is host bookkeeping: the modeled chime stream "
                 "must be identical across audit modes");
    FOLVEC_CHECK(elide.scatter_ops > 0, "analysis saw no scatter-class ops");
    const double safe_frac = static_cast<double>(elide.scatter_safe) /
                             static_cast<double>(elide.scatter_ops);
    const std::uint64_t audited = elide.elided + elide.checked;
    const double elided_frac =
        audited > 0 ? static_cast<double>(elide.elided) /
                          static_cast<double>(audited)
                    : 0;
    FOLVEC_CHECK(safe_frac >= 0.8,
                 "the distinct-key FOL1 workload must prove >= 80% of its "
                 "scatter-class ops safe");
    const auto row = [&](const char* name, const AuditSample& s, bool stats) {
      audit_table.add_row(
          {name, Cell(static_cast<long long>(n)), Cell(s.chime_us, 0),
           Cell(s.wall_s * 1e3, 2),
           Cell(off.wall_s > 0 ? s.wall_s / off.wall_s : 0, 2),
           stats ? Cell(safe_frac, 3) : Cell(""),
           stats ? Cell(elided_frac, 3) : Cell("")});
    };
    row("off", off, false);
    row("full", full, false);
    row("elide", elide, true);
    if (lg == 20) {
      full_wall_n20 = full.wall_s;
      elide_wall_n20 = elide.wall_s;
      report.note("fol1_distinct_audit_full_wall_ms_n20", full.wall_s * 1e3);
      report.note("fol1_distinct_audit_elide_wall_ms_n20",
                  elide.wall_s * 1e3);
      report.note("fol1_distinct_scatter_proven_safe_n20", safe_frac);
      report.note("fol1_distinct_elided_fraction_n20", elided_frac);
    }
  }
  // The elision acceptance bound: proving the ops safe must actually buy
  // back the auditor's per-lane wall cost on the workload it targets.
  if (has_n20) {
    FOLVEC_CHECK(elide_wall_n20 < full_wall_n20,
                 "analysis-elided auditing must beat the full per-lane "
                 "ScatterCheck wall time at N=2^20");
  }

  table.print(std::cout,
              "Backend comparison: fused vs unfused chimes, serial vs "
              "parallel wall clock (" +
                  std::to_string(threads) + " workers requested)");
  scaling_table.print(std::cout,
                      "Worker scaling curve: parallel wall clock vs the "
                      "serial reference per worker count");
  audit_table.print(std::cout,
                    "Audit modes on the proven-safe fol1_distinct workload: "
                    "off vs full ScatterCheck vs analysis-elided");
  report.add_table("Audit modes on the proven-safe fol1_distinct workload: "
                       "off vs full ScatterCheck vs analysis-elided",
                   audit_table);
  report.add_table("Backend comparison: fused vs unfused chimes, serial vs "
                       "parallel wall clock (" +
                       std::to_string(threads) + " workers requested)",
                   table);
  report.add_table("Worker scaling curve: parallel wall clock vs the serial "
                       "reference per worker count",
                   scaling_table);
  std::cout << "\nchime times are backend-invariant (asserted); chime_cut is "
               "1 - fused/unfused, asserted >= 0.25 for the FOL1 workloads "
               "at N=2^20;\nwall acceleration depends on host core count; "
               "the 4-worker scaling points are asserted > 1.0 "
            << (accel_gate ? "(gate active: " : "(gate skipped: ")
            << hw_threads << " hardware threads)\n";
  return 0;
}
