// Tests for the term arena and associative-law rewriting: the Figure 5
// example, scalar/vector equivalence, stale-tuple handling, and sweeps over
// tree shapes.
#include <gtest/gtest.h>

#include <tuple>

#include "rewrite/assoc_rewrite.h"
#include "rewrite/term.h"
#include "support/prng.h"

namespace folvec::rewrite {
namespace {

using vm::MachineConfig;
using vm::ScatterOrder;
using vm::VectorMachine;
using vm::Word;

TEST(TermArenaTest, LeafAndOpConstruction) {
  TermArena a;
  const Word x = a.make_leaf(10);
  const Word y = a.make_leaf(20);
  const Word p = a.make_op(x, y);
  EXPECT_EQ(a.kind(x), NodeKind::kLeaf);
  EXPECT_EQ(a.kind(p), NodeKind::kOp);
  EXPECT_EQ(a.left(p), x);
  EXPECT_EQ(a.right(p), y);
  EXPECT_EQ(a.symbol(x), 10);
  EXPECT_EQ(a.leaf_sequence(p), (std::vector<Word>{10, 20}));
  EXPECT_EQ(a.depth(p), 2u);
  EXPECT_TRUE(a.is_left_deep(p));
  EXPECT_EQ(a.to_string(p), "(s10*s20)");
}

TEST(TermArenaTest, InvalidChildRejected) {
  TermArena a;
  EXPECT_THROW(a.make_op(0, 1), PreconditionError);
}

TEST(TermArenaTest, RightCombShape) {
  TermArena a;
  const Word root = build_right_comb(a, 4);  // a*(b*(c*d))
  EXPECT_EQ(a.leaf_sequence(root), (std::vector<Word>{0, 1, 2, 3}));
  EXPECT_EQ(a.depth(root), 4u);
  EXPECT_FALSE(a.is_left_deep(root));
  EXPECT_EQ(a.size(), 7u);
}

TEST(TermArenaTest, SingleLeafIsTrivialNormalForm) {
  TermArena a;
  const Word root = build_right_comb(a, 1);
  EXPECT_TRUE(a.is_left_deep(root));
  EXPECT_EQ(a.leaf_sequence(root), (std::vector<Word>{0}));
}

TEST(TermArenaTest, RandomTreePreservesLeafCountAndOrder) {
  TermArena a;
  Xoshiro256 rng(5);
  const Word root = build_random_tree(a, 20, rng);
  const auto leaves = a.leaf_sequence(root);
  ASSERT_EQ(leaves.size(), 20u);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    EXPECT_EQ(leaves[i], static_cast<Word>(i));
  }
}

TEST(AssocRewriteScalarTest, PaperFigure5Example) {
  // a*(b*(c*d)) must normalize to ((a*b)*c)*d with the leaf order intact.
  TermArena a;
  const Word root = build_right_comb(a, 4);
  const RewriteStats stats = assoc_rewrite_scalar(a, root);
  EXPECT_TRUE(a.is_left_deep(root));
  EXPECT_EQ(a.leaf_sequence(root), (std::vector<Word>{0, 1, 2, 3}));
  EXPECT_EQ(a.to_string(root), "(((s0*s1)*s2)*s3)");
  // Each rotation at the spine pulls one operator leftward; a right comb of
  // k leaves holds k-2 operators below the root, so k-2 = 2 rewrites.
  EXPECT_EQ(stats.rewrites, 2u);
}

TEST(AssocRewriteScalarTest, AlreadyNormalIsNoop) {
  TermArena a;
  const Word l0 = a.make_leaf(0);
  const Word l1 = a.make_leaf(1);
  const Word l2 = a.make_leaf(2);
  const Word root = a.make_op(a.make_op(l0, l1), l2);
  const RewriteStats stats = assoc_rewrite_scalar(a, root);
  EXPECT_EQ(stats.rewrites, 0u);
  EXPECT_TRUE(a.is_left_deep(root));
}

TEST(AssocRewriteVectorTest, PaperFigure5Example) {
  TermArena a;
  const Word root = build_right_comb(a, 4);
  VectorMachine m;
  const RewriteStats stats = assoc_rewrite_vector(m, a, root);
  EXPECT_TRUE(a.is_left_deep(root));
  EXPECT_EQ(a.leaf_sequence(root), (std::vector<Word>{0, 1, 2, 3}));
  EXPECT_EQ(stats.rewrites, 2u);
  // The chain (n1,n3),(n3,n5) conflicts on n3, so at least one tuple is
  // deferred (to a later set or sweep).
  EXPECT_GE(stats.sweeps, 2u);
}

TEST(AssocRewriteVectorTest, StaleTuplesAreDroppedNotMisapplied) {
  // A long right comb maximizes chained redexes: every adjacent pair of
  // redexes conflicts, so later FOL* sets are full of tuples the first set
  // consumed. In full-decomposition mode the rewriter must drop them (not
  // misapply them) and still reach normal form.
  TermArena a;
  const Word root = build_right_comb(a, 16);
  VectorMachine m;
  const RewriteStats stats =
      assoc_rewrite_vector(m, a, root, RewriteMode::kFullDecomposition);
  EXPECT_TRUE(a.is_left_deep(root));
  ASSERT_EQ(a.leaf_sequence(root).size(), 16u);
  EXPECT_GT(stats.stale_dropped, 0u);
}

TEST(AssocRewriteVectorTest, FirstSetModeNeverSeesStaleTuples) {
  TermArena a;
  const Word root = build_right_comb(a, 16);
  VectorMachine m;
  const RewriteStats stats =
      assoc_rewrite_vector(m, a, root, RewriteMode::kFirstSetPerSweep);
  EXPECT_TRUE(a.is_left_deep(root));
  EXPECT_EQ(stats.stale_dropped, 0u);
}

TEST(AssocRewriteVectorTest, ModesAgreeOnNormalForm) {
  Xoshiro256 rng(23);
  TermArena original;
  const Word root = build_random_tree(original, 60, rng);
  TermArena a1 = original;
  TermArena a2 = original;
  VectorMachine m1;
  VectorMachine m2;
  assoc_rewrite_vector(m1, a1, root, RewriteMode::kFirstSetPerSweep);
  assoc_rewrite_vector(m2, a2, root, RewriteMode::kFullDecomposition);
  EXPECT_EQ(a1.to_string(root), a2.to_string(root));
}

TEST(AssocRewriteVectorTest, LeafOnlyTermIsNoop) {
  TermArena a;
  const Word root = a.make_leaf(3);
  VectorMachine m;
  const RewriteStats stats = assoc_rewrite_vector(m, a, root);
  EXPECT_EQ(stats.rewrites, 0u);
  EXPECT_EQ(stats.sweeps, 1u);
}

TEST(AssocRewriteVectorTest, MatchesScalarNormalForm) {
  Xoshiro256 rng(11);
  TermArena original;
  const Word root = build_random_tree(original, 40, rng);

  TermArena scalar_arena = original;
  assoc_rewrite_scalar(scalar_arena, root);

  TermArena vec_arena = original;
  VectorMachine m;
  assoc_rewrite_vector(m, vec_arena, root);

  // The normal form is unique (left-deep, leaf order preserved), so the
  // rendered trees must match exactly.
  EXPECT_EQ(vec_arena.to_string(root), scalar_arena.to_string(root));
}

// ---- property sweep -----------------------------------------------------------

// (leaves, right-comb?, scatter order, seed)
using RewriteSweep = std::tuple<std::size_t, bool, ScatterOrder, int>;

class RewritePropertyTest : public ::testing::TestWithParam<RewriteSweep> {};

TEST_P(RewritePropertyTest, NormalFormReachedLeafOrderPreserved) {
  const auto [leaves, comb, order, seed] = GetParam();
  TermArena a;
  Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 9973 + leaves);
  const Word root =
      comb ? build_right_comb(a, leaves) : build_random_tree(a, leaves, rng);
  const auto expected = a.leaf_sequence(root);

  MachineConfig cfg;
  cfg.scatter_order = order;
  VectorMachine m(cfg);
  assoc_rewrite_vector(m, a, root);
  EXPECT_TRUE(a.is_left_deep(root));
  EXPECT_EQ(a.leaf_sequence(root), expected);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, RewritePropertyTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 17, 100),
                       ::testing::Bool(),
                       ::testing::Values(ScatterOrder::kForward,
                                         ScatterOrder::kReverse,
                                         ScatterOrder::kShuffled),
                       ::testing::Values(1, 2)));

}  // namespace
}  // namespace folvec::rewrite
