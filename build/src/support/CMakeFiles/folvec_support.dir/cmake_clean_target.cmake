file(REMOVE_RECURSE
  "libfolvec_support.a"
)
