file(REMOVE_RECURSE
  "CMakeFiles/hash_lookup_test.dir/hash_lookup_test.cpp.o"
  "CMakeFiles/hash_lookup_test.dir/hash_lookup_test.cpp.o.d"
  "hash_lookup_test"
  "hash_lookup_test.pdb"
  "hash_lookup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_lookup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
