// LSD radix sort built from stable vectorized counting passes.
//
// An extension beyond the paper's Table 1 family: the distribution counting
// sort generalizes to arbitrary key widths by sorting digit-by-digit — but
// only if every counting pass is *stable*, and plain FOL1 is deliberately
// order-agnostic (any occurrence of a duplicate digit may win any round).
// The order-preserving FOL variant of footnote 7 supplies exactly the
// missing guarantee: fol1_decompose_ordered assigns the j-th occurrence of
// every digit to set j, so the j-th set's lanes take base[digit] + j as
// their output slot — stable placement with one gather + one add + one
// scatter per set and no counter decrements at all.
#pragma once

#include <cstddef>
#include <span>

#include "vm/cost_model.h"
#include "vm/machine.h"

namespace folvec::sorting {

struct RadixStats {
  std::size_t digit_passes = 0;  ///< counting passes executed
  std::size_t fol_rounds = 0;    ///< total ordered-FOL sets across passes
};

/// Sequential LSD radix sort (stable counting per digit), the baseline.
/// `bits_per_digit` in [1, 16]; data must be non-negative.
void radix_sort_scalar(std::span<vm::Word> data, int bits_per_digit,
                       vm::CostAccumulator* cost = nullptr);

/// Vectorized LSD radix sort on the machine; bit-identical result to the
/// scalar version (both are plain ascending sorts of non-negative words).
RadixStats radix_sort_vector(vm::VectorMachine& m, std::span<vm::Word> data,
                             int bits_per_digit);

}  // namespace folvec::sorting
