// A software model of a register-based pipelined vector processor.
//
// VectorMachine is the substrate every vectorized algorithm in this repo is
// written against. It provides the primitive set the paper's pseudo-code
// assumes (Fortran-90-style array operations plus the "list vector"
// gather/scatter of the Hitachi S-810/S-3800):
//
//   * elementwise arithmetic / compares producing masks,
//   * masked stores (`where M do A := B`),
//   * compress / pack-under-mask (`A where M`),
//   * count_true,
//   * gather (indexed load) and scatter (indexed store).
//
// The scatter models the **ELS condition** (exclusive label storing,
// Section 3.2 of the paper): when several lanes write the same address, the
// surviving value is exactly one of the written values — *which* one is
// machine-dependent. The paper's correctness argument depends on FOL working
// for any survivor, so the machine makes the survivor configurable
// (ScatterOrder): forward (last lane wins, like an ordered VSTX), reverse
// (first lane wins), or shuffled (a fresh deterministic pseudo-random
// write order per scatter, modelling the undefined inter-pipe interleaving
// of a parallel-pipe machine like the S-3800). Tests fuzz FOL under all
// three. A failure-injection mode (`inject_els_violation`) deliberately
// breaks the ELS guarantee by storing a bitwise amalgam of the colliding
// values, which FOL must detect rather than silently mis-decompose.
//
// Every operation records itself in a CostAccumulator so benchmarks can
// price the run under a chime model (see cost_model.h). Scalar baseline
// algorithms tick the same accumulator through scalar_alu()/scalar_mem()/
// scalar_branch(), so "acceleration ratio" always compares like with like.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "analysis/opgraph.h"
#include "support/prng.h"
#include "support/require.h"
#include "telemetry/metrics.h"
#include "telemetry/profile.h"
#include "telemetry/spans.h"
#include "vm/cost_model.h"
#include "vm/hazard.h"
#include "vm/mask.h"
#include "vm/trace.h"

namespace folvec::analysis {
class Analyzer;
}  // namespace folvec::analysis

namespace folvec::vm {

/// The machine word. Pointers, subscripts, labels, keys and data values are
/// all Words, exactly as on the word-addressed vector machines of the era.
using Word = std::int64_t;
using WordVec = std::vector<Word>;

/// Which colliding lane survives a scatter to a shared address.
enum class ScatterOrder : std::uint8_t {
  kForward,   ///< lanes written 0..n-1; highest colliding lane survives
  kReverse,   ///< lanes written n-1..0; lowest colliding lane survives
  kShuffled,  ///< fresh pseudo-random lane order per scatter instruction
};

/// Which execution backend runs the primitive lane loops (see backend.h).
enum class BackendKind : std::uint8_t {
  kSerial,        ///< reference semantics, one thread
  kParallel,      ///< lanes chunked across a persistent thread pool
  kSimd,          ///< one thread, lane loops lowered to real vector ISA
  kParallelSimd,  ///< pool chunks running the SIMD lane loops inside
};

/// Which SIMD kernel table the simd backends execute through (see
/// simd_backend.h). Declaration order is support rank order: resolution
/// downgrades toward kScalar, never up.
enum class SimdLevel : std::uint8_t {
  kScalar,  ///< reference loops through the table plumbing (always available)
  kNeon,    ///< AArch64 Advanced SIMD, 2 lanes
  kAvx2,    ///< x86-64 AVX2, 4 lanes
  kAvx512,  ///< x86-64 AVX-512 F+CD+DQ+BW+VL, 8 lanes + ordered scatter
  kAuto,    ///< resolve to the best level the host supports
};

// Lane-kernel pointer shapes of the SIMD kernel table (simd_kernels.h).
// Null means "no lowering at this level"; primitives then run their plain
// loops. All operate on lanes [lo, hi) of shared vectors, the same contract
// as Backend::for_lanes chunks.
using SimdBinFn = void (*)(Word*, const Word*, const Word*, std::size_t,
                           std::size_t);
using SimdMapFn = void (*)(Word*, const Word*, Word, std::size_t,
                           std::size_t);
using SimdCmpFn = void (*)(std::uint8_t*, const Word*, const Word*,
                           std::size_t, std::size_t);
using SimdCmpSFn = void (*)(std::uint8_t*, const Word*, Word, std::size_t,
                            std::size_t);

/// How the parallel backend merges colliding scatter writes (see
/// parallel_backend.h for both algorithms; every choice is bit-identical to
/// serial, they differ only in memory traffic and dispatch count).
enum class MergeStrategy : std::uint8_t {
  kAuto,        ///< single-pass for forward/reverse traversals and short
                ///< explicit ones (<= 160 lanes); two-pass for the rest
  kSinglePass,  ///< claim-interval merge, one dispatch (any traversal)
  kTwoPass,     ///< owner-computes route+replay merge (the PR 2 reference)
};

struct MachineConfig {
  ScatterOrder scatter_order = ScatterOrder::kForward;
  /// Seed for the kShuffled write orders (each scatter derives a fresh
  /// sub-seed, so repeated scatters see different orders deterministically).
  std::uint64_t shuffle_seed = 0x51d5eedULL;
  /// Failure injection: colliding scatter lanes store an amalgam (XOR) of
  /// their values, violating the ELS condition. For tests only.
  bool inject_els_violation = false;

  /// Default audit setting: from the FOLVEC_AUDIT environment variable when
  /// set (off spellings, case-insensitive: 0/false/off/no — see
  /// support/env.h), else true iff built with -DFOLVEC_AUDIT=ON.
  static bool audit_default();

  /// Default backend: from the FOLVEC_BACKEND environment variable when set
  /// ("serial"/"parallel"/"simd"/"parallel+simd" (or "simd+parallel"), or
  /// the boolean spellings of support/env.h where truthy means parallel),
  /// else parallel iff built with -DFOLVEC_PARALLEL=ON.
  static BackendKind backend_default();

  /// Execution backend. Audit mode pins the instruction stream to the
  /// single-threaded path regardless (ScatterCheck's per-lane bookkeeping is
  /// single-threaded, and audited runs must see reference execution):
  /// kParallel runs as kSerial and kParallelSimd as kSimd. The SIMD lane
  /// kernels themselves stay auditable — they are bit-identical to serial
  /// and execute on the issuing thread.
  BackendKind backend = backend_default();

  /// Default SIMD level: from the FOLVEC_SIMD_LEVEL environment variable
  /// when set (auto/scalar/neon/avx2/avx512), else kAuto.
  static SimdLevel simd_level_default();

  /// Requested kernel level for the simd backends (ignored by kSerial /
  /// kParallel). kAuto resolves to the best level the host CPU supports; a
  /// forced level unavailable on this host/build degrades to the best
  /// supported lower level with a one-time stderr notice (see
  /// simd_backend.h).
  SimdLevel simd_level = simd_level_default();
  /// Worker threads for the parallel backend; 0 = hardware concurrency.
  std::size_t backend_threads = 0;
  /// Minimum lanes per worker chunk before the parallel backend splits an
  /// instruction. Tests lower it to exercise the parallel path on short
  /// vectors; benches keep the default so tiny ops skip dispatch.
  std::size_t backend_grain = 4096;
  /// Scatter merge strategy of the parallel backend. kAuto picks per
  /// instruction; the forced settings exist for differential tests and
  /// ablation benches (every setting is bit-identical to serial).
  MergeStrategy merge_strategy = MergeStrategy::kAuto;

  /// Default fusion setting: from the FOLVEC_FUSE environment variable when
  /// set (boolean spellings of support/env.h), else true.
  static bool fuse_default();

  /// Execute scatter_gather_eq / partition as single fused instructions
  /// (chained pipes, one vector startup). With false they run as their
  /// unfused primitive compositions — bit-identical outputs, the original
  /// chime stream — which is the differential-testing reference.
  bool fuse = fuse_default();

  /// Default adaptive-degradation setting: from the FOLVEC_ADAPTIVE
  /// environment variable when set (boolean spellings of support/env.h),
  /// else true.
  static bool adaptive_default();

  /// Adaptive degradation for pathological sharing (Theorems 5-6): when a
  /// FOL round's surviving fraction collapses below 1/adaptive_collapse_den
  /// with at least adaptive_min_remaining lanes still unassigned, the FOL
  /// drivers drain the remaining high-multiplicity tail through the scalar
  /// unit in one O(k) pass instead of running O(max multiplicity) further
  /// vector rounds — bounding the Theorem 6 worst case at O(N) vector work
  /// plus O(k) scalar work. The drained assignment preserves every
  /// decomposition theorem and is identical across backends and fuse modes.
  bool adaptive = adaptive_default();
  /// Minimum unassigned lanes before the drain may trigger; small tails
  /// finish faster as vector rounds than as a scalar pass.
  std::size_t adaptive_min_remaining = 2048;
  /// Collapse denominator: drain when survivors * den < remaining.
  std::size_t adaptive_collapse_den = 8;

  /// Enable the ScatterCheck hazard auditor (see checker.h) on this machine.
  bool audit = audit_default();
  /// Under audit, throw AuditError at the offending instruction for
  /// audit-class hazards. With false, hazards only accumulate in
  /// VectorMachine::hazards(). Hard preconditions (bounds, lengths) always
  /// throw PreconditionError regardless.
  bool audit_throw = true;

  /// Default static-analysis setting: from the FOLVEC_ANALYSIS environment
  /// variable when set (boolean spellings of support/env.h), else false.
  static bool analysis_default();

  /// Attach the static hazard analyzer (see analysis/analyzer.h): every
  /// primitive transfers abstract lane facts and list-vector memory ops are
  /// classified per hazard class before they execute.
  bool analysis = analysis_default();

  /// Default audit-elision setting: from the FOLVEC_AUDIT_ELIDE environment
  /// variable when set (boolean spellings of support/env.h), else true.
  static bool audit_elide_default();

  /// With both audit and analysis on, skip ScatterCheck's per-lane pass for
  /// instructions the analyzer proves safe in every hazard class (the
  /// machine's hard bounds check always runs). Never elides under fault
  /// injection, so injected hazards stay detectable. See docs/analysis.md
  /// for the exact detection coverage traded away.
  bool audit_elide = audit_elide_default();
};

class ScatterChecker;
class Backend;
class BufferPool;
struct SimdKernels;  // full declaration in simd_kernels.h
enum class ScatterTraversal : std::uint8_t;  // full declaration in backend.h

class VectorMachine {
 public:
  VectorMachine() : VectorMachine(MachineConfig{}) {}
  explicit VectorMachine(const MachineConfig& config);
  ~VectorMachine();
  VectorMachine(VectorMachine&&) noexcept;
  VectorMachine& operator=(VectorMachine&&) noexcept;

  const MachineConfig& config() const { return config_; }
  CostAccumulator& cost() { return cost_; }
  const CostAccumulator& cost() const { return cost_; }

  /// Name of the active execution backend ("serial", "parallel", "simd" or
  /// "parallel+simd"). May differ from config().backend: audit mode pins
  /// execution to the single-threaded path.
  const char* backend_name() const;
  /// Worker count of the active backend (1 for serial/simd).
  std::size_t backend_workers() const;
  /// The resolved SIMD kernel level the machine executes through (kScalar
  /// when no SIMD backend is attached).
  SimdLevel active_simd_level() const;
  /// Kernel-table dispatches taken so far (lane loops that actually ran a
  /// non-null SIMD table entry; also published as backend.simd.dispatch.*).
  std::size_t simd_dispatches() const { return simd_dispatches_; }

  // ---- ScatterCheck auditing (see checker.h) ------------------------------

  bool audit_enabled() const { return checker_ != nullptr; }

  /// The auditor, or nullptr when audit mode is off.
  ScatterChecker* checker() { return checker_.get(); }

  // ---- static hazard analysis (see analysis/analyzer.h) -------------------

  /// The analyzer, or nullptr when MachineConfig::analysis is off.
  analysis::Analyzer* analyzer() { return analyzer_.get(); }

  /// Source location attached to subsequently recorded ops (the lang
  /// interpreter sets this per statement). No-op without analysis.
  void set_source_line(std::size_t line);

  /// Measured-range annotation: host-scans `v` (no machine cost) and records
  /// a tight interval fact, so subsequent gathers/scatters indexed by `v`
  /// can be proven in bounds. No-op without analysis.
  void observe_range(std::span<const Word> v);

  /// Hazards recorded so far (an empty report when audit mode is off).
  const HazardReport& hazards() const;
  void clear_hazards();

  /// Declares that `region` (a label work array) is dead: drops any
  /// clobbered-work marks covering it so unrelated arrays that later reuse
  /// the allocation are not flagged. No-op without audit; free.
  void retire_work(std::span<const Word> region);

  /// Attaches (or detaches, with nullptr) an instruction trace sink. The
  /// sink is borrowed, not owned, and must outlive its attachment.
  void attach_trace(TraceSink* sink) { trace_ = sink; }

  /// The machine's vector-register buffer pool (see buffer_pool.h).
  /// Steady-state round loops acquire their working vectors here and feed
  /// them to the *_into primitives so repeated rounds allocate nothing.
  BufferPool& pool() { return *pool_; }

  // ---- multi-op batched dispatch ------------------------------------------

  /// RAII dispatch batch: while one is alive (and neither audit nor
  /// analysis is attached), lane-aligned register ops — generation,
  /// elementwise arithmetic, compares, mask algebra, select — queue their
  /// lane kernels instead of dispatching each to the backend; the queued
  /// round then crosses the pool boundary ONCE, each worker running every
  /// queued kernel over its lane chunk in issue order. Chimes and the
  /// instruction trace are recorded eagerly at issue (the modeled stream is
  /// unchanged); wall time is measured at the flush and split evenly over
  /// the queued op classes.
  ///
  /// A batch flushes at the outermost scope exit, whenever a non-batchable
  /// primitive (memory, reduction, compress/partition, reverse, shl_scalar)
  /// is issued, and whenever the queued lane count changes. Per-chunk
  /// in-order execution of lane-aligned kernels reproduces serial dataflow
  /// exactly, so results are bit-identical to unbatched execution — but
  /// they are UNOBSERVABLE until the flush. Lifetime rules for callers:
  /// every buffer an enqueued kernel reads or writes must stay alive and
  /// unresized until the flush — compose chains through named (pooled)
  /// buffers via the *_into primitives, never through nested temporaries,
  /// and do not release pooled buffers mid-batch. See docs/backends.md.
  class OpBatch {
   public:
    explicit OpBatch(VectorMachine& m) : m_(m) { m_.begin_batch(); }
    ~OpBatch() { m_.end_batch(); }
    OpBatch(const OpBatch&) = delete;
    OpBatch& operator=(const OpBatch&) = delete;

   private:
    VectorMachine& m_;
  };

  // ---- vector generation -------------------------------------------------

  /// (start, start+step, start+2*step, ...), n elements.
  WordVec iota(std::size_t n, Word start = 0, Word step = 1);

  /// n copies of `value`.
  WordVec splat(std::size_t n, Word value);

  /// Vector register copy (load+store cost).
  WordVec copy(std::span<const Word> v);

  /// Element order reversal (a negative-stride vector load).
  WordVec reverse(std::span<const Word> v);

  // ---- elementwise arithmetic --------------------------------------------

  WordVec add(std::span<const Word> a, std::span<const Word> b);
  WordVec sub(std::span<const Word> a, std::span<const Word> b);
  WordVec mul(std::span<const Word> a, std::span<const Word> b);
  WordVec add_scalar(std::span<const Word> a, Word s);
  WordVec mul_scalar(std::span<const Word> a, Word s);
  /// Floor division by a positive scalar.
  WordVec div_scalar(std::span<const Word> a, Word s);
  /// Euclidean remainder by a positive scalar (result in [0, s)).
  WordVec mod_scalar(std::span<const Word> a, Word s);
  WordVec and_scalar(std::span<const Word> a, Word s);
  WordVec or_scalar(std::span<const Word> a, Word s);
  /// Logical left shift by k in [0, 63]; elements must be non-negative.
  WordVec shl_scalar(std::span<const Word> a, int k);
  /// Arithmetic right shift by k in [0, 63].
  WordVec shr_scalar(std::span<const Word> a, int k);
  WordVec negate(std::span<const Word> a);

  // ---- compares producing masks ------------------------------------------

  Mask eq(std::span<const Word> a, std::span<const Word> b);
  Mask ne(std::span<const Word> a, std::span<const Word> b);
  Mask le(std::span<const Word> a, std::span<const Word> b);
  Mask lt(std::span<const Word> a, std::span<const Word> b);
  Mask eq_scalar(std::span<const Word> a, Word s);
  Mask ne_scalar(std::span<const Word> a, Word s);
  Mask le_scalar(std::span<const Word> a, Word s);
  Mask lt_scalar(std::span<const Word> a, Word s);
  Mask ge_scalar(std::span<const Word> a, Word s);

  // ---- mask algebra --------------------------------------------------------

  Mask mask_and(const Mask& a, const Mask& b);
  Mask mask_or(const Mask& a, const Mask& b);
  Mask mask_not(const Mask& a);
  std::size_t count_true(const Mask& m);

  // ---- reductions ---------------------------------------------------------

  Word reduce_sum(std::span<const Word> v);
  /// Minimum of a nonempty vector.
  Word reduce_min(std::span<const Word> v);
  /// Maximum of a nonempty vector.
  Word reduce_max(std::span<const Word> v);

  // ---- selection ------------------------------------------------------------

  /// `A where M`: packs elements of `v` whose mask is true.
  WordVec compress(std::span<const Word> v, const Mask& m);

  /// Elementwise select: out[i] = m[i] ? a[i] : b[i].
  WordVec select(const Mask& m, std::span<const Word> a,
                 std::span<const Word> b);

  /// Mask to 0/1 words (mask-controlled vector of constants).
  WordVec from_mask(const Mask& m);

  // ---- memory: contiguous -----------------------------------------------

  /// table[offset .. offset+v.size()) = v.
  void store(std::span<Word> table, std::size_t offset,
             std::span<const Word> v);

  /// Fill table[0..n) with value (vector store).
  void fill(std::span<Word> table, Word value);

  /// Contiguous load of n words starting at offset.
  WordVec load(std::span<const Word> table, std::size_t offset, std::size_t n);

  /// Strided load: out[i] = table[offset + i*stride], n elements.
  WordVec load_strided(std::span<const Word> table, std::size_t offset,
                       std::size_t stride, std::size_t n);

  /// Strided store: table[offset + i*stride] = v[i].
  void store_strided(std::span<Word> table, std::size_t offset,
                     std::size_t stride, std::span<const Word> v);

  // ---- memory: list vector (indexed) --------------------------------------

  /// out[i] = table[idx[i]]. Bounds-checked.
  WordVec gather(std::span<const Word> table, std::span<const Word> idx);

  /// Masked gather: out[i] = m[i] ? table[idx[i]] : fill. Inactive lanes do
  /// not access memory, so their idx may be arbitrary (e.g. a null link).
  WordVec gather_masked(std::span<const Word> table, std::span<const Word> idx,
                        const Mask& m, Word fill);

  /// table[idx[i]] = vals[i] under the configured ScatterOrder (models the
  /// S-3800 VIST instruction: ELS condition only).
  void scatter(std::span<Word> table, std::span<const Word> idx,
               std::span<const Word> vals);

  /// Masked scatter: lanes with m[i] false do not store.
  void scatter_masked(std::span<Word> table, std::span<const Word> idx,
                      std::span<const Word> vals, const Mask& m);

  /// Order-preserving scatter (models VSTX): lane i's store completes before
  /// lane i+1's, so the *last* colliding lane always survives. Slower class.
  void scatter_ordered(std::span<Word> table, std::span<const Word> idx,
                       std::span<const Word> vals);

  /// Single scalar-unit store table[pos] = value (one kScalarMem tick).
  /// FOL*'s deadlock-avoidance rescue uses this so the auditor can see the
  /// write; prefer it over raw writes to any vector-visible table.
  void scalar_store(std::span<Word> table, std::size_t pos, Word value);

  // ---- fused kernels -------------------------------------------------------
  //
  // Each fused op is semantically identical to a fixed composition of the
  // primitives above, but issues as ONE instruction charged the chained cost
  // (one vector startup, overlapped pipes — see cost_model.h). With
  // MachineConfig::fuse == false (FOLVEC_FUSE=0) the op literally executes
  // its composition instead: bit-identical outputs and memory effects, the
  // original unfused chime stream. ScatterCheck observes the fused scatter
  // through the same on_scatter/on_gather hooks as the composition.

  /// Fused FOL kernel: scatter(table, idx, vals); readback = gather(table,
  /// idx); return eq(readback, vals) — the ELS survivor mask in one pass.
  /// The result Mask carries its popcount (the survivor count falls out of
  /// the fused compare), so callers need no separate count_true.
  Mask scatter_gather_eq(std::span<Word> table, std::span<const Word> idx,
                         std::span<const Word> vals);

  /// Destination-passing scatter_gather_eq; reuses `out`'s storage.
  void scatter_gather_eq_into(Mask& out, std::span<Word> table,
                              std::span<const Word> idx,
                              std::span<const Word> vals);

  /// Masked fused kernel: scatter_masked(table, idx, vals, active); then
  /// mask_and(eq(gather(table, idx), vals), active). Note the readback
  /// gathers ALL lanes (like the composition), so every idx must be in
  /// bounds even where `active` is false.
  Mask scatter_gather_eq_masked(std::span<Word> table,
                                std::span<const Word> idx,
                                std::span<const Word> vals,
                                const Mask& active);

  /// Fused one-pass split: {compress(v, m), compress(v, mask_not(m))}.
  std::pair<WordVec, WordVec> partition(std::span<const Word> v,
                                        const Mask& m);

  /// Destination-passing partition; returns the kept count. `kept` and
  /// `rejected` are resized to exactly popcount(m) and v.size()-popcount(m)
  /// and must not alias `v`.
  std::size_t partition_into(WordVec& kept, WordVec& rejected,
                             std::span<const Word> v, const Mask& m);

  // ---- destination-passing variants ---------------------------------------
  //
  // Same semantics, op class and chime as the value-returning primitive;
  // `out` is resized to the result length and its capacity is reused, so a
  // pool-acquired buffer makes repeated rounds allocation-free. `out` must
  // not alias any input span.

  void iota_into(WordVec& out, std::size_t n, Word start = 0, Word step = 1);
  void copy_into(WordVec& out, std::span<const Word> v);
  void reverse_into(WordVec& out, std::span<const Word> v);
  void add_into(WordVec& out, std::span<const Word> a, std::span<const Word> b);
  void add_scalar_into(WordVec& out, std::span<const Word> a, Word s);
  void mul_scalar_into(WordVec& out, std::span<const Word> a, Word s);
  void div_scalar_into(WordVec& out, std::span<const Word> a, Word s);
  void and_scalar_into(WordVec& out, std::span<const Word> a, Word s);
  void mod_scalar_into(WordVec& out, std::span<const Word> a, Word s);
  void shr_scalar_into(WordVec& out, std::span<const Word> a, int k);
  void negate_into(WordVec& out, std::span<const Word> a);
  void select_into(WordVec& out, const Mask& m, std::span<const Word> a,
                   std::span<const Word> b);
  void eq_into(Mask& out, std::span<const Word> a, std::span<const Word> b);
  void ne_scalar_into(Mask& out, std::span<const Word> a, Word s);
  void mask_and_into(Mask& out, const Mask& a, const Mask& b);
  void gather_into(WordVec& out, std::span<const Word> table,
                   std::span<const Word> idx);
  /// Returns the packed length (= popcount of m).
  std::size_t compress_into(WordVec& out, std::span<const Word> v,
                            const Mask& m);

  // ---- scalar-unit cost ticks ---------------------------------------------

  void scalar_alu(std::size_t n = 1) { issue(OpClass::kScalarAlu, n); }
  void scalar_mem(std::size_t n = 1) { issue(OpClass::kScalarMem, n); }
  void scalar_branch(std::size_t n = 1) { issue(OpClass::kScalarBranch, n); }
  void scalar_div(std::size_t n = 1) { issue(OpClass::kScalarDiv, n); }

 private:
  void issue(OpClass c, std::size_t n) {
    cost_.record(c, n);
    if (trace_ != nullptr) trace_->record(c, n);
  }

  /// RAII wall-clock probe: charges the enclosing scope's elapsed host time
  /// to one op class, next to the chime counts the same scope issues. When a
  /// span tracer is installed the instruction also becomes a leaf "op" event
  /// in the Chrome trace (op_class_name returns static storage, so the event
  /// allocates nothing); when a calibration profiler is installed the
  /// (elements, wall) pair feeds the per-op-class wall~chime fit.
  class OpTimer {
   public:
    OpTimer(CostAccumulator& cost, OpClass c, std::size_t elements)
        : cost_(cost),
          c_(c),
          elements_(elements),
          start_(std::chrono::steady_clock::now()) {}
    ~OpTimer() {
      const auto end = std::chrono::steady_clock::now();
      const std::chrono::duration<double> dt = end - start_;
      cost_.record_wall(c_, dt.count());
      if (telemetry::SpanTracer* t = telemetry::tracer()) {
        t->op(op_class_name(c_), elements_, start_, end);
      }
      telemetry::profile_op(op_class_name(c_), elements_, dt.count());
    }
    OpTimer(const OpTimer&) = delete;
    OpTimer& operator=(const OpTimer&) = delete;

   private:
    CostAccumulator& cost_;
    OpClass c_;
    std::size_t elements_;
    std::chrono::steady_clock::time_point start_;
  };

  // The elementwise helper templates take an optional SIMD kernel pointer
  // (the table entry matching `f`); non-null kernels run the vector lanes,
  // `f` covers only what the scalar reference loop would do. `s` is the
  // scalar operand forwarded to SimdMapFn/SimdCmpSFn kernels.
  template <typename F>
  WordVec zip(std::span<const Word> a, std::span<const Word> b, F f,
              SimdBinFn k = nullptr);
  template <typename F>
  void zip_into(WordVec& out, std::span<const Word> a, std::span<const Word> b,
                F f, SimdBinFn k = nullptr);
  template <typename F>
  WordVec map(std::span<const Word> a, F f, bool batchable = true,
              SimdMapFn k = nullptr, Word s = 0);
  template <typename F>
  void map_into(WordVec& out, std::span<const Word> a, F f,
                bool batchable = true, SimdMapFn k = nullptr, Word s = 0);
  template <typename F>
  Mask cmp(std::span<const Word> a, std::span<const Word> b, F f,
           SimdCmpFn k = nullptr);
  template <typename F>
  void cmp_into(Mask& out, std::span<const Word> a, std::span<const Word> b,
                F f, SimdCmpFn k = nullptr);
  template <typename F>
  Mask cmp_scalar(std::span<const Word> a, F f, SimdCmpSFn k = nullptr,
                  Word s = 0);
  template <typename F>
  void cmp_scalar_into(Mask& out, std::span<const Word> a, F f,
                       SimdCmpSFn k = nullptr, Word s = 0);

  /// The active kernel-table entry for `field`: null when no SIMD table is
  /// attached or the level has no lowering for the op; bumps the dispatch
  /// counter on hits. Defined in machine.cpp (needs the full SimdKernels).
  template <typename K>
  K simd_pick(K SimdKernels::*field);

  // ---- batched dispatch internals -----------------------------------------

  /// One queued lane kernel of an open OpBatch. Kernels capture their
  /// operand pointers/spans by value (taken AFTER the destination resize)
  /// and touch only lanes [lo, hi), so running every queued kernel in issue
  /// order per chunk reproduces the serial dataflow exactly.
  struct BatchEntry {
    std::function<void(std::size_t, std::size_t)> kernel;
    OpClass op_class;
  };

  void begin_batch() { ++batch_depth_; }
  void end_batch();
  /// Dispatches the queued kernels as one pool crossing; a no-op when the
  /// queue is empty. Every non-batchable primitive calls this first, so
  /// machine state is always current when it executes.
  void flush_batch();
  /// True while eligible primitives must queue instead of dispatch. Audit
  /// and analysis observe results eagerly, so either disables batching.
  bool batching() const {
    return batch_depth_ > 0 && checker_ == nullptr && analyzer_ == nullptr;
  }
  /// Runs one lane-aligned kernel: queued when batching, else dispatched
  /// immediately under an OpTimer (`batchable` false forces immediate —
  /// used by kernels that may throw per lane, which must not defer).
  void run_lanes(OpClass c, std::size_t n,
                 std::function<void(std::size_t, std::size_t)> kernel,
                 bool batchable = true);

  /// Shared fused-kernel body for the scatter_gather_eq variants: issues the
  /// single kVectorScatterGatherEq instruction and runs the backend's fused
  /// scatter + readback-compare, publishing the survivor count on `out`.
  /// The caller has already run the scatter-half hooks and bounds checks;
  /// the readback half's audit probe (and, for the masked form, its
  /// all-lanes bounds check) runs between the two passes.
  /// With `elide` true the readback's audit probe is skipped (the scatter
  /// half's elision already booked the range with the checker); the masked
  /// form's all-lanes bounds recheck always runs.
  void fused_scatter_gather_eq(Mask& out, std::span<Word> table,
                               std::span<const Word> idx,
                               std::span<const Word> vals, const Mask* active,
                               bool elide);

  /// The shuffled lane write order for one kShuffled scatter instruction.
  std::vector<std::size_t> shuffled_lane_order(std::size_t n);

  /// One kElsViolation fault draw for an unmasked scatter-class instruction
  /// (the plain scatter or the fused scatter_gather_eq — both consume
  /// exactly one draw per instruction, so fused and unfused runs under the
  /// same FaultPlan see identical decision streams). Emits the
  /// fault.injected.els counter on fire.
  bool els_fault_fires();

  /// The ELS-violation memory image: every contested address receives the
  /// XOR-amalgam of its colliding (values + 1); singleton writes land
  /// intact. One hash-map pass, identical for every backend.
  static void amalgam_scatter(std::span<Word> table, std::span<const Word> idx,
                              std::span<const Word> vals);

  /// Dispatches one ELS scatter to the backend under the configured
  /// ScatterOrder (bounds already checked, audit hooks already run).
  void dispatch_scatter(std::span<Word> table, std::span<const Word> idx,
                        std::span<const Word> vals, const Mask* mask);

  void check_indices(std::span<const Word> idx, std::size_t table_size,
                     const Mask* mask = nullptr);

  /// True when the machine is in a state where an all-safe static verdict
  /// licenses skipping ScatterCheck's per-lane pass: analysis + audit on,
  /// elision enabled, and no fault injection of any kind in play.
  bool elide_allowed() const;

  /// Forwards one compare result to the analyzer (no-op without analysis).
  void rec_cmp(analysis::Opcode op, const Mask& out, std::span<const Word> a,
               std::span<const Word> b, Word s);

  /// Attempts to elide ScatterCheck's per-lane pass for one scatter-class
  /// instruction: requires elide_allowed(), an all-safe verdict and a proven
  /// index range. On success the checker is told the elided write range (so
  /// its clobber bookkeeping stays exact) and elision stats are bumped.
  bool try_elide_scatter(std::span<const Word> table, std::span<const Word> idx,
                         const analysis::OpVerdicts& sv, bool masked);

  /// Publishes this machine's accumulated state to the installed metrics
  /// registry (vm.op.* chime counts and wall timings, audit.hazard.* counts,
  /// backend.* identity). Called from the destructor; a no-op when no
  /// registry is installed.
  void flush_telemetry() const;

  /// Resolves the configured ScatterOrder for one scatter-class instruction:
  /// fills `order` (consuming one shuffled draw under kShuffled, exactly as
  /// the plain scatter would) and returns the traversal for the backend.
  ScatterTraversal resolve_scatter_order(std::size_t n,
                                         std::vector<std::size_t>& order);

  MachineConfig config_;
  CostAccumulator cost_;
  Xoshiro256 shuffle_rng_;
  TraceSink* trace_ = nullptr;
  std::unique_ptr<ScatterChecker> checker_;
  // Declared before pool_: the pool's destructor fires release hooks into
  // the analyzer, so the analyzer must still be alive when pool_ dies.
  std::unique_ptr<analysis::Analyzer> analyzer_;
  std::unique_ptr<Backend> backend_;
  /// Resolved SIMD kernel table (null for kSerial/kParallel). Tables are
  /// function-local statics in their kernel TUs, so the pointer never
  /// dangles.
  const SimdKernels* simd_ = nullptr;
  /// Lane loops that actually ran a non-null table entry.
  std::size_t simd_dispatches_ = 0;
  std::unique_ptr<BufferPool> pool_;
  /// Open OpBatch nesting depth and the queued round (see OpBatch).
  std::size_t batch_depth_ = 0;
  /// Lane count shared by every queued entry; a mismatching issue flushes.
  std::size_t batch_lanes_ = 0;
  std::vector<BatchEntry> batch_;
};

/// RAII algorithm span: a chime-carrying telemetry span scoped to one
/// machine. On both edges it reads the machine's cost accumulator, so the
/// Chrome trace shows the modeled instruction/element deltas attributed to
/// the span next to its measured wall time. A no-op when tracing is off.
class AlgoSpan {
 public:
  AlgoSpan(VectorMachine& m, const char* name)
      : m_(m), active_(telemetry::tracing()) {
    if (active_) {
      telemetry::tracer()->begin(name, m_.cost().total_instructions(),
                                 m_.cost().total_elements());
    }
  }
  /// Builds "prefix[index]" (e.g. "round[3]") only when tracing is on.
  AlgoSpan(VectorMachine& m, const char* prefix, std::size_t index)
      : m_(m), active_(telemetry::tracing()) {
    if (active_) {
      telemetry::tracer()->begin(
          std::string(prefix) + '[' + std::to_string(index) + ']',
          m_.cost().total_instructions(), m_.cost().total_elements());
    }
  }
  ~AlgoSpan() {
    if (active_) {
      telemetry::tracer()->end(m_.cost().total_instructions(),
                               m_.cost().total_elements());
    }
  }
  AlgoSpan(const AlgoSpan&) = delete;
  AlgoSpan& operator=(const AlgoSpan&) = delete;

 private:
  VectorMachine& m_;
  bool active_;
};

}  // namespace folvec::vm
