#include "hashing/hash_map.h"

#include <unordered_set>
#include <utility>

#include "support/faultsim.h"
#include "support/require.h"
#include "support/status.h"
#include "telemetry/metrics.h"
#include "vm/checker.h"

namespace folvec::hashing {

using vm::Mask;
using vm::VectorMachine;
using vm::Word;
using vm::WordVec;

namespace {

std::size_t round_capacity(std::size_t want) {
  std::size_t cap = 67;
  while (cap < want) cap = cap * 2 + 1;
  return cap;
}

}  // namespace

VectorHashMap::VectorHashMap(std::size_t initial_capacity)
    : slots_(round_capacity(initial_capacity), kUnentered),
      values_(slots_.size(), 0) {}

WordVec VectorHashMap::find_slots(VectorMachine& m,
                                  std::span<const Word> keys) const {
  WordVec result(keys.size(), -1);
  if (keys.empty()) return result;
  const auto size = static_cast<Word>(slots_.size());
  WordVec key_vec = m.copy(keys);
  WordVec lane = m.iota(keys.size());
  WordVec hashed = m.mod_scalar(key_vec, size);
  const std::size_t max_iterations = slots_.size() * 33;
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    const WordVec probed = m.gather(slots_, hashed);
    const Mask hit = m.eq(probed, key_vec);
    const Mask miss = m.eq_scalar(probed, kUnentered);
    const WordVec hit_lanes = m.compress(lane, hit);
    const WordVec hit_slots = m.compress(hashed, hit);
    for (std::size_t i = 0; i < hit_lanes.size(); ++i) {
      result[static_cast<std::size_t>(hit_lanes[i])] = hit_slots[i];
    }
    const Mask active = m.mask_not(m.mask_or(hit, miss));
    if (m.count_true(active) == 0) return result;
    key_vec = m.compress(key_vec, active);
    lane = m.compress(lane, active);
    hashed = m.compress(hashed, active);
    hashed = m.mod_scalar(
        m.add(hashed, m.add_scalar(m.and_scalar(key_vec, 31), 1)), size);
  }
  // A full sweep without every lane retiring: those lanes sit on probe
  // cycles with no empty slot (full table or the gcd hazard of
  // open_table.h) and are reported absent. Surfaced rather than silent —
  // see multi_hash_open_contains.
  telemetry::count("hashing.lookup_sweep_exhausted", key_vec.size());
  return result;
}

WordVec VectorHashMap::insert_tracking_slots(VectorMachine& m,
                                             const WordVec& keys) {
  WordVec result(keys.size(), -1);
  if (keys.empty()) return result;
  if (FaultPlan* plan = faults();
      plan != nullptr && plan->fires(FaultSite::kProbeSaturation)) {
    telemetry::count("fault.injected.probe");
    throw RecoverableError(StatusCode::kProbeCycleSaturated,
                           "injected probe-cycle saturation");
  }
  const auto size = static_cast<Word>(slots_.size());
  // Figure 8 races distinct keys for empty slots: a sanctioned data race.
  const vm::ConflictWindow window(m, slots_, vm::WindowKind::kDataRace,
                                  "hash map insert");
  WordVec key_vec = m.copy(keys);
  WordVec lane = m.iota(keys.size());
  WordVec hashed = m.mod_scalar(key_vec, size);
  // Figure 8 with lane bookkeeping: store into empty slots, keep the lanes
  // whose key survived the overwrite-and-check, re-probe the rest.
  {
    const Mask empty = m.eq_scalar(m.gather(slots_, hashed), kUnentered);
    m.scatter_masked(slots_, hashed, key_vec, empty);
  }
  const std::size_t max_iterations = slots_.size() * 33;
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    const Mask entered = m.eq(m.gather(slots_, hashed), key_vec);
    const WordVec done_lanes = m.compress(lane, entered);
    const WordVec done_slots = m.compress(hashed, entered);
    for (std::size_t i = 0; i < done_lanes.size(); ++i) {
      result[static_cast<std::size_t>(done_lanes[i])] = done_slots[i];
    }
    const Mask rest = m.mask_not(entered);
    if (m.count_true(rest) == 0) {
      entered_ += keys.size();
      return result;
    }
    key_vec = m.compress(key_vec, rest);
    lane = m.compress(lane, rest);
    hashed = m.compress(hashed, rest);
    hashed = m.mod_scalar(
        m.add(hashed, m.add_scalar(m.and_scalar(key_vec, 31), 1)), size);
    const Mask empty = m.eq_scalar(m.gather(slots_, hashed), kUnentered);
    m.scatter_masked(slots_, hashed, key_vec, empty);
  }
  // Non-convergence after a full sweep is data-dependent (saturated probe
  // cycles on a composite-sized table), not a library bug: report it
  // recoverably so upsert_batch can rehash bigger and retry. Keys that did
  // land stay in slots_ — so reconcile entered_ with the table before
  // surfacing the error. Without this, a retry whose rehash also fails (and
  // rolls back to exactly this state) would treat the landed strays as
  // pre-existing keys forever: size() undercounts and a later erase of
  // those keys underflows the live count.
  entered_ = static_cast<std::size_t>(
      m.count_true(m.ge_scalar(m.load(slots_, 0, slots_.size()), 0)));
  telemetry::count("hashing.probe_cycle_saturated");
  throw RecoverableError(StatusCode::kProbeCycleSaturated,
                         "hash map insert swept the table without converging");
}

void VectorHashMap::rehash(VectorMachine& m, std::size_t min_capacity) {
  ++rehashes_;
  // Compress the live keys and values out of the old arrays with vector
  // operations, then re-enter them into the fresh table (tombstones drop
  // out with the compress: live slots hold non-negative keys). Because a
  // live slot holds a real key whether or not entered_ counted it, this
  // also heals the partial state a failed insert_tracking_slots leaves
  // behind — the strays are simply re-entered and re-counted.
  const WordVec old_keys = m.load(slots_, 0, slots_.size());
  const Mask live = m.ge_scalar(old_keys, 0);
  const WordVec keys = m.compress(old_keys, live);
  const WordVec vals = m.compress(m.load(values_, 0, values_.size()), live);

  // Build into fresh storage and roll back if the re-entry itself fails
  // (injected fault, or a saturated cycle in the new size): the recovery
  // path must never lose values, and its caller retries with a bigger
  // capacity anyway.
  std::vector<Word> saved_slots = std::move(slots_);
  std::vector<Word> saved_values = std::move(values_);
  const std::size_t saved_entered = entered_;
  const std::size_t saved_tombstones = tombstones_;
  slots_.assign(round_capacity(min_capacity), kUnentered);
  values_.assign(slots_.size(), 0);
  entered_ = 0;
  tombstones_ = 0;
  try {
    const WordVec new_slots = insert_tracking_slots(m, keys);
    m.scatter(values_, new_slots, vals);
  } catch (const RecoverableError&) {
    slots_ = std::move(saved_slots);
    values_ = std::move(saved_values);
    entered_ = saved_entered;
    tombstones_ = saved_tombstones;
    throw;
  }
}

void VectorHashMap::grow(VectorMachine& m, std::size_t need) {
  while (static_cast<double>(entered_ + tombstones_ + need) >
         0.7 * static_cast<double>(slots_.size())) {
    rehash(m, slots_.size() * 2);
  }
}

std::size_t VectorHashMap::erase_batch(VectorMachine& m,
                                       std::span<const Word> keys) {
  if (keys.empty()) return 0;
  const WordVec slot_vec = find_slots(m, keys);
  const Mask present = m.ne_scalar(slot_vec, -1);
  const WordVec hit_slots = m.compress(slot_vec, present);
  if (hit_slots.empty()) return 0;

  // Duplicate keys in the batch resolve to the same slot; count distinct
  // slots on the scalar unit while the vector unit does the stores.
  std::unordered_set<Word> distinct;
  for (const Word s : hit_slots) {
    m.scalar_mem(2);
    m.scalar_branch(1);
    distinct.insert(s);
  }
  m.scatter(slots_, hit_slots, m.splat(hit_slots.size(), kTombstone));
  const std::size_t removed = distinct.size();
  entered_ -= removed;
  tombstones_ += removed;

  // Clean up once tombstones clutter a quarter of the table.
  if (4 * tombstones_ > slots_.size()) {
    rehash(m, std::max<std::size_t>(64, 3 * entered_));
  }
  return removed;
}

void VectorHashMap::upsert_batch(VectorMachine& m,
                                 std::span<const Word> keys,
                                 std::span<const Word> values) {
  FOLVEC_REQUIRE(keys.size() == values.size(),
                 "keys/values must have equal length");
  if (keys.empty()) return;
  for (Word k : keys) {
    FOLVEC_REQUIRE(k >= 0, "keys must be non-negative");
  }
  // Graceful degradation: recoverable exhaustion mid-attempt (saturated
  // probe cycle, injected fault) is answered by rehashing to double
  // capacity and re-running the attempt. The re-run re-derives which keys
  // are present, so keys half-inserted by the failed attempt resolve as
  // existing and the batch completes exactly once per lane.
  constexpr std::size_t kMaxRecoveries = 4;
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      upsert_batch_once(m, keys, values);
      if (attempt != 0) {
        telemetry::count("hashing.upsert_recoveries", attempt);
        if (faults() != nullptr) telemetry::count("fault.recovered.probe");
      }
      return;
    } catch (const RecoverableError&) {
      if (attempt == kMaxRecoveries) throw;
      try {
        rehash(m, slots_.size() * 2);
      } catch (const RecoverableError&) {
        // The recovery was hit too (sustained injection). rehash rolled
        // itself back, so the next attempt retries from a consistent state.
      }
    }
  }
}

void VectorHashMap::upsert_batch_once(VectorMachine& m,
                                      std::span<const Word> keys,
                                      std::span<const Word> values) {
  grow(m, keys.size());

  // Split the batch into existing keys (value overwrite) and new keys
  // (Figure 8 insert). Duplicates *within* the batch need care: only the
  // first occurrence of a new key performs the insert; the rest become
  // value overwrites of that freshly created slot. One overwrite-and-check
  // round on a per-key claim table makes the split.
  const WordVec existing_slots = find_slots(m, keys);
  WordVec key_vec = m.copy(keys);
  WordVec val_vec = m.copy(values);

  // Lanes whose key is already in the map: slot known.
  WordVec slot_vec = existing_slots;  // -1 where absent

  const Mask absent = m.eq_scalar(slot_vec, -1);
  if (m.count_true(absent) > 0) {
    const WordVec absent_keys = m.compress(key_vec, absent);
    const WordVec absent_lanes = m.compress(m.iota(keys.size()), absent);
    // The Figure 8 inserter requires distinct keys, so only the first
    // occurrence of each absent key inserts (scalar-unit bookkeeping, one
    // pass); the duplicates then resolve their slot by lookup like any
    // other lane.
    std::unordered_set<Word> seen;
    WordVec first_keys;
    for (const Word k : absent_keys) {
      m.scalar_mem(2);
      m.scalar_branch(1);
      if (seen.insert(k).second) first_keys.push_back(k);
    }
    insert_tracking_slots(m, first_keys);
    const WordVec resolved = find_slots(m, absent_keys);
    for (std::size_t i = 0; i < absent_lanes.size(); ++i) {
      slot_vec[static_cast<std::size_t>(absent_lanes[i])] = resolved[i];
    }
  }

  // Value write: the order-preserving scatter makes "last lane wins" hold
  // for duplicate keys within the batch, matching sequential upserts.
  m.scatter_ordered(values_, slot_vec, val_vec);
}

WordVec VectorHashMap::lookup_batch(VectorMachine& m,
                                    std::span<const Word> keys,
                                    Word missing) const {
  const WordVec slots = find_slots(m, keys);
  const Mask present = m.ne_scalar(slots, -1);
  const WordVec fetched = m.gather_masked(values_, slots, present, missing);
  return fetched;
}

bool VectorHashMap::contains(VectorMachine& m, Word key) const {
  const WordVec slots = find_slots(m, WordVec{key});
  return slots[0] != -1;
}

WordVec VectorHashMap::live_keys(VectorMachine& m) const {
  const WordVec all = m.load(slots_, 0, slots_.size());
  return m.compress(all, m.ge_scalar(all, 0));
}

}  // namespace folvec::hashing
