file(REMOVE_RECURSE
  "CMakeFiles/ordered_fol_test.dir/ordered_fol_test.cpp.o"
  "CMakeFiles/ordered_fol_test.dir/ordered_fol_test.cpp.o.d"
  "ordered_fol_test"
  "ordered_fol_test.pdb"
  "ordered_fol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordered_fol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
