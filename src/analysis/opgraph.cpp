#include "analysis/opgraph.h"

#include <string_view>

#include "support/json.h"
#include "support/require.h"

namespace folvec::analysis {

namespace {

constexpr const char* kSchema = "folvec-opgraph-v1";

constexpr const char* kOpcodeNames[kOpcodeCount] = {
    "source",        "observe_range", "iota",
    "splat",         "copy",          "reverse",
    "add",           "sub",           "mul",
    "add_scalar",    "mul_scalar",    "div_scalar",
    "mod_scalar",    "and_scalar",    "or_scalar",
    "shl_scalar",    "shr_scalar",    "negate",
    "cmp_eq",        "cmp_ne",        "cmp_le",
    "cmp_lt",        "cmp_eq_scalar", "cmp_ne_scalar",
    "cmp_le_scalar", "cmp_lt_scalar", "cmp_ge_scalar",
    "mask_and",      "mask_or",       "mask_not",
    "count_true",    "reduce_sum",    "reduce_min",
    "reduce_max",    "compress",      "partition_kept",
    "partition_rejected",             "select",
    "from_mask",     "load",          "load_strided",
    "store",         "store_strided", "fill",
    "scalar_store",  "gather",        "scatter",
    "scatter_ordered",                "scatter_gather_eq",
    "window_open",   "window_close",  "buffer_release",
    "retire_work",
};

Opcode opcode_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kOpcodeCount; ++i) {
    if (name == kOpcodeNames[i]) return static_cast<Opcode>(i);
  }
  throw PreconditionError("opgraph: unknown opcode \"" + std::string(name) +
                          '"');
}

Verdict verdict_from_name(std::string_view name) {
  if (name == "safe") return Verdict::kProvenSafe;
  if (name == "hazard") return Verdict::kProvenHazard;
  if (name == "unknown") return Verdict::kUnknown;
  throw PreconditionError("opgraph: unknown verdict \"" + std::string(name) +
                          '"');
}

JsonValue word_to_json(Word w) { return std::to_string(w); }

Word word_from_json(const JsonValue& v, const char* what) {
  FOLVEC_REQUIRE(v.is_string(), std::string("opgraph: ") + what +
                                    " must be a string-encoded integer");
  return static_cast<Word>(std::stoll(v.as_string()));
}

JsonValue ids_to_json(const std::vector<std::uint32_t>& ids) {
  JsonArray a;
  a.reserve(ids.size());
  for (const std::uint32_t id : ids) a.emplace_back(id);
  return a;
}

std::vector<std::uint32_t> ids_from_json(const JsonValue& v) {
  std::vector<std::uint32_t> out;
  if (!v.is_array()) return out;
  for (const JsonValue& e : v.as_array()) {
    FOLVEC_REQUIRE(e.is_number(), "opgraph: node id must be a number");
    out.push_back(static_cast<std::uint32_t>(e.as_number()));
  }
  return out;
}

JsonValue facts_to_json(const LaneFacts& f) {
  JsonObject o;
  o.emplace_back("lanes", f.lanes);
  if (f.has_range) {
    o.emplace_back("lo", word_to_json(f.lo));
    o.emplace_back("hi", word_to_json(f.hi));
    o.emplace_back("tight", f.tight);
  }
  o.emplace_back("distinct", f.distinct);
  o.emplace_back("sorted", f.sorted);
  return o;
}

LaneFacts facts_from_json(const JsonValue& v) {
  LaneFacts f;
  const JsonValue* lanes = v.find("lanes");
  FOLVEC_REQUIRE(lanes != nullptr && lanes->is_number(),
                 "opgraph: facts need a numeric lane count");
  f.lanes = static_cast<std::size_t>(lanes->as_number());
  if (const JsonValue* lo = v.find("lo")) {
    f.has_range = true;
    f.lo = word_from_json(*lo, "facts.lo");
    const JsonValue* hi = v.find("hi");
    FOLVEC_REQUIRE(hi != nullptr, "opgraph: facts.lo without facts.hi");
    f.hi = word_from_json(*hi, "facts.hi");
    const JsonValue* tight = v.find("tight");
    f.tight = tight != nullptr && tight->is_bool() && tight->as_bool();
  }
  const JsonValue* distinct = v.find("distinct");
  f.distinct = distinct != nullptr && distinct->is_bool() && distinct->as_bool();
  const JsonValue* sorted = v.find("sorted");
  f.sorted = sorted != nullptr && sorted->is_bool() && sorted->as_bool();
  return f;
}

JsonValue verdicts_to_json(const OpVerdicts& v) {
  JsonObject o;
  for (std::size_t c = 0; c < kHazardClassCount; ++c) {
    o.emplace_back(hazard_class_name(static_cast<HazardClass>(c)),
                   verdict_name(v.v[c]));
  }
  return o;
}

OpVerdicts verdicts_from_json(const JsonValue& v) {
  OpVerdicts out;
  for (std::size_t c = 0; c < kHazardClassCount; ++c) {
    const JsonValue* e = v.find(hazard_class_name(static_cast<HazardClass>(c)));
    if (e != nullptr && e->is_string()) {
      out.v[c] = verdict_from_name(e->as_string());
    }
  }
  return out;
}

}  // namespace

const char* opcode_name(Opcode op) {
  const auto i = static_cast<std::size_t>(op);
  return i < kOpcodeCount ? kOpcodeNames[i] : "?";
}

std::string OpGraph::to_json(int indent) const {
  JsonArray node_array;
  node_array.reserve(nodes.size());
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    const OpNode& n = nodes[id];
    JsonObject o;
    o.emplace_back("id", id);
    o.emplace_back("op", opcode_name(n.op));
    if (!n.inputs.empty()) o.emplace_back("in", ids_to_json(n.inputs));
    if (!n.aux.empty()) o.emplace_back("aux", ids_to_json(n.aux));
    if (n.lanes != 0) o.emplace_back("lanes", n.lanes);
    if (n.s0 != 0) o.emplace_back("s0", word_to_json(n.s0));
    if (n.s1 != 0) o.emplace_back("s1", word_to_json(n.s1));
    if (n.region != kNoRegion) {
      o.emplace_back("region", n.region);
      o.emplace_back("table_size", n.table_size);
    }
    if (n.masked) o.emplace_back("masked", true);
    if (n.ordered) o.emplace_back("ordered", true);
    if (n.elided) o.emplace_back("elided", true);
    if (n.window != WindowCtx::kNone) {
      o.emplace_back("window",
                     n.window == WindowCtx::kLabelRound ? "label" : "data");
    }
    if (n.line != 0) o.emplace_back("line", n.line);
    o.emplace_back("facts", facts_to_json(n.facts));
    if (opcode_checkable(n.op)) {
      o.emplace_back("verdicts", verdicts_to_json(n.verdicts));
    }
    node_array.emplace_back(std::move(o));
  }
  JsonArray regions;
  regions.reserve(region_sizes.size());
  for (const std::size_t s : region_sizes) regions.emplace_back(s);

  JsonObject root;
  root.emplace_back("schema", kSchema);
  root.emplace_back("regions", std::move(regions));
  root.emplace_back("nodes", std::move(node_array));
  return JsonValue(std::move(root)).dump(indent);
}

OpGraph OpGraph::from_json(const std::string& text) {
  const JsonValue root = JsonValue::parse(text);
  const JsonValue* schema = root.find("schema");
  FOLVEC_REQUIRE(schema != nullptr && schema->is_string() &&
                     schema->as_string() == kSchema,
                 "opgraph: schema must be folvec-opgraph-v1");
  OpGraph g;
  if (const JsonValue* regions = root.find("regions");
      regions != nullptr && regions->is_array()) {
    for (const JsonValue& r : regions->as_array()) {
      FOLVEC_REQUIRE(r.is_number(), "opgraph: region size must be a number");
      g.region_sizes.push_back(static_cast<std::size_t>(r.as_number()));
    }
  }
  const JsonValue* node_array = root.find("nodes");
  FOLVEC_REQUIRE(node_array != nullptr && node_array->is_array(),
                 "opgraph: nodes must be an array");
  for (const JsonValue& jn : node_array->as_array()) {
    FOLVEC_REQUIRE(jn.is_object(), "opgraph: node must be an object");
    OpNode n;
    const JsonValue* op = jn.find("op");
    FOLVEC_REQUIRE(op != nullptr && op->is_string(),
                   "opgraph: node needs an op name");
    n.op = opcode_from_name(op->as_string());
    if (const JsonValue* in = jn.find("in")) n.inputs = ids_from_json(*in);
    if (const JsonValue* aux = jn.find("aux")) n.aux = ids_from_json(*aux);
    if (const JsonValue* lanes = jn.find("lanes"); lanes != nullptr) {
      n.lanes = static_cast<std::size_t>(lanes->as_number());
    }
    if (const JsonValue* s0 = jn.find("s0")) n.s0 = word_from_json(*s0, "s0");
    if (const JsonValue* s1 = jn.find("s1")) n.s1 = word_from_json(*s1, "s1");
    if (const JsonValue* region = jn.find("region"); region != nullptr) {
      n.region = static_cast<std::uint32_t>(region->as_number());
      const JsonValue* ts = jn.find("table_size");
      FOLVEC_REQUIRE(ts != nullptr && ts->is_number(),
                     "opgraph: memory node needs table_size");
      n.table_size = static_cast<std::size_t>(ts->as_number());
    }
    if (const JsonValue* masked = jn.find("masked"); masked != nullptr) {
      n.masked = masked->as_bool();
    }
    if (const JsonValue* ordered = jn.find("ordered"); ordered != nullptr) {
      n.ordered = ordered->as_bool();
    }
    if (const JsonValue* elided = jn.find("elided"); elided != nullptr) {
      n.elided = elided->as_bool();
    }
    if (const JsonValue* window = jn.find("window"); window != nullptr) {
      n.window = window->as_string() == "label" ? WindowCtx::kLabelRound
                                                : WindowCtx::kDataRace;
    }
    if (const JsonValue* line = jn.find("line"); line != nullptr) {
      n.line = static_cast<std::size_t>(line->as_number());
    }
    if (const JsonValue* facts = jn.find("facts")) {
      n.facts = facts_from_json(*facts);
    }
    if (const JsonValue* verdicts = jn.find("verdicts")) {
      n.verdicts = verdicts_from_json(*verdicts);
    }
    g.nodes.push_back(std::move(n));
  }
  return g;
}

}  // namespace folvec::analysis
