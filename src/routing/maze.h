// Lee-algorithm maze routing on a grid, scalar and vectorized.
//
// Suzuki, Miki & Takamine's vectorized maze router (IEICE CAS 91-17,
// cited in the paper's Section 5) expands the breadth-first wavefront with
// vector operations. Two shared-data hazards appear, both resolved the FOL
// way:
//   * several frontier cells write the same distance to a common neighbour
//     — harmless under ELS, since all colliding writes carry the same
//     value (a degenerate overwrite-and-check where every lane "wins");
//   * the next frontier must not contain one cell twice, or the wavefront
//     would grow combinatorially — one overwrite-and-check round dedupes
//     it (the implicit first-set-only FOL the paper points out).
//
// The router reproduces exact BFS distances, so the scalar and vector
// versions are cross-checked cell for cell.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "vm/cost_model.h"
#include "vm/machine.h"

namespace folvec::routing {

/// Distance value for unreached cells.
inline constexpr vm::Word kUnreached = -1;
/// Grid cell blocked by an obstacle.
inline constexpr vm::Word kObstacle = -2;

struct RouteStats {
  std::size_t wavefronts = 0;     ///< BFS levels expanded
  std::size_t dedup_dropped = 0;  ///< duplicate frontier lanes filtered
};

/// A rectangular routing grid. Cells are indexed row-major: cell = y*w + x.
class Grid {
 public:
  Grid(std::size_t width, std::size_t height);

  void set_obstacle(std::size_t x, std::size_t y);
  bool is_obstacle(std::size_t x, std::size_t y) const;

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }
  std::size_t cells() const { return width_ * height_; }
  vm::Word index(std::size_t x, std::size_t y) const;

  /// Scalar BFS from `source`: returns the distance field (kUnreached /
  /// kObstacle markers preserved).
  std::vector<vm::Word> route_scalar(vm::Word source,
                                     vm::CostAccumulator* cost = nullptr,
                                     RouteStats* stats = nullptr) const;

  /// Vectorized wavefront BFS; identical distance field to route_scalar.
  std::vector<vm::Word> route_vector(vm::VectorMachine& m, vm::Word source,
                                     RouteStats* stats = nullptr) const;

  /// Multi-terminal variants (a net with several pins, the standard LSI
  /// routing workload): dist[c] = distance to the NEAREST source.
  /// Duplicate sources are permitted.
  std::vector<vm::Word> route_scalar_multi(
      std::span<const vm::Word> sources, vm::CostAccumulator* cost = nullptr,
      RouteStats* stats = nullptr) const;
  std::vector<vm::Word> route_vector_multi(vm::VectorMachine& m,
                                           std::span<const vm::Word> sources,
                                           RouteStats* stats = nullptr) const;

  /// Shortest path from source to target, walked backwards over a distance
  /// field returned by either router; empty when unreachable.
  std::vector<vm::Word> backtrace(std::span<const vm::Word> dist,
                                  vm::Word source, vm::Word target) const;

 private:
  std::vector<vm::Word> blank_distance_field() const;

  std::size_t width_;
  std::size_t height_;
  std::vector<std::uint8_t> obstacle_;
};

}  // namespace folvec::routing
