#include "telemetry/spans.h"

#include <atomic>
#include <fstream>
#include <functional>
#include <ostream>
#include <thread>
#include <utility>

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "support/json.h"

namespace folvec::telemetry {

namespace {

std::atomic<SpanTracer*> g_tracer{nullptr};

// Serial numbers key the thread-local track cache: a tracer constructed at
// a recycled address gets a fresh serial, so stale caches never resolve.
std::atomic<std::uint64_t> g_tracer_serials{0};

// Per-thread single-slot cache: the track this thread registered with the
// tracer whose serial is `tls_serial`. Owner-thread-only after the first
// (mutex-guarded) registration, which is what makes push() safe under
// concurrent per-thread recording.
thread_local std::uint64_t tls_serial = 0;
thread_local void* tls_track = nullptr;

std::uint64_t current_tid() {
#if defined(__linux__)
  return static_cast<std::uint64_t>(::syscall(SYS_gettid));
#else
  return static_cast<std::uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
#endif
}

}  // namespace

SpanTracer::SpanTracer(std::size_t capacity)
    : epoch_(Clock::now()),
      capacity_(capacity),
      serial_(g_tracer_serials.fetch_add(1, std::memory_order_relaxed) + 1) {
  // Register the constructing thread eagerly as track 0, named "main": it
  // is the machine's issuing thread in every bench and test, and exporting
  // it first keeps deterministic span/op events in a stable file order.
  track().name = "main";
}

SpanTracer::~SpanTracer() = default;

SpanTracer::Track& SpanTracer::track() {
  if (tls_serial == serial_ && tls_track != nullptr) {
    return *static_cast<Track*>(tls_track);
  }
  const std::uint64_t tid = current_tid();
  const std::lock_guard<std::mutex> lock(registry_mu_);
  Track* mine = nullptr;
  // A thread alternating between two live tracers re-registers on each
  // switch; find its existing track so it never gets a duplicate.
  for (const std::unique_ptr<Track>& t : tracks_) {
    if (t->tid == tid) {
      mine = t.get();
      break;
    }
  }
  if (mine == nullptr) {
    tracks_.push_back(std::make_unique<Track>());
    mine = tracks_.back().get();
    mine->tid = tid;
    // Small eager reserve: a long bench run registers a track per pool
    // worker thread (hundreds across many machines), so a large reserve
    // here would dominate the trace's memory; growth is geometric anyway.
    mine->events.reserve(capacity_ < 256 ? capacity_ : 256);
  }
  tls_serial = serial_;
  tls_track = mine;
  return *mine;
}

void SpanTracer::push(Track& t, Event e) {
  if (t.events.size() >= capacity_) {
    ++t.dropped;
    return;
  }
  t.events.push_back(std::move(e));
}

void SpanTracer::begin(std::string name, std::uint64_t chime_instructions,
                       std::uint64_t chime_elements) {
  track().stack.push_back(
      Open{std::move(name), Clock::now(), chime_instructions, chime_elements});
}

void SpanTracer::end(std::uint64_t chime_instructions,
                     std::uint64_t chime_elements) {
  Track& t = track();
  if (t.stack.empty()) return;
  Open open = std::move(t.stack.back());
  t.stack.pop_back();
  Event e;
  e.kind = EventKind::kSpan;
  e.name = std::move(open.name);
  e.ts_us = to_us(open.start);
  e.dur_us = to_us(Clock::now()) - e.ts_us;
  e.chime_instructions = chime_instructions >= open.chime_instructions
                             ? chime_instructions - open.chime_instructions
                             : 0;
  e.chime_elements = chime_elements >= open.chime_elements
                         ? chime_elements - open.chime_elements
                         : 0;
  push(t, std::move(e));
}

void SpanTracer::op(const char* static_name, std::size_t elements,
                    Clock::time_point start, Clock::time_point end) {
  Event e;
  e.kind = EventKind::kOp;
  e.static_name = static_name;
  e.ts_us = to_us(start);
  e.dur_us = to_us(end) - e.ts_us;
  e.elements = static_cast<std::uint64_t>(elements);
  push(track(), std::move(e));
}

void SpanTracer::set_thread_name(std::string_view name) {
  Track& t = track();
  if (t.name.empty()) t.name = std::string(name);
}

std::uint64_t SpanTracer::next_flow_id() {
  return flow_ids_.fetch_add(1, std::memory_order_relaxed) + 1;
}

void SpanTracer::flow_begin(const char* static_name, std::uint64_t flow_id) {
  Event e;
  e.kind = EventKind::kFlowStart;
  e.static_name = static_name;
  e.ts_us = to_us(Clock::now());
  e.flow_id = flow_id;
  push(track(), std::move(e));
}

void SpanTracer::chunk(const char* static_name, std::size_t lo, std::size_t hi,
                       std::uint64_t flow_id, Clock::time_point start,
                       Clock::time_point end) {
  Track& t = track();
  const double ts = to_us(start);
  if (flow_id != 0) {
    // The flow-finish binds to the enclosing slice ("bp":"e"), which is the
    // chunk slice pushed right after it — same thread, same timestamp.
    Event f;
    f.kind = EventKind::kFlowEnd;
    f.static_name = static_name;
    f.ts_us = ts;
    f.flow_id = flow_id;
    push(t, std::move(f));
  }
  Event e;
  e.kind = EventKind::kChunk;
  e.static_name = static_name;
  e.ts_us = ts;
  e.dur_us = to_us(end) - ts;
  e.lo = static_cast<std::uint64_t>(lo);
  e.elements = static_cast<std::uint64_t>(hi - lo);
  e.flow_id = flow_id;
  push(t, std::move(e));
}

void SpanTracer::counter(const char* static_name, double value) {
  Event e;
  e.kind = EventKind::kCounter;
  e.static_name = static_name;
  e.ts_us = to_us(Clock::now());
  e.value = value;
  push(track(), std::move(e));
}

std::size_t SpanTracer::size() const {
  const std::lock_guard<std::mutex> lock(registry_mu_);
  std::size_t n = 0;
  for (const std::unique_ptr<Track>& t : tracks_) n += t->events.size();
  return n;
}

std::size_t SpanTracer::dropped() const {
  const std::lock_guard<std::mutex> lock(registry_mu_);
  std::size_t n = 0;
  for (const std::unique_ptr<Track>& t : tracks_) n += t->dropped;
  return n;
}

std::size_t SpanTracer::open_depth() const {
  const std::uint64_t tid = current_tid();
  const std::lock_guard<std::mutex> lock(registry_mu_);
  for (const std::unique_ptr<Track>& t : tracks_) {
    if (t->tid == tid) return t->stack.size();
  }
  return 0;
}

std::size_t SpanTracer::track_count() const {
  const std::lock_guard<std::mutex> lock(registry_mu_);
  return tracks_.size();
}

void SpanTracer::append_event_json(std::ostream& os, const Event& e,
                                   std::uint64_t tid, bool& first) const {
  if (!first) os << ",\n";
  first = false;
  const std::string_view name =
      e.static_name != nullptr ? std::string_view(e.static_name)
                               : std::string_view(e.name);
  os << "    {\"name\": " << JsonValue::quote(name);
  switch (e.kind) {
    case EventKind::kSpan:
      os << ", \"cat\": \"span\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << tid
         << ", \"ts\": " << JsonValue(e.ts_us).dump()
         << ", \"dur\": " << JsonValue(e.dur_us).dump()
         << ", \"args\": {\"chime_instructions\": " << e.chime_instructions
         << ", \"chime_elements\": " << e.chime_elements << "}";
      break;
    case EventKind::kOp:
      os << ", \"cat\": \"op\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << tid
         << ", \"ts\": " << JsonValue(e.ts_us).dump()
         << ", \"dur\": " << JsonValue(e.dur_us).dump()
         << ", \"args\": {\"elements\": " << e.elements << "}";
      break;
    case EventKind::kChunk:
      os << ", \"cat\": \"chunk\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << tid
         << ", \"ts\": " << JsonValue(e.ts_us).dump()
         << ", \"dur\": " << JsonValue(e.dur_us).dump()
         << ", \"args\": {\"lo\": " << e.lo
         << ", \"hi\": " << (e.lo + e.elements) << ", \"lanes\": " << e.elements
         << ", \"flow\": " << e.flow_id << "}";
      break;
    case EventKind::kFlowStart:
      os << ", \"cat\": \"flow\", \"ph\": \"s\", \"id\": " << e.flow_id
         << ", \"pid\": 1, \"tid\": " << tid
         << ", \"ts\": " << JsonValue(e.ts_us).dump() << ", \"args\": {}";
      break;
    case EventKind::kFlowEnd:
      os << ", \"cat\": \"flow\", \"ph\": \"f\", \"bp\": \"e\", \"id\": "
         << e.flow_id << ", \"pid\": 1, \"tid\": " << tid
         << ", \"ts\": " << JsonValue(e.ts_us).dump() << ", \"args\": {}";
      break;
    case EventKind::kCounter:
      os << ", \"cat\": \"counter\", \"ph\": \"C\", \"pid\": 1, \"tid\": "
         << tid << ", \"ts\": " << JsonValue(e.ts_us).dump()
         << ", \"args\": {\"value\": " << JsonValue(e.value).dump() << "}";
      break;
  }
  os << "}";
}

void SpanTracer::write_chrome_trace(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(registry_mu_);
  os << "{\n  \"traceEvents\": [\n";
  bool first = true;
  const double now_us = to_us(Clock::now());
  std::size_t dropped_total = 0;
  std::size_t sort_index = 0;
  for (const std::unique_ptr<Track>& t : tracks_) {
    dropped_total += t->dropped;
    // Thread metadata first: the name ("main" / "worker-<i>", or a tid
    // placeholder for threads that never named themselves) and a sort
    // index pinning registration order in the viewer.
    std::string label =
        t->name.empty() ? "thread-" + std::to_string(t->tid) : t->name;
    if (!first) os << ",\n";
    first = false;
    os << "    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
       << "\"tid\": " << t->tid << ", \"args\": {\"name\": "
       << JsonValue::quote(label) << "}},\n"
       << "    {\"name\": \"thread_sort_index\", \"ph\": \"M\", \"pid\": 1, "
       << "\"tid\": " << t->tid << ", \"args\": {\"sort_index\": "
       << sort_index << "}}";
    ++sort_index;
    for (const Event& e : t->events) append_event_json(os, e, t->tid, first);
    // Spans still open at write time are emitted as-of-now so a trace
    // captured mid-run (e.g. from an atexit hook) is still well formed.
    for (const Open& open : t->stack) {
      Event e;
      e.kind = EventKind::kSpan;
      e.name = open.name;
      e.ts_us = to_us(open.start);
      e.dur_us = now_us - e.ts_us;
      append_event_json(os, e, t->tid, first);
    }
  }
  os << "\n  ],\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {"
     << "\"dropped_events\": " << dropped_total
     << ", \"tracks\": " << tracks_.size() << "}\n}\n";
}

bool SpanTracer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os);
  return os.good();
}

SpanTracer* tracer() { return g_tracer.load(std::memory_order_relaxed); }

void install_tracer(SpanTracer* t) {
  g_tracer.store(t, std::memory_order_release);
}

ScopedTracer::ScopedTracer(SpanTracer& t) : previous_(tracer()) {
  install_tracer(&t);
}

ScopedTracer::~ScopedTracer() { install_tracer(previous_); }

}  // namespace folvec::telemetry
